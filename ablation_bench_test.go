// Ablation benchmarks for the design choices DESIGN.md calls out: how
// routing table size drives IPv4-radix cost, what the TSA optimization
// buys over full prefix-preserving anonymization, what level compression
// buys the LC-trie, what the statistics tracer costs the simulator, and
// how payload processing scales with packet size.
package packetbench

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/anon"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/microarch"
	"repro/internal/packet"
	"repro/internal/route"
	"repro/internal/trace"
)

// BenchmarkAblationRadixTableKind shows how the trace/table pairing
// drives IPv4-radix cost: a table derived from the traffic (the paper's
// uniform-coverage setup after scrambling) forces deep tree walks, while
// a synthetic table the traffic rarely matches ends walks early — the
// bias the paper's address preprocessing exists to remove.
func BenchmarkAblationRadixTableKind(b *testing.B) {
	pkts := GenerateTrace("MRA", 1000)
	var dsts []uint32
	for _, p := range pkts {
		if h, err := packet.ParseIPv4(p.Data); err == nil {
			dsts = append(dsts, h.Dst)
		}
	}
	kinds := []struct {
		name string
		tbl  *route.Table
	}{
		{"traffic-derived", route.TableFromTraffic(dsts, 0, 16, 9)},
		{"synthetic-random", route.GenerateTable(route.GenOptions{Prefixes: 8192, Seed: 10})},
		{"synthetic-default", route.GenerateTable(route.GenOptions{Prefixes: 8192, Seed: 10, IncludeDefault: true})},
	}
	for _, k := range kinds {
		b.Run(k.name, func(b *testing.B) {
			bench, err := core.New(apps.IPv4Radix(k.tbl), core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var instr uint64
			for i := 0; i < b.N; i++ {
				res, err := bench.ProcessPacket(pkts[i%len(pkts)])
				if err != nil {
					b.Fatal(err)
				}
				instr += res.Record.Instructions
			}
			b.ReportMetric(float64(instr)/float64(b.N), "sim-instr/pkt")
		})
	}
}

// BenchmarkAblationTSAVsFullPP compares the native TSA tables against
// the full bit-by-bit prefix-preserving scheme it optimizes — the
// speedup that justifies the TSA application's existence.
func BenchmarkAblationTSAVsFullPP(b *testing.B) {
	addrs := make([]uint32, 4096)
	rng := rand.New(rand.NewSource(2))
	for i := range addrs {
		addrs[i] = rng.Uint32()
	}
	b.Run("TSA", func(b *testing.B) {
		t := anon.NewTSA(5)
		b.ResetTimer()
		var sink uint32
		for i := 0; i < b.N; i++ {
			sink ^= t.Anonymize(addrs[i%len(addrs)])
		}
		_ = sink
	})
	b.Run("FullPP", func(b *testing.B) {
		f := anon.NewFullPP(5)
		b.ResetTimer()
		var sink uint32
		for i := 0; i < b.N; i++ {
			sink ^= f.Anonymize(addrs[i%len(addrs)])
		}
		_ = sink
	})
}

// BenchmarkAblationLookupStructures compares the native lookup
// structures' speed, the Nilsson-Karlsson motivation for the LC-trie.
func BenchmarkAblationLookupStructures(b *testing.B) {
	tbl := route.GenerateTable(route.GenOptions{Prefixes: 16384, Seed: 3, IncludeDefault: true})
	radix := route.NewRadixTree(tbl)
	lc, err := route.NewLCTrie(tbl)
	if err != nil {
		b.Fatal(err)
	}
	addrs := make([]uint32, 4096)
	rng := rand.New(rand.NewSource(4))
	for i := range addrs {
		addrs[i] = rng.Uint32()
	}
	b.Run("radix", func(b *testing.B) {
		var sink uint32
		for i := 0; i < b.N; i++ {
			h, _ := radix.Lookup(addrs[i%len(addrs)])
			sink ^= h
		}
		_ = sink
	})
	b.Run("lctrie", func(b *testing.B) {
		var sink uint32
		for i := 0; i < b.N; i++ {
			h, _ := lc.Lookup(addrs[i%len(addrs)])
			sink ^= h
		}
		_ = sink
	})
	b.Run("linear", func(b *testing.B) {
		var sink uint32
		for i := 0; i < b.N; i++ {
			h, _ := tbl.LookupLinear(addrs[i%len(addrs)])
			sink ^= h
		}
		_ = sink
	})
}

// BenchmarkAblationTracerOverhead measures what the selective-accounting
// collector costs the simulator, by running the same application with
// tracing detached (the paper's claim that PacketBench "does not
// significantly reduce the performance" of the underlying simulator).
func BenchmarkAblationTracerOverhead(b *testing.B) {
	pkts := GenerateTrace("MRA", 500)
	tbl := RouteTableFromTrace(pkts, 8192)
	run := func(b *testing.B, traced bool) {
		bench, err := core.New(apps.IPv4Radix(tbl), core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		bench.SetTracing(traced)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := bench.ProcessPacket(pkts[i%len(pkts)]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("with-collector", func(b *testing.B) { run(b, true) })
	b.Run("without-collector", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationPayloadScanSize shows the payload application's cost
// scaling with packet size, unlike the header applications.
func BenchmarkAblationPayloadScanSize(b *testing.B) {
	for _, size := range []int{64, 576, 1500} {
		b.Run(fmt.Sprintf("bytes=%d", size), func(b *testing.B) {
			h := packet.IPv4Header{Version: 4, IHL: 5, TTL: 9,
				Protocol: packet.ProtoUDP, Src: 1, Dst: 2, TotalLen: uint16(size)}
			buf := make([]byte, size)
			for i := range buf {
				buf[i] = byte(i)
			}
			h.MarshalInto(buf)
			pkt := &trace.Packet{Data: buf}
			bench, err := core.New(apps.PayloadScan([4]byte{9, 9, 9, 9}), core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var instr uint64
			for i := 0; i < b.N; i++ {
				res, err := bench.ProcessPacket(pkt)
				if err != nil {
					b.Fatal(err)
				}
				instr += res.Record.Instructions
			}
			b.ReportMetric(float64(instr)/float64(b.N), "sim-instr/pkt")
		})
	}
}

// BenchmarkAblationCacheSize sweeps first-level cache sizes under the
// IPv4-radix workload — quantifying the paper's motivation that "smaller
// on-chip memories suffice due to the nature of packet processing": the
// instruction working set fits in the smallest cache, while the data
// side is table-walk dominated and barely improves with capacity.
func BenchmarkAblationCacheSize(b *testing.B) {
	pkts := GenerateTrace("MRA", 500)
	tbl := RouteTableFromTrace(pkts, 8192)
	for _, kb := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("size=%dKB", kb), func(b *testing.B) {
			bench, err := core.New(apps.IPv4Radix(tbl), core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			ic, err := microarch.NewCache(kb*1024, 16, 2)
			if err != nil {
				b.Fatal(err)
			}
			dc, err := microarch.NewCache(kb*1024, 16, 2)
			if err != nil {
				b.Fatal(err)
			}
			prof := microarch.NewProfiler(ic, dc)
			bench.AddTracer(prof)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bench.ProcessPacket(pkts[i%len(pkts)]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*ic.MissRate(), "icache-miss-%")
			b.ReportMetric(100*dc.MissRate(), "dcache-miss-%")
		})
	}
}
