// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index). Each benchmark
// runs the corresponding experiment end to end and reports the headline
// quantity of that table/figure as a custom metric, so `go test -bench`
// output doubles as a compact reproduction summary. The full formatted
// tables and ASCII figures come from `go run ./cmd/pbreport`.
//
// Benchmark workloads are scaled below the paper's packet counts to keep
// a full -bench=. sweep in seconds; cmd/pbreport runs paper scale.
package packetbench

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/ptrace"
	"repro/internal/report"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// benchConfig scales the experiments for benchmarking.
var benchConfig = report.Config{
	TablePackets:       1_000,
	CoveragePackets:    500,
	VariationPackets:   2_000,
	FigurePackets:      500,
	RoutePrefixes:      8_192,
	SmallRoutePrefixes: 512,
}

// benchEnv is shared across benchmarks; construction cost (trace and
// table generation) is excluded from timings via b.ResetTimer.
var benchEnv *report.Env

func env(b *testing.B) *report.Env {
	b.Helper()
	if benchEnv == nil {
		benchEnv = report.NewEnv(benchConfig)
	}
	return benchEnv
}

// BenchmarkTable1TraceGen regenerates Table I's trace inventory by
// generating packets from each profile (the inventory itself is static;
// the work is the generation the other experiments depend on).
func BenchmarkTable1TraceGen(b *testing.B) {
	profiles := gen.Profiles()
	b.ReportMetric(float64(len(profiles)), "traces")
	var pkts int
	for i := 0; i < b.N; i++ {
		for _, p := range profiles {
			pkts += len(gen.Generate(p, 500))
		}
	}
	b.ReportMetric(float64(pkts)/float64(b.N), "packets/op")
}

// BenchmarkTable2Complexity runs the 4x4 application/trace matrix and
// reports the paper's headline cell: IPv4-radix mean instructions per
// packet (paper: thousands; trie and flow: low hundreds).
func BenchmarkTable2Complexity(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var m *report.Matrix
	var err error
	for i := 0; i < b.N; i++ {
		m, err = e.RunMatrix(benchConfig.TablePackets)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.Cells["MRA"]["IPv4-radix"].MeanInstructions, "radix-instr/pkt")
	b.ReportMetric(m.Cells["MRA"]["IPv4-trie"].MeanInstructions, "trie-instr/pkt")
	b.ReportMetric(m.Cells["MRA"]["Flow Classification"].MeanInstructions, "flow-instr/pkt")
	b.ReportMetric(m.Cells["MRA"]["TSA"].MeanInstructions, "tsa-instr/pkt")
}

// BenchmarkTable3MemAccess reports the Table III split: packet versus
// non-packet memory accesses per packet for IPv4-radix (paper: 32 vs
// ~840).
func BenchmarkTable3MemAccess(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var m *report.Matrix
	var err error
	for i := 0; i < b.N; i++ {
		m, err = e.RunMatrix(benchConfig.TablePackets)
		if err != nil {
			b.Fatal(err)
		}
	}
	c := m.Cells["MRA"]["IPv4-radix"]
	b.ReportMetric(c.MeanPacketAcc, "radix-pktacc/pkt")
	b.ReportMetric(c.MeanNonPacketAcc, "radix-nonpkt/pkt")
}

// BenchmarkTable4MemCoverage reports the Table IV memory footprints for
// IPv4-radix (paper: 4,420 instruction bytes, 18,004 data bytes).
func BenchmarkTable4MemCoverage(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var rows []report.Table4Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = e.Table4()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.App == "IPv4-radix" {
			b.ReportMetric(float64(r.InstrMemSize), "radix-instr-bytes")
			b.ReportMetric(float64(r.DataMemSize), "radix-data-bytes")
		}
	}
}

// BenchmarkTable5Variation reports the Table V concentration: combined
// share of the three most frequent instruction counts for Flow
// Classification (paper: ~94%).
func BenchmarkTable5Variation(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var rows []report.VariationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = e.Variation(false)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.App {
		case "Flow Classification":
			b.ReportMetric(r.Table.TopPct(), "flow-top3-pct")
		case "IPv4-radix":
			b.ReportMetric(r.Table.TopPct(), "radix-top3-pct")
		}
	}
}

// BenchmarkTable6UniqueVariation reports Table VI: the repetition factor
// (total/unique instructions) for IPv4-radix versus IPv4-trie (paper:
// ~4x vs ~1.5x).
func BenchmarkTable6UniqueVariation(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var totals, uniques []report.VariationRow
	var err error
	for i := 0; i < b.N; i++ {
		totals, err = e.Variation(false)
		if err != nil {
			b.Fatal(err)
		}
		uniques, err = e.Variation(true)
		if err != nil {
			b.Fatal(err)
		}
	}
	factor := func(app string) float64 {
		var tot, uni float64
		for _, r := range totals {
			if r.App == app {
				tot = r.Table.Mean
			}
		}
		for _, r := range uniques {
			if r.App == app {
				uni = r.Table.Mean
			}
		}
		if uni == 0 {
			return 0
		}
		return tot / uni
	}
	b.ReportMetric(factor("IPv4-radix"), "radix-repetition")
	b.ReportMetric(factor("IPv4-trie"), "trie-repetition")
}

// BenchmarkFig3ComplexityScatter regenerates the Figure 3 per-packet
// series and reports the IPv4-radix min-max spread (paper: wide) and the
// Flow Classification spread (paper: a few discrete levels).
func BenchmarkFig3ComplexityScatter(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var series []report.Series
	var err error
	for i := 0; i < b.N; i++ {
		series, err = e.FigureSeries(report.MetricInstructions)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range series {
		lo, hi := s.Values[0], s.Values[0]
		for _, v := range s.Values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		name := "radix-spread"
		if s.App == "Flow Classification" {
			name = "flow-spread"
		}
		b.ReportMetric(hi-lo, name)
	}
}

// BenchmarkFig4PacketMemScatter regenerates Figure 4 and reports the
// near-constant packet-memory access level.
func BenchmarkFig4PacketMemScatter(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var series []report.Series
	var err error
	for i := 0; i < b.N; i++ {
		series, err = e.FigureSeries(report.MetricPacketAccesses)
		if err != nil {
			b.Fatal(err)
		}
	}
	var sum float64
	for _, v := range series[0].Values {
		sum += v
	}
	b.ReportMetric(sum/float64(len(series[0].Values)), "radix-pktacc/pkt")
}

// BenchmarkFig5NonPacketMemScatter regenerates Figure 5 and reports the
// correlation driver: mean non-packet accesses for IPv4-radix.
func BenchmarkFig5NonPacketMemScatter(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var series []report.Series
	var err error
	for i := 0; i < b.N; i++ {
		series, err = e.FigureSeries(report.MetricNonPacketAccesses)
		if err != nil {
			b.Fatal(err)
		}
	}
	var sum float64
	for _, v := range series[0].Values {
		sum += v
	}
	b.ReportMetric(sum/float64(len(series[0].Values)), "radix-nonpkt/pkt")
}

// BenchmarkFig6InstrPattern regenerates the single-packet instruction
// pattern and reports the loop repetition visible in Figure 6.
func BenchmarkFig6InstrPattern(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var patterns []report.Pattern
	var err error
	for i := 0; i < b.N; i++ {
		patterns, err = e.Figure6(0)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range patterns {
		name := "radix-repetition"
		if p.App == "Flow Classification" {
			name = "flow-repetition"
		}
		b.ReportMetric(float64(len(p.Indices))/float64(p.Unique), name)
	}
}

// BenchmarkFig7BBFreq regenerates Figure 7 and reports the fraction of
// basic blocks executed by every packet (probability 1).
func BenchmarkFig7BBFreq(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var bs []report.BlockStats
	var err error
	for i := 0; i < b.N; i++ {
		bs, err = e.BlockStatistics()
		if err != nil {
			b.Fatal(err)
		}
	}
	always := 0
	for _, p := range bs[0].Probabilities {
		if p == 1 {
			always++
		}
	}
	b.ReportMetric(float64(always)/float64(len(bs[0].Probabilities)), "radix-always-frac")
}

// BenchmarkFig8BBCoverage regenerates Figure 8 and reports the paper's
// sweet spot: blocks needed for 90% packet coverage.
func BenchmarkFig8BBCoverage(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var bs []report.BlockStats
	var err error
	for i := 0; i < b.N; i++ {
		bs, err = e.BlockStatistics()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range bs {
		name := "radix-blocks90"
		if s.App == "Flow Classification" {
			name = "flow-blocks90"
		}
		b.ReportMetric(float64(s.Blocks90), name)
	}
}

// BenchmarkFig9MemSequence regenerates the single-packet memory access
// sequence and reports its length.
func BenchmarkFig9MemSequence(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var seqs []report.MemSeq
	var err error
	for i := 0; i < b.N; i++ {
		seqs, err = e.Figure9(0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(seqs[0].Instr)), "radix-accesses")
}

// ----------------------------------------------------------------------
// Raw throughput benchmarks: how fast the simulator itself runs. These
// are not paper experiments but the practical numbers a user of the tool
// cares about.

func benchmarkApp(b *testing.B, app *core.App, pkts []*trace.Packet) {
	bench, err := core.New(app, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		res, err := bench.ProcessPacket(pkts[i%len(pkts)])
		if err != nil {
			b.Fatal(err)
		}
		instr += res.Record.Instructions
	}
	b.ReportMetric(float64(instr)/float64(b.N), "sim-instr/pkt")
}

func benchPackets(b *testing.B) ([]*trace.Packet, *RouteTable) {
	b.Helper()
	pkts := GenerateTrace("MRA", 2000)
	return pkts, RouteTableFromTrace(pkts, 8192)
}

func BenchmarkSimIPv4Radix(b *testing.B) {
	pkts, tbl := benchPackets(b)
	benchmarkApp(b, NewIPv4Radix(tbl), pkts)
}

func BenchmarkSimIPv4Trie(b *testing.B) {
	pkts, tbl := benchPackets(b)
	benchmarkApp(b, NewIPv4Trie(tbl), pkts)
}

func BenchmarkSimFlowClassification(b *testing.B) {
	pkts, _ := benchPackets(b)
	benchmarkApp(b, NewFlowClassification(0), pkts)
}

func BenchmarkSimTSA(b *testing.B) {
	pkts, _ := benchPackets(b)
	benchmarkApp(b, NewTSA(7), pkts)
}

// BenchmarkSimulatorMIPS measures raw simulated instructions per second
// with the statistics collector attached (the realistic configuration).
func BenchmarkSimulatorMIPS(b *testing.B) {
	pkts, tbl := benchPackets(b)
	bench, err := core.New(NewIPv4Radix(tbl), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		res, err := bench.ProcessPacket(pkts[i%len(pkts)])
		if err != nil {
			b.Fatal(err)
		}
		instr += res.Record.Instructions
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(instr)/sec/1e6, "sim-MIPS")
	}
}

// BenchmarkProcessPacketSmall measures the per-packet hot path on
// 40–64-byte packets — the minimum-size traffic that dominates backbone
// captures — across engine × tracing. Before the dirty-length
// optimization every packet paid a 64 KiB buffer memset; now placement
// cost tracks the packet size. The threaded/traced=false row is the
// fast path (statistics off, block-threaded dispatch) and is the one to
// watch for hot-path regressions; interp rows exist so the speedup of
// the block-threaded engine over the reference interpreter stays
// visible in plain -bench output.
func BenchmarkProcessPacketSmall(b *testing.B) {
	pkts := make([]*trace.Packet, 256)
	for i := range pkts {
		n := 40 + i%25 // 40..64 bytes
		data := make([]byte, n)
		data[0] = 0x45 // IPv4, IHL 5
		data[9] = 17   // UDP
		data[12] = byte(i)
		data[16] = byte(i >> 4)
		pkts[i] = &trace.Packet{Data: data, WireLen: n}
	}
	for _, engine := range []core.EngineKind{core.EngineThreaded, core.EngineInterpreter} {
		for _, traced := range []bool{false, true} {
			b.Run(fmt.Sprintf("%s/traced=%v", engine, traced), func(b *testing.B) {
				bench, err := core.New(NewTSA(7), core.Options{Engine: engine})
				if err != nil {
					b.Fatal(err)
				}
				bench.SetTracing(traced)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := bench.ProcessPacket(pkts[i%len(pkts)]); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	// Telemetry guardrail on the fast path (threaded, tracing off): with
	// no registry the hot path must keep zero allocations per packet —
	// only nil-check branches remain; with a registry attached the cost
	// is a handful of atomic adds and must stay allocation-free too.
	for _, tel := range []bool{false, true} {
		b.Run(fmt.Sprintf("telemetry=%v", tel), func(b *testing.B) {
			opts := core.Options{Engine: core.EngineThreaded}
			if tel {
				opts.Metrics = telemetry.NewRegistry()
			}
			bench, err := core.New(NewTSA(7), opts)
			if err != nil {
				b.Fatal(err)
			}
			bench.SetTracing(false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bench.ProcessPacket(pkts[i%len(pkts)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Packet-journey tracing guardrail, same contract as telemetry:
	// disarmed (no Tracer in Options) the hot path pays only nil
	// checks and must stay at zero allocations per packet; armed, every
	// span lands in preallocated rings and must stay allocation-free
	// too.
	for _, traced := range []bool{false, true} {
		b.Run(fmt.Sprintf("ptrace=%v", traced), func(b *testing.B) {
			opts := core.Options{Engine: core.EngineThreaded}
			if traced {
				opts.Trace = ptrace.New(ptrace.Config{Lanes: 1, SampleEvery: 64})
			}
			bench, err := core.New(NewTSA(7), opts)
			if err != nil {
				b.Fatal(err)
			}
			bench.SetTracing(false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bench.ProcessPacket(pkts[i%len(pkts)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPoolThroughput measures multi-core scaling of the work-queue
// scheduler on the heaviest application (IPv4-radix). The packets/sec
// metric should scale with the core count up to the host's parallelism.
func BenchmarkPoolThroughput(b *testing.B) {
	pkts, tbl := benchPackets(b)
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("cores=%d", n), func(b *testing.B) {
			pool, err := core.NewPool(NewIPv4Radix(tbl), n, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pool.RunPackets(pkts, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(b.N)*float64(len(pkts))/sec, "pkts/sec")
			}
		})
	}
}

// BenchmarkPoolStreaming measures the bounded-channel streaming path
// (Pool.RunTrace) against the same workload and core counts, capturing
// the scheduler's overhead relative to the in-memory cursor path above.
// With 64-packet batches amortizing channel synchronization, streaming
// pkts/sec should stay within ~10% of BenchmarkPoolThroughput at every
// core count — the line-rate ingestion target.
func BenchmarkPoolStreaming(b *testing.B) {
	pkts, tbl := benchPackets(b)
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("cores=%d", n), func(b *testing.B) {
			pool, err := core.NewPool(NewIPv4Radix(tbl), n, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pool.RunTrace(trace.NewSliceReader(pkts), 0, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(b.N)*float64(len(pkts))/sec, "pkts/sec")
			}
		})
	}
}

func BenchmarkSimPayloadScan(b *testing.B) {
	pkts, _ := benchPackets(b)
	benchmarkApp(b, NewPayloadScan([4]byte{1, 2, 3, 4}), pkts)
}

func BenchmarkSimFrag(b *testing.B) {
	pkts, _ := benchPackets(b)
	benchmarkApp(b, NewFrag(576), pkts)
}
