// Command benchjson converts `go test -bench` text output into a JSON
// document suitable for storing as a CI artifact or diffing across
// runs. It reads benchmark output on stdin and writes JSON on stdout:
//
//	go test -run XXX -bench . ./... | go run ./cmd/benchjson > BENCH.json
//
// Every benchmark line becomes an entry with its iteration count and a
// metric map (ns/op plus any custom b.ReportMetric units such as
// instrs/sec); goos/goarch/cpu/pkg header lines are captured as
// environment metadata.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one `Benchmark...` result line.
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix trimmed.
	Name string `json:"name"`
	// Pkg is the package the benchmark ran in (last `pkg:` header seen).
	Pkg string `json:"pkg,omitempty"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value: "ns/op" plus custom ReportMetric
	// units ("instrs/sec", "pkts/sec", ...).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the whole document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse consumes `go test -bench` output line by line. Lines that are
// neither benchmark results nor recognized headers (PASS, ok, test log
// output) are ignored, so raw `go test` output can be piped in whole.
func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			b.Pkg = pkg
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	return rep, sc.Err()
}

// parseBenchLine parses one result line:
//
//	BenchmarkName/sub-8   1234   567 ns/op   89.0 instrs/sec
//
// Fields after the iteration count come in value/unit pairs.
func parseBenchLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: trimProcs(f[0]), Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}

// trimProcs drops the trailing -GOMAXPROCS suffix go test appends to
// benchmark names ("BenchmarkX/sub-8" -> "BenchmarkX/sub"). Only a
// purely numeric suffix after the last dash is removed, so names that
// merely contain dashes survive intact.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
