package main

import (
	"bufio"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/vm
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkVMDispatch/threaded/traced=false-4         	   47302	      7776 ns/op	      2052 instrs/op	 263886865 instrs/sec
BenchmarkVMDispatch/interp/traced=false-4           	   25526	     14144 ns/op	      2052 instrs/op	 145082435 instrs/sec
PASS
ok  	repro/internal/vm	1.998s
pkg: repro
BenchmarkProcessPacketSmall/threaded/traced=false-4 	  360025	      1690 ns/op
=== RUN   TestSomething
--- PASS: TestSomething (0.00s)
`

func TestParse(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(sampleOutput)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("environment header not captured: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkVMDispatch/threaded/traced=false" {
		t.Errorf("name = %q (GOMAXPROCS suffix should be trimmed)", b.Name)
	}
	if b.Pkg != "repro/internal/vm" {
		t.Errorf("pkg = %q", b.Pkg)
	}
	if b.Iterations != 47302 {
		t.Errorf("iterations = %d", b.Iterations)
	}
	if b.Metrics["ns/op"] != 7776 || b.Metrics["instrs/sec"] != 263886865 {
		t.Errorf("metrics = %v", b.Metrics)
	}
	if got := rep.Benchmarks[2]; got.Pkg != "repro" || got.Metrics["ns/op"] != 1690 {
		t.Errorf("third benchmark = %+v", got)
	}
}

func TestTrimProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX-8":                "BenchmarkX",
		"BenchmarkX/sub-16":           "BenchmarkX/sub",
		"BenchmarkX/traced=false-4":   "BenchmarkX/traced=false",
		"BenchmarkX/pre-filter":       "BenchmarkX/pre-filter",
		"BenchmarkProcessPacketSmall": "BenchmarkProcessPacketSmall",
		"BenchmarkX/cores=2-4":        "BenchmarkX/cores=2",
		"BenchmarkTable1TraceGen-4":   "BenchmarkTable1TraceGen",
	}
	for in, want := range cases {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseBenchLineRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkBroken",
		"BenchmarkBroken notanumber 5 ns/op",
		"BenchmarkBroken 10 x ns/op",
		"BenchmarkOdd 10 5 ns/op extra",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("parseBenchLine(%q) accepted malformed line", line)
		}
	}
}
