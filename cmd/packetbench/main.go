// Command packetbench runs one of the paper's network processing
// applications over a packet trace on the simulated core and reports the
// collected workload statistics.
//
// Usage:
//
//	packetbench -app radix|trie|flow|tsa [-trace file | -gen profile] [flags]
//
// Examples:
//
//	packetbench -app radix -gen MRA -n 10000
//	packetbench -app flow -trace capture.pcap
//	packetbench -app tsa -gen LAN -n 1000 -out anon.pcap
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/isa"
	"repro/internal/microarch"
	"repro/internal/packet"
	"repro/internal/route"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	var (
		appName  = flag.String("app", "radix", "application: radix, trie, flow, or tsa")
		genName  = flag.String("gen", "", "generate a synthetic trace with this profile (MRA, COS, ODU, LAN)")
		inFile   = flag.String("trace", "", "read packets from this pcap/TSH file instead of generating")
		count    = flag.Int("n", 10000, "number of packets to process")
		prefixes = flag.Int("prefixes", 32768, "routing table size for the forwarding applications")
		buckets  = flag.Int("buckets", flow.DefaultBuckets, "hash buckets for flow classification")
		tsaKey   = flag.Uint64("key", 0x5453412D31363A31, "TSA anonymization key")
		outFile  = flag.String("out", "", "write processed packets to this pcap file (useful with -app tsa)")
		topK     = flag.Int("top", 3, "rows in the instruction-count occurrence table")
		preproc  = flag.Bool("preprocess", true, "apply NLANR renumbering + scrambling to generated backbone traces")
		uarch    = flag.Bool("microarch", false, "also report microarchitectural statistics (mix, branches, caches, cycles)")
		tableF   = flag.String("table", "", "load the routing table from this text file (\"a.b.c.d/len hop\" lines) instead of deriving it")
		dumpPkt  = flag.Int("dumppkt", -1, "print the disassembled execution trace of this packet index")
		annotate = flag.Bool("annotate", false, "print a gprof-style listing with per-instruction execution counts")
		flowDot  = flag.String("flowgraph", "", "write the weighted basic-block flow graph to this Graphviz file")
		pool     = flag.Int("pool", 1, "run on this many simulated cores via the streaming work-queue scheduler (stateful applications keep per-core state)")
	)
	flag.Parse()
	if err := run(*appName, *genName, *inFile, *outFile, *tableF, *count, *prefixes, *buckets, *topK, *tsaKey, *preproc, *uarch, *dumpPkt, *annotate, *flowDot, *pool); err != nil {
		fmt.Fprintln(os.Stderr, "packetbench:", err)
		os.Exit(1)
	}
}

func loadPackets(genName, inFile string, count int, preprocess bool) ([]*trace.Packet, error) {
	if inFile != "" {
		f, err := os.Open(inFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		format := trace.FormatPcap
		if len(inFile) > 4 && inFile[len(inFile)-4:] == ".tsh" {
			format = trace.FormatTSH
		}
		r, err := trace.NewReader(f, format)
		if err != nil {
			return nil, err
		}
		return trace.ReadAll(r, count)
	}
	if genName == "" {
		genName = "MRA"
	}
	prof, err := gen.ProfileByName(genName)
	if err != nil {
		return nil, err
	}
	pkts := gen.Generate(prof, count)
	if preprocess && genName != "LAN" {
		gen.RenumberNLANR(pkts)
		gen.ScrambleAddrs(pkts)
	}
	return pkts, nil
}

func run(appName, genName, inFile, outFile, tableFile string, count, prefixes, buckets, topK int, tsaKey uint64, preprocess, uarch bool, dumpPkt int, annotate bool, flowDot string, poolSize int) error {
	pkts, err := loadPackets(genName, inFile, count, preprocess)
	if err != nil {
		return err
	}
	if len(pkts) == 0 {
		return fmt.Errorf("no packets to process")
	}

	var app *core.App
	switch appName {
	case "radix", "trie":
		var tbl *route.Table
		if tableFile != "" {
			f, err := os.Open(tableFile)
			if err != nil {
				return err
			}
			tbl, err = route.ParseTable(f)
			f.Close()
			if err != nil {
				return err
			}
		} else {
			var dsts []uint32
			for _, p := range pkts {
				if h, err := packet.ParseIPv4(p.Data); err == nil {
					dsts = append(dsts, h.Dst)
				}
			}
			tbl = route.TableFromTraffic(dsts, prefixes, 16, 1)
		}
		if appName == "radix" {
			app = apps.IPv4Radix(tbl)
		} else {
			app = apps.IPv4Trie(tbl)
		}
		fmt.Printf("routing table: %d prefixes\n", len(tbl.Entries))
	case "flow":
		app = apps.FlowClassification(buckets)
	case "tsa":
		app = apps.TSAApp(tsaKey)
	default:
		return fmt.Errorf("unknown application %q (want radix, trie, flow or tsa)", appName)
	}

	if poolSize > 1 {
		return runPool(app, pkts, poolSize, topK)
	}

	bench, err := core.New(app, core.Options{Coverage: true, Detail: dumpPkt >= 0 || flowDot != ""})
	if err != nil {
		return err
	}
	bench.Collector().CountPCs = annotate

	var prof *microarch.Profiler
	if uarch {
		icache, err := microarch.NewCache(4096, 16, 2)
		if err != nil {
			return err
		}
		dcache, err := microarch.NewCache(8192, 16, 2)
		if err != nil {
			return err
		}
		prof = microarch.NewProfiler(icache, dcache)
		bench.AddTracer(prof)
	}

	var outW trace.Writer
	var outClose func() error
	if outFile != "" {
		f, err := os.Create(outFile)
		if err != nil {
			return err
		}
		w, err := trace.NewPcapWriter(f)
		if err != nil {
			f.Close()
			return err
		}
		outW, outClose = w, f.Close
	}

	verdicts := make(map[uint32]int)
	var blockSeqs [][]int
	records, err := bench.RunPackets(pkts, func(i int, res core.Result) {
		verdicts[res.Verdict]++
		if i == dumpPkt {
			dumpTrace(bench, i, res)
		}
		if flowDot != "" {
			blockSeqs = append(blockSeqs, append([]int(nil), bench.Collector().BlockSeq...))
		}
		if outW != nil {
			out := *pkts[i]
			out.Data = bench.PacketBytes(len(pkts[i].Data))
			if err := outW.WritePacket(&out); err != nil {
				fmt.Fprintln(os.Stderr, "packetbench: write:", err)
			}
		}
	})
	if err != nil {
		return err
	}
	if outClose != nil {
		if err := outClose(); err != nil {
			return err
		}
	}

	s := stats.Summarize(records)
	fmt.Printf("\n%s over %d packets\n", app.Name, s.Packets)
	fmt.Printf("  instructions/packet:        %10.1f\n", s.MeanInstructions)
	fmt.Printf("  unique instructions/packet: %10.1f\n", s.MeanUnique)
	fmt.Printf("  packet mem accesses/packet: %10.1f\n", s.MeanPacketAcc)
	fmt.Printf("  non-packet accesses/packet: %10.1f\n", s.MeanNonPacketAcc)
	fmt.Printf("  instruction memory touched: %10d bytes\n", bench.Collector().InstrMemSize())
	fmt.Printf("  data memory touched:        %10d bytes\n", bench.Collector().DataMemSize())

	occ := analysis.Occurrences(stats.InstructionCounts(records), topK)
	fmt.Printf("\n  most frequent instruction counts:\n")
	for _, o := range occ.Top {
		fmt.Printf("    %8d instructions: %6d packets (%.2f%%)\n", o.Value, o.Count, o.Pct(occ.Total))
	}
	fmt.Printf("    min %d (%.2f%%), max %d (%.2f%%), mean %.1f\n",
		occ.Min.Value, occ.Min.Pct(occ.Total), occ.Max.Value, occ.Max.Pct(occ.Total), occ.Mean)

	fmt.Printf("\n  verdicts:\n")
	for v, n := range verdicts {
		fmt.Printf("    %4d: %d packets\n", v, n)
	}

	if prof != nil {
		prof.Flush()
		fmt.Printf("\nmicroarchitectural profile:\n%s", prof.Report())
	}
	if annotate {
		printAnnotatedListing(bench)
	}
	if flowDot != "" {
		g := analysis.BuildFlowGraph(blockSeqs, bench.BlockMap().NumBlocks())
		if err := os.WriteFile(flowDot, []byte(g.Dot()), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote weighted flow graph (%d edges) to %s\n", len(g.Edges), flowDot)
	}
	return nil
}

// printAnnotatedListing renders the program with per-instruction
// execution counts — the paper's application-optimization use case.
func printAnnotatedListing(bench *core.Bench) {
	col := bench.Collector()
	prog := bench.Program()
	var total uint64
	for _, c := range col.PCCounts {
		total += c
	}
	fmt.Printf("\nannotated listing (%d dynamic instructions):\n", total)
	for i, in := range prog.Text {
		pc := prog.TextBase + uint32(i)*4
		count := uint64(0)
		if i < len(col.PCCounts) {
			count = col.PCCounts[i]
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(count) / float64(total)
		}
		marker := " "
		if pct >= 2 {
			marker = "*" // hot instruction
		}
		fmt.Printf("  %s %10d %6.2f%%  %08x  %s\n", marker, count, pct, pc, isa.Disassemble(pc, in))
	}
}

// dumpTrace prints the disassembled execution trace of one packet (the
// detail view behind the paper's Figure 6).
func dumpTrace(bench *core.Bench, idx int, res core.Result) {
	col := bench.Collector()
	prog := bench.Program()
	fmt.Printf("\nexecution trace of packet %d (%d instructions, verdict %d):\n",
		idx, len(col.InstrTrace), res.Verdict)
	const maxLines = 300
	for n, pc := range col.InstrTrace {
		if n == maxLines {
			fmt.Printf("  ... %d more instructions ...\n", len(col.InstrTrace)-maxLines)
			break
		}
		in, ok := prog.InstrAt(pc)
		if !ok {
			continue
		}
		fmt.Printf("  %6d  %08x  %s\n", n, pc, isa.Disassemble(pc, in))
	}
	fmt.Printf("  block entry sequence: %v\n", col.BlockSeq)
}

// runPool streams the trace through several simulated cores and prints
// the pooled summary. Records are aggregated on the fly (no in-memory
// record slice), and verdicts are counted exactly as in the single-core
// path. Stateful applications (flow classification) keep per-core tables
// in this mode, as real replicated-state engines would.
func runPool(app *core.App, pkts []*trace.Packet, n, topK int) error {
	pool, err := core.NewPool(app, n, core.Options{})
	if err != nil {
		return err
	}
	agg := &stats.Running{KeepInstructionCounts: true}
	verdicts := make(map[uint32]int)
	if _, err := pool.RunTrace(trace.NewSliceReader(pkts), 0, func(i int, res core.Result) {
		agg.Add(&res.Record)
		verdicts[res.Verdict]++
	}); err != nil {
		return err
	}
	s := agg.Summary()
	fmt.Printf("\n%s over %d packets on %d simulated cores\n", app.Name, s.Packets, n)
	fmt.Printf("  instructions/packet:        %10.1f\n", s.MeanInstructions)
	fmt.Printf("  unique instructions/packet: %10.1f\n", s.MeanUnique)
	fmt.Printf("  packet mem accesses/packet: %10.1f\n", s.MeanPacketAcc)
	fmt.Printf("  non-packet accesses/packet: %10.1f\n", s.MeanNonPacketAcc)
	occ := analysis.Occurrences(agg.InstructionCounts(), topK)
	fmt.Printf("  most frequent count: %d instructions (%.2f%%)\n",
		occ.Top[0].Value, occ.Top[0].Pct(occ.Total))
	fmt.Printf("\n  verdicts:\n")
	for v, c := range verdicts {
		fmt.Printf("    %4d: %d packets\n", v, c)
	}
	return nil
}
