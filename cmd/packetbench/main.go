// Command packetbench runs one of the paper's network processing
// applications over a packet trace on the simulated core and reports the
// collected workload statistics.
//
// Usage:
//
//	packetbench -app radix|trie|flow|tsa [-trace file | -gen profile] [flags]
//
// Examples:
//
//	packetbench -app radix -gen MRA -n 10000
//	packetbench -app flow -trace capture.pcap
//	packetbench -app flow -trace shard-0.pcap,shard-1.pcap -pool 8
//	packetbench -app tsa -gen LAN -n 1000 -out anon.pcap
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/isa"
	"repro/internal/microarch"
	"repro/internal/packet"
	"repro/internal/profile"
	"repro/internal/ptrace"
	"repro/internal/route"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vm"
)

// config carries every run parameter; main fills it from flags, tests
// build it directly.
type config struct {
	app        string // radix, trie, flow, tsa
	gen        string // synthetic trace profile
	traceFile  string // input pcap/TSH path(s), comma-separated (overrides gen)
	mmapTrace  bool   // memory-map pcap inputs when streaming
	batch      int    // packets per streaming pool job; 0 = default
	outFile    string // output pcap path
	tableFile  string // routing table text file
	count      int
	prefixes   int
	buckets    int
	topK       int
	tsaKey     uint64
	preprocess bool
	uarch      bool
	dumpPkt    int
	annotate   bool
	flowDot    string
	pool       int
	engine     string // threaded (default) or interp

	// Fault handling.
	noVerify    bool   // skip the static verifier at load time
	faultPolicy string // fail-fast, skip, retry
	errorBudget int    // quarantine budget for skip/retry; 0 = unlimited
	maxAttempts int    // attempts per packet under retry
	inject      string // faultinject.ParsePlan spec
	seed        int64  // seed for injected randomness

	// Crash-only operation.
	checkpoint      string        // checkpoint file path; enables periodic checkpoints
	checkpointEvery int           // committed packets between checkpoint writes
	resume          bool          // resume from the checkpoint file
	deadline        time.Duration // whole-run wall-clock deadline; 0 = none
	stallTimeout    time.Duration // per-worker progress watchdog; 0 = off
	shed            string        // overload shed policy: block, drop-newest, drop-oldest

	// Observability.
	progress    bool          // live status line on stderr
	debugAddr   string        // /metrics + expvar + pprof HTTP endpoint
	profileOut  string        // guest-profile output path prefix
	profileIn   string        // recorded counts sidecar feeding PGO compilation
	traceOut    string        // packet-journey Chrome trace JSON output path
	traceSample string        // head-sampling rate, "1/N" (or N); "off" disables
	traceTail   time.Duration // always keep journeys slower than this
	flightPath  string        // flight-recorder dump path, written on aborts
}

func main() {
	var cfg config
	flag.StringVar(&cfg.app, "app", "radix", "application: radix, trie, flow, or tsa")
	flag.StringVar(&cfg.gen, "gen", "", "generate a synthetic trace with this profile (MRA, COS, ODU, LAN)")
	flag.StringVar(&cfg.traceFile, "trace", "", "read packets from these pcap/TSH files (comma-separated shards replay merged by timestamp) instead of generating")
	flag.BoolVar(&cfg.mmapTrace, "mmap", true, "memory-map pcap inputs when streaming into the pool (zero-copy; buffered reads when unavailable)")
	flag.IntVar(&cfg.batch, "batch", 0, "packets per streaming pool job (0 = scheduler default)")
	flag.IntVar(&cfg.count, "n", 10000, "number of packets to process")
	flag.IntVar(&cfg.prefixes, "prefixes", 32768, "routing table size for the forwarding applications")
	flag.IntVar(&cfg.buckets, "buckets", flow.DefaultBuckets, "hash buckets for flow classification")
	flag.Uint64Var(&cfg.tsaKey, "key", 0x5453412D31363A31, "TSA anonymization key")
	flag.StringVar(&cfg.outFile, "out", "", "write processed packets to this pcap file (useful with -app tsa)")
	flag.IntVar(&cfg.topK, "top", 3, "rows in the instruction-count occurrence table")
	flag.BoolVar(&cfg.preprocess, "preprocess", true, "apply NLANR renumbering + scrambling to generated backbone traces")
	flag.BoolVar(&cfg.uarch, "microarch", false, "also report microarchitectural statistics (mix, branches, caches, cycles)")
	flag.StringVar(&cfg.tableFile, "table", "", "load the routing table from this text file (\"a.b.c.d/len hop\" lines) instead of deriving it")
	flag.IntVar(&cfg.dumpPkt, "dumppkt", -1, "print the disassembled execution trace of this packet index")
	flag.BoolVar(&cfg.annotate, "annotate", false, "print a gprof-style listing with per-instruction execution counts")
	flag.StringVar(&cfg.flowDot, "flowgraph", "", "write the weighted basic-block flow graph to this Graphviz file")
	flag.IntVar(&cfg.pool, "pool", 1, "run on this many simulated cores via the streaming work-queue scheduler (stateful applications keep per-core state)")
	flag.StringVar(&cfg.engine, "engine", "threaded", "execution engine: threaded (block-threaded, default), compiled (profile-guided closure compilation over the threaded tier), or interp (reference interpreter)")
	flag.BoolVar(&cfg.noVerify, "no-verify", false, "load the application even if the static verifier reports errors")
	flag.StringVar(&cfg.faultPolicy, "fault-policy", "fail-fast", "reaction to per-packet faults: fail-fast, skip (quarantine and continue), or retry")
	flag.IntVar(&cfg.errorBudget, "error-budget", 0, "max packets one run may quarantine under -fault-policy skip/retry (0 = unlimited); also bounds malformed trace records skipped by the readers")
	flag.IntVar(&cfg.maxAttempts, "max-attempts", 2, "total attempts per packet under -fault-policy retry")
	flag.StringVar(&cfg.inject, "inject", "", "deterministic fault injection plan, e.g. \"flip@3,vmfault@11,panic@19,stall@31,readerr@40\" (kinds: flip, trunc, clamp, vmfault, panic, delay, stall, readerr, tearckpt)")
	flag.Int64Var(&cfg.seed, "seed", 1, "seed for -inject randomness (unspecified offsets, masks, step counts)")
	flag.StringVar(&cfg.checkpoint, "checkpoint", "", "write periodic resume checkpoints of a streaming pool run to this file (atomic rename; see -resume)")
	flag.IntVar(&cfg.checkpointEvery, "checkpoint-every", 8192, "committed packets between checkpoint writes")
	flag.BoolVar(&cfg.resume, "resume", false, "resume the run from the -checkpoint file instead of starting over")
	flag.DurationVar(&cfg.deadline, "deadline", 0, "cancel the run after this wall-clock duration (0 = none)")
	flag.DurationVar(&cfg.stallTimeout, "stall-timeout", 0, "cancel a pool run when a worker makes no progress for this long (0 = watchdog off)")
	flag.StringVar(&cfg.shed, "shed", "block", "pool overload policy when the backlog is full: block (lossless), drop-newest, or drop-oldest")
	flag.BoolVar(&cfg.progress, "progress", false, "render a live status line on stderr: packets/sec, instrs/sec, faults, p99 latency, shed/stall counts, %% complete")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "serve /metrics (Prometheus text), /debug/vars (expvar) and /debug/pprof on this address (e.g. :6060)")
	flag.StringVar(&cfg.profileOut, "profile-out", "", "write guest-program profiles to <path>.folded (flamegraph), <path>.pb.gz (go tool pprof) and <path>.counts (-profile-in sidecar)")
	flag.StringVar(&cfg.profileIn, "profile-in", "", "seed -engine=compiled block selection from this recorded counts sidecar (written by a previous run's -profile-out)")
	flag.StringVar(&cfg.traceOut, "trace-out", "", "write sampled packet-journey spans as Chrome trace-event JSON to this file (load in Perfetto or chrome://tracing)")
	flag.StringVar(&cfg.traceSample, "trace-sample", "1/64", "packet-journey head-sampling rate, \"1/N\" or N (keep every Nth packet's span tree); \"off\" keeps only the slow-packet tail")
	flag.DurationVar(&cfg.traceTail, "trace-tail", 0, "always keep journeys of packets slower than this host latency, regardless of sampling (0 = reservoir of slowest only)")
	flag.StringVar(&cfg.flightPath, "flight-dump", "", "arm the flight recorder and write a post-mortem ring dump (Chrome trace JSON) to this file when the run aborts")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "packetbench:", err)
		os.Exit(1)
	}
}

// errorPolicy translates the CLI fault flags.
func (cfg *config) errorPolicy() (core.ErrorPolicy, error) {
	p, err := core.ParseFaultPolicy(cfg.faultPolicy)
	if err != nil {
		return core.ErrorPolicy{}, err
	}
	return core.ErrorPolicy{Policy: p, ErrorBudget: cfg.errorBudget, MaxAttempts: cfg.maxAttempts}, nil
}

// openTrace opens cfg.traceFile — one capture or a comma-separated shard
// list replayed in timestamp order through a trace.MergeReader — and
// returns the reader, a cleanup closing every underlying file (and
// mapping), and a malformed-record counter summed across shards. Pcap
// shards are memory-mapped when useMmap is set, serving packet bytes
// zero-copy from the page cache; TSH shards always read buffered.
func openTrace(cfg *config, skipMalformed, useMmap bool) (trace.Reader, func() error, func() int, error) {
	var (
		readers []trace.Reader
		closers []func() error
		skips   []func() int
	)
	cleanup := func() error {
		var first error
		for _, c := range closers {
			if err := c(); first == nil {
				first = err
			}
		}
		return first
	}
	for _, path := range strings.Split(cfg.traceFile, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		if strings.HasSuffix(path, ".tsh") {
			f, err := os.Open(path)
			if err != nil {
				cleanup()
				return nil, nil, nil, err
			}
			closers = append(closers, f.Close)
			tr := trace.NewTSHReader(f)
			// Let the reader report progress in input bytes.
			if fi, err := f.Stat(); err == nil {
				tr.SetTotal(fi.Size())
			}
			if skipMalformed {
				tr.SetSkipMalformed(cfg.errorBudget)
			}
			skips = append(skips, tr.Skipped)
			readers = append(readers, tr)
			continue
		}
		open := trace.OpenPcapBuffered
		if useMmap {
			open = trace.OpenPcap
		}
		fr, err := open(path)
		if err != nil {
			cleanup()
			return nil, nil, nil, err
		}
		closers = append(closers, fr.Close)
		// Under a skip policy the readers degrade the same way the run
		// engine does: malformed records are skipped (resyncing the
		// stream) under the shared budget idea instead of aborting.
		if skipMalformed {
			fr.SetSkipMalformed(cfg.errorBudget)
		}
		skips = append(skips, fr.Skipped)
		readers = append(readers, fr)
	}
	if len(readers) == 0 {
		cleanup()
		return nil, nil, nil, fmt.Errorf("no trace files in %q", cfg.traceFile)
	}
	skipped := func() int {
		n := 0
		for _, s := range skips {
			n += s()
		}
		return n
	}
	if len(readers) == 1 {
		return readers[0], cleanup, skipped, nil
	}
	return trace.NewMergeReader(readers...), cleanup, skipped, nil
}

// traceFingerprints fingerprints every shard of cfg.traceFile in shard
// order — the same order openTrace builds its readers — so checkpoints
// refuse to resume against a different or rewritten capture.
func traceFingerprints(cfg *config) ([]core.TraceID, error) {
	var ids []core.TraceID
	for _, path := range strings.Split(cfg.traceFile, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		id, err := core.FingerprintFile(path)
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

func loadPackets(cfg *config, skipMalformed bool) ([]*trace.Packet, error) {
	if cfg.traceFile != "" {
		// Preloaded packets outlive the reader, so never mmap here: a
		// zero-copy packet must not alias an unmapped file.
		r, cleanup, skipped, err := openTrace(cfg, skipMalformed, false)
		if err != nil {
			return nil, err
		}
		pkts, rerr := trace.ReadAll(r, cfg.count)
		cerr := cleanup()
		if n := skipped(); n > 0 {
			fmt.Printf("trace: skipped %d malformed records\n", n)
		}
		if rerr != nil {
			return nil, rerr
		}
		if cerr != nil {
			return nil, cerr
		}
		return pkts, nil
	}
	genName := cfg.gen
	if genName == "" {
		genName = "MRA"
	}
	prof, err := gen.ProfileByName(genName)
	if err != nil {
		return nil, err
	}
	pkts := gen.Generate(prof, cfg.count)
	if cfg.preprocess && genName != "LAN" {
		gen.RenumberNLANR(pkts)
		gen.ScrambleAddrs(pkts)
	}
	return pkts, nil
}

// reportFaults prints the quarantine breakdown of a finished run.
func reportFaults(s stats.Summary) {
	if s.Faulted == 0 {
		return
	}
	fmt.Printf("  quarantined packets:        %10d\n", s.Faulted)
	kinds := make([]vm.FaultKind, 0, len(s.FaultCounts))
	for k := range s.FaultCounts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Printf("    %-26s %10d\n", k.String()+":", s.FaultCounts[k])
	}
}

// printVerdicts prints the per-verdict packet tally in verdict order.
func printVerdicts(verdicts map[uint32]int) {
	fmt.Printf("\n  verdicts:\n")
	vs := make([]uint32, 0, len(verdicts))
	for v := range verdicts {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	for _, v := range vs {
		fmt.Printf("    %4d: %d packets\n", v, verdicts[v])
	}
}

func run(cfg config) error {
	policy, err := cfg.errorPolicy()
	if err != nil {
		return err
	}
	engine, err := core.ParseEngine(cfg.engine)
	if err != nil {
		return err
	}
	tracer, err := cfg.buildTracer()
	if err != nil {
		return err
	}
	// The registry exists only when something consumes it; a nil registry
	// disables telemetry in the run engine at zero hot-path cost. A
	// -trace-out run wants it too, for the histogram→span exemplar links.
	var reg *telemetry.Registry
	if cfg.progress || cfg.debugAddr != "" || cfg.traceOut != "" {
		reg = telemetry.NewRegistry()
	}
	if cfg.debugAddr != "" {
		dbg, err := telemetry.ServeDebug(cfg.debugAddr, reg)
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "debug endpoint on http://%s/ (/metrics, /debug/vars, /debug/pprof)\n", dbg.Addr)
	}
	// Streaming ingestion: with a multi-core pool reading from trace
	// files and an application that does not need the packets up front
	// to derive its routing table, the trace flows from the reader
	// straight into the pool without ever materializing in memory.
	streaming := cfg.pool > 1 && cfg.traceFile != "" &&
		(cfg.tableFile != "" || cfg.app == "flow" || cfg.app == "tsa")
	if cfg.resume && cfg.checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	if cfg.checkpoint != "" && !streaming {
		return fmt.Errorf("-checkpoint needs a streaming pool run: -pool > 1, -trace, and an application that does not preload the trace (-table, flow, or tsa)")
	}

	var pkts []*trace.Packet
	if !streaming {
		pkts, err = loadPackets(&cfg, policy.Policy != core.FailFast)
		if err != nil {
			return err
		}
		if len(pkts) == 0 {
			return fmt.Errorf("no packets to process")
		}
	}

	// Fault injection: the injector corrupts packets deterministically —
	// up front for preloaded runs, through a reader wrapper for
	// streaming ones — and arms execution-fault tracers on every core.
	var inj *faultinject.Injector
	if cfg.inject != "" {
		plan, err := faultinject.ParsePlan(cfg.inject)
		if err != nil {
			return err
		}
		inj = faultinject.New(cfg.seed, plan)
		if !streaming {
			if pkts, err = trace.ReadAll(inj.Reader(trace.NewSliceReader(pkts)), 0); err != nil {
				return err
			}
		}
		fmt.Printf("fault injection: %d planned injections, seed %d\n", len(inj.Plan()), cfg.seed)
	}

	var app *core.App
	switch cfg.app {
	case "radix", "trie":
		var tbl *route.Table
		if cfg.tableFile != "" {
			f, err := os.Open(cfg.tableFile)
			if err != nil {
				return err
			}
			tbl, err = route.ParseTable(f)
			f.Close()
			if err != nil {
				return err
			}
		} else {
			var dsts []uint32
			for _, p := range pkts {
				if h, err := packet.ParseIPv4(p.Data); err == nil {
					dsts = append(dsts, h.Dst)
				}
			}
			tbl = route.TableFromTraffic(dsts, cfg.prefixes, 16, 1)
		}
		if cfg.app == "radix" {
			app = apps.IPv4Radix(tbl)
		} else {
			app = apps.IPv4Trie(tbl)
		}
		fmt.Printf("routing table: %d prefixes\n", len(tbl.Entries))
	case "flow":
		app = apps.FlowClassification(cfg.buckets)
	case "tsa":
		app = apps.TSAApp(cfg.tsaKey)
	default:
		return fmt.Errorf("unknown application %q (want radix, trie, flow or tsa)", cfg.app)
	}

	if cfg.pool > 1 {
		if streaming {
			r, cleanup, skipped, err := openTrace(&cfg, policy.Policy != core.FailFast, cfg.mmapTrace)
			if err != nil {
				return err
			}
			runErr := runPool(app, r, cfg.count, &cfg, policy, engine, inj, reg, tracer, true, skipped)
			cerr := cleanup()
			if n := skipped(); n > 0 {
				fmt.Printf("trace: skipped %d malformed records\n", n)
			}
			if runErr != nil {
				return runErr
			}
			return cerr
		}
		return runPool(app, trace.NewSliceReader(pkts), 0, &cfg, policy, engine, inj, reg, tracer, false, nil)
	}

	pgo, err := readProfileCounts(cfg.profileIn)
	if err != nil {
		return err
	}
	bench, err := core.New(app, core.Options{
		Coverage:      true,
		Detail:        cfg.dumpPkt >= 0 || cfg.flowDot != "",
		Errors:        policy,
		Engine:        engine,
		NoVerify:      cfg.noVerify,
		Metrics:       reg,
		ProfileCounts: pgo,
		Trace:         tracer,
	})
	if err != nil {
		return describeVerifyError(err)
	}
	bench.Collector().CountPCs = cfg.annotate || cfg.profileOut != ""
	if inj != nil {
		bench.AddTracer(inj.Tracer())
	}

	var prof *microarch.Profiler
	if cfg.uarch {
		icache, err := microarch.NewCache(4096, 16, 2)
		if err != nil {
			return err
		}
		dcache, err := microarch.NewCache(8192, 16, 2)
		if err != nil {
			return err
		}
		prof = microarch.NewProfiler(icache, dcache)
		bench.AddTracer(prof)
	}

	var outW trace.Writer
	var outClose func() error
	if cfg.outFile != "" {
		f, err := os.Create(cfg.outFile)
		if err != nil {
			return err
		}
		w, err := trace.NewPcapWriter(f)
		if err != nil {
			f.Close()
			return err
		}
		outW, outClose = w, f.Close
	}

	if cfg.progress {
		total := len(pkts)
		stopProgress := startProgress(reg, func() (float64, bool) {
			s := reg.Snapshot()
			done := s.CounterTotal(telemetry.MetricPacketsProcessed) +
				s.CounterTotal(telemetry.MetricPacketsFaulted)
			return float64(done) / float64(total), total > 0
		})
		defer stopProgress()
	}

	verdicts := make(map[uint32]int)
	var blockSeqs [][]int
	records, err := bench.RunPackets(pkts, func(i int, res core.Result) {
		if res.Faulted() {
			// Quarantined packets have no verdict and no coherent
			// post-run packet memory to dump or write out.
			return
		}
		verdicts[res.Verdict]++
		if i == cfg.dumpPkt {
			dumpTrace(bench, i, res)
		}
		if cfg.flowDot != "" {
			blockSeqs = append(blockSeqs, append([]int(nil), bench.Collector().BlockSeq...))
		}
		if outW != nil {
			out := *pkts[i]
			out.Data = bench.PacketBytes(len(pkts[i].Data))
			if err := outW.WritePacket(&out); err != nil {
				fmt.Fprintln(os.Stderr, "packetbench: write:", err)
			}
		}
	})
	if err != nil {
		// Single-core aborts dump the flight recorder here; pool runs
		// dump from inside the scheduler, closer to the failure.
		writeFlightDump(&cfg, tracer, err)
		return err
	}
	if outClose != nil {
		if err := outClose(); err != nil {
			return err
		}
	}

	s := stats.Summarize(records)
	fmt.Printf("\n%s over %d packets\n", app.Name, s.Packets)
	fmt.Printf("  instructions/packet:        %10.1f\n", s.MeanInstructions)
	fmt.Printf("  unique instructions/packet: %10.1f\n", s.MeanUnique)
	fmt.Printf("  packet mem accesses/packet: %10.1f\n", s.MeanPacketAcc)
	fmt.Printf("  non-packet accesses/packet: %10.1f\n", s.MeanNonPacketAcc)
	fmt.Printf("  instruction memory touched: %10d bytes\n", bench.Collector().InstrMemSize())
	fmt.Printf("  data memory touched:        %10d bytes\n", bench.Collector().DataMemSize())
	reportFaults(s)

	occ := analysis.Occurrences(stats.InstructionCounts(records), cfg.topK)
	fmt.Printf("\n  most frequent instruction counts:\n")
	for _, o := range occ.Top {
		fmt.Printf("    %8d instructions: %6d packets (%.2f%%)\n", o.Value, o.Count, o.Pct(occ.Total))
	}
	fmt.Printf("    min %d (%.2f%%), max %d (%.2f%%), mean %.1f\n",
		occ.Min.Value, occ.Min.Pct(occ.Total), occ.Max.Value, occ.Max.Pct(occ.Total), occ.Mean)

	printVerdicts(verdicts)

	if prof != nil {
		prof.Flush()
		fmt.Printf("\nmicroarchitectural profile:\n%s", prof.Report())
	}
	if cfg.annotate {
		printAnnotatedListing(bench)
	}
	if cfg.flowDot != "" {
		g := analysis.BuildFlowGraph(blockSeqs, bench.BlockMap().NumBlocks())
		if err := os.WriteFile(cfg.flowDot, []byte(g.Dot()), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote weighted flow graph (%d edges) to %s\n", len(g.Edges), cfg.flowDot)
	}
	if cfg.profileOut != "" {
		if err := writeProfiles(cfg.profileOut, app, bench.Program(), bench.Collector().PCCounts); err != nil {
			return err
		}
	}
	return writeTraceOut(&cfg, tracer, reg, app.Name)
}

// buildTracer arms the packet-journey tracer when any consumer of its
// data was requested; a nil tracer keeps the hot path allocation-free.
func (cfg *config) buildTracer() (*ptrace.Tracer, error) {
	if cfg.traceOut == "" && cfg.flightPath == "" {
		return nil, nil
	}
	every, err := parseSampleRate(cfg.traceSample)
	if err != nil {
		return nil, err
	}
	lanes := cfg.pool
	if lanes < 1 {
		lanes = 1
	}
	return ptrace.New(ptrace.Config{
		Lanes:       lanes,
		SampleEvery: every,
		TailNS:      int64(cfg.traceTail),
	}), nil
}

// parseSampleRate reads -trace-sample: "1/N" or a bare N keeps every
// Nth packet; "off" (or 0, or empty) disables head sampling.
func parseSampleRate(s string) (int, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "off" {
		return 0, nil
	}
	num := strings.TrimPrefix(s, "1/")
	var n int
	if _, err := fmt.Sscanf(num, "%d", &n); err != nil || n < 0 || fmt.Sprint(n) != num {
		return 0, fmt.Errorf("bad -trace-sample %q (want \"1/N\", N, or \"off\")", s)
	}
	return n, nil
}

// writeTraceOut writes the run's kept packet journeys as Chrome
// trace-event JSON, decorated with the latency histogram's exemplar
// links when telemetry ran.
func writeTraceOut(cfg *config, tracer *ptrace.Tracer, reg *telemetry.Registry, appName string) error {
	if cfg.traceOut == "" || tracer == nil {
		return nil
	}
	opts := ptrace.ExportOptions{App: appName, Trace: cfg.traceFile}
	if reg != nil {
		if h, ok := reg.Snapshot().HistogramFor(telemetry.MetricPacketLatency); ok {
			for _, e := range h.Exemplars {
				var le uint64
				if e.Bucket < len(h.Bounds) {
					le = h.Bounds[e.Bucket]
				}
				opts.Exemplars = append(opts.Exemplars, ptrace.Exemplar{
					BucketLE: le, ValueNS: e.Value, Span: e.Span,
				})
			}
		}
	}
	f, err := os.Create(cfg.traceOut)
	if err != nil {
		return err
	}
	if err := tracer.WriteTrace(f, opts); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\nwrote packet-journey trace to %s (load in ui.perfetto.dev)\n", cfg.traceOut)
	return nil
}

// writeFlightDump writes the post-mortem ring dump after a failed
// single-core run. Best-effort: a dump failure never masks the run
// error, which the caller is about to return.
func writeFlightDump(cfg *config, tracer *ptrace.Tracer, runErr error) {
	if cfg.flightPath == "" || tracer == nil || runErr == nil {
		return
	}
	f, err := os.Create(cfg.flightPath)
	if err != nil {
		return
	}
	if tracer.WriteFlight(f, ptrace.FlightInfo{Cause: runErr.Error(), Worker: -1, Index: -1}) == nil {
		fmt.Fprintf(os.Stderr, "packetbench: flight recorder dumped to %s\n", cfg.flightPath)
	}
	f.Close()
}

// startProgress launches the live status line and returns its stopper.
// frac reports the completed fraction of the run when known.
func startProgress(reg *telemetry.Registry, frac func() (float64, bool)) (stop func()) {
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		prev := reg.Snapshot()
		for {
			select {
			case <-quit:
				fmt.Fprintln(os.Stderr)
				return
			case <-tick.C:
			}
			cur := reg.Snapshot()
			line := fmt.Sprintf("\r%10.0f pkt/s %14.0f instr/s %6d faults",
				cur.Rate(prev, telemetry.MetricPacketsProcessed),
				cur.Rate(prev, telemetry.MetricInstrsExecuted),
				cur.CounterTotal(telemetry.MetricPacketsFaulted))
			if h, ok := cur.HistogramFor(telemetry.MetricPacketLatency); ok && h.Count > 0 {
				line += fmt.Sprintf(" p99=%s", fmtLatency(h.P99()))
			}
			if n := cur.CounterTotal(telemetry.MetricPacketsShed); n > 0 {
				line += fmt.Sprintf(" shed=%d", n)
			}
			if n := cur.CounterTotal(telemetry.MetricWatchdogStalls); n > 0 {
				line += fmt.Sprintf(" stalls=%d", n)
			}
			if f, ok := frac(); ok {
				line += fmt.Sprintf("  %5.1f%%", 100*f)
			}
			fmt.Fprint(os.Stderr, line+"  ")
			prev = cur
		}
	}()
	return func() {
		close(quit)
		<-done
	}
}

// fmtLatency renders a nanosecond quantile for the status line.
func fmtLatency(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// writeProfiles builds the guest profile from accumulated PC counts and
// writes both output formats next to each other: base.folded for
// flamegraph tools and base.pb.gz for go tool pprof.
func writeProfiles(base string, app *core.App, prog *asm.Program, counts []uint64) error {
	var entries []string
	if app.Entry != "" {
		entries = []string{app.Entry}
	}
	p, err := profile.Build(prog, counts, profile.Options{Entries: entries, AppName: app.Name})
	if err != nil {
		return err
	}
	write := func(path string, emit func(*os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(base+".folded", func(f *os.File) error { return p.WriteFolded(f) }); err != nil {
		return err
	}
	if err := write(base+".pb.gz", func(f *os.File) error { return p.WritePprof(f) }); err != nil {
		return err
	}
	if err := write(base+".counts", func(f *os.File) error { return profile.WriteCounts(f, counts) }); err != nil {
		return err
	}
	fmt.Printf("\nwrote guest profile (%d functions, %d instructions) to %s.folded, %s.pb.gz and %s.counts\n",
		len(p.Funcs), p.Total, base, base, base)
	return nil
}

// readProfileCounts loads the -profile-in counts sidecar, nil when the
// flag is unset.
func readProfileCounts(path string) ([]uint64, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	counts, err := profile.ReadCounts(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return counts, nil
}

// describeVerifyError expands a static-verification rejection into the
// full diagnostic listing; other errors pass through unchanged.
func describeVerifyError(err error) error {
	var verr *core.VerifyError
	if !errors.As(err, &verr) {
		return err
	}
	for _, d := range verr.Diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", verr.App, d)
	}
	return fmt.Errorf("application %q failed static verification with %d error(s); rerun with -no-verify to execute it anyway",
		verr.App, len(verr.Diags.Errors()))
}

// printAnnotatedListing renders the program with per-instruction
// execution counts — the paper's application-optimization use case.
func printAnnotatedListing(bench *core.Bench) {
	col := bench.Collector()
	prog := bench.Program()
	var total uint64
	for _, c := range col.PCCounts {
		total += c
	}
	fmt.Printf("\nannotated listing (%d dynamic instructions):\n", total)
	for i, in := range prog.Text {
		pc := prog.TextBase + uint32(i)*4
		count := uint64(0)
		if i < len(col.PCCounts) {
			count = col.PCCounts[i]
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(count) / float64(total)
		}
		marker := " "
		if pct >= 2 {
			marker = "*" // hot instruction
		}
		fmt.Printf("  %s %10d %6.2f%%  %08x  %s\n", marker, count, pct, pc, isa.Disassemble(pc, in))
	}
}

// dumpTrace prints the disassembled execution trace of one packet (the
// detail view behind the paper's Figure 6).
func dumpTrace(bench *core.Bench, idx int, res core.Result) {
	col := bench.Collector()
	prog := bench.Program()
	fmt.Printf("\nexecution trace of packet %d (%d instructions, verdict %d):\n",
		idx, len(col.InstrTrace), res.Verdict)
	const maxLines = 300
	for n, pc := range col.InstrTrace {
		if n == maxLines {
			fmt.Printf("  ... %d more instructions ...\n", len(col.InstrTrace)-maxLines)
			break
		}
		in, ok := prog.InstrAt(pc)
		if !ok {
			continue
		}
		fmt.Printf("  %6d  %08x  %s\n", n, pc, isa.Disassemble(pc, in))
	}
	fmt.Printf("  block entry sequence: %v\n", col.BlockSeq)
}

// runPool streams the trace reader through several simulated cores (up
// to limit packets; <= 0 means all) and prints the pooled summary.
// Records are aggregated on the fly (no in-memory record slice), and
// verdicts are counted exactly as in the single-core path. Stateful
// applications (flow classification) keep per-core tables in this mode,
// as real replicated-state engines would.
func runPool(app *core.App, reader trace.Reader, limit int, cfg *config, policy core.ErrorPolicy, engine core.EngineKind, inj *faultinject.Injector, reg *telemetry.Registry, tracer *ptrace.Tracer, streaming bool, skipped func() int) error {
	shed, err := core.ParseShedPolicy(cfg.shed)
	if err != nil {
		return err
	}
	pgo, err := readProfileCounts(cfg.profileIn)
	if err != nil {
		return err
	}
	pool, err := core.NewPool(app, cfg.pool, core.Options{
		Errors:        policy,
		Engine:        engine,
		NoVerify:      cfg.noVerify,
		Metrics:       reg,
		RunDeadline:   cfg.deadline,
		StallTimeout:  cfg.stallTimeout,
		Shed:          shed,
		ProfileCounts: pgo,
		Trace:         tracer,
		FlightPath:    cfg.flightPath,
	})
	if err != nil {
		return describeVerifyError(err)
	}
	if cfg.batch > 0 {
		pool.SetBatchSize(cfg.batch)
	}
	for i := 0; i < pool.Cores(); i++ {
		if inj != nil {
			pool.Bench(i).AddTracer(inj.Tracer())
		}
		pool.Bench(i).Collector().CountPCs = cfg.profileOut != ""
	}
	agg := &stats.Running{KeepInstructionCounts: true}
	var ck *core.Checkpointer
	if cfg.checkpoint != "" {
		ck = core.NewCheckpointer(cfg.checkpoint, cfg.checkpointEvery, agg)
		ids, err := traceFingerprints(cfg)
		if err != nil {
			return err
		}
		ck.SetTraceID(ids)
		if skipped != nil {
			ck.SetSkippedFunc(skipped)
		}
		if inj != nil {
			ck.TearWrite = inj.CheckpointTearFunc()
		}
		if cfg.resume {
			cp, err := core.LoadCheckpoint(cfg.checkpoint)
			if err != nil {
				return err
			}
			if err := cp.ValidateTrace(ids); err != nil {
				return err
			}
			sk, ok := reader.(trace.Seeker)
			if !ok {
				return fmt.Errorf("trace reader %T cannot seek to a checkpoint", reader)
			}
			if err := sk.SeekTo(cp.ReaderPos); err != nil {
				return err
			}
			ck.Restore(cp)
			fmt.Printf("resuming from %s: %d packets already committed\n", cfg.checkpoint, cp.NextIndex)
		}
	}
	// In streaming mode the injector's packet corruptions apply through a
	// reader wrapper (preloaded runs corrupt up front instead). The wrap
	// happens after any resume seek, with the restored start index, so
	// plan entries keep their absolute trace positions.
	if inj != nil && streaming {
		start := 0
		if ck != nil {
			start = ck.StartIndex()
		}
		reader = inj.ReaderFrom(reader, start)
	}
	if cfg.progress {
		stopProgress := startProgress(reg, func() (float64, bool) { return trace.Progress(reader) })
		defer stopProgress()
	}
	if _, err := pool.RunTraceCheckpointed(context.Background(), reader, limit, func(i int, res core.Result) {
		if res.Shed {
			agg.AddShed(1)
			return
		}
		agg.Add(&res.Record)
		if !res.Faulted() {
			agg.AddVerdict(res.Verdict)
		}
	}, ck); err != nil {
		if cfg.flightPath != "" && tracer != nil {
			// The pool dumps the flight recorder itself before the run
			// error surfaces; just point the operator at the file.
			if _, serr := os.Stat(cfg.flightPath); serr == nil {
				fmt.Fprintf(os.Stderr, "packetbench: flight recorder dumped to %s\n", cfg.flightPath)
			}
		}
		return err
	}
	s := agg.Summary()
	if s.Packets == 0 && s.Shed == 0 {
		return fmt.Errorf("no packets to process")
	}
	fmt.Printf("\n%s over %d packets on %d simulated cores\n", app.Name, s.Packets, cfg.pool)
	fmt.Printf("  instructions/packet:        %10.1f\n", s.MeanInstructions)
	fmt.Printf("  unique instructions/packet: %10.1f\n", s.MeanUnique)
	fmt.Printf("  packet mem accesses/packet: %10.1f\n", s.MeanPacketAcc)
	fmt.Printf("  non-packet accesses/packet: %10.1f\n", s.MeanNonPacketAcc)
	if s.Shed > 0 {
		fmt.Printf("  shed packets (overload):    %10d\n", s.Shed)
	}
	reportFaults(s)
	occ := analysis.Occurrences(agg.InstructionCounts(), cfg.topK)
	if len(occ.Top) > 0 {
		fmt.Printf("  most frequent count: %d instructions (%.2f%%)\n",
			occ.Top[0].Value, occ.Top[0].Pct(occ.Total))
	}
	printVerdicts(agg.Verdicts())
	if ck != nil && ck.Written() > 0 {
		fmt.Printf("\ncheckpoints: %d written to %s\n", ck.Written(), cfg.checkpoint)
	}
	if cfg.profileOut != "" {
		// Sum the per-core PC counters: one profile for the pooled run.
		counts := make([]uint64, len(pool.Bench(0).Collector().PCCounts))
		for i := 0; i < pool.Cores(); i++ {
			for j, c := range pool.Bench(i).Collector().PCCounts {
				counts[j] += c
			}
		}
		if err := writeProfiles(cfg.profileOut, app, pool.Bench(0).Program(), counts); err != nil {
			return err
		}
	}
	return writeTraceOut(cfg, tracer, reg, app.Name)
}
