package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/route"
)

func TestRunAllApps(t *testing.T) {
	for _, app := range []string{"radix", "trie", "flow", "tsa"} {
		if err := run(app, "LAN", "", "", "", 100, 512, 64, 3, 1, true, false, -1, false, "", 1); err != nil {
			t.Errorf("%s: %v", app, err)
		}
	}
}

func TestRunWithMicroarchAndOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "anon.pcap")
	if err := run("tsa", "COS", "", out, "", 50, 512, 64, 3, 2, true, true, -1, false, "", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromTraceFile(t *testing.T) {
	// Round trip: write a trace with the tsa run above, read it back in.
	dir := t.TempDir()
	out := filepath.Join(dir, "t.pcap")
	if err := run("tsa", "LAN", "", out, "", 30, 512, 64, 3, 2, true, false, -1, false, "", 1); err != nil {
		t.Fatal(err)
	}
	if err := run("flow", "", out, "", "", 30, 512, 64, 3, 2, true, false, 0, false, "", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithTableFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "routes.txt")
	tbl := route.GenerateTable(route.GenOptions{Prefixes: 100, Seed: 4, IncludeDefault: true})
	var buf bytes.Buffer
	if err := tbl.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("radix", "LAN", "", "", path, 50, 512, 64, 3, 1, true, false, -1, false, "", 1); err != nil {
		t.Fatal(err)
	}
	if err := run("radix", "LAN", "", "", "/absent-table", 50, 512, 64, 3, 1, true, false, -1, false, "", 1); err == nil {
		t.Error("missing table file accepted")
	}
}

func TestRunAnnotateAndFlowgraph(t *testing.T) {
	dot := filepath.Join(t.TempDir(), "g.dot")
	if err := run("trie", "LAN", "", "", "", 60, 512, 64, 3, 1, true, false, -1, true, dot, 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("digraph")) {
		t.Errorf("flow graph not Graphviz: %q", data[:min(len(data), 40)])
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", "LAN", "", "", "", 10, 512, 64, 3, 1, true, false, -1, false, "", 1); err == nil {
		t.Error("unknown app accepted")
	}
	if err := run("flow", "NOPE", "", "", "", 10, 512, 64, 3, 1, true, false, -1, false, "", 1); err == nil {
		t.Error("unknown profile accepted")
	}
	if err := run("flow", "", "/absent.pcap", "", "", 10, 512, 64, 3, 1, true, false, -1, false, "", 1); err == nil {
		t.Error("missing trace file accepted")
	}
}

func TestRunPoolMode(t *testing.T) {
	if err := run("tsa", "LAN", "", "", "", 80, 512, 64, 3, 1, true, false, -1, false, "", 4); err != nil {
		t.Fatal(err)
	}
}
