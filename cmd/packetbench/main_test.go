package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/route"
	"repro/internal/trace"
)

// testConfig mirrors the flag defaults, scaled down for test speed.
func testConfig(app, gen string, n int) config {
	return config{
		app:         app,
		gen:         gen,
		count:       n,
		prefixes:    512,
		buckets:     64,
		topK:        3,
		tsaKey:      1,
		preprocess:  true,
		dumpPkt:     -1,
		pool:        1,
		faultPolicy: "fail-fast",
		maxAttempts: 2,
		seed:        1,
	}
}

func TestRunAllApps(t *testing.T) {
	for _, app := range []string{"radix", "trie", "flow", "tsa"} {
		if err := run(testConfig(app, "LAN", 100)); err != nil {
			t.Errorf("%s: %v", app, err)
		}
	}
}

func TestRunWithMicroarchAndOutput(t *testing.T) {
	cfg := testConfig("tsa", "COS", 50)
	cfg.outFile = filepath.Join(t.TempDir(), "anon.pcap")
	cfg.tsaKey = 2
	cfg.uarch = true
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromTraceFile(t *testing.T) {
	// Round trip: write a trace with the tsa run above, read it back in.
	dir := t.TempDir()
	out := filepath.Join(dir, "t.pcap")
	cfg := testConfig("tsa", "LAN", 30)
	cfg.outFile = out
	cfg.tsaKey = 2
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	cfg = testConfig("flow", "", 30)
	cfg.traceFile = out
	cfg.tsaKey = 2
	cfg.dumpPkt = 0
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithTableFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "routes.txt")
	tbl := route.GenerateTable(route.GenOptions{Prefixes: 100, Seed: 4, IncludeDefault: true})
	var buf bytes.Buffer
	if err := tbl.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig("radix", "LAN", 50)
	cfg.tableFile = path
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.tableFile = "/absent-table"
	if err := run(cfg); err == nil {
		t.Error("missing table file accepted")
	}
}

func TestRunAnnotateAndFlowgraph(t *testing.T) {
	dot := filepath.Join(t.TempDir(), "g.dot")
	cfg := testConfig("trie", "LAN", 60)
	cfg.annotate = true
	cfg.flowDot = dot
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("digraph")) {
		t.Errorf("flow graph not Graphviz: %q", data[:min(len(data), 40)])
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(testConfig("bogus", "LAN", 10)); err == nil {
		t.Error("unknown app accepted")
	}
	if err := run(testConfig("flow", "NOPE", 10)); err == nil {
		t.Error("unknown profile accepted")
	}
	cfg := testConfig("flow", "", 10)
	cfg.traceFile = "/absent.pcap"
	if err := run(cfg); err == nil {
		t.Error("missing trace file accepted")
	}
	cfg = testConfig("flow", "LAN", 10)
	cfg.faultPolicy = "explode"
	if err := run(cfg); err == nil {
		t.Error("unknown fault policy accepted")
	}
	cfg = testConfig("flow", "LAN", 10)
	cfg.inject = "zap@3"
	if err := run(cfg); err == nil {
		t.Error("bad injection plan accepted")
	}
}

func TestRunPoolMode(t *testing.T) {
	cfg := testConfig("tsa", "LAN", 80)
	cfg.pool = 4
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRunPoolStreamsShardedTrace exercises the streaming ingestion path:
// a multi-core pool fed straight from a timestamp-merged pair of pcap
// shards, with and without mmap, with an explicit batch size.
func TestRunPoolStreamsShardedTrace(t *testing.T) {
	dir := t.TempDir()
	pkts := gen.Generate(gen.Profile{
		Name: "shardtest", Flows: 30, NewFlowProb: 0.1, TCP: 1,
		Sizes: []gen.SizePoint{{Bytes: 80, Weight: 1}}, AddrBits: 12, Seed: 7,
	}, 120)
	shards := []string{filepath.Join(dir, "s0.pcap"), filepath.Join(dir, "s1.pcap")}
	for i, path := range shards {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		w, err := trace.NewPcapWriter(f)
		if err != nil {
			t.Fatal(err)
		}
		for j := i; j < len(pkts); j += 2 {
			if err := w.WritePacket(pkts[j]); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	for _, mmap := range []bool{true, false} {
		cfg := testConfig("flow", "", 0)
		cfg.traceFile = shards[0] + "," + shards[1]
		cfg.pool = 4
		cfg.mmapTrace = mmap
		cfg.batch = 8
		if err := run(cfg); err != nil {
			t.Fatalf("mmap=%v: %v", mmap, err)
		}
	}
}

func TestRunWithFaultInjection(t *testing.T) {
	// Injected corruption under the skip policy must not abort the run,
	// on one core or on a pool.
	cfg := testConfig("tsa", "LAN", 40)
	cfg.faultPolicy = "skip"
	cfg.errorBudget = 10
	cfg.inject = "flip@3,trunc@7:20,vmfault@11:5"
	if err := run(cfg); err != nil {
		t.Fatalf("single core: %v", err)
	}
	cfg.pool = 3
	if err := run(cfg); err != nil {
		t.Fatalf("pool: %v", err)
	}

	// The same corruption under fail-fast must abort: vmfault@11 forces an
	// illegal instruction regardless of what the app does with the packet.
	cfg = testConfig("tsa", "LAN", 40)
	cfg.inject = "vmfault@11:5"
	if err := run(cfg); err == nil {
		t.Error("fail-fast swallowed a forced VM fault")
	}
}

// TestNoVerifyGatesLoading exercises the load-time verification contract
// the -no-verify flag toggles: a statically-rejected program refuses to
// load by default, the refusal names the escape hatch, and setting
// NoVerify (what -no-verify does) loads it anyway.
func TestNoVerifyGatesLoading(t *testing.T) {
	bad := &core.App{Name: "escape", Source: "e:\nj 0x100000\nhalt", Entry: "e"}
	_, err := core.New(bad, core.Options{})
	if err == nil {
		t.Fatal("verifier-rejected program loaded without -no-verify")
	}
	err = describeVerifyError(err)
	if !strings.Contains(err.Error(), "-no-verify") {
		t.Errorf("refusal does not mention the flag: %v", err)
	}
	if _, err := core.New(bad, core.Options{NoVerify: true}); err != nil {
		t.Fatalf("-no-verify load failed: %v", err)
	}
	// Non-verifier errors pass through describeVerifyError untouched.
	if got := describeVerifyError(os.ErrNotExist); got != os.ErrNotExist {
		t.Errorf("unrelated error rewritten: %v", got)
	}
}

func TestRunObservability(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig("radix", "MRA", 200)
	cfg.progress = true
	cfg.debugAddr = "127.0.0.1:0"
	cfg.profileOut = filepath.Join(dir, "prof")
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	folded, err := os.ReadFile(cfg.profileOut + ".folded")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(folded), "process_packet ") {
		t.Errorf("folded output missing process_packet:\n%s", folded)
	}
	if _, err := os.Stat(cfg.profileOut + ".pb.gz"); err != nil {
		t.Errorf("pprof output missing: %v", err)
	}
}

func TestRunPoolObservability(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig("flow", "COS", 300)
	cfg.pool = 3
	cfg.progress = true
	cfg.profileOut = filepath.Join(dir, "poolprof")
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(cfg.profileOut + ".folded"); err != nil {
		t.Errorf("pool folded output missing: %v", err)
	}
}
