// Command pbasm assembles PB32 assembly and prints a disassembly
// listing, symbol table, and basic-block decomposition — the toolchain
// view of a PacketBench application.
//
// Usage:
//
//	pbasm file.s            # listing
//	pbasm -sym file.s       # symbols
//	pbasm -blocks file.s    # basic blocks
//	pbasm -vet file.s       # static verification (see also cmd/pbvet)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/analysis"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/staticcheck"
)

func main() {
	var (
		showSyms   = flag.Bool("sym", false, "print the symbol table")
		showBlocks = flag.Bool("blocks", false, "print the basic-block decomposition")
		vet        = flag.Bool("vet", false, "run the static verifier and print its findings")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pbasm [-sym] [-blocks] [-vet] file.s")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *showSyms, *showBlocks, *vet); err != nil {
		fmt.Fprintln(os.Stderr, "pbasm:", err)
		os.Exit(1)
	}
}

func run(path string, showSyms, showBlocks, vet bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prog, err := asm.Assemble(string(src), asm.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("text: %d instructions (%d bytes at %#x)\n",
		len(prog.Text), len(prog.Text)*4, prog.TextBase)
	fmt.Printf("data: %d bytes at %#x\n\n", len(prog.Data), prog.DataBase)

	switch {
	case showSyms:
		type sym struct {
			name string
			addr uint32
		}
		var syms []sym
		for name, addr := range prog.Symbols {
			syms = append(syms, sym{name, addr})
		}
		sort.Slice(syms, func(i, j int) bool { return syms[i].addr < syms[j].addr })
		for _, s := range syms {
			fmt.Printf("%08x  %s\n", s.addr, s.name)
		}
	case showBlocks:
		m := analysis.NewBlockMap(prog.Text, prog.TextBase)
		fmt.Printf("%d basic blocks\n", m.NumBlocks())
		for b := 0; b < m.NumBlocks(); b++ {
			fmt.Printf("  block %3d: %#x, %d instructions\n", b, m.Leader(b), m.Size(b))
		}
	case vet:
		ds := staticcheck.Verify(prog, staticcheck.Options{
			Layout: core.LayoutFor(prog, 0),
		})
		if len(ds) == 0 {
			fmt.Println("no findings")
			return nil
		}
		for _, d := range ds {
			fmt.Printf("%s:%d: %s: %s [%s]\n", path, d.Line, d.Severity, d.Msg, d.Check)
		}
		if ds.HasErrors() {
			return fmt.Errorf("%s: static verification failed", path)
		}
	default:
		fmt.Print(prog.Listing())
	}
	return nil
}
