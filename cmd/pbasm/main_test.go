package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeSource(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.s")
	src := `
	.data
v:	.word 1
	.text
	.global e
e:	la  t0, v
	lw  a0, 0(t0)
	beqz a0, done
	addi a0, a0, 1
done:	ret
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunModes(t *testing.T) {
	path := writeSource(t)
	for _, mode := range []struct{ syms, blocks, vet bool }{
		{false, false, false}, {true, false, false}, {false, true, false},
		{false, false, true},
	} {
		if err := run(path, mode.syms, mode.blocks, mode.vet); err != nil {
			t.Errorf("mode %+v: %v", mode, err)
		}
	}
}

// TestVetFlagFailsOnErrors: -vet turns error-severity findings into a
// nonzero exit, same contract as cmd/pbvet.
func TestVetFlagFailsOnErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.s")
	if err := os.WriteFile(path, []byte(".global e\ne: j 0x100000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, false, false, true); err == nil {
		t.Error("-vet accepted a program that escapes the text segment")
	}
	// Without -vet the same file still assembles and lists.
	if err := run(path, false, false, false); err != nil {
		t.Errorf("listing mode should not verify: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "absent.s"), false, false, false); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.s")
	_ = os.WriteFile(bad, []byte("frobnicate a0"), 0o644)
	if err := run(bad, false, false, false); err == nil {
		t.Error("invalid assembly accepted")
	}
}
