package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeSource(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.s")
	src := `
	.data
v:	.word 1
	.text
	.global e
e:	la  t0, v
	lw  a0, 0(t0)
	beqz a0, done
	addi a0, a0, 1
done:	ret
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunModes(t *testing.T) {
	path := writeSource(t)
	for _, mode := range []struct{ syms, blocks bool }{
		{false, false}, {true, false}, {false, true},
	} {
		if err := run(path, mode.syms, mode.blocks); err != nil {
			t.Errorf("mode %+v: %v", mode, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "absent.s"), false, false); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.s")
	_ = os.WriteFile(bad, []byte("frobnicate a0"), 0o644)
	if err := run(bad, false, false); err == nil {
		t.Error("invalid assembly accepted")
	}
}
