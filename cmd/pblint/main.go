// Command pblint runs PacketBench's repo-specific Go checks (see
// internal/lint): telemetry series must be registered via the canonical
// name constants, and the per-packet hot path must stay free of
// wall-clock reads and per-call allocation.
//
// Usage:
//
//	pblint path ...        # files or directories (directories recurse)
//	pblint -tests path ... # include _test.go files
//
// Generated trees are skipped (testdata, hidden directories, vendor).
// The exit status is 1 if there are findings, 2 on usage or parse
// errors, and 0 otherwise.
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pblint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tests := fs.Bool("tests", false, "also check _test.go files")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: pblint [-tests] path ...")
		return 2
	}

	var files []string
	for _, path := range fs.Args() {
		got, err := collect(path, *tests)
		if err != nil {
			fmt.Fprintln(stderr, "pblint:", err)
			return 2
		}
		files = append(files, got...)
	}

	status := 0
	fset := token.NewFileSet()
	for _, path := range files {
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(stderr, "pblint:", err)
			return 2
		}
		for _, d := range lint.CheckFile(fset, file) {
			fmt.Fprintln(stdout, d)
			status = 1
		}
	}
	return status
}

// collect expands path into the Go files to check: a single file, or a
// recursive directory walk skipping hidden directories (.git, editor
// state), testdata fixtures, and vendored code.
func collect(path string, tests bool) ([]string, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return []string{path}, nil
	}
	var files []string
	err = filepath.WalkDir(path, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if p != path && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") {
			return nil
		}
		if !tests && strings.HasSuffix(name, "_test.go") {
			return nil
		}
		files = append(files, p)
		return nil
	})
	return files, err
}
