package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLintFindsLiteralSeries(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"core/metrics.go": `package core

func f(r *Registry) { r.Counter("packets_total", "") }
`,
	})
	var out, errb bytes.Buffer
	if status := run([]string{dir}, &out, &errb); status != 1 {
		t.Fatalf("status = %d, want 1; stderr: %s", status, errb.String())
	}
	if !bytes.Contains(out.Bytes(), []byte("telemetry-series")) {
		t.Errorf("missing telemetry-series finding:\n%s", out.String())
	}
}

func TestLintCleanTreeAndSkips(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"ok.go": `package p

func g(r *Registry) { r.Counter(telemetry.MetricPacketsProcessed, "") }
`,
		// _test.go, testdata and hidden directories are skipped by
		// default, so the violations inside them must not surface.
		"bad_test.go":        "package p\n\nfunc h(r *Registry) { r.Counter(\"x\", \"\") }\n",
		"testdata/bad.go":    "package fixture\n\nfunc h(r *Registry) { r.Counter(\"x\", \"\") }\n",
		".hidden/bad.go":     "package hidden\n\nfunc h(r *Registry) { r.Counter(\"x\", \"\") }\n",
		"sub/vendor/bad.go":  "package vendored\n\nfunc h(r *Registry) { r.Counter(\"x\", \"\") }\n",
		"sub/note/README.md": "not go\n",
	})
	var out, errb bytes.Buffer
	if status := run([]string{dir}, &out, &errb); status != 0 {
		t.Fatalf("status = %d, want 0; out: %s", status, out.String())
	}
	// -tests pulls the _test.go violation back in.
	out.Reset()
	if status := run([]string{"-tests", dir}, &out, &errb); status != 1 {
		t.Fatalf("-tests status = %d, want 1; out: %s", status, out.String())
	}
}

func TestLintSingleFileAndHotPath(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"hot.go": `package vm

func (c *CPU) runFast() { _ = time.Now() }
`,
	})
	var out, errb bytes.Buffer
	if status := run([]string{filepath.Join(dir, "hot.go")}, &out, &errb); status != 1 {
		t.Fatalf("status = %d, want 1", status)
	}
	if !bytes.Contains(out.Bytes(), []byte("hotpath")) {
		t.Errorf("missing hotpath finding:\n%s", out.String())
	}
}

func TestLintBadUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if status := run(nil, &out, &errb); status != 2 {
		t.Errorf("no-args status = %d, want 2", status)
	}
	if status := run([]string{filepath.Join(t.TempDir(), "missing")}, &out, &errb); status != 2 {
		t.Errorf("missing-path status = %d, want 2", status)
	}
	dir := writeTree(t, map[string]string{"broken.go": "package\n"})
	if status := run([]string{dir}, &out, &errb); status != 2 {
		t.Errorf("parse-error status = %d, want 2", status)
	}
}
