// Command pbreport regenerates the tables and figures of the paper's
// evaluation section from the reproduction's own simulated experiments.
//
// Usage:
//
//	pbreport                         # everything, paper-scale
//	pbreport -exp table2             # one experiment
//	pbreport -scale 0.1              # 10% of the paper's packet counts
//
// Experiments: table1, table2, table3, table4, table5, table6,
// fig3, fig4, fig5, fig6, fig7, fig8, fig9, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/report"
	"repro/internal/stats"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run (table1..table6, fig3..fig9, microarch, all)")
		scale   = flag.Float64("scale", 1.0, "scale factor on the paper's packet counts")
		outDir  = flag.String("out", "", "also write figure series as CSV files into this directory")
		profM   = flag.Bool("profile", false, "profile each application's guest program instead of running experiments; with -out, also writes <app>.folded and <app>.pb.gz")
		hotM    = flag.Bool("hot", false, "print each application's top-K hot basic blocks from a recorded profile run (the compiled tier's selection view)")
		spansM  = flag.Bool("spans", false, "print each application's packet-journey breakdown: per-stage latency plus the slowest packets attributed to guest functions")
		hotK    = flag.Int("k", 10, "rows per application in -hot and -spans modes")
		profTr  = flag.String("profile-trace", "MRA", "trace the -profile mode runs each application over")
		profPkt = flag.Int("profile-packets", 1000, "packets per application in -profile mode (scaled by -scale)")
	)
	flag.Parse()
	if *hotM {
		if err := runHot(*profTr, scaled(*profPkt, *scale), *hotK); err != nil {
			fmt.Fprintln(os.Stderr, "pbreport:", err)
			os.Exit(1)
		}
		return
	}
	if *spansM {
		if err := runSpans(*profTr, scaled(*profPkt, *scale), *hotK); err != nil {
			fmt.Fprintln(os.Stderr, "pbreport:", err)
			os.Exit(1)
		}
		return
	}
	if *profM {
		if err := runProfile(*profTr, scaled(*profPkt, *scale), *outDir); err != nil {
			fmt.Fprintln(os.Stderr, "pbreport:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*exp, *scale, *outDir); err != nil {
		fmt.Fprintln(os.Stderr, "pbreport:", err)
		os.Exit(1)
	}
}

// runHot is the -hot mode: run every application over the named trace
// with per-instruction counting and print the top-k basic blocks by
// retired instructions — the blocks the compiled tier's profile-guided
// selection would compile first.
func runHot(traceName string, packets, k int) error {
	cfg := report.Config{TablePackets: packets}
	fmt.Fprintf(os.Stderr, "building environment (traces + routing tables)...\n")
	env := report.NewEnv(cfg)
	for _, app := range report.AppNames {
		rows, err := env.HotBlocks(app, traceName, packets, k)
		if err != nil {
			return fmt.Errorf("ranking %s: %w", app, err)
		}
		fmt.Println(report.FormatHotBlocks(app, traceName, rows, packets))
	}
	return nil
}

// runSpans is the -spans mode: run every application over the named
// trace with the packet-journey tracer armed and print the per-stage
// latency breakdown plus the top-k slowest journeys with function
// attribution.
func runSpans(traceName string, packets, k int) error {
	cfg := report.Config{TablePackets: packets}
	fmt.Fprintf(os.Stderr, "building environment (traces + routing tables)...\n")
	env := report.NewEnv(cfg)
	for _, app := range report.AppNames {
		r, err := env.Spans(app, traceName, packets, k, nil)
		if err != nil {
			return fmt.Errorf("tracing %s: %w", app, err)
		}
		fmt.Println(report.FormatSpans(r))
	}
	return nil
}

// runProfile is the -profile mode: run every application over the named
// trace with per-instruction counting and print a gprof-style flat
// profile per application. With outDir set, the folded-stack and pprof
// outputs are written alongside for external tools.
func runProfile(traceName string, packets int, outDir string) error {
	cfg := report.Config{TablePackets: packets}
	fmt.Fprintf(os.Stderr, "building environment (traces + routing tables)...\n")
	env := report.NewEnv(cfg)
	for _, app := range report.AppNames {
		p, err := env.Profile(app, traceName, packets)
		if err != nil {
			return fmt.Errorf("profiling %s: %w", app, err)
		}
		fmt.Printf("%s on %s, %d packets (%d instructions):\n", app, traceName, packets, p.Total)
		if err := p.WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if outDir == "" {
			continue
		}
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		base := filepath.Join(outDir, strings.ReplaceAll(app, " ", "_"))
		ff, err := os.Create(base + ".folded")
		if err != nil {
			return err
		}
		if err := p.WriteFolded(ff); err != nil {
			ff.Close()
			return err
		}
		if err := ff.Close(); err != nil {
			return err
		}
		pf, err := os.Create(base + ".pb.gz")
		if err != nil {
			return err
		}
		if err := p.WritePprof(pf); err != nil {
			pf.Close()
			return err
		}
		if err := pf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s.folded and %s.pb.gz\n", base, base)
	}
	return nil
}

func scaled(n int, s float64) int {
	v := int(float64(n) * s)
	if v < 10 {
		v = 10
	}
	return v
}

func run(exp string, scale float64, outDir string) error {
	cfg := report.Config{
		TablePackets:     scaled(10_000, scale),
		CoveragePackets:  scaled(1_000, scale),
		VariationPackets: scaled(100_000, scale),
		FigurePackets:    scaled(500, scale),
	}
	want := func(name string) bool { return exp == "all" || exp == name }

	names := []string{"table1", "table2", "table3", "table4", "table5", "table6",
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "microarch"}
	known := exp == "all"
	for _, n := range names {
		if n == exp {
			known = true
		}
	}
	if !known {
		return fmt.Errorf("unknown experiment %q (want one of %s, all)", exp, strings.Join(names, ", "))
	}

	if want("table1") {
		fmt.Println(report.FormatTable1(report.Table1()))
	}

	needEnv := exp == "all"
	for _, n := range names[1:] {
		if exp == n {
			needEnv = true
		}
	}
	if !needEnv {
		return nil
	}

	fmt.Fprintf(os.Stderr, "building environment (traces + routing tables)...\n")
	env := report.NewEnv(cfg)

	if want("table2") || want("table3") {
		fmt.Fprintf(os.Stderr, "running the 4x4 application/trace matrix (%d packets per cell)...\n", cfg.TablePackets)
		m, err := env.RunMatrix(cfg.TablePackets)
		if err != nil {
			return err
		}
		if want("table2") {
			fmt.Println(report.FormatTable2(m))
		}
		if want("table3") {
			fmt.Println(report.FormatTable3(m))
		}
	}
	if want("table4") {
		rows, err := env.Table4()
		if err != nil {
			return err
		}
		fmt.Println(report.FormatTable4(rows, cfg.CoveragePackets))
	}
	if want("table5") {
		rows, err := env.Variation(false)
		if err != nil {
			return err
		}
		fmt.Println(report.FormatVariation(rows, false, cfg.VariationPackets))
	}
	if want("table6") {
		rows, err := env.Variation(true)
		if err != nil {
			return err
		}
		fmt.Println(report.FormatVariation(rows, true, cfg.VariationPackets))
	}
	figSeries := []struct {
		name   string
		title  string
		ylabel string
		metric func(*stats.PacketRecord) float64
	}{
		{"fig3", "Figure 3: Packet processing complexity variation", "instructions", report.MetricInstructions},
		{"fig4", "Figure 4: Packet memory access pattern", "packet accesses", report.MetricPacketAccesses},
		{"fig5", "Figure 5: Non-packet memory access pattern", "non-packet accesses", report.MetricNonPacketAccesses},
	}
	for _, fig := range figSeries {
		if !want(fig.name) {
			continue
		}
		s, err := env.FigureSeries(fig.metric)
		if err != nil {
			return err
		}
		fmt.Println(report.FormatSeries(fig.title, fig.ylabel, s))
		if outDir != "" {
			if err := writeSeriesCSV(outDir, fig.name, fig.ylabel, s); err != nil {
				return err
			}
		}
	}
	if want("fig6") {
		p, err := env.Figure6(0)
		if err != nil {
			return err
		}
		fmt.Println(report.FormatFigure6(p))
	}
	if want("fig7") || want("fig8") {
		bs, err := env.BlockStatistics()
		if err != nil {
			return err
		}
		if want("fig7") {
			fmt.Println(report.FormatFigure7(bs))
		}
		if want("fig8") {
			fmt.Println(report.FormatFigure8(bs))
		}
	}
	if want("fig9") {
		seqs, err := env.Figure9(0)
		if err != nil {
			return err
		}
		fmt.Println(report.FormatFigure9(seqs))
	}
	if want("microarch") {
		rows, err := env.Microarch(cfg.TablePackets)
		if err != nil {
			return err
		}
		fmt.Println(report.FormatMicroarch(rows, cfg.TablePackets))
	}
	return nil
}

// writeSeriesCSV writes one figure's per-packet series as
// <dir>/<name>.csv with a packet column and one column per application,
// for external plotting tools.
func writeSeriesCSV(dir, name, ylabel string, series []report.Series) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	header := "packet"
	for _, s := range series {
		header += "," + strings.ReplaceAll(s.App, " ", "_")
	}
	if _, err := fmt.Fprintln(f, header); err != nil {
		return err
	}
	n := 0
	for _, s := range series {
		if len(s.Values) > n {
			n = len(s.Values)
		}
	}
	for i := 0; i < n; i++ {
		row := fmt.Sprint(i)
		for _, s := range series {
			if i < len(s.Values) {
				row += fmt.Sprintf(",%g", s.Values[i])
			} else {
				row += ","
			}
		}
		if _, err := fmt.Fprintln(f, row); err != nil {
			return err
		}
	}
	return f.Close()
}
