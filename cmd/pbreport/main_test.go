package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiments(t *testing.T) {
	// Tiny scale keeps this a smoke test; table1 needs no environment.
	if err := run("table1", 0.01, ""); err != nil {
		t.Fatal(err)
	}
	if err := run("fig6", 0.01, ""); err != nil {
		t.Fatal(err)
	}
	if err := run("table4", 0.01, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunFigureWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run("fig3", 0.01, dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig3.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if !strings.HasPrefix(lines[0], "packet,IPv4-radix,") {
		t.Errorf("csv header = %q", lines[0])
	}
	if len(lines) < 10 {
		t.Errorf("csv has only %d lines", len(lines))
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("table99", 1, ""); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestScaled(t *testing.T) {
	if scaled(10000, 0.5) != 5000 {
		t.Error("scaled wrong")
	}
	if scaled(100, 0.0001) != 10 {
		t.Error("scaled floor wrong")
	}
}
