package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden files instead of comparing against
// them: go test ./cmd/pbvet/ -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenApps are the six bundled applications; their sources are the
// realistic inputs the facts pipeline was built against, so pinning
// pbvet's output over them pins both the diagnostic surface and the
// -facts dump format.
var goldenApps = []string{"flow", "frag", "ipv4_radix", "ipv4_trie", "payload_scan", "tsa"}

func appSource(app string) string {
	return filepath.Join("..", "..", "internal", "apps", "src", app+".s")
}

// checkGolden compares got against testdata/<name>.golden, or rewrites
// the file under -update. The verifier is deterministic (fixed
// instruction order, sorted diagnostics), so the output is byte-stable.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (rerun with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s output differs from golden file; rerun with -update if the change is intended.\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// TestGoldenAppDiagnostics pins pbvet's diagnostic output — including
// the facts pipeline's warn-severity findings — over the six bundled
// applications. All six must verify without error-severity findings
// (exit 0): a new error here means a translator-visible regression in
// either the apps or the analysis.
func TestGoldenAppDiagnostics(t *testing.T) {
	for _, app := range goldenApps {
		t.Run(app, func(t *testing.T) {
			var out, errb bytes.Buffer
			if status := run([]string{appSource(app)}, &out, &errb); status != 0 {
				t.Fatalf("status = %d, want 0; stderr: %s\nstdout:\n%s", status, errb.String(), out.String())
			}
			checkGolden(t, app+"_diags", out.String())
		})
	}
}

// TestGoldenAppFacts pins the -facts dump over the six bundled
// applications: the proven memory regions, address intervals, constant
// branches and redundant masks the proof-guided translator consumes.
// A diff here is a change in what the abstract interpretation can
// prove — sometimes intended (analysis got sharper), never invisible.
func TestGoldenAppFacts(t *testing.T) {
	for _, app := range goldenApps {
		t.Run(app, func(t *testing.T) {
			var out, errb bytes.Buffer
			if status := run([]string{"-facts", appSource(app)}, &out, &errb); status != 0 {
				t.Fatalf("status = %d, want 0; stderr: %s", status, errb.String())
			}
			checkGolden(t, app+"_facts", out.String())
		})
	}
}
