// Command pbvet statically verifies PB32 assembly files without running
// them: it assembles each file, builds the control-flow graph, and runs
// the full internal/staticcheck analysis suite — reachability, control
// transfers that leave the text segment, fall-off-the-end paths,
// def-before-use register dataflow, static memory-range and alignment
// checks against the PacketBench memory map, stack discipline, and loop
// termination — printing findings with source line numbers in the
// familiar file:line: severity: message form.
//
// Usage:
//
//	pbvet file.s [file2.s ...]     # diagnostics; exit 1 on errors
//	pbvet -entry main file.s       # verify from a specific entry symbol
//	pbvet -dot file.s              # print the CFG in Graphviz format
//	pbvet -facts file.s            # dump the abstract-interpretation facts
//
// Diagnostic runs include the facts pipeline's warn-severity findings
// (constant branches, redundant masks, value-analysis dead code) on top
// of the structural checks. -facts instead dumps the per-instruction
// facts the proof-guided translator acts on: proven memory regions with
// address intervals, constant branch directions, redundant masks, and
// unreachable instructions.
//
// The exit status is 2 on usage or assembly errors, 1 if any file has
// error-severity findings, and 0 otherwise (warnings do not fail the
// run).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/staticcheck"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pbvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dot     = fs.Bool("dot", false, "print the control-flow graph in Graphviz format instead of diagnostics")
		facts   = fs.Bool("facts", false, "dump the abstract-interpretation facts instead of diagnostics")
		entries = fs.String("entry", "", "comma-separated entry symbols (default: the file's .global text symbols)")
		heap    = fs.Uint("heap", 0, "heap size in bytes for the memory map (default: the framework default)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: pbvet [-dot] [-facts] [-entry syms] [-heap n] file.s ...")
		return 2
	}

	status := 0
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "pbvet:", err)
			return 2
		}
		prog, err := asm.Assemble(string(src), asm.Options{})
		if err != nil {
			fmt.Fprintf(stderr, "pbvet: %s: %v\n", path, err)
			return 2
		}
		opts := staticcheck.Options{Layout: core.LayoutFor(prog, uint32(*heap)), FactsDiags: true}
		if *entries != "" {
			opts.Entries = strings.Split(*entries, ",")
		}
		if *dot {
			cfg, ds := staticcheck.BuildCFG(prog, opts)
			for _, d := range ds {
				fmt.Fprintf(stderr, "%s:%s\n", path, strings.TrimPrefix(d.String(), "line "))
			}
			fmt.Fprint(stdout, cfg.Dot())
			continue
		}
		if *facts {
			_, fx := staticcheck.VerifyWithFacts(prog, opts)
			fmt.Fprintf(stdout, "%s:\n", path)
			fx.Dump(stdout)
			continue
		}
		ds := staticcheck.Verify(prog, opts)
		for _, d := range ds {
			// Diagnostic.String renders "line N: sev: msg [check]";
			// prefix the file for the conventional file:line form.
			fmt.Fprintf(stdout, "%s:%d: %s: %s [%s]\n", path, d.Line, d.Severity, d.Msg, d.Check)
		}
		if ds.HasErrors() {
			status = 1
		}
	}
	return status
}
