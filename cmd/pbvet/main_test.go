package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestVetReportsFindings is the CLI face of the issue's acceptance
// scenario: three defects, three located diagnostics, exit status 1.
func TestVetReportsFindings(t *testing.T) {
	path := writeTemp(t, "bad.s", `        .global process_packet
process_packet:
        add  a2, t2, zero
        j    0x100000
        halt
`)
	var out, errb bytes.Buffer
	status := run([]string{path}, &out, &errb)
	if status != 1 {
		t.Fatalf("status = %d, want 1; stderr: %s", status, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 diagnostics, got %d:\n%s", len(lines), out.String())
	}
	for _, want := range []string{
		":3: warning: register t2 may be used before it is set [uninit-reg]",
		":4: error: jump target 0x100000 is outside the text segment",
		":5: warning: unreachable code",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestVetCleanFile exits 0 with no output for a clean program.
func TestVetCleanFile(t *testing.T) {
	path := writeTemp(t, "ok.s", `        .global e
e:      lw t0, 0(a0)
        halt
`)
	var out, errb bytes.Buffer
	if status := run([]string{path}, &out, &errb); status != 0 {
		t.Fatalf("status = %d, want 0; out: %s", status, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean file produced output:\n%s", out.String())
	}
}

// TestVetWarningsDoNotFail: warnings print but exit 0.
func TestVetWarningsDoNotFail(t *testing.T) {
	path := writeTemp(t, "warn.s", `        .global e
e:      add a0, t0, zero
        halt
`)
	var out, errb bytes.Buffer
	if status := run([]string{path}, &out, &errb); status != 0 {
		t.Fatalf("status = %d, want 0", status)
	}
	if !strings.Contains(out.String(), "uninit-reg") {
		t.Errorf("warning not printed:\n%s", out.String())
	}
}

// TestVetDot prints a Graphviz graph.
func TestVetDot(t *testing.T) {
	path := writeTemp(t, "g.s", `        .global e
e:      beqz a0, out
        addi a0, zero, 2
out:    halt
`)
	var out, errb bytes.Buffer
	if status := run([]string{"-dot", path}, &out, &errb); status != 0 {
		t.Fatalf("status = %d, want 0; stderr: %s", status, errb.String())
	}
	if !strings.Contains(out.String(), "digraph cfg") {
		t.Errorf("no dot output:\n%s", out.String())
	}
}

// TestVetEntryFlag verifies from an explicit entry symbol.
func TestVetEntryFlag(t *testing.T) {
	src := `main:   halt
other:  halt
`
	path := writeTemp(t, "e.s", src)
	var out, errb bytes.Buffer
	if status := run([]string{"-entry", "main", path}, &out, &errb); status != 0 {
		t.Fatalf("status = %d, want 0", status)
	}
	if !strings.Contains(out.String(), "unreachable") {
		t.Errorf("expected unreachable warning for 'other':\n%s", out.String())
	}
	if status := run([]string{"-entry", "nope", path}, &out, &errb); status != 1 {
		t.Fatal("undefined entry symbol must fail")
	}
}

// TestVetBadUsage: missing files and unassemblable input are usage
// errors (status 2), distinct from verification failures.
func TestVetBadUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if status := run(nil, &out, &errb); status != 2 {
		t.Errorf("no-args status = %d, want 2", status)
	}
	if status := run([]string{filepath.Join(t.TempDir(), "missing.s")}, &out, &errb); status != 2 {
		t.Errorf("missing-file status = %d, want 2", status)
	}
	bad := writeTemp(t, "bad.s", "frobnicate a0\n")
	if status := run([]string{bad}, &out, &errb); status != 2 {
		t.Errorf("assembly-error status = %d, want 2", status)
	}
}
