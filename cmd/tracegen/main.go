// Command tracegen generates synthetic packet traces using the built-in
// profiles that stand in for the paper's MRA/COS/ODU/LAN captures, and
// writes them in tcpdump (pcap) or NLANR TSH format.
//
// Usage:
//
//	tracegen -profile MRA -n 100000 -o mra.pcap
//	tracegen -profile LAN -n 10000 -o lan.tsh
//	tracegen -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/gen"
	"repro/internal/trace"
)

func main() {
	var (
		profile  = flag.String("profile", "MRA", "trace profile (MRA, COS, ODU, LAN)")
		count    = flag.Int("n", 10000, "number of packets")
		output   = flag.String("o", "", "output file (.pcap or .tsh); required")
		list     = flag.Bool("list", false, "list available profiles and exit")
		renumber = flag.Bool("renumber", false, "apply NLANR-style sequential address renumbering")
		scramble = flag.Bool("scramble", false, "apply the paper's address scrambling (usually after -renumber)")
		spec     = flag.String("spec", "", "load a custom trace profile from this JSON file instead of -profile")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-8s %-20s %10s %8s %8s\n", "Name", "Link", "Packets", "Flows", "NewFlow")
		for _, p := range gen.Profiles() {
			fmt.Printf("%-8s %-20s %10d %8d %7.0f%%\n",
				p.Name, p.Link, p.Packets, p.Flows, p.NewFlowProb*100)
		}
		return
	}
	if err := run(*profile, *spec, *output, *count, *renumber, *scramble); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(profile, spec, output string, count int, renumber, scramble bool) error {
	if output == "" {
		return fmt.Errorf("-o output file is required")
	}
	var prof gen.Profile
	var err error
	if spec != "" {
		prof, err = loadSpec(spec)
	} else {
		prof, err = gen.ProfileByName(profile)
	}
	if err != nil {
		return err
	}
	pkts := gen.Generate(prof, count)
	if renumber {
		gen.RenumberNLANR(pkts)
	}
	if scramble {
		gen.ScrambleAddrs(pkts)
	}

	format := trace.FormatPcap
	if strings.HasSuffix(output, ".tsh") {
		format = trace.FormatTSH
	}
	f, err := os.Create(output)
	if err != nil {
		return err
	}
	w, err := trace.NewWriter(f, format)
	if err != nil {
		f.Close()
		return err
	}
	var bytes int
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			f.Close()
			return err
		}
		bytes += p.WireLen
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d packets (%d wire bytes) to %s (%s)\n", len(pkts), bytes, output, format)
	return nil
}

// loadSpec reads a gen.Profile from a JSON file, so custom workloads can
// be generated without recompiling. Unset fields take the generator's
// defaults; a minimal spec is {"Name": "mine", "Flows": 500}.
func loadSpec(path string) (gen.Profile, error) {
	var prof gen.Profile
	data, err := os.ReadFile(path)
	if err != nil {
		return prof, err
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&prof); err != nil {
		return prof, fmt.Errorf("tracegen: parsing %s: %w", path, err)
	}
	if prof.Name == "" {
		prof.Name = "custom"
	}
	return prof, nil
}
