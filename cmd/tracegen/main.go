// Command tracegen generates synthetic packet traces using the built-in
// profiles that stand in for the paper's MRA/COS/ODU/LAN captures, and
// writes them in tcpdump (pcap) or NLANR TSH format.
//
// Usage:
//
//	tracegen -profile MRA -n 100000 -o mra.pcap
//	tracegen -profile LAN -n 10000 -o lan.tsh
//	tracegen -profile DCWEB -n 100000 -shards 4 -o dcweb.pcap
//	tracegen -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/gen"
	"repro/internal/trace"
)

func main() {
	var (
		profile  = flag.String("profile", "MRA", "trace profile (see -list)")
		count    = flag.Int("n", 10000, "number of packets")
		output   = flag.String("o", "", "output file (.pcap or .tsh); required")
		shards   = flag.Int("shards", 1, "split the trace round-robin across this many files (base-0.pcap ... base-K-1.pcap), for sharded replay")
		list     = flag.Bool("list", false, "list available profiles and exit")
		renumber = flag.Bool("renumber", false, "apply NLANR-style sequential address renumbering")
		scramble = flag.Bool("scramble", false, "apply the paper's address scrambling (usually after -renumber)")
		spec     = flag.String("spec", "", "load a custom trace profile from this JSON file instead of -profile")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-8s %-20s %10s %8s %8s %8s\n", "Name", "Link", "Packets", "Flows", "NewFlow", "FlowPkt")
		for _, p := range gen.AllProfiles() {
			fp := "-"
			if p.FlowPackets > 0 {
				fp = fmt.Sprintf("%d", p.FlowPackets)
			}
			fmt.Printf("%-8s %-20s %10d %8d %7.0f%% %8s\n",
				p.Name, p.Link, p.Packets, p.Flows, p.NewFlowProb*100, fp)
		}
		return
	}
	if err := run(*profile, *spec, *output, *count, *shards, *renumber, *scramble); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(profile, spec, output string, count, shards int, renumber, scramble bool) error {
	if output == "" {
		return fmt.Errorf("-o output file is required")
	}
	if shards < 1 {
		return fmt.Errorf("-shards must be at least 1")
	}
	var prof gen.Profile
	var err error
	if spec != "" {
		prof, err = loadSpec(spec)
	} else {
		prof, err = gen.ProfileByName(profile)
	}
	if err != nil {
		return err
	}
	pkts := gen.Generate(prof, count)
	if renumber {
		gen.RenumberNLANR(pkts)
	}
	if scramble {
		gen.ScrambleAddrs(pkts)
	}

	format := trace.FormatPcap
	if strings.HasSuffix(output, ".tsh") {
		format = trace.FormatTSH
	}
	names := shardNames(output, shards)
	files := make([]*os.File, len(names))
	writers := make([]trace.Writer, len(names))
	for i, name := range names {
		f, err := os.Create(name)
		if err != nil {
			closeAll(files[:i])
			return err
		}
		w, err := trace.NewWriter(f, format)
		if err != nil {
			f.Close()
			closeAll(files[:i])
			return err
		}
		files[i], writers[i] = f, w
	}
	var bytes int
	// Round-robin sharding keeps each shard's timestamps monotone (the
	// generator's are), so a timestamp-merged replay of the shards
	// reproduces the original trace exactly.
	for i, p := range pkts {
		if err := writers[i%shards].WritePacket(p); err != nil {
			closeAll(files)
			return err
		}
		bytes += p.WireLen
	}
	for _, f := range files {
		if err := f.Close(); err != nil {
			return err
		}
	}
	if shards == 1 {
		fmt.Printf("wrote %d packets (%d wire bytes) to %s (%s)\n", len(pkts), bytes, output, format)
	} else {
		fmt.Printf("wrote %d packets (%d wire bytes) across %d shards %s ... %s (%s)\n",
			len(pkts), bytes, shards, names[0], names[len(names)-1], format)
	}
	return nil
}

// shardNames derives per-shard output paths: "base.pcap" with 3 shards
// becomes base-0.pcap, base-1.pcap, base-2.pcap. One shard keeps the
// name as given.
func shardNames(output string, shards int) []string {
	if shards == 1 {
		return []string{output}
	}
	ext := filepath.Ext(output)
	base := strings.TrimSuffix(output, ext)
	names := make([]string, shards)
	for i := range names {
		names[i] = fmt.Sprintf("%s-%d%s", base, i, ext)
	}
	return names
}

func closeAll(files []*os.File) {
	for _, f := range files {
		if f != nil {
			f.Close()
		}
	}
}

// loadSpec reads a gen.Profile from a JSON file, so custom workloads can
// be generated without recompiling. Unset fields take the generator's
// defaults; a minimal spec is {"Name": "mine", "Flows": 500}.
func loadSpec(path string) (gen.Profile, error) {
	var prof gen.Profile
	data, err := os.ReadFile(path)
	if err != nil {
		return prof, err
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&prof); err != nil {
		return prof, fmt.Errorf("tracegen: parsing %s: %w", path, err)
	}
	if prof.Name == "" {
		prof.Name = "custom"
	}
	return prof, nil
}
