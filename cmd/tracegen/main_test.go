package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesBothFormats(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"out.pcap", "out.tsh"} {
		// LAN generates no IP options, so both formats accept it.
		if err := run("LAN", "", filepath.Join(dir, name), 50, false, false); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRunPreprocessing(t *testing.T) {
	dir := t.TempDir()
	if err := run("MRA", "", filepath.Join(dir, "m.pcap"), 20, true, true); err != nil {
		t.Errorf("renumber+scramble: %v", err)
	}
}

func TestRunWithSpec(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "p.json")
	body := `{"Name": "tiny", "Flows": 20, "NewFlowProb": 0.1, "TCP": 1,
	          "Sizes": [{"Bytes": 64, "Weight": 1}], "AddrBits": 10, "Seed": 9}`
	if err := os.WriteFile(spec, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", spec, filepath.Join(dir, "t.pcap"), 40, false, false); err != nil {
		t.Fatal(err)
	}
	// Bad specs fail loudly.
	bad := filepath.Join(dir, "bad.json")
	_ = os.WriteFile(bad, []byte(`{"NotAField": 1}`), 0o644)
	if err := run("", bad, filepath.Join(dir, "u.pcap"), 10, false, false); err == nil {
		t.Error("unknown spec field accepted")
	}
	if err := run("", filepath.Join(dir, "absent.json"), filepath.Join(dir, "v.pcap"), 10, false, false); err == nil {
		t.Error("missing spec accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("MRA", "", "", 10, false, false); err == nil || !strings.Contains(err.Error(), "required") {
		t.Errorf("missing output accepted: %v", err)
	}
	if err := run("NOPE", "", t.TempDir()+"/x.pcap", 10, false, false); err == nil {
		t.Error("unknown profile accepted")
	}
	if err := run("LAN", "", "/nonexistent-dir/x.pcap", 10, false, false); err == nil {
		t.Error("unwritable path accepted")
	}
}
