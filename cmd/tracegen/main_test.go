package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestRunWritesBothFormats(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"out.pcap", "out.tsh"} {
		// LAN generates no IP options, so both formats accept it.
		if err := run("LAN", "", filepath.Join(dir, name), 50, 1, false, false); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRunPreprocessing(t *testing.T) {
	dir := t.TempDir()
	if err := run("MRA", "", filepath.Join(dir, "m.pcap"), 20, 1, true, true); err != nil {
		t.Errorf("renumber+scramble: %v", err)
	}
}

// TestRunSharded checks round-robin sharding: the shard files together
// hold every packet, and a timestamp-merged replay reproduces the
// unsharded trace exactly.
func TestRunSharded(t *testing.T) {
	dir := t.TempDir()
	if err := run("LAN", "", filepath.Join(dir, "whole.pcap"), 60, 1, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run("LAN", "", filepath.Join(dir, "sh.pcap"), 60, 3, false, false); err != nil {
		t.Fatal(err)
	}
	var shards []trace.Reader
	for i := 0; i < 3; i++ {
		r, err := trace.OpenPcap(filepath.Join(dir, "sh-"+string(rune('0'+i))+".pcap"))
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		defer r.Close()
		shards = append(shards, r)
	}
	merged, err := trace.ReadAll(trace.NewMergeReader(shards...), 0)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := trace.OpenPcap(filepath.Join(dir, "whole.pcap"))
	if err != nil {
		t.Fatal(err)
	}
	defer whole.Close()
	want, err := trace.ReadAll(whole, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != len(want) {
		t.Fatalf("merged %d packets, want %d", len(merged), len(want))
	}
	for i := range want {
		if merged[i].Sec != want[i].Sec || merged[i].Usec != want[i].Usec ||
			merged[i].WireLen != want[i].WireLen {
			t.Fatalf("packet %d differs after shard+merge round trip", i)
		}
	}

	if err := run("LAN", "", filepath.Join(dir, "z.pcap"), 10, 0, false, false); err == nil {
		t.Error("zero shards accepted")
	}
}

func TestRunWithSpec(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "p.json")
	body := `{"Name": "tiny", "Flows": 20, "NewFlowProb": 0.1, "TCP": 1,
	          "Sizes": [{"Bytes": 64, "Weight": 1}], "AddrBits": 10, "Seed": 9}`
	if err := os.WriteFile(spec, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", spec, filepath.Join(dir, "t.pcap"), 40, 1, false, false); err != nil {
		t.Fatal(err)
	}
	// Bad specs fail loudly.
	bad := filepath.Join(dir, "bad.json")
	_ = os.WriteFile(bad, []byte(`{"NotAField": 1}`), 0o644)
	if err := run("", bad, filepath.Join(dir, "u.pcap"), 10, 1, false, false); err == nil {
		t.Error("unknown spec field accepted")
	}
	if err := run("", filepath.Join(dir, "absent.json"), filepath.Join(dir, "v.pcap"), 10, 1, false, false); err == nil {
		t.Error("missing spec accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("MRA", "", "", 10, 1, false, false); err == nil || !strings.Contains(err.Error(), "required") {
		t.Errorf("missing output accepted: %v", err)
	}
	if err := run("NOPE", "", t.TempDir()+"/x.pcap", 10, 1, false, false); err == nil {
		t.Error("unknown profile accepted")
	}
	if err := run("LAN", "", "/nonexistent-dir/x.pcap", 10, 1, false, false); err == nil {
		t.Error("unwritable path accepted")
	}
}
