package packetbench_test

import (
	"fmt"

	packetbench "repro"
)

// ExampleNew demonstrates the core workflow: generate a trace, build an
// application over a routing table derived from it, and summarize the
// workload.
func ExampleNew() {
	pkts := packetbench.GenerateTrace("LAN", 500)
	table := packetbench.RouteTableFromTrace(pkts, 1024)
	bench, err := packetbench.New(packetbench.NewIPv4Trie(table), packetbench.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	records, err := bench.RunPackets(pkts, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	s := packetbench.Summarize(records)
	fmt.Printf("packets: %d\n", s.Packets)
	fmt.Printf("packet accesses are constant: %v\n", s.MeanPacketAcc > 10 && s.MeanPacketAcc < 60)
	// Output:
	// packets: 500
	// packet accesses are constant: true
}

// ExampleGenerateTrace shows the deterministic synthetic traces standing
// in for the paper's captures.
func ExampleGenerateTrace() {
	a := packetbench.GenerateTrace("COS", 3)
	b := packetbench.GenerateTrace("COS", 3)
	fmt.Println("deterministic:", string(a[0].Data) == string(b[0].Data))
	fmt.Println("profiles:", len(packetbench.TraceProfiles()))
	// Output:
	// deterministic: true
	// profiles: 4
}

// ExampleInstructionOccurrences reproduces the flavor of the paper's
// Table V for one application.
func ExampleInstructionOccurrences() {
	pkts := packetbench.GenerateTrace("LAN", 400)
	bench, _ := packetbench.New(packetbench.NewTSA(1), packetbench.Options{})
	records, _ := bench.RunPackets(pkts, nil)
	occ := packetbench.InstructionOccurrences(records, 1)
	// TSA is strictly linear: one instruction count covers all packets.
	fmt.Printf("top value covers %.0f%% of packets\n", occ.Top[0].Pct(occ.Total))
	// Output:
	// top value covers 100% of packets
}
