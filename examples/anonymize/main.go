// Anonymize: the network-measurement workflow the paper's TSA
// application exists for — scrub the IP addresses of a capture while
// preserving prefix relationships, so routing-level analyses still work
// on the anonymized trace.
//
// The pipeline runs end to end through the simulator: packets are loaded
// into simulated packet memory, the TSA application rewrites the
// addresses in place, and the framework writes the modified packets to
// an output pcap — while simultaneously collecting the application's
// workload profile.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"path/filepath"

	packetbench "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "pb-anon")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	inPath := filepath.Join(dir, "input.pcap")
	outPath := filepath.Join(dir, "anonymized.pcap")

	// 1. A capture to anonymize (synthetic COS-like traffic).
	original := packetbench.GenerateTrace("COS", 2000)
	if err := packetbench.WriteTraceFile(inPath, original); err != nil {
		log.Fatal(err)
	}

	// 2. Run TSA over the capture on the simulated core.
	bench, err := packetbench.New(packetbench.NewTSA(0xFEEDFACE), packetbench.Options{})
	if err != nil {
		log.Fatal(err)
	}
	input, err := packetbench.ReadTraceFile(inPath, 0)
	if err != nil {
		log.Fatal(err)
	}
	anonymized := make([]*packetbench.Packet, len(input))
	records, err := bench.RunPackets(input, func(i int, res packetbench.Result) {
		out := *input[i]
		out.Data = bench.PacketBytes(len(input[i].Data))
		anonymized[i] = &out
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := packetbench.WriteTraceFile(outPath, anonymized); err != nil {
		log.Fatal(err)
	}

	// 3. Verify the anonymization is useful: addresses changed, yet
	// prefix relationships survive.
	srcOf := func(p *packetbench.Packet) uint32 { return binary.BigEndian.Uint32(p.Data[12:]) }
	changed := 0
	for i := range original {
		if srcOf(original[i]) != srcOf(anonymized[i]) {
			changed++
		}
	}
	preserved, checked := 0, 0
	for i := 0; i+1 < len(original); i += 2 {
		a, b := srcOf(original[i]), srcOf(original[i+1])
		x, y := srcOf(anonymized[i]), srcOf(anonymized[i+1])
		if commonPrefixLen(a, b) == commonPrefixLen(x, y) {
			preserved++
		}
		checked++
	}

	s := packetbench.Summarize(records)
	fmt.Printf("anonymized %d packets -> %s\n", len(anonymized), outPath)
	fmt.Printf("  source addresses changed:   %d/%d\n", changed, len(original))
	fmt.Printf("  prefix lengths preserved:   %d/%d sampled pairs\n", preserved, checked)
	fmt.Printf("  TSA cost:                   %.0f instructions/packet (constant: min=max for linear code)\n",
		s.MeanInstructions)
	if preserved != checked {
		log.Fatal("prefix preservation violated")
	}
}

func commonPrefixLen(a, b uint32) int {
	x := a ^ b
	for n := 0; n < 32; n++ {
		if x&(1<<(31-uint(n))) != 0 {
			return n
		}
	}
	return 32
}
