// Coverage: size a network processor's on-chip instruction store, the
// design question behind the paper's Figure 8 ("the size of the on-chip
// instruction store ... has to be big enough to accommodate enough
// instructions to achieve sufficient packet coverage").
//
// The example profiles IPv4-radix over a backbone trace, ranks its basic
// blocks by execution probability, and reports how many blocks (and how
// many instruction bytes) the fast path needs for 90/95/99/100% packet
// coverage — the rarely executed remainder is exactly the slow-path code
// the paper suggests delegating to the control processor.
package main

import (
	"fmt"
	"log"

	packetbench "repro"
)

func main() {
	pkts := packetbench.GenerateTrace("MRA", 3000)
	table := packetbench.RouteTableFromTrace(pkts, 8192)

	bench, err := packetbench.New(packetbench.NewIPv4Radix(table), packetbench.Options{})
	if err != nil {
		log.Fatal(err)
	}
	records, err := bench.RunPackets(pkts, nil)
	if err != nil {
		log.Fatal(err)
	}

	curve := packetbench.CoverageCurve(bench, records)
	blocks := bench.BlockMap()
	fmt.Printf("IPv4-radix: %d basic blocks, %d instructions total\n",
		blocks.NumBlocks(), blocks.NumInstructions())

	// Translate "top-k blocks" into instruction-store bytes by summing
	// the sizes of the k cheapest-to-retain blocks along the curve.
	fmt.Printf("%10s %8s %14s\n", "coverage", "blocks", "store bytes")
	for _, target := range []float64{0.90, 0.95, 0.99, 1.0} {
		k := minBlocksFor(curve, target)
		fmt.Printf("%9.0f%% %8d %14d\n", target*100, k, storeBytes(bench, records, k))
	}

	full := blocks.NumInstructions() * 4
	k90 := minBlocksFor(curve, 0.90)
	fmt.Printf("\nretaining %d of %d blocks covers 90%% of packets; the remaining\n",
		k90, blocks.NumBlocks())
	fmt.Printf("blocks (%d instruction bytes of slow path) can live on the control processor\n",
		full-storeBytes(bench, records, k90))
}

func minBlocksFor(curve []packetbench.CoveragePoint, target float64) int {
	for _, p := range curve {
		if p.Coverage >= target {
			return p.Blocks
		}
	}
	if len(curve) == 0 {
		return 0
	}
	return curve[len(curve)-1].Blocks
}

// storeBytes sums the instruction bytes of the k most frequently
// executed blocks.
func storeBytes(bench *packetbench.Bench, records []packetbench.PacketRecord, k int) int {
	blocks := bench.BlockMap()
	counts := make([]int, blocks.NumBlocks())
	for i := range records {
		for _, b := range records[i].Blocks {
			counts[b]++
		}
	}
	// Selection by repeated max keeps this dependency-free; block counts
	// are tiny.
	picked := make([]bool, len(counts))
	bytes := 0
	for n := 0; n < k && n < len(counts); n++ {
		best, bestCount := -1, -1
		for b, c := range counts {
			if !picked[b] && c > bestCount {
				best, bestCount = b, c
			}
		}
		picked[best] = true
		bytes += blocks.Size(best) * 4
	}
	return bytes
}
