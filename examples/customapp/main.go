// Customapp: write a brand-new PacketBench application from scratch.
//
// The paper's pitch is that "new applications can be developed ...,
// plugged into the framework, and run on the simulator to obtain
// processing characteristics". This example builds a TTL-threshold
// filter with a per-port packet counter — about forty instructions of
// PB32 assembly plus a ten-line Init hook — and characterizes it like
// any built-in application.
package main

import (
	_ "embed"
	"fmt"
	"log"

	packetbench "repro"
)

// The application lives in its own assembly file, like the bundled
// applications: drop packets whose TTL is below a configured threshold,
// count accepted packets per TTL octile in a small table, and return 1
// (accept) or 0 (drop). Keeping the source on disk lets the pbvet CLI
// (and CI) statically verify it without running this program. It sits in
// src/ so the Go toolchain does not mistake it for Go assembly.
//
//go:embed src/ttl_filter.s
var ttlFilterSrc string

func ttlFilter(threshold uint32) *packetbench.App {
	return &packetbench.App{
		Name:   "ttl-filter",
		Source: ttlFilterSrc,
		Entry:  "process_packet",
		Init: func(ld *packetbench.Loader) error {
			return ld.SetWord("threshold", threshold)
		},
	}
}

func main() {
	app := ttlFilter(64)
	bench, err := packetbench.New(app, packetbench.Options{})
	if err != nil {
		log.Fatal(err)
	}

	pkts := packetbench.GenerateTrace("LAN", 5000)
	accepted, dropped := 0, 0
	records, err := bench.RunPackets(pkts, func(i int, res packetbench.Result) {
		if res.Verdict == 1 {
			accepted++
		} else {
			dropped++
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	s := packetbench.Summarize(records)
	fmt.Printf("%s over %d packets: %d accepted, %d dropped\n",
		app.Name, len(pkts), accepted, dropped)
	fmt.Printf("  %.1f instructions/packet (accept path is a few more than drop)\n",
		s.MeanInstructions)
	occ := packetbench.InstructionOccurrences(records, 2)
	for _, o := range occ.Top {
		fmt.Printf("  %d instructions: %.1f%% of packets\n", o.Value, o.Pct(occ.Total))
	}

	// The counter table lives in simulated memory; read it back through
	// the bench to show host-side result extraction.
	addr, err := bench.Loader().Symbol("counters")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  accepted packets by TTL bucket:")
	for b := 0; b < 8; b++ {
		n := bench.Memory().Read32(addr + uint32(b)*4)
		if n > 0 {
			fmt.Printf("    TTL %3d-%3d: %d\n", b*32, b*32+31, n)
		}
	}
}
