// Customapp: write a brand-new PacketBench application from scratch.
//
// The paper's pitch is that "new applications can be developed ...,
// plugged into the framework, and run on the simulator to obtain
// processing characteristics". This example builds a TTL-threshold
// filter with a per-port packet counter — about forty instructions of
// PB32 assembly plus a ten-line Init hook — and characterizes it like
// any built-in application.
package main

import (
	"fmt"
	"log"

	packetbench "repro"
)

// The application: drop packets whose TTL is below a configured
// threshold, count accepted packets per TTL octile in a small table, and
// return 1 (accept) or 0 (drop).
const ttlFilterSrc = `
        .equ IP_TTL, 8

        .data
threshold:                     ; minimum acceptable TTL, set by Init
        .word 0
counters:                      ; accepted packets per TTL/32 bucket
        .space 8*4

        .text
        .global process_packet
process_packet:
        lbu  t0, IP_TTL(a0)    ; packet TTL
        la   t1, threshold
        lw   t1, 0(t1)
        blt  t0, t1, reject

        srli t2, t0, 5         ; TTL / 32 -> bucket 0..7
        slli t2, t2, 2
        la   t3, counters
        add  t3, t3, t2
        lw   t4, 0(t3)
        addi t4, t4, 1
        sw   t4, 0(t3)

        addi a0, zero, 1
        ret
reject:
        mv   a0, zero
        ret
`

func ttlFilter(threshold uint32) *packetbench.App {
	return &packetbench.App{
		Name:   "ttl-filter",
		Source: ttlFilterSrc,
		Entry:  "process_packet",
		Init: func(ld *packetbench.Loader) error {
			return ld.SetWord("threshold", threshold)
		},
	}
}

func main() {
	app := ttlFilter(64)
	bench, err := packetbench.New(app, packetbench.Options{})
	if err != nil {
		log.Fatal(err)
	}

	pkts := packetbench.GenerateTrace("LAN", 5000)
	accepted, dropped := 0, 0
	records, err := bench.RunPackets(pkts, func(i int, res packetbench.Result) {
		if res.Verdict == 1 {
			accepted++
		} else {
			dropped++
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	s := packetbench.Summarize(records)
	fmt.Printf("%s over %d packets: %d accepted, %d dropped\n",
		app.Name, len(pkts), accepted, dropped)
	fmt.Printf("  %.1f instructions/packet (accept path is a few more than drop)\n",
		s.MeanInstructions)
	occ := packetbench.InstructionOccurrences(records, 2)
	for _, o := range occ.Top {
		fmt.Printf("  %d instructions: %.1f%% of packets\n", o.Value, o.Pct(occ.Total))
	}

	// The counter table lives in simulated memory; read it back through
	// the bench to show host-side result extraction.
	addr, err := bench.Loader().Symbol("counters")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  accepted packets by TTL bucket:")
	for b := 0; b < 8; b++ {
		n := bench.Memory().Read32(addr + uint32(b)*4)
		if n > 0 {
			fmt.Printf("    TTL %3d-%3d: %d\n", b*32, b*32+31, n)
		}
	}
}
