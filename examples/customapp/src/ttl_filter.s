; TTL-threshold filter with a per-port packet counter: drop packets
; whose TTL is below the threshold Init publishes, count accepted
; packets per TTL octile, return 1 (accept) or 0 (drop).
;
; The file is embedded by main.go and verified by pbvet in CI.

        .equ IP_TTL, 8

        .data
threshold:                     ; minimum acceptable TTL, set by Init
        .word 0
counters:                      ; accepted packets per TTL/32 bucket
        .space 8*4

        .text
        .global process_packet
process_packet:
        lbu  t0, IP_TTL(a0)    ; packet TTL
        la   t1, threshold
        lw   t1, 0(t1)
        blt  t0, t1, reject

        srli t2, t0, 5         ; TTL / 32 -> bucket 0..7
        slli t2, t2, 2
        la   t3, counters
        add  t3, t3, t2
        lw   t4, 0(t3)
        addi t4, t4, 1
        sw   t4, 0(t3)

        addi a0, zero, 1
        ret
reject:
        mv   a0, zero
        ret
