// Faults: run an application over a corrupted trace under each fault
// policy. Real captures arrive damaged — truncated bodies, flipped
// header bytes, records whose lengths lie — and a workload
// characterization tool that aborts on the first bad packet cannot
// profile them at all.
//
// The example corrupts a synthetic backbone trace with the deterministic
// fault injector — a flipped header byte and a truncation, which the
// forwarding application digests silently (it just routes differently),
// plus a forced VM fault mid-execution standing in for corruption the
// application cannot digest. It then shows the three policies: FailFast
// aborts on the first fault, SkipAndRecord quarantines the faulted
// packet and reports per-fault-kind counts while every untouched
// packet's record stays byte-identical to a clean run, and Retry
// distinguishes transient faults from persistent ones.
package main

import (
	"errors"
	"fmt"
	"log"

	packetbench "repro"
)

func main() {
	pkts := packetbench.GenerateTrace("MRA", 500)
	table := packetbench.RouteTableFromTrace(pkts, 4096)
	app := packetbench.NewIPv4Radix(table)

	// Corrupt the trace deterministically: flip a seed-chosen byte of
	// packet 17, truncate packet 100 to 20 bytes, and force an illegal
	// instruction 6 steps into packet 250's execution. Same seed, same
	// corruption — a failure seen once is reproducible forever. The flip
	// and the truncation still parse as IPv4 (they merely perturb the
	// lookup), so only the forced fault quarantines a packet here.
	plan, err := packetbench.ParseInjectionPlan("flip@17,trunc@100:20,vmfault@250:6")
	if err != nil {
		log.Fatal(err)
	}
	inj := packetbench.NewFaultInjector(42, plan)
	corrupted := packetbench.InjectTraceFaults(inj, pkts)

	// FailFast (the default): the forced fault kills the run.
	bench, err := packetbench.New(app, packetbench.Options{})
	if err != nil {
		log.Fatal(err)
	}
	bench.AddTracer(inj.Tracer())
	_, err = bench.RunPackets(corrupted, nil)
	fmt.Printf("fail-fast:       %v\n", err)

	// SkipAndRecord: quarantine the damaged packets (up to the error
	// budget) and keep profiling the rest.
	bench, err = packetbench.New(app, packetbench.Options{
		Errors: packetbench.ErrorPolicy{Policy: packetbench.SkipAndRecord, ErrorBudget: 10},
	})
	if err != nil {
		log.Fatal(err)
	}
	bench.AddTracer(inj.Tracer())
	records, err := bench.RunPackets(corrupted, nil)
	if err != nil {
		log.Fatal(err)
	}
	s := packetbench.Summarize(records)
	fmt.Printf("skip-and-record: %d packets, %d measured, %d quarantined\n",
		s.Packets, s.Measured(), s.Faulted)
	for kind, n := range s.FaultCounts {
		fmt.Printf("                 %d × %v\n", n, kind)
	}
	fmt.Printf("                 %.1f instructions/packet over the measured packets\n",
		s.MeanInstructions)

	// The quarantined records keep their index slots, so per-packet
	// results still line up with the trace.
	for _, r := range records {
		if r.Faulted() {
			fmt.Printf("                 packet %4d quarantined: %v\n", r.Index, r.Fault)
		}
	}

	// Clean reference: the measured mean above excludes the quarantined
	// packet but still includes the two corrupted-yet-processable ones,
	// so it sits within a fraction of a percent of the pristine trace.
	cleanBench, err := packetbench.New(app, packetbench.Options{})
	if err != nil {
		log.Fatal(err)
	}
	cleanRecords, err := cleanBench.RunPackets(pkts, nil)
	if err != nil {
		log.Fatal(err)
	}
	clean := packetbench.Summarize(cleanRecords)
	fmt.Printf("clean reference: %.1f instructions/packet\n", clean.MeanInstructions)

	// Retry: a fault that fires only on the first attempt (times = 1)
	// clears on re-execution; nothing is quarantined.
	plan, err = packetbench.ParseInjectionPlan("vmfault@250:6:1")
	if err != nil {
		log.Fatal(err)
	}
	inj = packetbench.NewFaultInjector(42, plan)
	bench, err = packetbench.New(app, packetbench.Options{
		Errors: packetbench.ErrorPolicy{Policy: packetbench.Retry, MaxAttempts: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	bench.AddTracer(inj.Tracer())
	records, err = bench.RunPackets(pkts, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retry:           transient fault cleared, %d quarantined\n",
		packetbench.Summarize(records).Faulted)

	// Fault errors stay inspectable: budget exhaustion wraps the last
	// underlying fault kind.
	bench, err = packetbench.New(app, packetbench.Options{
		Errors: packetbench.ErrorPolicy{Policy: packetbench.SkipAndRecord, ErrorBudget: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	inj = packetbench.NewFaultInjector(42, mustPlan("vmfault@3,vmfault@5"))
	bench.AddTracer(inj.Tracer())
	if _, err := bench.RunPackets(pkts, nil); err != nil {
		fmt.Printf("budget of 1:     %v (illegal instruction: %v)\n",
			err, errors.Is(err, packetbench.FaultBadInstr))
	}
}

func mustPlan(spec string) []packetbench.Injection {
	plan, err := packetbench.ParseInjectionPlan(spec)
	if err != nil {
		panic(err)
	}
	return plan
}
