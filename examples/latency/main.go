// Latency: estimate per-packet processing delay through a loaded
// network-processor port — the paper's delay-model use case ("useful in
// the context of network simulations, where processing delay is
// currently not or only superficially considered").
//
// The pipeline: run IPv4-radix over a trace while a microarchitectural
// profiler converts each packet's instructions and memory behaviour into
// a cycle count; feed the resulting per-packet service times, together
// with the trace's arrival timestamps, into a discrete-event queueing
// simulation of the port; report delay percentiles as the engine count
// varies.
package main

import (
	"fmt"
	"log"

	packetbench "repro"
)

const clockHz = 600e6 // IXP2400-class engine clock

func main() {
	pkts := packetbench.GenerateTrace("MRA", 4000)
	table := packetbench.RouteTableFromTrace(pkts, 16384)
	bench, err := packetbench.New(packetbench.NewIPv4Radix(table), packetbench.Options{})
	if err != nil {
		log.Fatal(err)
	}
	prof, err := packetbench.NewMicroarchProfiler(4096, 8192)
	if err != nil {
		log.Fatal(err)
	}
	bench.AddTracer(prof)

	// Per-packet cycle counts: the profiler's cycle counter deltas
	// between packets.
	var cycles []uint64
	var secs, usecs []uint32
	last := uint64(0)
	_, err = bench.RunPackets(pkts, func(i int, res packetbench.Result) {
		cycles = append(cycles, prof.Cycles-last)
		last = prof.Cycles
		secs = append(secs, pkts[i].Sec)
		usecs = append(usecs, pkts[i].Usec)
	})
	if err != nil {
		log.Fatal(err)
	}

	jobs, err := packetbench.QueueJobs(secs, usecs, cycles, clockHz)
	if err != nil {
		log.Fatal(err)
	}
	// Scale the trace's arrival process so one engine would be offered
	// 160% load — the regime where queueing, not service time, dominates
	// delay and extra engines visibly pay off.
	var totalService float64
	for _, j := range jobs {
		totalService += j.Service
	}
	span := jobs[len(jobs)-1].Arrival
	scale := totalService / 1.6 / span
	for i := range jobs {
		jobs[i].Arrival *= scale
	}

	fmt.Printf("IPv4-radix on a %0.0f MHz engine: mean service %.2f us, offered load 1.6x one engine\n\n",
		clockHz/1e6, totalService/float64(len(jobs))*1e6)
	fmt.Printf("%8s %12s %12s %12s %12s %10s\n",
		"engines", "mean delay", "p50", "p99", "max queue", "util")
	for _, engines := range []int{1, 2, 3, 4, 8} {
		res, err := packetbench.RunQueue(jobs, packetbench.QueueConfig{Engines: engines})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %10.1f us %10.1f us %10.1f us %12d %9.0f%%\n",
			engines,
			res.MeanDelay()*1e6, res.Percentile(50)*1e6, res.Percentile(99)*1e6,
			res.MaxQueue, res.Utilization*100)
	}
	fmt.Println("\nwith a bounded queue of 32 packets on 2 engines:")
	res, err := packetbench.RunQueue(jobs, packetbench.QueueConfig{Engines: 2, QueueLimit: 32})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d completed, %d dropped (%.2f%%), p99 delay %.1f us\n",
		res.Completed, res.Dropped,
		100*float64(res.Dropped)/float64(res.Completed+res.Dropped),
		res.Percentile(99)*1e6)
}
