// Quickstart: characterize the workload of the paper's four applications
// on a synthetic backbone trace, reproducing the flavor of Table II with
// a dozen lines of API use.
package main

import (
	"fmt"
	"log"

	packetbench "repro"
)

func main() {
	// Generate a deterministic synthetic trace shaped like the paper's
	// MRA capture (OC-12c backbone) and derive a routing table covering
	// its destinations, standing in for the MAE-WEST snapshot.
	pkts := packetbench.GenerateTrace("MRA", 2000)
	table := packetbench.RouteTableFromTrace(pkts, 8192)

	apps := []*packetbench.App{
		packetbench.NewIPv4Radix(table),
		packetbench.NewIPv4Trie(table),
		packetbench.NewFlowClassification(0),
		packetbench.NewTSA(42),
	}

	fmt.Printf("%-22s %14s %12s %12s %14s\n",
		"Application", "instr/pkt", "pkt mem", "non-pkt mem", "unique instr")
	for _, app := range apps {
		bench, err := packetbench.New(app, packetbench.Options{})
		if err != nil {
			log.Fatal(err)
		}
		records, err := bench.RunPackets(pkts, nil)
		if err != nil {
			log.Fatal(err)
		}
		s := packetbench.Summarize(records)
		fmt.Printf("%-22s %14.1f %12.1f %12.1f %14.1f\n",
			app.Name, s.MeanInstructions, s.MeanPacketAcc, s.MeanNonPacketAcc, s.MeanUnique)
	}
}
