// Sysdesign: from per-packet workload profiles to system design — the
// end-to-end use the paper's "Impact of Results" section describes.
//
// The pipeline: measure each application with PacketBench (instructions
// and region-split memory accesses per packet), profile its
// microarchitecture to estimate CPI, then feed both into the analytical
// network-processor model to predict system throughput and compare the
// parallel and pipelined multi-engine topologies.
package main

import (
	"fmt"
	"log"

	packetbench "repro"
)

func main() {
	pkts := packetbench.GenerateTrace("MRA", 3000)
	table := packetbench.RouteTableFromTrace(pkts, 16384)

	hw := packetbench.DefaultHardware()
	fmt.Printf("hardware: %d engines @ %.0f MHz, %d shared memory channels\n\n",
		hw.Engines, hw.ClockHz/1e6, hw.MemChannels)

	for _, app := range []*packetbench.App{
		packetbench.NewIPv4Radix(table),
		packetbench.NewIPv4Trie(table),
		packetbench.NewFlowClassification(0),
		packetbench.NewTSA(3),
	} {
		bench, err := packetbench.New(app, packetbench.Options{})
		if err != nil {
			log.Fatal(err)
		}
		// Attach a microarchitectural profiler to estimate CPI with
		// realistic first-level caches.
		prof, err := packetbench.NewMicroarchProfiler(4096, 8192)
		if err != nil {
			log.Fatal(err)
		}
		bench.AddTracer(prof)

		records, err := bench.RunPackets(pkts, nil)
		if err != nil {
			log.Fatal(err)
		}
		prof.Flush()
		s := packetbench.Summarize(records)

		w := packetbench.Workload{
			InstrPerPacket:    s.MeanInstructions,
			PacketAccesses:    s.MeanPacketAcc,
			NonPacketAccesses: s.MeanNonPacketAcc,
		}
		hw.CPI = prof.CPI()
		out, err := packetbench.CompareTopologies(app.Name, w, hw, 500)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}
}
