package analysis

import (
	"math"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

func blockMapOf(t *testing.T, src string) (*BlockMap, *asm.Program) {
	t.Helper()
	p, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return NewBlockMap(p.Text, p.TextBase), p
}

func TestBlockMapStraightLine(t *testing.T) {
	m, _ := blockMapOf(t, `
		addi a0, zero, 1
		addi a1, zero, 2
		add  a0, a0, a1
		halt
	`)
	if m.NumBlocks() != 1 {
		t.Fatalf("straight-line code has %d blocks, want 1", m.NumBlocks())
	}
	if m.Size(0) != 4 {
		t.Errorf("block size = %d, want 4", m.Size(0))
	}
}

func TestBlockMapBranches(t *testing.T) {
	m, p := blockMapOf(t, `
		addi t0, zero, 10      ; b0
	loop:
		addi t0, t0, -1        ; b1 (branch target)
		bnez t0, loop          ; ends b1
		addi a0, zero, 1       ; b2 (after branch)
		halt
	`)
	if m.NumBlocks() != 3 {
		t.Fatalf("got %d blocks, want 3", m.NumBlocks())
	}
	// Instruction 0 in b0; instructions 1-2 in b1; 3-4 in b2.
	wantBlocks := []int{0, 1, 1, 2, 2}
	for i, want := range wantBlocks {
		if got := m.BlockOfIndex(i); got != want {
			t.Errorf("instr %d in block %d, want %d", i, got, want)
		}
	}
	loopAddr, _ := p.Symbol("loop")
	if got := m.BlockOf(loopAddr); got != 1 {
		t.Errorf("BlockOf(loop) = %d, want 1", got)
	}
	if m.BlockOf(p.TextBase-4) != -1 || m.BlockOf(p.TextEnd()) != -1 {
		t.Error("out-of-range pc not reported as -1")
	}
	if m.Leader(1) != loopAddr {
		t.Errorf("Leader(1) = %#x, want %#x", m.Leader(1), loopAddr)
	}
}

func TestBlockMapCalls(t *testing.T) {
	m, _ := blockMapOf(t, `
	main:
		call f        ; ends b0
		halt          ; b1
	f:
		add a0, a0, a0
		ret           ; b2 ends
	`)
	// call is 1 instr (b0), halt (b1), f body+ret (b2).
	if m.NumBlocks() != 3 {
		t.Fatalf("got %d blocks, want 3", m.NumBlocks())
	}
	if m.NumInstructions() != 4 {
		t.Errorf("NumInstructions = %d", m.NumInstructions())
	}
}

func TestBlockProbabilities(t *testing.T) {
	sets := [][]int{
		{0, 1},
		{0, 2},
		{0, 1, 2},
		{0},
	}
	probs := BlockProbabilities(sets, 3)
	want := []float64{1, 0.5, 0.5}
	for i := range want {
		if math.Abs(probs[i]-want[i]) > 1e-9 {
			t.Errorf("prob[%d] = %v, want %v", i, probs[i], want[i])
		}
	}
	// Degenerate inputs.
	if p := BlockProbabilities(nil, 2); p[0] != 0 || p[1] != 0 {
		t.Error("empty input gave nonzero probabilities")
	}
}

func TestCoverageCurve(t *testing.T) {
	// Block 0 executed by all, block 1 by half, block 2 by one packet.
	sets := [][]int{
		{0}, {0}, {0, 1}, {0, 1, 2},
	}
	curve := CoverageCurve(sets, 3)
	if len(curve) != 3 {
		t.Fatalf("curve has %d points", len(curve))
	}
	// Rank order: 0 (p=1), 1 (p=.5), 2 (p=.25).
	// Store=1 covers packets {0},{0} => 0.5; store=2 adds {0,1} => 0.75;
	// store=3 covers all => 1.
	want := []float64{0.5, 0.75, 1.0}
	for i, w := range want {
		if curve[i].Blocks != i+1 || math.Abs(curve[i].Coverage-w) > 1e-9 {
			t.Errorf("curve[%d] = %+v, want {%d %v}", i, curve[i], i+1, w)
		}
	}
	// Monotone nondecreasing is an invariant of the construction.
	for i := 1; i < len(curve); i++ {
		if curve[i].Coverage < curve[i-1].Coverage {
			t.Error("coverage curve not monotone")
		}
	}
}

func TestMinBlocksForCoverage(t *testing.T) {
	curve := []CoveragePoint{{1, 0.5}, {2, 0.75}, {3, 1.0}}
	cases := []struct {
		target float64
		want   int
	}{
		{0.4, 1}, {0.5, 1}, {0.6, 2}, {0.9, 3}, {1.0, 3},
	}
	for _, c := range cases {
		if got := MinBlocksForCoverage(curve, c.target); got != c.want {
			t.Errorf("MinBlocksForCoverage(%v) = %d, want %d", c.target, got, c.want)
		}
	}
	if MinBlocksForCoverage(nil, 0.5) != 0 {
		t.Error("empty curve should give 0")
	}
	// Unreachable target returns the largest store.
	if got := MinBlocksForCoverage([]CoveragePoint{{1, 0.2}, {2, 0.3}}, 0.99); got != 2 {
		t.Errorf("unreachable target = %d, want 2", got)
	}
}

func TestOccurrences(t *testing.T) {
	values := []uint64{100, 100, 100, 200, 200, 50, 300}
	tab := Occurrences(values, 3)
	if tab.Total != 7 {
		t.Errorf("Total = %d", tab.Total)
	}
	if len(tab.Top) != 3 || tab.Top[0].Value != 100 || tab.Top[0].Count != 3 {
		t.Errorf("Top = %+v", tab.Top)
	}
	if tab.Top[1].Value != 200 || tab.Top[1].Count != 2 {
		t.Errorf("Top[1] = %+v", tab.Top[1])
	}
	if tab.Min.Value != 50 || tab.Min.Count != 1 {
		t.Errorf("Min = %+v", tab.Min)
	}
	if tab.Max.Value != 300 || tab.Max.Count != 1 {
		t.Errorf("Max = %+v", tab.Max)
	}
	wantMean := (100.0*3 + 200*2 + 50 + 300) / 7
	if math.Abs(tab.Mean-wantMean) > 1e-9 {
		t.Errorf("Mean = %v, want %v", tab.Mean, wantMean)
	}
	if p := tab.Top[0].Pct(tab.Total); math.Abs(p-3.0/7*100) > 1e-9 {
		t.Errorf("Pct = %v", p)
	}
	wantTop := (3.0 + 2 + 1) / 7 * 100
	if math.Abs(tab.TopPct()-wantTop) > 1e-9 {
		t.Errorf("TopPct = %v, want %v", tab.TopPct(), wantTop)
	}
}

func TestOccurrencesEdgeCases(t *testing.T) {
	empty := Occurrences(nil, 3)
	if empty.Total != 0 || len(empty.Top) != 0 {
		t.Errorf("empty table = %+v", empty)
	}
	single := Occurrences([]uint64{42}, 5)
	if len(single.Top) != 1 || single.Min.Value != 42 || single.Max.Value != 42 {
		t.Errorf("single = %+v", single)
	}
	// Ties break toward the smaller value.
	tied := Occurrences([]uint64{7, 9, 7, 9}, 1)
	if tied.Top[0].Value != 7 {
		t.Errorf("tie break gave %d, want 7", tied.Top[0].Value)
	}
}

func TestInstructionPattern(t *testing.T) {
	pcs := []uint32{100, 104, 108, 104, 108, 112}
	got := InstructionPattern(pcs)
	want := []int{0, 1, 2, 1, 2, 3} // the loop revisits indices 1, 2
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pattern[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if UniqueCount(pcs) != 4 {
		t.Errorf("UniqueCount = %d, want 4", UniqueCount(pcs))
	}
}

func TestRepetitionFactor(t *testing.T) {
	if got := RepetitionFactor(400, 100); got != 4 {
		t.Errorf("RepetitionFactor = %v", got)
	}
	if RepetitionFactor(10, 0) != 0 {
		t.Error("division by zero not handled")
	}
}

func TestFlowGraph(t *testing.T) {
	seqs := [][]int{
		{0, 1, 2},
		{0, 1, 1, 2}, // revisiting block 1 adds a self edge
		{0, 2},
	}
	g := BuildFlowGraph(seqs, 3)
	if g.Edges[[2]int{0, 1}] != 2 {
		t.Errorf("edge 0->1 = %d, want 2", g.Edges[[2]int{0, 1}])
	}
	if g.Edges[[2]int{1, 2}] != 2 {
		t.Errorf("edge 1->2 = %d, want 2", g.Edges[[2]int{1, 2}])
	}
	if g.Edges[[2]int{1, 1}] != 1 {
		t.Errorf("self edge = %d, want 1", g.Edges[[2]int{1, 1}])
	}
	if g.Edges[[2]int{0, 2}] != 1 {
		t.Errorf("edge 0->2 = %d, want 1", g.Edges[[2]int{0, 2}])
	}
	if g.NodeWeight[0] != 3 || g.NodeWeight[1] != 3 || g.NodeWeight[2] != 3 {
		t.Errorf("node weights = %v", g.NodeWeight)
	}
	dot := g.Dot()
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "b0 -> b1") {
		t.Errorf("Dot output malformed:\n%s", dot)
	}
}

// TestBlockMapRealProgram decomposes a nontrivial program and checks the
// leader invariants hold.
func TestBlockMapRealProgram(t *testing.T) {
	m, p := blockMapOf(t, `
	entry:
		beqz a0, skip
		addi t0, zero, 5
	inner:
		addi t0, t0, -1
		bnez t0, inner
	skip:
		call helper
		halt
	helper:
		ret
	`)
	// Invariants: block ids are dense, sizes are positive and sum to the
	// instruction count, each leader starts its own block.
	total := 0
	for b := 0; b < m.NumBlocks(); b++ {
		sz := m.Size(b)
		if sz <= 0 {
			t.Errorf("block %d has size %d", b, sz)
		}
		total += sz
		if m.BlockOf(m.Leader(b)) != b {
			t.Errorf("leader of block %d maps to block %d", b, m.BlockOf(m.Leader(b)))
		}
	}
	if total != len(p.Text) {
		t.Errorf("block sizes sum to %d, text has %d", total, len(p.Text))
	}
	// Control targets are leaders.
	for name := range map[string]bool{"entry": true, "inner": true, "skip": true, "helper": true} {
		addr, _ := p.Symbol(name)
		b := m.BlockOf(addr)
		if m.Leader(b) != addr {
			t.Errorf("label %s at %#x is not a block leader", name, addr)
		}
	}
	_ = isa.WordSize
}
