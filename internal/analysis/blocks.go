// Package analysis implements the workload analyses of the paper's
// evaluation section: basic-block discovery and execution statistics
// (Figures 7 and 8), occurrence tables for instruction-count variation
// (Tables V and VI), per-packet instruction patterns (Figure 6), and the
// weighted basic-block flow graph sketched in the paper's introduction.
//
// The package is pure computation over execution traces; collection of
// those traces lives in internal/stats.
package analysis

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// BlockMap is the static basic-block decomposition of a program's text
// segment. A basic block is a maximal straight-line instruction sequence:
// leaders are the entry point, every branch/jump target, and every
// instruction following a control transfer.
type BlockMap struct {
	textBase uint32
	// of[i] is the block id of instruction i; block ids are dense and
	// ordered by leader address.
	of []int
	// leaders[b] is the instruction index of block b's first instruction.
	leaders []int
}

// NewBlockMap computes the basic blocks of a text segment. Jump-register
// (JALR) targets are not statically known; JALR conservatively ends a
// block, and every instruction that any call could return to (the one
// after a JAL with a link register) starts one, which is exactly right
// for the call/return discipline the assembler's pseudo-instructions
// produce.
func NewBlockMap(text []isa.Instruction, textBase uint32) *BlockMap {
	n := len(text)
	isLeader := make([]bool, n)
	if n > 0 {
		isLeader[0] = true
	}
	for i, in := range text {
		if !in.Op.IsControl() {
			continue
		}
		// The instruction after a control transfer begins a block.
		if i+1 < n {
			isLeader[i+1] = true
		}
		// Static targets of branches and JAL begin blocks.
		if in.Op.IsBranch() || in.Op == isa.JAL {
			t := i + 1 + int(in.Imm)
			if t >= 0 && t < n {
				isLeader[t] = true
			}
		}
	}
	m := &BlockMap{textBase: textBase, of: make([]int, n)}
	block := -1
	for i := range text {
		if isLeader[i] {
			block++
			m.leaders = append(m.leaders, i)
		}
		m.of[i] = block
	}
	return m
}

// NumBlocks returns the number of basic blocks.
func (m *BlockMap) NumBlocks() int { return len(m.leaders) }

// NumInstructions returns the instruction count of the mapped text.
func (m *BlockMap) NumInstructions() int { return len(m.of) }

// BlockOf returns the block id containing the instruction at pc, or -1
// if pc is outside the text segment.
func (m *BlockMap) BlockOf(pc uint32) int {
	idx := int(pc-m.textBase) / isa.WordSize
	if pc < m.textBase || idx >= len(m.of) {
		return -1
	}
	return m.of[idx]
}

// BlockOfIndex returns the block id of instruction index i.
func (m *BlockMap) BlockOfIndex(i int) int { return m.of[i] }

// LeaderIndex returns the instruction index of block b's leader. An
// instruction i begins an execution of block b exactly when
// i == LeaderIndex(BlockOfIndex(i)): branch targets and call-return
// points are always leaders by construction.
func (m *BlockMap) LeaderIndex(b int) int { return m.leaders[b] }

// Leader returns the address of block b's first instruction.
func (m *BlockMap) Leader(b int) uint32 {
	return m.textBase + uint32(m.leaders[b])*isa.WordSize
}

// Size returns the instruction count of block b.
func (m *BlockMap) Size(b int) int {
	return m.EndIndex(b) - m.leaders[b]
}

// EndIndex returns the exclusive end instruction index of block b: the
// index one past its terminator. The block-threaded engine uses it to
// bound straight-line execution of a block body.
func (m *BlockMap) EndIndex(b int) int {
	if b+1 < len(m.leaders) {
		return m.leaders[b+1]
	}
	return len(m.of)
}

// TerminatorIndex returns the instruction index of block b's last
// instruction — the one that decides where control goes next.
func (m *BlockMap) TerminatorIndex(b int) int {
	return m.leaders[b] + m.Size(b) - 1
}

// Successors computes the static control-flow successor edges of every
// basic block: branch targets plus fall-through, JAL targets (with the
// fall-through return point when the jump links, per the assembler's
// call discipline), and plain fall-through for blocks split by a
// following leader. JALR targets are not statically known and contribute
// no edges; HALT ends the graph. Targets outside the text segment are
// omitted (the static verifier reports them as diagnostics). text must
// be the instruction slice the map was built from.
func Successors(text []isa.Instruction, m *BlockMap) [][]int {
	succs := make([][]int, m.NumBlocks())
	addEdge := func(b int, idx int) {
		if idx < 0 || idx >= len(text) {
			return
		}
		t := m.of[idx]
		for _, s := range succs[b] {
			if s == t {
				return
			}
		}
		succs[b] = append(succs[b], t)
	}
	for b := 0; b < m.NumBlocks(); b++ {
		last := m.TerminatorIndex(b)
		in := text[last]
		switch {
		case in.Op == isa.HALT:
			// no successors
		case in.Op.IsBranch():
			addEdge(b, last+1+int(in.Imm))
			addEdge(b, last+1)
		case in.Op == isa.JAL:
			addEdge(b, last+1+int(in.Imm))
			if in.Rd != isa.Zero {
				// A linking jump is a call; control returns to the
				// fall-through instruction.
				addEdge(b, last+1)
			}
		case in.Op == isa.JALR:
			// Target unknown statically (function return or indirect
			// jump); no edges.
		default:
			addEdge(b, last+1)
		}
	}
	return succs
}

// Predecessors inverts a successor edge list.
func Predecessors(succs [][]int) [][]int {
	preds := make([][]int, len(succs))
	for b, ss := range succs {
		for _, s := range ss {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

// BlockProbabilities returns, for each block, the fraction of packets
// whose execution touched it (Figure 7 of the paper). blockSets holds the
// sorted block-id sets of each packet.
func BlockProbabilities(blockSets [][]int, numBlocks int) []float64 {
	counts := make([]int, numBlocks)
	for _, set := range blockSets {
		for _, b := range set {
			if b >= 0 && b < numBlocks {
				counts[b]++
			}
		}
	}
	probs := make([]float64, numBlocks)
	if len(blockSets) == 0 {
		return probs
	}
	for b, c := range counts {
		probs[b] = float64(c) / float64(len(blockSets))
	}
	return probs
}

// CoveragePoint is one point of the Figure 8 curve: retaining the Blocks
// most frequently executed basic blocks in the instruction store lets the
// fast path fully process a Coverage fraction of packets.
type CoveragePoint struct {
	Blocks   int
	Coverage float64
}

// CoverageCurve computes the packet-coverage-versus-instruction-store
// tradeoff of Figure 8. Blocks are ranked by execution probability
// (descending); a packet is covered by a store of size k if every block it
// executes ranks within the top k. The returned curve has one point per
// store size from 1 to numBlocks.
func CoverageCurve(blockSets [][]int, numBlocks int) []CoveragePoint {
	probs := BlockProbabilities(blockSets, numBlocks)
	// Rank blocks by descending probability (stable on id for
	// determinism).
	order := make([]int, numBlocks)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return probs[order[i]] > probs[order[j]]
	})
	rank := make([]int, numBlocks) // rank[block] = 1-based position
	for pos, b := range order {
		rank[b] = pos + 1
	}
	// Each packet needs a store at least as large as its worst-ranked
	// block.
	needed := make([]int, numBlocks+1)
	for _, set := range blockSets {
		worst := 0
		for _, b := range set {
			if b >= 0 && b < numBlocks && rank[b] > worst {
				worst = rank[b]
			}
		}
		needed[worst]++
	}
	curve := make([]CoveragePoint, numBlocks)
	cum := needed[0] // packets that executed nothing
	for k := 1; k <= numBlocks; k++ {
		cum += needed[k]
		curve[k-1] = CoveragePoint{Blocks: k, Coverage: float64(cum) / float64(max(1, len(blockSets)))}
	}
	return curve
}

// MinBlocksForCoverage returns the smallest instruction-store size (in
// blocks) achieving at least the target packet coverage, the "sweet spot"
// the paper reads off Figure 8. It returns numBlocks if the target is
// unreachable.
func MinBlocksForCoverage(curve []CoveragePoint, target float64) int {
	for _, p := range curve {
		if p.Coverage >= target {
			return p.Blocks
		}
	}
	if len(curve) == 0 {
		return 0
	}
	return curve[len(curve)-1].Blocks
}

// FlowGraph is the weighted basic-block transition graph the paper's
// introduction proposes for studying the dynamics of packet processing:
// edge (a, b) carries the number of times execution transferred from
// block a directly to block b.
type FlowGraph struct {
	NumBlocks int
	Edges     map[[2]int]uint64
	// NodeWeight counts block executions (entries).
	NodeWeight map[int]uint64
}

// BuildFlowGraph accumulates a flow graph from per-packet block execution
// sequences (the dynamic sequence of blocks entered, not the
// deduplicated set).
func BuildFlowGraph(blockSeqs [][]int, numBlocks int) *FlowGraph {
	g := &FlowGraph{
		NumBlocks:  numBlocks,
		Edges:      make(map[[2]int]uint64),
		NodeWeight: make(map[int]uint64),
	}
	for _, seq := range blockSeqs {
		for i, b := range seq {
			g.NodeWeight[b]++
			if i > 0 {
				g.Edges[[2]int{seq[i-1], b}]++
			}
		}
	}
	return g
}

// Dot renders the flow graph in Graphviz format with edge weights.
func (g *FlowGraph) Dot() string {
	type edge struct {
		from, to int
		w        uint64
	}
	edges := make([]edge, 0, len(g.Edges))
	for e, w := range g.Edges {
		edges = append(edges, edge{e[0], e[1], w})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	s := "digraph packetflow {\n"
	for _, e := range edges {
		s += fmt.Sprintf("  b%d -> b%d [label=\"%d\"];\n", e.from, e.to, e.w)
	}
	s += "}\n"
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
