package analysis

import "sort"

// Occurrence is one row of an occurrence table: a value (for example an
// instruction count) and how many packets exhibited it.
type Occurrence struct {
	Value uint64
	Count int
}

// Pct returns the occurrence's share of the given total as a percentage.
func (o Occurrence) Pct(total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(o.Count) / float64(total)
}

// OccurrenceTable summarizes the distribution of a per-packet metric in
// the shape of the paper's Tables V and VI: the most frequent values, the
// extremes with their frequencies, and the mean.
type OccurrenceTable struct {
	Total int          // number of samples
	Top   []Occurrence // most frequent values, descending by count
	Min   Occurrence   // smallest value and its frequency
	Max   Occurrence   // largest value and its frequency
	Mean  float64
}

// Occurrences builds an occurrence table keeping the topK most frequent
// values. Ties in frequency break toward the smaller value, keeping the
// output deterministic.
func Occurrences(values []uint64, topK int) OccurrenceTable {
	t := OccurrenceTable{Total: len(values)}
	if len(values) == 0 {
		return t
	}
	counts := make(map[uint64]int)
	var sum float64
	min, max := values[0], values[0]
	for _, v := range values {
		counts[v]++
		sum += float64(v)
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	t.Mean = sum / float64(len(values))
	t.Min = Occurrence{Value: min, Count: counts[min]}
	t.Max = Occurrence{Value: max, Count: counts[max]}
	all := make([]Occurrence, 0, len(counts))
	for v, c := range counts {
		all = append(all, Occurrence{Value: v, Count: c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Value < all[j].Value
	})
	if topK > len(all) {
		topK = len(all)
	}
	t.Top = all[:topK]
	return t
}

// TopPct returns the combined percentage of the top occurrences, the
// "total percentages for the three most common occurrences are close to
// 90%" observation the paper makes about Table V.
func (t OccurrenceTable) TopPct() float64 {
	var p float64
	for _, o := range t.Top {
		p += o.Pct(t.Total)
	}
	return p
}

// InstructionPattern assigns each executed instruction its unique-index in
// first-execution order, producing the y-values of Figure 6 (the x-value
// is the position in the sequence). Repeated instructions (loops) revisit
// lower indices, which is what makes loops visible as overlaps in the
// plot.
func InstructionPattern(pcs []uint32) []int {
	idx := make(map[uint32]int)
	out := make([]int, len(pcs))
	for i, pc := range pcs {
		id, ok := idx[pc]
		if !ok {
			id = len(idx)
			idx[pc] = id
		}
		out[i] = id
	}
	return out
}

// UniqueCount returns the number of distinct values in pcs (the paper's
// "unique instructions" metric of Table VI).
func UniqueCount(pcs []uint32) int {
	seen := make(map[uint32]struct{}, len(pcs))
	for _, pc := range pcs {
		seen[pc] = struct{}{}
	}
	return len(seen)
}

// RepetitionFactor is total executed instructions divided by unique
// instructions — the paper observes a factor of about four for IPv4-radix
// and TSA and near one for IPv4-trie and Flow Classification.
func RepetitionFactor(total uint64, unique int) float64 {
	if unique == 0 {
		return 0
	}
	return float64(total) / float64(unique)
}
