package analysis

import (
	"fmt"
	"sort"
)

// BlockCost is one basic block's dynamic execution weight.
type BlockCost struct {
	Block int
	// Entries is how many times the block was entered.
	Entries uint64
	// Instructions is the dynamic instruction count attributed to the
	// block (entries x block size).
	Instructions uint64
}

// BlockCosts computes per-block dynamic costs from per-packet block
// entry sequences (stats.Collector.BlockSeq accumulated per packet) or,
// with coarser fidelity, from per-packet block sets. The result is
// ordered by block id.
func BlockCosts(m *BlockMap, blockSeqs [][]int) []BlockCost {
	costs := make([]BlockCost, m.NumBlocks())
	for b := range costs {
		costs[b].Block = b
	}
	for _, seq := range blockSeqs {
		for _, b := range seq {
			if b >= 0 && b < len(costs) {
				costs[b].Entries++
				costs[b].Instructions += uint64(m.Size(b))
			}
		}
	}
	return costs
}

// HotBlocks returns the blocks ranked by dynamic instruction count,
// descending — the "sets of instructions that are repeatedly executed"
// the paper proposes identifying as co-processor candidates. Blocks that
// never executed are omitted.
func HotBlocks(costs []BlockCost) []BlockCost {
	out := make([]BlockCost, 0, len(costs))
	for _, c := range costs {
		if c.Entries > 0 {
			out = append(out, c)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Instructions > out[j].Instructions
	})
	return out
}

// Stage is one contiguous block range assigned to a pipeline engine.
type Stage struct {
	// FirstBlock and LastBlock bound the stage (inclusive).
	FirstBlock, LastBlock int
	// Instructions is the stage's dynamic instruction weight.
	Instructions uint64
}

// Partition splits the program's blocks (in address order, preserving
// locality) into k contiguous pipeline stages with approximately equal
// dynamic instruction weight — the application-partitioning problem the
// paper defers to its "pipelining vs. multiprocessors" companion work.
// It returns the stages and the skew (slowest stage / mean stage), the
// imbalance figure npmodel.Pipeline consumes.
func Partition(costs []BlockCost, k int) ([]Stage, float64, error) {
	if k < 1 {
		return nil, 0, fmt.Errorf("analysis: need at least one stage")
	}
	if len(costs) == 0 {
		return nil, 0, fmt.Errorf("analysis: no blocks to partition")
	}
	if k > len(costs) {
		k = len(costs)
	}
	var total uint64
	for _, c := range costs {
		total += c.Instructions
	}
	if total == 0 {
		return nil, 0, fmt.Errorf("analysis: no dynamic instructions to partition")
	}
	// Greedy contiguous partition: close a stage once it reaches the
	// ideal share, keeping enough blocks for the remaining stages.
	ideal := float64(total) / float64(k)
	stages := make([]Stage, 0, k)
	cur := Stage{FirstBlock: costs[0].Block}
	remainingStages := k
	for i, c := range costs {
		cur.Instructions += c.Instructions
		cur.LastBlock = c.Block
		blocksLeft := len(costs) - i - 1
		if remainingStages > 1 &&
			(float64(cur.Instructions) >= ideal || blocksLeft == remainingStages-1) {
			stages = append(stages, cur)
			remainingStages--
			if i+1 < len(costs) {
				cur = Stage{FirstBlock: costs[i+1].Block}
			}
		}
	}
	stages = append(stages, cur)
	// Skew: slowest stage over mean.
	var worst uint64
	for _, s := range stages {
		if s.Instructions > worst {
			worst = s.Instructions
		}
	}
	mean := float64(total) / float64(len(stages))
	skew := float64(worst) / mean
	return stages, skew, nil
}
