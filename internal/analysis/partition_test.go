package analysis

import (
	"testing"
)

func testCosts() []BlockCost {
	// Block sizes 1 each for simple arithmetic: instructions == entries.
	return []BlockCost{
		{Block: 0, Entries: 100, Instructions: 100},
		{Block: 1, Entries: 50, Instructions: 50},
		{Block: 2, Entries: 0, Instructions: 0},
		{Block: 3, Entries: 200, Instructions: 200},
		{Block: 4, Entries: 50, Instructions: 50},
	}
}

func TestBlockCosts(t *testing.T) {
	m, _ := blockMapOf(t, `
		addi t0, zero, 3      ; b0 (1 instr)
	loop:
		addi t0, t0, -1       ; b1 (2 instr)
		bnez t0, loop
		halt                  ; b2 (1 instr)
	`)
	seqs := [][]int{
		{0, 1, 1, 1, 2}, // one packet: loop entered 3 times
		{0, 1, 2},       // another: once
	}
	costs := BlockCosts(m, seqs)
	if len(costs) != 3 {
		t.Fatalf("%d costs", len(costs))
	}
	if costs[0].Entries != 2 || costs[0].Instructions != 2 {
		t.Errorf("b0 = %+v", costs[0])
	}
	if costs[1].Entries != 4 || costs[1].Instructions != 8 {
		t.Errorf("b1 = %+v (size 2, 4 entries)", costs[1])
	}
	if costs[2].Entries != 2 || costs[2].Instructions != 2 {
		t.Errorf("b2 = %+v", costs[2])
	}
}

func TestHotBlocks(t *testing.T) {
	hot := HotBlocks(testCosts())
	if len(hot) != 4 {
		t.Fatalf("HotBlocks kept %d (never-executed block not dropped?)", len(hot))
	}
	if hot[0].Block != 3 || hot[1].Block != 0 {
		t.Errorf("ranking wrong: %+v", hot)
	}
	// Ties keep block order (stable).
	if hot[2].Block != 1 || hot[3].Block != 4 {
		t.Errorf("tie order wrong: %+v", hot)
	}
}

func TestPartitionBalance(t *testing.T) {
	costs := testCosts() // total 400
	stages, skew, err := Partition(costs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 2 {
		t.Fatalf("%d stages", len(stages))
	}
	// Stages are contiguous and cover all blocks.
	if stages[0].FirstBlock != 0 || stages[len(stages)-1].LastBlock != 4 {
		t.Errorf("coverage wrong: %+v", stages)
	}
	if stages[0].LastBlock+1 != stages[1].FirstBlock {
		t.Errorf("stages not contiguous: %+v", stages)
	}
	var total uint64
	for _, s := range stages {
		total += s.Instructions
	}
	if total != 400 {
		t.Errorf("stage weights sum to %d, want 400", total)
	}
	if skew < 1 {
		t.Errorf("skew %v < 1", skew)
	}
	// Ideal split is 200/200: blocks {0,1,2} = 150 or {0,1,2,3} = 350.
	// Greedy closes at >= 200, so stage 0 = {0,1,2,3} (350), skew 1.75.
	if stages[0].Instructions != 350 || skew != 1.75 {
		t.Errorf("greedy partition gave %+v skew %v", stages, skew)
	}
}

func TestPartitionDegenerateCases(t *testing.T) {
	costs := testCosts()
	// One stage: everything in it, skew 1.
	stages, skew, err := Partition(costs, 1)
	if err != nil || len(stages) != 1 || skew != 1 {
		t.Errorf("k=1: %+v %v %v", stages, skew, err)
	}
	// More stages than blocks: clamped, no empty stages.
	stages, _, err = Partition(costs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != len(costs) {
		t.Errorf("k>blocks gave %d stages", len(stages))
	}
	for i := 1; i < len(stages); i++ {
		if stages[i].FirstBlock != stages[i-1].LastBlock+1 {
			t.Errorf("stage %d not contiguous", i)
		}
	}
	// Errors.
	if _, _, err := Partition(costs, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := Partition(nil, 2); err == nil {
		t.Error("empty costs accepted")
	}
	zero := []BlockCost{{Block: 0}}
	if _, _, err := Partition(zero, 1); err == nil {
		t.Error("all-zero costs accepted")
	}
}

func TestPartitionFeedsPipelineSkew(t *testing.T) {
	// The returned skew matches the definition npmodel consumes:
	// slowest/mean >= 1, == 1 only for perfect balance.
	costs := []BlockCost{
		{Block: 0, Instructions: 100, Entries: 1},
		{Block: 1, Instructions: 100, Entries: 1},
		{Block: 2, Instructions: 100, Entries: 1},
		{Block: 3, Instructions: 100, Entries: 1},
	}
	_, skew, err := Partition(costs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if skew != 1 {
		t.Errorf("perfectly balanceable partition has skew %v", skew)
	}
}
