// Package anon implements prefix-preserving IP address anonymization:
// the paper's TSA algorithm (top-hashed, subtree-replicated) and the full
// cryptographic-style scheme of Xu et al. that TSA approximates.
//
// A prefix-preserving anonymization is a bijection f on 32-bit addresses
// such that for any two addresses a and b, the length of the longest
// common bit prefix of f(a) and f(b) equals that of a and b. The canonical
// construction walks the address bit by bit, flipping bit i according to a
// pseudorandom function of bits 0..i-1.
//
//   - FullPP evaluates that pseudorandom function for every one of the 32
//     bit positions — faithful but expensive, the baseline.
//   - TSA replaces the top TopBits levels with one precomputed table
//     lookup (the "top hash") and anonymizes the remaining levels with a
//     single shared ("replicated") subtree of flip bits indexed by a
//     truncated prefix, trading some pseudorandomness for speed. This is
//     the optimization evaluated in the paper as the TSA application.
//
// The TSA tables serialize into simulated memory for the PB32 application
// (see SerializeTables); the native implementation here is the oracle the
// simulated application is differentially tested against.
package anon

// Anonymizer maps addresses to anonymized addresses, preserving prefixes.
type Anonymizer interface {
	Anonymize(addr uint32) uint32
}

// prf is a small keyed pseudorandom function returning one flip bit for a
// node of the address binary tree identified by (depth, prefix). It uses
// two rounds of a 64-bit mix (xorshift-multiply), which is plenty for a
// workload generator and entirely deterministic.
func prf(key uint64, depth int, prefix uint32) uint32 {
	x := key ^ uint64(depth)<<32 ^ uint64(prefix)
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return uint32(x & 1)
}

// FullPP is the full bit-by-bit prefix-preserving scheme.
type FullPP struct {
	key uint64
}

// NewFullPP creates a full prefix-preserving anonymizer with the given
// key.
func NewFullPP(key uint64) *FullPP { return &FullPP{key: key} }

// Anonymize maps one address. Bit i of the output is bit i of the input
// xor a PRF of bits 0..i-1 — the Xu et al. canonical form.
func (f *FullPP) Anonymize(addr uint32) uint32 {
	var out uint32
	for i := 0; i < 32; i++ {
		prefix := uint32(0)
		if i > 0 {
			prefix = addr >> (32 - uint(i))
		}
		bit := addr >> (31 - uint(i)) & 1
		out = out<<1 | (bit ^ prf(f.key, i, prefix))
	}
	return out
}

// TSA parameters. TopBits is fixed at 16: the natural top-hashed split
// anonymizes the top half of the address with one table lookup and the
// bottom half with the replicated subtree. The tables total ~132 KiB of
// which only the entries touched by a trace count toward the memory
// coverage statistics, keeping TSA's measured footprint small (Table IV
// shows TSA with one of the smallest data footprints).
const (
	// TopBits is the number of leading address bits anonymized by direct
	// table lookup.
	TopBits = 16
	// SubBits is the number of remaining bits anonymized by the
	// replicated subtree.
	SubBits = 32 - TopBits
	// SubIndexBits truncates the in-subtree prefix used to index the flip
	// table; the table has SubBits rows of 2^SubIndexBits flip bytes.
	SubIndexBits = 8
	// TopTableSize is the entry count of the top table.
	TopTableSize = 1 << TopBits
	// SubTableSize is the byte size of the replicated-subtree flip table.
	SubTableSize = SubBits << SubIndexBits
)

// TSA is the top-hashed subtree-replicated anonymizer.
type TSA struct {
	top []uint16 // TopTableSize entries, each a TopBits-bit value
	sub []byte   // SubTableSize flip bits (one per byte, bit 0)
}

// NewTSA precomputes the two TSA tables from a key. The top table is
// itself built with the full bit-by-bit construction restricted to the
// TopBits-bit domain, so it is prefix preserving; the subtree table is
// filled with PRF bits.
func NewTSA(key uint64) *TSA {
	t := &TSA{
		top: make([]uint16, TopTableSize),
		sub: make([]byte, SubTableSize),
	}
	for v := uint32(0); v < TopTableSize; v++ {
		var out uint32
		for i := 0; i < TopBits; i++ {
			prefix := uint32(0)
			if i > 0 {
				prefix = v >> (TopBits - uint(i))
			}
			bit := v >> (TopBits - 1 - uint(i)) & 1
			out = out<<1 | (bit ^ prf(key, i, prefix))
		}
		t.top[v] = uint16(out)
	}
	for d := 0; d < SubBits; d++ {
		for p := 0; p < 1<<SubIndexBits; p++ {
			t.sub[d<<SubIndexBits|p] = byte(prf(key^0x545341 /* "TSA" */, d, uint32(p)))
		}
	}
	return t
}

// Anonymize maps one address: one top-table lookup plus SubBits flip-table
// lookups. The PB32 TSA application implements exactly this loop.
func (t *TSA) Anonymize(addr uint32) uint32 {
	top := addr >> SubBits
	suffix := addr & (1<<SubBits - 1)
	newTop := uint32(t.top[top])
	var newSuffix uint32
	for i := 0; i < SubBits; i++ {
		bit := suffix >> (SubBits - 1 - uint(i)) & 1
		prefix := uint32(0)
		if i > 0 {
			prefix = suffix >> (SubBits - uint(i))
		}
		flip := uint32(t.sub[i<<SubIndexBits|int(prefix&(1<<SubIndexBits-1))]) & 1
		newSuffix = newSuffix<<1 | (bit ^ flip)
	}
	return newTop<<SubBits | newSuffix
}

// SerializeTables lays the TSA tables out for simulated memory:
//
//	top table at topBase: TopTableSize little-endian uint16 values
//	subtree table at subBase: SubTableSize bytes, flip bit in bit 0
//
// The bases are only documentation here (the images are position
// independent); they are part of the loader contract in internal/apps.
func (t *TSA) SerializeTables() (topImage, subImage []byte) {
	topImage = make([]byte, 2*TopTableSize)
	for i, v := range t.top {
		topImage[2*i] = byte(v)
		topImage[2*i+1] = byte(v >> 8)
	}
	subImage = append([]byte(nil), t.sub...)
	return topImage, subImage
}
