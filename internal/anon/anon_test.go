package anon

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// commonPrefixLen returns the length of the longest common bit prefix.
func commonPrefixLen(a, b uint32) int {
	x := a ^ b
	for n := 0; n < 32; n++ {
		if x&(1<<(31-uint(n))) != 0 {
			return n
		}
	}
	return 32
}

// checkPrefixPreserving asserts the defining property over random pairs.
func checkPrefixPreserving(t *testing.T, name string, a Anonymizer) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		// Generate pairs with controlled shared-prefix lengths so every
		// depth is exercised, not just the short prefixes uniform pairs
		// produce.
		x := rng.Uint32()
		k := rng.Intn(33)
		var y uint32
		if k == 32 {
			y = x
		} else {
			// Share exactly k bits: copy the top k, force bit k to
			// differ, randomize the rest.
			mask := uint32(0)
			if k > 0 {
				mask = ^uint32(0) << (32 - uint(k))
			}
			y = x&mask | ^x&(1<<(31-uint(k))) | rng.Uint32()&(1<<(31-uint(k))-1)
		}
		want := commonPrefixLen(x, y)
		got := commonPrefixLen(a.Anonymize(x), a.Anonymize(y))
		if got != want {
			t.Fatalf("%s: common prefix of (%#08x, %#08x) = %d bits, anonymized = %d bits",
				name, x, y, want, got)
		}
	}
}

func TestFullPPPrefixPreserving(t *testing.T) {
	checkPrefixPreserving(t, "FullPP", NewFullPP(0xDEADBEEF))
}

func TestTSAPrefixPreserving(t *testing.T) {
	checkPrefixPreserving(t, "TSA", NewTSA(0xDEADBEEF))
}

func TestAnonymizersAreBijective(t *testing.T) {
	// Injectivity over a dense sample: distinct inputs yield distinct
	// outputs. (Prefix preservation implies it, but test it directly.)
	for _, tc := range []struct {
		name string
		a    Anonymizer
	}{
		{"FullPP", NewFullPP(42)},
		{"TSA", NewTSA(42)},
	} {
		seen := make(map[uint32]uint32, 1<<16)
		for i := uint32(0); i < 1<<16; i++ {
			in := i*65537 + 13 // spread over the space
			out := tc.a.Anonymize(in)
			if prev, dup := seen[out]; dup {
				t.Fatalf("%s: collision %#x: inputs %#x and %#x", tc.name, out, prev, in)
			}
			seen[out] = in
		}
	}
}

func TestAnonymizeDeterministic(t *testing.T) {
	a1, a2 := NewTSA(7), NewTSA(7)
	f1 := NewFullPP(7)
	for i := 0; i < 100; i++ {
		v := uint32(i) * 0x01010101
		if a1.Anonymize(v) != a2.Anonymize(v) {
			t.Fatal("TSA not deterministic across instances")
		}
		if f1.Anonymize(v) != f1.Anonymize(v) {
			t.Fatal("FullPP not deterministic")
		}
	}
}

func TestDifferentKeysDiffer(t *testing.T) {
	a, b := NewTSA(1), NewTSA(2)
	same := 0
	for i := 0; i < 256; i++ {
		v := uint32(i) << 20
		if a.Anonymize(v) == b.Anonymize(v) {
			same++
		}
	}
	if same > 200 {
		t.Errorf("different keys map %d/256 sample addresses identically", same)
	}
}

func TestAnonymizationActuallyChangesAddresses(t *testing.T) {
	a := NewTSA(0x1234)
	unchanged := 0
	for i := 0; i < 1000; i++ {
		v := uint32(i) * 0x00010001
		if a.Anonymize(v) == v {
			unchanged++
		}
	}
	if unchanged > 50 {
		t.Errorf("%d/1000 addresses unchanged; anonymization too weak", unchanged)
	}
}

func TestTSATopTablePrefixPreservingWithinDomain(t *testing.T) {
	// The top table alone must preserve prefixes on the TopBits domain.
	tsa := NewTSA(5)
	rng := rand.New(rand.NewSource(5))
	cpl12 := func(a, b uint16) int {
		x := (uint32(a) ^ uint32(b)) << (32 - TopBits)
		n := commonPrefixLen(x, 0)
		if n > TopBits {
			n = TopBits
		}
		return n
	}
	for i := 0; i < 2000; i++ {
		x := uint16(rng.Intn(TopTableSize))
		y := uint16(rng.Intn(TopTableSize))
		want := cpl12(x, y)
		got := cpl12(tsa.top[x], tsa.top[y])
		if got != want {
			t.Fatalf("top table: cpl(%#x, %#x) = %d, anonymized %d", x, y, want, got)
		}
	}
}

func TestSerializeTables(t *testing.T) {
	tsa := NewTSA(9)
	top, sub := tsa.SerializeTables()
	if len(top) != 2*TopTableSize {
		t.Fatalf("top image %d bytes, want %d", len(top), 2*TopTableSize)
	}
	if len(sub) != SubTableSize {
		t.Fatalf("sub image %d bytes, want %d", len(sub), SubTableSize)
	}
	// Re-derive an anonymization from the serialized images the way the
	// PB32 application does, and compare with the native result.
	fromImages := func(addr uint32) uint32 {
		topIdx := addr >> SubBits
		newTop := uint32(top[2*topIdx]) | uint32(top[2*topIdx+1])<<8
		suffix := addr & (1<<SubBits - 1)
		var newSuffix uint32
		for i := 0; i < SubBits; i++ {
			bit := suffix >> (SubBits - 1 - uint(i)) & 1
			prefix := uint32(0)
			if i > 0 {
				prefix = suffix >> (SubBits - uint(i))
			}
			flip := uint32(sub[i<<SubIndexBits|int(prefix&(1<<SubIndexBits-1))]) & 1
			newSuffix = newSuffix<<1 | (bit ^ flip)
		}
		return newTop<<SubBits | newSuffix
	}
	f := func(addr uint32) bool {
		return fromImages(addr) == tsa.Anonymize(addr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTSAMatchesFullPPOnTopBits(t *testing.T) {
	// TSA's top table is built from the same PRF as FullPP, so the top
	// TopBits of TSA output must equal FullPP output's top bits when both
	// use the same key.
	key := uint64(77)
	tsa, full := NewTSA(key), NewFullPP(key)
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 1000; i++ {
		a := rng.Uint32()
		if tsa.Anonymize(a)>>SubBits != full.Anonymize(a)>>SubBits {
			t.Fatalf("top bits disagree for %#x", a)
		}
	}
}
