// Package apps provides the paper's four network processing applications
// as loadable PacketBench programs: IPv4-radix and IPv4-trie forwarding,
// Flow Classification, and TSA anonymization.
//
// Each application couples a PB32 assembly source (in src/) with a
// host-side Init hook that performs the work of the paper's uncounted
// init() call: building the routing tree, trie, hash buckets or
// anonymization tables directly in simulated memory using the serialized
// layouts defined by the substrate packages (route, flow, anon). The
// assembly then processes packets against those structures, and
// differential tests (apps_test.go) check that every observable effect —
// forwarding verdicts, TTL/checksum rewrites, flow-table contents,
// anonymized addresses — matches the native Go implementations bit for
// bit.
package apps

import (
	_ "embed"
	"encoding/binary"
	"fmt"

	"repro/internal/anon"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/packet"
	"repro/internal/route"
)

//go:embed src/ipv4_radix.s
var ipv4RadixSrc string

//go:embed src/ipv4_trie.s
var ipv4TrieSrc string

//go:embed src/flow.s
var flowSrc string

//go:embed src/tsa.s
var tsaSrc string

// Verdicts returned by the flow classification application.
const (
	FlowVerdictExisting = 1
	FlowVerdictNew      = 2
)

// IPv4Radix builds the IPv4-radix forwarding application over the given
// routing table. The verdict of each packet is the output port (0 =
// drop).
func IPv4Radix(tbl *route.Table) *core.App {
	return &core.App{
		Name:   "IPv4-radix",
		Source: ipv4RadixSrc,
		Entry:  "process_packet",
		Init: func(ld *core.Loader) error {
			tree := route.NewRadixTree(tbl)
			base, err := ld.Alloc(uint32(tree.Nodes())*route.RadixNodeSize, 8)
			if err != nil {
				return err
			}
			image, root := tree.Serialize(base)
			ld.Write(base, image)
			return ld.SetWord("radix_root", root)
		},
	}
}

// IPv4Trie builds the IPv4-trie forwarding application over the given
// routing table.
func IPv4Trie(tbl *route.Table) *core.App {
	return &core.App{
		Name:   "IPv4-trie",
		Source: ipv4TrieSrc,
		Entry:  "process_packet",
		Init: func(ld *core.Loader) error {
			lc, err := route.NewLCTrie(tbl)
			if err != nil {
				return err
			}
			nodesBase, err := ld.Alloc(uint32(lc.Nodes())*4, 8)
			if err != nil {
				return err
			}
			entriesBase, err := ld.Alloc(uint32(lc.Entries())*route.LCEntrySize, 8)
			if err != nil {
				return err
			}
			nodesImg, entriesImg := lc.Serialize(nodesBase, entriesBase)
			ld.Write(nodesBase, nodesImg)
			ld.Write(entriesBase, entriesImg)
			if err := ld.SetWord("trie_nodes", nodesBase); err != nil {
				return err
			}
			return ld.SetWord("trie_entries", entriesBase)
		},
	}
}

// FlowClassification builds the flow classification application with the
// given bucket count (rounded up to a power of two). Verdicts are
// FlowVerdictExisting and FlowVerdictNew.
func FlowClassification(buckets int) *core.App {
	size := 1
	for size < buckets {
		size <<= 1
	}
	return &core.App{
		Name:   "Flow Classification",
		Source: flowSrc,
		Entry:  "process_packet",
		Init: func(ld *core.Loader) error {
			bucketBase, err := ld.Alloc(uint32(size)*4, 8)
			if err != nil {
				return err
			}
			// Reserve the node heap after the bucket array; the
			// application bump-allocates from flow_heap.
			heapBase, err := ld.Alloc(0, 8)
			if err != nil {
				return err
			}
			if err := ld.SetWord("flow_buckets", bucketBase); err != nil {
				return err
			}
			if err := ld.SetWord("flow_nbuckets", uint32(size)); err != nil {
				return err
			}
			return ld.SetWord("flow_heap", heapBase)
		},
	}
}

// TSAApp builds the TSA anonymization application keyed by key.
func TSAApp(key uint64) *core.App {
	return &core.App{
		Name:   "TSA",
		Source: tsaSrc,
		Entry:  "process_packet",
		Init: func(ld *core.Loader) error {
			t := anon.NewTSA(key)
			topImg, subImg := t.SerializeTables()
			topBase, err := ld.Alloc(uint32(len(topImg)), 8)
			if err != nil {
				return err
			}
			subBase, err := ld.Alloc(uint32(len(subImg)), 8)
			if err != nil {
				return err
			}
			ld.Write(topBase, topImg)
			ld.Write(subBase, subImg)
			if err := ld.SetWord("tsa_top", topBase); err != nil {
				return err
			}
			return ld.SetWord("tsa_sub", subBase)
		},
	}
}

// All returns the paper's four applications, in the paper's order, built
// over shared default substrates: the routing table is used by both
// forwarding applications and the classifier gets the default bucket
// count.
func All(tbl *route.Table, flowBuckets int, tsaKey uint64) []*core.App {
	return []*core.App{
		IPv4Radix(tbl),
		IPv4Trie(tbl),
		FlowClassification(flowBuckets),
		TSAApp(tsaKey),
	}
}

// ReadFlowTable walks the simulated flow table of a running Flow
// Classification bench and reconstructs its contents, for differential
// comparison against the native classifier.
func ReadFlowTable(b *core.Bench) (map[packet.FiveTuple]flow.Stat, error) {
	mem := b.Memory()
	read := func(sym string) (uint32, error) {
		addr, err := b.Loader().Symbol(sym)
		if err != nil {
			return 0, err
		}
		return mem.Read32(addr), nil
	}
	buckets, err := read("flow_buckets")
	if err != nil {
		return nil, err
	}
	n, err := read("flow_nbuckets")
	if err != nil {
		return nil, err
	}
	if n == 0 || n > 1<<24 {
		return nil, fmt.Errorf("apps: implausible bucket count %d", n)
	}
	out := make(map[packet.FiveTuple]flow.Stat)
	for i := uint32(0); i < n; i++ {
		node := mem.Read32(buckets + i*4)
		for steps := 0; node != 0; steps++ {
			if steps > 1<<20 {
				return nil, fmt.Errorf("apps: flow chain in bucket %d does not terminate", i)
			}
			ft := packet.FiveTuple{
				Src:      mem.Read32(node),
				Dst:      mem.Read32(node + 4),
				Protocol: uint8(mem.Read32(node + 12)),
			}
			ports := mem.Read32(node + 8)
			ft.SrcPort = uint16(ports >> 16)
			ft.DstPort = uint16(ports)
			if _, dup := out[ft]; dup {
				return nil, fmt.Errorf("apps: duplicate flow node for %v", ft)
			}
			out[ft] = flow.Stat{
				Packets: mem.Read32(node + 16),
				Bytes:   mem.Read32(node + 20),
			}
			node = mem.Read32(node + 24)
		}
	}
	return out, nil
}

// ReadAnonymizedAddrs extracts the (src, dst) addresses from the packet
// buffer after TSA processed a packet.
func ReadAnonymizedAddrs(b *core.Bench) (src, dst uint32) {
	hdr := b.PacketBytes(packet.IPv4HeaderLen)
	return binary.BigEndian.Uint32(hdr[12:]), binary.BigEndian.Uint32(hdr[16:])
}

//go:embed src/payload_scan.s
var payloadScanSrc string

// PayloadScan builds the payload-processing extension application: scan
// every packet's payload for a 4-byte signature. Its verdict is the
// number of matches in the packet.
func PayloadScan(sig [4]byte) *core.App {
	return &core.App{
		Name:   "Payload Scan",
		Source: payloadScanSrc,
		Entry:  "process_packet",
		Init: func(ld *core.Loader) error {
			addr, err := ld.Symbol("scan_sig")
			if err != nil {
				return err
			}
			ld.Write(addr, sig[:])
			return nil
		},
	}
}

// NativePayloadScan is the reference implementation PayloadScan is
// differentially tested against: count (possibly overlapping) signature
// occurrences in the packet's payload.
func NativePayloadScan(pkt []byte, sig [4]byte) int {
	h, err := packet.ParseIPv4(pkt)
	if err != nil {
		return 0
	}
	payload := pkt[h.HeaderLen():]
	n := 0
	for i := 0; i+4 <= len(payload); i++ {
		if payload[i] == sig[0] && payload[i+1] == sig[1] &&
			payload[i+2] == sig[2] && payload[i+3] == sig[3] {
			n++
		}
	}
	return n
}

//go:embed src/frag.s
var fragSrc string

// FragOutputSize is the output-area reservation for the FRAG
// application: worst-case fragmentation of a maximum-size packet.
const FragOutputSize = 128 * 1024

// Frag builds the fragmentation application (after CommBench's FRAG
// kernel): packets above mtu are split into RFC 791 fragments written
// to an output area; the verdict is the fragment count (1 = passed
// through, 0 = dropped because don't-fragment was set).
func Frag(mtu int) *core.App {
	return &core.App{
		Name:   "Frag",
		Source: fragSrc,
		Entry:  "process_packet",
		Init: func(ld *core.Loader) error {
			out, err := ld.Alloc(FragOutputSize, 8)
			if err != nil {
				return err
			}
			if err := ld.SetWord("frag_mtu", uint32(mtu)); err != nil {
				return err
			}
			return ld.SetWord("frag_out", out)
		},
	}
}

// ReadFragments extracts the n fragments the FRAG application wrote for
// the last packet, as complete packet byte slices.
func ReadFragments(b *core.Bench, n int) ([][]byte, error) {
	addr, err := b.Loader().Symbol("frag_out")
	if err != nil {
		return nil, err
	}
	mem := b.Memory()
	cur := mem.Read32(addr)
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		hdr := mem.ReadBytes(cur, packet.IPv4HeaderLen)
		h, err := packet.ParseIPv4(hdr)
		if err != nil {
			return nil, fmt.Errorf("apps: fragment %d: %w", i, err)
		}
		out = append(out, mem.ReadBytes(cur, int(h.TotalLen)))
		cur += uint32(h.TotalLen)
	}
	return out, nil
}
