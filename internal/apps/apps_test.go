package apps

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/analysis"
	"repro/internal/anon"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/microarch"
	"repro/internal/npmodel"
	"repro/internal/packet"
	"repro/internal/route"
	"repro/internal/stats"
	"repro/internal/trace"
)

// testTrace generates packets plus a routing table covering their
// destinations, the standard experimental setup.
func testTrace(t *testing.T, profile string, n int) ([]*trace.Packet, *route.Table) {
	t.Helper()
	prof, err := gen.ProfileByName(profile)
	if err != nil {
		t.Fatal(err)
	}
	pkts := gen.Generate(prof, n)
	dsts := make([]uint32, 0, len(pkts))
	for _, p := range pkts {
		h, err := packet.ParseIPv4(p.Data)
		if err != nil {
			t.Fatal(err)
		}
		dsts = append(dsts, h.Dst)
	}
	tbl := route.TableFromTraffic(dsts, 0, 16, 7)
	return pkts, tbl
}

func newBench(t *testing.T, app *core.App, opts core.Options) *core.Bench {
	t.Helper()
	b, err := core.New(app, opts)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestIPv4RadixMatchesNativeLookup(t *testing.T) {
	pkts, tbl := testTrace(t, "MRA", 300)
	tree := route.NewRadixTree(tbl)
	b := newBench(t, IPv4Radix(tbl), core.Options{})
	for i, p := range pkts {
		h, _ := packet.ParseIPv4(p.Data)
		res, err := b.ProcessPacket(p)
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		wantHop, ok := tree.Lookup(h.Dst)
		if !ok || h.TTL <= 1 {
			wantHop = 0 // RFC 1812: expired packets go to the slow path
		}
		if res.Verdict != wantHop {
			t.Fatalf("packet %d (dst %v): verdict %d, native %d",
				i, packet.V4Addr(h.Dst), res.Verdict, wantHop)
		}
		if wantHop != 0 {
			// Forwarded: TTL decremented, checksum still valid.
			out := b.PacketBytes(h.HeaderLen())
			if out[8] != h.TTL-1 {
				t.Fatalf("packet %d: TTL %d, want %d", i, out[8], h.TTL-1)
			}
			if !packet.VerifyChecksum(out) {
				t.Fatalf("packet %d: checksum invalid after forwarding", i)
			}
		}
	}
}

func TestIPv4TrieMatchesNativeAndRadix(t *testing.T) {
	pkts, tbl := testTrace(t, "COS", 300)
	lc, err := route.NewLCTrie(tbl)
	if err != nil {
		t.Fatal(err)
	}
	bTrie := newBench(t, IPv4Trie(tbl), core.Options{})
	bRadix := newBench(t, IPv4Radix(tbl), core.Options{})
	for i, p := range pkts {
		h, _ := packet.ParseIPv4(p.Data)
		resT, err := bTrie.ProcessPacket(p)
		if err != nil {
			t.Fatalf("trie packet %d: %v", i, err)
		}
		resR, err := bRadix.ProcessPacket(p)
		if err != nil {
			t.Fatalf("radix packet %d: %v", i, err)
		}
		wantHop, ok := lc.Lookup(h.Dst)
		if !ok || h.TTL <= 1 {
			wantHop = 0
		}
		if resT.Verdict != wantHop {
			t.Fatalf("packet %d: trie verdict %d, native %d", i, resT.Verdict, wantHop)
		}
		// The two forwarding implementations must agree with each other —
		// the paper runs them as alternative implementations of the same
		// function.
		if resT.Verdict != resR.Verdict {
			t.Fatalf("packet %d: trie %d != radix %d", i, resT.Verdict, resR.Verdict)
		}
		if wantHop != 0 {
			out := bTrie.PacketBytes(h.HeaderLen())
			if out[8] != h.TTL-1 || !packet.VerifyChecksum(out) {
				t.Fatalf("packet %d: trie header rewrite wrong", i)
			}
		}
	}
}

func TestFlowClassificationMatchesNative(t *testing.T) {
	pkts, _ := testTrace(t, "ODU", 500)
	b := newBench(t, FlowClassification(flow.DefaultBuckets), core.Options{})
	native := flow.NewTable(flow.DefaultBuckets)
	for i, p := range pkts {
		res, err := b.ProcessPacket(p)
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		isNew := native.Classify(mustTuple(t, p), len(p.Data))
		want := uint32(FlowVerdictExisting)
		if isNew {
			want = FlowVerdictNew
		}
		if res.Verdict != want {
			t.Fatalf("packet %d: verdict %d, native %v", i, res.Verdict, isNew)
		}
	}
	// The complete simulated table must equal the native table.
	simFlows, err := ReadFlowTable(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(simFlows) != native.NumFlows() {
		t.Fatalf("simulated table has %d flows, native %d", len(simFlows), native.NumFlows())
	}
	native.Flows(func(ft packet.FiveTuple, st flow.Stat) {
		got, ok := simFlows[ft]
		if !ok {
			t.Fatalf("flow %v missing from simulated table", ft)
		}
		if got != st {
			t.Fatalf("flow %v: simulated %+v, native %+v", ft, got, st)
		}
	})
}

func mustTuple(t *testing.T, p *trace.Packet) packet.FiveTuple {
	t.Helper()
	ft, err := packet.ExtractFiveTuple(p.Data)
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

func TestTSAMatchesNative(t *testing.T) {
	const key = 0xBEEF
	pkts, _ := testTrace(t, "LAN", 300)
	b := newBench(t, TSAApp(key), core.Options{})
	native := anon.NewTSA(key)
	for i, p := range pkts {
		h, _ := packet.ParseIPv4(p.Data)
		res, err := b.ProcessPacket(p)
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if res.Verdict != 1 {
			t.Fatalf("packet %d: verdict %d", i, res.Verdict)
		}
		src, dst := ReadAnonymizedAddrs(b)
		if want := native.Anonymize(h.Src); src != want {
			t.Fatalf("packet %d: src anonymized to %#x, native %#x", i, src, want)
		}
		if want := native.Anonymize(h.Dst); dst != want {
			t.Fatalf("packet %d: dst anonymized to %#x, native %#x", i, dst, want)
		}
		// The header collection area must hold the (anonymized) header.
		collectAddr, err := b.Loader().Symbol("collect")
		if err != nil {
			t.Fatal(err)
		}
		collected := b.Memory().ReadBytes(collectAddr, 20)
		hdr := b.PacketBytes(20)
		for j := range collected {
			if collected[j] != hdr[j] {
				t.Fatalf("packet %d: collected header byte %d = %#x, packet %#x",
					i, j, collected[j], hdr[j])
			}
		}
	}
}

func TestRFC1812Drops(t *testing.T) {
	_, tbl := testTrace(t, "MRA", 50)
	good := func() []byte {
		h := packet.IPv4Header{Version: 4, IHL: 5, TTL: 64,
			Protocol: packet.ProtoUDP, Src: 0x0A000001,
			Dst: tbl.Entries[0].Prefix | 1, TotalLen: 28}
		b := make([]byte, 28)
		h.MarshalInto(b)
		return b
	}
	for _, appCtor := range []func() *core.App{
		func() *core.App { return IPv4Radix(tbl) },
		func() *core.App { return IPv4Trie(tbl) },
	} {
		b := newBench(t, appCtor(), core.Options{})
		// A clean packet routes (the table covers its destination).
		res, err := b.ProcessPacket(&trace.Packet{Data: good()})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict == 0 {
			t.Fatal("clean routed packet dropped")
		}

		cases := []struct {
			name   string
			mutate func([]byte) []byte
		}{
			{"short packet", func(p []byte) []byte { return p[:16] }},
			{"not ipv4", func(p []byte) []byte { p[0] = 0x65; return p }},
			{"bad ihl", func(p []byte) []byte { p[0] = 0x44; return p }},
			{"bad checksum", func(p []byte) []byte { p[10] ^= 0xFF; return p }},
			{"ttl zero", func(p []byte) []byte {
				p[8] = 0
				fixChecksum(p)
				return p
			}},
			{"ttl one", func(p []byte) []byte {
				p[8] = 1
				fixChecksum(p)
				return p
			}},
		}
		for _, c := range cases {
			res, err := b.ProcessPacket(&trace.Packet{Data: c.mutate(good())})
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			if res.Verdict != 0 {
				t.Errorf("%s: verdict %d, want drop", c.name, res.Verdict)
			}
		}
	}
}

func fixChecksum(p []byte) {
	p[10], p[11] = 0, 0
	cs := packet.Checksum(p[:20])
	binary.BigEndian.PutUint16(p[10:], cs)
}

func TestUnroutedDestinationDrops(t *testing.T) {
	tbl := &route.Table{}
	_ = tbl.Add(0x0A000000, 8, 3)
	for _, app := range []*core.App{IPv4Radix(tbl), IPv4Trie(tbl)} {
		b := newBench(t, app, core.Options{})
		h := packet.IPv4Header{Version: 4, IHL: 5, TTL: 64,
			Protocol: packet.ProtoUDP, Src: 1, Dst: 0xC0000001, TotalLen: 28}
		buf := make([]byte, 28)
		h.MarshalInto(buf)
		res, err := b.ProcessPacket(&trace.Packet{Data: buf})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != 0 {
			t.Errorf("%s: unrouted packet forwarded to %d", app.Name, res.Verdict)
		}
		// Dropped packets must not be modified.
		out := b.PacketBytes(20)
		if out[8] != 64 {
			t.Errorf("%s: dropped packet's TTL was modified", app.Name)
		}
	}
}

// TestWorkloadShape checks the paper's headline ordering (Table II):
// IPv4-radix executes by far the most instructions per packet, TSA is
// second, and IPv4-trie and Flow Classification are cheap; and radix
// shows much higher variation than the linear applications.
func TestWorkloadShape(t *testing.T) {
	pkts, tbl := testTrace(t, "MRA", 400)
	means := make(map[string]float64)
	spreads := make(map[string]uint64)
	for _, app := range All(tbl, flow.DefaultBuckets, 42) {
		b := newBench(t, app, core.Options{KeepRecords: true})
		recs, err := b.RunPackets(pkts, nil)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		s := stats.Summarize(recs)
		means[app.Name] = s.MeanInstructions
		var lo, hi uint64 = 1 << 62, 0
		for _, r := range recs {
			if r.Instructions < lo {
				lo = r.Instructions
			}
			if r.Instructions > hi {
				hi = r.Instructions
			}
		}
		spreads[app.Name] = hi - lo
		t.Logf("%-20s mean=%.0f min=%d max=%d", app.Name, s.MeanInstructions, lo, hi)
	}
	if !(means["IPv4-radix"] > means["TSA"]) {
		t.Errorf("radix (%.0f) not above TSA (%.0f)", means["IPv4-radix"], means["TSA"])
	}
	if !(means["TSA"] > means["IPv4-trie"]) {
		t.Errorf("TSA (%.0f) not above trie (%.0f)", means["TSA"], means["IPv4-trie"])
	}
	if !(means["IPv4-trie"] > means["Flow Classification"]) {
		t.Errorf("trie (%.0f) not above flow (%.0f)", means["IPv4-trie"], means["Flow Classification"])
	}
	// Radix varies strongly (routing-table-dependent), TSA is nearly
	// constant (strictly linear code path).
	if spreads["IPv4-radix"] < 50 {
		t.Errorf("radix spread %d too small; expected strong variation", spreads["IPv4-radix"])
	}
	if spreads["TSA"] > 40 {
		t.Errorf("TSA spread %d too large; the paper reports near-constant cost", spreads["TSA"])
	}
}

// TestPacketMemoryAccessesNearConstant mirrors Figure 4: accesses to
// packet memory hardly vary across packets.
func TestPacketMemoryAccessesNearConstant(t *testing.T) {
	pkts, tbl := testTrace(t, "MRA", 200)
	b := newBench(t, IPv4Radix(tbl), core.Options{KeepRecords: true})
	recs, err := b.RunPackets(pkts, nil)
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi uint64 = 1 << 62, 0
	for _, r := range recs {
		a := r.PacketAccesses()
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	if hi == 0 {
		t.Fatal("no packet memory accesses recorded")
	}
	if hi-lo > 12 {
		t.Errorf("packet accesses vary from %d to %d; expected near-constant", lo, hi)
	}
	// Roughly the paper's magnitude (18-32 per packet).
	if lo < 10 || hi > 60 {
		t.Errorf("packet accesses [%d, %d] far from the paper's 18-32 range", lo, hi)
	}
}

// TestNonPacketDominatesForRadix mirrors Table III: non-packet memory is
// used much more heavily than packet memory for table-driven apps.
func TestNonPacketDominatesForRadix(t *testing.T) {
	pkts, tbl := testTrace(t, "MRA", 200)
	radix := newBench(t, IPv4Radix(tbl), core.Options{KeepRecords: true})
	recsR, err := radix.RunPackets(pkts, nil)
	if err != nil {
		t.Fatal(err)
	}
	trie := newBench(t, IPv4Trie(tbl), core.Options{KeepRecords: true})
	recsT, err := trie.RunPackets(pkts, nil)
	if err != nil {
		t.Fatal(err)
	}
	sr, st := stats.Summarize(recsR), stats.Summarize(recsT)
	if sr.MeanNonPacketAcc <= sr.MeanPacketAcc {
		t.Errorf("radix: non-packet (%.1f) not above packet (%.1f)",
			sr.MeanNonPacketAcc, sr.MeanPacketAcc)
	}
	if sr.MeanNonPacketAcc < 4*st.MeanNonPacketAcc {
		t.Errorf("radix non-packet accesses (%.1f) not far above trie (%.1f)",
			sr.MeanNonPacketAcc, st.MeanNonPacketAcc)
	}
	t.Logf("radix: pkt=%.1f nonpkt=%.1f; trie: pkt=%.1f nonpkt=%.1f",
		sr.MeanPacketAcc, sr.MeanNonPacketAcc, st.MeanPacketAcc, st.MeanNonPacketAcc)
}

func TestFlowVerdictLevels(t *testing.T) {
	// Flow classification has two discrete cost levels (existing vs new
	// flow), visible as two clusters of instruction counts — the paper's
	// "around 156 instructions and 212 instructions" observation.
	pkts, _ := testTrace(t, "COS", 400)
	b := newBench(t, FlowClassification(flow.DefaultBuckets), core.Options{KeepRecords: true})
	countsByVerdict := map[uint32][]uint64{}
	_, err := b.RunPackets(pkts, func(i int, res core.Result) {
		countsByVerdict[res.Verdict] = append(countsByVerdict[res.Verdict], res.Record.Instructions)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(countsByVerdict[FlowVerdictNew]) == 0 || len(countsByVerdict[FlowVerdictExisting]) == 0 {
		t.Fatal("expected both new and existing flows in the trace")
	}
	meanOf := func(v []uint64) float64 {
		var s uint64
		for _, x := range v {
			s += x
		}
		return float64(s) / float64(len(v))
	}
	newMean := meanOf(countsByVerdict[FlowVerdictNew])
	oldMean := meanOf(countsByVerdict[FlowVerdictExisting])
	if newMean <= oldMean {
		t.Errorf("new-flow cost (%.0f) not above existing-flow cost (%.0f)", newMean, oldMean)
	}
}

func TestAllReturnsFourApps(t *testing.T) {
	_, tbl := testTrace(t, "LAN", 10)
	as := All(tbl, 64, 1)
	if len(as) != 4 {
		t.Fatalf("All returned %d apps", len(as))
	}
	want := []string{"IPv4-radix", "IPv4-trie", "Flow Classification", "TSA"}
	for i, a := range as {
		if a.Name != want[i] {
			t.Errorf("app %d = %s, want %s", i, a.Name, want[i])
		}
	}
}

func TestSlowPathsExecute(t *testing.T) {
	_, tbl := testTrace(t, "MRA", 50)
	dst := tbl.Entries[0].Prefix | 1
	mk := func(mutate func(*packet.IPv4Header)) *trace.Packet {
		h := packet.IPv4Header{Version: 4, IHL: 5, TTL: 64,
			Protocol: packet.ProtoUDP, Src: 0x10000001, Dst: dst, TotalLen: 28}
		if mutate != nil {
			mutate(&h)
		}
		size := int(h.TotalLen)
		b := make([]byte, size)
		h.MarshalInto(b)
		return &trace.Packet{Data: b}
	}

	for _, app := range []*core.App{IPv4Radix(tbl), IPv4Trie(tbl)} {
		b := newBench(t, app, core.Options{})

		// Fragments are forwarded and counted.
		frag := mk(func(h *packet.IPv4Header) { h.Flags |= 1 })
		res, err := b.ProcessPacket(frag)
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict == 0 {
			t.Errorf("%s: fragment dropped", app.Name)
		}
		fragAddr, err := b.Loader().Symbol("frag_count")
		if err != nil {
			t.Fatal(err)
		}
		if got := b.Memory().Read32(fragAddr); got != 1 {
			t.Errorf("%s: frag_count = %d, want 1", app.Name, got)
		}

		// Options are walked; the packet still forwards.
		opt := mk(func(h *packet.IPv4Header) {
			h.IHL = 6
			h.Options = []byte{1, 1, 1, 0}
			h.TotalLen += 4
		})
		res, err = b.ProcessPacket(opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict == 0 {
			t.Errorf("%s: optioned packet dropped", app.Name)
		}

		// Optioned packets cost more instructions than plain ones.
		plainRes, err := b.ProcessPacket(mk(nil))
		if err != nil {
			t.Fatal(err)
		}
		if res.Record.Instructions <= plainRes.Record.Instructions {
			t.Errorf("%s: optioned packet (%d instr) not above plain (%d)",
				app.Name, res.Record.Instructions, plainRes.Record.Instructions)
		}

		// TTL expiry builds the ICMP time-exceeded stub.
		expired := mk(func(h *packet.IPv4Header) { h.TTL = 1 })
		res, err = b.ProcessPacket(expired)
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != 0 {
			t.Errorf("%s: expired packet forwarded", app.Name)
		}
		icmpAddr, err := b.Loader().Symbol("icmp_buf")
		if err != nil {
			t.Fatal(err)
		}
		if got := b.Memory().Read8(icmpAddr); got != 11 {
			t.Errorf("%s: ICMP type = %d, want 11 (time exceeded)", app.Name, got)
		}

		// Martian sources are dropped.
		for _, src := range []uint32{0x00000001, 0x7F000001, 0xE0000001} {
			bad := mk(func(h *packet.IPv4Header) { h.Src = src })
			res, err := b.ProcessPacket(bad)
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict != 0 {
				t.Errorf("%s: martian source %#x forwarded", app.Name, src)
			}
		}
	}
}

// TestRareBlocksAppearInBlockStats checks the Figure 7 signature the
// slow paths create: over a realistic trace some basic blocks execute
// with low probability (the special-case handlers).
func TestRareBlocksAppearInBlockStats(t *testing.T) {
	pkts, tbl := testTrace(t, "MRA", 1500)
	b := newBench(t, IPv4Radix(tbl), core.Options{KeepRecords: true})
	recs, err := b.RunPackets(pkts, nil)
	if err != nil {
		t.Fatal(err)
	}
	sets := make([][]int, len(recs))
	for i := range recs {
		sets[i] = recs[i].Blocks
	}
	counts := make([]int, b.BlockMap().NumBlocks())
	for _, set := range sets {
		for _, blk := range set {
			counts[blk]++
		}
	}
	rare, never, common := 0, 0, 0
	for _, c := range counts {
		frac := float64(c) / float64(len(recs))
		switch {
		case c == 0:
			never++
		case frac < 0.1:
			rare++
		case frac > 0.9:
			common++
		}
	}
	if rare == 0 {
		t.Error("no rarely-executed blocks; the slow paths never fired on a 1500-packet trace")
	}
	if common == 0 {
		t.Error("no always-executed blocks")
	}
	t.Logf("blocks: %d total, %d common (>90%%), %d rare (<10%%), %d never",
		len(counts), common, rare, never)
}

func TestPayloadScanMatchesNative(t *testing.T) {
	sig := [4]byte{0xDE, 0xAD, 0xBE, 0xEF}
	pkts, _ := testTrace(t, "MRA", 200)
	// Plant the signature in a few payloads, including overlapping and
	// boundary placements.
	plant := func(p *trace.Packet, off int) {
		if off+4 <= len(p.Data) {
			copy(p.Data[off:], sig[:])
		}
	}
	for i := 0; i < len(pkts); i += 17 {
		if len(pkts[i].Data) > 48 {
			plant(pkts[i], 30)
			plant(pkts[i], len(pkts[i].Data)-4)
		}
	}
	b := newBench(t, PayloadScan(sig), core.Options{})
	planted := 0
	for i, p := range pkts {
		res, err := b.ProcessPacket(p)
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		want := NativePayloadScan(p.Data, sig)
		if int(res.Verdict) != want {
			t.Fatalf("packet %d: %d matches, native %d", i, res.Verdict, want)
		}
		planted += want
	}
	if planted == 0 {
		t.Fatal("no signatures planted; test is vacuous")
	}
	// The cumulative counter in simulated memory matches.
	addr, err := b.Loader().Symbol("scan_hits")
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Memory().Read32(addr); int(got) != planted {
		t.Errorf("scan_hits = %d, want %d", got, planted)
	}
}

// TestPayloadScanScalesWithSize checks the PPA signature: cost grows
// linearly with payload size and packet-memory accesses dominate —
// the inverse of the header applications' profile.
func TestPayloadScanScalesWithSize(t *testing.T) {
	sig := [4]byte{1, 2, 3, 4}
	b := newBench(t, PayloadScan(sig), core.Options{})
	mk := func(size int) *trace.Packet {
		h := packet.IPv4Header{Version: 4, IHL: 5, TTL: 9,
			Protocol: packet.ProtoUDP, Src: 1, Dst: 2, TotalLen: uint16(size)}
		buf := make([]byte, size)
		for i := range buf {
			buf[i] = byte(i * 7)
		}
		h.MarshalInto(buf)
		return &trace.Packet{Data: buf}
	}
	small, err := b.ProcessPacket(mk(64))
	if err != nil {
		t.Fatal(err)
	}
	large, err := b.ProcessPacket(mk(1500))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(large.Record.Instructions) / float64(small.Record.Instructions)
	if ratio < 10 {
		t.Errorf("1500B/64B instruction ratio = %.1f; payload app must scale with size", ratio)
	}
	if large.Record.PacketAccesses() <= large.Record.NonPacketAccesses() {
		t.Errorf("payload app not packet-memory dominated: pkt=%d nonpkt=%d",
			large.Record.PacketAccesses(), large.Record.NonPacketAccesses())
	}
}

func TestMicroarchProfileOfRadix(t *testing.T) {
	pkts, tbl := testTrace(t, "MRA", 300)
	b := newBench(t, IPv4Radix(tbl), core.Options{})
	ic, err := microarch.NewCache(4096, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := microarch.NewCache(8192, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	prof := microarch.NewProfiler(ic, dc)
	b.AddTracer(prof)
	recs, err := b.RunPackets(pkts, nil)
	if err != nil {
		t.Fatal(err)
	}
	prof.Flush()

	// The profiler and collector observed the same run.
	var totalInstr uint64
	for _, r := range recs {
		totalInstr += r.Instructions
	}
	if prof.Mix.Total() != totalInstr {
		t.Fatalf("profiler saw %d instructions, collector %d", prof.Mix.Total(), totalInstr)
	}
	// Sanity of the mix for a table-walking application: mostly ALU,
	// a substantial load fraction, very few stores.
	if f := prof.Mix.Frac(microarch.ClassALU); f < 0.4 {
		t.Errorf("ALU fraction %.2f implausibly low", f)
	}
	if f := prof.Mix.Frac(microarch.ClassLoad); f < 0.1 || f > 0.5 {
		t.Errorf("load fraction %.2f out of band", f)
	}
	if f := prof.Mix.Frac(microarch.ClassStore); f > 0.1 {
		t.Errorf("store fraction %.2f too high for forwarding", f)
	}
	// Branch behaviour: the PB32 coding style closes loops with
	// unconditional jumps, so conditional branches are mostly
	// not-taken guards; the bimodal predictor must still learn them.
	if r := prof.Branches.TakenRate(); r <= 0 || r > 0.95 {
		t.Errorf("taken rate %.2f out of band", r)
	}
	if prof.Branches.BimodalAccuracy() < 0.7 {
		t.Errorf("bimodal accuracy %.2f too low", prof.Branches.BimodalAccuracy())
	}
	// The paper's memory-hierarchy observation: packet processing has a
	// tiny instruction working set, so even a 4KB icache barely misses.
	if mr := ic.MissRate(); mr > 0.01 {
		t.Errorf("icache miss rate %.4f; expected near zero for a %dB program",
			mr, b.BlockMap().NumInstructions()*4)
	}
	if prof.CPI() < 1 || prof.CPI() > 5 {
		t.Errorf("CPI %.2f out of band", prof.CPI())
	}
}

// TestPartitionRadixForPipeline exercises the paper's partitioning use
// case end to end: collect per-block dynamic costs from a real run,
// split the application into pipeline stages, and check the resulting
// skew is sane input for the system model.
func TestPartitionRadixForPipeline(t *testing.T) {
	pkts, tbl := testTrace(t, "MRA", 400)
	b := newBench(t, IPv4Radix(tbl), core.Options{Detail: true})
	var seqs [][]int
	for i, p := range pkts {
		if _, err := b.ProcessPacket(p); err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		seqs = append(seqs, append([]int(nil), b.Collector().BlockSeq...))
	}
	costs := analysis.BlockCosts(b.BlockMap(), seqs)

	// The hottest block must be inside the tree walk (executed many
	// times per packet), not the straight-line prologue.
	hot := analysis.HotBlocks(costs)
	if len(hot) == 0 {
		t.Fatal("no hot blocks")
	}
	if hot[0].Entries <= uint64(len(pkts)) {
		t.Errorf("hottest block entered %d times over %d packets; expected a loop body",
			hot[0].Entries, len(pkts))
	}

	for _, k := range []int{2, 4, 8} {
		stages, skew, err := analysis.Partition(costs, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(stages) != k {
			t.Errorf("k=%d: got %d stages", k, len(stages))
		}
		if skew < 1 || skew > float64(k) {
			t.Errorf("k=%d: skew %v out of range", k, skew)
		}
		// Feed the measured skew into the pipeline model; it must yield
		// a finite positive throughput below the perfectly balanced one.
		w := npmodel.Workload{InstrPerPacket: 700, PacketAccesses: 34, NonPacketAccesses: 180}
		h := npmodel.DefaultHardware
		real, err := npmodel.Pipeline(w, h, k, skew)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		ideal, err := npmodel.Pipeline(w, h, k, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if real.PacketsPerSecond <= 0 || real.PacketsPerSecond > ideal.PacketsPerSecond {
			t.Errorf("k=%d: measured-skew throughput %v vs ideal %v",
				k, real.PacketsPerSecond, ideal.PacketsPerSecond)
		}
	}
}

func TestFragMatchesNative(t *testing.T) {
	const mtu = 576
	pkts, _ := testTrace(t, "MRA", 300)
	b := newBench(t, Frag(mtu), core.Options{})
	fragmented, passed, dropped := 0, 0, 0
	for i, p := range pkts {
		res, err := b.ProcessPacket(p)
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		native, nerr := packet.FragmentIPv4(p.Data, mtu)
		switch {
		case nerr != nil:
			// DF violation: the app must drop.
			if res.Verdict != 0 {
				t.Fatalf("packet %d: verdict %d, native refused (%v)", i, res.Verdict, nerr)
			}
			dropped++
		case len(native) == 1:
			if res.Verdict != 1 {
				t.Fatalf("packet %d: verdict %d for a fitting packet", i, res.Verdict)
			}
			passed++
		default:
			if int(res.Verdict) != len(native) {
				t.Fatalf("packet %d: %d fragments, native %d", i, res.Verdict, len(native))
			}
			got, err := ReadFragments(b, len(native))
			if err != nil {
				t.Fatalf("packet %d: %v", i, err)
			}
			for j := range native {
				if !bytes.Equal(got[j], native[j]) {
					t.Fatalf("packet %d fragment %d differs from native\n sim: % x\n nat: % x",
						i, j, got[j], native[j])
				}
			}
			// Fragments must reassemble to the original.
			re, err := packet.ReassembleIPv4(got)
			if err != nil {
				t.Fatalf("packet %d: reassembly: %v", i, err)
			}
			h, _ := packet.ParseIPv4(p.Data)
			if !bytes.Equal(re, p.Data[:h.TotalLen]) {
				t.Fatalf("packet %d: reassembled packet differs from original", i)
			}
			fragmented++
		}
	}
	if fragmented == 0 || passed == 0 {
		t.Fatalf("degenerate mix: %d fragmented, %d passed, %d dropped", fragmented, passed, dropped)
	}
	t.Logf("%d fragmented, %d passed through, %d DF-dropped", fragmented, passed, dropped)
}

func TestFragWorkloadScalesWithSize(t *testing.T) {
	b := newBench(t, Frag(576), core.Options{})
	mk := func(size int) *trace.Packet {
		h := packet.IPv4Header{Version: 4, IHL: 5, TTL: 9,
			Protocol: packet.ProtoUDP, Src: 1, Dst: 2, TotalLen: uint16(size)}
		buf := make([]byte, size)
		for i := range buf {
			buf[i] = byte(i * 3)
		}
		h.MarshalInto(buf)
		return &trace.Packet{Data: buf}
	}
	small, err := b.ProcessPacket(mk(600))
	if err != nil {
		t.Fatal(err)
	}
	big, err := b.ProcessPacket(mk(1500))
	if err != nil {
		t.Fatal(err)
	}
	if small.Verdict != 2 || big.Verdict != 3 {
		t.Fatalf("verdicts %d/%d, want 2/3", small.Verdict, big.Verdict)
	}
	if big.Record.Instructions <= small.Record.Instructions {
		t.Error("fragmenting a bigger packet was not more work")
	}
	// Fragmentation writes heavily to non-packet memory (the output
	// area) — a write-dominated profile unlike every other app.
	if big.Record.NonPacketWrites <= big.Record.NonPacketReads {
		t.Errorf("frag not write-dominated: %d writes, %d reads",
			big.Record.NonPacketWrites, big.Record.NonPacketReads)
	}
}
