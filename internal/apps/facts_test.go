package apps

import (
	"testing"

	"repro/internal/core"
	"repro/internal/route"
)

// TestFactsFireOnApps pins down that the proof-guided translator is not
// vacuous: the verifier's facts pipeline must prove enough about the
// bundled applications for the threaded engine to actually fuse
// superinstructions and elide memory checks. If a verifier change makes
// every program untame, correctness tests all still pass (untame just
// means fully-checked translation) — this test is what fails.
func TestFactsFireOnApps(t *testing.T) {
	tbl := route.GenerateTable(route.GenOptions{})
	list := All(tbl, 64, 1)
	list = append(list, PayloadScan([4]byte{0xde, 0xad, 0xbe, 0xef}), Frag(576))
	anyUnchecked := false
	fusedApps := 0
	for _, app := range list {
		b, err := core.New(app, core.Options{Engine: core.EngineThreaded})
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		st := b.TranslationStats()
		t.Logf("%-14s fused=%d triples=%d wide=%d uncheckedLoads=%d uncheckedStores=%d foldedBranches=%d elidedMasks=%d deadBlocks=%d",
			app.Name, st.FusedPairs, st.FusedTriples, st.FusedWide, st.UncheckedLoads, st.UncheckedStores, st.FoldedBranches, st.ElidedMasks, st.DeadBlocks)
		// Fusion is gated per program (the fused body must clear a
		// weighted dispatch-reduction threshold), so not every app keeps
		// its superinstructions — but the hot table-walk apps must.
		if st.FusedPairs+st.FusedTriples+st.FusedWide > 0 {
			fusedApps++
		}
		if st.UncheckedLoads+st.UncheckedStores == 0 {
			t.Errorf("%s: no unchecked memory ops: the facts pipeline proved nothing", app.Name)
		}
		if st.UncheckedLoads+st.UncheckedStores > 0 {
			anyUnchecked = true
		}
	}
	if !anyUnchecked {
		t.Errorf("no bundled app got a single unchecked memory op: the facts pipeline proved nothing")
	}
	if fusedApps < 3 {
		t.Errorf("only %d apps kept superinstruction fusion; the gate should keep it for the table-walk apps at least", fusedApps)
	}
}
