; Flow Classification: classify packets into flows by the 5-tuple
; (source address, destination address, ports, protocol) using a hash
; table with linked-list collision chains — the paper's third
; application, "a common part of various applications such as
; firewalling, NAT, and network monitoring".
;
; ABI: a0 = packet (layer-3 header), a1 = length.
; Returns a0 = 1 for a packet of an existing flow, 2 for a new flow.
;
; Flow node layout (see package flow):
;   +0 src  +4 dst  +8 ports  +12 proto  +16 packets  +20 bytes  +24 next

        .equ IP_VER_IHL, 0
        .equ IP_PROTO,   9
        .equ IP_SRC,     12
        .equ IP_DST,     16
        .equ PROTO_TCP,  6
        .equ PROTO_UDP,  17
        .equ NODE_SIZE,  32

        .data
flow_buckets:                   ; bucket array base, set by the loader
        .word 0
flow_nbuckets:                  ; bucket count (power of two)
        .word 0
flow_heap:                      ; bump-allocation pointer for new nodes
        .word 0

        .text
        .global process_packet

process_packet:
        ; ---- extract the 5-tuple -------------------------------------
        lbu  t0, IP_VER_IHL(a0)
        andi t0, t0, 0xF
        slli s3, t0, 2             ; s3 = IP header length
        lbu  s2, IP_PROTO(a0)      ; s2 = protocol

        lbu  t0, IP_SRC(a0)
        lbu  t1, IP_SRC+1(a0)
        lbu  t2, IP_SRC+2(a0)
        lbu  t3, IP_SRC+3(a0)
        slli t0, t0, 24
        slli t1, t1, 16
        slli t2, t2, 8
        or   t0, t0, t1
        or   t2, t2, t3
        or   s0, t0, t2            ; s0 = src

        lbu  t0, IP_DST(a0)
        lbu  t1, IP_DST+1(a0)
        lbu  t2, IP_DST+2(a0)
        lbu  t3, IP_DST+3(a0)
        slli t0, t0, 24
        slli t1, t1, 16
        slli t2, t2, 8
        or   t0, t0, t1
        or   t2, t2, t3
        or   s1, t0, t2            ; s1 = dst

        ; ports for TCP/UDP, zero otherwise
        mv   a2, zero
        addi t0, zero, PROTO_TCP
        beq  s2, t0, ports
        addi t0, zero, PROTO_UDP
        beq  s2, t0, ports
        j    hash
ports:
        add  t1, a0, s3
        lbu  t0, 0(t1)
        lbu  t2, 1(t1)
        slli t0, t0, 8
        or   t0, t0, t2            ; source port
        lbu  t2, 2(t1)
        lbu  t3, 3(t1)
        slli t2, t2, 8
        or   t2, t2, t3            ; destination port
        slli a2, t0, 16
        or   a2, a2, t2            ; a2 = ports word

        ; ---- hash the tuple into a bucket ----------------------------
hash:
        xor  t0, s0, s1
        xor  t0, t0, a2
        xor  t0, t0, s2
        li   t1, 2654435761        ; Knuth multiplicative constant
        mul  t0, t0, t1
        srli t1, t0, 16
        xor  t0, t0, t1
        la   t1, flow_nbuckets
        lw   t1, 0(t1)
        addi t1, t1, -1
        and  t0, t0, t1            ; bucket index
        la   t1, flow_buckets
        lw   t1, 0(t1)
        slli t0, t0, 2
        add  a3, t1, t0            ; a3 = address of the bucket head
        lw   t0, 0(a3)             ; t0 = first node in the chain

        ; ---- walk the collision chain --------------------------------
walk:
        beqz t0, insert
        lw   t1, 0(t0)
        bne  t1, s0, next
        lw   t1, 4(t0)
        bne  t1, s1, next
        lw   t1, 8(t0)
        bne  t1, a2, next
        lw   t1, 12(t0)
        bne  t1, s2, next
        ; existing flow: update the accounting
        lw   t1, 16(t0)
        addi t1, t1, 1
        sw   t1, 16(t0)            ; packets++
        lw   t1, 20(t0)
        add  t1, t1, a1
        sw   t1, 20(t0)            ; bytes += length
        addi a0, zero, 1
        ret
next:
        lw   t0, 24(t0)
        j    walk

        ; ---- create a new flow node ----------------------------------
insert:
        la   t1, flow_heap
        lw   t2, 0(t1)             ; t2 = new node address
        addi t3, t2, NODE_SIZE
        sw   t3, 0(t1)             ; bump the allocator
        sw   s0, 0(t2)
        sw   s1, 4(t2)
        sw   a2, 8(t2)
        sw   s2, 12(t2)
        addi t3, zero, 1
        sw   t3, 16(t2)            ; packets = 1
        sw   a1, 20(t2)            ; bytes = length
        lw   t3, 0(a3)
        sw   t3, 24(t2)            ; next = old head
        sw   zero, 28(t2)
        sw   t2, 0(a3)             ; bucket head = new node
        addi a0, zero, 2
        ret
