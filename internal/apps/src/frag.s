; FRAG: IPv4 fragmentation to a configured MTU, after the FRAG kernel of
; the authors' own CommBench suite (the benchmark predecessor the paper
; builds on). Packets that fit pass through untouched; oversized packets
; are split into RFC 791 fragments written back-to-back into an output
; area in application memory, each with a correct header checksum.
;
; ABI: a0 = packet (layer-3 header), a1 = length.
; Returns a0 = number of fragments written (0 = drop: DF set but the
; packet needs fragmenting; 1 = passed through unfragmented, nothing is
; written).
;
; Output area layout: fragments are contiguous; each is a full packet
; (header + payload) whose length is in its own total-length field.

        .equ IP_TOTLEN, 2
        .equ IP_FRAG,   6
        .equ IP_CSUM,   10
        .equ DF_MASK,   0x40

        .data
frag_mtu:                       ; MTU, set by the loader
        .word 0
frag_out:                       ; output area base, set by the loader
        .word 0

        .text
        .global process_packet

process_packet:
        ; ---- parse lengths -------------------------------------------
        lbu  t0, 0(a0)
        andi t0, t0, 0xF
        slli s3, t0, 2             ; s3 = header length
        lbu  t0, IP_TOTLEN(a0)
        lbu  t1, IP_TOTLEN+1(a0)
        slli t0, t0, 8
        or   t1, t0, t1            ; t1 = total length
        la   t0, frag_mtu
        lw   t2, 0(t0)             ; t2 = MTU
        bleu t1, t2, fits

        ; ---- must fragment: DF check ----------------------------------
        lbu  t0, IP_FRAG(a0)
        andi t0, t0, DF_MASK
        bnez t0, dfdrop

        ; ---- setup ------------------------------------------------------
        sub  s0, t2, s3
        srli s0, s0, 3
        slli s0, s0, 3             ; s0 = payload bytes per fragment (8-aligned)
        beqz s0, dfdrop            ; MTU cannot carry payload
        sub  s1, t1, s3            ; s1 = payload bytes remaining
        add  a3, a0, s3            ; a3 = input payload cursor
        la   t0, frag_out
        lw   a2, 0(t0)             ; a2 = output cursor
        li   s2, 0xFFFF            ; checksum mask

        lbu  t0, IP_FRAG(a0)
        lbu  t3, IP_FRAG+1(a0)
        slli t0, t0, 8
        or   t0, t0, t3            ; original flags/offset word
        addi sp, sp, -12
        srli t3, t0, 13
        andi t3, t3, 1
        sw   t3, 0(sp)             ; [sp+0] = original MF bit
        li   t3, 0x1FFF
        and  t4, t0, t3
        sw   t4, 4(sp)             ; [sp+4] = running offset (8-byte units)
        sw   zero, 8(sp)           ; [sp+8] = fragment count

frag_loop:
        beqz s1, frags_done
        mv   t4, s0                ; t4 = this fragment's payload length
        bleu t4, s1, len_ok
        mv   t4, s1
len_ok:
        ; ---- copy the header (word aligned on both sides) -------------
        mv   t0, zero
hdr_copy:
        add  t2, a0, t0
        lw   t3, 0(t2)
        add  t2, a2, t0
        sw   t3, 0(t2)
        addi t0, t0, 4
        blt  t0, s3, hdr_copy

        ; ---- patch total length = hlen + payload (big endian) ---------
        add  t0, s3, t4
        srli t3, t0, 8
        sb   t3, IP_TOTLEN(a2)
        sb   t0, IP_TOTLEN+1(a2)

        ; ---- patch flags/offset ----------------------------------------
        lw   t0, 4(sp)             ; running offset
        sub  t3, s1, t4
        bnez t3, set_mf            ; not the last piece
        lw   t3, 0(sp)             ; last piece inherits the original MF
        j    have_mf
set_mf:
        addi t3, zero, 1
have_mf:
        slli t3, t3, 13
        or   t3, t3, t0
        srli t0, t3, 8
        sb   t0, IP_FRAG(a2)
        sb   t3, IP_FRAG+1(a2)
        sb   zero, IP_CSUM(a2)
        sb   zero, IP_CSUM+1(a2)

        ; ---- copy the payload: whole words, then a byte tail -----------
        mv   t0, zero
pay_words:
        addi t2, t0, 4
        bgt  t2, t4, pay_bytes
        add  t2, a3, t0
        lw   t3, 0(t2)
        add  t2, a2, s3
        add  t2, t2, t0
        sw   t3, 0(t2)
        addi t0, t0, 4
        j    pay_words
pay_bytes:
        bgeu t0, t4, pay_done
        add  t2, a3, t0
        lbu  t3, 0(t2)
        add  t2, a2, s3
        add  t2, t2, t0
        sb   t3, 0(t2)
        addi t0, t0, 1
        j    pay_bytes
pay_done:

        ; ---- checksum the output header --------------------------------
        mv   t0, zero              ; sum
        mv   t2, zero              ; offset
ck_loop:
        add  a1, a2, t2
        lbu  t3, 0(a1)
        slli t3, t3, 8
        lbu  a1, 1(a1)
        or   t3, t3, a1
        add  t0, t0, t3
        addi t2, t2, 2
        blt  t2, s3, ck_loop
ck_fold:
        srli t2, t0, 16
        beqz t2, ck_done
        and  t0, t0, s2
        add  t0, t0, t2
        j    ck_fold
ck_done:
        xor  t0, t0, s2
        srli t2, t0, 8
        sb   t2, IP_CSUM(a2)
        sb   t0, IP_CSUM+1(a2)

        ; ---- advance to the next fragment ------------------------------
        lw   t0, 4(sp)
        srli t2, t4, 3
        add  t0, t0, t2
        sw   t0, 4(sp)
        lw   t0, 8(sp)
        addi t0, t0, 1
        sw   t0, 8(sp)
        add  a3, a3, t4
        add  a2, a2, s3
        add  a2, a2, t4
        sub  s1, s1, t4
        j    frag_loop

frags_done:
        lw   a0, 8(sp)
        addi sp, sp, 12
        ret

fits:
        addi a0, zero, 1
        ret
dfdrop:
        mv   a0, zero
        ret
