; IPv4-radix: RFC 1812 packet forwarding with a BSD-style binary radix
; tree (one bit per level, key/mask verification on the backtracking
; path). This is the paper's "straight-forward unoptimized implementation"
; of IP forwarding.
;
; ABI: a0 = packet (layer-3 header), a1 = length.
; Returns a0 = output port (>= 1) or 0 to drop.
;
; Node layout (see route.RadixTree.Serialize):
;   +0 left  +4 right  +8 hop  +12 key  +16 mask

        .equ IP_VER_IHL, 0
        .equ IP_FRAG,    6
        .equ IP_TTL,     8
        .equ IP_PROTO,   9
        .equ IP_CSUM,    10
        .equ IP_SRC,     12
        .equ IP_DST,     16

        .data
radix_root:                     ; root node address, set by the loader
        .word 0
keybuf:                         ; BSD-style lookup key copy
        .space 4
bmask:                          ; rn_bmask: bit masks within a key byte
        .byte 0x80, 0x40, 0x20, 0x10, 0x08, 0x04, 0x02, 0x01

frag_count:                     ; fragments seen (slow-path accounting)
        .word 0
icmp_buf:                       ; ICMP time-exceeded scratch area
        .space 20

        .text
        .global process_packet

process_packet:
        ; ---- RFC 1812 section 5.2.2 sanity checks -------------------
        addi t0, zero, 20
        blt  a1, t0, drop          ; shorter than a minimal header
        lbu  t1, IP_VER_IHL(a0)
        srli t2, t1, 4
        addi t3, zero, 4
        bne  t2, t3, drop          ; not IPv4
        andi s3, t1, 0xF
        addi t3, zero, 5
        blt  s3, t3, drop          ; IHL below 5 words
        slli s3, s3, 2             ; s3 = header length in bytes
        blt  a1, s3, drop          ; header truncated

        ; ---- verify the header checksum (RFC 1071) ------------------
        li   s2, 0xFFFF
        mv   t0, zero              ; sum
        mv   t1, zero              ; byte offset
csum_loop:
        add  t2, a0, t1
        lbu  t3, 0(t2)
        lbu  t4, 1(t2)
        slli t3, t3, 8
        or   t3, t3, t4
        add  t0, t0, t3
        addi t1, t1, 2
        blt  t1, s3, csum_loop
csum_fold:
        srli t2, t0, 16
        beqz t2, csum_done
        and  t0, t0, s2
        add  t0, t0, t2
        j    csum_fold
csum_done:
        bne  t0, s2, drop          ; ones'-complement sum must be 0xFFFF


        ; ---- IP options processing (rare path) ----------------------
        addi t0, zero, 20
        beq  s3, t0, no_opts
        addi t1, a0, 20            ; option cursor
        add  t2, a0, s3            ; header end
opt_loop:
        bgeu t1, t2, no_opts
        lbu  t3, 0(t1)
        beqz t3, no_opts           ; end of option list
        addi t4, zero, 1
        beq  t3, t4, opt_nop       ; NOP: single byte
        lbu  t4, 1(t1)             ; other options carry a length
        beqz t4, drop              ; malformed option
        add  t1, t1, t4
        j    opt_loop
opt_nop:
        addi t1, t1, 1
        j    opt_loop
no_opts:

        ; ---- source address validation (RFC 1812 5.3.7) --------------
        lbu  t0, IP_SRC(a0)
        beqz t0, drop              ; 0.0.0.0/8 is never a valid source
        addi t1, zero, 127
        beq  t0, t1, drop          ; loopback
        addi t1, zero, 224
        bge  t0, t1, drop          ; multicast/reserved source

        ; ---- TTL check; expired packets go to the slow path ----------
        lbu  s1, IP_TTL(a0)
        addi t0, zero, 1
        bgt  s1, t0, ttl_ok
        ; Build an ICMP time-exceeded stub (type 11) with the offending
        ; header attached, for the control processor to complete.
        la   t1, icmp_buf
        addi t2, zero, 11
        sb   t2, 0(t1)             ; type
        sb   zero, 1(t1)           ; code
        sh   zero, 2(t1)           ; checksum (slow path fills it)
        lw   t2, 0(a0)
        sw   t2, 8(t1)             ; copy of the original header
        lw   t2, 4(a0)
        sw   t2, 12(t1)
        lw   t2, 8(a0)
        sw   t2, 16(t1)
        j    drop

        ; ---- fragment accounting (rare path) --------------------------
ttl_ok:
        lbu  t0, IP_FRAG(a0)
        lbu  t1, IP_FRAG+1(a0)
        andi t0, t0, 0x3F          ; more-fragments flag + offset high bits
        or   t0, t0, t1
        beqz t0, not_frag
        la   t1, frag_count
        lw   t2, 0(t1)
        addi t2, t2, 1
        sw   t2, 0(t1)
not_frag:

        ; ---- destination address (network byte order) ----------------
        lbu  t0, IP_DST(a0)
        lbu  t1, IP_DST+1(a0)
        lbu  t2, IP_DST+2(a0)
        lbu  t3, IP_DST+3(a0)
        slli t0, t0, 24
        slli t1, t1, 16
        slli t2, t2, 8
        or   t0, t0, t1
        or   t2, t2, t3
        or   s0, t0, t2            ; s0 = dst

        ; ---- copy the lookup key, BSD rn_match style -----------------
        la   s3, keybuf
        srli t0, s0, 24
        sb   t0, 0(s3)
        srli t0, s0, 16
        sb   t0, 1(s3)
        srli t0, s0, 8
        sb   t0, 2(s3)
        sb   s0, 3(s3)
        la   a1, bmask             ; packet length no longer needed

        ; ---- descend the radix tree, pushing the path ---------------
        ; Per level, BSD rn_search style: load the node's stored bit
        ; index (rn_off), verify the node's key under its mask, test the
        ; key-buffer byte against the rn_bmask entry, and follow the
        ; child pointer.
        la   t0, radix_root
        lw   t0, 0(t0)
        beqz t0, drop
        mv   t2, sp                ; t2 = path stack marker
        addi t3, zero, 32
descend:
        addi sp, sp, -4
        sw   t0, 0(sp)             ; push this node on the path
        lw   t1, 20(t0)            ; rn_off: bit index to test here
        beq  t1, t3, ascend        ; all 32 bits consumed
        lw   a2, 16(t0)            ; node mask
        lw   a3, 12(t0)            ; node key
        and  a2, a2, s0
        bne  a2, a3, ascend        ; key mismatch (defensive check)
        srli a2, t1, 3
        add  a2, a2, s3
        lbu  a2, 0(a2)             ; key byte
        andi a3, t1, 7
        add  a3, a3, a1
        lbu  a3, 0(a3)             ; rn_bmask bit
        and  a2, a2, a3
        snez a2, a2                ; tested bit as 0/1
        slli a2, a2, 2
        add  a2, t0, a2
        lw   t4, 0(a2)             ; child pointer
        beqz t4, ascend
        mv   t0, t4
        j    descend

        ; ---- backtrack to the longest prefix on the path ------------
ascend:
        beq  sp, t2, no_route      ; path exhausted
        lw   t0, 0(sp)
        addi sp, sp, 4
        lw   t4, 8(t0)             ; next hop stored at this node
        beqz t4, ascend
        lw   a2, 16(t0)            ; mask
        lw   a3, 12(t0)            ; key
        and  a2, a2, s0
        bne  a2, a3, ascend        ; BSD key/mask verification
        mv   sp, t2                ; unwind the rest of the path

        ; ---- forward: decrement TTL, RFC 1624 incremental checksum --
        lbu  t0, IP_CSUM(a0)
        lbu  t1, IP_CSUM+1(a0)
        slli t0, t0, 8
        or   t0, t0, t1            ; t0 = HC (old checksum)
        slli t1, s1, 8             ; m  = old TTL word (protocol cancels)
        addi t2, s1, -1
        andi t2, t2, 0xFF
        sb   t2, IP_TTL(a0)        ; write decremented TTL
        slli t2, t2, 8             ; m' = new TTL word
        xor  t0, t0, s2            ; ~HC (16 bits)
        xor  t1, t1, s2            ; ~m  (16 bits)
        add  t0, t0, t1
        add  t0, t0, t2
fold2:
        srli t1, t0, 16
        beqz t1, fold2_done
        and  t0, t0, s2
        add  t0, t0, t1
        j    fold2
fold2_done:
        xor  t0, t0, s2            ; HC' = ~sum
        srli t1, t0, 8
        sb   t1, IP_CSUM(a0)
        sb   t0, IP_CSUM+1(a0)

        mv   a0, t4                ; verdict: output port
        ret

no_route:
        mv   sp, t2                ; restore the stack
drop:
        mv   a0, zero
        ret
