; IPv4-trie: RFC 1812 packet forwarding with a level/path-compressed
; LC-trie (Nilsson-Karlsson), the paper's storage- and lookup-efficient
; forwarding implementation.
;
; ABI: a0 = packet (layer-3 header), a1 = length.
; Returns a0 = output port (>= 1) or 0 to drop.
;
; Node word (see route.LCTrie.Serialize):
;   branch = node >> 27, skip = node >> 22 & 0x1F, adr = node & 0x3FFFFF
; Entry layout: +0 prefix  +4 mask  +8 hop  +12 chain (absolute, 0 = end)

        .equ IP_VER_IHL, 0
        .equ IP_FRAG,    6
        .equ IP_TTL,     8
        .equ IP_CSUM,    10
        .equ IP_SRC,     12
        .equ IP_DST,     16

        .data
trie_nodes:                     ; node vector base, set by the loader
        .word 0
trie_entries:                   ; entry vector base, set by the loader
        .word 0

frag_count:                     ; fragments seen (slow-path accounting)
        .word 0
icmp_buf:                       ; ICMP time-exceeded scratch area
        .space 20

        .text
        .global process_packet

process_packet:
        ; ---- RFC 1812 sanity checks (same steps as IPv4-radix) ------
        addi t0, zero, 20
        blt  a1, t0, drop
        lbu  t1, IP_VER_IHL(a0)
        srli t2, t1, 4
        addi t3, zero, 4
        bne  t2, t3, drop
        andi s3, t1, 0xF
        addi t3, zero, 5
        blt  s3, t3, drop
        slli s3, s3, 2
        blt  a1, s3, drop

        ; ---- verify header checksum ----------------------------------
        li   s2, 0xFFFF
        mv   t0, zero
        mv   t1, zero
csum_loop:
        add  t2, a0, t1
        lbu  t3, 0(t2)
        lbu  t4, 1(t2)
        slli t3, t3, 8
        or   t3, t3, t4
        add  t0, t0, t3
        addi t1, t1, 2
        blt  t1, s3, csum_loop
csum_fold:
        srli t2, t0, 16
        beqz t2, csum_done
        and  t0, t0, s2
        add  t0, t0, t2
        j    csum_fold
csum_done:
        bne  t0, s2, drop


        ; ---- IP options processing (rare path) ----------------------
        addi t0, zero, 20
        beq  s3, t0, no_opts
        addi t1, a0, 20            ; option cursor
        add  t2, a0, s3            ; header end
opt_loop:
        bgeu t1, t2, no_opts
        lbu  t3, 0(t1)
        beqz t3, no_opts           ; end of option list
        addi t4, zero, 1
        beq  t3, t4, opt_nop       ; NOP: single byte
        lbu  t4, 1(t1)             ; other options carry a length
        beqz t4, drop              ; malformed option
        add  t1, t1, t4
        j    opt_loop
opt_nop:
        addi t1, t1, 1
        j    opt_loop
no_opts:

        ; ---- source address validation (RFC 1812 5.3.7) --------------
        lbu  t0, IP_SRC(a0)
        beqz t0, drop              ; 0.0.0.0/8 is never a valid source
        addi t1, zero, 127
        beq  t0, t1, drop          ; loopback
        addi t1, zero, 224
        bge  t0, t1, drop          ; multicast/reserved source

        ; ---- TTL check; expired packets go to the slow path ----------
        lbu  s1, IP_TTL(a0)
        addi t0, zero, 1
        bgt  s1, t0, ttl_ok
        ; Build an ICMP time-exceeded stub (type 11) with the offending
        ; header attached, for the control processor to complete.
        la   t1, icmp_buf
        addi t2, zero, 11
        sb   t2, 0(t1)             ; type
        sb   zero, 1(t1)           ; code
        sh   zero, 2(t1)           ; checksum (slow path fills it)
        lw   t2, 0(a0)
        sw   t2, 8(t1)             ; copy of the original header
        lw   t2, 4(a0)
        sw   t2, 12(t1)
        lw   t2, 8(a0)
        sw   t2, 16(t1)
        j    drop

        ; ---- fragment accounting (rare path) --------------------------
ttl_ok:
        lbu  t0, IP_FRAG(a0)
        lbu  t1, IP_FRAG+1(a0)
        andi t0, t0, 0x3F          ; more-fragments flag + offset high bits
        or   t0, t0, t1
        beqz t0, not_frag
        la   t1, frag_count
        lw   t2, 0(t1)
        addi t2, t2, 1
        sw   t2, 0(t1)
not_frag:

        ; ---- destination address --------------------------------------
        lbu  t0, IP_DST(a0)
        lbu  t1, IP_DST+1(a0)
        lbu  t2, IP_DST+2(a0)
        lbu  t3, IP_DST+3(a0)
        slli t0, t0, 24
        slli t1, t1, 16
        slli t2, t2, 8
        or   t0, t0, t1
        or   t2, t2, t3
        or   s0, t0, t2            ; s0 = dst

        ; ---- LC-trie walk ---------------------------------------------
        la   t0, trie_nodes
        lw   a2, 0(t0)             ; a2 = node vector base
        la   t0, trie_entries
        lw   a3, 0(t0)             ; a3 = entry vector base
        beqz a2, drop              ; empty table
        li   s3, 0x3FFFFF          ; adr field mask (hdrlen no longer needed)
        lw   t0, 0(a2)             ; root node word
        mv   t1, zero              ; t1 = bit position
walk:
        srli t2, t0, 27            ; branch
        beqz t2, leaf
        srli t3, t0, 22
        andi t3, t3, 0x1F          ; skip
        add  t1, t1, t3
        sll  t3, s0, t1            ; align remaining bits to the top
        addi t4, zero, 32
        sub  t4, t4, t2
        srl  t3, t3, t4            ; k = next `branch` bits of dst
        add  t1, t1, t2
        and  t0, t0, s3            ; adr = first-child index
        add  t0, t0, t3
        slli t0, t0, 2
        add  t0, t0, a2
        lw   t0, 0(t0)             ; child node word
        j    walk

leaf:
        and  t0, t0, s3            ; entry index
        slli t0, t0, 4             ; * 16 bytes per entry
        add  t0, t0, a3            ; entry address
chain:
        lw   t2, 0(t0)             ; prefix
        lw   t3, 4(t0)             ; mask
        xor  t2, t2, s0
        and  t2, t2, t3
        beqz t2, found             ; prefix matches dst
        lw   t0, 12(t0)            ; follow chain of shorter prefixes
        bnez t0, chain
        j    drop

found:
        lw   t4, 8(t0)             ; next hop

        ; ---- forward: decrement TTL, RFC 1624 incremental checksum --
        lbu  t0, IP_CSUM(a0)
        lbu  t1, IP_CSUM+1(a0)
        slli t0, t0, 8
        or   t0, t0, t1
        slli t1, s1, 8
        addi t2, s1, -1
        andi t2, t2, 0xFF
        sb   t2, IP_TTL(a0)
        slli t2, t2, 8
        xor  t0, t0, s2
        xor  t1, t1, s2
        add  t0, t0, t1
        add  t0, t0, t2
fold2:
        srli t1, t0, 16
        beqz t1, fold2_done
        and  t0, t0, s2
        add  t0, t0, t1
        j    fold2
fold2_done:
        xor  t0, t0, s2
        srli t1, t0, 8
        sb   t1, IP_CSUM(a0)
        sb   t0, IP_CSUM+1(a0)

        mv   a0, t4
        ret

drop:
        mv   a0, zero
        ret
