; Payload Scan: a payload-processing application (PPA in the paper's
; CommBench taxonomy). The paper's evaluation focuses on header
; processing but notes "PacketBench can be used to analyze both types of
; applications"; this app is the payload-side counterpart: scan the
; entire packet payload for a 4-byte signature, the inner loop of
; content filtering and intrusion detection.
;
; Unlike the header applications, its cost scales with packet size and
; its memory accesses are overwhelmingly to packet memory.
;
; ABI: a0 = packet (layer-3 header), a1 = length.
; Returns a0 = number of signature matches in the payload.

        .equ IP_VER_IHL, 0

        .data
scan_sig:                       ; the 4 signature bytes, set by the loader
        .byte 0, 0, 0, 0
scan_hits:                      ; cumulative matches across all packets
        .word 0

        .text
        .global process_packet

process_packet:
        ; payload starts after the IP header
        lbu  t0, IP_VER_IHL(a0)
        andi t0, t0, 0xF
        slli t0, t0, 2
        add  t1, a0, t0            ; t1 = scan cursor
        add  t2, a0, a1
        addi t2, t2, -3            ; t2 = last possible match start

        ; load the signature into registers
        la   t0, scan_sig
        lbu  s0, 0(t0)
        lbu  s1, 1(t0)
        lbu  s2, 2(t0)
        lbu  s3, 3(t0)

        mv   t4, zero              ; t4 = match count
scan:
        bgeu t1, t2, done
        lbu  a2, 0(t1)
        bne  a2, s0, next
        lbu  a2, 1(t1)
        bne  a2, s1, next
        lbu  a2, 2(t1)
        bne  a2, s2, next
        lbu  a2, 3(t1)
        bne  a2, s3, next
        addi t4, t4, 1             ; full signature match
next:
        addi t1, t1, 1
        j    scan

done:
        la   t0, scan_hits
        lw   t1, 0(t0)
        add  t1, t1, t4
        sw   t1, 0(t0)
        mv   a0, t4
        ret
