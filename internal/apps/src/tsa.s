; TSA: top-hashed subtree-replicated prefix-preserving IP address
; anonymization, the paper's fourth application. Both the source and
; destination addresses are anonymized in place, and the layer 3/4
; headers are collected into application memory, matching the paper's
; description ("in addition to anonymizing the IP addresses, layer 3 and
; layer 4 headers are collected for each packet").
;
; ABI: a0 = packet (layer-3 header), a1 = length.
; Returns a0 = 1.
;
; Tables (see anon.TSA.SerializeTables):
;   top table: 2^16 little-endian uint16 entries, index = addr >> 16
;   subtree table: 16 rows of 256 flip bytes; row i, column = low 8 bits
;   of the original prefix of the suffix processed so far

        .equ IP_SRC, 12
        .equ IP_DST, 16

        .data
tsa_top:                        ; top table base, set by the loader
        .word 0
tsa_sub:                        ; replicated subtree base, set by the loader
        .word 0
collect:                        ; header collection area (L3 + L4 headers)
        .space 40

        .text
        .global process_packet

process_packet:
        addi sp, sp, -4
        sw   ra, 0(sp)             ; save the framework return address
        la   s2, tsa_top
        lw   s2, 0(s2)             ; s2 = top table
        la   s3, tsa_sub
        lw   s3, 0(s3)             ; s3 = subtree table
        li   s1, 16*256            ; loop bound for the row counter

        addi a2, a0, IP_SRC        ; anonymize the source address
        call anon_addr
        addi a2, a0, IP_DST        ; anonymize the destination address
        call anon_addr

        ; ---- collect the layer 3 and layer 4 headers ------------------
        la   t0, collect
        lw   t1, 0(a0)
        sw   t1, 0(t0)
        lw   t1, 4(a0)
        sw   t1, 4(t0)
        lw   t1, 8(a0)
        sw   t1, 8(t0)
        lw   t1, 12(a0)
        sw   t1, 12(t0)
        lw   t1, 16(a0)
        sw   t1, 16(t0)
        lw   t1, 20(a0)            ; first 16 bytes past the base header
        sw   t1, 20(t0)
        lw   t1, 24(a0)
        sw   t1, 24(t0)
        lw   t1, 28(a0)
        sw   t1, 28(t0)
        lw   t1, 32(a0)
        sw   t1, 32(t0)

        lw   ra, 0(sp)
        addi sp, sp, 4
        addi a0, zero, 1
        ret

; anon_addr(a2 = pointer to a 4-byte address in network byte order)
; anonymizes the address in place. Uses s1 (row bound), s2 (top table),
; s3 (subtree table); clobbers t0-t4.
anon_addr:
        addi sp, sp, -4
        sw   a2, 0(sp)
        lbu  t0, 0(a2)
        lbu  t1, 1(a2)
        lbu  t2, 2(a2)
        lbu  t3, 3(a2)
        slli t0, t0, 24
        slli t1, t1, 16
        slli t2, t2, 8
        or   t0, t0, t1
        or   t2, t2, t3
        or   t0, t0, t2            ; t0 = address

        ; top half: one prefix-preserving table lookup
        srli t1, t0, 16
        slli t1, t1, 1
        add  t1, t1, s2
        lhu  t3, 0(t1)             ; t3 = anonymized top; suffix shifts in below

        ; bottom half: replicated-subtree walk, one flip bit per level
        slli t2, t0, 16            ; t2 = suffix aligned to the top bit
        mv   a2, zero              ; a2 = original-prefix accumulator
        mv   t4, zero              ; t4 = row offset (i << 8)
sub_loop:
        srli t0, t2, 31            ; next original bit
        slli t2, t2, 1
        andi t1, a2, 0xFF          ; truncated original prefix
        or   t1, t1, t4
        add  t1, t1, s3
        lbu  t1, 0(t1)             ; flip bit for this tree level
        slli a2, a2, 1
        or   a2, a2, t0            ; extend the original prefix
        xor  t0, t0, t1            ; anonymized bit
        slli t3, t3, 1
        or   t3, t3, t0            ; append to the output
        addi t4, t4, 256
        blt  t4, s1, sub_loop

        ; write the anonymized address back in network byte order
        lw   a2, 0(sp)
        addi sp, sp, 4
        srli t0, t3, 24
        sb   t0, 0(a2)
        srli t0, t3, 16
        sb   t0, 1(a2)
        srli t0, t3, 8
        sb   t0, 2(a2)
        sb   t3, 3(a2)
        ret
