package apps

import (
	"testing"

	"repro/internal/core"
	"repro/internal/route"
)

// TestAllAppsVerifyClean runs the static verifier over every bundled
// application exactly as core.New does at load time. Error-severity
// findings are load failures; the bundled applications must also stay
// free of warnings so that real findings in user programs stand out.
func TestAllAppsVerifyClean(t *testing.T) {
	tbl := route.GenerateTable(route.GenOptions{})
	list := All(tbl, 64, 1)
	list = append(list, PayloadScan([4]byte{0xde, 0xad, 0xbe, 0xef}), Frag(576))
	if len(list) != 6 {
		t.Fatalf("expected the 6 bundled applications, got %d", len(list))
	}
	for _, app := range list {
		ds, err := core.Verify(app, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if len(ds) != 0 {
			t.Errorf("%s: verifier findings:\n%s", app.Name, ds)
		}
	}
}
