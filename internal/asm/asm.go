// Package asm implements a two-pass assembler for the PB32 instruction set.
//
// PacketBench applications are written in PB32 assembly (see internal/apps)
// and assembled into a Program: an encoded text segment, an initialized data
// segment, and a symbol table. The assembler supports the usual conveniences
// of a small embedded toolchain: labels, constant expressions, data
// directives, and a set of pseudo-instructions with fixed expansions so that
// instruction addresses are known after the first pass.
//
// # Source syntax
//
// One statement per line. Comments start with ';', '#' or "//" and run to
// the end of the line. A statement is an optional "label:" prefix followed
// by a directive or an instruction:
//
//	; compute a 5-tuple hash
//	.equ  BUCKETS, 1024
//	.text
//	.global process_packet
//	process_packet:
//	        lw    t0, 12(a0)        ; source address
//	        li    t1, BUCKETS-1
//	        and   t0, t0, t1
//	        beqz  t0, miss
//	        ret
//	miss:   halt
//
//	.data
//	table:  .word 0, 1, 2, 3
//	buf:    .space 64
//
// # Directives
//
//	.text            switch to the text segment
//	.data            switch to the data segment
//	.global NAME     mark NAME as an entry point (exported symbol)
//	.equ NAME, expr  define an assembly-time constant
//	.word e, ...     emit 32-bit little-endian values (data segment)
//	.half e, ...     emit 16-bit values
//	.byte e, ...     emit 8-bit values
//	.space n         emit n zero bytes
//	.align n         pad with zeros to an n-byte boundary
//	.ascii "s"       emit the bytes of s
//	.asciz "s"       emit the bytes of s plus a NUL
//
// # Pseudo-instructions
//
// Every pseudo-instruction has a fixed expansion size, so label addresses
// are exact after pass one:
//
//	nop                  addi zero, zero, 0
//	mv   rd, rs          addi rd, rs, 0
//	neg  rd, rs          sub  rd, zero, rs
//	li   rd, expr        lui+ori (always 2 instructions)
//	la   rd, label       lui+ori (always 2 instructions)
//	j    label           jal  zero, label
//	jr   rs              jalr zero, 0(rs)
//	call label           jal  ra, label
//	ret                  jalr zero, 0(ra)
//	beqz/bnez rs, label  beq/bne rs, zero, label
//	bltz/bgez rs, label  blt/bge rs, zero, label
//	bgtz/blez rs, label  blt/bge zero, rs, label
//	bgt/ble/bgtu/bleu rs, rt, label   swapped blt/bge/bltu/bgeu
//	seqz rd, rs          sltiu rd, rs, 1
//	snez rd, rs          sltu rd, zero, rs
//
// # Expressions
//
// Operands that accept constants take full expressions over integer
// literals (decimal, 0x hex, 0b binary, 'c' character), .equ constants and
// labels, with C-like operator precedence: * / %  then  + -  then  << >>
// then  &  then  ^  then  |, plus unary - and ~ and parentheses.
package asm

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/diag"
	"repro/internal/isa"
)

// DefaultTextBase is the address at which the text segment is placed unless
// overridden in Options. The value leaves page zero unmapped so that nil
// pointer dereferences in application code fault.
const DefaultTextBase = 0x00010000

// DefaultDataBase is the default placement of the data segment.
const DefaultDataBase = 0x10000000

// Options configures an assembly run.
type Options struct {
	// TextBase and DataBase set the load addresses of the two segments.
	// Zero values select DefaultTextBase and DefaultDataBase.
	TextBase uint32
	DataBase uint32
}

// Program is the output of the assembler: a loadable PB32 image.
type Program struct {
	TextBase uint32            // load address of the text segment
	Text     []isa.Instruction // decoded instructions, Text[i] at TextBase+4i
	Words    []uint32          // encoded machine words, parallel to Text

	DataBase uint32 // load address of the data segment
	Data     []byte // initialized data

	// Symbols maps every label to its absolute address. Constants defined
	// with .equ are not included.
	Symbols map[string]uint32
	// Globals lists the symbols declared with .global, in order.
	Globals []string
	// SourceLines[i] is the 1-based source line that produced Text[i];
	// pseudo-instruction expansions share their source line.
	SourceLines []int
	// LabelLines maps each label to the 1-based source line of its
	// definition.
	LabelLines map[string]int
	// Lint holds the assembler's style findings for an otherwise valid
	// program: labels that are defined but never referenced, and labels
	// that shadow a register or mnemonic name. The verifier (and pbvet)
	// surface these alongside its own diagnostics; they never fail
	// assembly.
	Lint diag.List
}

// LineFor returns the 1-based source line of the instruction at the
// given text address, or 0 if the address is outside the text segment.
func (p *Program) LineFor(addr uint32) int {
	if addr < p.TextBase || addr >= p.TextEnd() || addr%isa.WordSize != 0 {
		return 0
	}
	return p.SourceLines[(addr-p.TextBase)/isa.WordSize]
}

// TextEnd returns the first address past the text segment.
func (p *Program) TextEnd() uint32 {
	return p.TextBase + uint32(len(p.Text))*isa.WordSize
}

// DataEnd returns the first address past the initialized data segment.
func (p *Program) DataEnd() uint32 {
	return p.DataBase + uint32(len(p.Data))
}

// Symbol returns the address of a label, reporting whether it exists.
func (p *Program) Symbol(name string) (uint32, bool) {
	addr, ok := p.Symbols[name]
	return addr, ok
}

// InstrAt returns the instruction at the given text address.
func (p *Program) InstrAt(addr uint32) (isa.Instruction, bool) {
	if addr < p.TextBase || addr >= p.TextEnd() || addr%isa.WordSize != 0 {
		return isa.Instruction{}, false
	}
	return p.Text[(addr-p.TextBase)/isa.WordSize], true
}

// Listing renders a human-readable disassembly of the text segment with
// addresses, encoded words and label annotations.
func (p *Program) Listing() string {
	// Invert the symbol table for annotation.
	labels := make(map[uint32][]string)
	for name, addr := range p.Symbols {
		labels[addr] = append(labels[addr], name)
	}
	var b strings.Builder
	for i, in := range p.Text {
		addr := p.TextBase + uint32(i)*isa.WordSize
		for _, l := range labels[addr] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "  %08x:  %08x  %s\n", addr, p.Words[i], isa.Disassemble(addr, in))
	}
	return b.String()
}

// Error describes an assembly failure at a source line.
type Error struct {
	Line int    // 1-based source line
	Msg  string // description
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

// Assemble assembles PB32 source into a loadable Program. All errors found
// are reported, joined with errors.Join.
func Assemble(src string, opts Options) (*Program, error) {
	if opts.TextBase == 0 {
		opts.TextBase = DefaultTextBase
	}
	if opts.DataBase == 0 {
		opts.DataBase = DefaultDataBase
	}
	if opts.TextBase%isa.WordSize != 0 {
		return nil, fmt.Errorf("asm: text base %#x is not word aligned", opts.TextBase)
	}
	a := &assembler{
		opts: opts,
		prog: &Program{
			TextBase:   opts.TextBase,
			DataBase:   opts.DataBase,
			Symbols:    make(map[string]uint32),
			LabelLines: make(map[string]int),
		},
		consts:    make(map[string]int64),
		labelRefs: make(map[string]bool),
	}
	a.run(src)
	if len(a.errs) > 0 {
		return nil, errors.Join(a.errs...)
	}
	return a.prog, nil
}

// statement is one parsed source statement retained between passes.
type statement struct {
	line     int      // 1-based source line
	label    string   // label defined on this line, if any
	mnemonic string   // directive (leading '.') or instruction mnemonic
	operands []string // raw operand strings, comma split
}

type segKind int

const (
	segText segKind = iota
	segData
)

type assembler struct {
	opts      Options
	prog      *Program
	consts    map[string]int64 // .equ constants
	labelRefs map[string]bool  // labels resolved by some expression or .global
	errs      []error
}

func (a *assembler) errorf(line int, format string, args ...any) {
	a.errs = append(a.errs, &Error{Line: line, Msg: fmt.Sprintf(format, args...)})
}

func (a *assembler) run(src string) {
	stmts := a.parseLines(src)
	if len(a.errs) > 0 {
		return
	}
	a.passOne(stmts)
	if len(a.errs) > 0 {
		return
	}
	a.passTwo(stmts)
	if len(a.errs) == 0 {
		a.lint()
	}
}

// lint records style findings for a successfully assembled program:
// defined-but-unreferenced labels (dead code, or a host-interface anchor
// missing its .global) and labels that shadow a register or mnemonic
// name (legal, but a branch to "ra" or "ret" reads like the register or
// instruction, not the label).
func (a *assembler) lint() {
	names := make([]string, 0, len(a.prog.Symbols))
	for name := range a.prog.Symbols {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		return a.prog.LabelLines[names[i]] < a.prog.LabelLines[names[j]]
	})
	for _, name := range names {
		line := a.prog.LabelLines[name]
		if _, isReg := isa.ParseReg(name); isReg || instrSize(name) >= 0 {
			a.prog.Lint = append(a.prog.Lint, diag.Diagnostic{
				Severity: diag.Warning, Check: "shadowed-name", Line: line,
				Msg: fmt.Sprintf("label %q shadows a register or instruction mnemonic", name),
			})
		}
		if !a.labelRefs[name] {
			a.prog.Lint = append(a.prog.Lint, diag.Diagnostic{
				Severity: diag.Warning, Check: "unused-label", Line: line,
				Msg: fmt.Sprintf("label %q is defined but never referenced (declare it .global if it is a host-interface anchor)", name),
			})
		}
	}
}

// parseLines splits the source into statements, handling comments and
// labels. Operand text is kept raw for the later passes.
func (a *assembler) parseLines(src string) []statement {
	var stmts []statement
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		st := statement{line: lineNo + 1}
		// Labels: "name:" possibly followed by a statement. A colon inside
		// a string literal (.ascii) must not be mistaken for a label, so
		// only accept label characters before the colon.
		if i := strings.IndexByte(line, ':'); i >= 0 && isIdent(line[:i]) {
			st.label = line[:i]
			line = strings.TrimSpace(line[i+1:])
		}
		if line != "" {
			fields := strings.SplitN(strings.ReplaceAll(line, "\t", " "), " ", 2)
			st.mnemonic = strings.ToLower(strings.TrimSpace(fields[0]))
			if len(fields) > 1 {
				st.operands = splitOperands(fields[1])
			}
		}
		if st.label == "" && st.mnemonic == "" {
			continue
		}
		stmts = append(stmts, st)
	}
	return stmts
}

// stripComment removes ';', '#' and "//" comments, respecting string
// literals in .ascii directives and character literals in expressions
// (so `addi a0, zero, '#'` keeps its operand).
func stripComment(s string) string {
	inStr := false
	inChar := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inChar:
			if c == '\\' {
				i++
			} else if c == '\'' {
				inChar = false
			}
		case c == '"':
			inStr = !inStr
		case inStr && c == '\\':
			i++ // skip escaped char
		case !inStr && c == '\'':
			inChar = true
		case !inStr && (c == ';' || c == '#'):
			return s[:i]
		case !inStr && c == '/' && i+1 < len(s) && s[i+1] == '/':
			return s[:i]
		}
	}
	return s
}

// splitOperands splits on commas at paren/quote depth zero and trims each
// piece.
func splitOperands(s string) []string {
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"':
			inStr = !inStr
		case inStr && c == '\\':
			i++
		case inStr:
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == ',' && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	if tail := strings.TrimSpace(s[start:]); tail != "" || len(out) > 0 {
		out = append(out, tail)
	}
	return out
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// instrSize returns the number of machine instructions a mnemonic expands
// to, or -1 if the mnemonic is unknown.
func instrSize(mnemonic string) int {
	if _, ok := isa.ParseOpcode(mnemonic); ok {
		return 1
	}
	switch mnemonic {
	case "nop", "mv", "neg", "j", "jr", "call", "ret",
		"beqz", "bnez", "bltz", "bgez", "bgtz", "blez",
		"bgt", "ble", "bgtu", "bleu", "seqz", "snez":
		return 1
	case "li", "la":
		return 2
	}
	return -1
}

// passOne sizes every statement and assigns addresses to labels and .equ
// constants that do not depend on forward label references.
func (a *assembler) passOne(stmts []statement) {
	seg := segText
	textOff := uint32(0) // byte offset within text
	dataOff := uint32(0)
	defineLabel := func(st statement) {
		if st.label == "" {
			return
		}
		if _, dup := a.prog.Symbols[st.label]; dup {
			a.errorf(st.line, "duplicate label %q", st.label)
			return
		}
		if _, dup := a.consts[st.label]; dup {
			a.errorf(st.line, "label %q collides with .equ constant", st.label)
			return
		}
		a.prog.LabelLines[st.label] = st.line
		if seg == segText {
			a.prog.Symbols[st.label] = a.opts.TextBase + textOff
		} else {
			a.prog.Symbols[st.label] = a.opts.DataBase + dataOff
		}
	}
	for _, st := range stmts {
		if strings.HasPrefix(st.mnemonic, ".") {
			switch st.mnemonic {
			case ".text":
				seg = segText
				defineLabel(st)
			case ".data":
				seg = segData
				defineLabel(st)
			case ".global", ".globl":
				defineLabel(st)
				if len(st.operands) != 1 || !isIdent(st.operands[0]) {
					a.errorf(st.line, ".global requires one symbol name")
					continue
				}
				a.prog.Globals = append(a.prog.Globals, st.operands[0])
				// Exporting a symbol counts as a reference: host code
				// resolves it by name.
				a.labelRefs[st.operands[0]] = true
			case ".equ", ".set":
				defineLabel(st)
				if len(st.operands) != 2 || !isIdent(st.operands[0]) {
					a.errorf(st.line, ".equ requires a name and a value")
					continue
				}
				name := st.operands[0]
				if _, dup := a.consts[name]; dup {
					a.errorf(st.line, "duplicate constant %q", name)
					continue
				}
				if _, dup := a.prog.Symbols[name]; dup {
					a.errorf(st.line, "constant %q collides with a label", name)
					continue
				}
				// .equ values may reference earlier constants only; labels
				// are not yet final so they are rejected here.
				v, err := a.eval(st.operands[1], nil)
				if err != nil {
					a.errorf(st.line, ".equ %s: %v", name, err)
					continue
				}
				a.consts[name] = v
			case ".word", ".half", ".byte", ".space", ".align", ".ascii", ".asciz":
				if seg != segData {
					a.errorf(st.line, "%s only allowed in the data segment", st.mnemonic)
					continue
				}
				defineLabel(st)
				n, err := a.dataSize(st, dataOff)
				if err != nil {
					a.errorf(st.line, "%v", err)
					continue
				}
				dataOff += n
			default:
				a.errorf(st.line, "unknown directive %q", st.mnemonic)
			}
			continue
		}
		defineLabel(st)
		if st.mnemonic == "" {
			continue
		}
		if seg != segText {
			a.errorf(st.line, "instruction %q in data segment", st.mnemonic)
			continue
		}
		n := instrSize(st.mnemonic)
		if n < 0 {
			a.errorf(st.line, "unknown instruction %q", st.mnemonic)
			continue
		}
		textOff += uint32(n) * isa.WordSize
	}
}

// dataSize computes the size in bytes of a data directive. Expression
// values are not needed for sizing except for .space and .align.
func (a *assembler) dataSize(st statement, off uint32) (uint32, error) {
	switch st.mnemonic {
	case ".word":
		return 4 * uint32(len(st.operands)), nil
	case ".half":
		return 2 * uint32(len(st.operands)), nil
	case ".byte":
		return uint32(len(st.operands)), nil
	case ".space":
		if len(st.operands) != 1 {
			return 0, fmt.Errorf(".space requires one operand")
		}
		v, err := a.eval(st.operands[0], nil)
		if err != nil {
			return 0, err
		}
		if v < 0 || v > 1<<28 {
			return 0, fmt.Errorf(".space size %d out of range", v)
		}
		return uint32(v), nil
	case ".align":
		if len(st.operands) != 1 {
			return 0, fmt.Errorf(".align requires one operand")
		}
		v, err := a.eval(st.operands[0], nil)
		if err != nil {
			return 0, err
		}
		if v <= 0 || v&(v-1) != 0 {
			return 0, fmt.Errorf(".align argument %d must be a positive power of two", v)
		}
		aligned := (off + uint32(v) - 1) &^ (uint32(v) - 1)
		return aligned - off, nil
	case ".ascii", ".asciz":
		if len(st.operands) != 1 {
			return 0, fmt.Errorf("%s requires one string operand", st.mnemonic)
		}
		s, err := parseString(st.operands[0])
		if err != nil {
			return 0, err
		}
		n := uint32(len(s))
		if st.mnemonic == ".asciz" {
			n++
		}
		return n, nil
	}
	return 0, fmt.Errorf("internal: not a data directive: %s", st.mnemonic)
}

// passTwo emits code and data with the complete symbol table available.
func (a *assembler) passTwo(stmts []statement) {
	seg := segText
	for _, st := range stmts {
		if strings.HasPrefix(st.mnemonic, ".") {
			switch st.mnemonic {
			case ".text":
				seg = segText
			case ".data":
				seg = segData
			case ".global", ".globl", ".equ", ".set":
				// handled in pass one
			default:
				a.emitData(st)
			}
			continue
		}
		if st.mnemonic == "" || seg != segText {
			continue
		}
		a.emitInstr(st)
	}
	// Verify globals resolve.
	for _, g := range a.prog.Globals {
		if _, ok := a.prog.Symbols[g]; !ok {
			a.errs = append(a.errs, fmt.Errorf("asm: .global %s: undefined symbol", g))
		}
	}
}

func (a *assembler) emitData(st statement) {
	emitN := func(v int64, n int, line int) {
		// Range check against both signed and unsigned interpretations.
		min := -(int64(1) << (uint(n)*8 - 1))
		max := int64(1)<<(uint(n)*8) - 1
		if v < min || v > max {
			a.errorf(line, "value %d does not fit in %d bytes", v, n)
			return
		}
		for i := 0; i < n; i++ {
			a.prog.Data = append(a.prog.Data, byte(uint64(v)>>(8*uint(i))))
		}
	}
	switch st.mnemonic {
	case ".word", ".half", ".byte":
		n := map[string]int{".word": 4, ".half": 2, ".byte": 1}[st.mnemonic]
		for _, opnd := range st.operands {
			v, err := a.eval(opnd, a.prog.Symbols)
			if err != nil {
				a.errorf(st.line, "%v", err)
				return
			}
			emitN(v, n, st.line)
		}
	case ".space":
		v, _ := a.eval(st.operands[0], a.prog.Symbols)
		a.prog.Data = append(a.prog.Data, make([]byte, v)...)
	case ".align":
		v, _ := a.eval(st.operands[0], a.prog.Symbols)
		off := uint32(len(a.prog.Data))
		aligned := (off + uint32(v) - 1) &^ (uint32(v) - 1)
		a.prog.Data = append(a.prog.Data, make([]byte, aligned-off)...)
	case ".ascii", ".asciz":
		s, err := parseString(st.operands[0])
		if err != nil {
			a.errorf(st.line, "%v", err)
			return
		}
		a.prog.Data = append(a.prog.Data, s...)
		if st.mnemonic == ".asciz" {
			a.prog.Data = append(a.prog.Data, 0)
		}
	}
}

// emit appends one machine instruction.
func (a *assembler) emit(st statement, in isa.Instruction) {
	w, err := isa.Encode(in)
	if err != nil {
		a.errorf(st.line, "%v", err)
		w = 0
	}
	a.prog.Text = append(a.prog.Text, in)
	a.prog.Words = append(a.prog.Words, w)
	a.prog.SourceLines = append(a.prog.SourceLines, st.line)
}

// pc returns the address of the next instruction to be emitted.
func (a *assembler) pc() uint32 {
	return a.prog.TextBase + uint32(len(a.prog.Text))*isa.WordSize
}

// operand parsing helpers ---------------------------------------------------

func (a *assembler) reg(st statement, s string) isa.Reg {
	r, ok := isa.ParseReg(s)
	if !ok {
		a.errorf(st.line, "invalid register %q", s)
	}
	return r
}

// memOperand parses "offset(reg)" where offset is an optional expression.
func (a *assembler) memOperand(st statement, s string) (int32, isa.Reg) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		a.errorf(st.line, "invalid memory operand %q, want offset(reg)", s)
		return 0, 0
	}
	offStr := strings.TrimSpace(s[:open])
	regStr := strings.TrimSpace(s[open+1 : len(s)-1])
	off := int64(0)
	if offStr != "" {
		v, err := a.eval(offStr, a.prog.Symbols)
		if err != nil {
			a.errorf(st.line, "%v", err)
			return 0, 0
		}
		off = v
	}
	if off < isa.MinImm12 || off > isa.MaxImm12 {
		a.errorf(st.line, "memory offset %d out of 12-bit range", off)
		return 0, 0
	}
	return int32(off), a.reg(st, regStr)
}

// immediate evaluates an expression operand and range checks it.
func (a *assembler) immediate(st statement, s string, min, max int64) int32 {
	v, err := a.eval(s, a.prog.Symbols)
	if err != nil {
		a.errorf(st.line, "%v", err)
		return 0
	}
	if v < min || v > max {
		a.errorf(st.line, "immediate %d out of range [%d, %d]", v, min, max)
		return 0
	}
	return int32(v)
}

// branchTarget resolves a label (or expression) to a pc-relative word
// offset for branch instructions.
func (a *assembler) branchTarget(st statement, s string) int32 {
	v, err := a.eval(s, a.prog.Symbols)
	if err != nil {
		a.errorf(st.line, "%v", err)
		return 0
	}
	target := uint32(v)
	if target%isa.WordSize != 0 {
		a.errorf(st.line, "branch target %#x is not word aligned", target)
		return 0
	}
	diff := (int64(target) - int64(a.pc()) - isa.WordSize) / isa.WordSize
	return int32(diff)
}

func (a *assembler) wantOperands(st statement, n int) bool {
	if len(st.operands) != n {
		a.errorf(st.line, "%s requires %d operands, got %d", st.mnemonic, n, len(st.operands))
		return false
	}
	return true
}

func (a *assembler) emitInstr(st statement) {
	if op, ok := isa.ParseOpcode(st.mnemonic); ok {
		a.emitNative(st, op)
		return
	}
	a.emitPseudo(st)
}

func (a *assembler) emitNative(st statement, op isa.Opcode) {
	switch op.Format() {
	case isa.FormatR:
		if !a.wantOperands(st, 3) {
			return
		}
		a.emit(st, isa.Instruction{Op: op,
			Rd: a.reg(st, st.operands[0]), Rs1: a.reg(st, st.operands[1]), Rs2: a.reg(st, st.operands[2])})
	case isa.FormatI:
		if op.IsLoad() || op == isa.JALR {
			if !a.wantOperands(st, 2) {
				return
			}
			off, base := a.memOperand(st, st.operands[1])
			a.emit(st, isa.Instruction{Op: op, Rd: a.reg(st, st.operands[0]), Rs1: base, Imm: off})
			return
		}
		if !a.wantOperands(st, 3) {
			return
		}
		min, max := int64(isa.MinImm12), int64(isa.MaxImm12)
		if op == isa.ANDI || op == isa.ORI || op == isa.XORI {
			min, max = 0, isa.MaxUimm12
		}
		if op == isa.SLLI || op == isa.SRLI || op == isa.SRAI {
			min, max = 0, 31
		}
		a.emit(st, isa.Instruction{Op: op,
			Rd: a.reg(st, st.operands[0]), Rs1: a.reg(st, st.operands[1]),
			Imm: a.immediate(st, st.operands[2], min, max)})
	case isa.FormatS:
		if !a.wantOperands(st, 2) {
			return
		}
		off, base := a.memOperand(st, st.operands[1])
		a.emit(st, isa.Instruction{Op: op, Rd: a.reg(st, st.operands[0]), Rs1: base, Imm: off})
	case isa.FormatB:
		if !a.wantOperands(st, 3) {
			return
		}
		a.emit(st, isa.Instruction{Op: op,
			Rs1: a.reg(st, st.operands[0]), Rs2: a.reg(st, st.operands[1]),
			Imm: a.branchTarget(st, st.operands[2])})
	case isa.FormatU:
		if !a.wantOperands(st, 2) {
			return
		}
		a.emit(st, isa.Instruction{Op: op, Rd: a.reg(st, st.operands[0]),
			Imm: a.immediate(st, st.operands[1], 0, isa.MaxUimm20)})
	case isa.FormatJ:
		if !a.wantOperands(st, 2) {
			return
		}
		a.emit(st, isa.Instruction{Op: op, Rd: a.reg(st, st.operands[0]),
			Imm: a.branchTarget(st, st.operands[1])})
	case isa.FormatN:
		if !a.wantOperands(st, 0) {
			return
		}
		a.emit(st, isa.Instruction{Op: op})
	}
}

func (a *assembler) emitPseudo(st statement) {
	switch st.mnemonic {
	case "nop":
		if a.wantOperands(st, 0) {
			a.emit(st, isa.Instruction{Op: isa.ADDI})
		}
	case "mv":
		if a.wantOperands(st, 2) {
			a.emit(st, isa.Instruction{Op: isa.ADDI,
				Rd: a.reg(st, st.operands[0]), Rs1: a.reg(st, st.operands[1])})
		}
	case "neg":
		if a.wantOperands(st, 2) {
			a.emit(st, isa.Instruction{Op: isa.SUB,
				Rd: a.reg(st, st.operands[0]), Rs2: a.reg(st, st.operands[1])})
		}
	case "li", "la":
		if !a.wantOperands(st, 2) {
			return
		}
		rd := a.reg(st, st.operands[0])
		v, err := a.eval(st.operands[1], a.prog.Symbols)
		if err != nil {
			a.errorf(st.line, "%v", err)
			return
		}
		if v < -(1<<31) || v > (1<<32)-1 {
			a.errorf(st.line, "constant %d does not fit in 32 bits", v)
			return
		}
		u := uint32(v)
		a.emit(st, isa.Instruction{Op: isa.LUI, Rd: rd, Imm: int32(u >> 12)})
		a.emit(st, isa.Instruction{Op: isa.ORI, Rd: rd, Rs1: rd, Imm: int32(u & 0xFFF)})
	case "j":
		if a.wantOperands(st, 1) {
			a.emit(st, isa.Instruction{Op: isa.JAL, Rd: isa.Zero, Imm: a.branchTarget(st, st.operands[0])})
		}
	case "jr":
		if a.wantOperands(st, 1) {
			a.emit(st, isa.Instruction{Op: isa.JALR, Rd: isa.Zero, Rs1: a.reg(st, st.operands[0])})
		}
	case "call":
		if a.wantOperands(st, 1) {
			a.emit(st, isa.Instruction{Op: isa.JAL, Rd: isa.RA, Imm: a.branchTarget(st, st.operands[0])})
		}
	case "ret":
		if a.wantOperands(st, 0) {
			a.emit(st, isa.Instruction{Op: isa.JALR, Rd: isa.Zero, Rs1: isa.RA})
		}
	case "beqz", "bnez", "bltz", "bgez":
		if !a.wantOperands(st, 2) {
			return
		}
		op := map[string]isa.Opcode{"beqz": isa.BEQ, "bnez": isa.BNE, "bltz": isa.BLT, "bgez": isa.BGE}[st.mnemonic]
		a.emit(st, isa.Instruction{Op: op,
			Rs1: a.reg(st, st.operands[0]), Rs2: isa.Zero,
			Imm: a.branchTarget(st, st.operands[1])})
	case "bgtz", "blez":
		if !a.wantOperands(st, 2) {
			return
		}
		op := isa.BLT
		if st.mnemonic == "blez" {
			op = isa.BGE
		}
		a.emit(st, isa.Instruction{Op: op,
			Rs1: isa.Zero, Rs2: a.reg(st, st.operands[0]),
			Imm: a.branchTarget(st, st.operands[1])})
	case "bgt", "ble", "bgtu", "bleu":
		if !a.wantOperands(st, 3) {
			return
		}
		op := map[string]isa.Opcode{"bgt": isa.BLT, "ble": isa.BGE, "bgtu": isa.BLTU, "bleu": isa.BGEU}[st.mnemonic]
		// Swap the comparands: bgt rs, rt == blt rt, rs.
		a.emit(st, isa.Instruction{Op: op,
			Rs1: a.reg(st, st.operands[1]), Rs2: a.reg(st, st.operands[0]),
			Imm: a.branchTarget(st, st.operands[2])})
	case "seqz":
		if a.wantOperands(st, 2) {
			a.emit(st, isa.Instruction{Op: isa.SLTIU,
				Rd: a.reg(st, st.operands[0]), Rs1: a.reg(st, st.operands[1]), Imm: 1})
		}
	case "snez":
		if a.wantOperands(st, 2) {
			a.emit(st, isa.Instruction{Op: isa.SLTU,
				Rd: a.reg(st, st.operands[0]), Rs1: isa.Zero, Rs2: a.reg(st, st.operands[1])})
		}
	default:
		a.errorf(st.line, "unknown instruction %q", st.mnemonic)
	}
}

func parseString(s string) (string, error) {
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("invalid string literal %q", s)
	}
	body := s[1 : len(s)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("trailing backslash in string literal")
		}
		switch body[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case '0':
			b.WriteByte(0)
		case '\\', '"':
			b.WriteByte(body[i])
		default:
			return "", fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return b.String(), nil
}
