package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src, Options{})
	if err != nil {
		t.Fatalf("Assemble failed: %v", err)
	}
	return p
}

func TestAssembleBasic(t *testing.T) {
	p := mustAssemble(t, `
		.text
		.global start
	start:
		addi  a0, zero, 5
		add   a1, a0, a0
		halt
	`)
	if len(p.Text) != 3 {
		t.Fatalf("got %d instructions, want 3", len(p.Text))
	}
	want := []isa.Instruction{
		{Op: isa.ADDI, Rd: isa.A0, Rs1: isa.Zero, Imm: 5},
		{Op: isa.ADD, Rd: isa.A1, Rs1: isa.A0, Rs2: isa.A0},
		{Op: isa.HALT},
	}
	for i, w := range want {
		if p.Text[i] != w {
			t.Errorf("instr %d = %+v, want %+v", i, p.Text[i], w)
		}
	}
	if addr, ok := p.Symbol("start"); !ok || addr != DefaultTextBase {
		t.Errorf("start = %#x, %v; want %#x, true", addr, ok, uint32(DefaultTextBase))
	}
	if len(p.Globals) != 1 || p.Globals[0] != "start" {
		t.Errorf("Globals = %v, want [start]", p.Globals)
	}
}

func TestAssembleComments(t *testing.T) {
	p := mustAssemble(t, `
		; a semicolon comment
		# a hash comment
		// a slash comment
		addi a0, zero, 1   ; trailing
		addi a0, zero, 2   # trailing
		addi a0, zero, 3   // trailing
	`)
	if len(p.Text) != 3 {
		t.Fatalf("got %d instructions, want 3", len(p.Text))
	}
	for i, in := range p.Text {
		if in.Imm != int32(i+1) {
			t.Errorf("instr %d imm = %d, want %d", i, in.Imm, i+1)
		}
	}
}

func TestAssembleBranchOffsets(t *testing.T) {
	p := mustAssemble(t, `
	loop:
		addi  t0, t0, 1
		bne   t0, t1, loop
		beq   t0, t1, done
		nop
	done:
		halt
	`)
	// bne at index 1 targets index 0: offset = 0 - (1+1) = -2.
	if got := p.Text[1]; got.Op != isa.BNE || got.Imm != -2 {
		t.Errorf("bne = %+v, want offset -2", got)
	}
	// beq at index 2 targets index 4: offset = 4 - (2+1) = 1.
	if got := p.Text[2]; got.Op != isa.BEQ || got.Imm != 1 {
		t.Errorf("beq = %+v, want offset 1", got)
	}
}

func TestAssembleForwardAndBackwardCalls(t *testing.T) {
	p := mustAssemble(t, `
	main:
		call  helper
		halt
	helper:
		ret
	`)
	if got := p.Text[0]; got.Op != isa.JAL || got.Rd != isa.RA || got.Imm != 1 {
		t.Errorf("call = %+v, want jal ra, +1", got)
	}
	if got := p.Text[2]; got.Op != isa.JALR || got.Rd != isa.Zero || got.Rs1 != isa.RA {
		t.Errorf("ret = %+v, want jalr zero, 0(ra)", got)
	}
}

func TestAssemblePseudoLi(t *testing.T) {
	p := mustAssemble(t, `
		li a0, 0x12345678
		li a1, 7
		li a2, -1
	`)
	if len(p.Text) != 6 {
		t.Fatalf("li must expand to exactly 2 instructions each, got %d total", len(p.Text))
	}
	// 0x12345678 = lui 0x12345; ori 0x678.
	if p.Text[0] != (isa.Instruction{Op: isa.LUI, Rd: isa.A0, Imm: 0x12345}) {
		t.Errorf("li hi = %+v", p.Text[0])
	}
	if p.Text[1] != (isa.Instruction{Op: isa.ORI, Rd: isa.A0, Rs1: isa.A0, Imm: 0x678}) {
		t.Errorf("li lo = %+v", p.Text[1])
	}
	// -1 = 0xFFFFFFFF = lui 0xFFFFF; ori 0xFFF.
	if p.Text[4] != (isa.Instruction{Op: isa.LUI, Rd: isa.A2, Imm: 0xFFFFF}) {
		t.Errorf("li -1 hi = %+v", p.Text[4])
	}
	if p.Text[5] != (isa.Instruction{Op: isa.ORI, Rd: isa.A2, Rs1: isa.A2, Imm: 0xFFF}) {
		t.Errorf("li -1 lo = %+v", p.Text[5])
	}
}

func TestAssembleLaResolvesDataLabel(t *testing.T) {
	p := mustAssemble(t, `
		.data
	table:
		.word 1, 2, 3
		.text
	entry:
		la  s0, table
		halt
	`)
	addr, ok := p.Symbol("table")
	if !ok || addr != DefaultDataBase {
		t.Fatalf("table = %#x, %v", addr, ok)
	}
	if p.Text[0].Op != isa.LUI || uint32(p.Text[0].Imm) != addr>>12 {
		t.Errorf("la hi = %+v, want lui of %#x", p.Text[0], addr>>12)
	}
	if p.Text[1].Op != isa.ORI || uint32(p.Text[1].Imm) != addr&0xFFF {
		t.Errorf("la lo = %+v", p.Text[1])
	}
}

func TestAssembleDataDirectives(t *testing.T) {
	p := mustAssemble(t, `
		.data
	words:  .word 0x11223344, -1
	halves: .half 0xBEEF
	bytes:  .byte 1, 2, 3
	        .align 4
	gap:    .space 8
	s:      .asciz "hi\n"
	`)
	want := []byte{
		0x44, 0x33, 0x22, 0x11, // 0x11223344 little endian
		0xFF, 0xFF, 0xFF, 0xFF, // -1
		0xEF, 0xBE, // 0xBEEF
		1, 2, 3, // bytes
		0, 0, 0, // align padding from offset 13 to 16
		0, 0, 0, 0, 0, 0, 0, 0, // space
		'h', 'i', '\n', 0, // asciz
	}
	if len(p.Data) != len(want) {
		t.Fatalf("data length = %d, want %d (%v)", len(p.Data), len(want), p.Data)
	}
	for i := range want {
		if p.Data[i] != want[i] {
			t.Errorf("data[%d] = %#x, want %#x", i, p.Data[i], want[i])
		}
	}
	checkSym := func(name string, off uint32) {
		t.Helper()
		if a, ok := p.Symbol(name); !ok || a != DefaultDataBase+off {
			t.Errorf("%s = %#x, %v; want %#x", name, a, ok, DefaultDataBase+off)
		}
	}
	checkSym("words", 0)
	checkSym("halves", 8)
	checkSym("bytes", 10)
	checkSym("gap", 16)
	checkSym("s", 24)
}

func TestAssembleEqu(t *testing.T) {
	p := mustAssemble(t, `
		.equ  SIZE, 16
		.equ  MASK, SIZE - 1
		.equ  BIG,  1 << 20
		andi  t0, t0, MASK
		li    t1, BIG | 3
	`)
	if p.Text[0].Imm != 15 {
		t.Errorf("MASK = %d, want 15", p.Text[0].Imm)
	}
	// BIG|3 = 0x100003: lui 0x100, ori 0x003.
	if p.Text[1].Imm != 0x100 || p.Text[2].Imm != 0x003 {
		t.Errorf("BIG|3 expanded to lui %#x / ori %#x", p.Text[1].Imm, p.Text[2].Imm)
	}
}

func TestAssembleExpressions(t *testing.T) {
	cases := []struct {
		expr string
		want int32
	}{
		{"1+2*3", 7},
		{"(1+2)*3", 9},
		{"0x10|0x01", 17},
		{"0b1010", 10},
		{"'A'", 65},
		{"'\\n'", 10},
		{"8/2-1", 3},
		{"7%4", 3},
		{"1<<4", 16},
		{"256>>4", 16},
		{"-(4)+10", 6},
		{"~0 & 0xFF", 255},
		{"6 ^ 3", 5},
		{"1_000", 1000},
	}
	for _, c := range cases {
		p := mustAssemble(t, "addi t0, zero, "+c.expr)
		if p.Text[0].Imm != c.want {
			t.Errorf("expr %q = %d, want %d", c.expr, p.Text[0].Imm, c.want)
		}
	}
}

func TestAssembleMemOperands(t *testing.T) {
	p := mustAssemble(t, `
		.equ OFF, 12
		lw  a0, 4(a1)
		lw  a0, (a1)
		lw  a0, OFF(a1)
		lw  a0, -8(sp)
		sw  a0, OFF+4(a1)
	`)
	wantImms := []int32{4, 0, 12, -8, 16}
	for i, want := range wantImms {
		if p.Text[i].Imm != want {
			t.Errorf("instr %d imm = %d, want %d", i, p.Text[i].Imm, want)
		}
	}
	if p.Text[4].Op != isa.SW || p.Text[4].Rd != isa.A0 || p.Text[4].Rs1 != isa.A1 {
		t.Errorf("store = %+v", p.Text[4])
	}
}

func TestAssemblePseudoBranches(t *testing.T) {
	p := mustAssemble(t, `
	top:
		beqz  a0, top
		bnez  a0, top
		bltz  a0, top
		bgez  a0, top
		bgtz  a0, top
		blez  a0, top
		bgt   a0, a1, top
		ble   a0, a1, top
		bgtu  a0, a1, top
		bleu  a0, a1, top
		seqz  a2, a0
		snez  a2, a0
	`)
	wantOps := []isa.Opcode{isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLT, isa.BGE,
		isa.BLT, isa.BGE, isa.BLTU, isa.BGEU, isa.SLTIU, isa.SLTU}
	for i, op := range wantOps {
		if p.Text[i].Op != op {
			t.Errorf("instr %d op = %v, want %v", i, p.Text[i].Op, op)
		}
	}
	// bgtz swaps: blt zero, a0.
	if p.Text[4].Rs1 != isa.Zero || p.Text[4].Rs2 != isa.A0 {
		t.Errorf("bgtz = %+v, want swapped operands", p.Text[4])
	}
	// bgt a0, a1 => blt a1, a0.
	if p.Text[6].Rs1 != isa.A1 || p.Text[6].Rs2 != isa.A0 {
		t.Errorf("bgt = %+v, want swapped operands", p.Text[6])
	}
}

func TestAssembleWordsEncodeText(t *testing.T) {
	p := mustAssemble(t, `
		addi a0, zero, 42
		halt
	`)
	if len(p.Words) != len(p.Text) {
		t.Fatalf("Words/Text length mismatch: %d vs %d", len(p.Words), len(p.Text))
	}
	for i, w := range p.Words {
		in, err := isa.Decode(w)
		if err != nil || in != p.Text[i] {
			t.Errorf("word %d: decode(%#08x) = %+v, %v; want %+v", i, w, in, err, p.Text[i])
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		frag string // expected substring of the error
	}{
		{"unknown instruction", "frobnicate a0, a1", "unknown instruction"},
		{"unknown directive", ".frob 1", "unknown directive"},
		{"bad register", "add a0, a1, q9", "invalid register"},
		{"undefined label", "j nowhere", "undefined symbol"},
		{"duplicate label", "x:\nnop\nx:\nnop", "duplicate label"},
		{"imm overflow", "addi a0, zero, 5000", "out of range"},
		{"wrong operand count", "add a0, a1", "requires 3 operands"},
		{"instr in data", ".data\nadd a0, a1, a2", "data segment"},
		{"word in text", ".word 5", "data segment"},
		{"bad mem operand", "lw a0, a1", "memory operand"},
		{"division by zero", "addi a0, zero, 1/0", "division by zero"},
		{"equ with forward label", ".equ X, later\nnop\nlater: nop", "labels not allowed"},
		{"duplicate equ", ".equ A, 1\n.equ A, 2", "duplicate constant"},
		{"unterminated expr", "addi a0, zero, (1+2", "missing ')'"},
		{"global undefined", ".global nope\nnop", "undefined symbol"},
		{"shift too far", "addi a0, zero, 1<<99", "shift amount"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src, Options{})
			if err == nil {
				t.Fatalf("Assemble(%q) succeeded, want error containing %q", c.src, c.frag)
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Errorf("error %q does not contain %q", err.Error(), c.frag)
			}
		})
	}
}

func TestAssembleCustomBases(t *testing.T) {
	p, err := Assemble("entry: nop\n.data\nd: .word 1", Options{TextBase: 0x4000, DataBase: 0x8000})
	if err != nil {
		t.Fatal(err)
	}
	if a, _ := p.Symbol("entry"); a != 0x4000 {
		t.Errorf("entry = %#x, want 0x4000", a)
	}
	if a, _ := p.Symbol("d"); a != 0x8000 {
		t.Errorf("d = %#x, want 0x8000", a)
	}
	if p.TextEnd() != 0x4004 || p.DataEnd() != 0x8004 {
		t.Errorf("TextEnd=%#x DataEnd=%#x", p.TextEnd(), p.DataEnd())
	}
}

func TestAssembleUnalignedTextBase(t *testing.T) {
	if _, err := Assemble("nop", Options{TextBase: 0x1002}); err == nil {
		t.Error("unaligned text base accepted, want error")
	}
}

func TestInstrAt(t *testing.T) {
	p := mustAssemble(t, "addi a0, zero, 1\nhalt")
	if in, ok := p.InstrAt(DefaultTextBase); !ok || in.Op != isa.ADDI {
		t.Errorf("InstrAt(base) = %+v, %v", in, ok)
	}
	if in, ok := p.InstrAt(DefaultTextBase + 4); !ok || in.Op != isa.HALT {
		t.Errorf("InstrAt(base+4) = %+v, %v", in, ok)
	}
	if _, ok := p.InstrAt(DefaultTextBase + 8); ok {
		t.Error("InstrAt past end succeeded")
	}
	if _, ok := p.InstrAt(DefaultTextBase + 2); ok {
		t.Error("InstrAt unaligned succeeded")
	}
	if _, ok := p.InstrAt(DefaultTextBase - 4); ok {
		t.Error("InstrAt before base succeeded")
	}
}

func TestListing(t *testing.T) {
	p := mustAssemble(t, `
	start:
		addi a0, zero, 1
		halt
	`)
	l := p.Listing()
	if !strings.Contains(l, "start:") {
		t.Errorf("listing missing label:\n%s", l)
	}
	if !strings.Contains(l, "addi") || !strings.Contains(l, "halt") {
		t.Errorf("listing missing instructions:\n%s", l)
	}
}

func TestSourceLines(t *testing.T) {
	p := mustAssemble(t, "nop\nli a0, 0x123456\nhalt")
	if len(p.SourceLines) != 4 {
		t.Fatalf("SourceLines = %v", p.SourceLines)
	}
	want := []int{1, 2, 2, 3} // li spans two instructions, same line
	for i, w := range want {
		if p.SourceLines[i] != w {
			t.Errorf("SourceLines[%d] = %d, want %d", i, p.SourceLines[i], w)
		}
	}
}

// TestAssembleRoundTripThroughListing assembles, then checks each listed
// disassembly parses back to the same opcode (a smoke check that the
// listing is syntactically coherent).
func TestAssembleDisasmMnemonics(t *testing.T) {
	p := mustAssemble(t, `
		add  a0, a1, a2
		lw   t0, 4(sp)
		sw   t0, 8(sp)
		beq  a0, zero, end
		lui  s0, 0x10
	end:
		halt
	`)
	for i, in := range p.Text {
		text := isa.Disassemble(p.TextBase+uint32(i)*4, in)
		mnemonic := strings.Fields(text)[0]
		if _, ok := isa.ParseOpcode(mnemonic); !ok {
			t.Errorf("disassembly %q has unparseable mnemonic", text)
		}
	}
}

func TestCommentCharactersInLiterals(t *testing.T) {
	p := mustAssemble(t, `
		addi a0, zero, '#'   ; hash as a character
		addi a1, zero, ';'   # semicolon as a character
		.data
	s:	.ascii "a;b#c"
	`)
	if p.Text[0].Imm != '#' {
		t.Errorf("'#' literal = %d", p.Text[0].Imm)
	}
	if p.Text[1].Imm != ';' {
		t.Errorf("';' literal = %d", p.Text[1].Imm)
	}
	if string(p.Data) != "a;b#c" {
		t.Errorf("string with comment chars = %q", p.Data)
	}
}
