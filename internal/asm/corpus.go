package asm

// FuzzSeeds is the assembler's seed fuzz corpus. It is exported so the
// static verifier's soundness smoke test can check the same programs:
// any corpus program that assembles and executes to completion on the
// simulator must not be rejected (error severity) by the verifier.
var FuzzSeeds = []string{
	"",
	"nop",
	"addi a0, zero, 1\nhalt",
	"x: j x",
	".data\nv: .word 1\n.text\nla t0, v\nlw a0, 0(t0)\nret",
	".equ K, 1<<4\nandi t0, t0, K-1",
	"li a0, 0xFFFFFFFF",
	".data\ns: .asciz \"hi\\n\"",
	"beq a0, a1, nowhere",
	"lw a0, 4(",
	".align 3",
	"add a0, a1",
	"call f\nf: ret",
	"; comment only",
	".word 1",
	"label:",
	"\t.text\n\tsw a0, -4(sp)",
	"e:\naddi sp, sp, -8\nsw a0, 0(sp)\nlw a1, 4(sp)\naddi sp, sp, 8\nhalt",
	".global e\ne: beqz a0, out\naddi a0, zero, 2\nout: halt",
}
