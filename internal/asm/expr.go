package asm

import (
	"fmt"
	"strings"
)

// eval evaluates a constant expression. Symbols are resolved first against
// the .equ constant table and then against the provided label table; pass a
// nil label table to restrict the expression to constants (used while
// label addresses are not yet final).
//
// Grammar, lowest precedence first:
//
//	expr   := bitor
//	bitor  := bitxor ('|' bitxor)*
//	bitxor := bitand ('^' bitand)*
//	bitand := shift ('&' shift)*
//	shift  := addsub (('<<'|'>>') addsub)*
//	addsub := muldiv (('+'|'-') muldiv)*
//	muldiv := unary (('*'|'/'|'%') unary)*
//	unary  := ('-'|'~')* primary
//	primary:= integer | 'c' | symbol | '(' expr ')'
func (a *assembler) eval(s string, labels map[string]uint32) (int64, error) {
	p := &exprParser{src: s, consts: a.consts, labels: labels, refs: a.labelRefs}
	v, err := p.parseExpr()
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return 0, fmt.Errorf("unexpected %q in expression %q", p.src[p.pos:], s)
	}
	return v, nil
}

type exprParser struct {
	src    string
	pos    int
	consts map[string]int64
	labels map[string]uint32
	refs   map[string]bool // label-reference tracking for lint, may be nil
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

// peek returns the next non-space byte without consuming it, or 0 at end.
func (p *exprParser) peek() byte {
	p.skipSpace()
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

// accept consumes the literal token if it is next.
func (p *exprParser) accept(tok string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *exprParser) parseExpr() (int64, error) { return p.parseBinary(0) }

// binary operator precedence levels, lowest first. Shift appears before
// add/sub groups at a *lower* index because this table is ordered from
// loosest to tightest binding.
var precLevels = [][]string{
	{"|"},
	{"^"},
	{"&"},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *exprParser) parseBinary(level int) (int64, error) {
	if level == len(precLevels) {
		return p.parseUnary()
	}
	left, err := p.parseBinary(level + 1)
	if err != nil {
		return 0, err
	}
	for {
		matched := ""
		p.skipSpace()
		for _, op := range precLevels[level] {
			// Careful: "<<" must not be confused with "<", and "&" with
			// "&&" (we have no logical operators, so this is simple).
			if strings.HasPrefix(p.src[p.pos:], op) {
				matched = op
				break
			}
		}
		if matched == "" {
			return left, nil
		}
		p.pos += len(matched)
		right, err := p.parseBinary(level + 1)
		if err != nil {
			return 0, err
		}
		switch matched {
		case "|":
			left |= right
		case "^":
			left ^= right
		case "&":
			left &= right
		case "<<":
			if right < 0 || right > 63 {
				return 0, fmt.Errorf("shift amount %d out of range", right)
			}
			left <<= uint(right)
		case ">>":
			if right < 0 || right > 63 {
				return 0, fmt.Errorf("shift amount %d out of range", right)
			}
			left >>= uint(right)
		case "+":
			left += right
		case "-":
			left -= right
		case "*":
			left *= right
		case "/":
			if right == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			left /= right
		case "%":
			if right == 0 {
				return 0, fmt.Errorf("modulo by zero")
			}
			left %= right
		}
	}
}

func (p *exprParser) parseUnary() (int64, error) {
	if p.accept("-") {
		v, err := p.parseUnary()
		return -v, err
	}
	if p.accept("~") {
		v, err := p.parseUnary()
		return ^v, err
	}
	return p.parsePrimary()
}

func (p *exprParser) parsePrimary() (int64, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0, fmt.Errorf("unexpected end of expression %q", p.src)
	}
	c := p.src[p.pos]
	switch {
	case c == '(':
		p.pos++
		v, err := p.parseExpr()
		if err != nil {
			return 0, err
		}
		if !p.accept(")") {
			return 0, fmt.Errorf("missing ')' in expression %q", p.src)
		}
		return v, nil
	case c == '\'':
		return p.parseChar()
	case c >= '0' && c <= '9':
		return p.parseInt()
	case isIdentStart(c):
		return p.parseSymbol()
	}
	return 0, fmt.Errorf("unexpected %q in expression %q", string(c), p.src)
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == '.'
}

func (p *exprParser) parseChar() (int64, error) {
	// p.src[p.pos] == '\''
	rest := p.src[p.pos+1:]
	if len(rest) >= 2 && rest[0] != '\\' && rest[1] == '\'' {
		p.pos += 3
		return int64(rest[0]), nil
	}
	if len(rest) >= 3 && rest[0] == '\\' && rest[2] == '\'' {
		p.pos += 4
		switch rest[1] {
		case 'n':
			return '\n', nil
		case 't':
			return '\t', nil
		case '0':
			return 0, nil
		case '\\', '\'':
			return int64(rest[1]), nil
		}
		return 0, fmt.Errorf("unknown character escape in %q", p.src)
	}
	return 0, fmt.Errorf("invalid character literal in %q", p.src)
}

func (p *exprParser) parseInt() (int64, error) {
	start := p.pos
	base := int64(10)
	if strings.HasPrefix(p.src[p.pos:], "0x") || strings.HasPrefix(p.src[p.pos:], "0X") {
		base = 16
		p.pos += 2
	} else if strings.HasPrefix(p.src[p.pos:], "0b") || strings.HasPrefix(p.src[p.pos:], "0B") {
		base = 2
		p.pos += 2
	}
	digStart := p.pos
	var v int64
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		var d int64
		switch {
		case c >= '0' && c <= '9':
			d = int64(c - '0')
		case c >= 'a' && c <= 'f':
			d = int64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = int64(c-'A') + 10
		case c == '_':
			p.pos++
			continue
		default:
			d = -1
		}
		if d < 0 || d >= base {
			break
		}
		if v > (1<<62)/base {
			return 0, fmt.Errorf("integer literal too large in %q", p.src)
		}
		v = v*base + d
		p.pos++
	}
	if p.pos == digStart {
		return 0, fmt.Errorf("invalid integer literal at %q", p.src[start:])
	}
	return v, nil
}

func (p *exprParser) parseSymbol() (int64, error) {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if isIdentStart(c) || c >= '0' && c <= '9' {
			p.pos++
			continue
		}
		break
	}
	name := p.src[start:p.pos]
	if v, ok := p.consts[name]; ok {
		return v, nil
	}
	if p.labels != nil {
		if v, ok := p.labels[name]; ok {
			if p.refs != nil {
				p.refs[name] = true
			}
			return int64(v), nil
		}
		return 0, fmt.Errorf("undefined symbol %q", name)
	}
	return 0, fmt.Errorf("undefined constant %q (labels not allowed here)", name)
}
