package asm

import (
	"strings"
	"testing"
)

// FuzzAssemble checks the assembler never panics and that accepted
// programs satisfy basic well-formedness invariants.
func FuzzAssemble(f *testing.F) {
	for _, s := range FuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble(src, Options{})
		if err != nil {
			return
		}
		if len(prog.Words) != len(prog.Text) || len(prog.SourceLines) != len(prog.Text) {
			t.Fatalf("inconsistent program arrays: %d/%d/%d",
				len(prog.Words), len(prog.Text), len(prog.SourceLines))
		}
		for _, in := range prog.Text {
			if err := in.Validate(); err != nil {
				t.Fatalf("assembled invalid instruction %+v: %v", in, err)
			}
		}
		for name, addr := range prog.Symbols {
			inText := addr >= prog.TextBase && addr <= prog.TextEnd()
			inData := addr >= prog.DataBase && addr <= prog.DataEnd()
			if !inText && !inData {
				t.Fatalf("symbol %q at %#x outside both segments", name, addr)
			}
		}
		// Listings of accepted programs never contain the error marker.
		if strings.Contains(prog.Listing(), "op?") {
			t.Fatal("listing contains undecodable instruction")
		}
	})
}
