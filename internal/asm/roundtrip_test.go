package asm

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/isa"
)

// TestDisassemblyReassembles is the toolchain round-trip property: the
// disassembly of an assembled program is itself valid assembly that
// reassembles to the identical machine words. Branch and jump targets
// disassemble to absolute addresses, which the assembler's expression
// evaluator converts back to the same relative offsets as long as the
// instructions keep their addresses — which a straight re-listing
// guarantees.
func TestDisassemblyReassembles(t *testing.T) {
	sources, err := filepath.Glob("../apps/src/*.s")
	if err != nil || len(sources) == 0 {
		t.Fatalf("no application sources found: %v", err)
	}
	for _, path := range sources {
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			orig, err := Assemble(string(src), Options{})
			if err != nil {
				t.Fatal(err)
			}
			// Render a re-assemblable listing: one disassembled
			// instruction per line, at the same text base.
			var b strings.Builder
			for i, in := range orig.Text {
				pc := orig.TextBase + uint32(i)*isa.WordSize
				b.WriteString(isa.Disassemble(pc, in))
				b.WriteByte('\n')
			}
			re, err := Assemble(b.String(), Options{TextBase: orig.TextBase})
			if err != nil {
				t.Fatalf("reassembly failed: %v\nlisting:\n%s", err, b.String())
			}
			if len(re.Words) != len(orig.Words) {
				t.Fatalf("reassembled %d words, original %d", len(re.Words), len(orig.Words))
			}
			for i := range orig.Words {
				if re.Words[i] != orig.Words[i] {
					t.Fatalf("word %d: reassembled %#08x, original %#08x (%s)",
						i, re.Words[i], orig.Words[i],
						isa.Disassemble(orig.TextBase+uint32(i)*4, orig.Text[i]))
				}
			}
		})
	}
}

// TestApplicationSourcesHaveNoDeadSymbols assembles every shipped
// application and checks basic hygiene: a process_packet global exists
// and the data segment is nonempty (every app keeps state or tables).
func TestApplicationSourcesHygiene(t *testing.T) {
	sources, _ := filepath.Glob("../apps/src/*.s")
	for _, path := range sources {
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := Assemble(string(src), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := prog.Symbol("process_packet"); !ok {
				t.Error("no process_packet symbol")
			}
			found := false
			for _, g := range prog.Globals {
				if g == "process_packet" {
					found = true
				}
			}
			if !found {
				t.Error("process_packet not declared .global")
			}
			if len(prog.Data) == 0 {
				t.Error("empty data segment")
			}
			if len(prog.Text) < 10 {
				t.Errorf("implausibly small program: %d instructions", len(prog.Text))
			}
		})
	}
}
