package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/stats"
)

// checkpointVersion is bumped whenever the Checkpoint schema changes
// incompatibly; LoadCheckpoint refuses other versions.
const checkpointVersion = 1

// fingerprintRegion is how much of the head of each trace input the
// identity fingerprint hashes. Hashing only the head keeps
// fingerprinting O(1) in trace size; combined with the exact byte size
// it distinguishes any two captures that could plausibly be confused.
const fingerprintRegion = 64 << 10

// TraceID fingerprints one trace input so a checkpoint can refuse to
// resume against the wrong — or a rewritten — capture, where a byte
// offset would silently point into the middle of unrelated records.
type TraceID struct {
	// Size is the exact input size in bytes.
	Size int64 `json:"size"`
	// SHA256 is the hex digest of the first min(Size, 64 KiB) bytes.
	SHA256 string `json:"sha256"`
}

// FingerprintBytes fingerprints an in-memory capture.
func FingerprintBytes(b []byte) TraceID {
	head := b
	if len(head) > fingerprintRegion {
		head = head[:fingerprintRegion]
	}
	sum := sha256.Sum256(head)
	return TraceID{Size: int64(len(b)), SHA256: hex.EncodeToString(sum[:])}
}

// FingerprintFile fingerprints a trace file on disk.
func FingerprintFile(path string) (TraceID, error) {
	f, err := os.Open(path)
	if err != nil {
		return TraceID{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return TraceID{}, err
	}
	h := sha256.New()
	if _, err := io.Copy(h, io.LimitReader(f, fingerprintRegion)); err != nil {
		return TraceID{}, fmt.Errorf("core: fingerprinting %s: %w", path, err)
	}
	return TraceID{Size: st.Size(), SHA256: hex.EncodeToString(h.Sum(nil))}, nil
}

// Checkpoint is the on-disk resume state of a streaming pool run. It is
// written only at committed batch boundaries: every packet below
// NextIndex has been delivered to the caller in trace order, and
// ReaderPos is the reader state from which packet NextIndex is the next
// read — so a resumed run re-reads nothing it committed and loses only
// the work after the last checkpoint, exactly like a crashed database
// replaying from its last durable LSN.
type Checkpoint struct {
	Version int `json:"version"`
	// Trace identifies the input files, one entry per shard in shard
	// order.
	Trace []TraceID `json:"trace,omitempty"`
	// ReaderPos is the trace.Seeker state that resumes the reader at
	// packet NextIndex.
	ReaderPos []int64 `json:"reader_pos"`
	// NextIndex is the first trace index not yet committed.
	NextIndex int `json:"next_index"`
	// Stats is the aggregate over all committed packets.
	Stats stats.RunningState `json:"stats"`
	// ReaderSkipped is how many malformed records the readers had
	// skipped at checkpoint time, for reporting continuity.
	ReaderSkipped int `json:"reader_skipped,omitempty"`
}

// LoadCheckpoint reads and validates a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cp Checkpoint
	if err := json.Unmarshal(b, &cp); err != nil {
		return nil, fmt.Errorf("core: checkpoint %s: %w", path, err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("core: checkpoint %s: version %d, want %d", path, cp.Version, checkpointVersion)
	}
	if cp.NextIndex < 0 || len(cp.ReaderPos) == 0 {
		return nil, fmt.Errorf("core: checkpoint %s: malformed resume state", path)
	}
	return &cp, nil
}

// ValidateTrace refuses resume against inputs that do not match the
// fingerprints the checkpoint was written over.
func (c *Checkpoint) ValidateTrace(ids []TraceID) error {
	if len(ids) != len(c.Trace) {
		return fmt.Errorf("core: checkpoint covers %d trace shard(s), run has %d", len(c.Trace), len(ids))
	}
	for i, id := range ids {
		if id != c.Trace[i] {
			return fmt.Errorf("core: trace shard %d does not match the checkpoint (size %d sha256 %.12s…, checkpoint has size %d sha256 %.12s…)",
				i, id.Size, id.SHA256, c.Trace[i].Size, c.Trace[i].SHA256)
		}
	}
	return nil
}

// Checkpointer periodically persists a streaming run's committed state.
// The run's aggregator drives it at batch boundaries; writes are atomic
// (temp file + fsync + rename), so a crash at any instant leaves either
// the previous or the new checkpoint on disk, never a torn one.
type Checkpointer struct {
	path  string
	every int
	agg   *stats.Running

	ids     []TraceID
	skipped func() int

	start     int // resume start index; 0 for a fresh run
	lastIndex int // committed index of the last write attempt
	ordinal   int // 0-based count of write attempts, drives TearWrite
	written   int

	// TearWrite, when non-nil, is consulted with the write ordinal
	// before each commit; returning true makes the checkpointer write a
	// deliberately torn temp file and skip the rename — the chaos
	// harness's simulated crash mid-checkpoint. The previously committed
	// checkpoint must survive it, which is what the atomicity tests
	// assert.
	TearWrite func(ordinal int) bool
}

// NewCheckpointer writes checkpoints to path at most every `every`
// committed packets (minimum 1), snapshotting agg — the same Running the
// run's onResult feeds, so the serialized statistics always describe
// exactly the committed prefix.
func NewCheckpointer(path string, every int, agg *stats.Running) *Checkpointer {
	if every < 1 {
		every = 1
	}
	return &Checkpointer{path: path, every: every, agg: agg}
}

// SetTraceID records the input fingerprints stamped into every
// checkpoint (one per shard, in shard order).
func (c *Checkpointer) SetTraceID(ids []TraceID) { c.ids = ids }

// SetSkippedFunc wires the reader's malformed-record skip counter into
// checkpoints for reporting continuity.
func (c *Checkpointer) SetSkippedFunc(f func() int) { c.skipped = f }

// Restore primes the checkpointer and its aggregate from a loaded
// checkpoint: the next run starts at cp.NextIndex with the committed
// statistics already folded in. The caller must separately seek the
// trace reader to cp.ReaderPos.
func (c *Checkpointer) Restore(cp *Checkpoint) {
	c.agg.SetState(cp.Stats)
	c.start = cp.NextIndex
	c.lastIndex = cp.NextIndex
}

// StartIndex returns the trace index the run starts at (0 for a fresh
// run, the restored NextIndex after Restore).
func (c *Checkpointer) StartIndex() int { return c.start }

// Written returns how many checkpoints were committed by this process.
func (c *Checkpointer) Written() int { return c.written }

// maybeWrite commits a checkpoint if at least `every` packets were
// committed since the last write. next is the first uncommitted index
// and pos the reader state that resumes exactly there; the aggregator
// calls it only at batch boundaries where the two agree. wrote reports
// whether a checkpoint was durably committed (false for skipped cadence
// and for injected torn writes).
func (c *Checkpointer) maybeWrite(next int, pos []int64) (wrote bool, err error) {
	if next-c.lastIndex < c.every {
		return false, nil
	}
	cp := Checkpoint{
		Version:   checkpointVersion,
		Trace:     c.ids,
		ReaderPos: pos,
		NextIndex: next,
		Stats:     c.agg.State(),
	}
	if c.skipped != nil {
		cp.ReaderSkipped = c.skipped()
	}
	b, err := json.Marshal(&cp)
	if err != nil {
		return false, fmt.Errorf("core: encoding checkpoint: %w", err)
	}
	ord := c.ordinal
	c.ordinal++
	c.lastIndex = next
	tmp := c.path + ".tmp"
	if c.TearWrite != nil && c.TearWrite(ord) {
		// Injected crash: half the bytes, no fsync, no rename. The
		// committed checkpoint at path is untouched.
		_ = os.WriteFile(tmp, b[:len(b)/2], 0o644)
		return false, nil
	}
	if err := writeFileAtomic(c.path, tmp, b); err != nil {
		return false, fmt.Errorf("core: writing checkpoint: %w", err)
	}
	c.written++
	return true, nil
}

// writeFileAtomic writes data to tmp, fsyncs, and renames it over path.
func writeFileAtomic(path, tmp string, data []byte) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
