package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/trace"
)

// ckptPackets builds n streaming-friendly packets: distinct sizes and
// loop counts like derefPackets, plus strictly increasing timestamps so
// sharded merges replay them in index order, and a sprinkling of faulty
// packets (byte 1 nonzero => FaultUnmapped) so resume points can land
// mid-quarantine.
func ckptPackets(n int, faulty ...int) []*trace.Packet {
	pkts := derefPackets(n)
	for i, p := range pkts {
		p.Sec = uint32(i)
		p.WireLen = len(p.Data)
	}
	for _, i := range faulty {
		pkts[i].Data[1] = 1
	}
	return pkts
}

// writeCkptPcap writes packets to a pcap file in dir.
func writeCkptPcap(t *testing.T, dir, name string, pkts []*trace.Packet) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewPcapWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// streamRun runs a fresh 2-core pool over reader, feeding agg the way
// cmd/packetbench's pool callback does, with a small batch size so
// checkpoint boundaries land frequently.
func streamRun(t *testing.T, reader trace.Reader, limit int, ck *Checkpointer, agg *stats.Running) error {
	t.Helper()
	pool, err := NewPool(derefApp(), 2, Options{Errors: ErrorPolicy{Policy: SkipAndRecord}})
	if err != nil {
		t.Fatal(err)
	}
	pool.SetBatchSize(3)
	_, err = pool.RunTraceCheckpointed(context.Background(), reader, limit, func(i int, res Result) {
		if res.Shed {
			agg.AddShed(1)
			return
		}
		agg.Add(&res.Record)
	}, ck)
	return err
}

// resumeEquivalence is the tentpole acceptance check: a run interrupted
// at packet k and resumed from its last on-disk checkpoint must produce
// a Summary and instruction-count sequence identical to an uninterrupted
// run, for any seekable reader.
func resumeEquivalence(t *testing.T, k int, newReader func(t *testing.T) trace.Reader) {
	t.Helper()
	// Uninterrupted reference.
	ref := &stats.Running{KeepInstructionCounts: true}
	if err := streamRun(t, newReader(t), 0, nil, ref); err != nil {
		t.Fatalf("reference run: %v", err)
	}

	// Interrupted run: process only k packets, checkpointing every 4.
	path := filepath.Join(t.TempDir(), "run.ckpt")
	agg1 := &stats.Running{KeepInstructionCounts: true}
	ck1 := NewCheckpointer(path, 4, agg1)
	if err := streamRun(t, newReader(t), k, ck1, agg1); err != nil {
		t.Fatalf("interrupted run (k=%d): %v", k, err)
	}
	if ck1.Written() == 0 {
		t.Fatalf("interrupted run (k=%d) wrote no checkpoints", k)
	}

	// Resume with a fresh pool, reader and aggregate — only the
	// checkpoint file carries state across, as across a real crash.
	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if cp.NextIndex <= 0 || cp.NextIndex > k {
		t.Fatalf("checkpoint NextIndex = %d, want in (0, %d]", cp.NextIndex, k)
	}
	reader := newReader(t)
	if err := reader.(trace.Seeker).SeekTo(cp.ReaderPos); err != nil {
		t.Fatalf("SeekTo(%v): %v", cp.ReaderPos, err)
	}
	agg2 := &stats.Running{KeepInstructionCounts: true}
	ck2 := NewCheckpointer(path, 4, agg2)
	ck2.Restore(cp)
	if err := streamRun(t, reader, 0, ck2, agg2); err != nil {
		t.Fatalf("resumed run: %v", err)
	}

	if got, want := agg2.Summary(), ref.Summary(); !reflect.DeepEqual(got, want) {
		t.Errorf("resumed Summary differs (k=%d):\ngot  %+v\nwant %+v", k, got, want)
	}
	if got, want := agg2.InstructionCounts(), ref.InstructionCounts(); !reflect.DeepEqual(got, want) {
		t.Errorf("resumed instruction counts differ (k=%d): %d vs %d values", k, len(got), len(want))
	}
}

func TestCheckpointResumeEquivalence(t *testing.T) {
	const n = 40
	// Faulty packets bracket the interrupt points, so resumes land
	// mid-quarantine-run.
	pkts := ckptPackets(n, 9, 16, 17, 23)
	dir := t.TempDir()
	single := writeCkptPcap(t, dir, "all.pcap", pkts)
	var even, odd []*trace.Packet
	for i, p := range pkts {
		if i%2 == 0 {
			even = append(even, p)
		} else {
			odd = append(odd, p)
		}
	}
	shardA := writeCkptPcap(t, dir, "even.pcap", even)
	shardB := writeCkptPcap(t, dir, "odd.pcap", odd)

	openFile := func(open func(string) (trace.FileReader, error), path string) func(t *testing.T) trace.Reader {
		return func(t *testing.T) trace.Reader {
			fr, err := open(path)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { fr.Close() })
			return fr
		}
	}
	readers := map[string]func(t *testing.T) trace.Reader{
		"slice":    func(t *testing.T) trace.Reader { return trace.NewSliceReader(pkts) },
		"pcap":     openFile(trace.OpenPcapBuffered, single),
		"pcapmmap": openFile(trace.OpenPcap, single),
		"merge": func(t *testing.T) trace.Reader {
			ra := openFile(trace.OpenPcapBuffered, shardA)(t)
			rb := openFile(trace.OpenPcapBuffered, shardB)(t)
			return trace.NewMergeReader(ra, rb)
		},
	}
	for name, mk := range readers {
		t.Run(name, func(t *testing.T) {
			for _, k := range []int{10, 17, 24} {
				resumeEquivalence(t, k, mk)
			}
		})
	}
}

// TestCheckpointResumeAcrossResync interrupts and resumes a run over a
// capture with a corrupted record, with skip-and-resync enabled — the
// checkpointed byte offset must replay the resync identically.
func TestCheckpointResumeAcrossResync(t *testing.T) {
	pkts := ckptPackets(30)
	var buf bytes.Buffer
	w, err := trace.NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recOff := make([]int, len(pkts))
	for i, p := range pkts {
		recOff[i] = buf.Len()
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	raw := buf.Bytes()
	// Corrupt record 13's inclLen to an over-snap value; the reader
	// resyncs past it, so the stream yields 29 packets.
	binary.LittleEndian.PutUint32(raw[recOff[13]+8:], 1<<20)
	path := filepath.Join(t.TempDir(), "corrupt.pcap")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	mk := func(t *testing.T) trace.Reader {
		fr, err := trace.OpenPcapBuffered(path)
		if err != nil {
			t.Fatal(err)
		}
		fr.SetSkipMalformed(0)
		t.Cleanup(func() { fr.Close() })
		return fr
	}
	for _, k := range []int{8, 14} {
		resumeEquivalence(t, k, mk)
	}
}

// TestCheckpointTornWriteSurvivable: a crash mid-checkpoint (simulated
// by TearWrite) must leave the previous checkpoint loadable, and a
// resume from it must still converge to the uninterrupted Summary.
func TestCheckpointTornWriteSurvivable(t *testing.T) {
	pkts := ckptPackets(30, 11)
	mk := func(t *testing.T) trace.Reader { return trace.NewSliceReader(pkts) }

	ref := &stats.Running{KeepInstructionCounts: true}
	if err := streamRun(t, mk(t), 0, nil, ref); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "run.ckpt")
	agg1 := &stats.Running{KeepInstructionCounts: true}
	ck1 := NewCheckpointer(path, 4, agg1)
	// Every write after the first crashes mid-write.
	ck1.TearWrite = func(ordinal int) bool { return ordinal >= 1 }
	if err := streamRun(t, mk(t), 20, ck1, agg1); err != nil {
		t.Fatal(err)
	}
	if ck1.Written() != 1 {
		t.Fatalf("durable checkpoints = %d, want exactly 1", ck1.Written())
	}

	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("previous checkpoint did not survive the torn write: %v", err)
	}
	reader := mk(t)
	if err := reader.(trace.Seeker).SeekTo(cp.ReaderPos); err != nil {
		t.Fatal(err)
	}
	agg2 := &stats.Running{KeepInstructionCounts: true}
	ck2 := NewCheckpointer(path, 4, agg2)
	ck2.Restore(cp)
	if err := streamRun(t, reader, 0, ck2, agg2); err != nil {
		t.Fatal(err)
	}
	if got, want := agg2.Summary(), ref.Summary(); !reflect.DeepEqual(got, want) {
		t.Errorf("post-torn-write resume Summary differs:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestCheckpointValidateTrace(t *testing.T) {
	a := FingerprintBytes([]byte("capture one"))
	b := FingerprintBytes([]byte("capture two"))
	cp := &Checkpoint{Trace: []TraceID{a}}
	if err := cp.ValidateTrace([]TraceID{a}); err != nil {
		t.Errorf("matching fingerprint rejected: %v", err)
	}
	if err := cp.ValidateTrace([]TraceID{b}); err == nil {
		t.Error("mismatched fingerprint accepted")
	}
	if err := cp.ValidateTrace([]TraceID{a, b}); err == nil {
		t.Error("shard count mismatch accepted")
	}
}

func TestLoadCheckpointRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := LoadCheckpoint(filepath.Join(dir, "missing.ckpt")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file err = %v", err)
	}
	if _, err := LoadCheckpoint(write("torn.ckpt", `{"version":1,"reader_`)); err == nil {
		t.Error("torn JSON accepted")
	}
	if _, err := LoadCheckpoint(write("vers.ckpt", `{"version":99,"reader_pos":[0],"next_index":0,"stats":{}}`)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future version accepted: %v", err)
	}
	if _, err := LoadCheckpoint(write("state.ckpt", `{"version":1,"next_index":-3,"stats":{}}`)); err == nil {
		t.Error("malformed resume state accepted")
	}
}

// opaqueReader hides a reader's Seeker implementation.
type opaqueReader struct{ r trace.Reader }

func (o opaqueReader) Next() (*trace.Packet, error) { return o.r.Next() }

func TestCheckpointNeedsSeekableReader(t *testing.T) {
	agg := &stats.Running{}
	ck := NewCheckpointer(filepath.Join(t.TempDir(), "run.ckpt"), 4, agg)
	pool, err := NewPool(derefApp(), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = pool.RunTraceCheckpointed(context.Background(), opaqueReader{trace.NewSliceReader(ckptPackets(8))}, 0, nil, ck)
	if err == nil || !strings.Contains(err.Error(), "resumable") {
		t.Errorf("err = %v, want resumable-reader refusal", err)
	}
}

// FuzzCheckpointResume fuzzes the interrupt point, checkpoint cadence,
// batch size and fault placement, asserting the crash-and-resume Summary
// always matches an uninterrupted run.
func FuzzCheckpointResume(f *testing.F) {
	f.Add(uint8(20), uint8(7), uint8(4), uint8(3), uint16(0x0410))
	f.Add(uint8(40), uint8(33), uint8(1), uint8(1), uint16(0x8001))
	f.Add(uint8(9), uint8(4), uint8(2), uint8(5), uint16(0))
	f.Fuzz(func(t *testing.T, nRaw, kRaw, everyRaw, batchRaw uint8, faultBits uint16) {
		n := int(nRaw%48) + 2
		k := int(kRaw)%n + 1
		every := int(everyRaw)%8 + 1
		batch := int(batchRaw)%6 + 1
		pkts := derefPackets(n)
		for i := range pkts {
			if faultBits&(1<<(i%16)) != 0 {
				pkts[i].Data[1] = 1
			}
		}
		run := func(limit int, ck *Checkpointer, agg *stats.Running, reader trace.Reader) error {
			pool, err := NewPool(derefApp(), 2, Options{Errors: ErrorPolicy{Policy: SkipAndRecord}})
			if err != nil {
				t.Fatal(err)
			}
			pool.SetBatchSize(batch)
			_, err = pool.RunTraceCheckpointed(context.Background(), reader, limit, func(i int, res Result) {
				if res.Shed {
					agg.AddShed(1)
					return
				}
				agg.Add(&res.Record)
			}, ck)
			return err
		}

		ref := &stats.Running{KeepInstructionCounts: true}
		if err := run(0, nil, ref, trace.NewSliceReader(pkts)); err != nil {
			t.Fatal(err)
		}

		path := filepath.Join(t.TempDir(), "fuzz.ckpt")
		agg1 := &stats.Running{KeepInstructionCounts: true}
		ck1 := NewCheckpointer(path, every, agg1)
		if err := run(k, ck1, agg1, trace.NewSliceReader(pkts)); err != nil {
			t.Fatal(err)
		}

		agg2 := &stats.Running{KeepInstructionCounts: true}
		ck2 := NewCheckpointer(path, every, agg2)
		reader := trace.NewSliceReader(pkts)
		cp, err := LoadCheckpoint(path)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// The interrupted run never reached a checkpoint boundary;
			// recovery is a from-scratch run.
		case err != nil:
			t.Fatal(err)
		default:
			if err := reader.SeekTo(cp.ReaderPos); err != nil {
				t.Fatal(err)
			}
			ck2.Restore(cp)
		}
		if err := run(0, ck2, agg2, reader); err != nil {
			t.Fatal(err)
		}
		if got, want := agg2.Summary(), ref.Summary(); !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d k=%d every=%d batch=%d: resumed Summary differs\ngot  %+v\nwant %+v",
				n, k, every, batch, got, want)
		}
		if got, want := agg2.InstructionCounts(), ref.InstructionCounts(); !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d k=%d every=%d batch=%d: instruction counts differ", n, k, every, batch)
		}
	})
}
