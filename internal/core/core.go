// Package core is PacketBench itself: the framework that loads a network
// processing application onto the simulated PB32 core, feeds it packets
// from a trace, and collects selectively-accounted workload statistics.
//
// The paper's architecture (its Figure 2) maps onto this package as
// follows:
//
//   - PacketBench framework: the Bench type. Trace reading/writing,
//     packet placement and memory management run natively on the host and
//     are invisible to the statistics, because "on a network processor,
//     many of these functions are implemented by specialized hardware
//     components and therefore should not be considered part of the
//     application".
//   - PacketBench API: the application ABI documented below, the analogue
//     of the paper's init() / process_packet() / write_packet_to_file()
//     interface.
//   - Network processing application: a PB32 assembly program plus a
//     host-side Init hook that builds its data structures in simulated
//     memory (the work the paper's uncounted init() performs).
//   - Processor simulator & selective accounting: internal/vm driving an
//     internal/stats collector.
//
// # Application ABI
//
// The application's entry point is its exported (".global") symbol named
// by App.Entry. For each packet the framework:
//
//	a0 <- address of the packet's layer-3 header in packet memory
//	a1 <- length in bytes of the packet data
//	sp <- top of the stack region
//	ra <- vm.ReturnAddress
//	pc <- entry
//
// The application processes the packet and returns ("ret") or executes
// "halt". Its a0 at that point is the verdict (application defined; the
// forwarding applications return the output port, 0 meaning drop). The
// packet buffer may be modified in place (for example TSA rewrites
// addresses); the framework reads it back when writing output traces.
package core

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/ptrace"
	"repro/internal/staticcheck"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Default address-space layout of a PacketBench core. The text and data
// bases follow the assembler defaults.
const (
	// PacketBase is where the framework places each packet.
	PacketBase uint32 = 0x20000000
	// MaxPacketLen bounds a single packet buffer.
	MaxPacketLen = 64 * 1024
	// StackSize is the size of the application stack region.
	StackSize uint32 = 64 * 1024
	// StackTop is the initial stack pointer (stack grows down).
	StackTop uint32 = 0x80000000
	// DefaultHeapSize is the simulated-memory budget for application data
	// structures beyond the assembled data segment.
	DefaultHeapSize uint32 = 64 * 1024 * 1024
	// DefaultStepLimit bounds instructions per packet; network processing
	// tasks are short, so hitting this means a broken application.
	DefaultStepLimit uint64 = 10_000_000
)

// App is one PacketBench application: PB32 source plus the host-side
// initialization that the paper's init() performs (building routing
// tables, hash buckets, anonymization tables in simulated memory).
type App struct {
	// Name identifies the application in reports.
	Name string
	// Source is the PB32 assembly implementing packet processing.
	Source string
	// Entry is the exported symbol the framework calls per packet.
	Entry string
	// Init builds the application's data structures in simulated memory
	// before any packet is processed. May be nil. Init processing is not
	// counted toward packet statistics, matching the paper's API.
	Init func(ld *Loader) error
}

// EngineKind selects the execution engine a Bench simulates with. Both
// engines implement the same architecture bit for bit — identical
// registers, memory, statistics records and fault PCs for any program —
// so the choice is purely a speed/validation tradeoff.
type EngineKind int

// The execution engines.
const (
	// EngineThreaded is the default: the block-threaded engine, which
	// pre-translates the text segment into basic-block micro-op traces
	// at load time and executes block bodies with no per-instruction
	// fetch checks.
	EngineThreaded EngineKind = iota
	// EngineInterpreter is the reference interpreter — the oracle the
	// threaded engine is differentially validated against.
	EngineInterpreter
	// EngineCompiled is the third tier: hot basic-block chains are
	// lowered into specialized Go closures (vm.Compile), with the
	// threaded translation as the cold tier and side-exit target.
	// Selection is profile-guided — offline through Options.
	// ProfileCounts, online through per-block execution counting.
	// Requires the verifier: under NoVerify there are no facts, no
	// chains are ever built, and the bench silently runs the threaded
	// engine's fully-checked translation instead.
	EngineCompiled
)

// String returns the CLI name of the engine.
func (e EngineKind) String() string {
	switch e {
	case EngineThreaded:
		return "threaded"
	case EngineInterpreter:
		return "interp"
	case EngineCompiled:
		return "compiled"
	}
	return fmt.Sprintf("engine?%d", int(e))
}

// ParseEngine parses a CLI engine name.
func ParseEngine(s string) (EngineKind, error) {
	switch s {
	case "threaded", "":
		return EngineThreaded, nil
	case "interp", "interpreter":
		return EngineInterpreter, nil
	case "compiled":
		return EngineCompiled, nil
	}
	return EngineThreaded, fmt.Errorf("core: unknown engine %q (want threaded, interp or compiled)", s)
}

// DefaultHotBlocks is how many top-ranked blocks from a recorded
// profile the compiled engine pre-compiles at load time.
const DefaultHotBlocks = 32

// FaultPolicy selects how the run engine reacts to a packet whose
// processing faults (a *vm.Fault: bad instruction, unmapped access, step
// limit, oversize packet, recovered panic, ...).
type FaultPolicy int

// The fault policies.
const (
	// FailFast aborts the run on the first fault — the historical
	// behavior, and the default: on a reproduction rig a fault usually
	// means a broken application or harness, and measuring past it
	// silently would taint the run.
	FailFast FaultPolicy = iota
	// SkipAndRecord quarantines the faulted packet — the run continues,
	// the packet keeps its index slot as a fault-tagged record excluded
	// from aggregate statistics — until ErrorBudget faults have been
	// quarantined, after which the next fault aborts the run.
	SkipAndRecord
	// Retry re-runs the faulted packet (MaxAttempts total attempts on
	// the same core; transient injected faults clear, deterministic ones
	// do not) and quarantines it like SkipAndRecord when attempts are
	// exhausted.
	Retry
)

// String returns the CLI name of the policy.
func (p FaultPolicy) String() string {
	switch p {
	case FailFast:
		return "fail-fast"
	case SkipAndRecord:
		return "skip"
	case Retry:
		return "retry"
	}
	return fmt.Sprintf("policy?%d", int(p))
}

// ParseFaultPolicy parses a CLI policy name.
func ParseFaultPolicy(s string) (FaultPolicy, error) {
	switch s {
	case "fail-fast", "failfast":
		return FailFast, nil
	case "skip", "skip-and-record":
		return SkipAndRecord, nil
	case "retry":
		return Retry, nil
	}
	return FailFast, fmt.Errorf("core: unknown fault policy %q (want fail-fast, skip or retry)", s)
}

// ErrorPolicy is a Bench's full fault-handling configuration.
type ErrorPolicy struct {
	// Policy selects the reaction to per-packet faults.
	Policy FaultPolicy
	// ErrorBudget bounds how many packets one run may quarantine under
	// SkipAndRecord or Retry; <= 0 means unlimited. Pool runs share a
	// single budget across all cores.
	ErrorBudget int
	// MaxAttempts is the total number of attempts per packet under
	// Retry; values below 2 mean 2 (one retry).
	MaxAttempts int
	// RetryBackoff is the base pause before the first retry of a packet
	// under Retry. Each further attempt doubles it (capped at 64x) and
	// adds deterministic jitter derived from the packet index and attempt
	// number, so retry storms across packets decorrelate without making
	// runs irreproducible. Zero keeps the historical immediate retry.
	RetryBackoff time.Duration
}

// retryDelay computes the pause before attempt a (a >= 1 retries) of the
// packet at idx: capped exponential backoff over the policy's base plus
// jitter in [0, delay/2] from a splitmix64-style hash of (idx, a). The
// same packet backs off on the same schedule no matter which core it
// lands on — determinism the chaos tests and resume equivalence rely on.
func retryDelay(base time.Duration, idx, a int) time.Duration {
	if base <= 0 || a < 1 {
		return 0
	}
	shift := uint(a - 1)
	if shift > 6 {
		shift = 6
	}
	d := base << shift
	h := (uint64(idx) + 1) * 0x9E3779B97F4A7C15
	h ^= uint64(a) * 0xBF58476D1CE4E5B9
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	return d + time.Duration(h%uint64(d/2+1))
}

// ShedPolicy selects what a streaming pool run does when the bounded
// backlog is full: the producer has a batch ready but every job slot is
// occupied, meaning the source is outrunning the pool.
type ShedPolicy int

// The shed policies.
const (
	// ShedBlock applies backpressure: the producer waits for a free job
	// slot. The default, and the right choice whenever the source can
	// wait (a file replay).
	ShedBlock ShedPolicy = iota
	// ShedDropNewest drops the just-read batch when the backlog is full
	// — the arriving traffic is sacrificed, queued work is preserved
	// (tail drop).
	ShedDropNewest
	// ShedDropOldest evicts the oldest queued batch to make room for the
	// just-read one — queued work is sacrificed for fresher traffic
	// (head drop).
	ShedDropOldest
)

// String returns the CLI name of the policy.
func (s ShedPolicy) String() string {
	switch s {
	case ShedBlock:
		return "block"
	case ShedDropNewest:
		return "drop-newest"
	case ShedDropOldest:
		return "drop-oldest"
	}
	return fmt.Sprintf("shed?%d", int(s))
}

// ParseShedPolicy parses a CLI shed policy name.
func ParseShedPolicy(s string) (ShedPolicy, error) {
	switch s {
	case "block", "":
		return ShedBlock, nil
	case "drop-newest", "newest":
		return ShedDropNewest, nil
	case "drop-oldest", "oldest":
		return ShedDropOldest, nil
	}
	return ShedBlock, fmt.Errorf("core: unknown shed policy %q (want block, drop-newest or drop-oldest)", s)
}

// errorBudget is a run-scoped quarantine allowance, shared by every core
// of a pool run.
type errorBudget struct {
	limit int
	used  atomic.Int64
}

func newErrorBudget(limit int) *errorBudget { return &errorBudget{limit: limit} }

// take claims one quarantine slot; false means the budget is exhausted
// and the fault must abort the run.
func (e *errorBudget) take() bool {
	return e.limit <= 0 || e.used.Add(1) <= int64(e.limit)
}

// takeN claims n slots at once (a shed batch); false means the budget
// cannot cover them and the run must abort.
func (e *errorBudget) takeN(n int) bool {
	return e.limit <= 0 || e.used.Add(int64(n)) <= int64(e.limit)
}

// preload marks n slots as already spent — how a resumed run carries the
// quarantines and sheds committed before the crash, so the budget spans
// the whole logical run rather than resetting per process.
func (e *errorBudget) preload(n int64) { e.used.Store(n) }

// Options configures a Bench.
type Options struct {
	// HeapSize overrides DefaultHeapSize when nonzero.
	HeapSize uint32
	// StepLimit overrides DefaultStepLimit when nonzero.
	StepLimit uint64
	// Detail enables per-packet instruction/memory traces on the
	// collector.
	Detail bool
	// Coverage enables whole-run memory coverage tracking.
	Coverage bool
	// KeepRecords retains every packet record on the collector.
	KeepRecords bool
	// Errors selects the fault-handling policy (zero value: FailFast).
	Errors ErrorPolicy
	// Engine selects the execution engine (zero value: EngineThreaded).
	Engine EngineKind
	// NoVerify skips the static verifier. By default New refuses to load
	// a program with error-severity findings (control transfers that
	// leave the text segment, statically-bad memory accesses, paths that
	// run off the end of the program); NoVerify loads it anyway, leaving
	// fault handling to the runtime ErrorPolicy.
	NoVerify bool
	// Metrics, when non-nil, receives run telemetry: per-packet
	// counters (packets, instructions, region-split memory references,
	// faults by kind) and the packet-latency histogram. All cores of a
	// Pool share one registry, so the series aggregate across cores.
	// Nil disables telemetry at zero hot-path cost.
	Metrics *telemetry.Registry
	// RunDeadline bounds a pool run's wall-clock duration: the run is
	// cancelled when it elapses and returns a deadline error. Zero means
	// no deadline.
	RunDeadline time.Duration
	// StallTimeout enables the pool's progress watchdog: a worker that
	// makes no packet progress for this long has the run cancelled with
	// a *StallError naming it. Zero disables the watchdog.
	StallTimeout time.Duration
	// Shed selects the overload policy of streaming pool runs (zero
	// value: ShedBlock — backpressure, never drop).
	Shed ShedPolicy
	// Trace, when non-nil, arms the packet-journey tracer: each core
	// records per-stage span events into its own ptrace lane (Pool core
	// i uses Trace.Lane(i), so the tracer must be built with at least
	// as many lanes as the pool has cores). Nil disables journey
	// tracing at zero hot-path cost, the same contract as Metrics.
	Trace *ptrace.Tracer
	// FlightPath, when set alongside Trace, is where a pool run dumps
	// the flight recorder (Chrome trace-event JSON) if it aborts —
	// stall, panic, error-budget exhaustion, run deadline, torn
	// checkpoint or any other run error. Best-effort: a dump that
	// cannot be written never masks the run error.
	FlightPath string
	// ProfileCounts seeds the compiled engine's offline profile-guided
	// block selection: per-instruction retired-instruction counts from
	// a previous recorded run of the same program (the counts sidecar
	// written next to -profile-out, read back by -profile-in). The top
	// DefaultHotBlocks blocks by count are compiled at load time;
	// everything else still promotes online. Ignored by the other
	// engines. len must equal the program's instruction count.
	ProfileCounts []uint64
}

// VerifyError is returned by New when the static verifier refuses an
// application. Diags holds the full report (warnings included); only
// error-severity findings cause rejection.
type VerifyError struct {
	App   string
	Diags staticcheck.List
}

func (e *VerifyError) Error() string {
	errs := e.Diags.Errors()
	return fmt.Sprintf("core: application %q failed static verification (%d error(s), e.g. %s); use NoVerify to load it anyway",
		e.App, len(errs), errs[0])
}

// LayoutFor is the memory map a Bench gives a program assembled from an
// application: the framework constants (packet buffer, stack) plus the
// program's own text and data segments with heapSize bytes of heap. It
// is exported so the static verifier and CLIs check programs against
// the exact map they will run under.
func LayoutFor(prog *asm.Program, heapSize uint32) vm.Layout {
	if heapSize == 0 {
		heapSize = DefaultHeapSize
	}
	return vm.Layout{
		TextBase:   prog.TextBase,
		TextEnd:    prog.TextEnd(),
		PacketBase: PacketBase,
		PacketEnd:  PacketBase + MaxPacketLen,
		DataBase:   prog.DataBase,
		DataEnd:    prog.DataBase + heapSize,
		StackBase:  StackTop - StackSize,
		StackEnd:   StackTop,
	}
}

// Verify runs the static verifier over an application's program exactly
// as New would, without building a Bench.
func Verify(app *App, opts Options) (staticcheck.List, error) {
	prog, err := asm.Assemble(app.Source, asm.Options{})
	if err != nil {
		return nil, fmt.Errorf("core: assembling %s: %w", app.Name, err)
	}
	return verifyProg(prog, app, opts), nil
}

func verifyProg(prog *asm.Program, app *App, opts Options) staticcheck.List {
	return staticcheck.Verify(prog, staticcheck.Options{
		Layout:  LayoutFor(prog, opts.HeapSize),
		Entries: []string{app.Entry},
	})
}

// Loader is the interface Init hooks use to place application state into
// simulated memory. Allocation is a bump pointer over the heap that
// follows the assembled data segment; there is no free.
type Loader struct {
	mem     *vm.Memory
	prog    *asm.Program
	next    uint32
	limit   uint32
	symbols map[string]uint32
}

// Alloc reserves size bytes aligned to align (a power of two; zero
// selects word alignment) and returns the base address.
func (l *Loader) Alloc(size, align uint32) (uint32, error) {
	if align == 0 {
		align = 4
	}
	if align&(align-1) != 0 {
		return 0, fmt.Errorf("core: alignment %d is not a power of two", align)
	}
	if align < 4 {
		return 0, fmt.Errorf("core: alignment %d is below the minimum word alignment 4", align)
	}
	base := (l.next + align - 1) &^ (align - 1)
	if base < l.next || base > l.limit || size > l.limit-base {
		return 0, fmt.Errorf("core: heap exhausted: need %d bytes at %#x, limit %#x", size, base, l.limit)
	}
	l.next = base + size
	return base, nil
}

// Write copies bytes into simulated memory (host-side, uncounted).
func (l *Loader) Write(addr uint32, b []byte) { l.mem.WriteBytes(addr, b) }

// Write32 stores a little-endian word (host-side, uncounted).
func (l *Loader) Write32(addr, v uint32) { l.mem.Write32(addr, v) }

// Symbol resolves a label defined by the application's assembly.
func (l *Loader) Symbol(name string) (uint32, error) {
	if a, ok := l.symbols[name]; ok {
		return a, nil
	}
	return 0, fmt.Errorf("core: undefined symbol %q", name)
}

// SetWord stores v at the address of the named label — the idiom Init
// hooks use to publish table addresses to the application ("globals").
func (l *Loader) SetWord(symbol string, v uint32) error {
	addr, err := l.Symbol(symbol)
	if err != nil {
		return err
	}
	l.mem.Write32(addr, v)
	return nil
}

// HeapNext returns the next free heap address (after Init it marks the
// end of initialized application state).
func (l *Loader) HeapNext() uint32 { return l.next }

// Result is the outcome of processing one packet.
type Result struct {
	// Verdict is the application's a0 at return (port number, 0 = drop,
	// application defined). Zero for quarantined packets.
	Verdict uint32
	// Record is the packet's workload profile. For quarantined packets
	// it is a fault-tagged marker (Record.Faulted()) holding no counts.
	Record stats.PacketRecord
	// Fault is the fault that quarantined the packet under a skip or
	// retry policy; nil for measured packets.
	Fault *vm.Fault
	// Shed marks a packet dropped unprocessed by the overload shed
	// policy: Record carries only the Index and Fault is nil. onResult
	// still observes the packet in trace order, preserving the
	// exactly-once index contract.
	Shed bool
}

// Faulted reports whether the packet was quarantined instead of measured.
func (r *Result) Faulted() bool { return r.Fault != nil }

// Bench is a loaded PacketBench instance: one application on one
// simulated core.
type Bench struct {
	app    *App
	prog   *asm.Program
	mem    *vm.Memory
	cpu    *vm.CPU
	col    *stats.Collector
	blocks *analysis.BlockMap
	loader *Loader

	engine EngineKind
	// tprog is the block-threaded translation of the program, nil when
	// the bench runs on the reference interpreter.
	tprog *vm.Program
	// cprog is the compiled tier (EngineCompiled only); nil under
	// NoVerify, where the bench silently falls back to tprog.
	cprog *vm.CompiledProgram
	// cstats is the last compiled-tier stats snapshot flushed to
	// telemetry; runGuarded reports only the delta since it.
	cstats vm.CompiledStats

	entry        uint32
	stepLimit    uint64
	processed    int
	extraTracers []vm.Tracer
	policy       ErrorPolicy
	budget       *errorBudget // for bare ProcessPacket calls; runs use their own
	reg          *telemetry.Registry
	metrics      *runMetrics  // nil when telemetry is disabled
	lane         *ptrace.Lane // nil when journey tracing is disabled

	// dirtyLen is the number of bytes at PacketBase that may hold
	// non-zero data from the previous packet: the previous placement
	// extent, widened by any store the application issued beyond it
	// (tracked by the CPU's packet-write watermark). Zeroing only this
	// window instead of the full 64 KiB buffer is what keeps the
	// per-packet hot path proportional to the traffic, not the buffer.
	dirtyLen int
}

// New assembles the application, loads its segments, runs Init, and
// returns a ready Bench.
func New(app *App, opts Options) (*Bench, error) {
	if app.Entry == "" {
		return nil, fmt.Errorf("core: application %q has no entry symbol", app.Name)
	}
	prog, err := asm.Assemble(app.Source, asm.Options{})
	if err != nil {
		return nil, fmt.Errorf("core: assembling %s: %w", app.Name, err)
	}
	entry, ok := prog.Symbol(app.Entry)
	if !ok {
		return nil, fmt.Errorf("core: application %q: entry symbol %q not defined", app.Name, app.Entry)
	}

	heap := opts.HeapSize
	if heap == 0 {
		heap = DefaultHeapSize
	}
	stepLimit := opts.StepLimit
	if stepLimit == 0 {
		stepLimit = DefaultStepLimit
	}

	var tf *vm.TranslationFacts
	if !opts.NoVerify {
		ds, facts := staticcheck.VerifyWithFacts(prog, staticcheck.Options{
			Layout:  LayoutFor(prog, heap),
			Entries: []string{app.Entry},
		})
		if ds.HasErrors() {
			return nil, &VerifyError{App: app.Name, Diags: ds}
		}
		tf = facts.Translation()
	}

	mem := vm.NewMemory()
	mem.WriteBytes(prog.DataBase, prog.Data)

	loader := &Loader{
		mem:     mem,
		prog:    prog,
		next:    (prog.DataEnd() + 7) &^ 7,
		limit:   prog.DataBase + heap,
		symbols: prog.Symbols,
	}
	if app.Init != nil {
		if err := app.Init(loader); err != nil {
			return nil, fmt.Errorf("core: init of %s: %w", app.Name, err)
		}
	}

	cpu := vm.New(prog.Text, prog.TextBase, mem)
	cpu.Layout = LayoutFor(prog, heap)

	blocks := analysis.NewBlockMap(prog.Text, prog.TextBase)
	col := stats.NewCollector(prog.Text, prog.TextBase, blocks, cpu.Layout)
	col.Detail = opts.Detail
	col.Coverage = opts.Coverage
	col.KeepRecords = opts.KeepRecords
	cpu.Tracer = col

	var tprog *vm.Program
	var cprog *vm.CompiledProgram
	switch opts.Engine {
	case EngineThreaded, EngineCompiled:
		if opts.NoVerify {
			// No verifier run means no proofs and no optimized body: the
			// fully-checked translation is the only sound choice.
			tprog = vm.Translate(prog.Text, prog.TextBase, blocks)
		} else {
			tprog = vm.TranslateWithFacts(prog.Text, prog.TextBase, blocks, tf)
		}
		// The threaded engine reports block entries itself; the
		// collector must not re-derive them per instruction.
		col.BlocksFromEngine = true
		if opts.Engine == EngineCompiled {
			var cfg vm.CompileConfig
			if opts.ProfileCounts != nil {
				hot, err := profile.HotBlocks(prog, opts.ProfileCounts, DefaultHotBlocks)
				if err != nil {
					return nil, fmt.Errorf("core: profile counts for %s: %w", app.Name, err)
				}
				for _, hb := range hot {
					cfg.Hot = append(cfg.Hot, int32(hb.Leader))
				}
			}
			// tf is nil under NoVerify, and Compile refuses to build
			// chains without facts — the silent threaded fallback.
			cprog = vm.Compile(tprog, tf, cfg)
		}
	case EngineInterpreter:
	default:
		return nil, fmt.Errorf("core: unknown engine %d", opts.Engine)
	}

	policy := opts.Errors
	if policy.Policy == Retry && policy.MaxAttempts < 2 {
		policy.MaxAttempts = 2
	}
	return &Bench{
		app: app, prog: prog, mem: mem, cpu: cpu,
		col: col, blocks: blocks, loader: loader,
		engine: opts.Engine, tprog: tprog, cprog: cprog,
		entry: entry, stepLimit: stepLimit,
		policy: policy, budget: newErrorBudget(policy.ErrorBudget),
		reg: opts.Metrics, metrics: newRunMetrics(opts.Metrics),
		lane: opts.Trace.Lane(0),
	}, nil
}

// Metrics returns the telemetry registry the bench reports into (nil
// when telemetry is disabled).
func (b *Bench) Metrics() *telemetry.Registry { return b.reg }

// Engine returns the execution engine the bench was built with.
func (b *Bench) Engine() EngineKind { return b.engine }

// TranslationStats reports what the proof-guided translator did with
// this program: fused superinstruction pairs, unchecked memory micro-ops
// and folded branches. Zero for the interpreter engine and for
// unverified programs (no proofs, fully-checked translation).
func (b *Bench) TranslationStats() vm.TranslateStats {
	if b.tprog == nil {
		return vm.TranslateStats{}
	}
	return b.tprog.Stats()
}

// Program returns the assembled application image.
func (b *Bench) Program() *asm.Program { return b.prog }

// Collector exposes the statistics collector.
func (b *Bench) Collector() *stats.Collector { return b.col }

// BlockMap exposes the application's basic-block decomposition.
func (b *Bench) BlockMap() *analysis.BlockMap { return b.blocks }

// Memory exposes simulated memory for host-side inspection (differential
// tests walk application tables through this).
func (b *Bench) Memory() *vm.Memory { return b.mem }

// Loader returns the loader, whose HeapNext reports the extent of
// initialized application state.
func (b *Bench) Loader() *Loader { return b.loader }

// Processed returns the number of packets this bench has successfully
// processed (pool cancellation tests and schedulers use it to observe
// how much work a core performed).
func (b *Bench) Processed() int { return b.processed }

// packetBoundaryTracer is implemented by extra tracers that key their
// behavior on which trace packet is about to execute (fault injectors);
// the bench notifies them with the packet's run index before each
// attempt.
type packetBoundaryTracer interface{ BeginPacket(index int) }

// ProcessPacket runs the application on one packet under the configured
// error policy and returns its verdict and workload record. Under a skip
// or retry policy a faulted packet yields a quarantine Result (Faulted())
// and a nil error; FailFast — the default — returns the fault as an
// error, as it always has.
func (b *Bench) ProcessPacket(p *trace.Packet) (Result, error) {
	return b.processUnderPolicy(b.col.Packets(), p, b.budget)
}

// ProcessPacketAt is ProcessPacket for a packet at a known trace
// position: idx labels errors and is fed to boundary-aware tracers, so an
// injection plan keyed on trace indexes fires on the right packets no
// matter which core the packet was scheduled on.
func (b *Bench) ProcessPacketAt(idx int, p *trace.Packet) (Result, error) {
	return b.processUnderPolicy(idx, p, b.budget)
}

// processUnderPolicy applies the bench's error policy around packet
// attempts, drawing quarantine slots from bud.
func (b *Bench) processUnderPolicy(idx int, p *trace.Packet, bud *errorBudget) (Result, error) {
	attempts := 1
	if b.policy.Policy == Retry {
		attempts = b.policy.MaxAttempts
	}
	var fault *vm.Fault
	var err error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			if d := retryDelay(b.policy.RetryBackoff, idx, a); d > 0 {
				time.Sleep(d)
				b.lane.RetryWait(int64(idx), a, int64(d))
			}
		}
		var res Result
		res, fault, err = b.processOnce(idx, p, a)
		if err == nil {
			b.lane.EndPacket(int64(idx), res.Verdict, 0, res.Record.Blocks)
			return res, nil
		}
		if fault == nil || b.policy.Policy == FailFast {
			// FailFast runs and non-fault errors abort immediately. The
			// open journey stays in the flight recorder, where the
			// post-mortem dump picks it up.
			return Result{}, err
		}
	}
	// SkipAndRecord, or Retry with its attempts exhausted: quarantine.
	if !bud.take() {
		return Result{}, fmt.Errorf("core: error budget of %d exhausted: %w", b.policy.ErrorBudget, err)
	}
	b.metrics.fault(fault.Kind)
	b.lane.Quarantine(int64(idx), uint8(fault.Kind)+1)
	b.lane.EndPacket(int64(idx), 0, uint8(fault.Kind)+1, nil)
	return Result{Record: b.col.AbortPacket(fault.Kind), Fault: fault}, nil
}

// processOnce runs one attempt: placement, dispatch, guarded execution.
// On failure the *vm.Fault behind the error is returned alongside it
// (nil for errors no policy may absorb).
func (b *Bench) processOnce(idx int, p *trace.Packet, attempt int) (Result, *vm.Fault, error) {
	var start time.Time
	if b.metrics != nil {
		b.metrics.attempts.Inc()
		start = time.Now()
	}
	n := len(p.Data)
	if n > MaxPacketLen {
		f := &vm.Fault{Kind: vm.FaultOversizePacket}
		return Result{}, f, fmt.Errorf("core: %s: packet %d: packet of %d bytes exceeds buffer: %w",
			b.app.Name, idx, n, f)
	}
	t0 := b.lane.ExecBegin(int64(idx), attempt)
	// Place the packet. WriteBytes overwrites [0, n), so only the tail
	// [n, dirtyLen) can still hold stale bytes from a longer previous
	// packet (or from stores the previous run issued past its own
	// length); zero exactly that window rather than the whole 64 KiB
	// buffer.
	if b.dirtyLen > n {
		b.mem.Zero(PacketBase+uint32(n), b.dirtyLen-n)
	}
	b.mem.WriteBytes(PacketBase, p.Data)
	b.dirtyLen = n
	b.cpu.ResetPacketWriteHigh()

	for r := range b.cpu.Regs {
		b.cpu.Regs[r] = 0
	}
	b.cpu.SetReg(isa.A0, PacketBase)
	b.cpu.SetReg(isa.A1, uint32(n))
	b.cpu.SetReg(isa.SP, StackTop)
	b.cpu.SetReg(isa.RA, vm.ReturnAddress)
	b.cpu.PC = b.entry

	for _, t := range b.extraTracers {
		if bt, ok := t.(packetBoundaryTracer); ok {
			bt.BeginPacket(idx)
		}
	}
	b.col.BeginPacket()
	err := b.runGuarded()
	// Even a faulting run may have dirtied the buffer past the packet's
	// length; widen the dirty window before reporting the error so a
	// subsequent packet still gets a clean buffer.
	if high := b.cpu.PacketWriteHigh(); high > PacketBase && int(high-PacketBase) > b.dirtyLen {
		b.dirtyLen = int(high - PacketBase)
	}
	if err != nil {
		if b.metrics != nil {
			b.metrics.latency.Observe(uint64(time.Since(start)))
		}
		var f *vm.Fault
		errors.As(err, &f)
		var fk uint8
		if f != nil {
			fk = uint8(f.Kind) + 1
		}
		b.lane.ExecEnd(t0, int64(idx), attempt, uint8(b.engine), 0, 0, fk)
		return Result{}, f, fmt.Errorf("core: %s: packet %d: %w", b.app.Name, idx, err)
	}
	rec := b.col.EndPacket()
	b.processed++
	verdict := b.cpu.Reg(isa.A0)
	b.lane.ExecEnd(t0, int64(idx), attempt, uint8(b.engine), rec.Instructions, verdict, 0)
	if b.metrics != nil {
		d := uint64(time.Since(start))
		if b.lane != nil {
			// A journey tracer links the latency histogram's buckets to
			// span ids (the packet index) for exemplar chasing.
			b.metrics.latency.ObserveEx(d, uint64(idx))
		} else {
			b.metrics.latency.Observe(d)
		}
		b.metrics.measured(&rec)
	}
	return Result{Verdict: verdict, Record: rec}, nil, nil
}

// runGuarded executes the simulator with a panic barrier: a panicking
// tracer (a fault injector does this on purpose; an instrumentation bug
// does it by accident) becomes a per-packet error the policy layer can
// absorb, instead of killing the whole process. A panic carrying a
// *vm.Fault keeps its identity; anything else surfaces as FaultHostPanic.
func (b *Bench) runGuarded() (err error) {
	defer func() {
		if r := recover(); r != nil {
			if f, ok := r.(*vm.Fault); ok {
				err = f
				return
			}
			err = fmt.Errorf("recovered panic %q: %w", fmt.Sprint(r),
				&vm.Fault{Kind: vm.FaultHostPanic, PC: b.cpu.PC})
		}
	}()
	switch {
	case b.cprog != nil:
		_, _, err = b.cpu.RunCompiled(b.cprog, b.stepLimit)
		if b.metrics != nil {
			b.flushCompiledMetrics()
		}
	case b.tprog != nil:
		_, _, err = b.cpu.RunProgram(b.tprog, b.stepLimit)
	default:
		_, _, err = b.cpu.Run(b.stepLimit)
	}
	return err
}

// flushCompiledMetrics folds the compiled tier's stats delta since the
// last flush into the telemetry counters.
func (b *Bench) flushCompiledMetrics() {
	s := b.cprog.Stats()
	if d := s.BlocksCompiled - b.cstats.BlocksCompiled; d > 0 {
		b.metrics.blocksCompiled.Add(d)
	}
	for i, n := range s.Exits {
		if d := n - b.cstats.Exits[i]; d > 0 {
			b.metrics.compiledExits[i].Add(d)
		}
	}
	b.cstats = s
}

// CompiledStats reports what the compiled tier did so far: chains
// built and side exits taken by reason. Zero for the other engines and
// under NoVerify (no facts, no chains).
func (b *Bench) CompiledStats() vm.CompiledStats {
	if b.cprog == nil {
		return vm.CompiledStats{}
	}
	return b.cprog.Stats()
}

// SetTracing attaches or detaches the statistics collector (and any
// extra tracers) from the simulated core. Detached runs execute at full
// simulator speed but produce empty packet records; the tracer-overhead
// ablation uses this.
func (b *Bench) SetTracing(enabled bool) {
	if !enabled {
		b.cpu.Tracer = nil
		return
	}
	if len(b.extraTracers) == 0 {
		b.cpu.Tracer = b.col
		return
	}
	b.cpu.Tracer = vm.MultiTracer(append([]vm.Tracer{b.col}, b.extraTracers...))
}

// AddTracer attaches an additional tracer (for example a
// microarch.Profiler) alongside the workload collector.
func (b *Bench) AddTracer(t vm.Tracer) {
	b.extraTracers = append(b.extraTracers, t)
	b.SetTracing(true)
}

// PacketBytes reads back n bytes of the packet buffer (after processing,
// to observe in-place modifications).
func (b *Bench) PacketBytes(n int) []byte {
	return b.mem.ReadBytes(PacketBase, n)
}

// RunTrace processes every packet from the reader (up to limit packets;
// limit <= 0 means all) and returns the per-packet records. Verdicts are
// passed to onResult when non-nil.
func (b *Bench) RunTrace(r trace.Reader, limit int, onResult func(int, Result)) ([]stats.PacketRecord, error) {
	bud := newErrorBudget(b.policy.ErrorBudget)
	var records []stats.PacketRecord
	for i := 0; limit <= 0 || i < limit; i++ {
		p, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return records, err
		}
		res, err := b.processUnderPolicy(i, p, bud)
		if err != nil {
			return records, err
		}
		records = append(records, res.Record)
		if onResult != nil {
			onResult(i, res)
		}
	}
	return records, nil
}

// RunPackets processes a pre-loaded packet slice and returns the records.
func (b *Bench) RunPackets(pkts []*trace.Packet, onResult func(int, Result)) ([]stats.PacketRecord, error) {
	bud := newErrorBudget(b.policy.ErrorBudget)
	records := make([]stats.PacketRecord, 0, len(pkts))
	for i, p := range pkts {
		res, err := b.processUnderPolicy(i, p, bud)
		if err != nil {
			return records, err
		}
		records = append(records, res.Record)
		if onResult != nil {
			onResult(i, res)
		}
	}
	return records, nil
}
