package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/gen"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vm"
)

// echoApp reads the first packet word, adds the value published by Init
// at the "bias" symbol, writes the sum back into the packet, and returns
// the packet length as its verdict.
const echoSrc = `
	.data
bias:	.word 0
	.text
	.global process_packet
process_packet:
	la   t0, bias
	lw   t0, 0(t0)
	lw   t1, 0(a0)
	add  t1, t1, t0
	sw   t1, 4(a0)
	mv   a0, a1
	ret
`

func echoApp(bias uint32) *App {
	return &App{
		Name:   "echo",
		Source: echoSrc,
		Entry:  "process_packet",
		Init: func(ld *Loader) error {
			return ld.SetWord("bias", bias)
		},
	}
}

func ipPacket(n int) *trace.Packet {
	data := make([]byte, n)
	data[0] = 0x45
	return &trace.Packet{Data: data}
}

func TestBenchProcessPacket(t *testing.T) {
	b, err := New(echoApp(100), Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := ipPacket(64)
	p.Data[0] = 42 // first word = 42 little-endian... first byte
	res, err := b.ProcessPacket(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != 64 {
		t.Errorf("verdict = %d, want 64", res.Verdict)
	}
	if res.Record.Instructions == 0 {
		t.Error("no instructions recorded")
	}
	out := b.PacketBytes(8)
	got := uint32(out[4]) | uint32(out[5])<<8 | uint32(out[6])<<16 | uint32(out[7])<<24
	if got != 42+100 {
		t.Errorf("packet word = %d, want 142", got)
	}
}

func TestBenchPacketIsolation(t *testing.T) {
	// Stale bytes from a longer previous packet must not leak into the
	// buffer of a shorter one.
	b, err := New(echoApp(0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	long := ipPacket(128)
	for i := range long.Data {
		long.Data[i] = 0xAA
	}
	if _, err := b.ProcessPacket(long); err != nil {
		t.Fatal(err)
	}
	short := ipPacket(32)
	if _, err := b.ProcessPacket(short); err != nil {
		t.Fatal(err)
	}
	buf := b.PacketBytes(128)
	for i := 32; i < 128; i++ {
		if buf[i] != 0 && i != 4 { // offset 4 is written by the app
			t.Fatalf("stale byte %#x at offset %d", buf[i], i)
		}
	}
}

func TestBenchPacketIsolationMixedSizes(t *testing.T) {
	// The dirty-length optimization must zero exactly the stale window:
	// descending then ascending packet sizes catch both directions.
	b, err := New(echoApp(0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{200, 120, 48, 20, 64, 160}
	for _, n := range sizes {
		p := ipPacket(n)
		for i := range p.Data {
			p.Data[i] = 0x5A
		}
		p.Data[0] = 0x45
		if _, err := b.ProcessPacket(p); err != nil {
			t.Fatal(err)
		}
		buf := b.PacketBytes(256)
		for i := n; i < 256; i++ {
			if buf[i] != 0 {
				t.Fatalf("after %d-byte packet: stale byte %#x at offset %d", n, buf[i], i)
			}
		}
	}
}

func TestBenchPacketIsolationAppWritesBeyondLength(t *testing.T) {
	// An application may store past its packet's length (still inside the
	// packet region). The dirty window must widen to cover such stores,
	// or the next shorter packet would see the stale byte.
	src := `
		.text
		.global e
	e:
		li  t0, 0xAB
		li  t1, 32
		ble a1, t1, skip
		sb  t0, 96(a0)
	skip:
		mv  a0, a1
		ret
	`
	b, err := New(&App{Name: "poke", Source: src, Entry: "e"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.ProcessPacket(ipPacket(40)); err != nil { // writes offset 96
		t.Fatal(err)
	}
	if got := b.PacketBytes(97)[96]; got != 0xAB {
		t.Fatalf("app store not visible: byte 96 = %#x", got)
	}
	if _, err := b.ProcessPacket(ipPacket(20)); err != nil { // takes skip branch
		t.Fatal(err)
	}
	if got := b.PacketBytes(97)[96]; got != 0 {
		t.Fatalf("stale app-written byte survived: byte 96 = %#x", got)
	}
}

func TestBenchErrors(t *testing.T) {
	if _, err := New(&App{Name: "x", Source: "nop", Entry: ""}, Options{}); err == nil {
		t.Error("missing entry symbol accepted")
	}
	if _, err := New(&App{Name: "x", Source: "frob", Entry: "e"}, Options{}); err == nil {
		t.Error("assembly error not propagated")
	}
	if _, err := New(&App{Name: "x", Source: "nop\nret", Entry: "missing"}, Options{}); err == nil {
		t.Error("undefined entry accepted")
	}
	initErr := &App{Name: "x", Source: "e:\nret", Entry: "e",
		Init: func(ld *Loader) error { return ld.SetWord("nosuch", 1) }}
	if _, err := New(initErr, Options{}); err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Errorf("init error not propagated: %v", err)
	}
}

func TestBenchOversizedPacket(t *testing.T) {
	b, err := New(echoApp(0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.ProcessPacket(ipPacket(MaxPacketLen + 1)); err == nil {
		t.Error("oversized packet accepted")
	}
}

func TestBenchStepLimit(t *testing.T) {
	app := &App{Name: "spin", Source: "e:\nj e", Entry: "e"}
	b, err := New(app, Options{StepLimit: 100})
	if err != nil {
		t.Fatal(err)
	}
	_, err = b.ProcessPacket(ipPacket(20))
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("err = %v, want step limit fault", err)
	}
}

func TestBenchFaultMentionsAppAndPacket(t *testing.T) {
	app := &App{Name: "crash", Source: "e:\nlw a0, 0(zero)\nret", Entry: "e"}
	// The verifier statically rejects this program; the test is about the
	// runtime fault message, so load it unverified.
	b, err := New(app, Options{NoVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	_, err = b.ProcessPacket(ipPacket(20))
	if err == nil || !strings.Contains(err.Error(), "crash") || !strings.Contains(err.Error(), "packet 0") {
		t.Errorf("fault message lacks context: %v", err)
	}
}

func TestVerifyGate(t *testing.T) {
	// Jump past the end of the text segment: a static error.
	bad := &App{Name: "escape", Source: "e:\nj 0x100000\nhalt", Entry: "e"}
	_, err := New(bad, Options{})
	var verr *VerifyError
	if !errors.As(err, &verr) {
		t.Fatalf("want *VerifyError, got %v", err)
	}
	if verr.App != "escape" || !verr.Diags.HasErrors() {
		t.Errorf("VerifyError lacks context: %+v", verr)
	}
	if !strings.Contains(err.Error(), "NoVerify") {
		t.Errorf("error should point at the escape hatch: %v", err)
	}
	// The same program loads when verification is off.
	if _, err := New(bad, Options{NoVerify: true}); err != nil {
		t.Fatalf("NoVerify load failed: %v", err)
	}
	// Warnings alone never block a load.
	warn := &App{Name: "warny", Source: "e:\nadd a2, t2, zero\nhalt", Entry: "e"}
	if _, err := New(warn, Options{}); err != nil {
		t.Fatalf("warning-only program rejected: %v", err)
	}
	ds, err := Verify(warn, Options{})
	if err != nil || len(ds) == 0 || ds.HasErrors() {
		t.Errorf("Verify(warny) = %v, %v; want warnings only", ds, err)
	}
}

func TestLayoutFor(t *testing.T) {
	prog, err := asm.Assemble("e: halt", asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	l := LayoutFor(prog, 0)
	if l.TextBase != prog.TextBase || l.TextEnd != prog.TextEnd() {
		t.Errorf("text bounds wrong: %+v", l)
	}
	if l.DataEnd != prog.DataBase+DefaultHeapSize {
		t.Errorf("zero heap must default: %+v", l)
	}
	if l.Classify(PacketBase) != vm.RegionPacket || l.Classify(StackTop-4) != vm.RegionStack {
		t.Errorf("regions wrong: %+v", l)
	}
}

func TestLoaderAlloc(t *testing.T) {
	b, err := New(echoApp(0), Options{HeapSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	ld := b.Loader()
	a1, err := ld.Alloc(100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a1%8 != 0 {
		t.Errorf("allocation %#x not aligned", a1)
	}
	a2, err := ld.Alloc(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a2 < a1+100 {
		t.Errorf("allocations overlap: %#x after %#x+100", a2, a1)
	}
	if _, err := ld.Alloc(1<<20, 4); err == nil {
		t.Error("over-budget allocation accepted")
	}
	if _, err := ld.Alloc(4, 3); err == nil || !strings.Contains(err.Error(), "not a power of two") {
		t.Errorf("alignment 3: err = %v, want power-of-two complaint", err)
	}
	// Alignments 1 and 2 ARE powers of two; the rejection must say what
	// is actually wrong (below the word-alignment minimum).
	for _, align := range []uint32{1, 2} {
		_, err := ld.Alloc(4, align)
		if err == nil {
			t.Fatalf("alignment %d accepted", align)
		}
		if strings.Contains(err.Error(), "power of two") {
			t.Errorf("alignment %d: err %q misdescribes a power of two", align, err)
		}
		if !strings.Contains(err.Error(), "minimum word alignment") {
			t.Errorf("alignment %d: err = %v, want minimum-alignment complaint", align, err)
		}
	}
	if ld.HeapNext() < a2+4 {
		t.Errorf("HeapNext = %#x", ld.HeapNext())
	}
}

func TestRunPackets(t *testing.T) {
	b, err := New(echoApp(0), Options{KeepRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	pkts := []*trace.Packet{ipPacket(20), ipPacket(40), ipPacket(60)}
	var verdicts []uint32
	recs, err := b.RunPackets(pkts, func(i int, r Result) {
		verdicts = append(verdicts, r.Verdict)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || len(verdicts) != 3 {
		t.Fatalf("records %d, verdicts %d", len(recs), len(verdicts))
	}
	for i, want := range []uint32{20, 40, 60} {
		if verdicts[i] != want {
			t.Errorf("verdict %d = %d, want %d", i, verdicts[i], want)
		}
	}
	if len(b.Collector().Records) != 3 {
		t.Errorf("collector kept %d records", len(b.Collector().Records))
	}
	s := stats.Summarize(recs)
	if s.Packets != 3 {
		t.Errorf("summary packets = %d", s.Packets)
	}
}

func TestRunTraceFromReader(t *testing.T) {
	prof, _ := gen.ProfileByName("LAN")
	pkts := gen.Generate(prof, 10)
	var buf bytes.Buffer
	w, _ := trace.NewPcapWriter(&buf)
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	r, err := trace.NewPcapReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(echoApp(0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := b.RunTrace(r, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 7 {
		t.Errorf("RunTrace(limit 7) processed %d", len(recs))
	}
}

func TestLayoutRegionsDisjoint(t *testing.T) {
	b, err := New(echoApp(0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	l := b.cpu.Layout
	regions := []struct {
		name      string
		base, end uint32
	}{
		{"text", l.TextBase, l.TextEnd},
		{"packet", l.PacketBase, l.PacketEnd},
		{"data", l.DataBase, l.DataEnd},
		{"stack", l.StackBase, l.StackEnd},
	}
	for i, a := range regions {
		if a.base >= a.end {
			t.Errorf("region %s empty or inverted: [%#x, %#x)", a.name, a.base, a.end)
		}
		for _, bb := range regions[i+1:] {
			if a.base < bb.end && bb.base < a.end {
				t.Errorf("regions %s and %s overlap", a.name, bb.name)
			}
		}
	}
	if l.Classify(vm.ReturnAddress) != vm.RegionNone {
		t.Error("magic return address is mapped")
	}
}

func TestBenchAccessors(t *testing.T) {
	b, err := New(echoApp(0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Program() == nil || b.Collector() == nil || b.BlockMap() == nil || b.Memory() == nil {
		t.Error("accessor returned nil")
	}
	if b.BlockMap().NumBlocks() == 0 {
		t.Error("no blocks in echo app")
	}
}

func TestPoolMatchesSingleCore(t *testing.T) {
	// For a per-packet-stateless application, the pool's records must be
	// byte-identical to a single-core run in packet order.
	app := echoApp(7)
	pkts := make([]*trace.Packet, 40)
	for i := range pkts {
		pkts[i] = ipPacket(20 + i)
	}
	single, err := New(app, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.RunPackets(pkts, nil)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(app, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pool.Cores() != 4 {
		t.Fatalf("Cores = %d", pool.Cores())
	}
	got, err := pool.RunPackets(pkts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("pool returned %d records", len(got))
	}
	for i := range want {
		if got[i].Index != i {
			t.Errorf("record %d has index %d", i, got[i].Index)
		}
		if got[i].Instructions != want[i].Instructions ||
			got[i].Unique != want[i].Unique ||
			got[i].PacketAccesses() != want[i].PacketAccesses() ||
			got[i].NonPacketAccesses() != want[i].NonPacketAccesses() {
			t.Errorf("record %d differs: pool %+v, single %+v", i, got[i], want[i])
		}
	}
	// Each core can be inspected afterwards.
	if pool.Bench(0) == nil || pool.Bench(3) == nil {
		t.Error("Bench accessor returned nil")
	}
}

func TestPoolErrorPropagation(t *testing.T) {
	crash := &App{Name: "crash", Source: "e:\nlw a0, 0(zero)\nret", Entry: "e"}
	pool, err := NewPool(crash, 2, Options{NoVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.RunPackets([]*trace.Packet{ipPacket(20), ipPacket(20)}, nil); err == nil {
		t.Error("pool swallowed a core fault")
	}
	if _, err := NewPool(crash, 0, Options{NoVerify: true}); err == nil {
		t.Error("zero-core pool accepted")
	}
	bad := &App{Name: "bad", Source: "frob", Entry: "e"}
	if _, err := NewPool(bad, 2, Options{}); err == nil {
		t.Error("pool accepted unassemblable app")
	}
}

func TestLoaderAllocAtLimit(t *testing.T) {
	b, err := New(echoApp(0), Options{HeapSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	ld := b.Loader()
	// Consume almost everything, leaving less than one alignment unit.
	remaining := b.cpu.Layout.DataEnd - ld.HeapNext()
	if _, err := ld.Alloc(remaining-2, 4); err != nil {
		t.Fatal(err)
	}
	// The alignment bump would land past the limit; must error, not wrap.
	if _, err := ld.Alloc(1, 64); err == nil {
		t.Error("allocation past the heap limit accepted")
	}
	if _, err := ld.Alloc(4, 4); err == nil {
		t.Error("allocation beyond remaining space accepted")
	}
}
