package core_test

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/packet"
	"repro/internal/route"
	"repro/internal/vm"
)

// enginePair builds two benches for the same application — reference
// interpreter and block-threaded engine — with identical options.
func enginePair(t *testing.T, app func() *core.App, opts core.Options) (interp, threaded *core.Bench) {
	t.Helper()
	o := opts
	o.Engine = core.EngineInterpreter
	interp, err := core.New(app(), o)
	if err != nil {
		t.Fatal(err)
	}
	o.Engine = core.EngineThreaded
	threaded, err = core.New(app(), o)
	if err != nil {
		t.Fatal(err)
	}
	return interp, threaded
}

// TestEngineEquivalenceApps is the system-level half of the engine
// equivalence contract: every bundled application processes a generated
// trace on both engines and must produce bit-identical verdicts, packet
// records (instruction counts, memory accesses, block sets and block
// sequences), coverage footprints, packet-buffer contents, and final
// memory images.
func TestEngineEquivalenceApps(t *testing.T) {
	pkts := mixedSizePackets(t, 30)
	var dsts []uint32
	for _, p := range pkts {
		if h, err := packet.ParseIPv4(p.Data); err == nil {
			dsts = append(dsts, h.Dst)
		}
	}
	tbl := route.TableFromTraffic(dsts, 1024, 16, 1)

	cases := []struct {
		name string
		app  func() *core.App
	}{
		{"radix", func() *core.App { return apps.IPv4Radix(tbl) }},
		{"trie", func() *core.App { return apps.IPv4Trie(tbl) }},
		{"flow", func() *core.App { return apps.FlowClassification(64) }},
		{"tsa", func() *core.App { return apps.TSAApp(0x5453412D31363A31) }},
		{"payload-scan", func() *core.App { return apps.PayloadScan([4]byte{0xDE, 0xAD, 0xBE, 0xEF}) }},
		{"frag", func() *core.App { return apps.Frag(576) }},
	}
	opts := core.Options{KeepRecords: true, Detail: true, Coverage: true}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			interp, threaded := enginePair(t, tc.app, opts)
			for i, p := range pkts {
				wantRes, wantErr := interp.ProcessPacket(p)
				gotRes, gotErr := threaded.ProcessPacket(p)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("packet %d: error divergence: interp %v, threaded %v", i, wantErr, gotErr)
				}
				if wantErr != nil {
					var wf, gf *vm.Fault
					errors.As(wantErr, &wf)
					errors.As(gotErr, &gf)
					if !reflect.DeepEqual(wf, gf) {
						t.Fatalf("packet %d: fault divergence: interp %+v, threaded %+v", i, wf, gf)
					}
					continue
				}
				if wantRes.Verdict != gotRes.Verdict {
					t.Fatalf("packet %d: verdict %d vs %d", i, wantRes.Verdict, gotRes.Verdict)
				}
				if !reflect.DeepEqual(wantRes.Record, gotRes.Record) {
					t.Fatalf("packet %d: record differs:\n  interp   %+v\n  threaded %+v",
						i, wantRes.Record, gotRes.Record)
				}
				wb, gb := interp.PacketBytes(len(p.Data)), threaded.PacketBytes(len(p.Data))
				if !reflect.DeepEqual(wb, gb) {
					t.Fatalf("packet %d: packet buffer differs after processing", i)
				}
			}
			wc, gc := interp.Collector(), threaded.Collector()
			if !reflect.DeepEqual(wc.Records, gc.Records) {
				t.Error("retained packet records differ")
			}
			if wc.InstrMemSize() != gc.InstrMemSize() ||
				wc.DataMemSize() != gc.DataMemSize() ||
				wc.PacketMemSize() != gc.PacketMemSize() {
				t.Errorf("coverage differs: interp (%d,%d,%d), threaded (%d,%d,%d)",
					wc.InstrMemSize(), wc.DataMemSize(), wc.PacketMemSize(),
					gc.InstrMemSize(), gc.DataMemSize(), gc.PacketMemSize())
			}
			if !reflect.DeepEqual(wc.PCCounts, gc.PCCounts) {
				t.Error("per-PC execution counts differ")
			}
			if !interp.Memory().Equal(threaded.Memory()) {
				t.Error("final memory images differ")
			}
		})
	}
}

// TestEngineEquivalenceFaults drives deliberately broken programs
// (loaded with NoVerify) through both engines and checks that the
// surfaced fault — kind, PC, address — is identical.
func TestEngineEquivalenceFaults(t *testing.T) {
	pkts := mixedSizePackets(t, 1)
	cases := []struct {
		name, src string
	}{
		{"unmapped-load", "e:\nlw a0, 0(zero)\nret"},
		{"misaligned-load", "e:\naddi t0, a0, 1\nlw a1, 0(t0)\nret"},
		{"text-store", "e:\nla t0, e\nsw a0, 0(t0)\nret"},
		{"bad-fetch", "e:\naddi t0, a1, 8\njr t0"},
		{"step-limit", "e:\nj e"},
		{"run-off-end", "e:\naddi a0, zero, 7"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			app := func() *core.App {
				return &core.App{Name: tc.name, Source: tc.src, Entry: "e"}
			}
			interp, threaded := enginePair(t, app, core.Options{NoVerify: true, StepLimit: 10_000})
			_, wantErr := interp.ProcessPacket(pkts[0])
			_, gotErr := threaded.ProcessPacket(pkts[0])
			if wantErr == nil || gotErr == nil {
				t.Fatalf("expected faults, got interp %v, threaded %v", wantErr, gotErr)
			}
			var wf, gf *vm.Fault
			if !errors.As(wantErr, &wf) || !errors.As(gotErr, &gf) {
				t.Fatalf("non-Fault error: interp %v, threaded %v", wantErr, gotErr)
			}
			if !reflect.DeepEqual(wf, gf) {
				t.Fatalf("fault divergence:\n  interp   %+v\n  threaded %+v", wf, gf)
			}
		})
	}
}

// TestEngineEquivalenceCorpus runs every assemblable program in the
// assembler's fuzz corpus bare on the simulator — framework ABI, both
// engines — and compares the complete final machine state.
func TestEngineEquivalenceCorpus(t *testing.T) {
	for i, src := range asm.FuzzSeeds {
		prog, err := asm.Assemble(src, asm.Options{})
		if err != nil || len(prog.Text) == 0 {
			continue
		}
		layout := core.LayoutFor(prog, 1<<20)
		want := runCorpusProgram(prog, layout, core.EngineInterpreter)
		got := runCorpusProgram(prog, layout, core.EngineThreaded)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("seed %d %q: engines diverge:\n  interp   %+v\n  threaded %+v",
				i, src, want, got)
		}
		if !want.mem.Equal(got.mem) {
			t.Errorf("seed %d %q: final memory images differ", i, src)
		}
	}
}

// corpusState is the observable outcome of a bare corpus run.
type corpusState struct {
	Regs  [isa.NumRegs]uint32
	PC    uint32
	Steps uint64
	Fault *vm.Fault
	mem   *vm.Memory
}

func runCorpusProgram(prog *asm.Program, layout vm.Layout, engine core.EngineKind) corpusState {
	mem := vm.NewMemory()
	mem.WriteBytes(prog.DataBase, prog.Data)
	cpu := vm.New(prog.Text, prog.TextBase, mem)
	cpu.Layout = layout
	cpu.SetReg(isa.A0, layout.PacketBase)
	cpu.SetReg(isa.A1, 64)
	cpu.SetReg(isa.SP, layout.StackEnd)
	cpu.SetReg(isa.RA, vm.ReturnAddress)
	cpu.PC = corpusEntry(prog)

	var err error
	if engine == core.EngineThreaded {
		tprog := vm.Translate(prog.Text, prog.TextBase, analysis.NewBlockMap(prog.Text, prog.TextBase))
		_, _, err = cpu.RunProgram(tprog, 100_000)
	} else {
		_, _, err = cpu.Run(100_000)
	}
	st := corpusState{Regs: cpu.Regs, PC: cpu.PC, Steps: cpu.Steps(), mem: mem}
	if err != nil {
		errors.As(err, &st.Fault)
	}
	return st
}

// corpusEntry mirrors the verifier's default entry resolution: the first
// text-segment global, else the base of the text segment.
func corpusEntry(prog *asm.Program) uint32 {
	for _, g := range prog.Globals {
		if addr, ok := prog.Symbols[g]; ok && addr >= prog.TextBase && addr < prog.TextEnd() {
			return addr
		}
	}
	return prog.TextBase
}

// compiledPair builds interpreter and compiled-engine benches for the
// same application with identical options.
func compiledPair(t *testing.T, app func() *core.App, opts core.Options) (interp, compiled *core.Bench) {
	t.Helper()
	o := opts
	o.Engine = core.EngineInterpreter
	interp, err := core.New(app(), o)
	if err != nil {
		t.Fatal(err)
	}
	o.Engine = core.EngineCompiled
	compiled, err = core.New(app(), o)
	if err != nil {
		t.Fatal(err)
	}
	return interp, compiled
}

// TestCompiledEngineEquivalenceApps extends the system-level engine
// equivalence contract to the compiled tier: every bundled application
// processes the trace untraced (a tracer would fall the compiled engine
// back to the threaded traced loop by contract — detaching the collector
// is what makes the closures actually execute) on the interpreter and
// the compiled engine, and must produce bit-identical verdicts, faults,
// packet-buffer contents, and final memory images. The stats assertion
// at the end proves the runs went through compiled chains, so the
// comparison is not vacuously exercising the cold tier.
func TestCompiledEngineEquivalenceApps(t *testing.T) {
	// Enough packets that hot blocks cross the online promotion
	// threshold (vm.DefaultPromoteAfter) early in the run.
	pkts := mixedSizePackets(t, 40)
	var dsts []uint32
	for _, p := range pkts {
		if h, err := packet.ParseIPv4(p.Data); err == nil {
			dsts = append(dsts, h.Dst)
		}
	}
	tbl := route.TableFromTraffic(dsts, 1024, 16, 1)

	cases := []struct {
		name string
		app  func() *core.App
	}{
		{"radix", func() *core.App { return apps.IPv4Radix(tbl) }},
		{"trie", func() *core.App { return apps.IPv4Trie(tbl) }},
		{"flow", func() *core.App { return apps.FlowClassification(64) }},
		{"tsa", func() *core.App { return apps.TSAApp(0x5453412D31363A31) }},
		{"payload-scan", func() *core.App { return apps.PayloadScan([4]byte{0xDE, 0xAD, 0xBE, 0xEF}) }},
		{"frag", func() *core.App { return apps.Frag(576) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			interp, compiled := compiledPair(t, tc.app, core.Options{})
			interp.SetTracing(false)
			compiled.SetTracing(false)
			for i, p := range pkts {
				wantRes, wantErr := interp.ProcessPacket(p)
				gotRes, gotErr := compiled.ProcessPacket(p)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("packet %d: error divergence: interp %v, compiled %v", i, wantErr, gotErr)
				}
				if wantErr != nil {
					var wf, gf *vm.Fault
					errors.As(wantErr, &wf)
					errors.As(gotErr, &gf)
					if !reflect.DeepEqual(wf, gf) {
						t.Fatalf("packet %d: fault divergence: interp %+v, compiled %+v", i, wf, gf)
					}
					continue
				}
				if wantRes.Verdict != gotRes.Verdict {
					t.Fatalf("packet %d: verdict %d vs %d", i, wantRes.Verdict, gotRes.Verdict)
				}
				wb, gb := interp.PacketBytes(len(p.Data)), compiled.PacketBytes(len(p.Data))
				if !reflect.DeepEqual(wb, gb) {
					t.Fatalf("packet %d: packet buffer differs after processing", i)
				}
			}
			if !interp.Memory().Equal(compiled.Memory()) {
				t.Error("final memory images differ")
			}
			st := compiled.CompiledStats()
			if st.BlocksCompiled == 0 {
				t.Fatal("no blocks were compiled: the run never exercised the compiled tier")
			}
			var exits uint64
			for _, n := range st.Exits {
				exits += n
			}
			if exits == 0 {
				t.Fatalf("compiled chains never executed: stats %+v", st)
			}
		})
	}
}

// diffPanicTracer panics with a non-Fault value on the first instruction
// of a chosen packet, standing in for an instrumentation bug.
type diffPanicTracer struct {
	target int
	armed  bool
}

func (p *diffPanicTracer) BeginPacket(index int) { p.armed = index == p.target }
func (p *diffPanicTracer) Instr(pc uint32, in isa.Instruction) {
	if p.armed {
		p.armed = false
		panic("tracer bug")
	}
}
func (p *diffPanicTracer) Mem(pc, addr uint32, size uint8, write bool, region vm.Region) {}

// TestCompiledEnginePanicEquivalence pins FaultHostPanic equivalence for
// the compiled engine: a panicking tracer (which, being a tracer, also
// falls the engine back to the threaded traced loop — the documented
// traced-run contract) surfaces the identical recovered FaultHostPanic
// on both engines, and both benches keep working afterwards.
func TestCompiledEnginePanicEquivalence(t *testing.T) {
	pkts := mixedSizePackets(t, 4)
	app := func() *core.App { return apps.FlowClassification(64) }
	interp, compiled := compiledPair(t, app, core.Options{})
	interp.AddTracer(&diffPanicTracer{target: 1})
	compiled.AddTracer(&diffPanicTracer{target: 1})

	for i, p := range pkts {
		wantRes, wantErr := interp.ProcessPacket(p)
		gotRes, gotErr := compiled.ProcessPacket(p)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("packet %d: error divergence: interp %v, compiled %v", i, wantErr, gotErr)
		}
		if wantErr != nil {
			var wf, gf *vm.Fault
			if !errors.As(wantErr, &wf) || !errors.As(gotErr, &gf) {
				t.Fatalf("packet %d: non-Fault error: interp %v, compiled %v", i, wantErr, gotErr)
			}
			if wf.Kind != vm.FaultHostPanic || !reflect.DeepEqual(wf, gf) {
				t.Fatalf("packet %d: fault divergence: interp %+v, compiled %+v", i, wf, gf)
			}
			continue
		}
		if wantRes.Verdict != gotRes.Verdict {
			t.Fatalf("packet %d: verdict %d vs %d", i, wantRes.Verdict, gotRes.Verdict)
		}
	}
}

// TestCompiledEngineNoVerifyNeverCompiles is the hostile half of the
// compiled tier's NoVerify contract at the framework level: a bench
// loaded with NoVerify has no verifier facts, so even with
// Engine=EngineCompiled and tracing detached, no block may ever be
// compiled or executed as a closure — the bench silently runs the
// threaded engine's fully-checked translation, with identical results.
func TestCompiledEngineNoVerifyNeverCompiles(t *testing.T) {
	pkts := mixedSizePackets(t, 40)
	app := func() *core.App { return apps.FlowClassification(64) }
	interp, compiled := compiledPair(t, app, core.Options{NoVerify: true})
	interp.SetTracing(false)
	compiled.SetTracing(false)
	for i, p := range pkts {
		wantRes, wantErr := interp.ProcessPacket(p)
		gotRes, gotErr := compiled.ProcessPacket(p)
		if wantErr != nil || gotErr != nil {
			t.Fatalf("packet %d: interp err %v, compiled err %v", i, wantErr, gotErr)
		}
		if wantRes.Verdict != gotRes.Verdict {
			t.Fatalf("packet %d: verdict %d vs %d", i, wantRes.Verdict, gotRes.Verdict)
		}
	}
	if st := compiled.CompiledStats(); st != (vm.CompiledStats{}) {
		t.Fatalf("NoVerify bench executed the compiled tier: stats %+v", st)
	}
}
