package core_test

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/packet"
	"repro/internal/route"
	"repro/internal/trace"
)

// mixedSizePackets builds a descending-then-ascending packet-size
// sequence from a generated trace: the descending half exposes stale
// bytes leaking from longer into shorter packets, the ascending half
// exposes over-zealous zeroing, together pinning the dirty-length
// optimization in ProcessPacket.
func mixedSizePackets(t *testing.T, n int) []*trace.Packet {
	t.Helper()
	prof, err := gen.ProfileByName("MRA")
	if err != nil {
		t.Fatal(err)
	}
	pkts := gen.Generate(prof, n)
	sort.SliceStable(pkts, func(i, j int) bool {
		return len(pkts[i].Data) > len(pkts[j].Data)
	})
	out := make([]*trace.Packet, 0, 2*len(pkts))
	out = append(out, pkts...)
	for i := len(pkts) - 1; i >= 0; i-- {
		out = append(out, pkts[i])
	}
	return out
}

// TestPoolMatchesSingleCoreStateless asserts that for every stateless
// application the pool scheduler produces records identical to a
// sequential single-core run — same instruction counts, memory accesses,
// and block sets — with Index equal to the packet's trace position.
func TestPoolMatchesSingleCoreStateless(t *testing.T) {
	pkts := mixedSizePackets(t, 60)
	var dsts []uint32
	for _, p := range pkts {
		if h, err := packet.ParseIPv4(p.Data); err == nil {
			dsts = append(dsts, h.Dst)
		}
	}
	tbl := route.TableFromTraffic(dsts, 1024, 16, 1)

	cases := []struct {
		name string
		app  func() *core.App
	}{
		{"radix", func() *core.App { return apps.IPv4Radix(tbl) }},
		{"trie", func() *core.App { return apps.IPv4Trie(tbl) }},
		{"tsa", func() *core.App { return apps.TSAApp(0x5453412D31363A31) }},
		{"payload-scan", func() *core.App { return apps.PayloadScan([4]byte{0xDE, 0xAD, 0xBE, 0xEF}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			single, err := core.New(tc.app(), core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			want, err := single.RunPackets(pkts, nil)
			if err != nil {
				t.Fatal(err)
			}
			pool, err := core.NewPool(tc.app(), 4, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := pool.RunPackets(pkts, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("pool returned %d records, single %d", len(got), len(want))
			}
			for i := range want {
				if got[i].Index != i {
					t.Errorf("record %d has index %d, want trace position", i, got[i].Index)
				}
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Errorf("record %d differs:\n  pool   %+v\n  single %+v", i, got[i], want[i])
				}
			}
		})
	}
}
