package core

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vm"
)

// derefSrc faults with FaultUnmapped when byte 1 of the packet is nonzero
// (it dereferences packet base + data[1]<<16, which lands past the 64 KiB
// packet region for any nonzero value), then loops data[2] times so
// per-packet instruction counts vary with content. Clean packets keep
// byte 1 zero; a flipped header byte at offset 1 is a reliable injected
// fault.
const derefSrc = `
	.text
	.global d
d:
	lbu  t0, 1(a0)
	slli t0, t0, 16
	add  t0, a0, t0
	lw   t1, 0(t0)
	lbu  t2, 2(a0)
	mv   t3, zero
loop:
	beq  t3, t2, done
	addi t3, t3, 1
	j    loop
done:
	mv   a0, a1
	ret
`

func derefApp() *App {
	return &App{Name: "deref", Source: derefSrc, Entry: "d"}
}

// derefPackets builds n clean packets with distinct sizes and loop
// counts, so their workload records are distinguishable.
func derefPackets(n int) []*trace.Packet {
	pkts := make([]*trace.Packet, n)
	for i := range pkts {
		p := ipPacket(24 + i)
		p.Data[2] = byte(3 * i)
		pkts[i] = p
	}
	return pkts
}

// TestSkipPolicyEquivalence is the robustness acceptance test: a pool run
// under SkipAndRecord over a trace with injected corruption (a flipped
// header byte that faults the VM, plus a forced mid-execution fault)
// completes, reports per-fault-kind counts, keeps the quarantined
// packets' index slots, and yields byte-identical statistics for every
// unaffected packet compared to a clean FailFast run.
func TestSkipPolicyEquivalence(t *testing.T) {
	const n = 12
	pkts := derefPackets(n)

	collect := func(pool *Pool, r trace.Reader) ([]stats.PacketRecord, error) {
		records := make([]stats.PacketRecord, n)
		_, err := pool.RunTrace(r, 0, func(i int, res Result) {
			records[i] = res.Record
		})
		return records, err
	}

	// Clean reference: FailFast over the pristine packets.
	cleanPool, err := NewPool(derefApp(), 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := collect(cleanPool, trace.NewSliceReader(pkts))
	if err != nil {
		t.Fatal(err)
	}

	// Faulty run: flip byte 1 of packet 2 (FaultUnmapped in the app),
	// force a VM fault 4 instructions into packet 5, and truncate packet
	// 7 (runs fine, but is an affected packet).
	plan, err := faultinject.ParsePlan("flip@2:1,vmfault@5:4,trunc@7:20")
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(1, plan)
	skipPool, err := NewPool(derefApp(), 3, Options{Errors: ErrorPolicy{Policy: SkipAndRecord, ErrorBudget: 4}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < skipPool.Cores(); i++ {
		skipPool.Bench(i).AddTracer(inj.Tracer())
	}
	faulty, err := collect(skipPool, inj.Reader(trace.NewSliceReader(pkts)))
	if err != nil {
		t.Fatalf("skip run did not complete: %v", err)
	}

	// Quarantined packets keep their slots, tagged with the right kinds.
	if !faulty[2].Faulted() || faulty[2].Fault != vm.FaultUnmapped || faulty[2].Index != 2 {
		t.Errorf("packet 2 record = %+v, want FaultUnmapped quarantine at index 2", faulty[2])
	}
	if !faulty[5].Faulted() || faulty[5].Fault != vm.FaultBadInstr || faulty[5].Index != 5 {
		t.Errorf("packet 5 record = %+v, want FaultBadInstr quarantine at index 5", faulty[5])
	}

	// Unaffected packets: byte-identical records.
	affected := map[int]bool{2: true, 5: true, 7: true}
	for i := 0; i < n; i++ {
		if affected[i] {
			continue
		}
		if !reflect.DeepEqual(faulty[i], clean[i]) {
			t.Errorf("packet %d record differs from the clean run:\nfaulty: %+v\nclean:  %+v", i, faulty[i], clean[i])
		}
	}

	// Aggregates: per-kind counts, and means that exclude the quarantine.
	sum := stats.Summarize(faulty)
	if sum.Packets != n || sum.Faulted != 2 || sum.Measured() != n-2 {
		t.Errorf("Packets/Faulted/Measured = %d/%d/%d, want %d/2/%d", sum.Packets, sum.Faulted, sum.Measured(), n, n-2)
	}
	if sum.FaultCounts[vm.FaultUnmapped] != 1 || sum.FaultCounts[vm.FaultBadInstr] != 1 {
		t.Errorf("FaultCounts = %v", sum.FaultCounts)
	}
}

func TestSkipPolicyErrorBudget(t *testing.T) {
	b, err := New(derefApp(), Options{Errors: ErrorPolicy{Policy: SkipAndRecord, ErrorBudget: 1}})
	if err != nil {
		t.Fatal(err)
	}
	bad1, bad2 := ipPacket(32), ipPacket(32)
	bad1.Data[1], bad2.Data[1] = 1, 1
	pkts := []*trace.Packet{ipPacket(32), bad1, ipPacket(32), bad2, ipPacket(32)}
	recs, err := b.RunPackets(pkts, nil)
	if err == nil || !strings.Contains(err.Error(), "error budget") {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
	if !errors.Is(err, vm.FaultUnmapped) {
		t.Errorf("budget error does not unwrap to the underlying fault: %v", err)
	}
	// Records up to the aborting packet: 0 measured, 1 quarantined, 2
	// measured; the run stops at packet 3.
	if len(recs) != 3 || !recs[1].Faulted() || recs[0].Faulted() || recs[2].Faulted() {
		t.Fatalf("records before abort = %+v", recs)
	}
}

func TestRetryPolicyClearsTransientFault(t *testing.T) {
	// The injected fault fires on the first execution of packet 1 only
	// (Times: 1), so one retry clears it.
	plan, err := faultinject.ParsePlan("vmfault@1:2:1")
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(3, plan)
	b, err := New(derefApp(), Options{Errors: ErrorPolicy{Policy: Retry, MaxAttempts: 2}})
	if err != nil {
		t.Fatal(err)
	}
	b.AddTracer(inj.Tracer())
	recs, err := b.RunPackets(derefPackets(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if r.Faulted() {
			t.Errorf("packet %d quarantined despite a clean retry: %+v", i, r)
		}
	}
	if len(recs) != 4 {
		t.Fatalf("got %d records", len(recs))
	}
}

func TestRetryPolicyQuarantinesPersistentFault(t *testing.T) {
	// No Times bound: the fault fires on every attempt, so retries
	// exhaust and the packet is quarantined.
	plan, err := faultinject.ParsePlan("vmfault@1:2")
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(3, plan)
	b, err := New(derefApp(), Options{Errors: ErrorPolicy{Policy: Retry, MaxAttempts: 3}})
	if err != nil {
		t.Fatal(err)
	}
	b.AddTracer(inj.Tracer())
	recs, err := b.RunPackets(derefPackets(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !recs[1].Faulted() || recs[1].Fault != vm.FaultBadInstr {
		t.Errorf("packet 1 = %+v, want FaultBadInstr quarantine", recs[1])
	}
	if recs[0].Faulted() || recs[2].Faulted() || recs[3].Faulted() {
		t.Error("retry quarantined the wrong packets")
	}
}

// panicTracer blows up with a non-Fault value partway through a chosen
// packet, standing in for an instrumentation bug.
type panicTracer struct {
	target int
	armed  bool
}

func (p *panicTracer) BeginPacket(index int) { p.armed = index == p.target }
func (p *panicTracer) Instr(pc uint32, in isa.Instruction) {
	if p.armed {
		p.armed = false
		panic("tracer bug")
	}
}
func (p *panicTracer) Mem(pc, addr uint32, size uint8, write bool, region vm.Region) {}

// TestPoolWorkerPanicRecovery pins the contract that a panicking tracer
// inside a pool worker cannot kill the process: under FailFast it becomes
// an ordinary run error carrying FaultHostPanic; under SkipAndRecord the
// packet is quarantined and the run completes.
func TestPoolWorkerPanicRecovery(t *testing.T) {
	pkts := derefPackets(8)

	pool, err := NewPool(derefApp(), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pool.Cores(); i++ {
		pool.Bench(i).AddTracer(&panicTracer{target: 3})
	}
	_, err = pool.RunPackets(pkts, nil)
	if err == nil || !strings.Contains(err.Error(), "tracer bug") {
		t.Fatalf("err = %v, want recovered panic", err)
	}
	if !errors.Is(err, vm.FaultHostPanic) {
		t.Errorf("recovered panic error does not carry FaultHostPanic: %v", err)
	}

	pool, err = NewPool(derefApp(), 2, Options{Errors: ErrorPolicy{Policy: SkipAndRecord}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pool.Cores(); i++ {
		pool.Bench(i).AddTracer(&panicTracer{target: 3})
	}
	recs, err := pool.RunPackets(pkts, nil)
	if err != nil {
		t.Fatalf("skip run failed: %v", err)
	}
	if !recs[3].Faulted() || recs[3].Fault != vm.FaultHostPanic {
		t.Errorf("packet 3 = %+v, want FaultHostPanic quarantine", recs[3])
	}
	for i, r := range recs {
		if i != 3 && r.Faulted() {
			t.Errorf("packet %d quarantined unexpectedly", i)
		}
	}
}

func TestOversizePacketUnderPolicies(t *testing.T) {
	big := &trace.Packet{Data: make([]byte, MaxPacketLen+1)}
	big.Data[0] = 0x45

	b, err := New(derefApp(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.ProcessPacket(big); !errors.Is(err, vm.FaultOversizePacket) {
		t.Errorf("FailFast oversize err = %v, want FaultOversizePacket", err)
	}

	b, err = New(derefApp(), Options{Errors: ErrorPolicy{Policy: SkipAndRecord}})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := b.RunPackets([]*trace.Packet{ipPacket(32), big, ipPacket(32)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !recs[1].Faulted() || recs[1].Fault != vm.FaultOversizePacket {
		t.Errorf("oversize record = %+v", recs[1])
	}
	if recs[2].Faulted() || recs[2].Index != 2 {
		t.Errorf("packet after oversize = %+v, want measured at index 2", recs[2])
	}
}

func TestParseFaultPolicy(t *testing.T) {
	for in, want := range map[string]FaultPolicy{
		"fail-fast": FailFast, "failfast": FailFast,
		"skip": SkipAndRecord, "skip-and-record": SkipAndRecord,
		"retry": Retry,
	} {
		got, err := ParseFaultPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseFaultPolicy(%q) = %v, %v", in, got, err)
		}
		if round, err := ParseFaultPolicy(want.String()); err != nil || round != want {
			t.Errorf("String/Parse round trip broken for %v", want)
		}
	}
	if _, err := ParseFaultPolicy("explode"); err == nil {
		t.Error("bad policy name accepted")
	}
}
