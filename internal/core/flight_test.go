package core

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/ptrace"
	"repro/internal/trace"
)

// flightDump mirrors the JSON shape of ptrace.WriteFlight output for
// test parsing.
type flightDump struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	OtherData struct {
		Cause      string `json:"cause"`
		FailWorker int    `json:"fail_worker"`
		FailIndex  int64  `json:"fail_index"`
		Lanes      []struct {
			Lane      int    `json:"lane"`
			Name      string `json:"name"`
			Events    uint64 `json:"events"`
			LastStage string `json:"last_stage"`
			LastIndex int64  `json:"last_index"`
			InFlight  bool   `json:"in_flight"`
		} `json:"lanes"`
	} `json:"otherData"`
}

func readFlightDump(t *testing.T, path string) flightDump {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("flight dump not written: %v", err)
	}
	var d flightDump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("flight dump is not valid JSON: %v", err)
	}
	return d
}

// execEventsFor returns the packet indices of the exec events a lane's
// ring dumped, in order.
func (d *flightDump) execEventsFor(lane int) []int64 {
	var out []int64
	for _, ev := range d.TraceEvents {
		if ev.Tid != lane || !strings.HasPrefix(ev.Name, "exec") {
			continue
		}
		if idx, ok := ev.Args["index"].(float64); ok {
			out = append(out, int64(idx))
		}
	}
	return out
}

// TestFlightDumpOnStall: a watchdog-killed run must leave a flight dump
// that reconstructs the wedged worker and the packet it was executing.
func TestFlightDumpOnStall(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.json")
	inj := mustPlan(t, "stall@5")
	tr := ptrace.New(ptrace.Config{Lanes: 2, RingEvents: 64})
	pool := poolWithPlan(t, 2, Options{
		StallTimeout: 100 * time.Millisecond,
		Trace:        tr,
		FlightPath:   path,
	}, inj)
	pool.SetBatchSize(1)
	_, err := pool.RunTrace(trace.NewSliceReader(derefPackets(16)), 0, nil)
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StallError", err)
	}

	d := readFlightDump(t, path)
	if !strings.Contains(d.OtherData.Cause, "stalled") {
		t.Errorf("dump cause = %q, want the stall error", d.OtherData.Cause)
	}
	if d.OtherData.FailIndex != 5 {
		t.Errorf("fail_index = %d, want 5", d.OtherData.FailIndex)
	}
	if d.OtherData.FailWorker != se.Worker {
		t.Errorf("fail_worker = %d, want %d", d.OtherData.FailWorker, se.Worker)
	}
	// The wedged worker's ring must contain the exec span of packet 5 —
	// as the in-flight marker if the dump caught it wedged, or as the
	// completed span if cancellation unwedged the cooperative stall
	// first. Either way the failing packet is reconstructable.
	evs := d.execEventsFor(se.Worker)
	found := false
	for _, idx := range evs {
		if idx == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("worker %d ring %v does not contain packet 5's exec span", se.Worker, evs)
	}
	lane := d.OtherData.Lanes[se.Worker]
	if lane.LastIndex != 5 || lane.LastStage != "exec" {
		t.Errorf("wedged lane digest = %+v, want last exec event on packet 5", lane)
	}
}

// TestFlightDumpOnPanic: a fail-fast abort on a recovered guest panic
// must dump the rings with the failing packet's journey intact.
func TestFlightDumpOnPanic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.json")
	inj := mustPlan(t, "panic@7")
	tr := ptrace.New(ptrace.Config{Lanes: 2, RingEvents: 64})
	pool := poolWithPlan(t, 2, Options{Trace: tr, FlightPath: path}, inj)
	pool.SetBatchSize(1)
	_, err := pool.RunTrace(trace.NewSliceReader(derefPackets(16)), 0, nil)
	if err == nil {
		t.Fatal("injected panic did not abort the fail-fast run")
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Fatalf("err = %v, want recovered panic", err)
	}

	d := readFlightDump(t, path)
	if !strings.Contains(d.OtherData.Cause, "panic") {
		t.Errorf("dump cause = %q, want the recovered panic", d.OtherData.Cause)
	}
	// Batch assignment is scheduler-dependent; find the lane that
	// executed packet 7 and check the dump reconstructs the failure.
	found := -1
	for _, lane := range d.OtherData.Lanes {
		for _, idx := range d.execEventsFor(lane.Lane) {
			if idx == 7 {
				found = lane.Lane
			}
		}
	}
	if found < 0 {
		t.Fatalf("no lane's ring contains packet 7's exec span: %+v", d.OtherData.Lanes)
	}
	lane := d.OtherData.Lanes[found]
	if lane.LastIndex != 7 || lane.LastStage != "exec" {
		t.Errorf("failing lane digest = %+v, want last exec event on packet 7", lane)
	}
}

// TestFlightDumpSeededDeterministicFailure: two identically seeded
// runs must fail on the same packet and produce dumps naming the same
// failure.
func TestFlightDumpSeededDeterministicFailure(t *testing.T) {
	causes := make([]string, 2)
	for run := 0; run < 2; run++ {
		path := filepath.Join(t.TempDir(), "flight.json")
		inj := mustPlan(t, "panic@3")
		tr := ptrace.New(ptrace.Config{Lanes: 1, RingEvents: 32})
		pool := poolWithPlan(t, 1, Options{Trace: tr, FlightPath: path}, inj)
		pool.SetBatchSize(1)
		if _, err := pool.RunTrace(trace.NewSliceReader(derefPackets(8)), 0, nil); err == nil {
			t.Fatal("injected panic did not abort the run")
		}
		d := readFlightDump(t, path)
		causes[run] = d.OtherData.Cause
		lane := d.OtherData.Lanes[0]
		if lane.LastIndex != 3 || lane.LastStage != "exec" {
			t.Fatalf("run %d: lane digest = %+v, want last exec on packet 3", run, lane)
		}
	}
	if causes[0] != causes[1] {
		t.Errorf("seeded runs disagree on cause: %q vs %q", causes[0], causes[1])
	}
}
