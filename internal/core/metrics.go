package core

import (
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// runMetrics is a Bench's pre-resolved telemetry handles. Resolving
// every series once at load time keeps the per-packet cost to plain
// atomic adds — no map lookups, no label rendering, no allocation on
// the hot path. A nil *runMetrics (telemetry disabled) costs one nil
// check per packet.
type runMetrics struct {
	packets  *telemetry.Counter
	attempts *telemetry.Counter
	instrs   *telemetry.Counter

	pktReads, pktWrites       *telemetry.Counter
	nonPktReads, nonPktWrites *telemetry.Counter

	latency *telemetry.Histogram

	// faulted is indexed by vm.FaultKind (masked); unknown kinds hit a
	// nil (no-op) slot.
	faulted [16]*telemetry.Counter

	// Compiled-tier series, flushed as deltas after each packet of an
	// EngineCompiled bench (see Bench.flushCompiledMetrics); the other
	// engines never touch them.
	blocksCompiled *telemetry.Counter
	compiledExits  [vm.NumCompiledExitReasons]*telemetry.Counter
}

// newRunMetrics resolves the run-engine series in reg, or returns nil
// when telemetry is disabled.
func newRunMetrics(reg *telemetry.Registry) *runMetrics {
	if reg == nil {
		return nil
	}
	m := &runMetrics{
		packets:      reg.Counter(telemetry.MetricPacketsProcessed, "Packets measured to completion."),
		attempts:     reg.Counter(telemetry.MetricPacketAttempts, "Packet processing attempts, including retries."),
		instrs:       reg.Counter(telemetry.MetricInstrsExecuted, "Simulated guest instructions of measured packets."),
		pktReads:     reg.Counter(telemetry.MetricMemRefs, "Guest data-memory references by region and op.", telemetry.L("region", "packet"), telemetry.L("op", "read")),
		pktWrites:    reg.Counter(telemetry.MetricMemRefs, "", telemetry.L("region", "packet"), telemetry.L("op", "write")),
		nonPktReads:  reg.Counter(telemetry.MetricMemRefs, "", telemetry.L("region", "nonpacket"), telemetry.L("op", "read")),
		nonPktWrites: reg.Counter(telemetry.MetricMemRefs, "", telemetry.L("region", "nonpacket"), telemetry.L("op", "write")),
		latency:      reg.Histogram(telemetry.MetricPacketLatency, "Host wall-clock per simulated packet, nanoseconds.", telemetry.LatencyBuckets()),
	}
	m.blocksCompiled = reg.Counter(telemetry.MetricBlocksCompiled,
		"Basic blocks lowered into compiled closures.")
	for r := vm.CompiledExitReason(0); r < vm.NumCompiledExitReasons; r++ {
		m.compiledExits[r] = reg.Counter(telemetry.MetricCompiledExits,
			"Compiled-chain side exits, by reason.",
			telemetry.L("reason", r.String()))
	}
	for k := vm.FaultNone + 1; k <= vm.FaultHostPanic; k++ {
		m.faulted[k&15] = reg.Counter(telemetry.MetricPacketsFaulted,
			"Packets quarantined by the error policy, by fault kind.",
			telemetry.L("kind", k.String()))
	}
	return m
}

// measured folds one completed packet record into the counters.
func (m *runMetrics) measured(rec *stats.PacketRecord) {
	m.packets.Inc()
	m.instrs.Add(rec.Instructions)
	m.pktReads.Add(rec.PacketReads)
	m.pktWrites.Add(rec.PacketWrites)
	m.nonPktReads.Add(rec.NonPacketReads)
	m.nonPktWrites.Add(rec.NonPacketWrites)
}

// fault counts one quarantined packet of the given kind.
func (m *runMetrics) fault(kind vm.FaultKind) {
	if m == nil {
		return
	}
	m.faulted[kind&15].Inc()
}
