package core

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Pool runs one application on several independent simulated cores,
// exploiting "the inherent packet-level parallelism in the networking
// domain" the paper identifies as the basis of NP architectures. Each
// core is a full Bench with its own simulated memory and its own copy of
// the application's tables — the replicated-state regime of real
// network-processor microengines.
//
// Scheduling is a shared work queue, not a fixed round-robin: workers
// claim packet ranges from an atomic cursor (RunPackets) or pull packets
// from a bounded channel fed by a trace reader (RunTrace), so skewed
// per-packet costs never idle a core. The first core fault cancels the
// run: the other workers observe a shared stop flag and exit at the next
// packet boundary instead of burning CPU to completion, and external
// cancellation is available through the Context variants.
//
// For per-packet-stateless applications (forwarding, anonymization,
// payload scanning) the records are identical to a single-core run;
// stateful applications (flow classification) accumulate per-core state,
// exactly as they would on hardware without shared memory.
type Pool struct {
	benches []*Bench
	// busy gauges how many cores are simulating a packet right now;
	// nil (no-op) when telemetry is disabled.
	busy *telemetry.Gauge
}

// NewPool builds a pool of n cores running app. Each core runs the
// application's Init independently. All cores share opts.Metrics, so
// the run counters aggregate across the pool.
func NewPool(app *App, n int, opts Options) (*Pool, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: pool needs at least one core")
	}
	p := &Pool{}
	for i := 0; i < n; i++ {
		b, err := New(app, opts)
		if err != nil {
			return nil, fmt.Errorf("core: pool core %d: %w", i, err)
		}
		p.benches = append(p.benches, b)
	}
	p.busy = opts.Metrics.Gauge(telemetry.MetricPoolWorkersBusy, "Pool cores currently simulating a packet.")
	opts.Metrics.Gauge(telemetry.MetricPoolCores, "Simulated cores in the pool.").Set(int64(n))
	return p, nil
}

// Cores returns the number of simulated cores.
func (p *Pool) Cores() int { return len(p.benches) }

// Bench returns core i's bench (for table walks or coverage queries
// after a run).
func (p *Pool) Bench(i int) *Bench { return p.benches[i] }

// chunkFor sizes the work-queue claim: small enough that a handful of
// expensive packets cannot serialize the run behind one core, large
// enough that the atomic cursor is off the per-packet hot path.
func chunkFor(packets, cores int) int {
	chunk := packets / (cores * 8)
	if chunk < 1 {
		return 1
	}
	if chunk > 64 {
		return 64
	}
	return chunk
}

// firstFailure retains the worker error with the lowest packet index, so
// concurrent runs report the same failure a sequential run would have hit
// first.
type firstFailure struct {
	mu  sync.Mutex
	idx int
	err error
}

func (f *firstFailure) report(idx int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err == nil || idx < f.idx {
		f.idx, f.err = idx, err
	}
}

func (f *firstFailure) get() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// RunPackets processes the packets across the pool's cores concurrently
// and returns one record per packet, in packet order, with Index
// rewritten to the packet's position in pkts. onResult, when non-nil, is
// invoked once per packet in packet order after the run completes. The
// first core error cancels the remaining workers and aborts the run.
func (p *Pool) RunPackets(pkts []*trace.Packet, onResult func(int, Result)) ([]stats.PacketRecord, error) {
	return p.RunPacketsContext(context.Background(), pkts, onResult)
}

// RunPacketsContext is RunPackets under an external context: cancelling
// ctx stops every worker at its next packet boundary and the run returns
// ctx's error.
func (p *Pool) RunPacketsContext(ctx context.Context, pkts []*trace.Packet, onResult func(int, Result)) ([]stats.PacketRecord, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	records := make([]stats.PacketRecord, len(pkts))
	var verdicts []uint32
	if onResult != nil {
		verdicts = make([]uint32, len(pkts))
	}
	chunk := chunkFor(len(pkts), len(p.benches))
	// Quarantine allowance is per run and shared: N cores skipping up to
	// N budgets' worth of packets would make the tolerated corruption
	// scale with the machine, not the configuration.
	bud := newErrorBudget(p.benches[0].policy.ErrorBudget)
	var cursor atomic.Int64
	var stop atomic.Bool
	var fail firstFailure
	var wg sync.WaitGroup
	for c, b := range p.benches {
		wg.Add(1)
		go func(c int, b *Bench) {
			defer wg.Done()
			for !stop.Load() {
				start := int(cursor.Add(int64(chunk))) - chunk
				if start >= len(pkts) {
					return
				}
				end := start + chunk
				if end > len(pkts) {
					end = len(pkts)
				}
				for i := start; i < end; i++ {
					if stop.Load() {
						return
					}
					p.busy.Inc()
					res, err := b.processUnderPolicy(i, pkts[i], bud)
					p.busy.Dec()
					if err != nil {
						fail.report(i, fmt.Errorf("core %d: %w", c, err))
						stop.Store(true)
						cancel()
						return
					}
					res.Record.Index = i
					records[i] = res.Record
					if verdicts != nil {
						verdicts[i] = res.Verdict
					}
				}
			}
		}(c, b)
	}

	// Propagate external cancellation to the stop flag the workers poll.
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			stop.Store(true)
		case <-watchDone:
		}
	}()
	wg.Wait()
	close(watchDone)

	if err := fail.get(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if onResult != nil {
		for i := range records {
			onResult(i, Result{Verdict: verdicts[i], Record: records[i]})
		}
	}
	return records, nil
}

// poolJob is one packet handed to a worker by the streaming scheduler.
type poolJob struct {
	idx int
	pkt *trace.Packet
}

// poolResult is one worker outcome on its way to the aggregator.
type poolResult struct {
	idx int
	res Result
	err error
}

// RunTrace streams packets from the reader through the pool (up to limit
// packets; limit <= 0 means all) without ever materializing the trace in
// memory: a producer feeds a bounded channel, workers pull from it, and
// results are re-sequenced so onResult observes packets in trace order
// with Record.Index set to the trace position — the same contract as
// single-core Bench.RunTrace. It returns the number of packets
// processed. The first core error cancels the producer and the remaining
// workers.
func (p *Pool) RunTrace(r trace.Reader, limit int, onResult func(int, Result)) (int, error) {
	return p.RunTraceContext(context.Background(), r, limit, onResult)
}

// RunTraceContext is RunTrace under an external context: cancelling ctx
// stops the producer and every worker, and the run returns ctx's error.
func (p *Pool) RunTraceContext(ctx context.Context, r trace.Reader, limit int, onResult func(int, Result)) (int, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var stop atomic.Bool
	// The bounded job queue is what caps memory: a multi-gigabyte trace
	// only ever has backlog+cores packets resident at once.
	backlog := 32 * len(p.benches)
	jobs := make(chan poolJob, backlog)
	results := make(chan poolResult, len(p.benches))

	// Producer: read the trace until EOF, the limit, an error, or
	// cancellation. readErr is published before jobs is closed and read
	// after the results channel drains, so it needs no lock.
	var readErr error
	go func() {
		defer close(jobs)
		for i := 0; limit <= 0 || i < limit; i++ {
			if stop.Load() {
				return
			}
			pkt, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				readErr = err
				return
			}
			select {
			case jobs <- poolJob{idx: i, pkt: pkt}:
			case <-ctx.Done():
				return
			}
		}
	}()

	// Workers: pull packets until the queue closes. After a fault (or
	// external cancellation) they keep draining the queue without
	// simulating, so the producer can never deadlock on a full channel.
	bud := newErrorBudget(p.benches[0].policy.ErrorBudget)
	var wg sync.WaitGroup
	for c, b := range p.benches {
		wg.Add(1)
		go func(c int, b *Bench) {
			defer wg.Done()
			for j := range jobs {
				if stop.Load() {
					continue
				}
				p.busy.Inc()
				res, err := b.processUnderPolicy(j.idx, j.pkt, bud)
				p.busy.Dec()
				if err != nil {
					stop.Store(true)
					cancel()
					results <- poolResult{idx: j.idx, err: fmt.Errorf("core %d: %w", c, err)}
					continue
				}
				res.Record.Index = j.idx
				results <- poolResult{idx: j.idx, res: res}
			}
		}(c, b)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Propagate external cancellation to the stop flag the workers and
	// producer poll.
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			stop.Store(true)
		case <-watchDone:
		}
	}()

	// Aggregator (caller's goroutine): re-sequence out-of-order results
	// so onResult fires in strict trace order. The pending map is bounded
	// by the job backlog plus in-flight packets.
	var fail firstFailure
	processed := 0
	next := 0
	pending := make(map[int]Result)
	for pr := range results {
		if pr.err != nil {
			fail.report(pr.idx, pr.err)
			continue
		}
		processed++
		if onResult == nil {
			continue
		}
		pending[pr.idx] = pr.res
		for {
			res, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			onResult(next, res)
			next++
		}
	}
	close(watchDone)

	if err := fail.get(); err != nil {
		return processed, err
	}
	if readErr != nil {
		return processed, readErr
	}
	if err := ctx.Err(); err != nil {
		return processed, err
	}
	return processed, nil
}
