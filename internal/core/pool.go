package core

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Pool runs one application on several independent simulated cores,
// exploiting "the inherent packet-level parallelism in the networking
// domain" the paper identifies as the basis of NP architectures. Each
// core is a full Bench with its own simulated memory and its own copy of
// the application's tables — the replicated-state regime of real
// network-processor microengines.
//
// Scheduling is a shared work queue, not a fixed round-robin: workers
// claim packet ranges from an atomic cursor (RunPackets) or pull packets
// from a bounded channel fed by a trace reader (RunTrace), so skewed
// per-packet costs never idle a core. The first core fault cancels the
// run: the other workers observe a shared stop flag and exit at the next
// packet boundary instead of burning CPU to completion, and external
// cancellation is available through the Context variants.
//
// For per-packet-stateless applications (forwarding, anonymization,
// payload scanning) the records are identical to a single-core run;
// stateful applications (flow classification) accumulate per-core state,
// exactly as they would on hardware without shared memory.
type Pool struct {
	benches []*Bench
	// batchSize is how many packets ride in one streaming job; see
	// SetBatchSize.
	batchSize int
	// busy gauges how many cores are simulating a packet right now;
	// nil (no-op) when telemetry is disabled.
	busy *telemetry.Gauge
}

// poolBatchSize is the default packets-per-job for the streaming
// scheduler: large enough to amortize channel synchronization to noise,
// small enough that the re-sequencing window and a fault's wasted work
// stay bounded.
const poolBatchSize = 64

// NewPool builds a pool of n cores running app. Each core runs the
// application's Init independently. All cores share opts.Metrics, so
// the run counters aggregate across the pool.
func NewPool(app *App, n int, opts Options) (*Pool, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: pool needs at least one core")
	}
	p := &Pool{batchSize: poolBatchSize}
	for i := 0; i < n; i++ {
		b, err := New(app, opts)
		if err != nil {
			return nil, fmt.Errorf("core: pool core %d: %w", i, err)
		}
		p.benches = append(p.benches, b)
	}
	p.busy = opts.Metrics.Gauge(telemetry.MetricPoolWorkersBusy, "Pool cores currently simulating a packet.")
	opts.Metrics.Gauge(telemetry.MetricPoolCores, "Simulated cores in the pool.").Set(int64(n))
	return p, nil
}

// Cores returns the number of simulated cores.
func (p *Pool) Cores() int { return len(p.benches) }

// Bench returns core i's bench (for table walks or coverage queries
// after a run).
func (p *Pool) Bench(i int) *Bench { return p.benches[i] }

// SetBatchSize overrides how many packets the streaming scheduler hands
// to a core per job (default 64). Values below 1 are clamped to 1, which
// restores packet-granular scheduling.
func (p *Pool) SetBatchSize(n int) {
	if n < 1 {
		n = 1
	}
	p.batchSize = n
}

// chunkFor sizes the work-queue claim: small enough that a handful of
// expensive packets cannot serialize the run behind one core, large
// enough that the atomic cursor is off the per-packet hot path.
func chunkFor(packets, cores int) int {
	chunk := packets / (cores * 8)
	if chunk < 1 {
		return 1
	}
	if chunk > 64 {
		return 64
	}
	return chunk
}

// firstFailure retains the worker error with the lowest packet index, so
// concurrent runs report the same failure a sequential run would have hit
// first.
type firstFailure struct {
	mu  sync.Mutex
	idx int
	err error
}

func (f *firstFailure) report(idx int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err == nil || idx < f.idx {
		f.idx, f.err = idx, err
	}
}

func (f *firstFailure) get() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// RunPackets processes the packets across the pool's cores concurrently
// and returns one record per packet, in packet order, with Index
// rewritten to the packet's position in pkts. onResult, when non-nil, is
// invoked once per packet in packet order after the run completes. The
// first core error cancels the remaining workers and aborts the run.
func (p *Pool) RunPackets(pkts []*trace.Packet, onResult func(int, Result)) ([]stats.PacketRecord, error) {
	return p.RunPacketsContext(context.Background(), pkts, onResult)
}

// RunPacketsContext is RunPackets under an external context: cancelling
// ctx stops every worker at its next packet boundary and the run returns
// ctx's error.
func (p *Pool) RunPacketsContext(ctx context.Context, pkts []*trace.Packet, onResult func(int, Result)) ([]stats.PacketRecord, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	records := make([]stats.PacketRecord, len(pkts))
	var verdicts []uint32
	if onResult != nil {
		verdicts = make([]uint32, len(pkts))
	}
	chunk := chunkFor(len(pkts), len(p.benches))
	// Quarantine allowance is per run and shared: N cores skipping up to
	// N budgets' worth of packets would make the tolerated corruption
	// scale with the machine, not the configuration.
	bud := newErrorBudget(p.benches[0].policy.ErrorBudget)
	var cursor atomic.Int64
	var stop atomic.Bool
	var fail firstFailure
	var wg sync.WaitGroup
	for c, b := range p.benches {
		wg.Add(1)
		go func(c int, b *Bench) {
			defer wg.Done()
			for !stop.Load() {
				start := int(cursor.Add(int64(chunk))) - chunk
				if start >= len(pkts) {
					return
				}
				end := start + chunk
				if end > len(pkts) {
					end = len(pkts)
				}
				for i := start; i < end; i++ {
					if stop.Load() {
						return
					}
					p.busy.Inc()
					res, err := b.processUnderPolicy(i, pkts[i], bud)
					p.busy.Dec()
					if err != nil {
						fail.report(i, fmt.Errorf("core %d: %w", c, err))
						stop.Store(true)
						cancel()
						return
					}
					res.Record.Index = i
					records[i] = res.Record
					if verdicts != nil {
						verdicts[i] = res.Verdict
					}
				}
			}
		}(c, b)
	}

	// Propagate external cancellation to the stop flag the workers poll.
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			stop.Store(true)
		case <-watchDone:
		}
	}()
	wg.Wait()
	close(watchDone)

	if err := fail.get(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if onResult != nil {
		for i := range records {
			onResult(i, Result{Verdict: verdicts[i], Record: records[i]})
		}
	}
	return records, nil
}

// poolJob is one contiguous run of trace packets handed to a worker by
// the streaming scheduler: packet i of the trace is pkts[i-base].
type poolJob struct {
	base int
	pkts []*trace.Packet
}

// poolResult carries a job's outcomes to the aggregator: res[k] is the
// result for trace index base+k. On a core fault res holds the batch's
// successful prefix, err the fault, and errIdx the trace index it hit.
type poolResult struct {
	base   int
	res    []Result
	err    error
	errIdx int
}

// RunTrace streams packets from the reader through the pool (up to limit
// packets; limit <= 0 means all) without ever materializing the trace in
// memory: a producer feeds a bounded channel of packet batches (read via
// trace.ReadBatch, so batch-native readers fill them in one call),
// workers pull whole batches, and results are re-sequenced so onResult
// observes packets in trace order with Record.Index set to the trace
// position — the same contract as single-core Bench.RunTrace. Batching
// amortizes channel synchronization over SetBatchSize packets, which is
// what lets ingestion keep 8+ cores fed at line rate. It returns the
// number of packets processed. The first core error cancels the producer
// and the remaining workers.
func (p *Pool) RunTrace(r trace.Reader, limit int, onResult func(int, Result)) (int, error) {
	return p.RunTraceContext(context.Background(), r, limit, onResult)
}

// RunTraceContext is RunTrace under an external context: cancelling ctx
// stops the producer and every worker, and the run returns ctx's error.
func (p *Pool) RunTraceContext(ctx context.Context, r trace.Reader, limit int, onResult func(int, Result)) (int, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var stop atomic.Bool
	// The bounded job queue is what caps memory: a multi-gigabyte trace
	// only ever has backlog batches (plus the in-flight ones) resident
	// at once.
	backlog := 4 * len(p.benches)
	jobs := make(chan poolJob, backlog)
	results := make(chan poolResult, len(p.benches))

	// Producer: read the trace in batches until EOF, the limit, an
	// error, or cancellation. A fresh slice is allocated per job — the
	// batch is owned by the worker from the moment it is sent. readErr
	// is published before jobs is closed and read after the results
	// channel drains, so it needs no lock.
	var readErr error
	go func() {
		defer close(jobs)
		for base := 0; limit <= 0 || base < limit; {
			if stop.Load() {
				return
			}
			size := p.batchSize
			if limit > 0 && limit-base < size {
				size = limit - base
			}
			dst := make([]*trace.Packet, size)
			n, err := trace.ReadBatch(r, dst)
			if n > 0 {
				select {
				case jobs <- poolJob{base: base, pkts: dst[:n]}:
					base += n
				case <-ctx.Done():
					return
				}
			}
			if err == io.EOF {
				return
			}
			if err != nil {
				readErr = err
				return
			}
		}
	}()

	// Workers: pull batches until the queue closes. After a fault (or
	// external cancellation) they keep draining the queue without
	// simulating, so the producer can never deadlock on a full channel;
	// a stop observed mid-batch abandons the batch's remainder the same
	// way.
	bud := newErrorBudget(p.benches[0].policy.ErrorBudget)
	var wg sync.WaitGroup
	for c, b := range p.benches {
		wg.Add(1)
		go func(c int, b *Bench) {
			defer wg.Done()
			for j := range jobs {
				if stop.Load() {
					continue
				}
				out := poolResult{base: j.base, res: make([]Result, 0, len(j.pkts))}
				for k, pkt := range j.pkts {
					if stop.Load() {
						break
					}
					p.busy.Inc()
					res, err := b.processUnderPolicy(j.base+k, pkt, bud)
					p.busy.Dec()
					if err != nil {
						stop.Store(true)
						cancel()
						out.err = fmt.Errorf("core %d: %w", c, err)
						out.errIdx = j.base + k
						break
					}
					res.Record.Index = j.base + k
					out.res = append(out.res, res)
				}
				if len(out.res) > 0 || out.err != nil {
					results <- out
				}
			}
		}(c, b)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Propagate external cancellation to the stop flag the workers and
	// producer poll.
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			stop.Store(true)
		case <-watchDone:
		}
	}()

	// Aggregator (caller's goroutine): re-sequence out-of-order batches
	// so onResult fires in strict trace order. The pending map is bounded
	// by the job backlog plus in-flight batches. A faulted batch still
	// contributes its successful prefix.
	var fail firstFailure
	processed := 0
	next := 0
	pending := make(map[int]Result)
	for pr := range results {
		if pr.err != nil {
			fail.report(pr.errIdx, pr.err)
		}
		processed += len(pr.res)
		if onResult == nil {
			continue
		}
		for k, res := range pr.res {
			pending[pr.base+k] = res
		}
		for {
			res, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			onResult(next, res)
			next++
		}
	}
	close(watchDone)

	if err := fail.get(); err != nil {
		return processed, err
	}
	if readErr != nil {
		return processed, readErr
	}
	if err := ctx.Err(); err != nil {
		return processed, err
	}
	return processed, nil
}
