package core

import (
	"fmt"
	"sync"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Pool runs one application on several independent simulated cores,
// exploiting "the inherent packet-level parallelism in the networking
// domain" the paper identifies as the basis of NP architectures. Each
// core is a full Bench with its own simulated memory and its own copy of
// the application's tables — the replicated-state regime of real
// network-processor microengines.
//
// Packets are distributed round-robin. For per-packet-stateless
// applications (forwarding, anonymization, payload scanning) the
// records are identical to a single-core run; stateful applications
// (flow classification) accumulate per-core state, exactly as they
// would on hardware without shared memory.
type Pool struct {
	benches []*Bench
}

// NewPool builds a pool of n cores running app. Each core runs the
// application's Init independently.
func NewPool(app *App, n int, opts Options) (*Pool, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: pool needs at least one core")
	}
	p := &Pool{}
	for i := 0; i < n; i++ {
		b, err := New(app, opts)
		if err != nil {
			return nil, fmt.Errorf("core: pool core %d: %w", i, err)
		}
		p.benches = append(p.benches, b)
	}
	return p, nil
}

// Cores returns the number of simulated cores.
func (p *Pool) Cores() int { return len(p.benches) }

// Bench returns core i's bench (for table walks or coverage queries
// after a run).
func (p *Pool) Bench(i int) *Bench { return p.benches[i] }

// RunPackets processes the packets across the pool's cores
// concurrently and returns one record per packet, in packet order, with
// Index rewritten to the packet's position in pkts. The first core
// error aborts the run.
func (p *Pool) RunPackets(pkts []*trace.Packet) ([]stats.PacketRecord, error) {
	records := make([]stats.PacketRecord, len(pkts))
	errs := make([]error, len(p.benches))
	var wg sync.WaitGroup
	for c, b := range p.benches {
		wg.Add(1)
		go func(c int, b *Bench) {
			defer wg.Done()
			for i := c; i < len(pkts); i += len(p.benches) {
				res, err := b.ProcessPacket(pkts[i])
				if err != nil {
					errs[c] = fmt.Errorf("core %d: %w", c, err)
					return
				}
				res.Record.Index = i
				records[i] = res.Record
			}
		}(c, b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return records, nil
}
