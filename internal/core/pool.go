package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ptrace"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Pool runs one application on several independent simulated cores,
// exploiting "the inherent packet-level parallelism in the networking
// domain" the paper identifies as the basis of NP architectures. Each
// core is a full Bench with its own simulated memory and its own copy of
// the application's tables — the replicated-state regime of real
// network-processor microengines.
//
// Scheduling is a shared work queue, not a fixed round-robin: workers
// claim packet ranges from an atomic cursor (RunPackets) or pull packets
// from a bounded channel fed by a trace reader (RunTrace), so skewed
// per-packet costs never idle a core. The first core fault cancels the
// run: the other workers observe a shared stop flag and exit at the next
// packet boundary instead of burning CPU to completion, and external
// cancellation is available through the Context variants.
//
// For per-packet-stateless applications (forwarding, anonymization,
// payload scanning) the records are identical to a single-core run;
// stateful applications (flow classification) accumulate per-core state,
// exactly as they would on hardware without shared memory.
type Pool struct {
	benches []*Bench
	// batchSize is how many packets ride in one streaming job; see
	// SetBatchSize.
	batchSize int
	// busy gauges how many cores are simulating a packet right now;
	// nil (no-op) when telemetry is disabled.
	busy *telemetry.Gauge

	// Crash-only run options (Options.RunDeadline / StallTimeout / Shed).
	deadline     time.Duration
	stallTimeout time.Duration
	shed         ShedPolicy

	// Journey tracing (Options.Trace / FlightPath). trace is nil when
	// disabled; dumped makes the post-mortem dump once-only when a run
	// fails on several paths at once.
	trace      *ptrace.Tracer
	flightPath string
	dumped     atomic.Bool

	// Telemetry handles for the crash-only paths; nil-safe no-ops when
	// telemetry is disabled.
	shedPkts *telemetry.Counter
	stalls   *telemetry.Counter
	ckpts    *telemetry.Counter
}

// poolBatchSize is the default packets-per-job for the streaming
// scheduler: large enough to amortize channel synchronization to noise,
// small enough that the re-sequencing window and a fault's wasted work
// stay bounded.
const poolBatchSize = 64

// NewPool builds a pool of n cores running app. Each core runs the
// application's Init independently. All cores share opts.Metrics, so
// the run counters aggregate across the pool.
func NewPool(app *App, n int, opts Options) (*Pool, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: pool needs at least one core")
	}
	p := &Pool{
		batchSize:    poolBatchSize,
		deadline:     opts.RunDeadline,
		stallTimeout: opts.StallTimeout,
		shed:         opts.Shed,
		trace:        opts.Trace,
		flightPath:   opts.FlightPath,
	}
	for i := 0; i < n; i++ {
		b, err := New(app, opts)
		if err != nil {
			return nil, fmt.Errorf("core: pool core %d: %w", i, err)
		}
		// Each core records into its own tracer lane (New gave every
		// bench lane 0; a tracer built with fewer lanes than cores
		// leaves the extra cores untraced).
		b.lane = opts.Trace.Lane(i)
		p.benches = append(p.benches, b)
	}
	p.busy = opts.Metrics.Gauge(telemetry.MetricPoolWorkersBusy, "Pool cores currently simulating a packet.")
	opts.Metrics.Gauge(telemetry.MetricPoolCores, "Simulated cores in the pool.").Set(int64(n))
	if opts.Shed != ShedBlock {
		p.shedPkts = opts.Metrics.Counter(telemetry.MetricPacketsShed,
			"Packets dropped unprocessed by the overload shed policy.",
			telemetry.L("policy", opts.Shed.String()))
	}
	p.stalls = opts.Metrics.Counter(telemetry.MetricWatchdogStalls,
		"Pool runs cancelled by the progress watchdog.")
	p.ckpts = opts.Metrics.Counter(telemetry.MetricCheckpointsWritten,
		"Run checkpoints committed to disk.")
	return p, nil
}

// Cores returns the number of simulated cores.
func (p *Pool) Cores() int { return len(p.benches) }

// Bench returns core i's bench (for table walks or coverage queries
// after a run).
func (p *Pool) Bench(i int) *Bench { return p.benches[i] }

// SetBatchSize overrides how many packets the streaming scheduler hands
// to a core per job (default 64). Values below 1 are clamped to 1, which
// restores packet-granular scheduling.
func (p *Pool) SetBatchSize(n int) {
	if n < 1 {
		n = 1
	}
	p.batchSize = n
}

// chunkFor sizes the work-queue claim: small enough that a handful of
// expensive packets cannot serialize the run behind one core, large
// enough that the atomic cursor is off the per-packet hot path.
func chunkFor(packets, cores int) int {
	chunk := packets / (cores * 8)
	if chunk < 1 {
		return 1
	}
	if chunk > 64 {
		return 64
	}
	return chunk
}

// firstFailure retains the worker error with the lowest packet index, so
// concurrent runs report the same failure a sequential run would have hit
// first.
type firstFailure struct {
	mu  sync.Mutex
	idx int
	err error
}

func (f *firstFailure) report(idx int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err == nil || idx < f.idx {
		f.idx, f.err = idx, err
	}
}

func (f *firstFailure) get() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// flightDump writes the post-mortem flight-recorder dump for a failed
// run: the last ring of stage events per lane plus the failure cause
// (and, for a StallError, the wedged worker and packet). Best-effort
// and once-only — a dump failure never masks runErr.
func (p *Pool) flightDump(runErr error) {
	if p.trace == nil || p.flightPath == "" || runErr == nil || !p.dumped.CompareAndSwap(false, true) {
		return
	}
	info := ptrace.FlightInfo{Cause: runErr.Error(), Worker: -1, Index: -1}
	var se *StallError
	if errors.As(runErr, &se) {
		info.Worker, info.Index = se.Worker, int64(se.Index)
	}
	f, err := os.Create(p.flightPath)
	if err != nil {
		return
	}
	_ = p.trace.WriteFlight(f, info)
	_ = f.Close()
}

// RunPackets processes the packets across the pool's cores concurrently
// and returns one record per packet, in packet order, with Index
// rewritten to the packet's position in pkts. onResult, when non-nil, is
// invoked once per packet in packet order after the run completes. The
// first core error cancels the remaining workers and aborts the run.
func (p *Pool) RunPackets(pkts []*trace.Packet, onResult func(int, Result)) ([]stats.PacketRecord, error) {
	return p.RunPacketsContext(context.Background(), pkts, onResult)
}

// RunPacketsContext is RunPackets under an external context: cancelling
// ctx stops every worker at its next packet boundary and the run returns
// ctx's error.
func (p *Pool) RunPacketsContext(ctx context.Context, pkts []*trace.Packet, onResult func(int, Result)) ([]stats.PacketRecord, error) {
	if p.deadline > 0 {
		var cancelT context.CancelFunc
		ctx, cancelT = context.WithTimeout(ctx, p.deadline)
		defer cancelT()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	records := make([]stats.PacketRecord, len(pkts))
	var verdicts []uint32
	if onResult != nil {
		verdicts = make([]uint32, len(pkts))
	}
	chunk := chunkFor(len(pkts), len(p.benches))
	// Quarantine allowance is per run and shared: N cores skipping up to
	// N budgets' worth of packets would make the tolerated corruption
	// scale with the machine, not the configuration.
	bud := newErrorBudget(p.benches[0].policy.ErrorBudget)
	var cursor atomic.Int64
	var stop atomic.Bool
	var fail firstFailure
	var wg sync.WaitGroup
	for c, b := range p.benches {
		wg.Add(1)
		go func(c int, b *Bench) {
			defer wg.Done()
			for !stop.Load() {
				start := int(cursor.Add(int64(chunk))) - chunk
				if start >= len(pkts) {
					return
				}
				end := start + chunk
				if end > len(pkts) {
					end = len(pkts)
				}
				for i := start; i < end; i++ {
					if stop.Load() {
						return
					}
					p.busy.Inc()
					res, err := b.processUnderPolicy(i, pkts[i], bud)
					p.busy.Dec()
					if err != nil {
						fail.report(i, fmt.Errorf("core %d: %w", c, err))
						stop.Store(true)
						cancel()
						return
					}
					res.Record.Index = i
					records[i] = res.Record
					if verdicts != nil {
						verdicts[i] = res.Verdict
					}
				}
			}
		}(c, b)
	}

	// Propagate external cancellation to the stop flag the workers poll.
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			stop.Store(true)
		case <-watchDone:
		}
	}()
	wg.Wait()
	close(watchDone)

	if err := fail.get(); err != nil {
		p.flightDump(err)
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		if p.deadline > 0 && errors.Is(err, context.DeadlineExceeded) {
			err = fmt.Errorf("core: run deadline %v exceeded: %w", p.deadline, err)
		}
		p.flightDump(err)
		return nil, err
	}
	if onResult != nil {
		for i := range records {
			onResult(i, Result{Verdict: verdicts[i], Record: records[i]})
		}
	}
	return records, nil
}

// poolJob is one contiguous run of trace packets handed to a worker by
// the streaming scheduler: packet i of the trace is pkts[i-base].
type poolJob struct {
	base int
	pkts []*trace.Packet
	// pos is the reader's Seeker state captured right after this batch
	// was read — the resume point of a checkpoint committing at
	// base+len(pkts). nil when the run is not checkpointing.
	pos []int64
	// readNS and enq carry the batch's journey-tracing context when a
	// tracer is armed: how long the producer's read took and when the
	// batch entered the job queue (tracer-epoch ns). Zero when tracing
	// is off.
	readNS int64
	enq    int64
}

// poolResult carries a job's outcomes to the aggregator: res[k] is the
// result for trace index base+k. On a core fault res holds the batch's
// successful prefix (the fault itself goes to firstFailure directly).
// shed > 0 marks a dropped batch: indexes [base, base+shed) were never
// processed.
type poolResult struct {
	base int
	n    int // intended batch size (len of the job's pkts)
	res  []Result
	shed int
	pos  []int64
}

// runBoundTracer is implemented by extra tracers that want the run's
// cancellation context (a fault injector's deliberate stalls select on
// it, so cancellation unwedges the stuck worker). The pool broadcasts
// the context to every core's tracers before the first packet executes.
type runBoundTracer interface{ BeginRun(ctx context.Context) }

// maxConsecutiveReadFaults bounds how many times the producer retries a
// malformed read with no packet progress in between, so an unlimited
// error budget cannot spin forever on a reader that fails without ever
// advancing.
const maxConsecutiveReadFaults = 100

// RunTrace streams packets from the reader through the pool (up to limit
// packets; limit <= 0 means all) without ever materializing the trace in
// memory: a producer feeds a bounded channel of packet batches (read via
// trace.ReadBatch, so batch-native readers fill them in one call),
// workers pull whole batches, and results are re-sequenced so onResult
// observes packets in trace order with Record.Index set to the trace
// position — the same contract as single-core Bench.RunTrace. Batching
// amortizes channel synchronization over SetBatchSize packets, which is
// what lets ingestion keep 8+ cores fed at line rate. It returns the
// number of packets processed. The first core error cancels the producer
// and the remaining workers.
func (p *Pool) RunTrace(r trace.Reader, limit int, onResult func(int, Result)) (int, error) {
	return p.RunTraceContext(context.Background(), r, limit, onResult)
}

// RunTraceContext is RunTrace under an external context: cancelling ctx
// stops the producer and every worker, and the run returns ctx's error.
func (p *Pool) RunTraceContext(ctx context.Context, r trace.Reader, limit int, onResult func(int, Result)) (int, error) {
	return p.runTrace(ctx, r, limit, onResult, nil)
}

// RunTraceCheckpointed is RunTraceContext with crash-safe periodic
// checkpoints: ck captures committed progress (reader position, next
// in-order index, aggregate statistics) at batch boundaries, and a ck
// primed with Checkpointer.Restore makes this run resume where a
// previous one stopped — the caller must already have seeked the reader
// to the checkpoint's position (cmd/packetbench wires both ends).
// onResult and the returned count cover only this process's packets; the
// restored aggregate carries the earlier ones, which is what makes the
// final Summary identical to an uninterrupted run.
func (p *Pool) RunTraceCheckpointed(ctx context.Context, r trace.Reader, limit int, onResult func(int, Result), ck *Checkpointer) (int, error) {
	return p.runTrace(ctx, r, limit, onResult, ck)
}

// runTrace is the streaming run engine behind RunTraceContext and
// RunTraceCheckpointed.
func (p *Pool) runTrace(ctx context.Context, r trace.Reader, limit int, onResult func(int, Result), ck *Checkpointer) (int, error) {
	deadline := p.deadline
	if deadline > 0 {
		var cancelT context.CancelFunc
		ctx, cancelT = context.WithTimeout(ctx, deadline)
		defer cancelT()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	start := 0
	var seek trace.Seeker
	if ck != nil {
		start = ck.StartIndex()
		sk, ok := r.(trace.Seeker)
		if !ok || sk.PosState() == nil {
			return 0, fmt.Errorf("core: checkpointing needs a resumable reader, and %T is not one", r)
		}
		seek = sk
	}

	// Hand the run context to context-aware tracers before any packet
	// executes, so an injected stall can block on it and cancellation
	// (watchdog, deadline, external) unwedges the worker immediately.
	for _, b := range p.benches {
		for _, t := range b.extraTracers {
			if rt, ok := t.(runBoundTracer); ok {
				rt.BeginRun(ctx)
			}
		}
	}

	var stop atomic.Bool
	// The bounded job queue is what caps memory: a multi-gigabyte trace
	// only ever has backlog batches (plus the in-flight ones) resident
	// at once. It is also the overload signal: a full queue on a
	// streaming source is what triggers the shed policy.
	backlog := 4 * len(p.benches)
	jobs := make(chan poolJob, backlog)
	results := make(chan poolResult, len(p.benches))
	bud := newErrorBudget(p.benches[0].policy.ErrorBudget)
	if ck != nil {
		// The budget spans the whole logical run: quarantines and sheds
		// committed before the crash still count against it.
		bud.preload(int64(ck.agg.Faulted() + ck.agg.Shed()))
	}
	policy := p.benches[0].policy.Policy

	var fail firstFailure

	// Producer state. readErr is published before jobs is closed and
	// read after the results channel drains, so it needs no lock; all
	// the closures below run on the producer goroutine only.
	var readErr error
	abortRun := func(err error) {
		readErr = err
		stop.Store(true)
		cancel()
	}

	// shedBatch drops a whole batch under the shed policy: the drop is
	// charged to the shared error budget (shedding is a degradation,
	// like quarantine, and must be bounded by the same knob) and the
	// aggregator is notified so the dropped indexes still commit in
	// order. Returns false when the run must abort. Sending on results
	// here is safe: results closes only after the workers exit, which
	// requires jobs to close, which requires this producer to return.
	shedBatch := func(j poolJob) bool {
		if !bud.takeN(len(j.pkts)) {
			abortRun(fmt.Errorf("core: error budget of %d exhausted: shedding %d packets at index %d",
				p.benches[0].policy.ErrorBudget, len(j.pkts), j.base))
			return false
		}
		p.shedPkts.Add(uint64(len(j.pkts)))
		p.trace.Producer().Shed(int64(j.base), len(j.pkts))
		select {
		case results <- poolResult{base: j.base, n: len(j.pkts), shed: len(j.pkts), pos: j.pos}:
			return true
		case <-ctx.Done():
			return false
		}
	}

	// offerJob enqueues a batch, applying the shed policy when the
	// backlog is full. Returns false when the run is over.
	offerJob := func(j poolJob) bool {
		if p.shed == ShedBlock {
			select {
			case jobs <- j:
				return true
			case <-ctx.Done():
				return false
			}
		}
		for {
			select {
			case jobs <- j:
				return true
			case <-ctx.Done():
				return false
			default:
			}
			if p.shed == ShedDropNewest {
				// The arriving batch is the victim; shedding counts as
				// handling it, so the producer advances past it.
				return shedBatch(j)
			}
			// DropOldest: evict a queued batch to make room. A worker can
			// win the race and empty the queue first; then the send above
			// is retried.
			select {
			case old := <-jobs:
				if !shedBatch(old) {
					return false
				}
			default:
			}
		}
	}

	// Producer: read the trace in batches until EOF, the limit, an
	// error, or cancellation. A fresh slice is allocated per job — the
	// batch is owned by the worker from the moment it is sent.
	go func() {
		defer close(jobs)
		// With a tracer armed the producer reads through a timing
		// wrapper: every batch read lands in the producer lane's ring,
		// and its duration rides on the job so workers can prepend the
		// read span to each packet journey of the batch.
		rd := r
		var lastReadNS, curBase int64
		if t := p.trace; t != nil {
			prod := t.Producer()
			rd = trace.NewTimedReader(r, t.Now, func(n int, startNS, durNS int64) {
				lastReadNS = durNS
				prod.Read(curBase, n, startNS, durNS)
			})
		}
		readFaults := 0
		for base := start; limit <= 0 || base < limit; {
			if stop.Load() {
				return
			}
			size := p.batchSize
			if limit > 0 && limit-base < size {
				size = limit - base
			}
			dst := make([]*trace.Packet, size)
			curBase = int64(base)
			n, err := trace.ReadBatch(rd, dst)
			if n > 0 {
				readFaults = 0
				j := poolJob{base: base, pkts: dst[:n]}
				if p.trace != nil {
					j.readNS, j.enq = lastReadNS, p.trace.Now()
				}
				if seek != nil {
					j.pos = seek.PosState()
				}
				if !offerJob(j) {
					return
				}
				base += n
			}
			if err == io.EOF {
				return
			}
			if err != nil {
				// A malformed (or injected transient) record error is
				// survivable under a skip or retry policy: it costs one
				// error-budget slot, like a quarantined packet, and the
				// read is retried. The consecutive-fault cap keeps an
				// unlimited budget from spinning on a reader that fails
				// without ever advancing; anything else is an I/O failure
				// no policy may absorb.
				if policy != FailFast && errors.Is(err, trace.ErrMalformedRecord) {
					readFaults++
					if readFaults <= maxConsecutiveReadFaults && bud.take() {
						continue
					}
					abortRun(fmt.Errorf("core: error budget of %d exhausted reading trace: %w",
						p.benches[0].policy.ErrorBudget, err))
					return
				}
				readErr = err
				return
			}
		}
	}()

	// Watchdog: fires once when a worker stays inside one packet past
	// the stall timeout, then cancels the run with a typed StallError.
	// dead is the abandon signal: the wedged worker may never return, so
	// everything that could otherwise wait on it forever — result sends,
	// the aggregator — escapes on dead instead, and the run returns the
	// StallError rather than hanging. (Cooperative stalls — the injected
	// kind listening on the run context — unwedge on the cancel and shut
	// down cleanly; dead is the guarantee for the non-cooperative ones
	// Go cannot interrupt.)
	var wd *watchdog
	watchDone := make(chan struct{})
	dead := make(chan struct{})
	if p.stallTimeout > 0 {
		wd = newWatchdog(len(p.benches), p.stallTimeout)
		go wd.run(watchDone, func(worker, idx int, stalled time.Duration) {
			p.stalls.Inc()
			fail.report(idx, &StallError{Worker: worker, Index: idx, Stalled: stalled})
			stop.Store(true)
			cancel()
			close(dead)
		})
	}

	// Workers: pull batches until the queue closes. After a fault (or
	// external cancellation) they keep draining the queue without
	// simulating, so the producer can never deadlock on a full channel;
	// a stop observed mid-batch abandons the batch's remainder the same
	// way.
	var wg sync.WaitGroup
	for c, b := range p.benches {
		wg.Add(1)
		go func(c int, b *Bench) {
			defer wg.Done()
			for j := range jobs {
				if stop.Load() {
					continue
				}
				if b.lane != nil && j.enq != 0 {
					b.lane.BatchStart(int64(j.base), len(j.pkts), j.readNS, p.trace.Now()-j.enq)
				}
				out := poolResult{base: j.base, n: len(j.pkts), pos: j.pos, res: make([]Result, 0, len(j.pkts))}
				for k, pkt := range j.pkts {
					if stop.Load() {
						break
					}
					if wd != nil {
						wd.begin(c, j.base+k)
					}
					p.busy.Inc()
					res, err := b.processUnderPolicy(j.base+k, pkt, bud)
					p.busy.Dec()
					if wd != nil {
						wd.end(c)
					}
					if err != nil {
						fail.report(j.base+k, fmt.Errorf("core %d: %w", c, err))
						stop.Store(true)
						cancel()
						break
					}
					res.Record.Index = j.base + k
					out.res = append(out.res, res)
				}
				if len(out.res) > 0 {
					select {
					case results <- out:
					case <-dead:
					}
				}
			}
		}(c, b)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Propagate external cancellation to the stop flag the workers and
	// producer poll.
	cancelDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			stop.Store(true)
		case <-cancelDone:
		}
	}()

	// Aggregator (caller's goroutine): re-sequence out-of-order batches
	// so onResult fires in strict trace order. The pending map is bounded
	// by the job backlog plus in-flight batches. A faulted batch still
	// contributes its successful prefix; a shed batch commits as a run of
	// Shed-marked results, keeping the exactly-once index contract.
	// Checkpoints are taken only when the in-order cursor reaches the end
	// of a fully-committed batch, because that is the only point where
	// "every packet below next is committed" and "the reader state
	// resumes at next" are simultaneously true.
	processed := 0
	next := start
	track := onResult != nil || ck != nil
	pending := make(map[int]Result)
	var shedAt map[int]int
	var posAt map[int][]int64
	if ck != nil {
		posAt = make(map[int][]int64)
	}
	var ckErr error
aggregate:
	for {
		var pr poolResult
		var ok bool
		select {
		case pr, ok = <-results:
			if !ok {
				break aggregate
			}
		case <-dead:
			// A wedged worker will never finish its batch; abandon
			// re-sequencing and let the run return the StallError.
			break aggregate
		}
		processed += len(pr.res)
		if posAt != nil && pr.pos != nil && (pr.shed > 0 || len(pr.res) == pr.n) {
			// Only a complete batch's end is a valid resume point; a
			// partial batch (fault, stop) never registers one.
			posAt[pr.base+pr.n] = pr.pos
		}
		if !track {
			continue
		}
		if pr.shed > 0 {
			if shedAt == nil {
				shedAt = make(map[int]int)
			}
			shedAt[pr.base] = pr.shed
		}
		for k, res := range pr.res {
			pending[pr.base+k] = res
		}
		for {
			if n, ok := shedAt[next]; ok {
				delete(shedAt, next)
				for end := next + n; next < end; next++ {
					if onResult != nil {
						onResult(next, Result{Shed: true, Record: stats.PacketRecord{Index: next}})
					}
				}
			} else if res, ok := pending[next]; ok {
				delete(pending, next)
				if onResult != nil {
					onResult(next, res)
				}
				next++
			} else {
				break
			}
			if posAt != nil && ckErr == nil {
				if pos, ok := posAt[next]; ok {
					delete(posAt, next)
					ckStart := p.trace.Now()
					wrote, err := ck.maybeWrite(next, pos)
					if err != nil {
						ckErr = err
						fail.report(next, err)
						stop.Store(true)
						cancel()
					} else if wrote {
						p.ckpts.Inc()
						p.trace.Committer().Checkpoint(int64(next), ckStart, p.trace.Now()-ckStart)
					}
				}
			}
		}
	}
	close(cancelDone)
	close(watchDone)

	if err := fail.get(); err != nil {
		p.flightDump(err)
		return processed, err
	}
	if readErr != nil {
		p.flightDump(readErr)
		return processed, readErr
	}
	if err := ctx.Err(); err != nil {
		if deadline > 0 && errors.Is(err, context.DeadlineExceeded) {
			err = fmt.Errorf("core: run deadline %v exceeded: %w", deadline, err)
		}
		p.flightDump(err)
		return processed, err
	}
	return processed, nil
}
