package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestPoolBatchSizesMatchSingleCore pins the batch scheduler's contract
// across batch sizes straddling the interesting boundaries (packet
// granular, sub-batch trace, trace larger than one batch, one giant
// batch): the streamed records must match a single-core run exactly and
// arrive in order.
func TestPoolBatchSizesMatchSingleCore(t *testing.T) {
	pkts := make([]*trace.Packet, 53)
	for i := range pkts {
		pkts[i] = ipPacket(20 + i%40)
	}
	single, err := New(echoApp(3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.RunPackets(pkts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 7, 64, 1000} {
		pool, err := NewPool(echoApp(3), 4, Options{})
		if err != nil {
			t.Fatal(err)
		}
		pool.SetBatchSize(batch)
		var got []Result
		processed, err := pool.RunTrace(trace.NewSliceReader(pkts), 0, func(i int, r Result) {
			if i != len(got) {
				t.Fatalf("batch=%d: out-of-order delivery: index %d at position %d", batch, i, len(got))
			}
			got = append(got, r)
		})
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		if processed != len(pkts) || len(got) != len(pkts) {
			t.Fatalf("batch=%d: processed %d, delivered %d, want %d", batch, processed, len(got), len(pkts))
		}
		for i := range want {
			g := got[i].Record
			if g.Index != i {
				t.Errorf("batch=%d: record %d has index %d", batch, i, g.Index)
			}
			if g.Instructions != want[i].Instructions || g.Unique != want[i].Unique ||
				g.PacketAccesses() != want[i].PacketAccesses() ||
				g.NonPacketAccesses() != want[i].NonPacketAccesses() {
				t.Errorf("batch=%d: record %d differs: stream %+v, single %+v", batch, i, g, want[i])
			}
		}
	}
}

// TestPoolBatchFaultMidBatch places the faulting packet in the middle of
// a batch: the batch's successful prefix still counts, delivery remains
// the contiguous prefix before the fault, and the error names the fault.
func TestPoolBatchFaultMidBatch(t *testing.T) {
	pkts := make([]*trace.Packet, 128)
	for i := range pkts {
		pkts[i] = ipPacket(20)
	}
	const faultAt = 37 // inside the first 64-packet batch
	pkts[faultAt].Data[0] = 0xFF
	pool, err := NewPool(explodeApp(), 2, Options{StepLimit: 500})
	if err != nil {
		t.Fatal(err)
	}
	var delivered []int
	processed, err := pool.RunTrace(trace.NewSliceReader(pkts), 0, func(i int, r Result) {
		delivered = append(delivered, i)
	})
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("err = %v, want step limit fault", err)
	}
	if processed < faultAt {
		t.Errorf("processed %d, want at least the faulting batch's prefix %d", processed, faultAt)
	}
	for pos, i := range delivered {
		if i != pos || i >= faultAt {
			t.Fatalf("delivered index %d at position %d despite fault at %d", i, pos, faultAt)
		}
	}
}

// TestPoolBatchReaderError checks a mid-trace reader error with batches
// smaller than the failure point: every packet before the error is
// processed, and the error surfaces wrapped.
func TestPoolBatchReaderError(t *testing.T) {
	boom := fmt.Errorf("truncated capture")
	pool, err := NewPool(echoApp(0), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pool.SetBatchSize(4)
	processed, err := pool.RunTrace(&errorReader{n: 9, err: boom}, 0, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the reader error", err)
	}
	if processed != 9 {
		t.Errorf("processed %d packets before the reader error, want 9", processed)
	}
}

// TestPoolBatchLimitClamp checks the limit is honored exactly when it is
// not a multiple of the batch size.
func TestPoolBatchLimitClamp(t *testing.T) {
	pkts := make([]*trace.Packet, 100)
	for i := range pkts {
		pkts[i] = ipPacket(20)
	}
	pool, err := NewPool(echoApp(0), 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pool.SetBatchSize(64)
	processed, err := pool.RunTrace(trace.NewSliceReader(pkts), 70, nil)
	if err != nil {
		t.Fatal(err)
	}
	if processed != 70 {
		t.Errorf("processed %d, want the 70-packet limit", processed)
	}

	// SetBatchSize clamps nonsense to packet granularity.
	pool.SetBatchSize(-5)
	if pool.batchSize != 1 {
		t.Errorf("batchSize after SetBatchSize(-5) = %d, want 1", pool.batchSize)
	}
}

// TestPoolBatchStreamsFromMerge runs the pool over a timestamp-merged
// pair of shards and checks the merged order is what the pool observes.
func TestPoolBatchStreamsFromMerge(t *testing.T) {
	var even, odd []*trace.Packet
	for i := 0; i < 40; i++ {
		p := ipPacket(20 + i%30)
		p.Sec = uint32(i)
		if i%2 == 0 {
			even = append(even, p)
		} else {
			odd = append(odd, p)
		}
	}
	pool, err := NewPool(echoApp(0), 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := trace.NewMergeReader(trace.NewSliceReader(even), trace.NewSliceReader(odd))
	lastSec := -1
	processed, err := pool.RunTrace(m, 0, func(i int, r Result) {
		// onResult fires in trace order; the merged trace is ordered by
		// Sec, so Record.Index tracks it 1:1.
		if r.Record.Index != i {
			t.Fatalf("index %d delivered at position %d", r.Record.Index, i)
		}
		lastSec = i
	})
	if err != nil {
		t.Fatal(err)
	}
	if processed != 40 || lastSec != 39 {
		t.Errorf("processed %d (last %d), want all 40 merged packets", processed, lastSec)
	}
}
