package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/trace"
)

// explodeSrc spins forever when the packet's first byte is 0xFF (hitting
// the step limit) and returns immediately otherwise — the
// step-limit-exploding app the cancellation tests key off.
const explodeSrc = `
	.text
	.global e
e:
	lbu t0, 0(a0)
	li  t1, 0xFF
	bne t0, t1, done
spin:
	j   spin
done:
	mv  a0, a1
	ret
`

func explodeApp() *App {
	return &App{Name: "explode", Source: explodeSrc, Entry: "e"}
}

func TestPoolRunPacketsOnResult(t *testing.T) {
	pkts := make([]*trace.Packet, 37)
	for i := range pkts {
		pkts[i] = ipPacket(20 + i)
	}
	pool, err := NewPool(echoApp(0), 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	var verdicts []uint32
	recs, err := pool.RunPackets(pkts, func(i int, r Result) {
		order = append(order, i)
		verdicts = append(verdicts, r.Verdict)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(pkts) || len(order) != len(pkts) {
		t.Fatalf("records %d, callbacks %d", len(recs), len(order))
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("onResult order[%d] = %d", i, order[i])
		}
		if verdicts[i] != uint32(20+i) {
			t.Errorf("verdict %d = %d, want %d", i, verdicts[i], 20+i)
		}
	}
}

func TestPoolErrorCancelsSingleCore(t *testing.T) {
	// With one core the scheduler is deterministic: the first packet
	// explodes, and no later packet may be processed after the error.
	pool, err := NewPool(explodeApp(), 1, Options{StepLimit: 500})
	if err != nil {
		t.Fatal(err)
	}
	pkts := make([]*trace.Packet, 100)
	for i := range pkts {
		pkts[i] = ipPacket(20)
	}
	pkts[0].Data[0] = 0xFF
	_, err = pool.RunPackets(pkts, nil)
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("err = %v, want step limit fault", err)
	}
	// The faulting packet does not count as processed; nothing after it ran.
	if got := pool.Bench(0).Processed(); got != 0 {
		t.Errorf("core processed %d packets after the fault, want 0", got)
	}
}

func TestPoolErrorCancelsOtherCores(t *testing.T) {
	// Multi-core: one exploding packet must stop the other workers via
	// the shared flag well before they chew through the whole trace.
	const total = 50_000
	pool, err := NewPool(explodeApp(), 2, Options{StepLimit: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	pkts := make([]*trace.Packet, total)
	for i := range pkts {
		pkts[i] = ipPacket(20)
	}
	pkts[0].Data[0] = 0xFF
	if _, err := pool.RunPackets(pkts, nil); err == nil {
		t.Fatal("pool swallowed the fault")
	}
	sum := 0
	for i := 0; i < pool.Cores(); i++ {
		sum += pool.Bench(i).Processed()
	}
	if sum >= total {
		t.Errorf("cancellation ineffective: %d of %d packets processed", sum, total)
	}
}

func TestPoolRunPacketsRecordsStopAtError(t *testing.T) {
	// Regression for the seed's behavior: a mid-run core fault must
	// surface as an error (never as silently missing records).
	pool, err := NewPool(explodeApp(), 2, Options{StepLimit: 500})
	if err != nil {
		t.Fatal(err)
	}
	pkts := []*trace.Packet{ipPacket(20), ipPacket(20), ipPacket(20), ipPacket(20)}
	pkts[2].Data[0] = 0xFF
	recs, err := pool.RunPackets(pkts, nil)
	if err == nil {
		t.Fatal("mid-run fault not propagated")
	}
	if recs != nil {
		t.Errorf("got %d records alongside the error", len(recs))
	}
}

func TestPoolRunTraceStreams(t *testing.T) {
	pkts := make([]*trace.Packet, 53)
	for i := range pkts {
		pkts[i] = ipPacket(20 + i%40)
	}
	single, err := New(echoApp(3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.RunPackets(pkts, nil)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(echoApp(3), 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var got []Result
	processed, err := pool.RunTrace(trace.NewSliceReader(pkts), 0, func(i int, r Result) {
		if i != len(got) {
			t.Fatalf("out-of-order delivery: got index %d at position %d", i, len(got))
		}
		got = append(got, r)
	})
	if err != nil {
		t.Fatal(err)
	}
	if processed != len(pkts) || len(got) != len(pkts) {
		t.Fatalf("processed %d, delivered %d, want %d", processed, len(got), len(pkts))
	}
	for i := range want {
		g := got[i].Record
		if g.Index != i {
			t.Errorf("record %d has index %d", i, g.Index)
		}
		if g.Instructions != want[i].Instructions || g.Unique != want[i].Unique ||
			g.PacketAccesses() != want[i].PacketAccesses() ||
			g.NonPacketAccesses() != want[i].NonPacketAccesses() {
			t.Errorf("record %d differs: stream %+v, single %+v", i, g, want[i])
		}
	}
}

func TestPoolRunTraceLimit(t *testing.T) {
	pkts := make([]*trace.Packet, 30)
	for i := range pkts {
		pkts[i] = ipPacket(20)
	}
	pool, err := NewPool(echoApp(0), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	processed, err := pool.RunTrace(trace.NewSliceReader(pkts), 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if processed != 7 {
		t.Errorf("processed %d, want 7", processed)
	}
}

func TestPoolRunTraceFromPcap(t *testing.T) {
	var buf bytes.Buffer
	w, err := trace.NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := w.WritePacket(ipPacket(20 + i)); err != nil {
			t.Fatal(err)
		}
	}
	r, err := trace.NewPcapReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(echoApp(0), 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	processed, err := pool.RunTrace(r, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if processed != 16 {
		t.Errorf("processed %d packets from pcap, want 16", processed)
	}
}

// errorReader yields n packets and then a non-EOF error.
type errorReader struct {
	n   int
	err error
}

func (e *errorReader) Next() (*trace.Packet, error) {
	if e.n == 0 {
		return nil, e.err
	}
	e.n--
	return ipPacket(20), nil
}

func TestPoolRunTraceReaderError(t *testing.T) {
	boom := fmt.Errorf("truncated capture")
	pool, err := NewPool(echoApp(0), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	processed, err := pool.RunTrace(&errorReader{n: 9, err: boom}, 0, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the reader error", err)
	}
	if processed != 9 {
		t.Errorf("processed %d packets before the reader error, want 9", processed)
	}
}

func TestPoolRunTraceFault(t *testing.T) {
	pkts := make([]*trace.Packet, 64)
	for i := range pkts {
		pkts[i] = ipPacket(20)
	}
	pkts[5].Data[0] = 0xFF
	pool, err := NewPool(explodeApp(), 2, Options{StepLimit: 500})
	if err != nil {
		t.Fatal(err)
	}
	var delivered []int
	_, err = pool.RunTrace(trace.NewSliceReader(pkts), 0, func(i int, r Result) {
		delivered = append(delivered, i)
	})
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("err = %v, want step limit fault", err)
	}
	// In-order delivery means only the contiguous prefix before the
	// faulting packet can have been observed.
	for pos, i := range delivered {
		if i != pos || i >= 5 {
			t.Fatalf("delivered index %d at position %d despite fault at 5", i, pos)
		}
	}
}

func TestPoolExternalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pkts := make([]*trace.Packet, 1000)
	for i := range pkts {
		pkts[i] = ipPacket(20)
	}
	pool, err := NewPool(echoApp(0), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.RunPacketsContext(ctx, pkts, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("RunPacketsContext err = %v, want context.Canceled", err)
	}
	if _, err := pool.RunTraceContext(ctx, trace.NewSliceReader(pkts), 0, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("RunTraceContext err = %v, want context.Canceled", err)
	}
}

func TestChunkFor(t *testing.T) {
	cases := []struct {
		packets, cores, want int
	}{
		{0, 4, 1},
		{10, 4, 1}, // fewer packets than cores*8: degenerate chunk
		{3, 8, 1},  // fewer packets than cores
		{1000, 4, 31},
		{1 << 20, 4, 64},
		{100, 1, 12},
		{32, 4, 1},    // exact multiple of cores*8
		{512, 4, 16},  // exact multiple, mid-range chunk
		{2048, 4, 64}, // exact multiple landing on the cap
	}
	for _, c := range cases {
		if got := chunkFor(c.packets, c.cores); got != c.want {
			t.Errorf("chunkFor(%d, %d) = %d, want %d", c.packets, c.cores, got, c.want)
		}
	}
}
