package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/trace"
	"repro/internal/vm"
)

// poolWithPlan builds a pool with the injector's tracer on every core.
func poolWithPlan(t *testing.T, cores int, opts Options, inj *faultinject.Injector) *Pool {
	t.Helper()
	pool, err := NewPool(derefApp(), cores, opts)
	if err != nil {
		t.Fatal(err)
	}
	if inj != nil {
		for i := 0; i < pool.Cores(); i++ {
			pool.Bench(i).AddTracer(inj.Tracer())
		}
	}
	return pool
}

func mustPlan(t *testing.T, spec string) *faultinject.Injector {
	t.Helper()
	plan, err := faultinject.ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	return faultinject.New(2, plan)
}

// TestStallWatchdog is the no-hang acceptance test: a worker wedged
// inside a packet (an injected unbounded stall) must end the run with a
// typed *StallError naming the stuck packet, within a small multiple of
// the stall timeout — never hang it.
func TestStallWatchdog(t *testing.T) {
	const timeout = 100 * time.Millisecond
	inj := mustPlan(t, "stall@5")
	pool := poolWithPlan(t, 2, Options{StallTimeout: timeout}, inj)
	pool.SetBatchSize(1)
	start := time.Now()
	_, err := pool.RunTrace(trace.NewSliceReader(derefPackets(16)), 0, nil)
	elapsed := time.Since(start)
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StallError", err)
	}
	if se.Index != 5 {
		t.Errorf("stalled packet = %d, want 5", se.Index)
	}
	if se.Stalled < timeout {
		t.Errorf("reported stall %v below the %v timeout", se.Stalled, timeout)
	}
	if elapsed > 10*time.Second {
		t.Errorf("stalled run took %v to fail; the watchdog did not cancel it", elapsed)
	}
}

// TestDelayDoesNotTripWatchdog: slow-but-progressing packets (injected
// latency spikes shorter than the timeout) must not be killed.
func TestDelayDoesNotTripWatchdog(t *testing.T) {
	inj := mustPlan(t, "delay@3:10,delay@9:10")
	pool := poolWithPlan(t, 2, Options{StallTimeout: 2 * time.Second}, inj)
	pool.SetBatchSize(1)
	n := 0
	if _, err := pool.RunTrace(trace.NewSliceReader(derefPackets(12)), 0, func(int, Result) { n++ }); err != nil {
		t.Fatalf("delayed run failed: %v", err)
	}
	if n != 12 {
		t.Errorf("processed %d packets, want 12", n)
	}
}

// TestRunDeadline: a pool run past Options.RunDeadline is cancelled with
// an error that wraps context.DeadlineExceeded.
func TestRunDeadline(t *testing.T) {
	plan := make([]faultinject.Injection, 16)
	for i := range plan {
		plan[i] = faultinject.Injection{Index: i, Kind: faultinject.Delay, Arg: 30}
	}
	inj := faultinject.New(1, plan)
	pool := poolWithPlan(t, 2, Options{RunDeadline: 60 * time.Millisecond}, inj)
	pool.SetBatchSize(1)
	_, err := pool.RunTrace(inj.Reader(trace.NewSliceReader(derefPackets(16))), 0, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped DeadlineExceeded", err)
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Errorf("deadline error does not say so: %v", err)
	}
}

// shedRun floods a 1-core pool whose first packet is slow, so the
// 4-job backlog fills and the shed policy decides the overflow's fate.
// It returns the per-index delivery counts and the shed total.
func shedRun(t *testing.T, n int, opts Options) (seen []int, shed int, err error) {
	t.Helper()
	plan := []faultinject.Injection{{Index: 0, Kind: faultinject.Delay, Arg: 80}}
	inj := faultinject.New(1, plan)
	pool := poolWithPlan(t, 1, opts, inj)
	pool.SetBatchSize(1)
	seen = make([]int, n)
	_, err = pool.RunTrace(trace.NewSliceReader(derefPackets(n)), 0, func(i int, res Result) {
		seen[i]++
		if res.Shed {
			shed++
		}
	})
	return seen, shed, err
}

// TestShedPoliciesExactlyOnce: under overload, every trace index is
// delivered exactly once — as a measurement or as a shed marker — and
// dropping policies actually drop.
func TestShedPoliciesExactlyOnce(t *testing.T) {
	const n = 60
	for _, tc := range []struct {
		name string
		shed ShedPolicy
	}{
		{"drop-newest", ShedDropNewest},
		{"drop-oldest", ShedDropOldest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seen, shed, err := shedRun(t, n, Options{Shed: tc.shed})
			if err != nil {
				t.Fatalf("shed run failed: %v", err)
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("index %d delivered %d times, want exactly once", i, c)
				}
			}
			if shed == 0 {
				t.Error("overloaded run shed nothing")
			}
		})
	}
	t.Run("block", func(t *testing.T) {
		seen, shed, err := shedRun(t, n, Options{})
		if err != nil {
			t.Fatalf("blocking run failed: %v", err)
		}
		if shed != 0 {
			t.Errorf("lossless policy shed %d packets", shed)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("index %d delivered %d times", i, c)
			}
		}
	})
}

// TestShedChargesErrorBudget: shedding is loss and spends the same
// budget quarantines do; exhausting it aborts the run.
func TestShedChargesErrorBudget(t *testing.T) {
	_, _, err := shedRun(t, 80, Options{
		Shed:   ShedDropNewest,
		Errors: ErrorPolicy{Policy: SkipAndRecord, ErrorBudget: 3},
	})
	if err == nil || !strings.Contains(err.Error(), "shedding") {
		t.Fatalf("err = %v, want budget-exhausted shed abort", err)
	}
	if !strings.Contains(err.Error(), "error budget") {
		t.Errorf("shed abort does not name the budget: %v", err)
	}
}

// TestBatchedPanicAttribution is the regression for batch-granular jobs:
// a host panic mid-batch must quarantine exactly the one packet whose
// execution panicked, not its batchmates.
func TestBatchedPanicAttribution(t *testing.T) {
	inj := mustPlan(t, "panic@11")
	pool := poolWithPlan(t, 2, Options{Errors: ErrorPolicy{Policy: SkipAndRecord}}, inj)
	pool.SetBatchSize(8)
	faults := map[int]vm.FaultKind{}
	n := 0
	if _, err := pool.RunTrace(trace.NewSliceReader(derefPackets(24)), 0, func(i int, res Result) {
		n++
		if res.Faulted() {
			faults[i] = res.Record.Fault
		}
	}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if n != 24 {
		t.Fatalf("delivered %d results, want 24", n)
	}
	if len(faults) != 1 || faults[11] != vm.FaultHostPanic {
		t.Errorf("faults = %v, want exactly {11: FaultHostPanic}", faults)
	}
}

// TestChaosSoak drives a streaming run through a mixed host-fault plan —
// packet corruption, VM faults, a worker panic, latency spikes, a
// transient reader error — and asserts the crash-only invariants: the
// run completes, every index is delivered exactly once, faults are
// attributed to the planned packets, and the budget is respected.
func TestChaosSoak(t *testing.T) {
	const n = 160
	spec := "flip@5:1,vmfault@20:4,panic@33,delay@50:5,readerr@70,trunc@90:10,vmfault@110:3:1,delay@130:8,readerr@140:2"
	plan, err := faultinject.ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(7, plan)
	pool := poolWithPlan(t, 4, Options{
		Errors:       ErrorPolicy{Policy: SkipAndRecord, ErrorBudget: 50},
		StallTimeout: 10 * time.Second,
	}, inj)
	pool.SetBatchSize(2)
	seen := make([]int, n)
	faults := map[int]vm.FaultKind{}
	shed := 0
	if _, err := pool.RunTrace(inj.Reader(trace.NewSliceReader(derefPackets(n))), 0, func(i int, res Result) {
		seen[i]++
		if res.Shed {
			shed++
		} else if res.Faulted() {
			faults[i] = res.Record.Fault
		}
	}); err != nil {
		t.Fatalf("chaos soak did not survive: %v", err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d delivered %d times, want exactly once", i, c)
		}
	}
	want := map[int]vm.FaultKind{
		5:   vm.FaultUnmapped,  // flipped header byte dereferences junk
		20:  vm.FaultBadInstr,  // injected VM fault
		33:  vm.FaultHostPanic, // injected worker panic
		110: vm.FaultBadInstr,
	}
	for idx, kind := range want {
		if faults[idx] != kind {
			t.Errorf("packet %d fault = %v, want %v", idx, faults[idx], kind)
		}
	}
	for idx := range faults {
		if _, planned := want[idx]; !planned {
			t.Errorf("unplanned quarantine at packet %d (%v)", idx, faults[idx])
		}
	}
	if len(faults)+shed > 50 {
		t.Errorf("loss %d+%d exceeds the error budget", len(faults), shed)
	}
}

// TestRetryDelayShape pins the backoff helper: zero base disables it,
// delays are deterministic, grow exponentially, and cap at 64x base plus
// bounded jitter.
func TestRetryDelayShape(t *testing.T) {
	const base = 10 * time.Millisecond
	if d := retryDelay(0, 3, 2); d != 0 {
		t.Errorf("zero base delay = %v, want 0", d)
	}
	if d := retryDelay(base, 3, 0); d != 0 {
		t.Errorf("attempt-0 delay = %v, want 0", d)
	}
	if a, b := retryDelay(base, 5, 2), retryDelay(base, 5, 2); a != b {
		t.Errorf("nondeterministic: %v vs %v", a, b)
	}
	for a := 1; a <= 40; a++ {
		d := retryDelay(base, 9, a)
		shift := a - 1
		if shift > 6 {
			shift = 6
		}
		lo := base << shift
		hi := lo + lo/2
		if d < lo || d > hi {
			t.Errorf("attempt %d delay %v outside [%v, %v]", a, d, lo, hi)
		}
	}
}

// TestRetryBackoffIntegration: a transient fault under Retry with a
// backoff still clears on the second attempt, and the run takes at
// least one backoff period.
func TestRetryBackoffIntegration(t *testing.T) {
	inj := mustPlan(t, "vmfault@1:2:1")
	b, err := New(derefApp(), Options{Errors: ErrorPolicy{
		Policy: Retry, MaxAttempts: 2, RetryBackoff: 5 * time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	b.AddTracer(inj.Tracer())
	start := time.Now()
	recs, err := b.RunPackets(derefPackets(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if r.Faulted() {
			t.Errorf("packet %d quarantined despite a clean backoff retry", i)
		}
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("run took %v, shorter than one backoff period", elapsed)
	}
}

func TestParseShedPolicy(t *testing.T) {
	for in, want := range map[string]ShedPolicy{
		"": ShedBlock, "block": ShedBlock,
		"drop-newest": ShedDropNewest, "newest": ShedDropNewest,
		"drop-oldest": ShedDropOldest, "oldest": ShedDropOldest,
	} {
		got, err := ParseShedPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseShedPolicy(%q) = %v, %v", in, got, err)
		}
	}
	for _, p := range []ShedPolicy{ShedBlock, ShedDropNewest, ShedDropOldest} {
		if round, err := ParseShedPolicy(p.String()); err != nil || round != p {
			t.Errorf("String/Parse round trip broken for %v", p)
		}
	}
	if _, err := ParseShedPolicy("yeet"); err == nil {
		t.Error("bad shed policy name accepted")
	}
}
