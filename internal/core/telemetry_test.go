package core

import (
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vm"
)

// telemetryApp is a tiny self-contained program: reads the first packet
// word, returns its low byte as the verdict.
const telemetrySrc = `
	.text
	.global main
main:
	lw   t0, 0(a0)
	andi a0, t0, 0xFF
	ret
`

// faultyApp dereferences an unmapped address for packets whose first
// byte is odd, so runs can mix measured and quarantined packets
// deterministically.
const telemetryFaultySrc = `
	.text
	.global main
main:
	lbu  t0, 0(a0)
	andi t1, t0, 1
	beq  t1, zero, ok
	lui  t2, 0xDEAD0
	lw   t3, 0(t2)
ok:
	li   a0, 1
	ret
`

func telemetryPackets(n int) []*trace.Packet {
	pkts := make([]*trace.Packet, n)
	for i := range pkts {
		data := make([]byte, 40)
		data[0] = byte(i)
		pkts[i] = &trace.Packet{Data: data, WireLen: len(data)}
	}
	return pkts
}

func TestBenchTelemetryCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	b, err := New(&App{Name: "tm", Source: telemetrySrc, Entry: "main"},
		Options{Metrics: reg, NoVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	pkts := telemetryPackets(10)
	records, err := b.RunPackets(pkts, nil)
	if err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	if got := s.CounterTotal(telemetry.MetricPacketsProcessed); got != 10 {
		t.Errorf("packets_processed_total = %d, want 10", got)
	}
	if got := s.CounterTotal(telemetry.MetricPacketAttempts); got != 10 {
		t.Errorf("packet_attempts_total = %d, want 10", got)
	}
	var wantInstr, wantPktReads uint64
	for i := range records {
		wantInstr += records[i].Instructions
		wantPktReads += records[i].PacketReads
	}
	if got := s.CounterTotal(telemetry.MetricInstrsExecuted); got != wantInstr {
		t.Errorf("instrs_executed_total = %d, want %d", got, wantInstr)
	}
	key := telemetry.MetricMemRefs + `{op="read",region="packet"}`
	if got := s.Counters[key]; got != wantPktReads {
		t.Errorf("%s = %d, want %d (have %v)", key, got, wantPktReads, s.Counters)
	}
	lat, ok := s.Histograms[telemetry.MetricPacketLatency]
	if !ok || lat.Count != 10 {
		t.Errorf("packet_latency_ns count = %d, want 10", lat.Count)
	}
	if lat.Sum == 0 {
		t.Errorf("packet_latency_ns sum is zero")
	}
}

func TestBenchTelemetryFaultKinds(t *testing.T) {
	reg := telemetry.NewRegistry()
	b, err := New(&App{Name: "tmf", Source: telemetryFaultySrc, Entry: "main"},
		Options{Metrics: reg, NoVerify: true,
			Errors: ErrorPolicy{Policy: SkipAndRecord}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.RunPackets(telemetryPackets(10), nil); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if got := s.CounterTotal(telemetry.MetricPacketsProcessed); got != 5 {
		t.Errorf("processed = %d, want 5", got)
	}
	if got := s.CounterTotal(telemetry.MetricPacketsFaulted); got != 5 {
		t.Errorf("faulted = %d, want 5", got)
	}
	// The fault kind must be labeled.
	found := false
	for k, v := range s.Counters {
		if strings.HasPrefix(k, telemetry.MetricPacketsFaulted+"{") &&
			strings.Contains(k, vm.FaultUnmapped.String()) && v == 5 {
			found = true
		}
	}
	if !found {
		t.Errorf("no packets_faulted_total{kind=%q} = 5 series; have %v",
			vm.FaultUnmapped.String(), s.Counters)
	}
}

func TestBenchTelemetryRetryAttempts(t *testing.T) {
	reg := telemetry.NewRegistry()
	b, err := New(&App{Name: "tmr", Source: telemetryFaultySrc, Entry: "main"},
		Options{Metrics: reg, NoVerify: true,
			Errors: ErrorPolicy{Policy: Retry, MaxAttempts: 3}})
	if err != nil {
		t.Fatal(err)
	}
	// One deterministic faulter: 3 attempts, then quarantine.
	pkts := telemetryPackets(2) // packet 1 has an odd first byte
	if _, err := b.RunPackets(pkts, nil); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if got := s.CounterTotal(telemetry.MetricPacketAttempts); got != 4 {
		t.Errorf("attempts = %d, want 4 (1 ok + 3 retries)", got)
	}
	if got := s.CounterTotal(telemetry.MetricPacketsFaulted); got != 1 {
		t.Errorf("faulted = %d, want 1", got)
	}
}

func TestPoolTelemetrySharedAcrossCores(t *testing.T) {
	reg := telemetry.NewRegistry()
	pool, err := NewPool(&App{Name: "tmp", Source: telemetrySrc, Entry: "main"},
		4, Options{Metrics: reg, NoVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	pkts := telemetryPackets(64)
	if _, err := pool.RunPackets(pkts, nil); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if got := s.CounterTotal(telemetry.MetricPacketsProcessed); got != 64 {
		t.Errorf("pooled packets_processed_total = %d, want 64", got)
	}
	if got := s.Gauges[telemetry.MetricPoolCores]; got != 4 {
		t.Errorf("pool_cores = %d, want 4", got)
	}
	if got := s.Gauges[telemetry.MetricPoolWorkersBusy]; got != 0 {
		t.Errorf("pool_workers_busy = %d after run, want 0", got)
	}
}

func TestTelemetryDisabledIsInert(t *testing.T) {
	b, err := New(&App{Name: "tm0", Source: telemetrySrc, Entry: "main"},
		Options{NoVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if b.Metrics() != nil {
		t.Fatalf("Metrics() should be nil when disabled")
	}
	if _, err := b.RunPackets(telemetryPackets(3), nil); err != nil {
		t.Fatal(err)
	}
}

// TestBenchTelemetryCompiledTier checks the compiled engine's series:
// untraced packets through compiled chains must show up as
// blocks_compiled_total and reason-labeled compiled_exits_total, and the
// totals must agree with the bench's own stats snapshot.
func TestBenchTelemetryCompiledTier(t *testing.T) {
	reg := telemetry.NewRegistry()
	b, err := New(&App{Name: "tm", Source: telemetrySrc, Entry: "main"},
		Options{Metrics: reg, Engine: EngineCompiled})
	if err != nil {
		t.Fatal(err)
	}
	b.SetTracing(false) // traced runs fall back to the threaded loop
	for _, p := range telemetryPackets(2 * vm.DefaultPromoteAfter) {
		if _, err := b.ProcessPacket(p); err != nil {
			t.Fatal(err)
		}
	}

	st := b.CompiledStats()
	if st.BlocksCompiled == 0 {
		t.Fatal("no blocks compiled: the run never exercised the compiled tier")
	}
	s := reg.Snapshot()
	if got := s.CounterTotal(telemetry.MetricBlocksCompiled); got != st.BlocksCompiled {
		t.Errorf("blocks_compiled_total = %d, want %d", got, st.BlocksCompiled)
	}
	var wantExits uint64
	for _, n := range st.Exits {
		wantExits += n
	}
	if got := s.CounterTotal(telemetry.MetricCompiledExits); got != wantExits || wantExits == 0 {
		t.Errorf("compiled_exits_total = %d, want %d (nonzero)", got, wantExits)
	}
	key := telemetry.MetricCompiledExits + `{reason="` + vm.CexitJalr.String() + `"}`
	if s.Counters[key] == 0 {
		t.Errorf("no %s series; have %v", key, s.Counters)
	}
}
