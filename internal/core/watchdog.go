package core

import (
	"fmt"
	"sync/atomic"
	"time"
)

// StallError reports a pool worker that made no packet progress for at
// least the configured Options.StallTimeout. The run engine cancels the
// run and surfaces this as the run error, so a wedged worker (a stuck
// tracer, a pathological guest under an effectively unlimited step
// budget, an injected stall) ends the run instead of hanging it.
type StallError struct {
	// Worker is the pool core index that stalled.
	Worker int
	// Index is the trace index of the packet it was processing.
	Index int
	// Stalled is how long the worker had made no progress when the
	// watchdog fired.
	Stalled time.Duration
}

func (e *StallError) Error() string {
	return fmt.Sprintf("core: worker %d stalled for %v on packet %d", e.Worker, e.Stalled.Round(time.Millisecond), e.Index)
}

// workerBeat is one worker's progress heartbeat: seq bumps at every
// packet boundary (begin and end), idx is the trace index in flight (-1
// when idle). Padded out to a cache line so beats of adjacent workers
// never false-share.
type workerBeat struct {
	seq atomic.Int64
	idx atomic.Int64
	_   [48]byte
}

// watchdog detects pool workers that stop making progress. Workers write
// heartbeats at packet boundaries (two atomic stores — cheap enough to
// sit on the hot path only when a timeout is configured); a single
// monitor goroutine polls them and fires once when a busy worker's beat
// stays unchanged for the timeout.
type watchdog struct {
	timeout time.Duration
	beats   []workerBeat
}

func newWatchdog(workers int, timeout time.Duration) *watchdog {
	w := &watchdog{timeout: timeout, beats: make([]workerBeat, workers)}
	for i := range w.beats {
		w.beats[i].idx.Store(-1)
	}
	return w
}

// begin marks worker c as processing trace index idx.
func (w *watchdog) begin(c, idx int) {
	w.beats[c].idx.Store(int64(idx))
	w.beats[c].seq.Add(1)
}

// end marks worker c idle.
func (w *watchdog) end(c int) {
	w.beats[c].idx.Store(-1)
	w.beats[c].seq.Add(1)
}

// run polls the beats until done closes, reporting the first worker that
// stays busy on one packet for at least the timeout. It calls onStall at
// most once and then returns. The poll period is timeout/8 clamped to
// [1ms, 250ms], so detection lands within ~12% past the timeout without
// burning CPU on long timeouts.
func (w *watchdog) run(done <-chan struct{}, onStall func(worker, idx int, stalled time.Duration)) {
	period := w.timeout / 8
	if period < time.Millisecond {
		period = time.Millisecond
	}
	if period > 250*time.Millisecond {
		period = 250 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	lastSeq := make([]int64, len(w.beats))
	lastChange := make([]time.Time, len(w.beats))
	now := time.Now()
	for c := range w.beats {
		lastSeq[c] = w.beats[c].seq.Load()
		lastChange[c] = now
	}
	for {
		select {
		case <-done:
			return
		case <-tick.C:
		}
		now = time.Now()
		for c := range w.beats {
			seq := w.beats[c].seq.Load()
			idx := w.beats[c].idx.Load()
			if seq != lastSeq[c] {
				lastSeq[c] = seq
				lastChange[c] = now
				continue
			}
			if idx < 0 {
				// Idle (waiting for work) is not a stall; only a worker
				// stuck inside a packet trips the watchdog.
				lastChange[c] = now
				continue
			}
			if stalled := now.Sub(lastChange[c]); stalled >= w.timeout {
				onStall(c, int(idx), stalled)
				return
			}
		}
	}
}
