// Package diag defines the diagnostic type shared by the assembler's
// lint warnings and the static verifier (internal/staticcheck): a typed,
// located finding with a severity, a short check code, and the source
// line it refers to.
//
// The package is a leaf — it imports nothing from the toolchain — so the
// assembler can report lint findings with the same type the verifier
// uses without creating an import cycle (staticcheck imports asm to read
// assembled programs).
package diag

import (
	"fmt"
	"sort"
	"strings"
)

// Severity ranks a diagnostic. Error-severity findings gate execution:
// the run engine refuses to load a program carrying any (unless
// verification is explicitly disabled), while warnings are advisory.
type Severity uint8

// The severities, in increasing order of gravity.
const (
	Info Severity = iota
	Warning
	Error
)

// String returns the lower-case severity name.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity?%d", uint8(s))
}

// Diagnostic is one located finding.
type Diagnostic struct {
	Severity Severity
	// Check is the short kebab-case name of the analysis that produced
	// the finding (for example "bad-target" or "unused-label").
	Check string
	// Line is the 1-based source line the finding refers to, 0 when no
	// line information is available.
	Line int
	// PC is the text address the finding refers to, 0 when the finding
	// is not tied to an instruction.
	PC uint32
	// Msg describes the finding.
	Msg string
}

// String renders the diagnostic as "line 12: error: msg [check]".
func (d Diagnostic) String() string {
	var b strings.Builder
	if d.Line > 0 {
		fmt.Fprintf(&b, "line %d: ", d.Line)
	}
	fmt.Fprintf(&b, "%s: %s", d.Severity, d.Msg)
	if d.Check != "" {
		fmt.Fprintf(&b, " [%s]", d.Check)
	}
	return b.String()
}

// List is a collection of diagnostics.
type List []Diagnostic

// HasErrors reports whether any finding is error severity.
func (l List) HasErrors() bool {
	for _, d := range l {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Errors returns only the error-severity findings.
func (l List) Errors() List {
	var out List
	for _, d := range l {
		if d.Severity == Error {
			out = append(out, d)
		}
	}
	return out
}

// Count returns the number of findings at the given severity.
func (l List) Count(s Severity) int {
	n := 0
	for _, d := range l {
		if d.Severity == s {
			n++
		}
	}
	return n
}

// Sort orders the list by source line, then address, then check name,
// and removes exact duplicates (analyses over shared code paths can
// reach the same instruction twice).
func (l List) Sort() List {
	sort.SliceStable(l, func(i, j int) bool {
		if l[i].Line != l[j].Line {
			return l[i].Line < l[j].Line
		}
		if l[i].PC != l[j].PC {
			return l[i].PC < l[j].PC
		}
		return l[i].Check < l[j].Check
	})
	out := l[:0]
	for i, d := range l {
		if i > 0 && d == l[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// String renders the list one diagnostic per line.
func (l List) String() string {
	var b strings.Builder
	for _, d := range l {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}
