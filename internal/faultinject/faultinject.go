// Package faultinject deterministically corrupts a packet stream, the
// simulated execution of chosen packets, and the host-side machinery
// around them, so the run engine's error policies and crash-only paths
// can be exercised without hand-crafting broken capture files or racy
// test doubles.
//
// An Injector is built from a seed and a plan of Injections, each pinned
// to a packet index in the trace (or, for CkptTear, a checkpoint write
// ordinal). Three attachment points cover the three fault surfaces:
//
//   - Injector.Reader wraps a trace.Reader and mutates packets as they
//     are read: flipping header bytes, truncating the captured data,
//     clamping the capture length, or returning transient read errors
//     before a chosen packet.
//   - Injector.Tracer returns a vm.Tracer that, armed at a packet
//     boundary, fires mid-execution: a *vm.Fault panic, a plain host
//     panic (simulating a worker bug), or an injected latency spike or
//     full stall that exercises the pool's progress watchdog.
//   - Injector.CheckpointTearFunc plugs into core.Checkpointer.TearWrite
//     and simulates a crash mid-checkpoint at planned write ordinals.
//
// All randomness (unspecified offsets, masks, step counts) is resolved
// from the seed when the Injector is built, so a plan replays identically
// regardless of how packets are scheduled across cores.
package faultinject

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Kind enumerates the supported corruption kinds.
type Kind int

// The injection kinds.
const (
	// FlipByte XORs a mask into one byte of the packet data.
	FlipByte Kind = iota
	// Truncate cuts the captured data to a shorter length, leaving the
	// wire length untouched (a header-only capture of a longer packet).
	Truncate
	// ClampLen clamps both the captured data and the wire length, as an
	// aggressive snap length would.
	ClampLen
	// VMFault forces a *vm.Fault partway through the packet's simulated
	// execution, via the tracer hook.
	VMFault
	// WorkerPanic panics with a plain (non-fault) value partway through
	// the packet's execution, simulating a host-side worker bug; the run
	// engine's panic barrier must attribute it to exactly this packet.
	WorkerPanic
	// Delay sleeps inside the packet's execution for Arg milliseconds
	// (seed-chosen, 1-25ms, when Arg is negative) — a latency spike that
	// is slow but makes progress, so the watchdog must NOT fire.
	Delay
	// Stall blocks inside the packet's execution for Arg milliseconds
	// (effectively forever when Arg is negative) or until the run is
	// cancelled — the wedged worker the progress watchdog exists for.
	Stall
	// ReadErr makes the wrapping reader return a transient malformed-
	// record error before the packet is read. Times bounds how many
	// attempts fail (default one), after which the read succeeds.
	ReadErr
	// CkptTear makes checkpoint write ordinal Index crash mid-write,
	// leaving a torn temp file and the previous checkpoint intact. It
	// attaches via CheckpointTearFunc, not the reader or tracer.
	CkptTear
)

// String returns the spec-syntax name of the kind.
func (k Kind) String() string {
	switch k {
	case FlipByte:
		return "flip"
	case Truncate:
		return "trunc"
	case ClampLen:
		return "clamp"
	case VMFault:
		return "vmfault"
	case WorkerPanic:
		return "panic"
	case Delay:
		return "delay"
	case Stall:
		return "stall"
	case ReadErr:
		return "readerr"
	case CkptTear:
		return "tearckpt"
	}
	return fmt.Sprintf("kind?%d", int(k))
}

// Injection is one planned corruption.
type Injection struct {
	// Index is the 0-based packet index in the trace the injection
	// applies to — except for CkptTear, where it is the checkpoint
	// write ordinal.
	Index int
	// Kind selects the corruption.
	Kind Kind
	// Arg refines it: the byte offset for FlipByte, the new length for
	// Truncate/ClampLen, the instruction count before the fault for
	// VMFault/WorkerPanic, or the sleep in milliseconds for Delay/Stall.
	// Negative means "choose from the seed" (for Stall: block until
	// cancelled).
	Arg int
	// Times bounds how many executions of the packet the injection
	// fires on; <= 0 means every one. With Times: 1 a VMFault gives a
	// retry policy a clean second attempt, and a ReadErr is a single
	// transient glitch.
	Times int
}

// resolved is an Injection with its seeded randomness drawn.
type resolved struct {
	Injection
	salt uint64 // drives any length-dependent choices at apply time
	mask byte   // FlipByte XOR mask

	fired atomic.Int32 // executions the injection has fired on so far
}

// take reports whether the injection should fire on one more execution,
// atomically consuming a slot of its Times bound.
func (r *resolved) take() bool {
	return r.Times <= 0 || r.fired.Add(1) <= int32(r.Times)
}

// Injector applies a plan. It is safe for concurrent use: the packet
// mutations run inside the (sequential) trace reader, and the tracers
// only share atomic fire counters.
type Injector struct {
	seed    int64
	byIndex map[int][]*resolved
	plan    []Injection
}

// New draws all randomness for the plan from seed and returns the
// injector.
func New(seed int64, plan []Injection) *Injector {
	rng := rand.New(rand.NewSource(seed))
	inj := &Injector{
		seed:    seed,
		byIndex: make(map[int][]*resolved, len(plan)),
		plan:    append([]Injection(nil), plan...),
	}
	for _, in := range plan {
		r := &resolved{Injection: in, salt: rng.Uint64()}
		r.mask = byte(r.salt >> 8)
		if r.mask == 0 {
			r.mask = 0xFF
		}
		inj.byIndex[in.Index] = append(inj.byIndex[in.Index], r)
	}
	return inj
}

// Plan returns a copy of the injections, sorted by packet index, for
// reporting.
func (inj *Injector) Plan() []Injection {
	out := append([]Injection(nil), inj.plan...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Reader wraps r so that planned packet-surface injections (FlipByte,
// Truncate, ClampLen, ReadErr) are applied as packets are read. Packet
// data is copied before mutation; the underlying reader's packets are
// never modified.
func (inj *Injector) Reader(r trace.Reader) trace.Reader {
	return inj.ReaderFrom(r, 0)
}

// ReaderFrom is Reader for an underlying reader already positioned at
// trace index start — a resumed run wraps its seeked reader with the
// restored start index so plan entries keep their absolute positions.
func (inj *Injector) ReaderFrom(r trace.Reader, start int) trace.Reader {
	return &injectReader{inj: inj, r: r, next: start}
}

type injectReader struct {
	inj  *Injector
	r    trace.Reader
	next int
}

// Next implements trace.Reader. Planned ReadErr entries fire before the
// underlying read, so they are transient: the underlying reader does not
// advance, and once the entry's Times bound is spent the same packet
// reads cleanly.
func (ir *injectReader) Next() (*trace.Packet, error) {
	idx := ir.next
	for _, res := range ir.inj.byIndex[idx] {
		if res.Kind != ReadErr {
			continue
		}
		if !res.take() {
			continue
		}
		return nil, fmt.Errorf("faultinject: injected reader error at packet %d: %w", idx, trace.ErrMalformedRecord)
	}
	p, err := ir.r.Next()
	if err != nil {
		return p, err
	}
	ir.next++
	for _, res := range ir.inj.byIndex[idx] {
		p = res.applyPacket(p)
	}
	return p, nil
}

// NextBatch implements trace.BatchReader by repeated Next calls, so the
// per-packet injection checks run for every packet of the batch.
func (ir *injectReader) NextBatch(dst []*trace.Packet) (int, error) {
	n := 0
	for n < len(dst) {
		p, err := ir.Next()
		if err != nil {
			return n, err
		}
		dst[n] = p
		n++
	}
	return n, nil
}

// Progress implements trace.Progresser by delegating to the underlying
// reader.
func (ir *injectReader) Progress() (float64, bool) { return trace.Progress(ir.r) }

// PosState implements trace.Seeker by delegating to the underlying
// reader, so a checkpointed run can stream through an injector.
func (ir *injectReader) PosState() []int64 {
	if sk, ok := ir.r.(trace.Seeker); ok {
		return sk.PosState()
	}
	return nil
}

// SeekTo is not supported on the wrapper: the injector cannot recover
// the packet index from reader state. Seek the underlying reader, then
// re-wrap it with ReaderFrom and the restored start index.
func (ir *injectReader) SeekTo(state []int64) error {
	return fmt.Errorf("faultinject: seek the underlying reader and re-wrap it with ReaderFrom")
}

// applyPacket applies a packet-surface injection, returning the (possibly
// replaced) packet.
func (r *resolved) applyPacket(p *trace.Packet) *trace.Packet {
	n := len(p.Data)
	if n == 0 {
		return p
	}
	switch r.Kind {
	case FlipByte:
		off := r.Arg
		if off < 0 || off >= n {
			off = int(r.salt % uint64(n))
		}
		q := *p
		q.Data = append([]byte(nil), p.Data...)
		q.Data[off] ^= r.mask
		return &q
	case Truncate, ClampLen:
		cut := r.Arg
		if cut < 1 || cut >= n {
			cut = 1 + int(r.salt%uint64(n))
			if cut >= n {
				cut = n - 1
			}
		}
		if cut < 1 {
			return p
		}
		q := *p
		q.Data = p.Data[:cut] // reslice only; no byte is modified
		if r.Kind == ClampLen {
			q.WireLen = cut
		}
		return &q
	}
	return p
}

// Tracer returns a vm.Tracer for one core. The run engine must call
// BeginPacket with the trace index before each packet executes; when the
// plan holds an execution-surface fault for that index, the tracer fires
// once the armed instruction count elapses: VMFault panics with a
// *vm.Fault, WorkerPanic panics with a plain string, Delay and Stall
// sleep inside the instruction stream. Create one Tracer per core; they
// share the plan's fire counters, so a Times bound holds across the
// whole run.
func (inj *Injector) Tracer() *Tracer {
	return &Tracer{inj: inj}
}

// armedFault is one execution-surface injection armed for the packet in
// flight, with its remaining instruction countdown.
type armedFault struct {
	res       *resolved
	countdown int
}

// Tracer forces execution-surface faults at planned packet indexes. It
// implements vm.Tracer plus the BeginPacket boundary hook the run engine
// feeds per-packet indexes through, and the BeginRun hook the pool uses
// to hand it the run context so injected stalls unblock on cancellation.
type Tracer struct {
	inj   *Injector
	ctx   context.Context
	armed []armedFault
}

// BeginRun hands the tracer the run's context. Injected stalls and
// delays select on its Done channel, so a watchdog-cancelled run
// unwedges the stalled worker instead of leaking it for the full sleep.
func (t *Tracer) BeginRun(ctx context.Context) { t.ctx = ctx }

// BeginPacket arms the tracer's execution-surface injections for the
// packet at the given trace index.
func (t *Tracer) BeginPacket(index int) {
	t.armed = t.armed[:0]
	for _, res := range t.inj.byIndex[index] {
		switch res.Kind {
		case VMFault, WorkerPanic, Delay, Stall:
		default:
			continue
		}
		if !res.take() {
			continue
		}
		countdown := res.Arg
		if res.Kind == Delay || res.Kind == Stall || countdown < 0 {
			// A small seeded count keeps the fault inside even short
			// applications' instruction budgets. For Delay/Stall the Arg
			// is the sleep, never the countdown.
			countdown = int(res.salt % 16)
		}
		t.armed = append(t.armed, armedFault{res: res, countdown: countdown})
	}
}

// Instr implements vm.Tracer; it fires armed injections as their
// countdowns elapse. Each entry is removed before firing, so a panic
// that unwinds the VM cannot re-fire the same arming on a later
// instruction.
func (t *Tracer) Instr(pc uint32, in isa.Instruction) {
	for i := 0; i < len(t.armed); {
		a := &t.armed[i]
		if a.countdown > 0 {
			a.countdown--
			i++
			continue
		}
		res := a.res
		t.armed = append(t.armed[:i], t.armed[i+1:]...)
		t.fire(res, pc)
	}
}

// fire executes one armed injection at the current pc.
func (t *Tracer) fire(res *resolved, pc uint32) {
	switch res.Kind {
	case VMFault:
		panic(&vm.Fault{Kind: vm.FaultBadInstr, PC: pc})
	case WorkerPanic:
		panic(fmt.Sprintf("faultinject: injected worker panic at pc %#x", pc))
	case Delay, Stall:
		d := time.Duration(res.Arg) * time.Millisecond
		if res.Arg < 0 {
			if res.Kind == Delay {
				d = time.Duration(1+res.salt%25) * time.Millisecond
			} else {
				// An unbounded stall: in practice "until the watchdog
				// cancels the run", far past any sane stall timeout.
				d = time.Hour
			}
		}
		ctx := t.ctx
		if ctx == nil {
			ctx = context.Background()
		}
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
		}
	}
}

// Mem implements vm.Tracer.
func (t *Tracer) Mem(pc, addr uint32, size uint8, write bool, region vm.Region) {}

// CheckpointTearFunc returns a core.Checkpointer.TearWrite hook firing
// the plan's CkptTear entries, or nil when the plan holds none. The
// ordinal handed in is matched against the entries' Index.
func (inj *Injector) CheckpointTearFunc() func(ordinal int) bool {
	has := false
	for _, in := range inj.plan {
		if in.Kind == CkptTear {
			has = true
			break
		}
	}
	if !has {
		return nil
	}
	return func(ordinal int) bool {
		for _, res := range inj.byIndex[ordinal] {
			if res.Kind != CkptTear {
				continue
			}
			if !res.take() {
				continue
			}
			return true
		}
		return false
	}
}

// ParsePlan parses the CLI injection spec: a comma-separated list of
// kind@index entries with optional arguments, e.g.
//
//	flip@3,trunc@7:20,vmfault@11,panic@19,delay@23:5,stall@31,readerr@40,tearckpt@1
//
// Packet-surface kinds are flip, trunc and clamp; the argument after ':'
// is the byte offset or new length (omit it to let the seed choose).
// Execution-surface kinds are vmfault and panic (argument: instruction
// count before firing) and delay and stall (argument: milliseconds to
// sleep); vmfault, panic, delay and stall take an optional second
// argument bounding how many executions they fire on: vmfault@11:20:1
// faults the first attempt only, so a retry succeeds. readerr@i[:times]
// fails `times` reads of packet i (default one) with a transient
// malformed-record error. tearckpt@n tears checkpoint write ordinal n.
func ParsePlan(spec string) ([]Injection, error) {
	var plan []Injection
	for _, ent := range strings.Split(spec, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		kindStr, rest, ok := strings.Cut(ent, "@")
		if !ok {
			return nil, fmt.Errorf("faultinject: entry %q: want kind@index", ent)
		}
		var kind Kind
		switch kindStr {
		case "flip":
			kind = FlipByte
		case "trunc":
			kind = Truncate
		case "clamp":
			kind = ClampLen
		case "vmfault":
			kind = VMFault
		case "panic":
			kind = WorkerPanic
		case "delay":
			kind = Delay
		case "stall":
			kind = Stall
		case "readerr":
			kind = ReadErr
		case "tearckpt":
			kind = CkptTear
		default:
			return nil, fmt.Errorf("faultinject: entry %q: unknown kind %q (want flip, trunc, clamp, vmfault, panic, delay, stall, readerr or tearckpt)", ent, kindStr)
		}
		maxParts := 2
		switch kind {
		case VMFault, WorkerPanic, Delay, Stall:
			maxParts = 3
		case CkptTear:
			maxParts = 1
		}
		parts := strings.Split(rest, ":")
		if len(parts) > maxParts {
			return nil, fmt.Errorf("faultinject: entry %q: too many arguments", ent)
		}
		idx, err := strconv.Atoi(parts[0])
		if err != nil || idx < 0 {
			return nil, fmt.Errorf("faultinject: entry %q: bad packet index %q", ent, parts[0])
		}
		in := Injection{Index: idx, Kind: kind, Arg: -1}
		if len(parts) > 1 && parts[1] != "" {
			if in.Arg, err = strconv.Atoi(parts[1]); err != nil || in.Arg < 0 {
				return nil, fmt.Errorf("faultinject: entry %q: bad argument %q", ent, parts[1])
			}
		}
		if len(parts) > 2 && parts[2] != "" {
			if in.Times, err = strconv.Atoi(parts[2]); err != nil || in.Times < 0 {
				return nil, fmt.Errorf("faultinject: entry %q: bad fire count %q", ent, parts[2])
			}
		}
		if kind == ReadErr {
			// The argument is the failure count, not an Arg: a readerr
			// entry must stop firing eventually or the packet could
			// never be read.
			in.Times = 1
			if in.Arg >= 0 {
				in.Times = in.Arg
			}
			in.Arg = -1
		}
		plan = append(plan, in)
	}
	if len(plan) == 0 {
		return nil, fmt.Errorf("faultinject: empty injection spec")
	}
	return plan, nil
}
