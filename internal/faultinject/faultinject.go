// Package faultinject deterministically corrupts a packet stream and the
// simulated execution of chosen packets, so the run engine's error
// policies can be exercised without hand-crafting broken capture files.
//
// An Injector is built from a seed and a plan of Injections, each pinned
// to a packet index in the trace. Two attachment points cover the two
// fault surfaces:
//
//   - Injector.Reader wraps a trace.Reader and mutates packets as they
//     are read: flipping header bytes, truncating the captured data, or
//     clamping the capture length.
//   - Injector.Tracer returns a vm.Tracer that, armed at a packet
//     boundary, panics with a *vm.Fault after a chosen number of
//     simulated instructions, forcing a VM fault mid-execution.
//
// All randomness (unspecified offsets, masks, step counts) is resolved
// from the seed when the Injector is built, so a plan replays identically
// regardless of how packets are scheduled across cores.
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Kind enumerates the supported corruption kinds.
type Kind int

// The injection kinds.
const (
	// FlipByte XORs a mask into one byte of the packet data.
	FlipByte Kind = iota
	// Truncate cuts the captured data to a shorter length, leaving the
	// wire length untouched (a header-only capture of a longer packet).
	Truncate
	// ClampLen clamps both the captured data and the wire length, as an
	// aggressive snap length would.
	ClampLen
	// VMFault forces a *vm.Fault partway through the packet's simulated
	// execution, via the tracer hook.
	VMFault
)

// String returns the spec-syntax name of the kind.
func (k Kind) String() string {
	switch k {
	case FlipByte:
		return "flip"
	case Truncate:
		return "trunc"
	case ClampLen:
		return "clamp"
	case VMFault:
		return "vmfault"
	}
	return fmt.Sprintf("kind?%d", int(k))
}

// Injection is one planned corruption.
type Injection struct {
	// Index is the 0-based packet index in the trace the injection
	// applies to.
	Index int
	// Kind selects the corruption.
	Kind Kind
	// Arg refines it: the byte offset for FlipByte, the new length for
	// Truncate/ClampLen, or the instruction count before the fault for
	// VMFault. Negative means "choose from the seed".
	Arg int
	// Times bounds how many executions of the packet the injection
	// fires on; <= 0 means every one. Only meaningful for VMFault —
	// with Times: 1 a retry policy gets a clean second attempt.
	Times int
}

// resolved is an Injection with its seeded randomness drawn.
type resolved struct {
	Injection
	salt uint64 // drives any length-dependent choices at apply time
	mask byte   // FlipByte XOR mask

	fired atomic.Int32 // executions the injection has fired on so far
}

// Injector applies a plan. It is safe for concurrent use: the packet
// mutations run inside the (sequential) trace reader, and the tracers
// only share atomic fire counters.
type Injector struct {
	seed    int64
	byIndex map[int][]*resolved
	plan    []Injection
}

// New draws all randomness for the plan from seed and returns the
// injector.
func New(seed int64, plan []Injection) *Injector {
	rng := rand.New(rand.NewSource(seed))
	inj := &Injector{
		seed:    seed,
		byIndex: make(map[int][]*resolved, len(plan)),
		plan:    append([]Injection(nil), plan...),
	}
	for _, in := range plan {
		r := &resolved{Injection: in, salt: rng.Uint64()}
		r.mask = byte(r.salt >> 8)
		if r.mask == 0 {
			r.mask = 0xFF
		}
		inj.byIndex[in.Index] = append(inj.byIndex[in.Index], r)
	}
	return inj
}

// Plan returns a copy of the injections, sorted by packet index, for
// reporting.
func (inj *Injector) Plan() []Injection {
	out := append([]Injection(nil), inj.plan...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Reader wraps r so that planned packet corruptions (every kind except
// VMFault) are applied as packets are read. Packet data is copied before
// mutation; the underlying reader's packets are never modified.
func (inj *Injector) Reader(r trace.Reader) trace.Reader {
	return &injectReader{inj: inj, r: r}
}

type injectReader struct {
	inj  *Injector
	r    trace.Reader
	next int
}

// Next implements trace.Reader.
func (ir *injectReader) Next() (*trace.Packet, error) {
	p, err := ir.r.Next()
	if err != nil {
		return p, err
	}
	idx := ir.next
	ir.next++
	for _, res := range ir.inj.byIndex[idx] {
		p = res.applyPacket(p)
	}
	return p, nil
}

// applyPacket applies a packet-surface injection, returning the (possibly
// replaced) packet.
func (r *resolved) applyPacket(p *trace.Packet) *trace.Packet {
	n := len(p.Data)
	if n == 0 {
		return p
	}
	switch r.Kind {
	case FlipByte:
		off := r.Arg
		if off < 0 || off >= n {
			off = int(r.salt % uint64(n))
		}
		q := *p
		q.Data = append([]byte(nil), p.Data...)
		q.Data[off] ^= r.mask
		return &q
	case Truncate, ClampLen:
		cut := r.Arg
		if cut < 1 || cut >= n {
			cut = 1 + int(r.salt%uint64(n))
			if cut >= n {
				cut = n - 1
			}
		}
		if cut < 1 {
			return p
		}
		q := *p
		q.Data = p.Data[:cut] // reslice only; no byte is modified
		if r.Kind == ClampLen {
			q.WireLen = cut
		}
		return &q
	}
	return p
}

// Tracer returns a vm.Tracer for one core. The run engine must call
// BeginPacket with the trace index before each packet executes; when the
// plan holds a VMFault for that index, the tracer panics with a
// *vm.Fault{Kind: FaultBadInstr} once the armed instruction count
// elapses. Create one Tracer per core; they share the plan's fire
// counters, so a Times bound holds across the whole run.
func (inj *Injector) Tracer() *Tracer {
	return &Tracer{inj: inj}
}

// Tracer forces VM faults at planned packet indexes. It implements
// vm.Tracer plus the BeginPacket boundary hook the run engine feeds
// per-packet indexes through.
type Tracer struct {
	inj       *Injector
	armed     *resolved
	countdown int
}

// BeginPacket arms or disarms the tracer for the packet at the given
// trace index.
func (t *Tracer) BeginPacket(index int) {
	t.armed = nil
	for _, res := range t.inj.byIndex[index] {
		if res.Kind != VMFault {
			continue
		}
		if res.Times > 0 && res.fired.Add(1) > int32(res.Times) {
			continue
		}
		t.armed = res
		t.countdown = res.Arg
		if t.countdown < 0 {
			// A small seeded count keeps the fault inside even short
			// applications' instruction budgets.
			t.countdown = int(res.salt % 16)
		}
		return
	}
}

// Instr implements vm.Tracer; it panics with a *vm.Fault when an armed
// countdown elapses. The run engine recovers the panic into an error.
func (t *Tracer) Instr(pc uint32, in isa.Instruction) {
	if t.armed == nil {
		return
	}
	if t.countdown > 0 {
		t.countdown--
		return
	}
	t.armed = nil
	panic(&vm.Fault{Kind: vm.FaultBadInstr, PC: pc})
}

// Mem implements vm.Tracer.
func (t *Tracer) Mem(pc, addr uint32, size uint8, write bool, region vm.Region) {}

// ParsePlan parses the CLI injection spec: a comma-separated list of
// kind@index entries with an optional argument, e.g.
//
//	flip@3,trunc@7:20,vmfault@11
//
// Kinds are flip, trunc, clamp and vmfault. The argument after ':' is the
// Injection Arg (byte offset, new length, or instruction count); omit it
// to let the seed choose. A vmfault entry takes an optional second
// argument bounding how many executions it fires on: vmfault@11:20:1
// faults the first attempt only, so a retry succeeds.
func ParsePlan(spec string) ([]Injection, error) {
	var plan []Injection
	for _, ent := range strings.Split(spec, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		kindStr, rest, ok := strings.Cut(ent, "@")
		if !ok {
			return nil, fmt.Errorf("faultinject: entry %q: want kind@index", ent)
		}
		var kind Kind
		switch kindStr {
		case "flip":
			kind = FlipByte
		case "trunc":
			kind = Truncate
		case "clamp":
			kind = ClampLen
		case "vmfault":
			kind = VMFault
		default:
			return nil, fmt.Errorf("faultinject: entry %q: unknown kind %q (want flip, trunc, clamp or vmfault)", ent, kindStr)
		}
		parts := strings.Split(rest, ":")
		if len(parts) > 3 || (kind != VMFault && len(parts) > 2) {
			return nil, fmt.Errorf("faultinject: entry %q: too many arguments", ent)
		}
		idx, err := strconv.Atoi(parts[0])
		if err != nil || idx < 0 {
			return nil, fmt.Errorf("faultinject: entry %q: bad packet index %q", ent, parts[0])
		}
		in := Injection{Index: idx, Kind: kind, Arg: -1}
		if len(parts) > 1 && parts[1] != "" {
			if in.Arg, err = strconv.Atoi(parts[1]); err != nil || in.Arg < 0 {
				return nil, fmt.Errorf("faultinject: entry %q: bad argument %q", ent, parts[1])
			}
		}
		if len(parts) > 2 && parts[2] != "" {
			if in.Times, err = strconv.Atoi(parts[2]); err != nil || in.Times < 0 {
				return nil, fmt.Errorf("faultinject: entry %q: bad fire count %q", ent, parts[2])
			}
		}
		plan = append(plan, in)
	}
	if len(plan) == 0 {
		return nil, fmt.Errorf("faultinject: empty injection spec")
	}
	return plan, nil
}
