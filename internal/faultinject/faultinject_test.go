package faultinject

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/vm"
)

func pkt(sec uint32, n int) *trace.Packet {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i)
	}
	data[0] = 0x45
	return &trace.Packet{Sec: sec, Data: data, WireLen: n + 10}
}

func readAll(t *testing.T, r trace.Reader) []*trace.Packet {
	t.Helper()
	pkts, err := trace.ReadAll(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	return pkts
}

func TestParsePlan(t *testing.T) {
	plan, err := ParsePlan("flip@3,trunc@7:20, vmfault@11:5:1 ,clamp@2")
	if err != nil {
		t.Fatal(err)
	}
	want := []Injection{
		{Index: 3, Kind: FlipByte, Arg: -1},
		{Index: 7, Kind: Truncate, Arg: 20},
		{Index: 11, Kind: VMFault, Arg: 5, Times: 1},
		{Index: 2, Kind: ClampLen, Arg: -1},
	}
	if len(plan) != len(want) {
		t.Fatalf("got %d injections, want %d", len(plan), len(want))
	}
	for i := range want {
		if plan[i] != want[i] {
			t.Errorf("injection %d = %+v, want %+v", i, plan[i], want[i])
		}
	}
	for _, bad := range []string{"", "flip", "zap@1", "flip@-1", "flip@x", "flip@1:2:3", "vmfault@1:2:3:4"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestReaderMutations(t *testing.T) {
	orig := []*trace.Packet{pkt(1, 40), pkt(2, 40), pkt(3, 40)}
	plan := []Injection{
		{Index: 0, Kind: FlipByte, Arg: 1},
		{Index: 1, Kind: Truncate, Arg: 8},
		{Index: 2, Kind: ClampLen, Arg: 8},
	}
	inj := New(7, plan)
	got := readAll(t, inj.Reader(trace.NewSliceReader(orig)))

	if got[0].Data[1] == orig[0].Data[1] {
		t.Error("FlipByte left the target byte unchanged")
	}
	if !bytes.Equal(got[0].Data[2:], orig[0].Data[2:]) || got[0].Data[0] != orig[0].Data[0] {
		t.Error("FlipByte touched bytes outside the target offset")
	}
	if orig[0].Data[1] != 1 {
		t.Error("FlipByte mutated the source packet")
	}
	if len(got[1].Data) != 8 || got[1].WireLen != orig[1].WireLen {
		t.Errorf("Truncate: len=%d wire=%d, want 8 and %d", len(got[1].Data), got[1].WireLen, orig[1].WireLen)
	}
	if len(got[2].Data) != 8 || got[2].WireLen != 8 {
		t.Errorf("ClampLen: len=%d wire=%d, want 8 and 8", len(got[2].Data), got[2].WireLen)
	}
}

func TestSeededChoicesAreDeterministic(t *testing.T) {
	plan := []Injection{{Index: 0, Kind: FlipByte, Arg: -1}, {Index: 1, Kind: Truncate, Arg: -1}}
	run := func(seed int64) []*trace.Packet {
		return readAll(t, New(seed, plan).Reader(trace.NewSliceReader([]*trace.Packet{pkt(1, 64), pkt(2, 64)})))
	}
	a, b := run(42), run(42)
	for i := range a {
		if !bytes.Equal(a[i].Data, b[i].Data) {
			t.Fatalf("packet %d differs across runs with the same seed", i)
		}
	}
	c := run(43)
	same := bytes.Equal(a[0].Data, c[0].Data) && len(a[1].Data) == len(c[1].Data)
	if same {
		t.Log("seeds 42 and 43 happened to collide; not an error, but suspicious")
	}
	if n := len(a[1].Data); n < 1 || n >= 64 {
		t.Errorf("seeded truncation length %d out of range [1,64)", n)
	}
}

func TestTracerForcesFault(t *testing.T) {
	inj := New(1, []Injection{{Index: 5, Kind: VMFault, Arg: 2, Times: 1}})
	tr := inj.Tracer()

	step := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = r.(*vm.Fault)
			}
		}()
		tr.Instr(0x400000, isa.Instruction{})
		return nil
	}

	// Packet 4 is not in the plan: nothing fires.
	tr.BeginPacket(4)
	for i := 0; i < 10; i++ {
		if err := step(); err != nil {
			t.Fatalf("unplanned packet faulted: %v", err)
		}
	}

	// Packet 5, first attempt: fault after 2 instructions.
	tr.BeginPacket(5)
	if err := step(); err != nil {
		t.Fatal("fired too early (instruction 1)")
	}
	if err := step(); err != nil {
		t.Fatal("fired too early (instruction 2)")
	}
	err := step()
	if err == nil {
		t.Fatal("armed tracer never fired")
	}
	if !errors.Is(err, vm.FaultBadInstr) {
		t.Errorf("fault kind = %v, want FaultBadInstr", err)
	}

	// Second attempt: Times: 1 exhausted, a retry runs clean.
	tr.BeginPacket(5)
	for i := 0; i < 10; i++ {
		if err := step(); err != nil {
			t.Fatalf("Times bound ignored; attempt 2 faulted: %v", err)
		}
	}
}

// TestTracersShareFireCounters pins the cross-core contract: two tracers
// from one injector count executions jointly, so a Times bound holds for
// the run, not per core.
func TestTracersShareFireCounters(t *testing.T) {
	inj := New(1, []Injection{{Index: 0, Kind: VMFault, Arg: 0, Times: 1}})
	t1, t2 := inj.Tracer(), inj.Tracer()
	t1.BeginPacket(0)
	if t1.armed == nil {
		t.Fatal("first tracer not armed")
	}
	t2.BeginPacket(0)
	if t2.armed != nil {
		t.Fatal("second tracer armed after the fire budget was spent")
	}
}
