package faultinject

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/trace"
)

func hostTestPackets(n int) []*trace.Packet {
	pkts := make([]*trace.Packet, n)
	for i := range pkts {
		pkts[i] = &trace.Packet{Sec: uint32(i), Data: []byte{0x45, 0, byte(i), byte(i)}}
		pkts[i].WireLen = len(pkts[i].Data)
	}
	return pkts
}

// TestParsePlanHostKinds round-trips the host-fault spec grammar added
// for the chaos harness.
func TestParsePlanHostKinds(t *testing.T) {
	plan, err := ParsePlan("panic@3,delay@5:40,stall@7,readerr@9:2,tearckpt@1,vmfault@2:8:1")
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[Kind]Injection{}
	for _, in := range plan {
		byKind[in.Kind] = in
	}
	if in := byKind[WorkerPanic]; in.Index != 3 {
		t.Errorf("panic parsed as %+v", in)
	}
	if in := byKind[Delay]; in.Index != 5 || in.Arg != 40 {
		t.Errorf("delay parsed as %+v, want index 5 arg 40ms", in)
	}
	if in := byKind[Stall]; in.Index != 7 || in.Arg != -1 {
		t.Errorf("stall parsed as %+v, want index 7 unbounded", in)
	}
	// readerr's single argument counts occurrences, not a mutation arg.
	if in := byKind[ReadErr]; in.Index != 9 || in.Times != 2 || in.Arg != -1 {
		t.Errorf("readerr parsed as %+v, want index 9 times 2", in)
	}
	if in := byKind[CkptTear]; in.Index != 1 {
		t.Errorf("tearckpt parsed as %+v", in)
	}

	if _, err := ParsePlan("readerr@4"); err != nil {
		t.Errorf("bare readerr rejected: %v", err)
	}
	for _, bad := range []string{"tearckpt@1:2", "panic@1:2:3:4", "stall@"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
	for _, k := range []Kind{WorkerPanic, Delay, Stall, ReadErr, CkptTear} {
		if strings.Contains(k.String(), "kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
}

// TestReadErrIsTransient: an injected reader error surfaces as a
// malformed-record error without consuming the underlying packet, so a
// retrying consumer sees the full stream.
func TestReadErrIsTransient(t *testing.T) {
	pkts := hostTestPackets(6)
	inj := New(1, []Injection{{Index: 2, Kind: ReadErr, Times: 2, Arg: -1}})
	r := inj.Reader(trace.NewSliceReader(pkts))

	var got []*trace.Packet
	fails := 0
	for len(got) < len(pkts) {
		p, err := r.Next()
		if err != nil {
			if !errors.Is(err, trace.ErrMalformedRecord) {
				t.Fatalf("injected reader error is not malformed-record: %v", err)
			}
			fails++
			if fails > 10 {
				t.Fatal("reader error never cleared")
			}
			continue
		}
		got = append(got, p)
	}
	if fails != 2 {
		t.Errorf("observed %d injected failures, want 2", fails)
	}
	for i, p := range got {
		if p.Sec != uint32(i) {
			t.Fatalf("packet %d has Sec %d: the transient error consumed a packet", i, p.Sec)
		}
	}
	if _, err := r.Next(); err == nil {
		t.Error("reader yielded more packets than the source")
	}
}

// TestReaderFromKeepsAbsoluteIndexes: after a resume, injections keyed
// by trace index must still land on those indexes even though the
// wrapped reader starts mid-stream.
func TestReaderFromKeepsAbsoluteIndexes(t *testing.T) {
	pkts := hostTestPackets(10)
	inj := New(1, []Injection{
		{Index: 2, Kind: FlipByte, Arg: -1}, // before the resume point: must not fire
		{Index: 7, Kind: ReadErr, Times: 1, Arg: -1},
	})
	r := inj.ReaderFrom(trace.NewSliceReader(pkts[4:]), 4)
	n, fails := 4, 0
	for n < len(pkts) {
		p, err := r.Next()
		if err != nil {
			fails++
			if n != 7 {
				t.Fatalf("reader error at index %d, want 7", n)
			}
			continue
		}
		if p.Sec != uint32(n) {
			t.Fatalf("index %d yielded Sec %d", n, p.Sec)
		}
		n++
	}
	if fails != 1 {
		t.Errorf("readerr fired %d times, want once at the absolute index", fails)
	}
	if st := r.(trace.Seeker).PosState(); st == nil {
		t.Error("wrapper hides the underlying reader's seek state")
	}
	if err := r.(trace.Seeker).SeekTo([]int64{0}); err == nil {
		t.Error("direct SeekTo on the wrapper accepted")
	}
}

// TestCheckpointTearFunc: nil without tearckpt entries; otherwise fires
// at the planned write ordinal, bounded by Times.
func TestCheckpointTearFunc(t *testing.T) {
	if fn := New(1, []Injection{{Index: 0, Kind: WorkerPanic}}).CheckpointTearFunc(); fn != nil {
		t.Error("CheckpointTearFunc non-nil without tearckpt entries")
	}
	fn := New(1, []Injection{{Index: 2, Kind: CkptTear}}).CheckpointTearFunc()
	if fn == nil {
		t.Fatal("CheckpointTearFunc nil despite a tearckpt entry")
	}
	var fired []int
	for ordinal := 0; ordinal < 6; ordinal++ {
		if fn(ordinal) {
			fired = append(fired, ordinal)
		}
	}
	if len(fired) != 1 || fired[0] != 2 {
		t.Errorf("tear fired at %v, want exactly [2]", fired)
	}
}
