// Package flow implements the 5-tuple flow classifier substrate: a hash
// table with chained collision resolution, exactly as the paper's Flow
// Classification application maintains it ("the 5-tuple is used to compute
// a hash index into a hash data structure that uses link lists to resolve
// collisions").
//
// The native Table here serves two purposes: it is the reference
// implementation the simulated PB32 application is differentially tested
// against (same hash function, same bucket count, same insertion policy,
// so after any packet sequence the two tables must hold identical flows),
// and it is the baseline used by benchmarks.
//
// The serialized memory layout shared with internal/apps is:
//
//	bucket array:  NumBuckets little-endian words, each the absolute
//	               address of the first flow node in the chain (0 = empty)
//	flow node:     NodeSize bytes:
//	               +0  source address
//	               +4  destination address
//	               +8  ports (srcPort<<16 | dstPort)
//	               +12 protocol
//	               +16 packet count
//	               +20 byte count
//	               +24 next node address (0 = end of chain)
//	               +28 reserved
//
// New nodes are bump-allocated from a heap whose next-free pointer lives
// in a single word the framework initializes (see internal/apps).
package flow

import (
	"repro/internal/packet"
)

// NodeSize is the serialized size of one flow node.
const NodeSize = 32

// DefaultBuckets is the bucket count used by the paper-shaped experiments.
// It must be a power of two.
const DefaultBuckets = 1024

// Hash computes the flow hash shared between the native and simulated
// classifiers: a xor-fold of the 5-tuple mixed by a Knuth multiplicative
// constant. The simulated application implements exactly these operations
// (xor, shifts, one multiply), so both sides must agree bit for bit.
func Hash(ft packet.FiveTuple) uint32 {
	h := ft.Src ^ ft.Dst ^ (uint32(ft.SrcPort)<<16 | uint32(ft.DstPort)) ^ uint32(ft.Protocol)
	h *= 2654435761
	h ^= h >> 16
	return h
}

// BucketIndex maps a hash to a bucket for a table of n buckets (n must be
// a power of two).
func BucketIndex(h uint32, n int) uint32 {
	return h & uint32(n-1)
}

// Stat is the per-flow accounting state.
type Stat struct {
	Packets uint32
	Bytes   uint32
}

// Table is the native flow classifier.
type Table struct {
	buckets []int // index of first node, -1 when empty
	nodes   []nodeRec
}

type nodeRec struct {
	tuple packet.FiveTuple
	stat  Stat
	next  int // -1 at end of chain
}

// NewTable creates a table with n buckets (rounded up to a power of two,
// minimum 1).
func NewTable(n int) *Table {
	size := 1
	for size < n {
		size <<= 1
	}
	b := make([]int, size)
	for i := range b {
		b[i] = -1
	}
	return &Table{buckets: b}
}

// NumBuckets returns the bucket count.
func (t *Table) NumBuckets() int { return len(t.buckets) }

// NumFlows returns the number of distinct flows seen.
func (t *Table) NumFlows() int { return len(t.nodes) }

// Classify accounts one packet of the given wire length to its flow,
// creating the flow if needed. It reports whether the flow was new. New
// nodes are inserted at the head of their chain, matching the simulated
// application.
func (t *Table) Classify(ft packet.FiveTuple, bytes int) (isNew bool) {
	idx := BucketIndex(Hash(ft), len(t.buckets))
	for i := t.buckets[idx]; i >= 0; i = t.nodes[i].next {
		if t.nodes[i].tuple == ft {
			t.nodes[i].stat.Packets++
			t.nodes[i].stat.Bytes += uint32(bytes)
			return false
		}
	}
	t.nodes = append(t.nodes, nodeRec{
		tuple: ft,
		stat:  Stat{Packets: 1, Bytes: uint32(bytes)},
		next:  t.buckets[idx],
	})
	t.buckets[idx] = len(t.nodes) - 1
	return true
}

// Lookup returns the accounting state of a flow.
func (t *Table) Lookup(ft packet.FiveTuple) (Stat, bool) {
	idx := BucketIndex(Hash(ft), len(t.buckets))
	for i := t.buckets[idx]; i >= 0; i = t.nodes[i].next {
		if t.nodes[i].tuple == ft {
			return t.nodes[i].stat, true
		}
	}
	return Stat{}, false
}

// Flows calls f for every flow in the table. Iteration order is bucket
// order, then chain order (most recently inserted first), which matches a
// walk of the serialized table.
func (t *Table) Flows(f func(packet.FiveTuple, Stat)) {
	for _, head := range t.buckets {
		for i := head; i >= 0; i = t.nodes[i].next {
			f(t.nodes[i].tuple, t.nodes[i].stat)
		}
	}
}

// MaxChainLen returns the longest collision chain, a load-factor
// diagnostic used by tests and benchmarks.
func (t *Table) MaxChainLen() int {
	max := 0
	for _, head := range t.buckets {
		n := 0
		for i := head; i >= 0; i = t.nodes[i].next {
			n++
		}
		if n > max {
			max = n
		}
	}
	return max
}
