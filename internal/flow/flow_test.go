package flow

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/packet"
)

func tuple(src, dst uint32, sp, dp uint16, proto uint8) packet.FiveTuple {
	return packet.FiveTuple{Src: src, Dst: dst, SrcPort: sp, DstPort: dp, Protocol: proto}
}

func TestNewTableRounding(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 1000: 1024, 1024: 1024}
	for in, want := range cases {
		if got := NewTable(in).NumBuckets(); got != want {
			t.Errorf("NewTable(%d).NumBuckets() = %d, want %d", in, got, want)
		}
	}
}

func TestClassifyNewAndExisting(t *testing.T) {
	tb := NewTable(DefaultBuckets)
	ft := tuple(1, 2, 3, 4, packet.ProtoTCP)
	if !tb.Classify(ft, 100) {
		t.Error("first packet of a flow not reported new")
	}
	if tb.Classify(ft, 50) {
		t.Error("second packet of a flow reported new")
	}
	st, ok := tb.Lookup(ft)
	if !ok || st.Packets != 2 || st.Bytes != 150 {
		t.Errorf("stat = %+v, %v; want 2 packets, 150 bytes", st, ok)
	}
	if tb.NumFlows() != 1 {
		t.Errorf("NumFlows = %d", tb.NumFlows())
	}
}

func TestLookupMissing(t *testing.T) {
	tb := NewTable(16)
	if _, ok := tb.Lookup(tuple(9, 9, 9, 9, 6)); ok {
		t.Error("lookup of absent flow succeeded")
	}
}

func TestDistinctFlowsDistinctStats(t *testing.T) {
	tb := NewTable(4) // tiny table to force collisions
	flows := []packet.FiveTuple{
		tuple(1, 2, 10, 20, 6),
		tuple(1, 2, 10, 20, 17), // differs only in protocol
		tuple(1, 2, 20, 10, 6),  // swapped ports
		tuple(2, 1, 10, 20, 6),  // swapped addresses
		tuple(1, 3, 10, 20, 6),
	}
	for i, ft := range flows {
		for j := 0; j <= i; j++ {
			tb.Classify(ft, 10)
		}
	}
	if tb.NumFlows() != len(flows) {
		t.Fatalf("NumFlows = %d, want %d", tb.NumFlows(), len(flows))
	}
	for i, ft := range flows {
		st, ok := tb.Lookup(ft)
		if !ok || int(st.Packets) != i+1 {
			t.Errorf("flow %d: %+v, %v; want %d packets", i, st, ok, i+1)
		}
	}
}

func TestFlowsIterationCoversAll(t *testing.T) {
	tb := NewTable(8)
	rng := rand.New(rand.NewSource(3))
	want := make(map[packet.FiveTuple]uint32)
	for i := 0; i < 500; i++ {
		ft := tuple(rng.Uint32()%16, rng.Uint32()%16, uint16(rng.Intn(4)), uint16(rng.Intn(4)), 6)
		tb.Classify(ft, 1)
		want[ft]++
	}
	got := make(map[packet.FiveTuple]uint32)
	tb.Flows(func(ft packet.FiveTuple, st Stat) {
		got[ft] = st.Packets
	})
	if len(got) != len(want) {
		t.Fatalf("iterated %d flows, want %d", len(got), len(want))
	}
	for ft, n := range want {
		if got[ft] != n {
			t.Errorf("flow %v: %d packets, want %d", ft, got[ft], n)
		}
	}
}

func TestHashDeterministicAndSpread(t *testing.T) {
	ft := tuple(0x0A000001, 0x0A000002, 80, 443, 6)
	if Hash(ft) != Hash(ft) {
		t.Error("hash not deterministic")
	}
	// Hash must spread realistic traffic across buckets: generate
	// profile-shaped flows and check bucket utilization.
	prof, _ := gen.ProfileByName("MRA")
	pkts := gen.Generate(prof, 3000)
	used := make(map[uint32]bool)
	for _, p := range pkts {
		ft, err := packet.ExtractFiveTuple(p.Data)
		if err != nil {
			t.Fatal(err)
		}
		used[BucketIndex(Hash(ft), DefaultBuckets)] = true
	}
	if len(used) < DefaultBuckets/4 {
		t.Errorf("hash uses only %d/%d buckets on realistic traffic", len(used), DefaultBuckets)
	}
}

func TestBucketIndexInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		h := rng.Uint32()
		if idx := BucketIndex(h, 256); idx >= 256 {
			t.Fatalf("BucketIndex(%#x, 256) = %d", h, idx)
		}
	}
}

func TestMaxChainLen(t *testing.T) {
	tb := NewTable(1) // everything chains in one bucket
	for i := 0; i < 5; i++ {
		tb.Classify(tuple(uint32(i), 0, 0, 0, 6), 1)
	}
	if got := tb.MaxChainLen(); got != 5 {
		t.Errorf("MaxChainLen = %d, want 5", got)
	}
	empty := NewTable(16)
	if empty.MaxChainLen() != 0 {
		t.Error("empty table has a chain")
	}
}

func TestClassifierOnGeneratedTraffic(t *testing.T) {
	// End-to-end shape check: on an MRA-like trace the classifier must
	// see mostly existing flows (the paper's dominant case) with a
	// meaningful minority of new flows.
	prof, _ := gen.ProfileByName("MRA")
	pkts := gen.Generate(prof, 5000)
	tb := NewTable(DefaultBuckets)
	newFlows := 0
	for _, p := range pkts {
		ft, err := packet.ExtractFiveTuple(p.Data)
		if err != nil {
			t.Fatal(err)
		}
		if tb.Classify(ft, p.WireLen) {
			newFlows++
		}
	}
	frac := float64(newFlows) / float64(len(pkts))
	if frac < 0.02 || frac > 0.6 {
		t.Errorf("new-flow fraction = %.2f; expected a hit-dominated mix", frac)
	}
	if tb.NumFlows() != newFlows {
		t.Errorf("NumFlows = %d but %d new classifications", tb.NumFlows(), newFlows)
	}
	// Total packet count must be conserved.
	var total uint32
	tb.Flows(func(_ packet.FiveTuple, st Stat) { total += st.Packets })
	if int(total) != len(pkts) {
		t.Errorf("accounted %d packets, want %d", total, len(pkts))
	}
}
