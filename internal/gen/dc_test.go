package gen

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"

	"repro/internal/packet"
	"repro/internal/trace"
)

// TestLegacyProfilesByteIdentical pins the exact output of the paper's
// four profiles. The data-centre extensions gate every one of their
// random draws behind a feature flag precisely so these streams cannot
// shift; if this test fails, reproducibility of every prior experiment
// is broken — fix the draw gating, do not re-pin the hashes.
func TestLegacyProfilesByteIdentical(t *testing.T) {
	want := map[string]string{
		"MRA": "7664320a6f8d271786a0e28d",
		"COS": "2a5bfb62d6f3d2a6d0f822c1",
		"ODU": "c19409a746ceb5d0bfe840b4",
		"LAN": "c3e30b12df57b73a66c9d77e",
	}
	for name, fp := range want {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		h := sha256.New()
		for _, pkt := range Generate(p, 500) {
			fmt.Fprintf(h, "%d.%06d %d ", pkt.Sec, pkt.Usec, pkt.WireLen)
			h.Write(pkt.Data)
		}
		if got := fmt.Sprintf("%x", h.Sum(nil)[:12]); got != fp {
			t.Errorf("%s fingerprint = %s, want %s (legacy stream changed!)", name, got, fp)
		}
	}
}

func TestDCProfilesRegistered(t *testing.T) {
	if n := len(Profiles()); n != 4 {
		t.Errorf("Profiles() = %d entries, want the paper's 4", n)
	}
	if n := len(DCProfiles()); n != 2 {
		t.Errorf("DCProfiles() = %d entries, want 2", n)
	}
	if n := len(AllProfiles()); n != 6 {
		t.Errorf("AllProfiles() = %d entries, want 6", n)
	}
	for _, name := range []string{"DCWEB", "DCMINE"} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.FlowPackets <= 0 || p.IncastFanIn <= 1 || p.HotRacks <= 0 {
			t.Errorf("%s: data-centre fields not set: %+v", name, p)
		}
	}
}

func TestDCGenerationDeterministicAndValid(t *testing.T) {
	for _, prof := range DCProfiles() {
		a := Generate(prof, 300)
		b := Generate(prof, 300)
		for i := range a {
			if a[i].Sec != b[i].Sec || a[i].Usec != b[i].Usec || !bytes.Equal(a[i].Data, b[i].Data) {
				t.Fatalf("%s: packet %d differs between runs", prof.Name, i)
			}
			if err := trace.ValidateIPv4(a[i]); err != nil {
				t.Fatalf("%s: packet %d invalid: %v", prof.Name, i, err)
			}
		}
	}
}

// TestHeavyTailFlowSizes checks the bounded-Pareto lifetimes do what
// they exist for: a small fraction of flows carries a large fraction of
// packets, and the largest flow dwarfs the typical one.
func TestHeavyTailFlowSizes(t *testing.T) {
	prof, err := ProfileByName("DCMINE")
	if err != nil {
		t.Fatal(err)
	}
	counts := map[packet.FiveTuple]int{}
	g := NewGenerator(prof)
	const n = 60000
	for i := 0; i < n; i++ {
		p := g.Next()
		h, err := packet.ParseIPv4(p.Data)
		if err != nil {
			t.Fatal(err)
		}
		ft := packet.FiveTuple{Src: h.Src, Dst: h.Dst, Protocol: h.Protocol}
		counts[ft]++
	}
	var sizes []int
	max := 0
	for _, c := range counts {
		sizes = append(sizes, c)
		if c > max {
			max = c
		}
	}
	mean := float64(n) / float64(len(sizes))
	if float64(max) < 10*mean {
		t.Errorf("largest flow %d packets vs mean %.1f: tail not heavy", max, mean)
	}
	// The tail (flows above 3x the mean size) should carry a fifth of all
	// packets — under the geometric lifetimes of random replacement that
	// share is negligible.
	top := 0
	threshold := int(3 * mean)
	for _, c := range sizes {
		if c > threshold {
			top += c
		}
	}
	if float64(top) < 0.2*float64(n) {
		t.Errorf("flows above 3x mean carry only %d/%d packets: tail not heavy", top, n)
	}
}

// TestIncastConvergence checks incast epochs produce destinations that
// many distinct flows converge on.
func TestIncastConvergence(t *testing.T) {
	prof, err := ProfileByName("DCWEB")
	if err != nil {
		t.Fatal(err)
	}
	prof.HotRackProb = 0 // isolate incast
	flowsPerDst := map[uint32]map[packet.FiveTuple]bool{}
	g := NewGenerator(prof)
	for i := 0; i < 40000; i++ {
		p := g.Next()
		h, err := packet.ParseIPv4(p.Data)
		if err != nil {
			t.Fatal(err)
		}
		ft := packet.FiveTuple{Src: h.Src, Dst: h.Dst, Protocol: h.Protocol}
		if flowsPerDst[h.Dst] == nil {
			flowsPerDst[h.Dst] = map[packet.FiveTuple]bool{}
		}
		flowsPerDst[h.Dst][ft] = true
	}
	max := 0
	for _, flows := range flowsPerDst {
		if len(flows) > max {
			max = len(flows)
		}
	}
	if max < prof.IncastFanIn/2 {
		t.Errorf("max flows converging on one dst = %d, want >= %d (fan-in %d)",
			max, prof.IncastFanIn/2, prof.IncastFanIn)
	}
}

// TestHotRackSkew forces every flow into hot racks and checks the
// destination /24 population collapses to the configured rack count.
func TestHotRackSkew(t *testing.T) {
	prof, err := ProfileByName("DCWEB")
	if err != nil {
		t.Fatal(err)
	}
	prof.HotRackProb = 1.0
	prof.HotRacks = 3
	prof.IncastProb = 0 // isolate rack skew
	racks := map[uint32]bool{}
	g := NewGenerator(prof)
	for i := 0; i < 5000; i++ {
		p := g.Next()
		h, err := packet.ParseIPv4(p.Data)
		if err != nil {
			t.Fatal(err)
		}
		racks[h.Dst>>8] = true
	}
	if len(racks) > prof.HotRacks {
		t.Errorf("destinations span %d /24s, want at most %d hot racks", len(racks), prof.HotRacks)
	}
	if len(racks) < 2 {
		t.Errorf("destinations span %d /24s, want the racks actually used", len(racks))
	}
}
