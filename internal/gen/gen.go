// Package gen generates synthetic packet traces that stand in for the
// NLANR PMA traces (MRA, COS, ODU) and the local LAN trace used in the
// paper's evaluation.
//
// The original traces are no longer distributed, so each trace is replaced
// by a deterministic generator profile that reproduces the *statistical
// properties the workload metrics depend on*:
//
//   - the number of concurrent flows and the arrival rate of new flows,
//     which set the hit/miss mix a flow classifier sees;
//   - the spread of destination addresses over the routing prefix space,
//     which drives the variation in route-lookup path length (the dominant
//     source of per-packet instruction-count variation for IPv4-radix);
//   - the protocol and packet-size mixes, which set the header shapes the
//     applications parse;
//   - the paper's trace preprocessing: NLANR traces number addresses
//     sequentially from 10.0.0.1 ("to provide privacy"), and the paper
//     scrambles them afterwards to restore uniform coverage of the
//     routing table. Both transformations are implemented.
//
// Generation is fully deterministic for a given profile, so every
// experiment in this repository is reproducible bit for bit.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/packet"
	"repro/internal/trace"
)

// SizePoint is one mode of a packet-size distribution.
type SizePoint struct {
	Bytes  int     // IP total length
	Weight float64 // relative probability mass
}

// Profile parameterizes a synthetic trace.
type Profile struct {
	Name string
	// Link describes the capture link for Table I (for example
	// "OC-12c (PoS)").
	Link string
	// Packets is the nominal trace length from Table I of the paper;
	// generators can produce any number of packets, this records the
	// original trace size for reporting.
	Packets int
	// Flows is the steady-state number of concurrent flows.
	Flows int
	// NewFlowProb is the per-packet probability of starting a previously
	// unseen flow (the flow-table miss rate seen by classification).
	NewFlowProb float64
	// TCP, UDP and ICMP weights of the protocol mix; they need not sum to
	// one, only their ratio matters.
	TCP, UDP, ICMP float64
	// Sizes is the packet-size distribution.
	Sizes []SizePoint
	// AddrBits bounds the diversity of generated addresses: hosts are
	// drawn from 2^AddrBits distinct values spread over the unicast
	// space. Backbone traces use larger values than the LAN trace.
	AddrBits int
	// OptionProb is the probability a packet carries IP options (IHL 6
	// or 7). Note the TSH trace format cannot represent options; keep
	// this zero for traces destined for .tsh files.
	OptionProb float64
	// FragProb is the probability a packet is a fragment (more-fragments
	// set or a nonzero fragment offset).
	FragProb float64
	// TTLExpireProb is the probability a packet arrives with TTL 1, the
	// case a forwarding application must hand to the slow path.
	TTLExpireProb float64

	// The fields below model data-centre traffic (heavy-tailed flow
	// sizes, incast, rack-level skew) after "Traffic Generation for
	// Benchmarking Data Centre Networks". They are all off (zero) in the
	// paper's four profiles; leaving them zero keeps generation
	// bit-identical to earlier versions of this package.

	// FlowPackets, when > 0, gives every flow a finite lifetime drawn
	// from a bounded Pareto distribution with this mean: most flows are
	// mice, a heavy tail of elephants carries most bytes. A flow is
	// retired (and replaced) once it has sent its budget.
	FlowPackets int
	// FlowAlpha is the Pareto tail index for flow lifetimes; values near
	// 1 make elephants extreme. Only read when FlowPackets > 0; <= 1
	// defaults to 1.5.
	FlowAlpha float64
	// IncastProb, when > 0, is the per-new-flow probability of opening an
	// incast epoch: the next IncastFanIn new flows all converge on the
	// epoch's victim destination (the many-to-one pattern of partition/
	// aggregate workloads).
	IncastProb float64
	// IncastFanIn is the number of converging flows per incast epoch.
	IncastFanIn int
	// HotRackProb, when > 0, is the probability a new flow's destination
	// is drawn from one of HotRacks hot /24 "racks" instead of the whole
	// address population, modelling rack-level destination skew.
	HotRackProb float64
	// HotRacks is the number of hot /24 prefixes.
	HotRacks int

	// Seed makes the trace deterministic.
	Seed int64
}

// The four trace profiles from Table I of the paper.
var profiles = []Profile{
	{
		Name: "MRA", Link: "OC-12c (PoS)", Packets: 4643333,
		Flows: 2500, NewFlowProb: 0.06,
		TCP: 0.88, UDP: 0.10, ICMP: 0.02,
		Sizes:    []SizePoint{{40, 0.45}, {576, 0.25}, {1500, 0.20}, {80, 0.10}},
		AddrBits: 24, OptionProb: 0.004, FragProb: 0.008, TTLExpireProb: 0.002,
		Seed: 0x4D5241, // "MRA"
	},
	{
		Name: "COS", Link: "OC-3c (ATM)", Packets: 2183310,
		Flows: 1500, NewFlowProb: 0.07,
		TCP: 0.85, UDP: 0.12, ICMP: 0.03,
		Sizes:    []SizePoint{{40, 0.50}, {576, 0.22}, {1500, 0.18}, {120, 0.10}},
		AddrBits: 22, OptionProb: 0.003, FragProb: 0.010, TTLExpireProb: 0.002,
		Seed: 0x434F53, // "COS"
	},
	{
		Name: "ODU", Link: "OC-3c (ATM)", Packets: 784278,
		Flows: 800, NewFlowProb: 0.08,
		TCP: 0.82, UDP: 0.14, ICMP: 0.04,
		Sizes:    []SizePoint{{40, 0.48}, {576, 0.26}, {1500, 0.16}, {200, 0.10}},
		AddrBits: 20, OptionProb: 0.005, FragProb: 0.012, TTLExpireProb: 0.003,
		Seed: 0x4F4455, // "ODU"
	},
	{
		Name: "LAN", Link: "100Mbps (Ethernet)", Packets: 100000,
		Flows: 120, NewFlowProb: 0.03,
		TCP: 0.70, UDP: 0.25, ICMP: 0.05,
		Sizes:    []SizePoint{{40, 0.30}, {576, 0.20}, {1500, 0.35}, {100, 0.15}},
		AddrBits: 12, FragProb: 0.004, TTLExpireProb: 0.001,
		Seed: 0x4C414E, // "LAN"
	},
}

// Data-centre profiles enabled by the heavy-tail/incast/hot-rack fields:
// a web-serving mix (many mice, shallow tail, strong incast) and a
// data-mining mix (extreme elephants, rack-concentrated), the two
// canonical workloads of the data-centre traffic literature.
var dcProfiles = []Profile{
	{
		Name: "DCWEB", Link: "10GbE (data centre, web)", Packets: 1000000,
		Flows: 4000, NewFlowProb: 0.10,
		TCP: 0.96, UDP: 0.04,
		Sizes:    []SizePoint{{40, 0.55}, {215, 0.20}, {1500, 0.25}},
		AddrBits: 16, TTLExpireProb: 0.0005,
		FlowPackets: 12, FlowAlpha: 1.4,
		IncastProb: 0.02, IncastFanIn: 32,
		HotRackProb: 0.25, HotRacks: 8,
		Seed: 0x444357, // "DCW"
	},
	{
		Name: "DCMINE", Link: "10GbE (data centre, mining)", Packets: 1000000,
		Flows: 1200, NewFlowProb: 0.04,
		TCP: 0.98, UDP: 0.02,
		Sizes:    []SizePoint{{40, 0.35}, {576, 0.10}, {1500, 0.55}},
		AddrBits: 16, TTLExpireProb: 0.0005,
		FlowPackets: 80, FlowAlpha: 1.1,
		IncastProb: 0.05, IncastFanIn: 64,
		HotRackProb: 0.4, HotRacks: 4,
		Seed: 0x44434D, // "DCM"
	},
}

// Profiles returns the built-in trace profiles in paper order
// (MRA, COS, ODU, LAN).
func Profiles() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	return out
}

// DCProfiles returns the built-in data-centre profiles (DCWEB, DCMINE),
// which exercise the heavy-tail, incast and hot-rack extensions.
func DCProfiles() []Profile {
	out := make([]Profile, len(dcProfiles))
	copy(out, dcProfiles)
	return out
}

// AllProfiles returns every built-in profile: the paper's four traces
// followed by the data-centre profiles.
func AllProfiles() []Profile {
	return append(Profiles(), DCProfiles()...)
}

// ProfileByName looks up a built-in profile, case sensitively.
func ProfileByName(name string) (Profile, error) {
	for _, p := range AllProfiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("gen: unknown trace profile %q", name)
}

// flowState is one active synthetic flow.
type flowState struct {
	tuple packet.FiveTuple
	size  int // preferred packet size for the flow
	// remaining is the flow's packet budget under heavy-tailed lifetimes
	// (Profile.FlowPackets > 0); 0 means no budget is tracked.
	remaining int
}

// Generator produces an endless synthetic packet stream for a profile.
//
// Determinism contract: for a profile with the data-centre fields zero,
// the stream is bit-identical to what earlier versions of this package
// produced — every new random draw below is gated behind a feature being
// enabled, so the legacy draw sequence is untouched (pinned by the
// fingerprint test).
type Generator struct {
	prof  Profile
	rng   *rand.Rand
	flows []flowState
	sec   uint32
	usec  uint32
	// cumulative size weights for sampling
	sizeCum []float64
	sizeTot float64
	// incast epoch state: the next incastLeft new flows target incastDst.
	incastLeft int
	incastDst  uint32
}

// NewGenerator creates a generator in its deterministic start state.
func NewGenerator(p Profile) *Generator {
	if p.Flows <= 0 {
		p.Flows = 1
	}
	if p.AddrBits <= 0 || p.AddrBits > 32 {
		p.AddrBits = 24
	}
	if len(p.Sizes) == 0 {
		p.Sizes = []SizePoint{{40, 1}}
	}
	g := &Generator{
		prof: p,
		rng:  rand.New(rand.NewSource(p.Seed)),
		sec:  1_000_000_000,
	}
	for _, s := range p.Sizes {
		g.sizeTot += s.Weight
		g.sizeCum = append(g.sizeCum, g.sizeTot)
	}
	g.flows = make([]flowState, 0, p.Flows)
	for i := 0; i < p.Flows; i++ {
		g.flows = append(g.flows, g.newFlow())
	}
	return g
}

// hostAddr draws a host address from the profile's address population,
// spread over the unicast space (avoiding 0.x and 127.x style edge
// prefixes so generated packets look like transit traffic).
func (g *Generator) hostAddr() uint32 {
	bits := uint(g.prof.AddrBits)
	v := uint32(g.rng.Int63()) & (1<<bits - 1)
	// Spread the population over the address space with an affine map
	// into [16.0.0.0, 224.0.0.0) and a bijective mix within the low bits.
	v = v*2654435761 + 0x9E3779B9 // Knuth multiplicative mix (odd, bijective)
	v &= 1<<bits - 1
	base := uint32(16) << 24
	span := uint32(208) << 24 // up to 224.0.0.0
	// Place the population deterministically: index*stride keeps distinct
	// values distinct when stride is odd relative to the span.
	a := base + uint32(uint64(v)*uint64(span)/uint64(uint32(1)<<bits))
	if a>>24 == 127 {
		a += 1 << 24 // skip loopback; routers drop 127/8 sources
	}
	return a
}

func (g *Generator) pickProtocol() uint8 {
	t := g.prof.TCP + g.prof.UDP + g.prof.ICMP
	r := g.rng.Float64() * t
	switch {
	case r < g.prof.TCP:
		return packet.ProtoTCP
	case r < g.prof.TCP+g.prof.UDP:
		return packet.ProtoUDP
	}
	return packet.ProtoICMP
}

func (g *Generator) pickSize() int {
	r := g.rng.Float64() * g.sizeTot
	for i, c := range g.sizeCum {
		if r < c {
			return g.prof.Sizes[i].Bytes
		}
	}
	return g.prof.Sizes[len(g.prof.Sizes)-1].Bytes
}

func (g *Generator) newFlow() flowState {
	proto := g.pickProtocol()
	ft := packet.FiveTuple{
		Src:      g.hostAddr(),
		Dst:      g.hostAddr(),
		Protocol: proto,
	}
	// Data-centre destination skew, applied over the already-drawn Dst so
	// the legacy draw sequence is preserved when the features are off.
	if g.prof.HotRackProb > 0 && g.prof.HotRacks > 0 && g.rng.Float64() < g.prof.HotRackProb {
		ft.Dst = g.hotRackAddr()
	}
	if g.prof.IncastProb > 0 && g.prof.IncastFanIn > 1 {
		if g.incastLeft > 0 {
			ft.Dst = g.incastDst
			g.incastLeft--
		} else if g.rng.Float64() < g.prof.IncastProb {
			// This flow's destination becomes the epoch victim for the
			// next fan-in worth of new flows.
			g.incastDst = ft.Dst
			g.incastLeft = g.prof.IncastFanIn - 1
		}
	}
	if proto == packet.ProtoTCP || proto == packet.ProtoUDP {
		ft.SrcPort = uint16(1024 + g.rng.Intn(64512))
		ft.DstPort = wellKnownPorts[g.rng.Intn(len(wellKnownPorts))]
	}
	fs := flowState{tuple: ft, size: g.pickSize()}
	if g.prof.FlowPackets > 0 {
		fs.remaining = g.paretoFlowLen()
	}
	return fs
}

// hotRackAddr draws a host inside one of the profile's hot /24 racks.
// Rack prefixes are a deterministic function of the rack index, spread
// over the same unicast range as hostAddr.
func (g *Generator) hotRackAddr() uint32 {
	rack := uint32(g.rng.Intn(g.prof.HotRacks))
	v := rack*2654435761 + 0x9E3779B9
	span := uint32(208) << 24
	base := uint32(16)<<24 + uint32(uint64(v)%uint64(span))
	base &^= 0xFF // align to the rack's /24
	if base>>24 == 127 {
		base += 1 << 24
	}
	return base | uint32(g.rng.Intn(256))
}

// paretoFlowLen samples a flow lifetime in packets from a bounded Pareto
// distribution with mean Profile.FlowPackets and tail index FlowAlpha:
// x = xmin / u^(1/alpha) with xmin = mean*(alpha-1)/alpha, capped so a
// single elephant cannot monopolize the whole trace.
func (g *Generator) paretoFlowLen() int {
	alpha := g.prof.FlowAlpha
	if alpha <= 1 {
		alpha = 1.5
	}
	mean := float64(g.prof.FlowPackets)
	xmin := mean * (alpha - 1) / alpha
	if xmin < 1 {
		xmin = 1
	}
	u := g.rng.Float64()
	if u < 1e-9 {
		u = 1e-9
	}
	x := xmin / math.Pow(u, 1/alpha)
	if x > 1<<20 {
		x = 1 << 20
	}
	if x < 1 {
		x = 1
	}
	return int(x)
}

var wellKnownPorts = []uint16{80, 443, 25, 53, 110, 143, 22, 21, 123, 8080}

// Next generates the next packet.
func (g *Generator) Next() *trace.Packet {
	var fl flowState
	reused := -1
	if g.rng.Float64() < g.prof.NewFlowProb {
		fl = g.newFlow()
		// Replace a random existing flow so the active set stays bounded,
		// mimicking flow expiry.
		g.flows[g.rng.Intn(len(g.flows))] = fl
	} else {
		// Zipf-like skew: cube the uniform variate so low-index flows
		// (the heavy hitters) receive most packets and the bulk of the
		// trace revisits a modest working set, as real backbone traffic
		// does.
		u := g.rng.Float64()
		idx := int(u * u * u * float64(len(g.flows)))
		if idx >= len(g.flows) {
			idx = len(g.flows) - 1
		}
		fl = g.flows[idx]
		reused = idx
	}
	// Heavy-tailed lifetimes: spend one packet of the flow's budget and
	// retire it once exhausted, so flow sizes follow the Pareto draw
	// rather than the geometric implied by random replacement.
	if g.prof.FlowPackets > 0 && reused >= 0 {
		g.flows[reused].remaining--
		if g.flows[reused].remaining <= 0 {
			g.flows[reused] = g.newFlow()
		}
	}

	size := fl.size
	// Interleave small control packets (pure acks) into TCP flows.
	if fl.tuple.Protocol == packet.ProtoTCP && g.rng.Float64() < 0.3 {
		size = 40
	}
	if size < minPacketLen(fl.tuple.Protocol) {
		size = minPacketLen(fl.tuple.Protocol)
	}

	data := g.buildPacket(fl.tuple, size)

	// Advance the clock by an exponential-ish inter-arrival time.
	g.usec += uint32(1 + g.rng.Intn(200))
	if g.usec >= 1_000_000 {
		g.usec -= 1_000_000
		g.sec++
	}
	return &trace.Packet{Sec: g.sec, Usec: g.usec, Data: data, WireLen: len(data)}
}

func minPacketLen(proto uint8) int {
	switch proto {
	case packet.ProtoTCP:
		return packet.IPv4HeaderLen + packet.TCPHeaderLen
	case packet.ProtoUDP:
		return packet.IPv4HeaderLen + packet.UDPHeaderLen
	}
	return packet.IPv4HeaderLen + 8 // ICMP echo header
}

// buildPacket serializes one packet for the flow with valid checksums and
// plausible header fields, injecting the profile's rare cases (options,
// fragments, expiring TTL) that exercise the applications' slow paths.
func (g *Generator) buildPacket(ft packet.FiveTuple, size int) []byte {
	h := packet.IPv4Header{
		Version: 4, IHL: 5,
		TOS:      0,
		TotalLen: uint16(size),
		ID:       uint16(g.rng.Intn(65536)),
		TTL:      uint8(32 + g.rng.Intn(224)),
		Protocol: ft.Protocol,
		Src:      ft.Src,
		Dst:      ft.Dst,
	}
	if g.rng.Float64() < g.prof.TTLExpireProb {
		h.TTL = 1
	}
	if g.rng.Float64() < g.prof.FragProb {
		if g.rng.Intn(2) == 0 {
			h.Flags |= 1 // more fragments
		} else {
			h.FragOff = uint16(1 + g.rng.Intn(512))
		}
	}
	if g.rng.Float64() < g.prof.OptionProb {
		// One or two words of NOP options terminated by end-of-list.
		words := 1 + g.rng.Intn(2)
		h.IHL = uint8(5 + words)
		h.Options = make([]byte, words*4)
		for i := range h.Options {
			h.Options[i] = 1 // NOP
		}
		h.Options[len(h.Options)-1] = 0 // EOL
		size += words * 4
		h.TotalLen = uint16(size)
	}
	b := make([]byte, size)
	// Fill the payload with deterministic pseudo-random bytes so payload
	// processing applications have real content to chew on; the header
	// fields are overwritten below.
	for i := range b {
		b[i] = byte(g.rng.Intn(256))
	}
	h.MarshalInto(b)
	l4 := b[h.HeaderLen():]
	switch ft.Protocol {
	case packet.ProtoTCP:
		th := packet.TCPHeader{
			SrcPort: ft.SrcPort, DstPort: ft.DstPort,
			Seq: g.rng.Uint32(), Ack: g.rng.Uint32(),
			DataOff: 5, Flags: 0x10, Window: 65535,
		}
		th.MarshalInto(l4)
	case packet.ProtoUDP:
		uh := packet.UDPHeader{
			SrcPort: ft.SrcPort, DstPort: ft.DstPort,
			Length: uint16(size - packet.IPv4HeaderLen),
		}
		uh.MarshalInto(l4)
	case packet.ProtoICMP:
		l4[0] = 8 // echo request
		l4[1] = 0 // code
	}
	return b
}

// Generate produces n packets from the profile.
func Generate(p Profile, n int) []*trace.Packet {
	g := NewGenerator(p)
	out := make([]*trace.Packet, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// RenumberNLANR applies the NLANR privacy renumbering the paper describes:
// every distinct address is replaced by sequential addresses starting at
// 10.0.0.1 in order of first occurrence. The result is the biased address
// distribution the paper observed ("lookups ... lead almost always to the
// same prefix"), which ScrambleAddrs then corrects. Checksums are
// recomputed. The packets are modified in place.
func RenumberNLANR(pkts []*trace.Packet) {
	next := uint32(0x0A000001) // 10.0.0.1
	seen := make(map[uint32]uint32)
	mapAddr := func(a uint32) uint32 {
		if m, ok := seen[a]; ok {
			return m
		}
		m := next
		next++
		seen[a] = m
		return m
	}
	for _, p := range pkts {
		rewriteAddrs(p, mapAddr)
	}
}

// ScrambleAddrs applies the paper's preprocessing fix: a deterministic
// bijective scramble of every IP address so that destination coverage of
// the routing table becomes approximately uniform. Checksums are
// recomputed. The packets are modified in place.
func ScrambleAddrs(pkts []*trace.Packet) {
	for _, p := range pkts {
		rewriteAddrs(p, ScrambleAddr)
	}
}

// ScrambleAddr is the deterministic scramble used by ScrambleAddrs: a
// bijective xorshift-multiply mix constrained to the unicast range
// [16.0.0.0, 224.0.0.0) by cycle walking, so scrambled traffic still
// looks like routable transit traffic (forwarding applications would
// otherwise discard out-of-range sources as martians). Restricted to
// unicast inputs the map is a permutation of the unicast space.
func ScrambleAddr(a uint32) uint32 {
	for {
		a ^= a >> 16
		a *= 0x7FEB352D
		a ^= a >> 15
		a *= 0x846CA68B
		a ^= a >> 16
		if top := uint8(a >> 24); top >= 16 && top < 224 && top != 127 {
			return a
		}
	}
}

// rewriteAddrs maps the src and dst of a packet through f, fixing the
// header checksum. Packets that do not parse are left untouched.
func rewriteAddrs(p *trace.Packet, f func(uint32) uint32) {
	h, err := packet.ParseIPv4(p.Data)
	if err != nil {
		return
	}
	h.Src = f(h.Src)
	h.Dst = f(h.Dst)
	h.MarshalInto(p.Data)
}
