package gen

import (
	"bytes"
	"testing"

	"repro/internal/packet"
	"repro/internal/trace"
)

func TestProfilesMatchTableI(t *testing.T) {
	ps := Profiles()
	if len(ps) != 4 {
		t.Fatalf("got %d profiles, want 4", len(ps))
	}
	want := []struct {
		name    string
		link    string
		packets int
	}{
		{"MRA", "OC-12c (PoS)", 4643333},
		{"COS", "OC-3c (ATM)", 2183310},
		{"ODU", "OC-3c (ATM)", 784278},
		{"LAN", "100Mbps (Ethernet)", 100000},
	}
	for i, w := range want {
		if ps[i].Name != w.name || ps[i].Link != w.link || ps[i].Packets != w.packets {
			t.Errorf("profile %d = %s/%s/%d, want %s/%s/%d",
				i, ps[i].Name, ps[i].Link, ps[i].Packets, w.name, w.link, w.packets)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("MRA")
	if err != nil || p.Name != "MRA" {
		t.Errorf("ProfileByName(MRA) = %v, %v", p.Name, err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestGenerateValidPackets(t *testing.T) {
	for _, prof := range Profiles() {
		t.Run(prof.Name, func(t *testing.T) {
			pkts := Generate(prof, 500)
			if len(pkts) != 500 {
				t.Fatalf("generated %d packets", len(pkts))
			}
			for i, p := range pkts {
				h, err := packet.ParseIPv4(p.Data)
				if err != nil {
					t.Fatalf("packet %d invalid: %v", i, err)
				}
				if !packet.VerifyChecksum(p.Data[:h.HeaderLen()]) {
					t.Fatalf("packet %d has bad checksum", i)
				}
				if int(h.TotalLen) != len(p.Data) {
					t.Errorf("packet %d total length %d != data length %d", i, h.TotalLen, len(p.Data))
				}
				if p.WireLen != len(p.Data) {
					t.Errorf("packet %d wire %d != len %d", i, p.WireLen, len(p.Data))
				}
				switch h.Protocol {
				case packet.ProtoTCP, packet.ProtoUDP, packet.ProtoICMP:
				default:
					t.Errorf("packet %d has unexpected protocol %d", i, h.Protocol)
				}
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	prof, _ := ProfileByName("COS")
	a := Generate(prof, 200)
	b := Generate(prof, 200)
	for i := range a {
		if a[i].Sec != b[i].Sec || a[i].Usec != b[i].Usec {
			t.Fatalf("packet %d timestamps differ", i)
		}
		if string(a[i].Data) != string(b[i].Data) {
			t.Fatalf("packet %d bytes differ between runs", i)
		}
	}
}

func TestGenerateFlowMix(t *testing.T) {
	// The flow classifier's behaviour depends on seeing repeated flows:
	// with NewFlowProb ~0.1, far fewer distinct 5-tuples than packets.
	prof, _ := ProfileByName("MRA")
	pkts := Generate(prof, 2000)
	flows := make(map[packet.FiveTuple]int)
	for _, p := range pkts {
		ft, err := packet.ExtractFiveTuple(p.Data)
		if err != nil {
			t.Fatal(err)
		}
		flows[ft]++
	}
	if len(flows) >= len(pkts) {
		t.Errorf("every packet is its own flow (%d flows / %d packets)", len(flows), len(pkts))
	}
	if len(flows) < 50 {
		t.Errorf("too few distinct flows: %d", len(flows))
	}
	// Some flow must repeat (heavy hitters).
	max := 0
	for _, n := range flows {
		if n > max {
			max = n
		}
	}
	if max < 5 {
		t.Errorf("no flow repeated at least 5 times (max %d)", max)
	}
}

func TestGenerateProtocolMixRoughlyMatches(t *testing.T) {
	prof, _ := ProfileByName("MRA")
	pkts := Generate(prof, 5000)
	var tcp, udp, icmp int
	for _, p := range pkts {
		h, _ := packet.ParseIPv4(p.Data)
		switch h.Protocol {
		case packet.ProtoTCP:
			tcp++
		case packet.ProtoUDP:
			udp++
		case packet.ProtoICMP:
			icmp++
		}
	}
	if frac := float64(tcp) / 5000; frac < 0.75 || frac > 0.97 {
		t.Errorf("TCP fraction = %.2f, want ~0.88", frac)
	}
	if udp == 0 || icmp == 0 {
		t.Errorf("protocol mix degenerate: tcp=%d udp=%d icmp=%d", tcp, udp, icmp)
	}
}

func TestGenerateAddressDiversityByProfile(t *testing.T) {
	// Backbone traces must show much more address diversity than the LAN.
	count := func(name string) int {
		prof, _ := ProfileByName(name)
		pkts := Generate(prof, 3000)
		addrs := make(map[uint32]struct{})
		for _, p := range pkts {
			h, _ := packet.ParseIPv4(p.Data)
			addrs[h.Src] = struct{}{}
			addrs[h.Dst] = struct{}{}
		}
		return len(addrs)
	}
	mra, lan := count("MRA"), count("LAN")
	if mra <= lan {
		t.Errorf("MRA address diversity (%d) not above LAN (%d)", mra, lan)
	}
}

func TestRenumberNLANR(t *testing.T) {
	prof, _ := ProfileByName("ODU")
	pkts := Generate(prof, 300)
	RenumberNLANR(pkts)
	// First packet's src must be 10.0.0.1 (first address encountered).
	h, err := packet.ParseIPv4(pkts[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if h.Src != 0x0A000001 {
		t.Errorf("first renumbered address = %v, want 10.0.0.1", packet.V4Addr(h.Src))
	}
	// All addresses must fall in a dense low range and checksums must
	// still verify.
	maxAddr := uint32(0)
	for i, p := range pkts {
		h, err := packet.ParseIPv4(p.Data)
		if err != nil {
			t.Fatal(err)
		}
		if !packet.VerifyChecksum(p.Data[:h.HeaderLen()]) {
			t.Fatalf("packet %d checksum broken by renumbering", i)
		}
		for _, a := range []uint32{h.Src, h.Dst} {
			if a < 0x0A000001 {
				t.Fatalf("address %v below 10.0.0.1", packet.V4Addr(a))
			}
			if a > maxAddr {
				maxAddr = a
			}
		}
	}
	// 300 packets can introduce at most 600 distinct addresses.
	if maxAddr >= 0x0A000001+600 {
		t.Errorf("renumbered addresses not dense: max %v", packet.V4Addr(maxAddr))
	}
	// Renumbering must be consistent: same original address, same result.
	// Regenerate and renumber again; identical output expected.
	again := Generate(prof, 300)
	RenumberNLANR(again)
	for i := range pkts {
		if string(pkts[i].Data) != string(again[i].Data) {
			t.Fatalf("renumbering not deterministic at packet %d", i)
		}
	}
}

func TestScrambleAddrBijective(t *testing.T) {
	// On unicast inputs (the only ones the pipeline produces) distinct
	// inputs must map to distinct unicast outputs.
	seen := make(map[uint32]uint32, 1<<16)
	for i := uint32(0); i < 1<<16; i++ {
		in := 16<<24 | i // dense block inside the unicast range
		v := ScrambleAddr(in)
		if top := uint8(v >> 24); top < 16 || top >= 224 {
			t.Fatalf("ScrambleAddr(%#x) = %#x escapes the unicast range", in, v)
		}
		if prev, dup := seen[v]; dup {
			t.Fatalf("collision: ScrambleAddr(%#x) == ScrambleAddr(%#x) == %#x", in, prev, v)
		}
		seen[v] = in
	}
}

func TestScrambleAddrsSpreadsRenumberedAddresses(t *testing.T) {
	prof, _ := ProfileByName("COS")
	pkts := Generate(prof, 500)
	RenumberNLANR(pkts)
	ScrambleAddrs(pkts)
	// After scrambling, the top bytes of destinations must be diverse
	// (that is the point of the paper's preprocessing).
	tops := make(map[uint8]struct{})
	for _, p := range pkts {
		h, err := packet.ParseIPv4(p.Data)
		if err != nil {
			t.Fatal(err)
		}
		if !packet.VerifyChecksum(p.Data[:h.HeaderLen()]) {
			t.Fatal("checksum broken by scrambling")
		}
		tops[uint8(h.Dst>>24)] = struct{}{}
	}
	if len(tops) < 32 {
		t.Errorf("scrambled destinations cover only %d /8 prefixes", len(tops))
	}
}

func TestGeneratorTimestampsMonotonic(t *testing.T) {
	g := NewGenerator(profiles[0])
	var lastSec, lastUsec uint32
	for i := 0; i < 1000; i++ {
		p := g.Next()
		if p.Sec < lastSec || (p.Sec == lastSec && p.Usec < lastUsec) {
			t.Fatalf("timestamp went backwards at packet %d", i)
		}
		lastSec, lastUsec = p.Sec, p.Usec
	}
}

func TestGeneratedTraceSurvivesTraceFormats(t *testing.T) {
	// Round trip generated packets through both file formats.
	prof, _ := ProfileByName("LAN")
	pkts := Generate(prof, 50)
	for _, f := range []trace.Format{trace.FormatPcap, trace.FormatTSH} {
		var buf bytes.Buffer
		w, err := trace.NewWriter(&buf, f)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pkts {
			if err := w.WritePacket(p); err != nil {
				t.Fatalf("%v write: %v", f, err)
			}
		}
		r, err := trace.NewReader(&buf, f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := trace.ReadAll(r, 0)
		if err != nil {
			t.Fatalf("%v read: %v", f, err)
		}
		if len(got) != len(pkts) {
			t.Errorf("%v: read %d packets, want %d", f, len(got), len(pkts))
		}
	}
}
