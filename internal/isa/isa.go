// Package isa defines PB32, the 32-bit RISC instruction set executed by the
// PacketBench processor simulator.
//
// PB32 is a small load/store architecture in the spirit of the embedded RISC
// cores (ARM7-class) found on network processors such as the Intel IXP2400.
// It has sixteen 32-bit general-purpose registers, a flat 32-bit byte
// addressed memory, and fixed-width 32-bit instruction words. The instruction
// set is deliberately minimal: integer ALU operations, loads and stores of
// bytes, halfwords and words, conditional branches, and jump-and-link calls.
// There is no floating point, no interrupt model and no privileged state;
// network processing data paths need none of those, and omitting them keeps
// the simulator's per-instruction accounting exact and fast.
//
// Instruction formats (bit 31 is the most significant):
//
//	R-type:  [31:24] opcode  [23:20] rd   [19:16] rs1  [15:12] rs2  [11:0] zero
//	I-type:  [31:24] opcode  [23:20] rd   [19:16] rs1  [11:0] imm12
//	B-type:  [31:24] opcode  [23:20] zero [19:16] rs1  [15:12] rs2  [11:0] imm12
//	U-type:  [31:24] opcode  [23:20] rd   [19:0] imm20
//	J-type:  [31:24] opcode  [23:20] rd   [19:0] imm20
//
// Branch and jump immediates are signed word offsets relative to the address
// of the *next* instruction (pc+4), as on most RISC machines. Arithmetic
// immediates (ADDI, SLTI, loads, stores, JALR) are sign extended; logical
// immediates (ANDI, ORI, XORI) are zero extended so that LUI+ORI composes a
// full 32-bit constant without corrections.
package isa

import "fmt"

// WordSize is the size in bytes of one instruction word and of the natural
// integer width of the machine.
const WordSize = 4

// NumRegs is the number of general-purpose registers.
const NumRegs = 16

// Reg identifies one of the sixteen general purpose registers.
type Reg uint8

// Conventional register assignments used by the PacketBench ABI. The
// hardware treats all registers except Zero identically; the names encode
// the software calling convention:
//
//	r0      zero   always reads as 0, writes are discarded
//	r1-r4   a0-a3  arguments / return values
//	r5-r9   t0-t4  caller-saved temporaries
//	r10-r13 s0-s3  callee-saved
//	r14     sp     stack pointer
//	r15     ra     return address (link register)
const (
	Zero Reg = 0
	A0   Reg = 1
	A1   Reg = 2
	A2   Reg = 3
	A3   Reg = 4
	T0   Reg = 5
	T1   Reg = 6
	T2   Reg = 7
	T3   Reg = 8
	T4   Reg = 9
	S0   Reg = 10
	S1   Reg = 11
	S2   Reg = 12
	S3   Reg = 13
	SP   Reg = 14
	RA   Reg = 15
)

var regNames = [NumRegs]string{
	"zero", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4",
	"s0", "s1", "s2", "s3", "sp", "ra",
}

// String returns the ABI name of the register (for example "a0" or "sp").
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("r?%d", uint8(r))
}

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// ParseReg resolves a register name. Both ABI names ("a0", "sp") and raw
// names ("r0" through "r15") are accepted.
func ParseReg(name string) (Reg, bool) {
	for i, n := range regNames {
		if n == name {
			return Reg(i), true
		}
	}
	if len(name) >= 2 && name[0] == 'r' {
		v := 0
		for _, c := range name[1:] {
			if c < '0' || c > '9' {
				return 0, false
			}
			v = v*10 + int(c-'0')
			if v >= NumRegs {
				return 0, false
			}
		}
		return Reg(v), true
	}
	return 0, false
}

// Format classifies how an instruction's operands are packed into the
// 32-bit instruction word.
type Format uint8

// The instruction formats of PB32. See the package comment for the exact
// bit layouts.
const (
	FormatR Format = iota // rd, rs1, rs2
	FormatI               // rd, rs1, imm12  (ALU immediate, loads, JALR)
	FormatS               // rd(=src), rs1(=base), imm12  (stores)
	FormatB               // rs1, rs2, imm12 word offset  (branches)
	FormatU               // rd, imm20  (LUI)
	FormatJ               // rd, imm20 word offset  (JAL)
	FormatN               // no operands  (HALT)
)

// Opcode enumerates the PB32 operations.
type Opcode uint8

// The complete PB32 opcode set.
const (
	// R-type ALU.
	ADD Opcode = iota
	SUB
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	SLT
	SLTU
	MUL

	// I-type ALU.
	ADDI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	SLTI
	SLTIU

	// U-type.
	LUI

	// Loads (I-type).
	LB
	LBU
	LH
	LHU
	LW

	// Stores (S-type).
	SB
	SH
	SW

	// Branches (B-type).
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU

	// Jumps.
	JAL  // J-type: rd <- pc+4; pc <- pc+4 + imm20*4
	JALR // I-type: rd <- pc+4; pc <- (rs1 + imm12) &^ 3

	// Control.
	HALT // N-type: stop execution and return control to the framework

	numOpcodes // sentinel; must be last
)

// NumOpcodes is the number of defined opcodes.
const NumOpcodes = int(numOpcodes)

// opInfo carries the static properties of one opcode.
type opInfo struct {
	name   string
	format Format
	// signedImm reports whether the 12-bit immediate is sign extended when
	// decoded (true for arithmetic/memory/branch offsets, false for the
	// logical immediates).
	signedImm bool
}

var opTable = [numOpcodes]opInfo{
	ADD:   {"add", FormatR, false},
	SUB:   {"sub", FormatR, false},
	AND:   {"and", FormatR, false},
	OR:    {"or", FormatR, false},
	XOR:   {"xor", FormatR, false},
	SLL:   {"sll", FormatR, false},
	SRL:   {"srl", FormatR, false},
	SRA:   {"sra", FormatR, false},
	SLT:   {"slt", FormatR, false},
	SLTU:  {"sltu", FormatR, false},
	MUL:   {"mul", FormatR, false},
	ADDI:  {"addi", FormatI, true},
	ANDI:  {"andi", FormatI, false},
	ORI:   {"ori", FormatI, false},
	XORI:  {"xori", FormatI, false},
	SLLI:  {"slli", FormatI, false},
	SRLI:  {"srli", FormatI, false},
	SRAI:  {"srai", FormatI, false},
	SLTI:  {"slti", FormatI, true},
	SLTIU: {"sltiu", FormatI, true},
	LUI:   {"lui", FormatU, false},
	LB:    {"lb", FormatI, true},
	LBU:   {"lbu", FormatI, true},
	LH:    {"lh", FormatI, true},
	LHU:   {"lhu", FormatI, true},
	LW:    {"lw", FormatI, true},
	SB:    {"sb", FormatS, true},
	SH:    {"sh", FormatS, true},
	SW:    {"sw", FormatS, true},
	BEQ:   {"beq", FormatB, true},
	BNE:   {"bne", FormatB, true},
	BLT:   {"blt", FormatB, true},
	BGE:   {"bge", FormatB, true},
	BLTU:  {"bltu", FormatB, true},
	BGEU:  {"bgeu", FormatB, true},
	JAL:   {"jal", FormatJ, true},
	JALR:  {"jalr", FormatI, true},
	HALT:  {"halt", FormatN, false},
}

// String returns the assembler mnemonic of the opcode.
func (op Opcode) String() string {
	if op < numOpcodes {
		return opTable[op].name
	}
	return fmt.Sprintf("op?%d", uint8(op))
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool { return op < numOpcodes }

// Format returns the instruction format of op.
func (op Opcode) Format() Format {
	if op.Valid() {
		return opTable[op].format
	}
	return FormatN
}

// IsLoad reports whether op reads data memory.
func (op Opcode) IsLoad() bool { return op >= LB && op <= LW }

// IsStore reports whether op writes data memory.
func (op Opcode) IsStore() bool { return op >= SB && op <= SW }

// IsBranch reports whether op is a conditional branch.
func (op Opcode) IsBranch() bool { return op >= BEQ && op <= BGEU }

// IsControl reports whether op may change the program counter to anything
// other than pc+4 (branches, jumps and HALT). Such instructions terminate
// basic blocks.
func (op Opcode) IsControl() bool {
	return op.IsBranch() || op == JAL || op == JALR || op == HALT
}

// MemSize returns the access width in bytes of a load or store opcode and
// zero for every other opcode.
func (op Opcode) MemSize() int {
	switch op {
	case LB, LBU, SB:
		return 1
	case LH, LHU, SH:
		return 2
	case LW, SW:
		return 4
	}
	return 0
}

// ParseOpcode resolves an assembler mnemonic to its opcode.
func ParseOpcode(name string) (Opcode, bool) {
	for op := Opcode(0); op < numOpcodes; op++ {
		if opTable[op].name == name {
			return op, true
		}
	}
	return 0, false
}

// Instruction is one decoded PB32 instruction. The interpretation of the
// fields depends on the opcode's format; unused fields must be zero so that
// Encode/Decode round-trip exactly.
type Instruction struct {
	Op  Opcode
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	// Imm holds the immediate operand. For branches and JAL it is a signed
	// *word* offset relative to pc+4. For LUI it is the upper-20 value
	// before shifting.
	Imm int32
}

// RegDef returns the register the instruction writes and whether it
// writes one at all. Stores, branches and HALT define no register;
// writes to the zero register are architecturally discarded but still
// reported here (callers that care must check for Zero themselves).
func (in Instruction) RegDef() (Reg, bool) {
	switch in.Op.Format() {
	case FormatR, FormatI, FormatU, FormatJ:
		return in.Rd, true
	}
	return 0, false
}

// RegUses returns the registers the instruction reads, in encoding
// order. For stores the Rd field is the value source and is reported as
// a use alongside the Rs1 base. The fixed-size return avoids allocating
// on dataflow-analysis hot paths.
func (in Instruction) RegUses() (regs [2]Reg, n int) {
	switch in.Op.Format() {
	case FormatR, FormatB:
		regs[0], regs[1] = in.Rs1, in.Rs2
		n = 2
	case FormatI:
		regs[0] = in.Rs1
		n = 1
	case FormatS:
		regs[0], regs[1] = in.Rs1, in.Rd
		n = 2
	}
	return regs, n
}

// immediate range limits per format.
const (
	MinImm12  = -(1 << 11)
	MaxImm12  = 1<<11 - 1
	MaxUimm12 = 1<<12 - 1
	MinImm20  = -(1 << 19)
	MaxImm20  = 1<<19 - 1
	MaxUimm20 = 1<<20 - 1
)

// Validate checks that the instruction's operands are representable in its
// opcode's encoding.
func (in Instruction) Validate() error {
	if !in.Op.Valid() {
		return fmt.Errorf("isa: invalid opcode %d", uint8(in.Op))
	}
	checkReg := func(r Reg, what string) error {
		if !r.Valid() {
			return fmt.Errorf("isa: %s: invalid register %d in %q", what, uint8(r), in.Op)
		}
		return nil
	}
	info := opTable[in.Op]
	switch info.format {
	case FormatR:
		for _, c := range []struct {
			r    Reg
			what string
		}{{in.Rd, "rd"}, {in.Rs1, "rs1"}, {in.Rs2, "rs2"}} {
			if err := checkReg(c.r, c.what); err != nil {
				return err
			}
		}
		if in.Imm != 0 {
			return fmt.Errorf("isa: %q takes no immediate", in.Op)
		}
	case FormatI, FormatS:
		if err := checkReg(in.Rd, "rd"); err != nil {
			return err
		}
		if err := checkReg(in.Rs1, "rs1"); err != nil {
			return err
		}
		if info.signedImm {
			if in.Imm < MinImm12 || in.Imm > MaxImm12 {
				return fmt.Errorf("isa: immediate %d out of signed 12-bit range for %q", in.Imm, in.Op)
			}
		} else {
			if in.Imm < 0 || in.Imm > MaxUimm12 {
				return fmt.Errorf("isa: immediate %d out of unsigned 12-bit range for %q", in.Imm, in.Op)
			}
		}
	case FormatB:
		if err := checkReg(in.Rs1, "rs1"); err != nil {
			return err
		}
		if err := checkReg(in.Rs2, "rs2"); err != nil {
			return err
		}
		if in.Imm < MinImm12 || in.Imm > MaxImm12 {
			return fmt.Errorf("isa: branch offset %d out of range for %q", in.Imm, in.Op)
		}
	case FormatU:
		if err := checkReg(in.Rd, "rd"); err != nil {
			return err
		}
		if in.Imm < 0 || in.Imm > MaxUimm20 {
			return fmt.Errorf("isa: immediate %d out of unsigned 20-bit range for %q", in.Imm, in.Op)
		}
	case FormatJ:
		if err := checkReg(in.Rd, "rd"); err != nil {
			return err
		}
		if in.Imm < MinImm20 || in.Imm > MaxImm20 {
			return fmt.Errorf("isa: jump offset %d out of range for %q", in.Imm, in.Op)
		}
	case FormatN:
		if in.Rd != 0 || in.Rs1 != 0 || in.Rs2 != 0 || in.Imm != 0 {
			return fmt.Errorf("isa: %q takes no operands", in.Op)
		}
	}
	return nil
}

// Encode packs the instruction into its 32-bit machine word.
func Encode(in Instruction) (uint32, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	w := uint32(in.Op) << 24
	switch in.Op.Format() {
	case FormatR:
		w |= uint32(in.Rd)<<20 | uint32(in.Rs1)<<16 | uint32(in.Rs2)<<12
	case FormatI, FormatS:
		w |= uint32(in.Rd)<<20 | uint32(in.Rs1)<<16 | uint32(in.Imm)&0xFFF
	case FormatB:
		w |= uint32(in.Rs1)<<16 | uint32(in.Rs2)<<12 | uint32(in.Imm)&0xFFF
	case FormatU, FormatJ:
		w |= uint32(in.Rd)<<20 | uint32(in.Imm)&0xFFFFF
	case FormatN:
		// opcode only
	}
	return w, nil
}

// Decode unpacks a 32-bit machine word into an Instruction. It is the exact
// inverse of Encode for every word Encode can produce; words with undefined
// opcodes yield an error.
func Decode(w uint32) (Instruction, error) {
	op := Opcode(w >> 24)
	if !op.Valid() {
		return Instruction{}, fmt.Errorf("isa: undefined opcode byte %#02x in word %#08x", uint8(op), w)
	}
	in := Instruction{Op: op}
	info := opTable[op]
	signExtend12 := func(v uint32) int32 {
		if v&0x800 != 0 {
			return int32(v | 0xFFFFF000)
		}
		return int32(v)
	}
	signExtend20 := func(v uint32) int32 {
		if v&0x80000 != 0 {
			return int32(v | 0xFFF00000)
		}
		return int32(v)
	}
	switch info.format {
	case FormatR:
		in.Rd = Reg(w >> 20 & 0xF)
		in.Rs1 = Reg(w >> 16 & 0xF)
		in.Rs2 = Reg(w >> 12 & 0xF)
	case FormatI, FormatS:
		in.Rd = Reg(w >> 20 & 0xF)
		in.Rs1 = Reg(w >> 16 & 0xF)
		if info.signedImm {
			in.Imm = signExtend12(w & 0xFFF)
		} else {
			in.Imm = int32(w & 0xFFF)
		}
	case FormatB:
		in.Rs1 = Reg(w >> 16 & 0xF)
		in.Rs2 = Reg(w >> 12 & 0xF)
		in.Imm = signExtend12(w & 0xFFF)
	case FormatU:
		in.Rd = Reg(w >> 20 & 0xF)
		in.Imm = int32(w & 0xFFFFF)
	case FormatJ:
		in.Rd = Reg(w >> 20 & 0xF)
		in.Imm = signExtend20(w & 0xFFFFF)
	case FormatN:
		if w != uint32(op)<<24 {
			return Instruction{}, fmt.Errorf("isa: nonzero operand bits %#08x for %q", w, op)
		}
	}
	return in, nil
}

// String disassembles the instruction without address context; branch and
// jump targets are shown as relative word offsets. Use Disassemble for
// pc-resolved output.
func (in Instruction) String() string { return in.disasm(0, false) }

// Disassemble renders the instruction as assembler text, resolving branch
// and jump targets to absolute addresses using pc, the address of the
// instruction itself.
func Disassemble(pc uint32, in Instruction) string { return in.disasm(pc, true) }

func (in Instruction) disasm(pc uint32, abs bool) string {
	target := func() string {
		if abs {
			return fmt.Sprintf("%#x", pc+4+uint32(in.Imm)*WordSize)
		}
		return fmt.Sprintf(".%+d", in.Imm)
	}
	switch in.Op.Format() {
	case FormatR:
		return fmt.Sprintf("%-5s %s, %s, %s", in.Op, in.Rd, in.Rs1, in.Rs2)
	case FormatI:
		if in.Op.IsLoad() {
			return fmt.Sprintf("%-5s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Rs1)
		}
		if in.Op == JALR {
			return fmt.Sprintf("%-5s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Rs1)
		}
		return fmt.Sprintf("%-5s %s, %s, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case FormatS:
		return fmt.Sprintf("%-5s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Rs1)
	case FormatB:
		return fmt.Sprintf("%-5s %s, %s, %s", in.Op, in.Rs1, in.Rs2, target())
	case FormatU:
		return fmt.Sprintf("%-5s %s, %#x", in.Op, in.Rd, in.Imm)
	case FormatJ:
		return fmt.Sprintf("%-5s %s, %s", in.Op, in.Rd, target())
	default:
		return in.Op.String()
	}
}
