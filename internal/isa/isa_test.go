package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{Zero, "zero"}, {A0, "a0"}, {A3, "a3"}, {T0, "t0"}, {T4, "t4"},
		{S0, "s0"}, {S3, "s3"}, {SP, "sp"}, {RA, "ra"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
	if got := Reg(200).String(); !strings.Contains(got, "?") {
		t.Errorf("invalid register stringified as %q, want a marker", got)
	}
}

func TestParseReg(t *testing.T) {
	for i := 0; i < NumRegs; i++ {
		r := Reg(i)
		got, ok := ParseReg(r.String())
		if !ok || got != r {
			t.Errorf("ParseReg(%q) = %v, %v; want %v, true", r.String(), got, ok, r)
		}
	}
	rawCases := map[string]Reg{"r0": Zero, "r1": A0, "r14": SP, "r15": RA}
	for name, want := range rawCases {
		got, ok := ParseReg(name)
		if !ok || got != want {
			t.Errorf("ParseReg(%q) = %v, %v; want %v, true", name, got, ok, want)
		}
	}
	for _, bad := range []string{"", "r16", "r99", "x1", "a9", "r-1", "ra0", "r1x"} {
		if _, ok := ParseReg(bad); ok {
			t.Errorf("ParseReg(%q) succeeded, want failure", bad)
		}
	}
}

func TestParseOpcode(t *testing.T) {
	for op := Opcode(0); op < numOpcodes; op++ {
		got, ok := ParseOpcode(op.String())
		if !ok || got != op {
			t.Errorf("ParseOpcode(%q) = %v, %v; want %v, true", op.String(), got, ok, op)
		}
	}
	for _, bad := range []string{"", "addx", "div", "mov"} {
		if _, ok := ParseOpcode(bad); ok {
			t.Errorf("ParseOpcode(%q) succeeded, want failure", bad)
		}
	}
}

func TestOpcodePredicates(t *testing.T) {
	loads := []Opcode{LB, LBU, LH, LHU, LW}
	stores := []Opcode{SB, SH, SW}
	branches := []Opcode{BEQ, BNE, BLT, BGE, BLTU, BGEU}
	isIn := func(op Opcode, set []Opcode) bool {
		for _, o := range set {
			if o == op {
				return true
			}
		}
		return false
	}
	for op := Opcode(0); op < numOpcodes; op++ {
		if got, want := op.IsLoad(), isIn(op, loads); got != want {
			t.Errorf("%v.IsLoad() = %v, want %v", op, got, want)
		}
		if got, want := op.IsStore(), isIn(op, stores); got != want {
			t.Errorf("%v.IsStore() = %v, want %v", op, got, want)
		}
		if got, want := op.IsBranch(), isIn(op, branches); got != want {
			t.Errorf("%v.IsBranch() = %v, want %v", op, got, want)
		}
		wantCtl := isIn(op, branches) || op == JAL || op == JALR || op == HALT
		if got := op.IsControl(); got != wantCtl {
			t.Errorf("%v.IsControl() = %v, want %v", op, got, wantCtl)
		}
	}
}

func TestMemSize(t *testing.T) {
	cases := map[Opcode]int{
		LB: 1, LBU: 1, SB: 1,
		LH: 2, LHU: 2, SH: 2,
		LW: 4, SW: 4,
		ADD: 0, BEQ: 0, JAL: 0, HALT: 0,
	}
	for op, want := range cases {
		if got := op.MemSize(); got != want {
			t.Errorf("%v.MemSize() = %d, want %d", op, got, want)
		}
	}
}

// randInstr generates a random *valid* instruction for the given opcode.
func randInstr(rng *rand.Rand, op Opcode) Instruction {
	reg := func() Reg { return Reg(rng.Intn(NumRegs)) }
	in := Instruction{Op: op}
	switch op.Format() {
	case FormatR:
		in.Rd, in.Rs1, in.Rs2 = reg(), reg(), reg()
	case FormatI, FormatS:
		in.Rd, in.Rs1 = reg(), reg()
		if opTable[op].signedImm {
			in.Imm = int32(rng.Intn(MaxImm12-MinImm12+1)) + MinImm12
		} else {
			in.Imm = int32(rng.Intn(MaxUimm12 + 1))
		}
	case FormatB:
		in.Rs1, in.Rs2 = reg(), reg()
		in.Imm = int32(rng.Intn(MaxImm12-MinImm12+1)) + MinImm12
	case FormatU:
		in.Rd = reg()
		in.Imm = int32(rng.Intn(MaxUimm20 + 1))
	case FormatJ:
		in.Rd = reg()
		in.Imm = int32(rng.Intn(MaxImm20-MinImm20+1)) + MinImm20
	}
	return in
}

// TestEncodeDecodeRoundTrip is the core property: Decode(Encode(x)) == x for
// every valid instruction.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for op := Opcode(0); op < numOpcodes; op++ {
		for i := 0; i < 200; i++ {
			in := randInstr(rng, op)
			w, err := Encode(in)
			if err != nil {
				t.Fatalf("Encode(%+v): %v", in, err)
			}
			got, err := Decode(w)
			if err != nil {
				t.Fatalf("Decode(%#08x) of %+v: %v", w, in, err)
			}
			if got != in {
				t.Fatalf("round trip: encoded %+v as %#08x, decoded %+v", in, w, got)
			}
		}
	}
}

// TestDecodeEncodeRoundTrip: any word that decodes must re-encode to itself.
func TestDecodeEncodeRoundTrip(t *testing.T) {
	f := func(w uint32) bool {
		in, err := Decode(w)
		if err != nil {
			return true // undecodable words are out of scope
		}
		// Decoded instructions may not validate (e.g. R-type with junk in
		// the low 12 bits); only check the ones that do.
		w2, err := Encode(in)
		if err != nil {
			return true
		}
		in2, err := Decode(w2)
		return err == nil && in2 == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeUndefinedOpcode(t *testing.T) {
	if _, err := Decode(uint32(NumOpcodes) << 24); err == nil {
		t.Error("Decode of undefined opcode succeeded, want error")
	}
	if _, err := Decode(0xFF000000); err == nil {
		t.Error("Decode of opcode 0xFF succeeded, want error")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Instruction{
		{Op: numOpcodes},                         // undefined opcode
		{Op: ADD, Imm: 1},                        // R-type with immediate
		{Op: ADDI, Imm: MaxImm12 + 1},            // imm12 overflow
		{Op: ADDI, Imm: MinImm12 - 1},            // imm12 underflow
		{Op: ORI, Imm: -1},                       // logical imm must be unsigned
		{Op: ORI, Imm: MaxUimm12 + 1},            // logical imm overflow
		{Op: LUI, Imm: MaxUimm20 + 1},            // imm20 overflow
		{Op: LUI, Imm: -1},                       // LUI imm must be unsigned
		{Op: JAL, Imm: MaxImm20 + 1},             // jump offset overflow
		{Op: BEQ, Imm: MinImm12 - 1},             // branch offset underflow
		{Op: HALT, Rd: A0},                       // HALT takes no operands
		{Op: ADD, Rd: Reg(16)},                   // invalid register
		{Op: ADD, Rs1: Reg(255)},                 // invalid register
		{Op: SW, Rd: A0, Rs1: Reg(16), Imm: 0},   // invalid base register
		{Op: BEQ, Rs1: A0, Rs2: Reg(17), Imm: 0}, // invalid rs2
	}
	for _, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", in)
		}
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%+v) succeeded, want error", in)
		}
	}
}

func TestValidateAccepts(t *testing.T) {
	good := []Instruction{
		{Op: ADD, Rd: A0, Rs1: A1, Rs2: A2},
		{Op: ADDI, Rd: T0, Rs1: Zero, Imm: -2048},
		{Op: ADDI, Rd: T0, Rs1: Zero, Imm: 2047},
		{Op: ORI, Rd: T0, Rs1: T0, Imm: 0xFFF},
		{Op: LUI, Rd: S0, Imm: 0xFFFFF},
		{Op: LW, Rd: A0, Rs1: SP, Imm: 4},
		{Op: SW, Rd: A0, Rs1: SP, Imm: -4},
		{Op: BEQ, Rs1: A0, Rs2: Zero, Imm: -100},
		{Op: JAL, Rd: RA, Imm: 1000},
		{Op: JALR, Rd: Zero, Rs1: RA, Imm: 0},
		{Op: HALT},
	}
	for _, in := range good {
		if err := in.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", in, err)
		}
	}
}

func TestDisassemble(t *testing.T) {
	cases := []struct {
		pc   uint32
		in   Instruction
		want string
	}{
		{0, Instruction{Op: ADD, Rd: A0, Rs1: A1, Rs2: A2}, "add   a0, a1, a2"},
		{0, Instruction{Op: ADDI, Rd: T0, Rs1: Zero, Imm: 42}, "addi  t0, zero, 42"},
		{0, Instruction{Op: LW, Rd: A0, Rs1: SP, Imm: 8}, "lw    a0, 8(sp)"},
		{0, Instruction{Op: SW, Rd: A1, Rs1: S0, Imm: -4}, "sw    a1, -4(s0)"},
		{0x100, Instruction{Op: BEQ, Rs1: A0, Rs2: Zero, Imm: 3}, "beq   a0, zero, 0x110"},
		{0x100, Instruction{Op: JAL, Rd: RA, Imm: -1}, "jal   ra, 0x100"},
		{0, Instruction{Op: LUI, Rd: S1, Imm: 0x12345}, "lui   s1, 0x12345"},
		{0, Instruction{Op: JALR, Rd: Zero, Rs1: RA, Imm: 0}, "jalr  zero, 0(ra)"},
		{0, Instruction{Op: HALT}, "halt"},
	}
	for _, c := range cases {
		if got := Disassemble(c.pc, c.in); got != c.want {
			t.Errorf("Disassemble(%#x, %+v) = %q, want %q", c.pc, c.in, got, c.want)
		}
	}
}

func TestInstructionString(t *testing.T) {
	in := Instruction{Op: BNE, Rs1: A0, Rs2: A1, Imm: -2}
	got := in.String()
	if !strings.Contains(got, "bne") || !strings.Contains(got, "-2") {
		t.Errorf("String() = %q, want mnemonic and relative offset", got)
	}
}
