// Package lint implements PacketBench's repo-specific Go checks — the
// invariants of this codebase that gofmt, go vet and staticcheck cannot
// know about. It is a plain go/ast pass (stdlib only, no external
// analysis framework) run by cmd/pblint and the CI lint job.
//
// Rules:
//
//   - telemetry-series: telemetry series must be registered via the
//     canonical name constants in internal/telemetry/names.go, never
//     via string literals. A literal name compiles fine and silently
//     splits the series from every reader that uses the constant.
//
//   - hotpath: functions on the per-packet hot path (ProcessPacket and
//     the threaded dispatch loops, plus anything whose doc comment
//     carries a "pblint:hotpath" directive) must not call time.Now or
//     friends, call fmt, allocate via make/new/append, create closures,
//     or defer — each is a per-packet (or per-instruction) cost that
//     the dispatch benchmarks' 0-alloc guardrail would catch only for
//     the paths they happen to exercise.
//
//   - compiled-closure: the bodies of function literals built by the
//     compiled tier's closure factories (internal/vm compile.go's
//     makeStep/makeFusedStep/buildChain, plus anything whose doc
//     comment carries a "pblint:closurefactory" directive) execute
//     per guest instruction, so they get the hot-path treatment even
//     though the factory itself runs once at compile time: no
//     time.Now, no fmt, no make/new/append, no defer, no goroutines,
//     and no nested closure creation.
//
//   - span-pairing: a function that opens a packet-journey execution
//     span (ptrace's ExecBegin) must close it on every path: either
//     defer the ExecEnd, or place an ExecEnd between the begin and
//     every later return. An unclosed span leaves a permanent
//     in-flight marker in the flight recorder, and a post-mortem dump
//     would misreport the worker as wedged inside that packet.
//
// A finding can be waived by putting a "pblint:allow" comment on the
// same source line, ideally with a reason:
//
//	start = time.Now() //pblint:allow — packet-boundary timestamp
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Diagnostic is one finding, in the familiar file:line:col form.
type Diagnostic struct {
	Pos  token.Position
	Rule string // "telemetry-series", "hotpath", "compiled-closure" or "span-pairing"
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Msg, d.Rule)
}

// registerMethods are the telemetry.Registry constructors whose first
// argument is a series name.
var registerMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

// hotPathFuncs are always treated as hot even without a directive: the
// public per-packet entry points and the engine dispatch loops.
var hotPathFuncs = map[string]bool{
	"ProcessPacket":   true,
	"ProcessPacketAt": true,
	"runFast":         true,
	"runFused":        true,
	"runTraced":       true,
}

// CheckFile runs every rule over one parsed file and returns the
// findings in source order.
func CheckFile(fset *token.FileSet, file *ast.File) []Diagnostic {
	allowed := allowedLines(fset, file)
	var ds []Diagnostic
	emit := func(pos token.Pos, rule, msg string) {
		p := fset.Position(pos)
		if allowed[p.Line] {
			return
		}
		ds = append(ds, Diagnostic{Pos: p, Rule: rule, Msg: msg})
	}
	checkTelemetrySeries(file, emit)
	checkHotPaths(file, emit)
	checkClosureFactories(file, emit)
	checkSpanPairing(file, emit)
	return ds
}

// allowedLines collects the source lines carrying a pblint:allow waiver.
func allowedLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "pblint:allow") {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// checkTelemetrySeries flags Registry.Counter/Gauge/Histogram calls
// whose series name is a string literal. The telemetry package itself
// is exempt: it defines the constants and its tests exercise the
// registry with throwaway names.
func checkTelemetrySeries(file *ast.File, emit func(token.Pos, string, string)) {
	if file.Name.Name == "telemetry" {
		return
	}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !registerMethods[sel.Sel.Name] {
			return true
		}
		if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
			emit(lit.Pos(), "telemetry-series",
				fmt.Sprintf("telemetry series registered with string literal %s; use the canonical constants in internal/telemetry/names.go", lit.Value))
		}
		return true
	})
}

// checkHotPaths applies the hot-path rule to every function that is
// either on the built-in hot list or carries the pblint:hotpath
// directive in its doc comment.
func checkHotPaths(file *ast.File, emit func(token.Pos, string, string)) {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		hot := hotPathFuncs[fn.Name.Name]
		if fn.Doc != nil && strings.Contains(fn.Doc.Text(), "pblint:hotpath") {
			hot = true
		}
		if !hot {
			continue
		}
		checkHotBody("hot path "+fn.Name.Name, fn.Body, "hotpath", emit)
	}
}

// closureFactoryFuncs are the compiled tier's closure factories: every
// function literal they build is dispatched per guest instruction, so
// the literals' bodies are hot even though the factories run once.
var closureFactoryFuncs = map[string]bool{
	"makeStep":      true,
	"makeFusedStep": true,
	"buildChain":    true,
}

// checkClosureFactories applies the hot-body rule to every function
// literal inside a closure factory (built-in list or the
// pblint:closurefactory directive).
func checkClosureFactories(file *ast.File, emit func(token.Pos, string, string)) {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		factory := closureFactoryFuncs[fn.Name.Name]
		if fn.Doc != nil && strings.Contains(fn.Doc.Text(), "pblint:closurefactory") {
			factory = true
		}
		if !factory {
			continue
		}
		where := "compiled closure built by " + fn.Name.Name
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			checkHotBody(where, lit.Body, "compiled-closure", emit)
			return false // nested literals are findings of the outer body
		})
	}
}

// spanPairs maps span-opening method names to the call that must close
// them on every path out of the opening function.
var spanPairs = map[string]string{"ExecBegin": "ExecEnd"}

// checkSpanPairing enforces the span bracket discipline: in any
// function that calls a span-opening method, the matching close must
// either be deferred or appear lexically between the first open and
// every subsequent return (and at least once after the open when the
// function falls off its end). The ptrace package itself is exempt —
// it defines the bracket, and its tests open spans on purpose.
func checkSpanPairing(file *ast.File, emit func(token.Pos, string, string)) {
	if file.Name.Name == "ptrace" {
		return
	}
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		for open, close := range spanPairs {
			checkSpanPair(fn, open, close, emit)
		}
	}
}

// isSpanCall reports whether n is a method call named name (any
// receiver — the rule is lexical, matching the codebase convention
// that these names belong to ptrace lanes).
func isSpanCall(n *ast.CallExpr, name string) bool {
	sel, ok := n.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == name
}

func checkSpanPair(fn *ast.FuncDecl, open, close string, emit func(token.Pos, string, string)) {
	var opens, closes []token.Pos
	var rets []token.Pos
	deferred := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if isSpanCall(n.Call, close) {
				deferred = true
			}
		case *ast.CallExpr:
			if isSpanCall(n, open) {
				opens = append(opens, n.Pos())
			} else if isSpanCall(n, close) {
				closes = append(closes, n.Pos())
			}
		case *ast.ReturnStmt:
			rets = append(rets, n.Pos())
		}
		return true
	})
	if len(opens) == 0 || deferred {
		return
	}
	first := opens[0]
	closedBefore := func(ret token.Pos) bool {
		for _, c := range closes {
			if c > first && c < ret {
				return true
			}
		}
		return false
	}
	found := false
	for _, ret := range rets {
		if ret <= first {
			continue
		}
		found = true
		if !closedBefore(ret) {
			emit(ret, "span-pairing",
				fmt.Sprintf("%s returns with an open %s span (no %s between the begin and this return; defer the end or close before returning)", fn.Name.Name, open, close))
		}
	}
	if !found && !closedBefore(fn.Body.End()) {
		emit(first, "span-pairing",
			fmt.Sprintf("%s opens an %s span it never closes (add a deferred or trailing %s)", fn.Name.Name, open, close))
	}
}

// timePackageFuncs are the wall-clock reads that cost a vDSO call (or
// worse) per packet; Since and Until call Now internally.
var timePackageFuncs = map[string]bool{"Now": true, "Since": true, "Until": true, "Sleep": true}

func checkHotBody(where string, body ast.Node, rule string, emit func(token.Pos, string, string)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			emit(n.Pos(), rule, where+" defers (per-call cost on every packet; restructure or move to the caller)")
		case *ast.GoStmt:
			emit(n.Pos(), rule, where+" spawns a goroutine per call")
		case *ast.FuncLit:
			emit(n.Pos(), rule, where+" creates a closure (escapes and allocates per call)")
			return false // the literal's own body is the closure's problem
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "make" || fun.Name == "new" || fun.Name == "append" {
					emit(n.Pos(), rule, fmt.Sprintf("%s calls %s (allocates per call; preallocate in setup)", where, fun.Name))
				}
			case *ast.SelectorExpr:
				if pkg, ok := fun.X.(*ast.Ident); ok {
					if pkg.Name == "time" && timePackageFuncs[fun.Sel.Name] {
						emit(n.Pos(), rule, fmt.Sprintf("%s calls time.%s (wall-clock read per packet; hoist to the caller or gate behind metrics)", where, fun.Sel.Name))
					}
					if pkg.Name == "fmt" {
						emit(n.Pos(), rule, fmt.Sprintf("%s calls fmt.%s (formats and allocates per call)", where, fun.Sel.Name))
					}
				}
			}
		}
		return true
	})
}
