package lint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func check(t *testing.T, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return CheckFile(fset, file)
}

func rules(ds []Diagnostic) []string {
	var rs []string
	for _, d := range ds {
		rs = append(rs, d.Rule)
	}
	return rs
}

func TestTelemetrySeriesLiteral(t *testing.T) {
	ds := check(t, `package core

func f(r *Registry) {
	r.Counter("packets_total", "help")
	r.Gauge("busy", "")
	r.Histogram("lat", "", nil)
}
`)
	if len(ds) != 3 {
		t.Fatalf("want 3 findings, got %v", ds)
	}
	for _, d := range ds {
		if d.Rule != "telemetry-series" {
			t.Errorf("rule = %q, want telemetry-series", d.Rule)
		}
		if !strings.Contains(d.Msg, "names.go") {
			t.Errorf("message should point at the constants file: %s", d.Msg)
		}
	}
}

func TestTelemetrySeriesConstantIsClean(t *testing.T) {
	ds := check(t, `package core

func f(r *Registry) {
	r.Counter(telemetry.MetricPacketsProcessed, "help")
	r.Histogram(name, "", nil)
}
`)
	if len(ds) != 0 {
		t.Fatalf("constant-named series flagged: %v", ds)
	}
}

func TestTelemetryPackageExempt(t *testing.T) {
	ds := check(t, `package telemetry

func f(r *Registry) { r.Counter("throwaway", "") }
`)
	if len(ds) != 0 {
		t.Fatalf("telemetry package's own literals flagged: %v", ds)
	}
}

func TestHotPathBuiltinName(t *testing.T) {
	ds := check(t, `package vm

func (c *CPU) runFast() {
	t := time.Now()
	_ = t
}
`)
	if len(ds) != 1 || ds[0].Rule != "hotpath" || !strings.Contains(ds[0].Msg, "time.Now") {
		t.Fatalf("want one hotpath time.Now finding, got %v", ds)
	}
}

func TestHotPathDirective(t *testing.T) {
	ds := check(t, `package core

// dispatch is the inner loop.
//
// pblint:hotpath
func dispatch() {
	b := make([]byte, 16)
	b = append(b, 0)
	_ = fmt.Sprintf("%d", len(b))
	f := func() {}
	defer f()
	go f()
}
`)
	want := 6 // make, append, fmt.Sprintf, closure, defer, go
	if len(ds) != want {
		t.Fatalf("want %d findings, got %d: %v", want, len(ds), ds)
	}
	for _, d := range ds {
		if d.Rule != "hotpath" {
			t.Errorf("rule = %q, want hotpath", d.Rule)
		}
	}
}

func TestHotPathClosureBodyNotDoubleCounted(t *testing.T) {
	// The closure's own body belongs to the closure; only the literal
	// itself is the hot function's cost.
	ds := check(t, `package vm

func runFused() {
	f := func() { _ = time.Now() }
	_ = f
}
`)
	if len(ds) != 1 || !strings.Contains(ds[0].Msg, "closure") {
		t.Fatalf("want only the closure finding, got %v", ds)
	}
}

func TestColdFunctionsNotChecked(t *testing.T) {
	ds := check(t, `package core

func report() {
	_ = time.Now()
	_ = fmt.Sprintf("x")
	_ = make([]byte, 1)
}
`)
	if len(ds) != 0 {
		t.Fatalf("cold function flagged: %v", ds)
	}
}

func TestAllowWaiver(t *testing.T) {
	ds := check(t, `package vm

func runTraced() {
	defer f() //pblint:allow — once per run
	_ = time.Now()
}
`)
	if len(ds) != 1 || !strings.Contains(ds[0].Msg, "time.Now") {
		t.Fatalf("waiver should suppress only the defer line, got %v", ds)
	}
}

func TestCompiledClosureBuiltinFactory(t *testing.T) {
	// The factory body itself may allocate and create closures (it runs
	// once, at compile time); the literals it builds may not.
	ds := check(t, `package vm

func makeStep(s *cslot, nx cstep) cstep {
	tmp := make([]int, 4) // factory-time allocation: fine
	_ = tmp
	return func(c *CPU, regs *[16]uint32) {
		buf := make([]byte, 8)
		_ = buf
		t := time.Now()
		_ = t
	}
}
`)
	if len(ds) != 2 {
		t.Fatalf("want 2 findings (make + time.Now inside the closure), got %d: %v", len(ds), ds)
	}
	for _, d := range ds {
		if d.Rule != "compiled-closure" {
			t.Errorf("rule = %q, want compiled-closure", d.Rule)
		}
		if !strings.Contains(d.Msg, "makeStep") {
			t.Errorf("finding does not name the factory: %v", d)
		}
	}
}

func TestCompiledClosureDirective(t *testing.T) {
	ds := check(t, `package vm

// buildThing assembles per-instruction steps.
//
// pblint:closurefactory
func buildThing() func() {
	return func() {
		defer cleanup()
		go work()
	}
}
`)
	if len(ds) != 2 {
		t.Fatalf("want 2 findings (defer + go), got %d: %v", len(ds), ds)
	}
	for _, d := range ds {
		if d.Rule != "compiled-closure" {
			t.Errorf("rule = %q, want compiled-closure", d.Rule)
		}
	}
}

func TestCompiledClosureCleanFactoryQuiet(t *testing.T) {
	ds := check(t, `package vm

func makeFusedStep(s *cslot, nx cstep) cstep {
	rd, imm := s.op.rd, s.op.imm
	return func(c *CPU, regs *[16]uint32) {
		regs[rd] = regs[rd] + uint32(imm)
		nx(c, regs)
	}
}
`)
	if len(ds) != 0 {
		t.Fatalf("clean factory flagged: %v", ds)
	}
}

func TestSpanPairingUnclosedReturn(t *testing.T) {
	ds := check(t, `package core

func (b *Bench) processOnce(idx int) error {
	t0 := b.lane.ExecBegin(int64(idx), 0)
	if bad {
		return errFault // leaks the span
	}
	b.lane.ExecEnd(t0, int64(idx), 0, 0, n, v, 0)
	return nil
}
`)
	if len(ds) != 1 || ds[0].Rule != "span-pairing" {
		t.Fatalf("want one span-pairing finding, got %v", ds)
	}
	if !strings.Contains(ds[0].Msg, "ExecEnd") {
		t.Errorf("message should name the missing close: %s", ds[0].Msg)
	}
}

func TestSpanPairingClosedOnEveryReturn(t *testing.T) {
	ds := check(t, `package core

func (b *Bench) processOnce(idx int) error {
	t0 := b.lane.ExecBegin(int64(idx), 0)
	if bad {
		b.lane.ExecEnd(t0, int64(idx), 0, 0, 0, 0, fk)
		return errFault
	}
	b.lane.ExecEnd(t0, int64(idx), 0, 0, n, v, 0)
	return nil
}
`)
	if len(ds) != 0 {
		t.Fatalf("bracketed span flagged: %v", ds)
	}
}

func TestSpanPairingDeferredClose(t *testing.T) {
	ds := check(t, `package core

func run(l *Lane) error {
	t0 := l.ExecBegin(0, 0)
	defer l.ExecEnd(t0, 0, 0, 0, 0, 0, 0)
	if bad {
		return errFault
	}
	return nil
}
`)
	if len(ds) != 0 {
		t.Fatalf("deferred close flagged: %v", ds)
	}
}

func TestSpanPairingFallOffEnd(t *testing.T) {
	ds := check(t, `package core

func record(l *Lane) {
	l.ExecBegin(0, 0)
}
`)
	if len(ds) != 1 || ds[0].Rule != "span-pairing" {
		t.Fatalf("want one span-pairing finding, got %v", ds)
	}
}

func TestSpanPairingWaiver(t *testing.T) {
	ds := check(t, `package core

func abort(l *Lane) error {
	l.ExecBegin(0, 0)
	return errAbort //pblint:allow — FailFast keeps the span open for the flight recorder
}
`)
	if len(ds) != 0 {
		t.Fatalf("waived span leak flagged: %v", ds)
	}
}

func TestSpanPairingPtracePackageExempt(t *testing.T) {
	ds := check(t, `package ptrace

func helper(l *Lane) {
	l.ExecBegin(0, 0)
}
`)
	if len(ds) != 0 {
		t.Fatalf("ptrace package's own calls flagged: %v", ds)
	}
}
