package microarch

import (
	"fmt"
)

// Cache models a set-associative cache with LRU replacement, the
// structure whose sizing the paper motivates ("a good example is the
// memory hierarchy, where smaller on-chip memories suffice due to the
// nature of packet processing"). Only hit/miss behaviour is modeled —
// no data is stored.
type Cache struct {
	lineBits uint32
	setBits  uint32
	ways     int
	// sets[s][w] holds the tag; order within a set is LRU (index 0 is
	// most recently used). valid bit packed as tag|1 offset avoided by a
	// parallel slice.
	tags  [][]uint32
	valid [][]bool

	Accesses uint64
	Misses   uint64
}

// NewCache builds a cache of totalBytes capacity with lineBytes lines
// and the given associativity. All three parameters must be powers of
// two and consistent (totalBytes = sets * ways * lineBytes with at
// least one set).
func NewCache(totalBytes, lineBytes, ways int) (*Cache, error) {
	if totalBytes <= 0 || lineBytes <= 0 || ways <= 0 {
		return nil, fmt.Errorf("microarch: cache parameters must be positive")
	}
	if totalBytes&(totalBytes-1) != 0 || lineBytes&(lineBytes-1) != 0 || ways&(ways-1) != 0 {
		return nil, fmt.Errorf("microarch: cache parameters must be powers of two")
	}
	sets := totalBytes / lineBytes / ways
	if sets < 1 {
		return nil, fmt.Errorf("microarch: %dB/%dB-line/%d-way leaves no sets", totalBytes, lineBytes, ways)
	}
	c := &Cache{
		ways:  ways,
		tags:  make([][]uint32, sets),
		valid: make([][]bool, sets),
	}
	for lineBytes>>c.lineBits != 1 {
		c.lineBits++
	}
	for sets>>c.setBits != 1 {
		c.setBits++
	}
	for i := range c.tags {
		c.tags[i] = make([]uint32, ways)
		c.valid[i] = make([]bool, ways)
	}
	return c, nil
}

// Access touches addr, returning whether it hit. Misses install the
// line, evicting the LRU way.
func (c *Cache) Access(addr uint32) bool {
	c.Accesses++
	line := addr >> c.lineBits
	set := line & (1<<c.setBits - 1)
	tag := line >> c.setBits
	tags, valid := c.tags[set], c.valid[set]
	for w := 0; w < c.ways; w++ {
		if valid[w] && tags[w] == tag {
			// Move to MRU position.
			copy(tags[1:w+1], tags[:w])
			copy(valid[1:w+1], valid[:w])
			tags[0], valid[0] = tag, true
			return true
		}
	}
	c.Misses++
	copy(tags[1:], tags[:c.ways-1])
	copy(valid[1:], valid[:c.ways-1])
	tags[0], valid[0] = tag, true
	return false
}

// MissRate returns misses/accesses.
func (c *Cache) MissRate() float64 { return rate(c.Misses, c.Accesses) }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return len(c.tags) }

// String summarizes geometry and behaviour.
func (c *Cache) String() string {
	return fmt.Sprintf("%d sets x %d ways x %dB lines: %d accesses, %d misses (%.2f%%)",
		c.Sets(), c.ways, 1<<c.lineBits, c.Accesses, c.Misses, 100*c.MissRate())
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.valid {
		for w := range c.valid[i] {
			c.valid[i][w] = false
		}
	}
	c.Accesses, c.Misses = 0, 0
}
