// Package microarch provides the "traditional microarchitectural
// statistics" tier of PacketBench results. The paper's evaluation
// deliberately skips these ("gathering similar workload characteristics
// is a straightforward exercise ... although they can be obtained from
// PacketBench"); this package makes good on that claim: instruction mix,
// branch behaviour under static and dynamic predictors, instruction and
// data cache behaviour, and a cycle estimate under an ARM7-like cost
// model — the inputs the paper's follow-on performance models (Franklin
// & Wolf) consume.
//
// The Profiler implements vm.Tracer and can be attached to a bench
// alongside the workload collector (see core.Bench.AddTracer).
package microarch

import (
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/vm"
)

// Class buckets opcodes for the instruction mix.
type Class uint8

// Instruction classes.
const (
	ClassALU    Class = iota // integer ALU, register or immediate
	ClassMul                 // multiply
	ClassLoad                // memory read
	ClassStore               // memory write
	ClassBranch              // conditional branch
	ClassJump                // jal/jalr
	ClassOther               // halt and anything unclassified
	NumClasses
)

var classNames = [NumClasses]string{"alu", "mul", "load", "store", "branch", "jump", "other"}

// String returns the class name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class?%d", uint8(c))
}

// Classify maps an opcode to its class.
func Classify(op isa.Opcode) Class {
	switch {
	case op == isa.MUL:
		return ClassMul
	case op.IsLoad():
		return ClassLoad
	case op.IsStore():
		return ClassStore
	case op.IsBranch():
		return ClassBranch
	case op == isa.JAL || op == isa.JALR:
		return ClassJump
	case op == isa.HALT:
		return ClassOther
	default:
		return ClassALU
	}
}

// Mix is an instruction mix histogram.
type Mix struct {
	Counts [NumClasses]uint64
}

// Total returns the number of classified instructions.
func (m *Mix) Total() uint64 {
	var t uint64
	for _, c := range m.Counts {
		t += c
	}
	return t
}

// Frac returns class c's share of the mix.
func (m *Mix) Frac(c Class) float64 {
	t := m.Total()
	if t == 0 {
		return 0
	}
	return float64(m.Counts[c]) / float64(t)
}

// String formats the mix as percentages.
func (m *Mix) String() string {
	var b strings.Builder
	for c := Class(0); c < NumClasses; c++ {
		if m.Counts[c] == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s %.1f%%  ", c, 100*m.Frac(c))
	}
	return strings.TrimSpace(b.String())
}

// BranchStats tracks conditional-branch behaviour and the accuracy of
// two predictors: static BTFN (backward taken, forward not taken — the
// compile-time heuristic embedded-core toolchains use) and a bimodal
// table of 2-bit saturating counters.
type BranchStats struct {
	Branches       uint64 // conditional branches executed
	Taken          uint64
	BTFNCorrect    uint64
	BimodalCorrect uint64

	counters []uint8 // 2-bit saturating counters
}

// bimodalEntries sizes the predictor table; PB32 programs are tiny, so
// 1024 entries behaves like an untagged infinite table.
const bimodalEntries = 1024

// TakenRate returns the fraction of branches taken.
func (b *BranchStats) TakenRate() float64 { return rate(b.Taken, b.Branches) }

// BTFNAccuracy returns the static predictor's accuracy.
func (b *BranchStats) BTFNAccuracy() float64 { return rate(b.BTFNCorrect, b.Branches) }

// BimodalAccuracy returns the 2-bit predictor's accuracy.
func (b *BranchStats) BimodalAccuracy() float64 { return rate(b.BimodalCorrect, b.Branches) }

func rate(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// record updates the statistics for one executed branch.
func (b *BranchStats) record(pc uint32, backward, taken bool) {
	if b.counters == nil {
		b.counters = make([]uint8, bimodalEntries)
	}
	b.Branches++
	if taken {
		b.Taken++
	}
	if backward == taken {
		b.BTFNCorrect++
	}
	idx := pc >> 2 & (bimodalEntries - 1)
	ctr := b.counters[idx]
	if (ctr >= 2) == taken {
		b.BimodalCorrect++
	}
	if taken && ctr < 3 {
		b.counters[idx] = ctr + 1
	} else if !taken && ctr > 0 {
		b.counters[idx] = ctr - 1
	}
}

// CostModel assigns cycle costs in the spirit of an ARM7TDMI-class
// embedded core: single-cycle ALU, multi-cycle loads/stores, a pipeline
// refill penalty for taken control transfers, and a stall for cache
// misses when caches are attached.
type CostModel struct {
	ALU, Mul, Load, Store uint64
	Branch, Jump          uint64
	// TakenPenalty is added for taken branches and all jumps (pipeline
	// refill).
	TakenPenalty uint64
	// MissPenalty is added per cache miss (instruction or data).
	MissPenalty uint64
}

// DefaultCostModel is the ARM7-like model used unless overridden.
var DefaultCostModel = CostModel{
	ALU: 1, Mul: 2, Load: 3, Store: 2,
	Branch: 1, Jump: 1,
	TakenPenalty: 2, MissPenalty: 20,
}

func (cm CostModel) base(c Class) uint64 {
	switch c {
	case ClassMul:
		return cm.Mul
	case ClassLoad:
		return cm.Load
	case ClassStore:
		return cm.Store
	case ClassBranch:
		return cm.Branch
	case ClassJump:
		return cm.Jump
	default:
		return cm.ALU
	}
}

// Profiler is a vm.Tracer computing microarchitectural statistics. The
// zero value profiles with the default cost model and no caches; attach
// caches with NewProfiler or by assigning ICache/DCache before the run.
type Profiler struct {
	Mix      Mix
	Branches BranchStats
	// ICache and DCache, when non-nil, model first-level caches.
	ICache, DCache *Cache
	Cost           CostModel
	// Cycles is the accumulated cycle estimate.
	Cycles uint64

	// pending branch resolution: a conditional branch's direction is
	// known when the *next* instruction's pc arrives.
	havePending   bool
	pendingPC     uint32
	pendingTarget uint32
}

// NewProfiler builds a profiler with the default cost model and the
// given caches (either may be nil).
func NewProfiler(icache, dcache *Cache) *Profiler {
	return &Profiler{ICache: icache, DCache: dcache, Cost: DefaultCostModel}
}

func (p *Profiler) cost() CostModel {
	if p.Cost == (CostModel{}) {
		return DefaultCostModel
	}
	return p.Cost
}

// Instr implements vm.Tracer.
func (p *Profiler) Instr(pc uint32, in isa.Instruction) {
	cm := p.cost()
	// Resolve the previous branch now that the successor pc is known.
	if p.havePending {
		p.havePending = false
		taken := pc != p.pendingPC+isa.WordSize
		backward := p.pendingTarget <= p.pendingPC
		p.Branches.record(p.pendingPC, backward, taken)
		if taken {
			p.Cycles += cm.TakenPenalty
		}
	}
	c := Classify(in.Op)
	p.Mix.Counts[c]++
	p.Cycles += cm.base(c)
	if c == ClassJump {
		p.Cycles += cm.TakenPenalty
	}
	if c == ClassBranch {
		p.havePending = true
		p.pendingPC = pc
		p.pendingTarget = pc + isa.WordSize + uint32(in.Imm)*isa.WordSize
	}
	if p.ICache != nil && !p.ICache.Access(pc) {
		p.Cycles += cm.MissPenalty
	}
}

// Mem implements vm.Tracer.
func (p *Profiler) Mem(pc, addr uint32, size uint8, write bool, region vm.Region) {
	if p.DCache != nil && !p.DCache.Access(addr) {
		p.Cycles += p.cost().MissPenalty
	}
}

// Flush resolves a pending branch at the end of a run (the successor
// never executed, so the branch is counted as not taken). Call between
// packets if per-packet precision matters; aggregate users can skip it.
func (p *Profiler) Flush() {
	if p.havePending {
		p.havePending = false
		backward := p.pendingTarget <= p.pendingPC
		p.Branches.record(p.pendingPC, backward, false)
	}
}

// CPI returns cycles per instruction over everything profiled.
func (p *Profiler) CPI() float64 {
	t := p.Mix.Total()
	if t == 0 {
		return 0
	}
	return float64(p.Cycles) / float64(t)
}

// Report formats the profile for human consumption.
func (p *Profiler) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instruction mix:     %s\n", p.Mix.String())
	fmt.Fprintf(&b, "branches:            %d executed, %.1f%% taken\n",
		p.Branches.Branches, 100*p.Branches.TakenRate())
	fmt.Fprintf(&b, "  BTFN accuracy:     %.1f%%\n", 100*p.Branches.BTFNAccuracy())
	fmt.Fprintf(&b, "  bimodal accuracy:  %.1f%%\n", 100*p.Branches.BimodalAccuracy())
	if p.ICache != nil {
		fmt.Fprintf(&b, "icache:              %s\n", p.ICache)
	}
	if p.DCache != nil {
		fmt.Fprintf(&b, "dcache:              %s\n", p.DCache)
	}
	fmt.Fprintf(&b, "cycle estimate:      %d (CPI %.2f)\n", p.Cycles, p.CPI())
	return b.String()
}
