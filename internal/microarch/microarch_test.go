package microarch

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/vm"
)

func TestClassify(t *testing.T) {
	cases := map[isa.Opcode]Class{
		isa.ADD: ClassALU, isa.ADDI: ClassALU, isa.LUI: ClassALU,
		isa.SLT: ClassALU, isa.XORI: ClassALU,
		isa.MUL: ClassMul,
		isa.LB:  ClassLoad, isa.LW: ClassLoad, isa.LHU: ClassLoad,
		isa.SB: ClassStore, isa.SW: ClassStore,
		isa.BEQ: ClassBranch, isa.BGEU: ClassBranch,
		isa.JAL: ClassJump, isa.JALR: ClassJump,
		isa.HALT: ClassOther,
	}
	for op, want := range cases {
		if got := Classify(op); got != want {
			t.Errorf("Classify(%v) = %v, want %v", op, got, want)
		}
	}
}

func TestMix(t *testing.T) {
	var m Mix
	m.Counts[ClassALU] = 60
	m.Counts[ClassLoad] = 30
	m.Counts[ClassBranch] = 10
	if m.Total() != 100 {
		t.Errorf("Total = %d", m.Total())
	}
	if m.Frac(ClassALU) != 0.6 || m.Frac(ClassLoad) != 0.3 {
		t.Errorf("fractions wrong: %v %v", m.Frac(ClassALU), m.Frac(ClassLoad))
	}
	if m.Frac(ClassStore) != 0 {
		t.Error("empty class has nonzero fraction")
	}
	s := m.String()
	if !strings.Contains(s, "alu 60.0%") || strings.Contains(s, "store") {
		t.Errorf("String() = %q", s)
	}
	var empty Mix
	if empty.Frac(ClassALU) != 0 {
		t.Error("empty mix division by zero")
	}
}

// driveBranches feeds the profiler a synthetic instruction stream with
// known branch behaviour.
func driveBranches(p *Profiler, pcs []uint32, instrs []isa.Instruction) {
	for i := range pcs {
		p.Instr(pcs[i], instrs[i])
	}
	p.Flush()
}

func TestBranchDetection(t *testing.T) {
	p := NewProfiler(nil, nil)
	// Backward branch taken twice, then falls through.
	// Layout: 0x100: addi; 0x104: bne -> 0x100; loop twice then exit to 0x108.
	addi := isa.Instruction{Op: isa.ADDI, Rd: isa.T0, Rs1: isa.T0, Imm: 1}
	bne := isa.Instruction{Op: isa.BNE, Rs1: isa.T0, Rs2: isa.T1, Imm: -2}
	halt := isa.Instruction{Op: isa.HALT}
	driveBranches(p,
		[]uint32{0x100, 0x104, 0x100, 0x104, 0x100, 0x104, 0x108},
		[]isa.Instruction{addi, bne, addi, bne, addi, bne, halt})
	if p.Branches.Branches != 3 {
		t.Fatalf("branches = %d, want 3", p.Branches.Branches)
	}
	if p.Branches.Taken != 2 {
		t.Errorf("taken = %d, want 2", p.Branches.Taken)
	}
	// BTFN predicts backward branches taken: correct twice, wrong once.
	if p.Branches.BTFNCorrect != 2 {
		t.Errorf("BTFN correct = %d, want 2", p.Branches.BTFNCorrect)
	}
	if got := p.Branches.TakenRate(); got < 0.66 || got > 0.67 {
		t.Errorf("taken rate = %v", got)
	}
}

func TestBranchPendingAtEnd(t *testing.T) {
	p := NewProfiler(nil, nil)
	bne := isa.Instruction{Op: isa.BNE, Rs1: isa.T0, Rs2: isa.T1, Imm: 4}
	p.Instr(0x100, bne)
	// No successor instruction: Flush must resolve it as not taken.
	p.Flush()
	if p.Branches.Branches != 1 || p.Branches.Taken != 0 {
		t.Errorf("pending branch resolved as %+v", p.Branches)
	}
	// Double flush is a no-op.
	p.Flush()
	if p.Branches.Branches != 1 {
		t.Error("Flush double counted")
	}
}

func TestBimodalConvergesOnLoop(t *testing.T) {
	p := NewProfiler(nil, nil)
	addi := isa.Instruction{Op: isa.ADDI}
	bne := isa.Instruction{Op: isa.BNE, Imm: -2}
	// 100 iterations of a loop: the 2-bit counter should mispredict only
	// the first couple and the final fall-through.
	var pcs []uint32
	var ins []isa.Instruction
	for i := 0; i < 100; i++ {
		pcs = append(pcs, 0x200, 0x204)
		ins = append(ins, addi, bne)
	}
	pcs = append(pcs, 0x208)
	ins = append(ins, isa.Instruction{Op: isa.HALT})
	driveBranches(p, pcs, ins)
	if p.Branches.Branches != 100 {
		t.Fatalf("branches = %d", p.Branches.Branches)
	}
	if acc := p.Branches.BimodalAccuracy(); acc < 0.95 {
		t.Errorf("bimodal accuracy %.2f on a pure loop; want > 0.95", acc)
	}
}

func TestCycleModel(t *testing.T) {
	p := NewProfiler(nil, nil)
	p.Instr(0, isa.Instruction{Op: isa.ADD})  // 1
	p.Instr(4, isa.Instruction{Op: isa.MUL})  // 2
	p.Instr(8, isa.Instruction{Op: isa.LW})   // 3
	p.Instr(12, isa.Instruction{Op: isa.SW})  // 2
	p.Instr(16, isa.Instruction{Op: isa.JAL}) // 1 + 2 taken penalty
	want := uint64(1 + 2 + 3 + 2 + 1 + 2)
	if p.Cycles != want {
		t.Errorf("Cycles = %d, want %d", p.Cycles, want)
	}
	if cpi := p.CPI(); cpi != float64(want)/5 {
		t.Errorf("CPI = %v", cpi)
	}
}

func TestCycleModelTakenBranchPenalty(t *testing.T) {
	p := NewProfiler(nil, nil)
	bne := isa.Instruction{Op: isa.BNE, Imm: 4}
	nop := isa.Instruction{Op: isa.ADDI}
	// Taken branch: successor pc != pc+4.
	p.Instr(0x100, bne)
	p.Instr(0x114, nop)
	// Not-taken branch.
	p.Instr(0x118, bne)
	p.Instr(0x11C, nop)
	p.Flush()
	// 2 branches (1 each) + 2 nops (1 each) + one taken penalty (2).
	if p.Cycles != 2+2+2 {
		t.Errorf("Cycles = %d, want 6", p.Cycles)
	}
}

func TestCacheBasics(t *testing.T) {
	c, err := NewCache(1024, 16, 2) // 32 sets, 2 ways
	if err != nil {
		t.Fatal(err)
	}
	if c.Sets() != 32 {
		t.Fatalf("Sets = %d", c.Sets())
	}
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("repeat access missed")
	}
	if !c.Access(0x100F) {
		t.Error("same-line access missed")
	}
	if c.Access(0x1010) {
		t.Error("next line hit cold")
	}
	if c.Accesses != 4 || c.Misses != 2 {
		t.Errorf("accesses/misses = %d/%d", c.Accesses, c.Misses)
	}
	if c.MissRate() != 0.5 {
		t.Errorf("MissRate = %v", c.MissRate())
	}
	c.Reset()
	if c.Accesses != 0 || c.Access(0x1000) {
		t.Error("Reset incomplete")
	}
}

func TestCacheLRUWithinSet(t *testing.T) {
	c, err := NewCache(64, 16, 2) // 2 sets, 2 ways
	if err != nil {
		t.Fatal(err)
	}
	// Three lines mapping to set 0 (line addresses multiples of 32).
	a, b, d := uint32(0x000), uint32(0x040), uint32(0x080)
	c.Access(a) // miss, {a}
	c.Access(b) // miss, {b, a}
	c.Access(a) // hit,  {a, b}
	c.Access(d) // miss, evicts b -> {d, a}
	if !c.Access(a) {
		t.Error("a evicted despite being MRU")
	}
	if c.Access(b) {
		t.Error("b survived eviction")
	}
}

func TestCacheDirectMappedConflicts(t *testing.T) {
	c, err := NewCache(256, 16, 1) // 16 sets, direct mapped
	if err != nil {
		t.Fatal(err)
	}
	// Two addresses 256 apart conflict in a direct-mapped 256B cache.
	for i := 0; i < 10; i++ {
		c.Access(0x0)
		c.Access(0x100)
	}
	if c.Misses != 20 {
		t.Errorf("conflict misses = %d, want 20 (thrashing)", c.Misses)
	}
}

func TestCacheValidation(t *testing.T) {
	for _, bad := range [][3]int{
		{0, 16, 1}, {1024, 0, 1}, {1024, 16, 0},
		{1000, 16, 1}, {1024, 15, 1}, {1024, 16, 3},
		{16, 16, 4}, // no sets
	} {
		if _, err := NewCache(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("NewCache(%v) accepted", bad)
		}
	}
}

func TestCacheRandomizedConsistency(t *testing.T) {
	// Property: a fully-associative cache of N lines accessed with a
	// working set <= N lines never misses after warmup.
	c, err := NewCache(16*8, 16, 8) // 1 set, 8 ways
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint32, 8)
	for i := range addrs {
		addrs[i] = rng.Uint32() &^ 15
	}
	for _, a := range addrs {
		c.Access(a)
	}
	warm := c.Misses
	for i := 0; i < 1000; i++ {
		c.Access(addrs[rng.Intn(len(addrs))])
	}
	if c.Misses != warm {
		t.Errorf("working set within capacity missed: %d extra misses", c.Misses-warm)
	}
}

func TestProfilerWithCaches(t *testing.T) {
	ic, _ := NewCache(1024, 16, 2)
	dc, _ := NewCache(1024, 16, 2)
	p := NewProfiler(ic, dc)
	p.Instr(0x100, isa.Instruction{Op: isa.LW})
	p.Mem(0x100, 0x2000, 4, false, vm.RegionData)
	// Load (3) + icache miss (20) + dcache miss (20).
	if p.Cycles != 43 {
		t.Errorf("Cycles = %d, want 43", p.Cycles)
	}
	p.Instr(0x100, isa.Instruction{Op: isa.LW})
	p.Mem(0x100, 0x2000, 4, false, vm.RegionData)
	// Second time both hit: +3 only.
	if p.Cycles != 46 {
		t.Errorf("Cycles = %d, want 46", p.Cycles)
	}
	rep := p.Report()
	for _, frag := range []string{"instruction mix", "icache", "dcache", "CPI"} {
		if !strings.Contains(rep, frag) {
			t.Errorf("Report missing %q:\n%s", frag, rep)
		}
	}
}

func TestZeroValueProfilerUsesDefaults(t *testing.T) {
	var p Profiler
	p.Instr(0, isa.Instruction{Op: isa.ADD})
	if p.Cycles != DefaultCostModel.ALU {
		t.Errorf("zero-value profiler cycles = %d", p.Cycles)
	}
}
