// Package npmodel implements the analytical network-processor system
// model the paper positions its workload statistics as input for ("these
// workload characteristics can also be used in other performance models
// of network processor systems", citing the Franklin-Wolf model, and
// "pipelining vs. multiprocessors", citing Weng-Wolf).
//
// The model estimates the packet throughput of a pool of processing
// engines from exactly the quantities PacketBench measures — per-packet
// instruction counts and memory access counts — plus hardware parameters
// (clock, memory latencies, number of engines, memory channels). It then
// compares the two canonical topologies for scaling an application
// across engines:
//
//   - parallel: every engine runs the whole application on its own
//     packets; aggregate throughput scales with engines until the shared
//     memory channels saturate;
//   - pipeline: the application is partitioned into stages, one engine
//     per stage; throughput is set by the slowest stage plus the
//     inter-stage handoff cost.
//
// The model is deliberately first-order, like its published
// counterparts: it captures who wins and where crossovers fall, not
// cycle-exact numbers.
package npmodel

import (
	"fmt"
	"math"
	"strings"
)

// Workload is the per-packet processing profile of one application, as
// measured by PacketBench (stats.Summary supplies these directly).
type Workload struct {
	// InstrPerPacket is the mean instruction count per packet.
	InstrPerPacket float64
	// PacketAccesses and NonPacketAccesses are the mean data-memory
	// access counts per packet, split the PacketBench way: packet
	// buffers live in fast per-engine memory, application state in
	// shared off-chip memory.
	PacketAccesses    float64
	NonPacketAccesses float64
}

// Hardware parameterizes the simulated system.
type Hardware struct {
	// ClockHz is the engine clock.
	ClockHz float64
	// CPI is the base cycles per instruction of an engine (from a
	// microarch profile, or ~1.5-3 for embedded RISC cores).
	CPI float64
	// PacketMemCycles is the cost of one packet-buffer access (on-chip).
	PacketMemCycles float64
	// SharedMemCycles is the cost of one shared-memory access (off-chip
	// tables).
	SharedMemCycles float64
	// Engines is the number of processing engines.
	Engines int
	// MemChannels is the number of independent shared-memory channels;
	// aggregate shared-memory bandwidth saturates when the engines'
	// combined demand exceeds what the channels serve.
	MemChannels int
	// StageHandoffCycles is the per-stage packet handoff cost in a
	// pipeline topology.
	StageHandoffCycles float64
}

// DefaultHardware is an IXP2400-flavored operating point: 600 MHz
// engines, 8 of them, modest memory costs.
var DefaultHardware = Hardware{
	ClockHz:            600e6,
	CPI:                1.5,
	PacketMemCycles:    1,
	SharedMemCycles:    12,
	Engines:            8,
	MemChannels:        2,
	StageHandoffCycles: 40,
}

// Validate checks the hardware description.
func (h Hardware) Validate() error {
	switch {
	case h.ClockHz <= 0:
		return fmt.Errorf("npmodel: clock must be positive")
	case h.CPI <= 0:
		return fmt.Errorf("npmodel: CPI must be positive")
	case h.Engines < 1:
		return fmt.Errorf("npmodel: need at least one engine")
	case h.MemChannels < 1:
		return fmt.Errorf("npmodel: need at least one memory channel")
	case h.PacketMemCycles < 0 || h.SharedMemCycles < 0 || h.StageHandoffCycles < 0:
		return fmt.Errorf("npmodel: cycle costs cannot be negative")
	}
	return nil
}

// PacketCycles returns the single-engine cycles to process one packet.
func PacketCycles(w Workload, h Hardware) float64 {
	return w.InstrPerPacket*h.CPI +
		w.PacketAccesses*h.PacketMemCycles +
		w.NonPacketAccesses*h.SharedMemCycles
}

// ServiceTime returns the single-engine per-packet processing delay in
// seconds — the quantity the paper's delay-model use case estimates.
func ServiceTime(w Workload, h Hardware) float64 {
	return PacketCycles(w, h) / h.ClockHz
}

// Estimate is a topology throughput prediction.
type Estimate struct {
	// PacketsPerSecond is the aggregate throughput.
	PacketsPerSecond float64
	// Bottleneck names what limits it: "compute", "memory" or "stage".
	Bottleneck string
	// Utilization is the fraction of engine capacity in use at the
	// bottleneck point.
	Utilization float64
}

// Parallel predicts throughput when every engine runs the full
// application ("run-to-completion" pools).
func Parallel(w Workload, h Hardware) (Estimate, error) {
	if err := h.Validate(); err != nil {
		return Estimate{}, err
	}
	perEngine := h.ClockHz / PacketCycles(w, h)
	compute := perEngine * float64(h.Engines)
	// Shared-memory ceiling: each channel serves one access per
	// SharedMemCycles cycles.
	est := Estimate{PacketsPerSecond: compute, Bottleneck: "compute", Utilization: 1}
	if w.NonPacketAccesses > 0 && h.SharedMemCycles > 0 {
		memory := float64(h.MemChannels) * h.ClockHz / (w.NonPacketAccesses * h.SharedMemCycles)
		if memory < compute {
			est.PacketsPerSecond = memory
			est.Bottleneck = "memory"
			est.Utilization = memory / compute
		}
	}
	return est, nil
}

// Pipeline predicts throughput when the application is split into
// `stages` equal-work stages, one engine per stage (stages beyond the
// engine count are rejected). The pipeline rate is set by one stage's
// work plus the handoff cost; stage imbalance is modeled with a simple
// skew factor (1.0 = perfectly balanced).
func Pipeline(w Workload, h Hardware, stages int, skew float64) (Estimate, error) {
	if err := h.Validate(); err != nil {
		return Estimate{}, err
	}
	if stages < 1 || stages > h.Engines {
		return Estimate{}, fmt.Errorf("npmodel: %d stages on %d engines", stages, h.Engines)
	}
	if skew < 1 {
		return Estimate{}, fmt.Errorf("npmodel: skew must be >= 1 (slowest/mean stage work)")
	}
	stageCycles := PacketCycles(w, h)/float64(stages)*skew + h.StageHandoffCycles
	rate := h.ClockHz / stageCycles
	est := Estimate{PacketsPerSecond: rate, Bottleneck: "stage", Utilization: 1}
	// The pipeline serializes each packet's shared-memory accesses too.
	if w.NonPacketAccesses > 0 && h.SharedMemCycles > 0 {
		memory := float64(h.MemChannels) * h.ClockHz / (w.NonPacketAccesses * h.SharedMemCycles)
		if memory < rate {
			est.PacketsPerSecond = memory
			est.Bottleneck = "memory"
			est.Utilization = memory / rate
		}
	}
	return est, nil
}

// Gbps converts a packet rate to line throughput for a mean packet size.
func Gbps(pps float64, meanPacketBytes float64) float64 {
	return pps * meanPacketBytes * 8 / 1e9
}

// Crossover sweeps engine counts and reports the smallest pool size at
// which the parallel topology's throughput stops improving by more than
// epsilon (memory saturation) — the design knee the Weng-Wolf comparison
// looks for. Returns the engine count and the saturated throughput.
func Crossover(w Workload, h Hardware, maxEngines int, epsilon float64) (int, float64, error) {
	if maxEngines < 1 {
		return 0, 0, fmt.Errorf("npmodel: maxEngines must be positive")
	}
	prev := 0.0
	for n := 1; n <= maxEngines; n++ {
		hh := h
		hh.Engines = n
		est, err := Parallel(w, hh)
		if err != nil {
			return 0, 0, err
		}
		if n > 1 && est.PacketsPerSecond-prev <= epsilon*prev {
			return n, est.PacketsPerSecond, nil
		}
		prev = est.PacketsPerSecond
	}
	return maxEngines, prev, nil
}

// CompareTopologies renders a side-by-side parallel-vs-pipeline summary
// for a workload over a range of engine counts.
func CompareTopologies(name string, w Workload, h Hardware, meanPacketBytes float64) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %.0f instr/pkt, %.0f shared accesses/pkt, service time %.2f us\n",
		name, w.InstrPerPacket, w.NonPacketAccesses, ServiceTime(w, h)*1e6)
	fmt.Fprintf(&b, "%8s %26s %26s\n", "engines", "parallel", "pipeline (balanced)")
	for _, n := range []int{1, 2, 4, 8, 16} {
		if n > h.Engines {
			break
		}
		hh := h
		hh.Engines = n
		par, err := Parallel(w, hh)
		if err != nil {
			return "", err
		}
		pipe, err := Pipeline(w, hh, n, 1.0)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%8d %14.2f Mpps (%s) %14.2f Mpps (%s)\n",
			n, par.PacketsPerSecond/1e6, shortBottleneck(par),
			pipe.PacketsPerSecond/1e6, shortBottleneck(pipe))
	}
	knee, sat, err := Crossover(w, h, 64, 0.01)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "parallel scaling saturates at ~%d engines (%.2f Mpps, %.2f Gbps at %gB packets)\n",
		knee, sat/1e6, Gbps(sat, meanPacketBytes), meanPacketBytes)
	return b.String(), nil
}

func shortBottleneck(e Estimate) string {
	if math.IsNaN(e.PacketsPerSecond) {
		return "?"
	}
	return e.Bottleneck[:3]
}
