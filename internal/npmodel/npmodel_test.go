package npmodel

import (
	"math"
	"strings"
	"testing"
)

// radixLike is an IPv4-radix-shaped workload (heavy shared-memory use).
var radixLike = Workload{InstrPerPacket: 700, PacketAccesses: 34, NonPacketAccesses: 180}

// flowLike is a Flow-Classification-shaped workload (light).
var flowLike = Workload{InstrPerPacket: 80, PacketAccesses: 14, NonPacketAccesses: 13}

func TestPacketCyclesAndServiceTime(t *testing.T) {
	h := Hardware{ClockHz: 1e9, CPI: 2, PacketMemCycles: 1, SharedMemCycles: 10,
		Engines: 1, MemChannels: 1}
	w := Workload{InstrPerPacket: 100, PacketAccesses: 10, NonPacketAccesses: 5}
	want := 100*2.0 + 10*1.0 + 5*10.0 // 260 cycles
	if got := PacketCycles(w, h); got != want {
		t.Errorf("PacketCycles = %v, want %v", got, want)
	}
	if got := ServiceTime(w, h); math.Abs(got-260e-9) > 1e-15 {
		t.Errorf("ServiceTime = %v, want 260ns", got)
	}
}

func TestParallelComputeBound(t *testing.T) {
	h := DefaultHardware
	h.MemChannels = 64 // memory never the bottleneck
	one := h
	one.Engines = 1
	e1, err := Parallel(flowLike, one)
	if err != nil {
		t.Fatal(err)
	}
	e8, err := Parallel(flowLike, h)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Bottleneck != "compute" || e8.Bottleneck != "compute" {
		t.Errorf("bottlenecks: %s, %s", e1.Bottleneck, e8.Bottleneck)
	}
	// Compute-bound throughput scales linearly with engines.
	if ratio := e8.PacketsPerSecond / e1.PacketsPerSecond; math.Abs(ratio-8) > 1e-9 {
		t.Errorf("8-engine speedup = %v, want 8", ratio)
	}
}

func TestParallelMemoryBound(t *testing.T) {
	h := DefaultHardware
	h.Engines = 32
	h.MemChannels = 1
	est, err := Parallel(radixLike, h)
	if err != nil {
		t.Fatal(err)
	}
	if est.Bottleneck != "memory" {
		t.Fatalf("32 radix engines on one channel should be memory bound, got %s", est.Bottleneck)
	}
	// The saturated rate equals the channel capacity.
	want := float64(h.MemChannels) * h.ClockHz / (radixLike.NonPacketAccesses * h.SharedMemCycles)
	if math.Abs(est.PacketsPerSecond-want) > 1e-6 {
		t.Errorf("saturated rate = %v, want %v", est.PacketsPerSecond, want)
	}
	if est.Utilization >= 1 {
		t.Errorf("utilization = %v at memory saturation", est.Utilization)
	}
	// Doubling the channels doubles the saturated throughput.
	h2 := h
	h2.MemChannels = 2
	est2, _ := Parallel(radixLike, h2)
	if math.Abs(est2.PacketsPerSecond/est.PacketsPerSecond-2) > 1e-9 {
		t.Errorf("channel scaling wrong: %v", est2.PacketsPerSecond/est.PacketsPerSecond)
	}
}

func TestPipelineBasics(t *testing.T) {
	h := DefaultHardware
	h.MemChannels = 64
	// One stage with zero handoff equals a single parallel engine.
	h1 := h
	h1.Engines = 1
	h1.StageHandoffCycles = 0
	pipe, err := Pipeline(flowLike, h1, 1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	par, _ := Parallel(flowLike, h1)
	if math.Abs(pipe.PacketsPerSecond-par.PacketsPerSecond) > 1e-6 {
		t.Errorf("1-stage pipeline %v != 1 engine %v", pipe.PacketsPerSecond, par.PacketsPerSecond)
	}
	// More stages raise throughput, but handoff costs bound the gain.
	h.Engines = 8
	p2, _ := Pipeline(radixLike, h, 2, 1.0)
	p8, _ := Pipeline(radixLike, h, 8, 1.0)
	if p8.PacketsPerSecond <= p2.PacketsPerSecond {
		t.Errorf("deeper pipeline slower: %v vs %v", p8.PacketsPerSecond, p2.PacketsPerSecond)
	}
	speedup := p8.PacketsPerSecond / p2.PacketsPerSecond
	if speedup >= 4 {
		t.Errorf("pipeline speedup %v ignores handoff overhead", speedup)
	}
	// Skew hurts.
	skewed, _ := Pipeline(radixLike, h, 8, 1.5)
	if skewed.PacketsPerSecond >= p8.PacketsPerSecond {
		t.Error("stage skew did not reduce throughput")
	}
}

func TestPipelineValidation(t *testing.T) {
	h := DefaultHardware
	if _, err := Pipeline(flowLike, h, 0, 1); err == nil {
		t.Error("0 stages accepted")
	}
	if _, err := Pipeline(flowLike, h, h.Engines+1, 1); err == nil {
		t.Error("more stages than engines accepted")
	}
	if _, err := Pipeline(flowLike, h, 2, 0.5); err == nil {
		t.Error("skew < 1 accepted")
	}
}

func TestHardwareValidation(t *testing.T) {
	bads := []Hardware{
		{},
		{ClockHz: 1e9},
		{ClockHz: 1e9, CPI: 1},
		{ClockHz: 1e9, CPI: 1, Engines: 1},
		{ClockHz: 1e9, CPI: 1, Engines: 1, MemChannels: 1, SharedMemCycles: -1},
	}
	for i, h := range bads {
		if err := h.Validate(); err == nil {
			t.Errorf("hardware %d accepted: %+v", i, h)
		}
	}
	if err := DefaultHardware.Validate(); err != nil {
		t.Errorf("default hardware invalid: %v", err)
	}
	if _, err := Parallel(flowLike, Hardware{}); err == nil {
		t.Error("Parallel accepted invalid hardware")
	}
}

func TestCrossoverFindsMemoryKnee(t *testing.T) {
	h := DefaultHardware
	h.MemChannels = 1
	knee, sat, err := Crossover(radixLike, h, 64, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if knee <= 1 || knee >= 64 {
		t.Errorf("knee = %d; expected an interior saturation point", knee)
	}
	// The knee must coincide with where parallel throughput goes flat.
	hBefore, hAfter := h, h
	hBefore.Engines = knee
	hAfter.Engines = knee * 2
	before, _ := Parallel(radixLike, hBefore)
	after, _ := Parallel(radixLike, hAfter)
	if after.PacketsPerSecond > before.PacketsPerSecond*1.05 {
		t.Errorf("throughput still rising past the knee: %v -> %v",
			before.PacketsPerSecond, after.PacketsPerSecond)
	}
	if sat <= 0 {
		t.Error("saturated throughput not positive")
	}
	// A light workload with ample channels never saturates within range.
	h2 := DefaultHardware
	h2.MemChannels = 16
	knee2, _, err := Crossover(flowLike, h2, 16, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if knee2 != 16 {
		t.Errorf("light workload saturated at %d engines", knee2)
	}
	if _, _, err := Crossover(flowLike, h2, 0, 0.01); err == nil {
		t.Error("maxEngines 0 accepted")
	}
}

func TestGbps(t *testing.T) {
	// 1 Mpps of 500-byte packets = 4 Gbps.
	if got := Gbps(1e6, 500); math.Abs(got-4) > 1e-9 {
		t.Errorf("Gbps = %v, want 4", got)
	}
}

func TestCompareTopologiesOutput(t *testing.T) {
	out, err := CompareTopologies("IPv4-radix", radixLike, DefaultHardware, 500)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"IPv4-radix", "engines", "parallel", "pipeline", "saturates", "Mpps"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

// TestWorkloadShapeDrivesDesign ties the model to the paper's point:
// the workload profile sets the achievable system throughput. The light
// flow-classification workload sustains an order of magnitude more
// packets per second than radix forwarding on the same hardware, and
// radix's memory saturation ceiling sits far below flow's.
func TestWorkloadShapeDrivesDesign(t *testing.T) {
	h := DefaultHardware
	h.MemChannels = 1
	_, radixSat, err := Crossover(radixLike, h, 64, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	_, flowSat, err := Crossover(flowLike, h, 64, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if flowSat < 5*radixSat {
		t.Errorf("flow saturates at %.2f Mpps, radix at %.2f; expected flow >> radix",
			flowSat/1e6, radixSat/1e6)
	}
}
