package packet

import (
	"encoding/binary"
	"fmt"
)

// FragmentIPv4 splits an IPv4 packet into fragments that fit mtu, per
// RFC 791: every fragment except the last carries a payload that is a
// multiple of 8 bytes, fragment offsets accumulate on top of the
// original offset, and the more-fragments flag is set on all fragments
// but the last (which inherits the original packet's MF bit, so
// fragmenting an already-fragmented packet composes correctly).
//
// It is the native reference for the FRAG application. The returned
// slices are complete packets (header + payload) with valid checksums.
// Packets that already fit are returned unchanged as a single "fragment".
// Packets with the don't-fragment flag set that need fragmenting yield
// an error (a router would drop them and emit ICMP "fragmentation
// needed").
func FragmentIPv4(pkt []byte, mtu int) ([][]byte, error) {
	h, err := ParseIPv4(pkt)
	if err != nil {
		return nil, err
	}
	if int(h.TotalLen) > len(pkt) {
		return nil, fmt.Errorf("packet: truncated packet: total length %d, have %d", h.TotalLen, len(pkt))
	}
	hlen := h.HeaderLen()
	if mtu < hlen+8 {
		return nil, fmt.Errorf("packet: MTU %d cannot carry any payload", mtu)
	}
	if int(h.TotalLen) <= mtu {
		return [][]byte{pkt[:h.TotalLen]}, nil
	}
	const dfFlag = 0x2
	if h.Flags&dfFlag != 0 {
		return nil, fmt.Errorf("packet: don't-fragment set on %d-byte packet over MTU %d", h.TotalLen, mtu)
	}
	chunk := (mtu - hlen) &^ 7
	payload := pkt[hlen:h.TotalLen]
	origMF := h.Flags & 0x1

	var frags [][]byte
	for off := 0; off < len(payload); off += chunk {
		n := chunk
		last := false
		if off+n >= len(payload) {
			n = len(payload) - off
			last = true
		}
		fh := *h
		fh.Options = h.Options // header copied verbatim, options included
		fh.TotalLen = uint16(hlen + n)
		fh.FragOff = h.FragOff + uint16(off/8)
		fh.Flags = h.Flags | 0x1 // more fragments
		if last {
			fh.Flags = h.Flags&^0x1 | origMF
		}
		buf := make([]byte, hlen+n)
		fh.MarshalInto(buf)
		copy(buf[hlen:], payload[off:off+n])
		frags = append(frags, buf)
	}
	return frags, nil
}

// ReassembleIPv4 merges fragments produced by FragmentIPv4 back into the
// original packet (fragments must belong to one packet and cover it
// completely; they may arrive in any order). It exists to round-trip
// test fragmentation.
func ReassembleIPv4(frags [][]byte) ([]byte, error) {
	if len(frags) == 0 {
		return nil, fmt.Errorf("packet: no fragments")
	}
	var first *IPv4Header
	var total int
	parts := make(map[uint16][]byte) // offset (8-byte units) -> payload
	var lastSeen bool
	var origMF uint8
	var baseOff uint16 = 0xFFFF
	for _, f := range frags {
		h, err := ParseIPv4(f)
		if err != nil {
			return nil, err
		}
		if int(h.TotalLen) > len(f) {
			return nil, fmt.Errorf("packet: fragment truncated")
		}
		if first == nil {
			first = h
		} else if h.ID != first.ID || h.Src != first.Src || h.Dst != first.Dst || h.Protocol != first.Protocol {
			return nil, fmt.Errorf("packet: fragments from different packets")
		}
		if h.FragOff < baseOff {
			baseOff = h.FragOff
		}
		payload := f[h.HeaderLen():h.TotalLen]
		parts[h.FragOff] = payload
		total += len(payload)
		if h.Flags&0x1 == 0 {
			lastSeen = true
			origMF = 0
		}
	}
	if !lastSeen {
		return nil, fmt.Errorf("packet: final fragment missing")
	}
	hlen := first.HeaderLen()
	out := make([]byte, hlen+total)
	// Stitch payloads by offset.
	covered := 0
	for off, p := range parts {
		start := int(off-baseOff) * 8
		if start+len(p) > total {
			return nil, fmt.Errorf("packet: fragment overruns reassembly")
		}
		copy(out[hlen+start:], p)
		covered += len(p)
	}
	if covered != total {
		return nil, fmt.Errorf("packet: fragments overlap")
	}
	rh := *first
	rh.TotalLen = uint16(hlen + total)
	rh.FragOff = baseOff
	rh.Flags = rh.Flags&^0x1 | origMF
	rh.MarshalInto(out)
	return out, nil
}

// dfBit reports whether the serialized header has don't-fragment set
// (helper for tests).
func dfBit(b []byte) bool { return binary.BigEndian.Uint16(b[6:])&0x4000 != 0 }
