package packet

import (
	"bytes"
	"math/rand"
	"testing"
)

func bigPacket(t *testing.T, payload int, flags uint8, fragOff uint16) []byte {
	t.Helper()
	h := IPv4Header{Version: 4, IHL: 5, TTL: 64, Protocol: ProtoUDP,
		ID: 0x1234, Src: 1, Dst: 2, Flags: flags, FragOff: fragOff,
		TotalLen: uint16(IPv4HeaderLen + payload)}
	b := make([]byte, h.TotalLen)
	rng := rand.New(rand.NewSource(int64(payload)))
	for i := IPv4HeaderLen; i < len(b); i++ {
		b[i] = byte(rng.Intn(256))
	}
	h.MarshalInto(b)
	return b
}

func TestFragmentFits(t *testing.T) {
	p := bigPacket(t, 100, 0, 0)
	frags, err := FragmentIPv4(p, 576)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 || !bytes.Equal(frags[0], p) {
		t.Errorf("fitting packet was modified")
	}
}

func TestFragmentBasicProperties(t *testing.T) {
	p := bigPacket(t, 1400, 0, 0)
	const mtu = 576
	frags, err := FragmentIPv4(p, mtu)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 3 {
		t.Fatalf("1420B over MTU 576 gave %d fragments", len(frags))
	}
	chunk := (mtu - 20) &^ 7
	total := 0
	for i, f := range frags {
		h, err := ParseIPv4(f)
		if err != nil {
			t.Fatalf("fragment %d: %v", i, err)
		}
		if len(f) > mtu {
			t.Errorf("fragment %d is %d bytes, over MTU", i, len(f))
		}
		if !VerifyChecksum(f[:20]) {
			t.Errorf("fragment %d checksum invalid", i)
		}
		last := i == len(frags)-1
		if (h.Flags&0x1 == 0) != last {
			t.Errorf("fragment %d MF flag wrong", i)
		}
		if int(h.FragOff) != i*chunk/8 {
			t.Errorf("fragment %d offset %d, want %d", i, h.FragOff, i*chunk/8)
		}
		payload := len(f) - 20
		if !last && payload != chunk {
			t.Errorf("fragment %d payload %d, want %d", i, payload, chunk)
		}
		if !last && payload%8 != 0 {
			t.Errorf("fragment %d payload not a multiple of 8", i)
		}
		total += payload
		if dfBit(f) {
			t.Errorf("fragment %d has DF set", i)
		}
	}
	if total != 1400 {
		t.Errorf("fragments carry %d payload bytes, want 1400", total)
	}
}

func TestFragmentReassembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		payload := 9 + rng.Intn(3000)
		mtu := 68 + rng.Intn(1400)
		p := bigPacket(t, payload, 0, 0)
		frags, err := FragmentIPv4(p, mtu)
		if err != nil {
			t.Fatal(err)
		}
		// Shuffle fragment order before reassembly.
		rng.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
		got, err := ReassembleIPv4(frags)
		if err != nil {
			t.Fatalf("trial %d (payload %d, mtu %d): %v", trial, payload, mtu, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("trial %d: reassembly differs from original", trial)
		}
	}
}

func TestFragmentAlreadyFragmented(t *testing.T) {
	// Fragmenting a middle fragment (MF set, offset 100) keeps MF on the
	// last piece and offsets accumulate.
	p := bigPacket(t, 800, 0x1, 100)
	frags, err := FragmentIPv4(p, 576)
	if err != nil {
		t.Fatal(err)
	}
	lastH, _ := ParseIPv4(frags[len(frags)-1])
	if lastH.Flags&0x1 != 1 {
		t.Error("original MF lost on last fragment")
	}
	firstH, _ := ParseIPv4(frags[0])
	if firstH.FragOff != 100 {
		t.Errorf("first fragment offset %d, want 100", firstH.FragOff)
	}
}

func TestFragmentDF(t *testing.T) {
	p := bigPacket(t, 1400, 0x2, 0)
	if _, err := FragmentIPv4(p, 576); err == nil {
		t.Error("DF packet fragmented")
	}
	// DF packet that fits is fine.
	small := bigPacket(t, 100, 0x2, 0)
	if _, err := FragmentIPv4(small, 576); err != nil {
		t.Errorf("fitting DF packet rejected: %v", err)
	}
}

func TestFragmentErrors(t *testing.T) {
	if _, err := FragmentIPv4([]byte{1, 2}, 576); err == nil {
		t.Error("garbage accepted")
	}
	p := bigPacket(t, 100, 0, 0)
	if _, err := FragmentIPv4(p, 20); err == nil {
		t.Error("MTU below header+8 accepted")
	}
	if _, err := ReassembleIPv4(nil); err == nil {
		t.Error("empty reassembly accepted")
	}
	// Missing last fragment.
	frags, _ := FragmentIPv4(bigPacket(t, 1400, 0, 0), 576)
	if _, err := ReassembleIPv4(frags[:len(frags)-1]); err == nil {
		t.Error("incomplete reassembly accepted")
	}
}
