package packet

import "testing"

// FuzzParseIPv4 checks the header parser never panics and that
// marshaling a parsed header round-trips its wire representation.
func FuzzParseIPv4(f *testing.F) {
	h := IPv4Header{Version: 4, IHL: 5, TTL: 64, Protocol: ProtoTCP,
		Src: 0x0A000001, Dst: 0xC0A80101, TotalLen: 40}
	f.Add(h.Marshal())
	opt := IPv4Header{Version: 4, IHL: 6, TTL: 1, Protocol: ProtoUDP,
		TotalLen: 28, Options: []byte{1, 1, 1, 0}}
	f.Add(opt.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0x45})
	f.Add(make([]byte, 19))
	f.Add(make([]byte, 60))

	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := ParseIPv4(b)
		if err != nil {
			return
		}
		// Round trip: marshaling the parsed header reproduces the header
		// bytes (with a correct checksum in place of the original).
		out := h.Marshal()
		if len(out) != h.HeaderLen() {
			t.Fatalf("marshal length %d != header length %d", len(out), h.HeaderLen())
		}
		reparsed, err := ParseIPv4(out)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if reparsed.Src != h.Src || reparsed.Dst != h.Dst ||
			reparsed.TTL != h.TTL || reparsed.IHL != h.IHL {
			t.Fatalf("round trip mutated header: %+v vs %+v", reparsed, h)
		}
		if !VerifyChecksum(out) {
			t.Fatal("marshal produced invalid checksum")
		}
		// The 5-tuple extractor must tolerate anything that parses.
		_, _ = ExtractFiveTuple(b)
	})
}
