// Package packet provides parsing, serialization and checksumming for the
// IPv4, TCP, UDP and ICMP headers that PacketBench applications process.
//
// PacketBench applications receive a pointer to the layer-3 header, exactly
// as the paper's API specifies ("the packet processing function has access
// to the contents of the packet from the layer 3 header onwards"). This
// package is the host-side view of those same bytes: the trace readers and
// generators use it to build and validate packets, and the differential
// tests use it to check that simulated applications transform headers the
// same way the native implementations do.
//
// All multi-byte header fields are big endian (network byte order), as on
// the wire.
package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Protocol numbers from the IANA assigned-numbers registry, as found in
// the IPv4 Protocol field.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// IPv4HeaderLen is the length of an IPv4 header without options.
const IPv4HeaderLen = 20

// TCPHeaderLen is the length of a TCP header without options.
const TCPHeaderLen = 20

// UDPHeaderLen is the length of a UDP header.
const UDPHeaderLen = 8

// IPv4Header is a parsed IPv4 header. Only the fields relevant to header
// processing applications are modeled; options are preserved as raw bytes.
type IPv4Header struct {
	Version  uint8 // always 4 after a successful parse
	IHL      uint8 // header length in 32-bit words (5 when no options)
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8  // 3 bits
	FragOff  uint16 // 13 bits, in 8-byte units
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src      uint32 // host-order numeric value of the big-endian address
	Dst      uint32
	Options  []byte // raw option bytes, nil when IHL == 5
}

// V4Addr converts a host-order 32-bit address (as stored in IPv4Header) to
// a netip.Addr for display.
func V4Addr(a uint32) netip.Addr {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], a)
	return netip.AddrFrom4(b)
}

// AddrValue converts a netip IPv4 address to the host-order 32-bit value
// used throughout this module.
func AddrValue(a netip.Addr) uint32 {
	b := a.As4()
	return binary.BigEndian.Uint32(b[:])
}

// ParseIPv4 parses the IPv4 header at the front of b.
func ParseIPv4(b []byte) (*IPv4Header, error) {
	if len(b) < IPv4HeaderLen {
		return nil, fmt.Errorf("packet: IPv4 header truncated: %d bytes", len(b))
	}
	h := &IPv4Header{
		Version:  b[0] >> 4,
		IHL:      b[0] & 0xF,
		TOS:      b[1],
		TotalLen: binary.BigEndian.Uint16(b[2:]),
		ID:       binary.BigEndian.Uint16(b[4:]),
		Flags:    b[6] >> 5,
		FragOff:  binary.BigEndian.Uint16(b[6:]) & 0x1FFF,
		TTL:      b[8],
		Protocol: b[9],
		Checksum: binary.BigEndian.Uint16(b[10:]),
		Src:      binary.BigEndian.Uint32(b[12:]),
		Dst:      binary.BigEndian.Uint32(b[16:]),
	}
	if h.Version != 4 {
		return nil, fmt.Errorf("packet: not IPv4: version %d", h.Version)
	}
	if h.IHL < 5 {
		return nil, fmt.Errorf("packet: bad IHL %d", h.IHL)
	}
	hlen := int(h.IHL) * 4
	if len(b) < hlen {
		return nil, fmt.Errorf("packet: header with options truncated: have %d, need %d", len(b), hlen)
	}
	if h.IHL > 5 {
		h.Options = append([]byte(nil), b[IPv4HeaderLen:hlen]...)
	}
	return h, nil
}

// HeaderLen returns the header length in bytes.
func (h *IPv4Header) HeaderLen() int { return int(h.IHL) * 4 }

// Marshal serializes the header (with a freshly computed checksum) into a
// new slice of HeaderLen bytes.
func (h *IPv4Header) Marshal() []byte {
	b := make([]byte, h.HeaderLen())
	h.MarshalInto(b)
	return b
}

// MarshalInto serializes the header into b, which must be at least
// HeaderLen bytes, and recomputes the checksum field.
func (h *IPv4Header) MarshalInto(b []byte) {
	b[0] = h.Version<<4 | h.IHL
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:], h.ID)
	binary.BigEndian.PutUint16(b[6:], uint16(h.Flags)<<13|h.FragOff)
	b[8] = h.TTL
	b[9] = h.Protocol
	b[10], b[11] = 0, 0
	binary.BigEndian.PutUint32(b[12:], h.Src)
	binary.BigEndian.PutUint32(b[16:], h.Dst)
	copy(b[IPv4HeaderLen:], h.Options)
	cs := Checksum(b[:h.HeaderLen()])
	binary.BigEndian.PutUint16(b[10:], cs)
	h.Checksum = cs
}

// Checksum computes the Internet checksum (RFC 1071) over b: the one's
// complement of the one's-complement sum of the 16-bit big-endian words,
// padding a trailing odd byte with zero.
func Checksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// VerifyChecksum reports whether the IPv4 header bytes carry a valid
// checksum (the folded sum over the header including the checksum field is
// 0xFFFF, i.e. Checksum over it is zero).
func VerifyChecksum(header []byte) bool {
	return Checksum(header) == 0
}

// UpdateChecksumTTLDecrement applies the RFC 1624 incremental checksum
// update for a TTL decrement by one, given the old checksum. This is the
// arithmetic forwarding applications perform instead of recomputing the
// full header sum.
//
// HC' = ~(~HC + ~m + m') where m is the old 16-bit word containing the TTL
// and m' the new one. Since TTL is the high byte of word 4, m - m' =
// 0x0100.
func UpdateChecksumTTLDecrement(old uint16, oldTTL uint8) uint16 {
	oldWord := uint16(oldTTL) << 8
	newWord := uint16(oldTTL-1) << 8
	sum := uint32(^old) + uint32(^oldWord&0xFFFF) + uint32(newWord)
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// FiveTuple is the flow key used by classification applications.
type FiveTuple struct {
	Src, Dst         uint32
	SrcPort, DstPort uint16
	Protocol         uint8
}

// String formats the tuple for diagnostics.
func (ft FiveTuple) String() string {
	return fmt.Sprintf("%s:%d -> %s:%d proto %d",
		V4Addr(ft.Src), ft.SrcPort, V4Addr(ft.Dst), ft.DstPort, ft.Protocol)
}

// ExtractFiveTuple pulls the 5-tuple from a packet starting at the IPv4
// header. For protocols without ports (e.g. ICMP) the ports are zero, as
// is conventional for flow classifiers.
func ExtractFiveTuple(b []byte) (FiveTuple, error) {
	h, err := ParseIPv4(b)
	if err != nil {
		return FiveTuple{}, err
	}
	ft := FiveTuple{Src: h.Src, Dst: h.Dst, Protocol: h.Protocol}
	if h.Protocol == ProtoTCP || h.Protocol == ProtoUDP {
		l4 := b[h.HeaderLen():]
		if len(l4) >= 4 {
			ft.SrcPort = binary.BigEndian.Uint16(l4)
			ft.DstPort = binary.BigEndian.Uint16(l4[2:])
		}
	}
	return ft, nil
}

// TCPHeader is the subset of TCP fields used by header-processing
// applications.
type TCPHeader struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOff          uint8 // header length in 32-bit words
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Urgent           uint16
}

// ParseTCP parses a TCP header.
func ParseTCP(b []byte) (*TCPHeader, error) {
	if len(b) < TCPHeaderLen {
		return nil, fmt.Errorf("packet: TCP header truncated: %d bytes", len(b))
	}
	return &TCPHeader{
		SrcPort:  binary.BigEndian.Uint16(b),
		DstPort:  binary.BigEndian.Uint16(b[2:]),
		Seq:      binary.BigEndian.Uint32(b[4:]),
		Ack:      binary.BigEndian.Uint32(b[8:]),
		DataOff:  b[12] >> 4,
		Flags:    b[13],
		Window:   binary.BigEndian.Uint16(b[14:]),
		Checksum: binary.BigEndian.Uint16(b[16:]),
		Urgent:   binary.BigEndian.Uint16(b[18:]),
	}, nil
}

// MarshalInto serializes the TCP header into b (at least TCPHeaderLen
// bytes). The checksum field is written as stored; TCP checksums require a
// pseudo-header and are not recomputed here.
func (h *TCPHeader) MarshalInto(b []byte) {
	binary.BigEndian.PutUint16(b, h.SrcPort)
	binary.BigEndian.PutUint16(b[2:], h.DstPort)
	binary.BigEndian.PutUint32(b[4:], h.Seq)
	binary.BigEndian.PutUint32(b[8:], h.Ack)
	b[12] = h.DataOff << 4
	b[13] = h.Flags
	binary.BigEndian.PutUint16(b[14:], h.Window)
	binary.BigEndian.PutUint16(b[16:], h.Checksum)
	binary.BigEndian.PutUint16(b[18:], h.Urgent)
}

// UDPHeader is a parsed UDP header.
type UDPHeader struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// ParseUDP parses a UDP header.
func ParseUDP(b []byte) (*UDPHeader, error) {
	if len(b) < UDPHeaderLen {
		return nil, fmt.Errorf("packet: UDP header truncated: %d bytes", len(b))
	}
	return &UDPHeader{
		SrcPort:  binary.BigEndian.Uint16(b),
		DstPort:  binary.BigEndian.Uint16(b[2:]),
		Length:   binary.BigEndian.Uint16(b[4:]),
		Checksum: binary.BigEndian.Uint16(b[6:]),
	}, nil
}

// MarshalInto serializes the UDP header into b (at least UDPHeaderLen
// bytes).
func (h *UDPHeader) MarshalInto(b []byte) {
	binary.BigEndian.PutUint16(b, h.SrcPort)
	binary.BigEndian.PutUint16(b[2:], h.DstPort)
	binary.BigEndian.PutUint16(b[4:], h.Length)
	binary.BigEndian.PutUint16(b[6:], h.Checksum)
}
