package packet

import (
	"encoding/binary"
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

// buildRaw constructs a valid serialized IPv4+TCP packet for tests.
func buildRaw(src, dst uint32, srcPort, dstPort uint16, proto uint8, payload int) []byte {
	h := IPv4Header{
		Version: 4, IHL: 5, TTL: 64, Protocol: proto,
		Src: src, Dst: dst,
	}
	l4len := 0
	switch proto {
	case ProtoTCP:
		l4len = TCPHeaderLen
	case ProtoUDP:
		l4len = UDPHeaderLen
	}
	h.TotalLen = uint16(IPv4HeaderLen + l4len + payload)
	b := make([]byte, h.TotalLen)
	h.MarshalInto(b)
	switch proto {
	case ProtoTCP:
		t := TCPHeader{SrcPort: srcPort, DstPort: dstPort, DataOff: 5}
		t.MarshalInto(b[IPv4HeaderLen:])
	case ProtoUDP:
		u := UDPHeader{SrcPort: srcPort, DstPort: dstPort, Length: uint16(UDPHeaderLen + payload)}
		u.MarshalInto(b[IPv4HeaderLen:])
	}
	return b
}

func TestParseIPv4RoundTrip(t *testing.T) {
	h := IPv4Header{
		Version: 4, IHL: 5, TOS: 0x10, TotalLen: 84, ID: 0x1234,
		Flags: 2, FragOff: 0, TTL: 63, Protocol: ProtoTCP,
		Src: 0x0A000001, Dst: 0xC0A80101,
	}
	b := h.Marshal()
	got, err := ParseIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != h.Src || got.Dst != h.Dst || got.TTL != 63 ||
		got.Protocol != ProtoTCP || got.TotalLen != 84 || got.ID != 0x1234 ||
		got.TOS != 0x10 || got.Flags != 2 {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if !VerifyChecksum(b) {
		t.Error("marshaled header fails checksum verification")
	}
}

func TestParseIPv4RoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		h := IPv4Header{
			Version: 4, IHL: 5,
			TOS:      uint8(rng.Intn(256)),
			TotalLen: uint16(20 + rng.Intn(1480)),
			ID:       uint16(rng.Intn(65536)),
			Flags:    uint8(rng.Intn(8)),
			FragOff:  uint16(rng.Intn(1 << 13)),
			TTL:      uint8(rng.Intn(256)),
			Protocol: uint8(rng.Intn(256)),
			Src:      rng.Uint32(),
			Dst:      rng.Uint32(),
		}
		b := h.Marshal()
		got, err := ParseIPv4(b)
		if err != nil {
			t.Fatalf("parse of marshaled header: %v (%+v)", err, h)
		}
		h.Checksum = got.Checksum // Marshal computes it; compare the rest
		if got.Src != h.Src || got.Dst != h.Dst || got.TTL != h.TTL ||
			got.Protocol != h.Protocol || got.TotalLen != h.TotalLen ||
			got.ID != h.ID || got.TOS != h.TOS || got.Flags != h.Flags ||
			got.FragOff != h.FragOff || got.IHL != h.IHL {
			t.Fatalf("round trip: marshaled %+v, parsed %+v", h, *got)
		}
		if !VerifyChecksum(b) {
			t.Fatalf("checksum invalid after marshal: %+v", h)
		}
	}
}

func TestParseIPv4WithOptions(t *testing.T) {
	h := IPv4Header{
		Version: 4, IHL: 7, TTL: 4, Protocol: ProtoUDP,
		Src: 1, Dst: 2, TotalLen: 28 + 8,
		Options: []byte{1, 1, 1, 1, 1, 1, 1, 1}, // two words of NOP options
	}
	b := h.Marshal()
	if len(b) != 28 {
		t.Fatalf("header length = %d, want 28", len(b))
	}
	got, err := ParseIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.HeaderLen() != 28 || len(got.Options) != 8 {
		t.Errorf("options lost: %+v", got)
	}
	if !VerifyChecksum(b) {
		t.Error("checksum over options invalid")
	}
}

func TestParseIPv4Errors(t *testing.T) {
	cases := []struct {
		name string
		b    []byte
		frag string
	}{
		{"short", make([]byte, 19), "truncated"},
		{"version", append([]byte{0x65}, make([]byte, 19)...), "not IPv4"},
		{"bad ihl", append([]byte{0x44}, make([]byte, 19)...), "bad IHL"},
		{"options truncated", append([]byte{0x46}, make([]byte, 19)...), "options truncated"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseIPv4(c.b)
			if err == nil || !strings.Contains(err.Error(), c.frag) {
				t.Errorf("ParseIPv4 = %v, want error containing %q", err, c.frag)
			}
		})
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// The classic example from RFC 1071 materials: a header whose checksum
	// computes to 0xB861.
	b := []byte{
		0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00,
		0x40, 0x11, 0x00, 0x00, 0xC0, 0xA8, 0x00, 0x01,
		0xC0, 0xA8, 0x00, 0xC7,
	}
	if got := Checksum(b); got != 0xB861 {
		t.Errorf("Checksum = %#04x, want 0xB861", got)
	}
	binary.BigEndian.PutUint16(b[10:], 0xB861)
	if !VerifyChecksum(b) {
		t.Error("known-good header fails verification")
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd-length buffers pad the final byte on the right (high bits).
	even := Checksum([]byte{0x12, 0x34, 0x56, 0x00})
	odd := Checksum([]byte{0x12, 0x34, 0x56})
	if even != odd {
		t.Errorf("odd-length padding wrong: %#x vs %#x", odd, even)
	}
}

func TestIncrementalTTLUpdateMatchesRecompute(t *testing.T) {
	// Property: decrementing TTL and applying RFC1624 yields the same
	// checksum as zeroing and recomputing.
	f := func(src, dst uint32, ttl uint8, id uint16) bool {
		if ttl == 0 {
			ttl = 1
		}
		h := IPv4Header{Version: 4, IHL: 5, TTL: ttl, ID: id,
			Protocol: ProtoTCP, Src: src, Dst: dst, TotalLen: 40}
		b := h.Marshal()
		old := binary.BigEndian.Uint16(b[10:])

		incr := UpdateChecksumTTLDecrement(old, ttl)

		h2 := h
		h2.TTL = ttl - 1
		want := binary.BigEndian.Uint16(h2.Marshal()[10:])
		return incr == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestExtractFiveTupleTCP(t *testing.T) {
	b := buildRaw(0x0A000001, 0x0A000002, 1234, 80, ProtoTCP, 10)
	ft, err := ExtractFiveTuple(b)
	if err != nil {
		t.Fatal(err)
	}
	want := FiveTuple{Src: 0x0A000001, Dst: 0x0A000002, SrcPort: 1234, DstPort: 80, Protocol: ProtoTCP}
	if ft != want {
		t.Errorf("five tuple = %+v, want %+v", ft, want)
	}
}

func TestExtractFiveTupleUDPAndICMP(t *testing.T) {
	b := buildRaw(1, 2, 53, 5353, ProtoUDP, 0)
	ft, err := ExtractFiveTuple(b)
	if err != nil {
		t.Fatal(err)
	}
	if ft.SrcPort != 53 || ft.DstPort != 5353 || ft.Protocol != ProtoUDP {
		t.Errorf("udp tuple = %+v", ft)
	}
	// ICMP has no ports.
	b = buildRaw(1, 2, 0, 0, ProtoICMP, 8)
	ft, err = ExtractFiveTuple(b)
	if err != nil {
		t.Fatal(err)
	}
	if ft.SrcPort != 0 || ft.DstPort != 0 {
		t.Errorf("icmp tuple has ports: %+v", ft)
	}
}

func TestFiveTupleString(t *testing.T) {
	ft := FiveTuple{Src: 0x0A000001, Dst: 0x0A000002, SrcPort: 1, DstPort: 2, Protocol: 6}
	s := ft.String()
	if !strings.Contains(s, "10.0.0.1") || !strings.Contains(s, "10.0.0.2") {
		t.Errorf("String() = %q", s)
	}
}

func TestTCPHeaderRoundTrip(t *testing.T) {
	h := TCPHeader{SrcPort: 443, DstPort: 51234, Seq: 0xDEADBEEF, Ack: 0x01020304,
		DataOff: 5, Flags: 0x18, Window: 65535, Checksum: 0xABCD, Urgent: 1}
	b := make([]byte, TCPHeaderLen)
	h.MarshalInto(b)
	got, err := ParseTCP(b)
	if err != nil {
		t.Fatal(err)
	}
	if *got != h {
		t.Errorf("round trip: %+v != %+v", *got, h)
	}
	if _, err := ParseTCP(b[:19]); err == nil {
		t.Error("short TCP parse succeeded")
	}
}

func TestUDPHeaderRoundTrip(t *testing.T) {
	h := UDPHeader{SrcPort: 53, DstPort: 1024, Length: 100, Checksum: 0xFFFF}
	b := make([]byte, UDPHeaderLen)
	h.MarshalInto(b)
	got, err := ParseUDP(b)
	if err != nil {
		t.Fatal(err)
	}
	if *got != h {
		t.Errorf("round trip: %+v != %+v", *got, h)
	}
	if _, err := ParseUDP(b[:7]); err == nil {
		t.Error("short UDP parse succeeded")
	}
}

func TestAddrConversions(t *testing.T) {
	a := netip.MustParseAddr("192.168.1.200")
	v := AddrValue(a)
	if v != 0xC0A801C8 {
		t.Errorf("AddrValue = %#x", v)
	}
	if got := V4Addr(v); got != a {
		t.Errorf("V4Addr(AddrValue(%v)) = %v", a, got)
	}
	// Property: round trip over arbitrary values.
	f := func(v uint32) bool { return AddrValue(V4Addr(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
