package profile

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"repro/internal/analysis"
	"repro/internal/asm"
)

// HotBlock is one basic block ranked by retired instructions — the
// selection unit of the compiled tier's offline profile-guided
// compilation (vm.CompileConfig.Hot takes the Leader indexes).
type HotBlock struct {
	Block  int    // block id in the shared BlockMap numbering
	Leader int    // instruction index of the block leader
	Addr   uint32 // leader PC
	Len    int    // block length in instructions
	Count  uint64 // instructions retired inside the block
}

// HotBlocks ranks the program's basic blocks by exact retired
// instruction count (stats.Collector.PCCounts), descending, ties by
// address, and returns the top k. k <= 0 means all blocks with a
// nonzero count. len(pcCounts) must equal len(prog.Text).
func HotBlocks(prog *asm.Program, pcCounts []uint64, k int) ([]HotBlock, error) {
	if len(pcCounts) != len(prog.Text) {
		return nil, fmt.Errorf("profile: %d PC counts for %d instructions", len(pcCounts), len(prog.Text))
	}
	blocks := analysis.NewBlockMap(prog.Text, prog.TextBase)
	out := make([]HotBlock, 0, blocks.NumBlocks())
	for b := 0; b < blocks.NumBlocks(); b++ {
		lead, end := blocks.LeaderIndex(b), blocks.EndIndex(b)
		var count uint64
		for i := lead; i < end; i++ {
			count += pcCounts[i]
		}
		if count == 0 {
			continue
		}
		out = append(out, HotBlock{
			Block:  b,
			Leader: lead,
			Addr:   blocks.Leader(b),
			Len:    end - lead,
			Count:  count,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Addr < out[j].Addr
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// countsMagic heads the exact-counts sidecar that carries a recorded
// run's PCCounts between processes — the offline half of the compiled
// tier's profile-guided selection (-profile-out writes it, -profile-in
// feeds it back).
const countsMagic = "pb32-pccounts v1"

// WriteCounts writes the per-instruction execution counts in the
// sidecar format: a header with the instruction count, then one
// "index count" line per instruction with a nonzero count.
func WriteCounts(w io.Writer, counts []uint64) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s %d\n", countsMagic, len(counts)); err != nil {
		return err
	}
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if _, err := fmt.Fprintf(bw, "%d %d\n", i, c); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCounts parses a sidecar written by WriteCounts, returning the
// full-length per-instruction count slice.
func ReadCounts(r io.Reader) ([]uint64, error) {
	br := bufio.NewReader(r)
	var magic1, magic2 string
	var n int
	if _, err := fmt.Fscanf(br, "%s %s %d\n", &magic1, &magic2, &n); err != nil {
		return nil, fmt.Errorf("profile: bad counts header: %w", err)
	}
	if magic1+" "+magic2 != countsMagic {
		return nil, fmt.Errorf("profile: bad counts magic %q", magic1+" "+magic2)
	}
	if n < 0 || n > 1<<24 {
		return nil, fmt.Errorf("profile: unreasonable instruction count %d", n)
	}
	counts := make([]uint64, n)
	for {
		var i int
		var c uint64
		_, err := fmt.Fscanf(br, "%d %d\n", &i, &c)
		if err == io.EOF {
			return counts, nil
		}
		if err != nil {
			return nil, fmt.Errorf("profile: bad counts line: %w", err)
		}
		if i < 0 || i >= n {
			return nil, fmt.Errorf("profile: count index %d out of range [0,%d)", i, n)
		}
		counts[i] = c
	}
}
