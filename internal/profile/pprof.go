package profile

import (
	"compress/gzip"
	"io"
)

// This file hand-encodes the pprof profile.proto wire format
// (github.com/google/pprof/proto/profile.proto) so `go tool pprof` can
// read guest profiles without this repository depending on a protobuf
// library. Only two wire types appear in the message: varint (0) for
// integers and length-delimited (2) for strings, packed repeats, and
// nested messages.
//
// Field numbers used (from profile.proto):
//
//	Profile:  sample_type=1 sample=2 mapping=3 location=4 function=5
//	          string_table=6 time_nanos=9 duration_nanos=10
//	          period_type=11 period=12
//	ValueType: type=1 unit=2            (string-table indices)
//	Sample:    location_id=1 value=2    (packed; location ids leaf first)
//	Mapping:   id=1 memory_start=2 memory_limit=3 filename=5
//	Location:  id=1 mapping_id=2 address=3 line=4
//	Line:      function_id=1 line=2
//	Function:  id=1 name=2 system_name=3 filename=4 start_line=5

type protoBuf struct{ b []byte }

func (p *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

func (p *protoBuf) uintField(field int, v uint64) {
	if v == 0 {
		return // proto3 default; omitted
	}
	p.varint(uint64(field)<<3 | 0) // wire type 0: varint
	p.varint(v)
}

func (p *protoBuf) bytesField(field int, b []byte) {
	p.varint(uint64(field)<<3 | 2) // wire type 2: length-delimited
	p.varint(uint64(len(b)))
	p.b = append(p.b, b...)
}

func (p *protoBuf) stringField(field int, s string) {
	p.bytesField(field, []byte(s))
}

// packedField emits a repeated integer field in packed encoding.
func (p *protoBuf) packedField(field int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	var inner protoBuf
	for _, v := range vs {
		inner.varint(v)
	}
	p.bytesField(field, inner.b)
}

// strTable interns strings into the profile string table; index 0 is
// the mandatory empty string.
type strTable struct {
	idx  map[string]uint64
	list []string
}

func newStrTable() *strTable {
	return &strTable{idx: map[string]uint64{"": 0}, list: []string{""}}
}

func (t *strTable) id(s string) uint64 {
	if i, ok := t.idx[s]; ok {
		return i
	}
	i := uint64(len(t.list))
	t.idx[s] = i
	t.list = append(t.list, s)
	return i
}

// WritePprof writes the profile as a gzipped pprof profile.proto. The
// sample value is simulated instructions (count); one sample per
// function with a nonzero flat weight, its location stack leaf-first as
// the format requires.
func (p *Profile) WritePprof(w io.Writer) error {
	appName := p.AppName
	if appName == "" {
		appName = "pb32"
	}
	strs := newStrTable()
	var out protoBuf

	// sample_type: {type: "instructions", unit: "count"}.
	var vt protoBuf
	vt.uintField(1, strs.id("instructions"))
	vt.uintField(2, strs.id("count"))
	out.bytesField(1, vt.b)

	// One mapping covering the simulated text segment. has_functions and
	// has_filenames (fields 7 and 8) declare that symbols are already in
	// the profile, so pprof does not attempt local binary symbolization.
	var mp protoBuf
	mp.uintField(1, 1)
	mp.uintField(2, uint64(p.Prog.TextBase))
	mp.uintField(3, uint64(p.Prog.TextEnd()))
	mp.uintField(5, strs.id(appName))
	mp.uintField(7, 1)
	mp.uintField(8, 1)
	out.bytesField(3, mp.b)

	// Functions and locations: one of each per guest function; ids are
	// 1-based function indices. The location address is the function's
	// entry PC inside the mapping.
	for i := range p.Funcs {
		f := &p.Funcs[i]
		id := uint64(i + 1)

		var fn protoBuf
		fn.uintField(1, id)
		fn.uintField(2, strs.id(f.Name))
		fn.uintField(3, strs.id(f.Name))
		fn.uintField(4, strs.id(appName+".s"))
		fn.uintField(5, uint64(f.StartLine))
		out.bytesField(5, fn.b)

		var ln protoBuf
		ln.uintField(1, id)
		ln.uintField(2, uint64(f.StartLine))
		var loc protoBuf
		loc.uintField(1, id)
		loc.uintField(2, 1) // mapping id
		loc.uintField(3, uint64(f.Addr))
		loc.bytesField(4, ln.b)
		out.bytesField(4, loc.b)
	}

	// Samples: location ids leaf first (the function itself, then its
	// callers up to the root).
	for i := range p.Funcs {
		f := &p.Funcs[i]
		if f.Flat == 0 {
			continue
		}
		locs := make([]uint64, len(f.Stack))
		for j, fi := range f.Stack {
			locs[len(f.Stack)-1-j] = uint64(fi + 1)
		}
		var smp protoBuf
		smp.packedField(1, locs)
		smp.packedField(2, []uint64{f.Flat})
		out.bytesField(2, smp.b)
	}

	// period_type/period: one simulated instruction per count, which
	// lets pprof label the profile sensibly.
	var pt protoBuf
	pt.uintField(1, strs.id("instructions"))
	pt.uintField(2, strs.id("count"))
	out.bytesField(11, pt.b)
	out.uintField(12, 1)

	// duration: total instructions is the closest meaningful notion;
	// pprof only uses it for display. Field 10 expects nanoseconds, so
	// leave it unset rather than lie. The string table goes last by
	// convention (any order is legal).
	for _, s := range strs.list {
		out.stringField(6, s)
	}

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(out.b); err != nil {
		return err
	}
	return gz.Close()
}
