// Package profile turns guest-program execution counts into standard
// profiler outputs. The input side is cheap and already exists: the
// stats.Collector's per-instruction PCCounts (enabled by CountPCs) and
// the static call graph internal/staticcheck derives from the
// assembler's JAL/JALR call discipline. The output side is two formats
// every profiling toolchain reads: folded stacks (flamegraph.pl,
// speedscope, inferno) and the gzipped pprof profile.proto that
// `go tool pprof` consumes — hand-encoded here, since the repository
// takes no dependencies beyond the standard library.
//
// The profile is a static-call-graph profile, not a sampled one: each
// function's flat weight is the exact number of simulated instructions
// retired in basic blocks owned by that function, and its stack is the
// shortest static call path from the program entry. That is the honest
// best available without a shadow call stack in the VM, and it is exact
// for the paper's workloads, whose call graphs are trees.
package profile

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/asm"
	"repro/internal/staticcheck"
)

// Func is one guest function discovered from the call graph: a function
// entry block plus every block reachable from it without crossing into
// another function.
type Func struct {
	// Name is the function's label, or func_0x<addr> when the entry has
	// no symbol.
	Name string
	// Addr is the entry address; StartLine its 1-based source line.
	Addr      uint32
	StartLine int
	// Flat is the number of simulated instructions retired inside the
	// function's own blocks (callees excluded).
	Flat uint64
	// Blocks lists the basic-block ids the function owns, ascending.
	Blocks []int
	// Callees indexes the functions this one calls, ascending, deduped.
	Callees []int
	// Stack is the shortest static call path from a program entry to
	// this function, root first and ending with the function itself.
	// Functions unreachable from the entries have a one-frame stack.
	Stack []int
}

// Profile is a guest-program execution profile.
type Profile struct {
	Prog  *asm.Program
	Funcs []Func // ordered by entry address
	// Total is the sum of all flat weights: every counted instruction.
	Total uint64
	// AppName labels the pprof mapping and synthetic filename.
	AppName string
}

// Options configure profile construction.
type Options struct {
	// Entries names the program entry symbols for call-graph rooting;
	// empty means the program's text globals (the verifier's default).
	Entries []string
	// AppName labels the profile (pprof mapping filename); defaults to
	// "pb32".
	AppName string
}

// Build constructs a profile from a program and its per-instruction
// execution counts (stats.Collector.PCCounts; len(pcCounts) must equal
// len(prog.Text)).
func Build(prog *asm.Program, pcCounts []uint64, opts Options) (*Profile, error) {
	if len(pcCounts) != len(prog.Text) {
		return nil, fmt.Errorf("profile: %d PC counts for %d instructions", len(pcCounts), len(prog.Text))
	}
	cfg, ds := staticcheck.BuildCFG(prog, staticcheck.Options{Entries: opts.Entries})
	if errs := ds.Errors(); len(errs) > 0 {
		return nil, fmt.Errorf("profile: %s", errs[0].Msg)
	}

	// Function indices, by entry block. FuncEntries is ascending by
	// block id, which is ascending by address.
	funcIdx := make(map[int]int, len(cfg.FuncEntries)) // entry block -> func
	for i, b := range cfg.FuncEntries {
		funcIdx[b] = i
	}

	// Reverse symbol table for naming. On address collisions the
	// lexically smallest label wins, for determinism.
	symAt := make(map[uint32]string)
	for name, addr := range prog.Symbols {
		if cur, ok := symAt[addr]; !ok || name < cur {
			symAt[addr] = name
		}
	}

	p := &Profile{Prog: prog, Funcs: make([]Func, len(cfg.FuncEntries)), AppName: opts.AppName}
	if p.AppName == "" {
		p.AppName = "pb32"
	}
	for i, b := range cfg.FuncEntries {
		addr := cfg.Blocks.Leader(b)
		name, ok := symAt[addr]
		if !ok {
			name = fmt.Sprintf("func_0x%08x", addr)
		}
		lead := cfg.Blocks.LeaderIndex(b)
		line := 0
		if lead < len(prog.SourceLines) {
			line = prog.SourceLines[lead]
		}
		p.Funcs[i] = Func{Name: name, Addr: addr, StartLine: line}
	}

	// Assign every block to the first function that reaches it without
	// crossing a function entry: intra-procedural flood fill from each
	// entry. Call targets are function entries by construction, so the
	// "stop at entries" rule excludes call edges automatically while the
	// fall-through return point stays inside the caller.
	owner := make([]int, cfg.Blocks.NumBlocks())
	for b := range owner {
		owner[b] = -1
	}
	for i, entry := range cfg.FuncEntries {
		work := []int{entry}
		owner[entry] = i
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, s := range cfg.Succs[b] {
				if owner[s] >= 0 {
					continue
				}
				if _, isEntry := funcIdx[s]; isEntry {
					continue
				}
				owner[s] = i
				work = append(work, s)
			}
		}
	}
	for b, f := range owner {
		if f < 0 {
			continue
		}
		p.Funcs[f].Blocks = append(p.Funcs[f].Blocks, b)
		for j := cfg.Blocks.LeaderIndex(b); j < cfg.Blocks.EndIndex(b); j++ {
			p.Funcs[f].Flat += pcCounts[j]
		}
	}
	for i := range p.Funcs {
		sort.Ints(p.Funcs[i].Blocks)
		p.Total += p.Funcs[i].Flat
	}

	// Call edges between functions, deduped.
	seenEdge := make(map[[2]int]bool)
	for _, call := range cfg.Calls {
		from, to := owner[call.Block], funcIdx[call.Target]
		if from < 0 || from == to || seenEdge[[2]int{from, to}] {
			continue
		}
		seenEdge[[2]int{from, to}] = true
		p.Funcs[from].Callees = append(p.Funcs[from].Callees, to)
	}
	for i := range p.Funcs {
		sort.Ints(p.Funcs[i].Callees)
	}

	// Shortest root-first call paths by BFS from the entry functions.
	parent := make([]int, len(p.Funcs))
	for i := range parent {
		parent[i] = -1
	}
	var queue []int
	for _, b := range cfg.Entries {
		if f, ok := funcIdx[b]; ok && parent[f] == -1 {
			parent[f] = f // root marks itself
			queue = append(queue, f)
		}
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		for _, c := range p.Funcs[f].Callees {
			if parent[c] == -1 {
				parent[c] = f
				queue = append(queue, c)
			}
		}
	}
	for i := range p.Funcs {
		if parent[i] == -1 {
			p.Funcs[i].Stack = []int{i}
			continue
		}
		var rev []int
		for f := i; ; f = parent[f] {
			rev = append(rev, f)
			if parent[f] == f {
				break
			}
		}
		stack := make([]int, len(rev))
		for j, f := range rev {
			stack[len(rev)-1-j] = f
		}
		p.Funcs[i].Stack = stack
	}
	return p, nil
}

// WriteFolded writes the profile in folded-stack format: one line per
// function with a nonzero flat weight, frames root-first joined by ";",
// a space, and the count. Lines are sorted, so equal prefixes are
// adjacent — the input contract of flamegraph.pl and speedscope.
func (p *Profile) WriteFolded(w io.Writer) error {
	lines := make([]string, 0, len(p.Funcs))
	for i := range p.Funcs {
		f := &p.Funcs[i]
		if f.Flat == 0 {
			continue
		}
		frames := make([]string, len(f.Stack))
		for j, fi := range f.Stack {
			frames[j] = p.Funcs[fi].Name
		}
		lines = append(lines, fmt.Sprintf("%s %d", strings.Join(frames, ";"), f.Flat))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// Top returns the functions ordered by descending flat weight (ties by
// address), for textual reports.
func (p *Profile) Top() []Func {
	out := append([]Func(nil), p.Funcs...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Flat != out[j].Flat {
			return out[i].Flat > out[j].Flat
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

// WriteText writes a gprof-style flat listing: rank, percentage,
// cumulative percentage, instruction count, and function name.
func (p *Profile) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%5s  %7s  %7s  %12s  %s\n", "rank", "flat%", "cum%", "instrs", "function"); err != nil {
		return err
	}
	var cum uint64
	for i, f := range p.Top() {
		if f.Flat == 0 {
			break
		}
		cum += f.Flat
		pct := func(v uint64) float64 {
			if p.Total == 0 {
				return 0
			}
			return 100 * float64(v) / float64(p.Total)
		}
		if _, err := fmt.Fprintf(w, "%5d  %6.2f%%  %6.2f%%  %12d  %s\n",
			i+1, pct(f.Flat), pct(cum), f.Flat, f.Name); err != nil {
			return err
		}
	}
	return nil
}
