package profile

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/asm"
)

// callSrc is a small program with a two-level call tree:
// main -> helper -> leaf, plus a main-only loop.
const callSrc = `
	.text
	.global main
main:
	li   s0, 3
loop:
	jal  ra, helper
	addi s0, s0, -1
	bne  s0, zero, loop
	li   a0, 1
	ret

helper:
	addi sp, sp, -4
	sw   ra, 0(sp)
	jal  ra, leaf
	lw   ra, 0(sp)
	addi sp, sp, 4
	ret

leaf:
	addi t0, zero, 7
	ret
`

func buildTestProfile(t *testing.T) *Profile {
	t.Helper()
	prog, err := asm.Assemble(callSrc, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Synthesize execution counts: every instruction ran once per
	// "packet", scaled by its function to make flat weights distinct.
	counts := make([]uint64, len(prog.Text))
	for i := range counts {
		counts[i] = uint64(i + 1)
	}
	p, err := Build(prog, counts, Options{Entries: []string{"main"}, AppName: "calltest"})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func funcByName(t *testing.T, p *Profile, name string) *Func {
	t.Helper()
	for i := range p.Funcs {
		if p.Funcs[i].Name == name {
			return &p.Funcs[i]
		}
	}
	t.Fatalf("no function %q in %v", name, p.Funcs)
	return nil
}

func TestBuildFunctionsAndStacks(t *testing.T) {
	p := buildTestProfile(t)
	if len(p.Funcs) != 3 {
		t.Fatalf("got %d functions, want 3: %+v", len(p.Funcs), p.Funcs)
	}
	main := funcByName(t, p, "main")
	helper := funcByName(t, p, "helper")
	leaf := funcByName(t, p, "leaf")

	if len(main.Stack) != 1 || p.Funcs[main.Stack[0]].Name != "main" {
		t.Errorf("main stack = %v", main.Stack)
	}
	wantStack := func(f *Func, names ...string) {
		t.Helper()
		var got []string
		for _, fi := range f.Stack {
			got = append(got, p.Funcs[fi].Name)
		}
		if strings.Join(got, ";") != strings.Join(names, ";") {
			t.Errorf("%s stack = %v, want %v", f.Name, got, names)
		}
	}
	wantStack(helper, "main", "helper")
	wantStack(leaf, "main", "helper", "leaf")

	if len(main.Callees) != 1 || main.Callees[0] != funcIndex(p, "helper") {
		t.Errorf("main callees = %v", main.Callees)
	}
	if p.Total == 0 || main.Flat == 0 || helper.Flat == 0 || leaf.Flat == 0 {
		t.Errorf("zero flat weights: total=%d main=%d helper=%d leaf=%d",
			p.Total, main.Flat, helper.Flat, leaf.Flat)
	}
	var sum uint64
	for _, f := range p.Funcs {
		sum += f.Flat
	}
	if sum != p.Total {
		t.Errorf("Total = %d, func sum = %d", p.Total, sum)
	}
}

func funcIndex(p *Profile, name string) int {
	for i := range p.Funcs {
		if p.Funcs[i].Name == name {
			return i
		}
	}
	return -1
}

func TestBuildCountLengthMismatch(t *testing.T) {
	prog, err := asm.Assemble("main: ret", asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(prog, make([]uint64, 99), Options{}); err == nil {
		t.Fatal("length mismatch not rejected")
	}
}

// TestWriteFolded validates the folded contract: sorted lines, frames
// joined by ";", trailing integer count.
func TestWriteFolded(t *testing.T) {
	p := buildTestProfile(t)
	var b bytes.Buffer
	if err := p.WriteFolded(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d folded lines, want 3:\n%s", len(lines), b.String())
	}
	if !sort.StringsAreSorted(lines) {
		t.Errorf("folded lines not sorted:\n%s", b.String())
	}
	for _, l := range lines {
		sp := strings.LastIndexByte(l, ' ')
		if sp < 0 {
			t.Fatalf("folded line %q has no count", l)
		}
		if _, err := strconv.ParseUint(l[sp+1:], 10, 64); err != nil {
			t.Errorf("folded count %q: %v", l[sp+1:], err)
		}
		for _, frame := range strings.Split(l[:sp], ";") {
			if frame == "" {
				t.Errorf("empty frame in %q", l)
			}
		}
	}
	if !strings.Contains(b.String(), "main;helper;leaf ") {
		t.Errorf("missing leaf stack:\n%s", b.String())
	}
}

// protoField is one decoded top-level or nested protobuf field.
type protoField struct {
	num  int
	wire int
	val  uint64 // wire type 0
	b    []byte // wire type 2
}

func parseProto(t *testing.T, b []byte) []protoField {
	t.Helper()
	var out []protoField
	for len(b) > 0 {
		tag, n := uvarint(b)
		if n <= 0 {
			t.Fatalf("bad tag varint")
		}
		b = b[n:]
		f := protoField{num: int(tag >> 3), wire: int(tag & 7)}
		switch f.wire {
		case 0:
			v, n := uvarint(b)
			if n <= 0 {
				t.Fatalf("bad varint in field %d", f.num)
			}
			f.val, b = v, b[n:]
		case 2:
			l, n := uvarint(b)
			if n <= 0 || uint64(len(b)-n) < l {
				t.Fatalf("bad length in field %d", f.num)
			}
			f.b, b = b[n:n+int(l)], b[n+int(l):]
		default:
			t.Fatalf("unexpected wire type %d for field %d", f.wire, f.num)
		}
		out = append(out, f)
	}
	return out
}

func uvarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, -1
}

// TestWritePprofStructure gunzips and structurally decodes the emitted
// profile.proto: string table, sample/location/function cross
// references, and leaf-first sample stacks.
func TestWritePprofStructure(t *testing.T) {
	p := buildTestProfile(t)
	var b bytes.Buffer
	if err := p.WritePprof(&b); err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(&b)
	if err != nil {
		t.Fatalf("output is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}

	var strTab []string
	var samples, locations, functions [][]protoField
	for _, f := range parseProto(t, raw) {
		switch f.num {
		case 6:
			strTab = append(strTab, string(f.b))
		case 2:
			samples = append(samples, parseProto(t, f.b))
		case 4:
			locations = append(locations, parseProto(t, f.b))
		case 5:
			functions = append(functions, parseProto(t, f.b))
		}
	}
	if len(strTab) == 0 || strTab[0] != "" {
		t.Fatalf("string table must start with empty string: %v", strTab)
	}
	hasStr := func(s string) bool {
		for _, v := range strTab {
			if v == s {
				return true
			}
		}
		return false
	}
	for _, want := range []string{"main", "helper", "leaf", "instructions", "count", "calltest"} {
		if !hasStr(want) {
			t.Errorf("string table missing %q: %v", want, strTab)
		}
	}
	if len(functions) != 3 || len(locations) != 3 {
		t.Fatalf("got %d functions, %d locations; want 3 each", len(functions), len(locations))
	}
	if len(samples) != 3 {
		t.Fatalf("got %d samples, want 3", len(samples))
	}

	// The deepest sample's packed location stack must be leaf-first:
	// leaf, helper, main.
	nameOf := map[uint64]string{}
	for _, fn := range functions {
		var id, nameIdx uint64
		for _, f := range fn {
			if f.num == 1 {
				id = f.val
			}
			if f.num == 2 {
				nameIdx = f.val
			}
		}
		nameOf[id] = strTab[nameIdx]
	}
	foundDeep := false
	for _, smp := range samples {
		var locIDs []uint64
		for _, f := range smp {
			if f.num == 1 {
				rest := f.b
				for len(rest) > 0 {
					v, n := uvarint(rest)
					locIDs = append(locIDs, v)
					rest = rest[n:]
				}
			}
		}
		if len(locIDs) == 3 {
			foundDeep = true
			// Location ids equal function ids in this encoding.
			got := []string{nameOf[locIDs[0]], nameOf[locIDs[1]], nameOf[locIDs[2]]}
			if got[0] != "leaf" || got[1] != "helper" || got[2] != "main" {
				t.Errorf("deep sample stack = %v, want [leaf helper main]", got)
			}
		}
	}
	if !foundDeep {
		t.Errorf("no 3-frame sample found")
	}
}

// TestPprofToolReads shells out to `go tool pprof -top` when the go
// tool is available, proving real-toolchain compatibility.
func TestPprofToolReads(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	p := buildTestProfile(t)
	path := filepath.Join(t.TempDir(), "guest.pb.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WritePprof(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(goBin, "tool", "pprof", "-top", path)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go tool pprof -top: %v\n%s", err, out)
	}
	for _, want := range []string{"main", "helper", "leaf"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("pprof -top missing %q:\n%s", want, out)
		}
	}
}

func TestWriteText(t *testing.T) {
	p := buildTestProfile(t)
	var b bytes.Buffer
	if err := p.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"rank", "flat%", "main", "helper", "leaf"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
	// Ranks are by descending flat weight.
	top := p.Top()
	for i := 1; i < len(top); i++ {
		if top[i].Flat > top[i-1].Flat {
			t.Errorf("Top() not descending at %d: %v", i, top)
		}
	}
}
