package ptrace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// StageStat is one stage's aggregate over everything the tracer
// recorded (all packets, not just kept journeys).
type StageStat struct {
	Stage Stage
	Count uint64
	SumNS uint64
	MaxNS uint64
}

// MeanNS returns the stage's mean duration in nanoseconds.
func (s StageStat) MeanNS() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNS) / float64(s.Count)
}

// Summary aggregates a run's journey data for reporting.
type Summary struct {
	// Stages holds one entry per Stage, in stage order, covering every
	// recorded event.
	Stages []StageStat
	// Tail holds the slowest captured journeys across all lanes,
	// slowest first, at most K entries.
	Tail []Journey
	// Sampled counts head-sampled journeys retained.
	Sampled int
	// Dropped counts journeys lost to the per-lane kept cap.
	Dropped uint64
}

// Summary merges every lane's accumulators and reservoirs. k bounds
// the tail list (<= 0 means 10).
func (t *Tracer) Summary(k int) Summary {
	if k <= 0 {
		k = 10
	}
	var s Summary
	s.Stages = make([]StageStat, numStages)
	if t == nil {
		return s
	}
	for st := Stage(0); st < numStages; st++ {
		s.Stages[st].Stage = st
	}
	var tail []Journey
	for _, l := range t.lanes {
		for st := Stage(0); st < numStages; st++ {
			s.Stages[st].Count += l.stageCount[st].Load()
			s.Stages[st].SumNS += l.stageSum[st].Load()
			if m := l.stageMax[st].Load(); m > s.Stages[st].MaxNS {
				s.Stages[st].MaxNS = m
			}
		}
		s.Dropped += l.keptDropped.Load()
		for _, j := range l.journeys() {
			if j.Sampled {
				s.Sampled++
			}
			tail = append(tail, j)
		}
	}
	tail = dedupJourneys(tail)
	sort.Slice(tail, func(i, j int) bool {
		if tail[i].Latency != tail[j].Latency {
			return tail[i].Latency > tail[j].Latency
		}
		return tail[i].Index < tail[j].Index
	})
	if len(tail) > k {
		tail = tail[:k]
	}
	s.Tail = tail
	return s
}

// dedupJourneys drops duplicate captures of the same packet (a journey
// can be both head-sampled and reservoir-kept), preferring the sampled
// copy.
func dedupJourneys(js []Journey) []Journey {
	seen := make(map[int64]int, len(js))
	out := js[:0]
	for _, j := range js {
		if at, ok := seen[j.Index]; ok {
			if j.Sampled && !out[at].Sampled {
				out[at] = j
			}
			continue
		}
		seen[j.Index] = len(out)
		out = append(out, j)
	}
	return out
}

// chromeEvent is one entry of the Chrome trace-event JSON format
// (Perfetto and chrome://tracing both load it). Field order is fixed
// by the struct, so output is byte-deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// Exemplar links one packet_latency_ns histogram bucket to a span id
// (the packet's trace index), so a histogram tail bucket can be chased
// to the concrete journey behind it.
type Exemplar struct {
	// BucketLE is the bucket's inclusive upper bound in nanoseconds
	// (0 = the overflow bucket).
	BucketLE uint64 `json:"bucket_le_ns"`
	// ValueNS is the observed latency.
	ValueNS uint64 `json:"value_ns"`
	// Span is the packet index whose journey produced the observation.
	Span uint64 `json:"span"`
}

// ExportOptions decorates a WriteTrace dump.
type ExportOptions struct {
	// App and Trace label the run in the trace metadata.
	App   string
	Trace string
	// Exemplars are the histogram-to-span links captured by telemetry.
	Exemplars []Exemplar
}

func laneName(t *Tracer, lane int32) string {
	switch {
	case int(lane) == len(t.lanes)-2:
		return "producer"
	case int(lane) == len(t.lanes)-1:
		return "checkpoint"
	default:
		return fmt.Sprintf("worker %d", lane)
	}
}

func metaEvents(t *Tracer, process string) []chromeEvent {
	evs := []chromeEvent{{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": process},
	}}
	for i := range t.lanes {
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: i,
			Args: map[string]any{"name": laneName(t, int32(i))},
		})
	}
	return evs
}

func eventArgs(ev Event) map[string]any {
	args := map[string]any{"index": ev.Index}
	if ev.Stage == StageExec {
		args["attempt"] = ev.Attempt
		args["engine"] = ev.Engine
		if ev.Fault > 0 {
			args["fault"] = ev.Fault - 1
		} else {
			args["instrs"] = ev.Instrs
			args["verdict"] = ev.Verdict
		}
	}
	if ev.Count > 0 {
		args["batch"] = ev.Count
	}
	return args
}

func spanEvent(ev Event, tid int) chromeEvent {
	name := ev.Stage.String()
	ph := "X"
	if ev.Mark {
		name = ev.Stage.String() + " (in flight)"
		ph = "i"
	} else if ev.Dur == 0 {
		ph = "i"
	}
	return chromeEvent{
		Name: name, Ph: ph,
		Ts: float64(ev.Start) / 1e3, Dur: float64(ev.Dur) / 1e3,
		Pid: 1, Tid: tid, Args: eventArgs(ev),
	}
}

// WriteTrace writes the kept journeys (head samples plus tail
// reservoir) as Chrome trace-event JSON: one enclosing span per packet
// journey with its stage spans nested inside, one timeline row per
// lane. Load the file in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
func (t *Tracer) WriteTrace(w io.Writer, opts ExportOptions) error {
	if t == nil {
		return fmt.Errorf("ptrace: no tracer armed")
	}
	out := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: metaEvents(t, "packetbench")}
	var all []Journey
	for _, l := range t.lanes {
		all = append(all, l.journeys()...)
	}
	all = dedupJourneys(all)
	sort.Slice(all, func(i, j int) bool { return all[i].Index < all[j].Index })
	for i := range all {
		j := &all[i]
		kind := "tail"
		if j.Sampled {
			kind = "sampled"
		}
		args := map[string]any{
			"index": j.Index, "latency_ns": j.Latency, "instrs": j.Instrs,
			"verdict": j.Verdict, "kind": kind,
		}
		if j.Fault > 0 {
			args["fault"] = j.Fault - 1
		}
		if bl := j.Blocks(); len(bl) > 0 {
			args["blocks"] = bl
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: fmt.Sprintf("packet %d", j.Index), Ph: "X",
			Ts: float64(j.Start) / 1e3, Dur: float64(j.Latency) / 1e3,
			Pid: 1, Tid: int(j.Lane), Args: args,
		})
		for _, ev := range j.Events() {
			out.TraceEvents = append(out.TraceEvents, spanEvent(ev, int(j.Lane)))
		}
	}
	out.OtherData = map[string]any{"tool": "packetbench -trace-out"}
	if opts.App != "" {
		out.OtherData["app"] = opts.App
	}
	if opts.Trace != "" {
		out.OtherData["trace"] = opts.Trace
	}
	if len(opts.Exemplars) > 0 {
		out.OtherData["exemplars"] = opts.Exemplars
	}
	return writeJSON(w, &out)
}

// FlightInfo labels a post-mortem dump with what killed the run.
type FlightInfo struct {
	// Cause is the run error's message.
	Cause string
	// Worker and Index name the wedged/failing worker and packet when
	// known (a StallError carries both); -1 otherwise.
	Worker int
	Index  int64
}

// laneLast summarizes a lane's final ring event for the dump header —
// the one-line answer to "what was this worker doing when the run
// died".
type laneLast struct {
	Lane      int    `json:"lane"`
	Name      string `json:"name"`
	Events    uint64 `json:"events"`
	LastStage string `json:"last_stage,omitempty"`
	LastIndex int64  `json:"last_index"`
	InFlight  bool   `json:"in_flight"`
}

// WriteFlight dumps the flight recorder: every lane's ring (the last
// RingEvents stage events per lane, oldest first) as Chrome trace-event
// JSON, with the failure cause and a per-lane last-event digest in
// otherData. The failing packet's journey is reconstructable from its
// worker's final ring events — a wedged worker's ring ends in the
// in-flight exec marker carrying the packet index.
func (t *Tracer) WriteFlight(w io.Writer, info FlightInfo) error {
	if t == nil {
		return fmt.Errorf("ptrace: no tracer armed")
	}
	out := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: metaEvents(t, "packetbench flight recorder")}
	digests := make([]laneLast, 0, len(t.lanes))
	for i, l := range t.lanes {
		evs := l.ringEvents()
		d := laneLast{Lane: i, Name: laneName(t, int32(i)), Events: l.head.Load(), LastIndex: -1}
		if len(evs) > 0 {
			last := evs[len(evs)-1]
			d.LastStage, d.LastIndex, d.InFlight = last.Stage.String(), last.Index, last.Mark
		}
		digests = append(digests, d)
		for _, ev := range evs {
			out.TraceEvents = append(out.TraceEvents, spanEvent(ev, i))
		}
	}
	out.OtherData = map[string]any{
		"cause":       info.Cause,
		"fail_worker": info.Worker,
		"fail_index":  info.Index,
		"lanes":       digests,
	}
	return writeJSON(w, &out)
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(v)
}
