// Package ptrace is the packet-journey tracer: a low-overhead recorder
// of what the pipeline did to individual packets, stage by stage —
// batch read, queue wait, execution attempts (engine tier, retired
// instructions, executed blocks), retry backoff, quarantine, overload
// shedding and checkpoint commits.
//
// The design contract mirrors telemetry.Registry: a nil *Tracer (and
// the nil *Lane handles it hands out) costs the hot path nothing
// beyond a pointer test, and an armed tracer is allocation-free per
// packet — every buffer is sized at New time.
//
// # Storage
//
// Each lane (one per pool worker, plus one for the trace producer and
// one for the checkpoint committer) owns three fixed-size stores,
// written only by that lane's goroutine:
//
//   - a ring buffer of fixed-width events — the flight recorder. Every
//     stage event of every packet lands here, overwriting the oldest;
//     after a crash the rings hold the pipeline's final milliseconds.
//     Slots are atomic words, so a post-mortem dump may read them while
//     a wedged-then-unwedged worker is still writing.
//   - a kept-journey store for head-sampled packets (every Nth trace
//     index) and packets over the tail latency threshold. Bounded;
//     overflow increments a drop counter instead of allocating.
//   - a tail reservoir of the K slowest journeys seen by the lane, so
//     the globally slowest packets of a run are always captured no
//     matter the sampling rate.
//
// # Spans
//
// Execution spans are bracketed: ExecBegin writes an in-flight marker
// event into the ring and returns the span's start timestamp, and
// ExecEnd completes it. If a worker wedges mid-packet, the marker is
// the ring's final event for that lane — the post-mortem dump
// reconstructs which packet it was executing without touching any
// non-atomic state. The pblint span-pairing rule holds callers to the
// bracket discipline.
package ptrace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one pipeline stage of a packet's journey.
type Stage uint8

// The journey stages.
const (
	// StageRead is one batched trace read by the producer.
	StageRead Stage = iota
	// StageQueue is a batch's wait in the bounded job queue, from
	// enqueue to worker pickup.
	StageQueue
	// StageExec is one execution attempt on a simulated core.
	StageExec
	// StageRetryWait is the backoff pause before a retry attempt.
	StageRetryWait
	// StageQuarantine marks a packet quarantined after its attempts
	// were exhausted.
	StageQuarantine
	// StageShed marks a batch dropped unprocessed by the overload
	// policy.
	StageShed
	// StageCheckpoint is one checkpoint commit by the aggregator.
	StageCheckpoint

	numStages
)

// NumStages is the number of distinct stages.
const NumStages = int(numStages)

var stageNames = [numStages]string{
	"read", "queue", "exec", "retry-wait", "quarantine", "shed", "checkpoint",
}

// String returns the stage's report name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage?"
}

// Event is one fixed-width journey event. Times are nanoseconds since
// the tracer's epoch (its New call, or the injected clock's zero).
type Event struct {
	// Stage is the pipeline stage this event measures.
	Stage Stage
	// Mark is set on in-flight begin markers: the stage has started but
	// not finished, so Dur is meaningless. A lane whose ring ends in a
	// marked exec event was wedged inside that packet.
	Mark bool
	// Attempt numbers the execution attempt (0 = first).
	Attempt uint8
	// Engine is the core.EngineKind ordinal for exec events.
	Engine uint8
	// Fault is the vm.FaultKind ordinal that ended a failed attempt
	// (offset by one: 0 means no fault, k+1 means kind k).
	Fault uint8
	// Lane is the recording lane (worker index, or the producer or
	// committer lane).
	Lane int32
	// Index is the trace index of the packet, or the base index of the
	// batch for read/queue/shed events.
	Index int64
	// Start and Dur bound the stage in epoch nanoseconds.
	Start int64
	Dur   int64
	// Count is the batch size for read/queue/shed events.
	Count uint32
	// Verdict is the application verdict of a successful exec event.
	Verdict uint32
	// Instrs is the retired instruction count of a successful exec
	// event.
	Instrs uint64
}

// slotWords is the ring footprint of one encoded event.
const slotWords = 6

// encode packs the event into its ring representation.
func (ev *Event) encode() (w [slotWords]uint64) {
	var mark uint64
	if ev.Mark {
		mark = 1
	}
	w[0] = uint64(ev.Stage) | mark<<8 | uint64(ev.Attempt)<<16 |
		uint64(ev.Engine)<<24 | uint64(ev.Fault)<<32 | uint64(uint16(ev.Lane))<<40
	w[1] = uint64(ev.Index)
	w[2] = uint64(ev.Start)
	w[3] = uint64(ev.Dur)
	w[4] = uint64(ev.Count) | uint64(ev.Verdict)<<32
	w[5] = ev.Instrs
	return w
}

func decodeEvent(w [slotWords]uint64) Event {
	return Event{
		Stage:   Stage(w[0] & 0xff),
		Mark:    w[0]>>8&0xff != 0,
		Attempt: uint8(w[0] >> 16),
		Engine:  uint8(w[0] >> 24),
		Fault:   uint8(w[0] >> 32),
		Lane:    int32(uint16(w[0] >> 40)),
		Index:   int64(w[1]),
		Start:   int64(w[2]),
		Dur:     int64(w[3]),
		Count:   uint32(w[4]),
		Verdict: uint32(w[4] >> 32),
		Instrs:  w[5],
	}
}

// Journey bounds: events and executed-block ids retained per packet.
// Both are fixed arrays so keeping a journey never allocates.
const (
	maxJourneyEvents = 24
	maxJourneyBlocks = 8
)

// Journey is one packet's recorded journey through the pipeline.
type Journey struct {
	// Index is the packet's trace index.
	Index int64
	// Lane is the worker that processed it.
	Lane int32
	// Sampled marks a head-sampled journey (vs. one kept only because
	// of its latency).
	Sampled bool
	// Fault is the quarantining fault kind + 1 (0 = measured packet).
	Fault uint8
	// Start is the journey's first timestamp (epoch ns).
	Start int64
	// Latency is first-attempt start to policy resolution (ns).
	Latency int64
	// Verdict is the application verdict (0 for quarantined packets).
	Verdict uint32
	// Instrs is the retired instruction count of the final attempt.
	Instrs uint64

	nEv int
	nBl int
	ev  [maxJourneyEvents]Event
	bl  [maxJourneyBlocks]int32
}

// Events returns the journey's stage events in recording order.
func (j *Journey) Events() []Event { return j.ev[:j.nEv] }

// Blocks returns up to maxJourneyBlocks executed basic-block ids of the
// final attempt, in program order — the hook function attribution hangs
// off.
func (j *Journey) Blocks() []int32 { return j.bl[:j.nBl] }

// reset re-arms the scratch journey for a new packet without zeroing
// the event array (nEv masks stale entries).
func (j *Journey) reset(idx int64, lane int32, now int64) {
	j.Index, j.Lane, j.Start = idx, lane, now
	j.Sampled, j.Fault, j.Latency, j.Verdict, j.Instrs = false, 0, 0, 0, 0
	j.nEv, j.nBl = 0, 0
}

// add appends an event, dropping silently at the cap (a packet with
// more than maxJourneyEvents stages keeps its earliest ones).
func (j *Journey) add(ev Event) {
	if j.nEv < maxJourneyEvents {
		j.ev[j.nEv] = ev
		j.nEv++
	}
}

// Config sizes a Tracer. The zero value of each field selects the
// documented default.
type Config struct {
	// Lanes is the number of worker lanes (pool cores). Default 1. Two
	// internal lanes (producer, committer) are always added.
	Lanes int
	// SampleEvery keeps the journey of every Nth packet by trace index
	// (the -trace-sample 1/N head rate). 0 disables head sampling;
	// the tail reservoir still captures the slowest packets.
	SampleEvery int
	// TailK is the per-lane reservoir of slowest journeys (default 8).
	TailK int
	// TailNS force-keeps any journey at least this slow, regardless of
	// sampling (0 = off).
	TailNS int64
	// RingEvents is the flight-recorder ring capacity per lane
	// (default 512 events).
	RingEvents int
	// MaxKept bounds head-sampled journeys retained per lane (default
	// 1024); overflow is counted, not stored.
	MaxKept int
	// Clock overrides the timestamp source (epoch nanoseconds,
	// monotone). Tests inject a deterministic counter here; nil uses
	// the wall clock relative to the New call.
	Clock func() int64
}

// Tracer owns the per-lane stores. A nil Tracer is fully inert: Lane
// returns nil handles whose methods no-op.
type Tracer struct {
	sampleEvery int64
	tailNS      int64
	clock       func() int64
	lanes       []*Lane // Config.Lanes workers + producer + committer
}

// New builds an armed tracer. All storage is allocated here; recording
// never allocates.
func New(cfg Config) *Tracer {
	if cfg.Lanes < 1 {
		cfg.Lanes = 1
	}
	if cfg.TailK <= 0 {
		cfg.TailK = 8
	}
	if cfg.RingEvents <= 0 {
		cfg.RingEvents = 512
	}
	if cfg.MaxKept <= 0 {
		cfg.MaxKept = 1024
	}
	clock := cfg.Clock
	if clock == nil {
		epoch := time.Now()
		clock = func() int64 { return time.Since(epoch).Nanoseconds() }
	}
	t := &Tracer{
		sampleEvery: int64(cfg.SampleEvery),
		tailNS:      cfg.TailNS,
		clock:       clock,
		lanes:       make([]*Lane, cfg.Lanes+2),
	}
	for i := range t.lanes {
		t.lanes[i] = &Lane{
			t:       t,
			id:      int32(i),
			ringLen: cfg.RingEvents,
			ring:    make([]atomic.Uint64, cfg.RingEvents*slotWords),
			kept:    make([]Journey, 0, cfg.MaxKept),
			tail:    make([]Journey, 0, cfg.TailK),
		}
		t.lanes[i].tailMin.Store(-1) // reservoir not full
	}
	return t
}

// Now returns the tracer's current timestamp (0 on a nil tracer).
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return t.clock()
}

// Lane returns worker lane i's handle, or nil when the tracer is nil
// or i is out of range — either way the handle is safe to use.
func (t *Tracer) Lane(i int) *Lane {
	if t == nil || i < 0 || i >= len(t.lanes)-2 {
		return nil
	}
	return t.lanes[i]
}

// Producer returns the trace-reader lane (read and shed events).
func (t *Tracer) Producer() *Lane {
	if t == nil {
		return nil
	}
	return t.lanes[len(t.lanes)-2]
}

// Committer returns the checkpoint-committer lane.
func (t *Tracer) Committer() *Lane {
	if t == nil {
		return nil
	}
	return t.lanes[len(t.lanes)-1]
}

// Workers returns the number of worker lanes.
func (t *Tracer) Workers() int {
	if t == nil {
		return 0
	}
	return len(t.lanes) - 2
}

// Lane is one goroutine's recording handle. All recording methods are
// single-writer: only the owning goroutine may call them. All are
// nil-receiver safe.
type Lane struct {
	t       *Tracer
	id      int32
	ringLen int
	ring    []atomic.Uint64
	head    atomic.Uint64 // events ever recorded; slot = head % ringLen

	// Scratch journey of the packet currently in flight, plus the batch
	// context its read/queue spans are synthesized from. Owner-only.
	cur        Journey
	batchBase  int64
	batchRead  int64
	batchQueue int64
	batchN     uint32

	// Per-stage accumulators; atomic because dumps read them while a
	// cooperatively-unwedged worker may still be recording.
	stageCount [numStages]atomic.Uint64
	stageSum   [numStages]atomic.Uint64
	stageMax   [numStages]atomic.Uint64

	mu          sync.Mutex
	kept        []Journey     // head-sampled / over-threshold journeys
	tail        []Journey     // reservoir of the K slowest
	tailMin     atomic.Int64  // min latency in a full reservoir; -1 while filling
	keptDropped atomic.Uint64 // journeys lost to the kept cap
}

// record writes one event into the flight-recorder ring.
//
// pblint:hotpath — runs once per stage event of every packet.
func (l *Lane) record(ev Event) {
	seq := l.head.Load()
	w := ev.encode()
	base := int(seq%uint64(l.ringLen)) * slotWords
	for i := 0; i < slotWords; i++ {
		l.ring[base+i].Store(w[i])
	}
	l.head.Store(seq + 1)
}

// stageAdd folds a completed stage into the lane accumulators.
//
// pblint:hotpath — runs once per stage event of every packet.
func (l *Lane) stageAdd(s Stage, dur int64) {
	l.stageCount[s].Add(1)
	l.stageSum[s].Add(uint64(dur))
	if uint64(dur) > l.stageMax[s].Load() {
		l.stageMax[s].Store(uint64(dur)) // single writer: no CAS needed
	}
}

// BatchStart tells a worker lane which batch its next packets belong
// to: the producer's read time and the batch's queue wait become the
// leading spans of every journey in the batch. Records the queue-wait
// event.
//
// pblint:hotpath — runs once per batch on the worker.
func (l *Lane) BatchStart(base int64, n int, readNS, queueNS int64) {
	if l == nil {
		return
	}
	l.batchBase, l.batchN = base, uint32(n)
	l.batchRead, l.batchQueue = readNS, queueNS
	now := l.t.clock()
	l.record(Event{Stage: StageQueue, Lane: l.id, Index: base, Start: now - queueNS, Dur: queueNS, Count: uint32(n)})
	l.stageAdd(StageQueue, queueNS)
}

// ExecBegin opens an execution-attempt span: it writes the in-flight
// marker into the ring (the wedge witness) and returns the span start
// for the matching ExecEnd. attempt 0 also opens the packet's journey.
//
// pblint:hotpath — runs once per execution attempt.
func (l *Lane) ExecBegin(idx int64, attempt int) int64 {
	if l == nil {
		return 0
	}
	now := l.t.clock()
	if attempt == 0 {
		l.cur.reset(idx, l.id, now)
		if l.batchN > 0 {
			// Synthesize the batch's read and queue spans as the journey
			// prologue, back-dated so the span tree reads causally.
			l.cur.add(Event{Stage: StageRead, Lane: l.id, Index: l.batchBase,
				Start: now - l.batchQueue - l.batchRead, Dur: l.batchRead, Count: l.batchN})
			l.cur.add(Event{Stage: StageQueue, Lane: l.id, Index: l.batchBase,
				Start: now - l.batchQueue, Dur: l.batchQueue, Count: l.batchN})
		}
	}
	l.record(Event{Stage: StageExec, Mark: true, Lane: l.id, Index: idx, Start: now, Attempt: uint8(attempt)})
	return now
}

// ExecEnd closes the attempt span opened by ExecBegin. fault is the
// vm.FaultKind ordinal + 1 of a failed attempt (0 = success).
//
// pblint:hotpath — runs once per execution attempt.
func (l *Lane) ExecEnd(start, idx int64, attempt int, engine uint8, instrs uint64, verdict uint32, fault uint8) {
	if l == nil {
		return
	}
	now := l.t.clock()
	ev := Event{Stage: StageExec, Lane: l.id, Index: idx, Start: start, Dur: now - start,
		Attempt: uint8(attempt), Engine: engine, Fault: fault, Instrs: instrs, Verdict: verdict}
	l.record(ev)
	l.cur.add(ev)
	l.stageAdd(StageExec, ev.Dur)
}

// RetryWait records the backoff pause that preceded retry attempt
// attempt (the pause has already elapsed when this is called).
//
// pblint:hotpath — runs once per retry.
func (l *Lane) RetryWait(idx int64, attempt int, dur int64) {
	if l == nil {
		return
	}
	now := l.t.clock()
	ev := Event{Stage: StageRetryWait, Lane: l.id, Index: idx, Start: now - dur, Dur: dur, Attempt: uint8(attempt)}
	l.record(ev)
	l.cur.add(ev)
	l.stageAdd(StageRetryWait, dur)
}

// Quarantine records the quarantine decision for a packet whose
// attempts were exhausted. fault is the vm.FaultKind ordinal + 1.
//
// pblint:hotpath — runs once per quarantined packet.
func (l *Lane) Quarantine(idx int64, fault uint8) {
	if l == nil {
		return
	}
	now := l.t.clock()
	ev := Event{Stage: StageQuarantine, Lane: l.id, Index: idx, Start: now, Fault: fault}
	l.record(ev)
	l.cur.add(ev)
	l.stageAdd(StageQuarantine, 0)
}

// EndPacket closes the packet's journey and decides whether to keep it:
// head-sampled indexes and journeys over the tail threshold go to the
// kept store, and every journey competes for the slowest-K reservoir.
// blocks is the final attempt's executed-block set (may be nil).
//
// pblint:hotpath — runs once per packet.
func (l *Lane) EndPacket(idx int64, verdict uint32, fault uint8, blocks []int) {
	if l == nil {
		return
	}
	now := l.t.clock()
	l.cur.Latency = now - l.cur.Start
	l.cur.Verdict, l.cur.Fault = verdict, fault
	n := len(blocks)
	if n <= maxJourneyBlocks {
		for i := 0; i < n; i++ {
			l.cur.bl[i] = int32(blocks[i])
		}
	} else {
		// Stride-sample the sequence so the kept blocks span the whole
		// execution (attribution sees late functions, not just the
		// entry), keeping first and last.
		step := (n - 1) / (maxJourneyBlocks - 1)
		for i := 0; i < maxJourneyBlocks-1; i++ {
			l.cur.bl[i] = int32(blocks[i*step])
		}
		l.cur.bl[maxJourneyBlocks-1] = int32(blocks[n-1])
		n = maxJourneyBlocks
	}
	l.cur.nBl = n
	for i := 0; i < l.cur.nEv; i++ {
		if l.cur.ev[i].Stage == StageExec {
			l.cur.Instrs = l.cur.ev[i].Instrs
		}
	}
	t := l.t
	sampled := t.sampleEvery > 0 && idx%t.sampleEvery == 0
	if sampled || (t.tailNS > 0 && l.cur.Latency >= t.tailNS) {
		l.cur.Sampled = sampled
		l.keep()
	}
	min := l.tailMin.Load()
	if min < 0 || l.cur.Latency > min {
		l.reservoir()
	}
}

// keep stores the scratch journey in the kept list (no allocation: the
// backing array was sized at New; overflow only counts).
//
// pblint:hotpath — runs for every kept packet.
func (l *Lane) keep() {
	l.mu.Lock()
	if len(l.kept) < cap(l.kept) {
		l.kept = l.kept[:len(l.kept)+1]
		l.kept[len(l.kept)-1] = l.cur
	} else {
		l.keptDropped.Add(1)
	}
	l.mu.Unlock()
}

// reservoir offers the scratch journey to the slowest-K store,
// replacing the current minimum when full.
//
// pblint:hotpath — runs for every packet slower than the lane minimum.
func (l *Lane) reservoir() {
	l.mu.Lock()
	if len(l.tail) < cap(l.tail) {
		l.tail = l.tail[:len(l.tail)+1]
		l.tail[len(l.tail)-1] = l.cur
	} else {
		mi := 0
		for i := 1; i < len(l.tail); i++ {
			if l.tail[i].Latency < l.tail[mi].Latency {
				mi = i
			}
		}
		if l.cur.Latency > l.tail[mi].Latency {
			l.tail[mi] = l.cur
		}
	}
	if len(l.tail) == cap(l.tail) {
		min := l.tail[0].Latency
		for i := 1; i < len(l.tail); i++ {
			if l.tail[i].Latency < min {
				min = l.tail[i].Latency
			}
		}
		l.tailMin.Store(min)
	}
	l.mu.Unlock()
}

// Read records one producer batch read.
//
// pblint:hotpath — runs once per batch on the producer.
func (l *Lane) Read(base int64, n int, start, dur int64) {
	if l == nil {
		return
	}
	l.record(Event{Stage: StageRead, Lane: l.id, Index: base, Start: start, Dur: dur, Count: uint32(n)})
	l.stageAdd(StageRead, dur)
}

// Shed records a batch dropped by the overload policy.
//
// pblint:hotpath — runs once per shed batch on the producer.
func (l *Lane) Shed(base int64, n int) {
	if l == nil {
		return
	}
	now := l.t.clock()
	l.record(Event{Stage: StageShed, Lane: l.id, Index: base, Start: now, Count: uint32(n)})
	l.stageAdd(StageShed, 0)
}

// Checkpoint records one checkpoint commit at in-order index next.
//
// pblint:hotpath — runs once per checkpoint on the aggregator.
func (l *Lane) Checkpoint(next int64, start, dur int64) {
	if l == nil {
		return
	}
	l.record(Event{Stage: StageCheckpoint, Lane: l.id, Index: next, Start: start, Dur: dur})
	l.stageAdd(StageCheckpoint, dur)
}

// ringEvents decodes the lane's ring, oldest first. Safe concurrently
// with recording (slots are atomic; a wrapped-over slot may decode as
// the newer event, which a best-effort flight recorder tolerates).
func (l *Lane) ringEvents() []Event {
	h := l.head.Load()
	n := h
	if n > uint64(l.ringLen) {
		n = uint64(l.ringLen)
	}
	out := make([]Event, 0, n)
	for seq := h - n; seq < h; seq++ {
		base := int(seq%uint64(l.ringLen)) * slotWords
		var w [slotWords]uint64
		for i := 0; i < slotWords; i++ {
			w[i] = l.ring[base+i].Load()
		}
		out = append(out, decodeEvent(w))
	}
	return out
}

// journeys snapshots the lane's kept and reservoir journeys.
func (l *Lane) journeys() []Journey {
	l.mu.Lock()
	out := make([]Journey, 0, len(l.kept)+len(l.tail))
	out = append(out, l.kept...)
	out = append(out, l.tail...)
	l.mu.Unlock()
	return out
}
