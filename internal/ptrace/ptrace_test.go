package ptrace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// manualClock is a hand-advanced deterministic clock.
type manualClock struct{ now int64 }

func (c *manualClock) read() int64   { return c.now }
func (c *manualClock) tick(ns int64) { c.now += ns }

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Lane(0) != nil || tr.Producer() != nil || tr.Committer() != nil {
		t.Fatal("nil tracer handed out a non-nil lane")
	}
	if tr.Now() != 0 || tr.Workers() != 0 {
		t.Fatal("nil tracer accessors not inert")
	}
	var l *Lane
	l.BatchStart(0, 1, 0, 0)
	start := l.ExecBegin(0, 0)
	l.ExecEnd(start, 0, 0, 0, 0, 0, 0)
	l.RetryWait(0, 1, 0)
	l.Quarantine(0, 1)
	l.EndPacket(0, 0, 0, nil)
	l.Read(0, 1, 0, 0)
	l.Shed(0, 1)
	l.Checkpoint(0, 0, 0)
	if err := tr.WriteTrace(&bytes.Buffer{}, ExportOptions{}); err == nil {
		t.Fatal("WriteTrace on a nil tracer should error")
	}
	if err := tr.WriteFlight(&bytes.Buffer{}, FlightInfo{}); err == nil {
		t.Fatal("WriteFlight on a nil tracer should error")
	}
	sum := tr.Summary(3)
	if len(sum.Stages) != NumStages || len(sum.Tail) != 0 {
		t.Fatalf("nil tracer summary = %+v", sum)
	}
}

func TestLaneRange(t *testing.T) {
	tr := New(Config{Lanes: 2})
	if tr.Workers() != 2 {
		t.Fatalf("Workers = %d, want 2", tr.Workers())
	}
	if tr.Lane(0) == nil || tr.Lane(1) == nil {
		t.Fatal("worker lanes missing")
	}
	if tr.Lane(2) != nil || tr.Lane(-1) != nil {
		t.Fatal("out-of-range lane should be nil")
	}
	if tr.Producer() == nil || tr.Committer() == nil || tr.Producer() == tr.Committer() {
		t.Fatal("producer/committer lanes wrong")
	}
}

func TestEventEncodeRoundTrip(t *testing.T) {
	ev := Event{
		Stage: StageExec, Mark: true, Attempt: 3, Engine: 2, Fault: 5,
		Lane: 7, Index: 123456789, Start: 42, Dur: 999,
		Count: 64, Verdict: 0xdeadbeef, Instrs: 1 << 40,
	}
	got := decodeEvent(ev.encode())
	if got != ev {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, ev)
	}
}

func TestRingWrap(t *testing.T) {
	clk := &manualClock{}
	tr := New(Config{Lanes: 1, RingEvents: 4, Clock: clk.read})
	prod := tr.Producer()
	for i := int64(0); i < 10; i++ {
		prod.Read(i, 1, clk.now, 10)
		clk.tick(100)
	}
	evs := prod.ringEvents()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(6 + i); ev.Index != want {
			t.Fatalf("ring[%d].Index = %d, want %d (oldest-first)", i, ev.Index, want)
		}
	}
}

func TestHeadSampling(t *testing.T) {
	clk := &manualClock{}
	tr := New(Config{Lanes: 1, SampleEvery: 2, TailK: 1, Clock: clk.read})
	l := tr.Lane(0)
	for i := int64(0); i < 6; i++ {
		start := l.ExecBegin(i, 0)
		clk.tick(50)
		l.ExecEnd(start, i, 0, 0, 10, 1, 0)
		l.EndPacket(i, 1, 0, nil)
	}
	// journeys() may hold a packet twice (kept store + reservoir), so
	// count distinct sampled indices.
	sampled := map[int64]bool{}
	for _, j := range l.journeys() {
		if j.Sampled {
			if j.Index%2 != 0 {
				t.Fatalf("sampled journey at odd index %d", j.Index)
			}
			sampled[j.Index] = true
		}
	}
	if len(sampled) != 3 {
		t.Fatalf("sampled %d distinct journeys, want 3 (indexes 0,2,4)", len(sampled))
	}
}

func TestTailReservoirKeepsSlowest(t *testing.T) {
	clk := &manualClock{}
	tr := New(Config{Lanes: 1, TailK: 2, Clock: clk.read})
	l := tr.Lane(0)
	for i, lat := range []int64{10, 50, 30, 70, 20} {
		start := l.ExecBegin(int64(i), 0)
		clk.tick(lat)
		l.ExecEnd(start, int64(i), 0, 0, 1, 0, 0)
		l.EndPacket(int64(i), 0, 0, nil)
	}
	sum := tr.Summary(2)
	if len(sum.Tail) != 2 {
		t.Fatalf("tail holds %d journeys, want 2", len(sum.Tail))
	}
	if sum.Tail[0].Index != 3 || sum.Tail[1].Index != 1 {
		t.Fatalf("tail = packets %d,%d (latencies %d,%d); want 3,1",
			sum.Tail[0].Index, sum.Tail[1].Index, sum.Tail[0].Latency, sum.Tail[1].Latency)
	}
}

func TestTailThresholdForcesKeep(t *testing.T) {
	clk := &manualClock{}
	tr := New(Config{Lanes: 1, TailNS: 40, TailK: 1, Clock: clk.read})
	l := tr.Lane(0)
	for i, lat := range []int64{10, 60, 15} {
		start := l.ExecBegin(int64(i), 0)
		clk.tick(lat)
		l.ExecEnd(start, int64(i), 0, 0, 1, 0, 0)
		l.EndPacket(int64(i), 0, 0, nil)
	}
	var kept []int64
	l.mu.Lock()
	for i := range l.kept {
		kept = append(kept, l.kept[i].Index)
	}
	l.mu.Unlock()
	if len(kept) != 1 || kept[0] != 1 {
		t.Fatalf("threshold kept %v, want [1]", kept)
	}
}

func TestKeptCapCountsDrops(t *testing.T) {
	clk := &manualClock{}
	tr := New(Config{Lanes: 1, SampleEvery: 1, MaxKept: 2, TailK: 1, Clock: clk.read})
	l := tr.Lane(0)
	for i := int64(0); i < 5; i++ {
		start := l.ExecBegin(i, 0)
		clk.tick(10)
		l.ExecEnd(start, i, 0, 0, 1, 0, 0)
		l.EndPacket(i, 0, 0, nil)
	}
	if got := tr.Summary(1).Dropped; got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
}

func TestStrideSampledBlocks(t *testing.T) {
	clk := &manualClock{}
	tr := New(Config{Lanes: 1, SampleEvery: 1, Clock: clk.read})
	l := tr.Lane(0)
	blocks := make([]int, 100)
	for i := range blocks {
		blocks[i] = i
	}
	start := l.ExecBegin(0, 0)
	clk.tick(10)
	l.ExecEnd(start, 0, 0, 0, 1, 0, 0)
	l.EndPacket(0, 0, 0, blocks)
	got := l.journeys()[0].Blocks()
	if len(got) != maxJourneyBlocks {
		t.Fatalf("kept %d blocks, want %d", len(got), maxJourneyBlocks)
	}
	if got[0] != 0 || got[len(got)-1] != 99 {
		t.Fatalf("stride sample %v should keep first and last block", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("stride sample %v not ascending", got)
		}
	}
}

func TestSummaryDedupPrefersSampled(t *testing.T) {
	clk := &manualClock{}
	// SampleEvery 1: every journey is head-sampled AND enters the
	// reservoir; the summary must count each packet once.
	tr := New(Config{Lanes: 1, SampleEvery: 1, TailK: 4, Clock: clk.read})
	l := tr.Lane(0)
	for i := int64(0); i < 3; i++ {
		start := l.ExecBegin(i, 0)
		clk.tick(10 * (i + 1))
		l.ExecEnd(start, i, 0, 0, 1, 0, 0)
		l.EndPacket(i, 0, 0, nil)
	}
	sum := tr.Summary(10)
	if len(sum.Tail) != 3 {
		t.Fatalf("tail = %d journeys, want 3 deduped", len(sum.Tail))
	}
	for _, j := range sum.Tail {
		if !j.Sampled {
			t.Fatalf("dedup should prefer the sampled copy of packet %d", j.Index)
		}
	}
}

func TestRingDumpDuringRecording(t *testing.T) {
	// The flight recorder reads rings while a cooperatively-unwedged
	// worker may still be writing; this must be race-detector clean.
	tr := New(Config{Lanes: 1, RingEvents: 8})
	l := tr.Lane(0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			start := l.ExecBegin(i, 0)
			l.ExecEnd(start, i, 0, 0, 1, 0, 0)
			l.EndPacket(i, 0, 0, nil)
		}
	}()
	for i := 0; i < 100; i++ {
		if err := tr.WriteFlight(&bytes.Buffer{}, FlightInfo{Cause: "test", Worker: 0, Index: -1}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// scenario drives a deterministic two-worker run through the tracer:
// worker 0 executes a sampled batch, worker 1 retries then quarantines
// a packet, the producer sheds a batch and the committer checkpoints.
func scenario() *Tracer {
	clk := &manualClock{}
	tr := New(Config{Lanes: 2, SampleEvery: 2, TailK: 2, RingEvents: 16, Clock: clk.read})
	prod := tr.Producer()

	clk.tick(100)
	prod.Read(0, 3, 100, 250)
	w0 := tr.Lane(0)
	clk.tick(400)
	w0.BatchStart(0, 3, 250, 150)
	for i := int64(0); i < 3; i++ {
		start := w0.ExecBegin(i, 0)
		clk.tick(1000 * (i + 1))
		w0.ExecEnd(start, i, 0, 1, uint64(200+10*i), uint32(40+i), 0)
		clk.tick(20)
		w0.EndPacket(i, uint32(40+i), 0, []int{0, 2, 5})
	}

	prod.Read(3, 1, 600, 80)
	w1 := tr.Lane(1)
	clk.tick(100)
	w1.BatchStart(3, 1, 80, 60)
	start := w1.ExecBegin(3, 0)
	clk.tick(700)
	w1.ExecEnd(start, 3, 0, 1, 0, 0, 3)
	clk.tick(50)
	w1.RetryWait(3, 1, 50)
	start = w1.ExecBegin(3, 1)
	clk.tick(800)
	w1.ExecEnd(start, 3, 1, 1, 0, 0, 3)
	w1.Quarantine(3, 3)
	w1.EndPacket(3, 0, 3, nil)

	prod.Shed(4, 2)
	clk.tick(200)
	tr.Committer().Checkpoint(4, clk.now, 90)
	return tr
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run go test ./internal/ptrace -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden file %s (rerun with -update if intended)\n got:\n%s\nwant:\n%s",
			name, path, got, want)
	}
}

func TestWriteTraceGolden(t *testing.T) {
	tr := scenario()
	var buf bytes.Buffer
	err := tr.WriteTrace(&buf, ExportOptions{
		App: "IPv4-radix", Trace: "MRA",
		Exemplars: []Exemplar{{BucketLE: 4096, ValueNS: 3020, Span: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace", buf.Bytes())
}

func TestWriteFlightGolden(t *testing.T) {
	tr := scenario()
	// Wedge worker 0 mid-packet: the open span's in-flight marker must
	// be the lane's final ring event.
	tr.Lane(0).ExecBegin(7, 0)
	var buf bytes.Buffer
	err := tr.WriteFlight(&buf, FlightInfo{
		Cause: "core: worker 0 stalled for 200ms on packet 7", Worker: 0, Index: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "flight", buf.Bytes())
}

func TestFlightDigestFindsWedgedWorker(t *testing.T) {
	tr := scenario()
	tr.Lane(0).ExecBegin(9, 1)
	evs := tr.lanes[0].ringEvents()
	last := evs[len(evs)-1]
	if !last.Mark || last.Stage != StageExec || last.Index != 9 {
		t.Fatalf("last ring event = %+v, want in-flight exec marker for packet 9", last)
	}
}
