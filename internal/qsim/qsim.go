// Package qsim is a discrete-event queueing simulator for a
// network-processor port: packets arrive on trace timestamps, wait in a
// bounded queue, and are serviced by a pool of engines whose per-packet
// service times come from PacketBench measurements.
//
// This realizes the paper's processing-delay use case ("it is possible
// to derive an analytic model to estimate the processing delay of a
// packet given an application ... useful in the context of network
// simulations, where processing delay is currently not or only
// superficially considered"): instead of an averaged delay, the
// simulation propagates the full measured per-packet service-time
// distribution through a queueing system and reports waiting-time
// percentiles, utilization, and loss.
package qsim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Job is one packet's arrival and demand.
type Job struct {
	// Arrival is the packet's arrival time in seconds (from trace
	// timestamps).
	Arrival float64
	// Service is the packet's processing time in seconds (cycles from a
	// PacketBench record divided by the engine clock).
	Service float64
}

// Config parameterizes the simulated port.
type Config struct {
	// Engines is the number of parallel processing engines.
	Engines int
	// QueueLimit bounds the number of packets waiting (not in service);
	// arrivals beyond it are dropped. Zero means unbounded.
	QueueLimit int
}

// Result summarizes a simulation run.
type Result struct {
	Completed int
	Dropped   int
	// Delays holds each completed packet's total delay (wait + service)
	// in seconds, in completion order.
	Delays []float64
	// MaxQueue is the largest waiting-queue depth observed.
	MaxQueue int
	// Utilization is busy engine-time over total engine-time.
	Utilization float64
	// Makespan is the time from the first arrival to the last departure.
	Makespan float64
}

// MeanDelay returns the average total delay.
func (r *Result) MeanDelay() float64 {
	if len(r.Delays) == 0 {
		return 0
	}
	var s float64
	for _, d := range r.Delays {
		s += d
	}
	return s / float64(len(r.Delays))
}

// Percentile returns the p-th percentile delay (0 < p <= 100).
func (r *Result) Percentile(p float64) float64 {
	if len(r.Delays) == 0 {
		return 0
	}
	sorted := append([]float64(nil), r.Delays...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// engineHeap orders engines by the time they become free.
type engineHeap []float64

func (h engineHeap) Len() int           { return len(h) }
func (h engineHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h engineHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *engineHeap) Push(x any)        { *h = append(*h, x.(float64)) }
func (h *engineHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// Run simulates FCFS service of the jobs (which must be sorted by
// arrival time) on the configured port.
func Run(jobs []Job, cfg Config) (*Result, error) {
	if cfg.Engines < 1 {
		return nil, fmt.Errorf("qsim: need at least one engine")
	}
	if cfg.QueueLimit < 0 {
		return nil, fmt.Errorf("qsim: negative queue limit")
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Arrival < jobs[i-1].Arrival {
			return nil, fmt.Errorf("qsim: jobs not sorted by arrival (job %d)", i)
		}
	}
	res := &Result{}
	if len(jobs) == 0 {
		return res, nil
	}

	// Engine free-times; all free at the first arrival.
	free := make(engineHeap, cfg.Engines)
	start := jobs[0].Arrival
	for i := range free {
		free[i] = start
	}
	heap.Init(&free)

	var busy float64
	var lastDeparture float64
	// FCFS with a bounded waiting room: a packet waits if all engines
	// are busy at its arrival; it is dropped if, at its arrival, the
	// number of packets that arrived earlier and are still waiting
	// reaches the limit. With FCFS the waiting set at time t is exactly
	// the earlier jobs whose service hasn't started, which we track by
	// their start times.
	startTimes := make([]float64, 0, len(jobs))
	admitted := make([]Job, 0, len(jobs))
	for _, j := range jobs {
		if cfg.QueueLimit > 0 {
			// Count admitted jobs still waiting at j.Arrival.
			waiting := 0
			for k := len(startTimes) - 1; k >= 0; k-- {
				if startTimes[k] > j.Arrival {
					waiting++
				} else {
					break // start times are nondecreasing under FCFS
				}
			}
			if waiting >= cfg.QueueLimit {
				res.Dropped++
				continue
			}
		}
		freeAt := heap.Pop(&free).(float64)
		begin := math.Max(freeAt, j.Arrival)
		end := begin + j.Service
		heap.Push(&free, end)
		startTimes = append(startTimes, begin)
		admitted = append(admitted, j)
		busy += j.Service
		if end > lastDeparture {
			lastDeparture = end
		}
		res.Delays = append(res.Delays, end-j.Arrival)
		res.Completed++
	}
	// Max waiting-queue depth: at each admitted job's arrival, count the
	// earlier admitted jobs still waiting plus the job itself if it has
	// to wait. (FCFS start times are nondecreasing, so the backward scan
	// can stop at the first started job.)
	for i := range admitted {
		depth := 0
		if startTimes[i] > admitted[i].Arrival {
			depth = 1
		}
		for k := i - 1; k >= 0; k-- {
			if startTimes[k] > admitted[i].Arrival {
				depth++
			} else {
				break
			}
		}
		if depth > res.MaxQueue {
			res.MaxQueue = depth
		}
	}
	res.Makespan = lastDeparture - start
	if res.Makespan > 0 {
		res.Utilization = busy / (res.Makespan * float64(cfg.Engines))
	}
	return res, nil
}

// JobsFromMeasurements builds the job list from trace timestamps and
// per-packet cycle counts: arrivals from (sec, usec) pairs, service
// times as cycles/clockHz. Inputs must be index-aligned.
func JobsFromMeasurements(secs, usecs []uint32, cycles []uint64, clockHz float64) ([]Job, error) {
	if len(secs) != len(usecs) || len(secs) != len(cycles) {
		return nil, fmt.Errorf("qsim: mismatched input lengths %d/%d/%d", len(secs), len(usecs), len(cycles))
	}
	if clockHz <= 0 {
		return nil, fmt.Errorf("qsim: clock must be positive")
	}
	jobs := make([]Job, len(secs))
	var base float64
	for i := range secs {
		t := float64(secs[i]) + float64(usecs[i])/1e6
		if i == 0 {
			base = t
		}
		if t-base < 0 && i > 0 {
			return nil, fmt.Errorf("qsim: timestamps go backwards at packet %d", i)
		}
		jobs[i] = Job{Arrival: t - base, Service: float64(cycles[i]) / clockHz}
	}
	return jobs, nil
}
