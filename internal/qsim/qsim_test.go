package qsim

import (
	"math"
	"math/rand"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestLightLoadNoWaiting(t *testing.T) {
	// Arrivals far apart: every packet is serviced immediately; delay ==
	// service time.
	jobs := []Job{
		{Arrival: 0, Service: 0.001},
		{Arrival: 1, Service: 0.002},
		{Arrival: 2, Service: 0.003},
	}
	res, err := Run(jobs, Config{Engines: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 3 || res.Dropped != 0 {
		t.Fatalf("completed %d, dropped %d", res.Completed, res.Dropped)
	}
	for i, want := range []float64{0.001, 0.002, 0.003} {
		if !almost(res.Delays[i], want) {
			t.Errorf("delay %d = %v, want %v", i, res.Delays[i], want)
		}
	}
	if res.MaxQueue != 0 {
		t.Errorf("MaxQueue = %d", res.MaxQueue)
	}
	if !almost(res.Makespan, 2.003) {
		t.Errorf("Makespan = %v", res.Makespan)
	}
}

func TestBackToBackQueueing(t *testing.T) {
	// Three simultaneous arrivals on one engine: delays 1, 2, 3 x
	// service.
	jobs := []Job{
		{Arrival: 0, Service: 1},
		{Arrival: 0, Service: 1},
		{Arrival: 0, Service: 1},
	}
	res, err := Run(jobs, Config{Engines: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 2, 3} {
		if !almost(res.Delays[i], want) {
			t.Errorf("delay %d = %v, want %v", i, res.Delays[i], want)
		}
	}
	if res.MaxQueue != 2 {
		t.Errorf("MaxQueue = %d, want 2", res.MaxQueue)
	}
	if !almost(res.Utilization, 1) {
		t.Errorf("Utilization = %v, want 1", res.Utilization)
	}
	// Two engines halve the backlog.
	res2, _ := Run(jobs, Config{Engines: 2})
	if !almost(res2.Delays[2], 2) {
		t.Errorf("2-engine third delay = %v, want 2", res2.Delays[2])
	}
}

func TestQueueLimitDrops(t *testing.T) {
	// One engine, service 1s, four simultaneous arrivals, waiting room 1:
	// first enters service, second waits, the rest drop.
	jobs := []Job{
		{Arrival: 0, Service: 1},
		{Arrival: 0, Service: 1},
		{Arrival: 0, Service: 1},
		{Arrival: 0, Service: 1},
	}
	res, err := Run(jobs, Config{Engines: 1, QueueLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 || res.Dropped != 2 {
		t.Fatalf("completed %d, dropped %d; want 2/2", res.Completed, res.Dropped)
	}
	// After the first departs, a later arrival is admitted again.
	jobs = append(jobs, Job{Arrival: 5, Service: 1})
	res, _ = Run(jobs, Config{Engines: 1, QueueLimit: 1})
	if res.Completed != 3 {
		t.Errorf("late arrival not admitted: completed %d", res.Completed)
	}
}

func TestUtilizationPartial(t *testing.T) {
	// One 1s job on 2 engines over a 1s makespan: utilization 0.5.
	res, err := Run([]Job{{Arrival: 0, Service: 1}}, Config{Engines: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Utilization, 0.5) {
		t.Errorf("Utilization = %v", res.Utilization)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(nil, Config{Engines: 0}); err == nil {
		t.Error("0 engines accepted")
	}
	if _, err := Run(nil, Config{Engines: 1, QueueLimit: -1}); err == nil {
		t.Error("negative queue limit accepted")
	}
	unsorted := []Job{{Arrival: 1}, {Arrival: 0}}
	if _, err := Run(unsorted, Config{Engines: 1}); err == nil {
		t.Error("unsorted arrivals accepted")
	}
	res, err := Run(nil, Config{Engines: 1})
	if err != nil || res.Completed != 0 {
		t.Errorf("empty run: %+v, %v", res, err)
	}
	if res.MeanDelay() != 0 || res.Percentile(99) != 0 {
		t.Error("empty result statistics nonzero")
	}
}

func TestPercentiles(t *testing.T) {
	res := &Result{Delays: []float64{4, 1, 3, 2, 5}}
	if got := res.Percentile(50); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := res.Percentile(100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := res.Percentile(1); got != 1 {
		t.Errorf("p1 = %v", got)
	}
	if got := res.MeanDelay(); got != 3 {
		t.Errorf("mean = %v", got)
	}
}

func TestMoreEnginesNeverWorse(t *testing.T) {
	// Property: mean delay is nonincreasing in the engine count.
	rng := rand.New(rand.NewSource(5))
	jobs := make([]Job, 500)
	tm := 0.0
	for i := range jobs {
		tm += rng.Float64() * 0.001
		jobs[i] = Job{Arrival: tm, Service: rng.Float64() * 0.004}
	}
	prev := math.Inf(1)
	for _, engines := range []int{1, 2, 4, 8} {
		res, err := Run(jobs, Config{Engines: engines})
		if err != nil {
			t.Fatal(err)
		}
		if m := res.MeanDelay(); m > prev+1e-12 {
			t.Errorf("%d engines mean delay %v exceeds %v with fewer", engines, m, prev)
		} else {
			prev = m
		}
	}
}

func TestDelayLowerBoundIsService(t *testing.T) {
	// Property: every delay >= its own service time; under FCFS with one
	// engine, delays also include all earlier residual work.
	rng := rand.New(rand.NewSource(7))
	jobs := make([]Job, 200)
	tm := 0.0
	for i := range jobs {
		tm += rng.Float64() * 0.002
		jobs[i] = Job{Arrival: tm, Service: 0.001 + rng.Float64()*0.002}
	}
	res, err := Run(jobs, Config{Engines: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range res.Delays {
		if d < jobs[i].Service-1e-12 {
			t.Fatalf("delay %d (%v) below its service time (%v)", i, d, jobs[i].Service)
		}
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Errorf("utilization %v out of range", res.Utilization)
	}
}

func TestJobsFromMeasurements(t *testing.T) {
	secs := []uint32{100, 100, 101}
	usecs := []uint32{0, 500000, 250000}
	cycles := []uint64{1000, 2000, 3000}
	jobs, err := JobsFromMeasurements(secs, usecs, cycles, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(jobs[0].Arrival, 0) || !almost(jobs[1].Arrival, 0.5) || !almost(jobs[2].Arrival, 1.25) {
		t.Errorf("arrivals = %+v", jobs)
	}
	if !almost(jobs[0].Service, 1e-6) || !almost(jobs[2].Service, 3e-6) {
		t.Errorf("services = %+v", jobs)
	}
	if _, err := JobsFromMeasurements(secs, usecs[:2], cycles, 1e9); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := JobsFromMeasurements(secs, usecs, cycles, 0); err == nil {
		t.Error("zero clock accepted")
	}
}

// TestMM1AgainstTheory validates the simulator against the closed-form
// M/M/1 queue: with Poisson arrivals (rate lambda) and exponential
// service (rate mu), the mean sojourn time is 1/(mu-lambda). At rho=0.5
// that is exactly twice the mean service time.
func TestMM1AgainstTheory(t *testing.T) {
	const (
		n      = 60000
		mu     = 1000.0 // services per second
		lambda = 500.0  // arrivals per second (rho = 0.5)
	)
	rng := rand.New(rand.NewSource(42))
	jobs := make([]Job, n)
	tm := 0.0
	for i := range jobs {
		tm += rng.ExpFloat64() / lambda
		jobs[i] = Job{Arrival: tm, Service: rng.ExpFloat64() / mu}
	}
	res, err := Run(jobs, Config{Engines: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / (mu - lambda) // 2ms mean sojourn
	got := res.MeanDelay()
	if math.Abs(got-want)/want > 0.10 {
		t.Errorf("M/M/1 mean sojourn = %.4fms, theory %.4fms (>10%% off)", got*1e3, want*1e3)
	}
	// Utilization approaches rho.
	if math.Abs(res.Utilization-0.5) > 0.05 {
		t.Errorf("utilization = %.3f, theory 0.5", res.Utilization)
	}
}

// TestMMcAgainstTheory validates the multi-engine path against M/M/c
// (Erlang C): for c=2, mu=1000, lambda=1000 (rho=0.5 per engine), the
// mean wait is C(2, 1)/(2*mu - lambda) with C the Erlang-C probability.
func TestMMcAgainstTheory(t *testing.T) {
	const (
		n      = 60000
		c      = 2
		mu     = 1000.0
		lambda = 1000.0
	)
	rng := rand.New(rand.NewSource(43))
	jobs := make([]Job, n)
	tm := 0.0
	for i := range jobs {
		tm += rng.ExpFloat64() / lambda
		jobs[i] = Job{Arrival: tm, Service: rng.ExpFloat64() / mu}
	}
	res, err := Run(jobs, Config{Engines: c})
	if err != nil {
		t.Fatal(err)
	}
	// Erlang C for c=2, a = lambda/mu = 1: C = a^c / (c! (1-rho)) /
	// (sum_{k<c} a^k/k! + a^c/(c!(1-rho))) = (1/ (2*0.5)) / (1 + 1 + 1) ... compute directly:
	a := lambda / mu // offered load = 1
	rho := a / c     // 0.5
	sum := 1.0 + a   // k=0,1 terms of a^k/k!
	last := a * a / 2 / (1 - rho)
	erlangC := last / (sum + last)
	want := erlangC/(float64(c)*mu-lambda) + 1/mu // wait + service
	got := res.MeanDelay()
	if math.Abs(got-want)/want > 0.10 {
		t.Errorf("M/M/2 mean sojourn = %.4fms, theory %.4fms", got*1e3, want*1e3)
	}
}
