package report

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden files instead of comparing against
// them: go test ./internal/report/ -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files with current output")

// checkGolden compares got against testdata/<name>.golden, or rewrites
// the file under -update. The environment is deterministic (seeded
// generators, fixed iteration orders — see TestEnvDeterminism), so the
// formatted reports are byte-stable across runs and platforms.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (rerun with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s output differs from golden file; rerun with -update if the change is intended.\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

func TestGoldenVariationTables(t *testing.T) {
	for _, tc := range []struct {
		name   string
		unique bool
	}{
		{"variation_total", false},
		{"variation_unique", true},
	} {
		rows, err := sharedEnv.Variation(tc.unique)
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, tc.name, FormatVariation(rows, tc.unique, testConfig.VariationPackets))
	}
}

func TestGoldenTable4MemoryCoverage(t *testing.T) {
	rows, err := sharedEnv.Table4()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table4_coverage", FormatTable4(rows, testConfig.CoveragePackets))
}

func TestGoldenHotBlocks(t *testing.T) {
	rows, err := sharedEnv.HotBlocks("IPv4-radix", "MRA", testConfig.TablePackets, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no hot blocks ranked")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Block.Count > rows[i-1].Block.Count {
			t.Fatalf("ranking not descending at %d: %d > %d", i, rows[i].Block.Count, rows[i-1].Block.Count)
		}
	}
	checkGolden(t, "hot_blocks_radix",
		FormatHotBlocks("IPv4-radix", "MRA", rows, testConfig.TablePackets))
}
