// Package report regenerates every table and figure of the paper's
// evaluation section (Tables I-VI, Figures 3-9) from the reproduction's
// own substrates: synthetic traces standing in for the NLANR/LAN
// captures, a traffic-derived routing table standing in for MAE-WEST, and
// the four PB32 applications running on the simulated core.
//
// Every experiment is deterministic. Counts are configurable so the same
// harness serves the full paper-scale runs (cmd/pbreport, bench_test.go)
// and fast regression tests.
package report

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/microarch"
	"repro/internal/packet"
	"repro/internal/profile"
	"repro/internal/route"
	"repro/internal/stats"
	"repro/internal/textplot"
	"repro/internal/trace"
	"repro/internal/vm"
)

// AppNames lists the four applications in the paper's column order.
var AppNames = []string{"IPv4-radix", "IPv4-trie", "Flow Classification", "TSA"}

// TraceNames lists the four traces in the paper's row order.
var TraceNames = []string{"MRA", "COS", "ODU", "LAN"}

// Config scales the experiments. The zero value selects the paper's
// parameters (10,000 packets for Tables II/III, 1,000 for Table IV,
// 100,000 for Tables V/VI, 500 for the per-packet figures).
type Config struct {
	// TablePackets is the per-trace packet count for Tables II and III.
	TablePackets int
	// CoveragePackets is the packet count for Table IV.
	CoveragePackets int
	// VariationPackets is the packet count for Tables V and VI.
	VariationPackets int
	// FigurePackets is the packet count for Figures 3-5, 7 and 8.
	FigurePackets int
	// RoutePrefixes bounds the traffic-derived routing table size.
	RoutePrefixes int
	// SmallRoutePrefixes is the size of the separate small table the
	// paper notes it used for IPv4-trie in Table IV.
	SmallRoutePrefixes int
	// FlowBuckets is the classifier's hash size.
	FlowBuckets int
	// TSAKey keys the anonymization tables.
	TSAKey uint64
}

func (c Config) withDefaults() Config {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.TablePackets, 10_000)
	def(&c.CoveragePackets, 1_000)
	def(&c.VariationPackets, 100_000)
	def(&c.FigurePackets, 500)
	def(&c.RoutePrefixes, 32_768)
	def(&c.SmallRoutePrefixes, 1_024)
	// A low-load-factor flow table reproduces the paper's Table V
	// concentration (the three most common instruction counts covering
	// ~94% of packets requires short collision chains).
	def(&c.FlowBuckets, 8*flow.DefaultBuckets)
	if c.TSAKey == 0 {
		c.TSAKey = 0x5453412D31363A31 // arbitrary fixed key
	}
	return c
}

// Env is the shared experimental environment: generated traces and the
// routing tables derived from them.
type Env struct {
	cfg    Config
	traces map[string][]*trace.Packet
	// Table is the MAE-WEST stand-in shared by the forwarding apps.
	Table *route.Table
	// SmallTable is the small table the paper used for IPv4-trie's
	// Table IV measurement.
	SmallTable *route.Table
}

// NewEnv generates every trace at the maximum length any experiment
// needs and derives the routing tables. The paper's preprocessing is
// applied to the backbone traces (MRA, COS, ODU): NLANR-style sequential
// renumbering followed by the scrambling that restores uniform routing
// table coverage. The LAN trace is used raw, as in the paper.
func NewEnv(cfg Config) *Env {
	cfg = cfg.withDefaults()
	maxLen := cfg.TablePackets
	for _, n := range []int{cfg.CoveragePackets, cfg.VariationPackets, cfg.FigurePackets} {
		if n > maxLen {
			maxLen = n
		}
	}
	e := &Env{cfg: cfg, traces: make(map[string][]*trace.Packet)}
	var dsts []uint32
	for _, prof := range gen.Profiles() {
		pkts := gen.Generate(prof, maxLen)
		if prof.Name != "LAN" {
			gen.RenumberNLANR(pkts)
			gen.ScrambleAddrs(pkts)
		}
		e.traces[prof.Name] = pkts
		// Sample destinations from every trace for the shared table (the
		// paper's table covers the traffic it routes).
		for i := 0; i < len(pkts); i += 4 {
			h, err := packet.ParseIPv4(pkts[i].Data)
			if err == nil {
				dsts = append(dsts, h.Dst)
			}
		}
	}
	e.Table = route.TableFromTraffic(dsts, cfg.RoutePrefixes, 16, 0x4D414557) // "MAEW"
	e.SmallTable = route.TableFromTraffic(dsts, cfg.SmallRoutePrefixes, 16, 0x534D4C)
	return e
}

// Config returns the resolved configuration.
func (e *Env) Config() Config { return e.cfg }

// Trace returns the first n packets of a named trace.
func (e *Env) Trace(name string, n int) []*trace.Packet {
	pkts := e.traces[name]
	if n > len(pkts) {
		n = len(pkts)
	}
	return pkts[:n]
}

// app instantiates one of the four applications by name.
func (e *Env) app(name string) *core.App {
	switch name {
	case "IPv4-radix":
		return apps.IPv4Radix(e.Table)
	case "IPv4-trie":
		return apps.IPv4Trie(e.Table)
	case "Flow Classification":
		return apps.FlowClassification(e.cfg.FlowBuckets)
	case "TSA":
		return apps.TSAApp(e.cfg.TSAKey)
	}
	panic("report: unknown application " + name)
}

// Run executes app on the first n packets of the named trace and returns
// the bench (for coverage queries) and records.
func (e *Env) Run(appName, traceName string, n int, opts core.Options) (*core.Bench, []stats.PacketRecord, error) {
	opts.KeepRecords = false // records returned explicitly
	b, err := core.New(e.app(appName), opts)
	if err != nil {
		return nil, nil, err
	}
	recs, err := b.RunPackets(e.Trace(traceName, n), nil)
	return b, recs, err
}

// Profile runs appName over the first n packets of the named trace with
// per-instruction counting enabled and returns the guest-program
// profile (pbreport -profile).
func (e *Env) Profile(appName, traceName string, n int) (*profile.Profile, error) {
	app := e.app(appName)
	b, err := core.New(app, core.Options{})
	if err != nil {
		return nil, err
	}
	b.Collector().CountPCs = true
	if _, err := b.RunPackets(e.Trace(traceName, n), nil); err != nil {
		return nil, err
	}
	var entries []string
	if app.Entry != "" {
		entries = []string{app.Entry}
	}
	return profile.Build(b.Program(), b.Collector().PCCounts,
		profile.Options{Entries: entries, AppName: appName})
}

// HotBlockRow is one ranked basic block of a recorded profile: the
// block, its enclosing function, and its per-packet cost — the
// selection view the compiled tier's profile-guided compilation acts
// on (pbreport -hot).
type HotBlockRow struct {
	Block profile.HotBlock
	// Func names the enclosing function; Offset is the block leader's
	// byte offset from the function entry.
	Func   string
	Offset uint32
	// PerPacket is the block's retired instructions per packet;
	// Share its fraction of every counted instruction.
	PerPacket float64
	Share     float64
}

// HotBlocks runs appName over the first n packets of the named trace
// with per-instruction counting and returns the top k basic blocks by
// retired instructions (profile.HotBlocks), annotated with their
// enclosing function and per-packet cost.
func (e *Env) HotBlocks(appName, traceName string, n, k int) ([]HotBlockRow, error) {
	app := e.app(appName)
	b, err := core.New(app, core.Options{})
	if err != nil {
		return nil, err
	}
	b.Collector().CountPCs = true
	if _, err := b.RunPackets(e.Trace(traceName, n), nil); err != nil {
		return nil, err
	}
	counts := b.Collector().PCCounts
	hot, err := profile.HotBlocks(b.Program(), counts, k)
	if err != nil {
		return nil, err
	}
	var entries []string
	if app.Entry != "" {
		entries = []string{app.Entry}
	}
	p, err := profile.Build(b.Program(), counts, profile.Options{Entries: entries, AppName: appName})
	if err != nil {
		return nil, err
	}
	rows := make([]HotBlockRow, 0, len(hot))
	for _, hb := range hot {
		row := HotBlockRow{Block: hb, Func: fmt.Sprintf("0x%08x", hb.Addr)}
		// Funcs are ordered by entry address: the enclosing function is
		// the last one starting at or below the block leader.
		for _, f := range p.Funcs {
			if f.Addr > hb.Addr {
				break
			}
			row.Func, row.Offset = f.Name, hb.Addr-f.Addr
		}
		if n > 0 {
			row.PerPacket = float64(hb.Count) / float64(n)
		}
		if p.Total > 0 {
			row.Share = float64(hb.Count) / float64(p.Total)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatHotBlocks renders one application's hot-block ranking.
func FormatHotBlocks(appName, traceName string, rows []HotBlockRow, packets int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hot blocks: %s on %s (first %d packets)\n", appName, traceName, packets)
	fmt.Fprintf(&b, "%4s %-10s %-26s %6s %12s %12s %7s\n",
		"rank", "block", "function", "len", "instrs", "instrs/pkt", "share")
	for i, r := range rows {
		loc := r.Func
		if r.Offset != 0 {
			loc = fmt.Sprintf("%s+0x%x", r.Func, r.Offset)
		}
		fmt.Fprintf(&b, "%4d 0x%08x %-26s %6d %12d %12.1f %6.1f%%\n",
			i+1, r.Block.Addr, loc, r.Block.Len, r.Block.Count, r.PerPacket, 100*r.Share)
	}
	return b.String()
}

// ----------------------------------------------------------------------
// Table I

// Table1Row is one trace inventory row.
type Table1Row struct {
	Name    string
	Type    string
	Packets int
}

// Table1 reproduces the trace inventory. Packet counts are the nominal
// full-trace sizes from the paper; the generators produce any prefix of
// each trace on demand.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, p := range gen.Profiles() {
		rows = append(rows, Table1Row{Name: p.Name, Type: p.Link, Packets: p.Packets})
	}
	return rows
}

// FormatTable1 renders Table I.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table I: Packet traces used to evaluate applications\n")
	fmt.Fprintf(&b, "%-8s %-20s %12s\n", "Trace", "Type", "Packets")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-20s %12d\n", r.Name, r.Type, r.Packets)
	}
	return b.String()
}

// ----------------------------------------------------------------------
// Tables II and III (produced by one run matrix)

// MatrixCell holds the per-(trace, app) averages used by Tables II/III.
type MatrixCell struct {
	MeanInstructions float64
	MeanPacketAcc    float64
	MeanNonPacketAcc float64
}

// Matrix is the Tables II/III result: cell[trace][app].
type Matrix struct {
	Packets int
	Cells   map[string]map[string]MatrixCell
}

// RunMatrix executes all four applications over all four traces.
func (e *Env) RunMatrix(packets int) (*Matrix, error) {
	if packets == 0 {
		packets = e.cfg.TablePackets
	}
	m := &Matrix{Packets: packets, Cells: make(map[string]map[string]MatrixCell)}
	for _, tr := range TraceNames {
		m.Cells[tr] = make(map[string]MatrixCell)
		for _, app := range AppNames {
			_, recs, err := e.Run(app, tr, packets, core.Options{})
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", app, tr, err)
			}
			s := stats.Summarize(recs)
			m.Cells[tr][app] = MatrixCell{
				MeanInstructions: s.MeanInstructions,
				MeanPacketAcc:    s.MeanPacketAcc,
				MeanNonPacketAcc: s.MeanNonPacketAcc,
			}
		}
	}
	return m, nil
}

// FormatTable2 renders the instructions-per-packet matrix.
func FormatTable2(m *Matrix) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: Average instructions per packet (%d packets per trace)\n", m.Packets)
	fmt.Fprintf(&b, "%-8s", "Trace")
	for _, app := range AppNames {
		fmt.Fprintf(&b, " %20s", app)
	}
	b.WriteByte('\n')
	sums := make(map[string]float64)
	for _, tr := range TraceNames {
		fmt.Fprintf(&b, "%-8s", tr)
		for _, app := range AppNames {
			v := m.Cells[tr][app].MeanInstructions
			sums[app] += v
			fmt.Fprintf(&b, " %20.0f", v)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-8s", "Average")
	for _, app := range AppNames {
		fmt.Fprintf(&b, " %20.0f", sums[app]/float64(len(TraceNames)))
	}
	b.WriteByte('\n')
	return b.String()
}

// FormatTable3 renders the packet/non-packet memory access matrix.
func FormatTable3(m *Matrix) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III: Average accesses to packet / non-packet memory (%d packets per trace)\n", m.Packets)
	fmt.Fprintf(&b, "%-8s", "Trace")
	for _, app := range AppNames {
		fmt.Fprintf(&b, " %20s", app)
	}
	b.WriteByte('\n')
	pktSum := make(map[string]float64)
	nonSum := make(map[string]float64)
	for _, tr := range TraceNames {
		fmt.Fprintf(&b, "%-8s", tr)
		for _, app := range AppNames {
			c := m.Cells[tr][app]
			pktSum[app] += c.MeanPacketAcc
			nonSum[app] += c.MeanNonPacketAcc
			fmt.Fprintf(&b, " %9.0f /%9.0f", c.MeanPacketAcc, c.MeanNonPacketAcc)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-8s", "Average")
	for _, app := range AppNames {
		n := float64(len(TraceNames))
		fmt.Fprintf(&b, " %9.0f /%9.0f", pktSum[app]/n, nonSum[app]/n)
	}
	b.WriteByte('\n')
	return b.String()
}

// ----------------------------------------------------------------------
// Table IV

// Table4Row reports the touched memory footprint of one application.
type Table4Row struct {
	App          string
	InstrMemSize int
	DataMemSize  int
}

// Table4 measures instruction and data memory sizes over the first
// CoveragePackets packets of MRA. Matching the paper's methodology note,
// IPv4-trie runs over the small routing table.
func (e *Env) Table4() ([]Table4Row, error) {
	var rows []Table4Row
	for _, name := range AppNames {
		app := e.app(name)
		if name == "IPv4-trie" {
			app = apps.IPv4Trie(e.SmallTable)
		}
		b, err := core.New(app, core.Options{Coverage: true})
		if err != nil {
			return nil, err
		}
		if _, err := b.RunPackets(e.Trace("MRA", e.cfg.CoveragePackets), nil); err != nil {
			return nil, err
		}
		rows = append(rows, Table4Row{
			App:          name,
			InstrMemSize: b.Collector().InstrMemSize(),
			DataMemSize:  b.Collector().DataMemSize(),
		})
	}
	return rows, nil
}

// FormatTable4 renders Table IV.
func FormatTable4(rows []Table4Row, packets int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table IV: Instruction and data memory sizes in bytes (first %d MRA packets)\n", packets)
	fmt.Fprintf(&b, "%-22s %18s %16s\n", "Application", "Instr. mem size", "Data mem size")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %18d %16d\n", r.App, r.InstrMemSize, r.DataMemSize)
	}
	return b.String()
}

// ----------------------------------------------------------------------
// Tables V and VI

// VariationRow is one application's occurrence table.
type VariationRow struct {
	App   string
	Table analysis.OccurrenceTable
}

// Variation computes the Table V (total instructions) or Table VI
// (unique instructions) distributions over the first VariationPackets
// packets of COS.
func (e *Env) Variation(unique bool) ([]VariationRow, error) {
	var rows []VariationRow
	for _, name := range AppNames {
		_, recs, err := e.Run(name, "COS", e.cfg.VariationPackets, core.Options{})
		if err != nil {
			return nil, err
		}
		values := stats.InstructionCounts(recs)
		if unique {
			values = stats.UniqueCounts(recs)
		}
		rows = append(rows, VariationRow{App: name, Table: analysis.Occurrences(values, 3)})
	}
	return rows, nil
}

// FormatVariation renders Table V or Table VI.
func FormatVariation(rows []VariationRow, unique bool, packets int) string {
	var b strings.Builder
	kind, num := "executed", "V"
	if unique {
		kind, num = "unique executed", "VI"
	}
	fmt.Fprintf(&b, "Table %s: Variation of %s instructions (%d COS packets)\n", num, kind, packets)
	fmt.Fprintf(&b, "%-22s %-14s %-14s %-14s %-14s %-14s %8s\n",
		"Application", "1st", "2nd", "3rd", "Min", "Max", "Avg")
	for _, r := range rows {
		occ := func(o analysis.Occurrence) string {
			return fmt.Sprintf("%d (%.2f%%)", o.Value, o.Pct(r.Table.Total))
		}
		cols := make([]string, 3)
		for i := range cols {
			if i < len(r.Table.Top) {
				cols[i] = occ(r.Table.Top[i])
			} else {
				cols[i] = "-"
			}
		}
		fmt.Fprintf(&b, "%-22s %-14s %-14s %-14s %-14s %-14s %8.0f\n",
			r.App, cols[0], cols[1], cols[2], occ(r.Table.Min), occ(r.Table.Max), r.Table.Mean)
	}
	return b.String()
}

// ----------------------------------------------------------------------
// Figures 3-5: per-packet series for IPv4-radix and Flow Classification

// Series is a per-packet metric series for one application.
type Series struct {
	App    string
	Values []float64
}

// FigureSeries produces the per-packet series of Figures 3 (instruction
// counts), 4 (packet memory accesses) and 5 (non-packet memory accesses)
// for the two applications the paper plots, over the first FigurePackets
// packets of MRA.
func (e *Env) FigureSeries(metric func(*stats.PacketRecord) float64) ([]Series, error) {
	var out []Series
	for _, name := range []string{"IPv4-radix", "Flow Classification"} {
		_, recs, err := e.Run(name, "MRA", e.cfg.FigurePackets, core.Options{})
		if err != nil {
			return nil, err
		}
		s := Series{App: name, Values: make([]float64, len(recs))}
		for i := range recs {
			s.Values[i] = metric(&recs[i])
		}
		out = append(out, s)
	}
	return out, nil
}

// MetricInstructions extracts Figure 3's metric.
func MetricInstructions(r *stats.PacketRecord) float64 { return float64(r.Instructions) }

// MetricPacketAccesses extracts Figure 4's metric.
func MetricPacketAccesses(r *stats.PacketRecord) float64 { return float64(r.PacketAccesses()) }

// MetricNonPacketAccesses extracts Figure 5's metric.
func MetricNonPacketAccesses(r *stats.PacketRecord) float64 { return float64(r.NonPacketAccesses()) }

// FormatSeries renders one figure's scatter plots.
func FormatSeries(title, ylabel string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, s := range series {
		xs := make([]float64, len(s.Values))
		for i := range xs {
			xs[i] = float64(i)
		}
		b.WriteString(textplot.Scatter(xs, s.Values, 72, 14,
			fmt.Sprintf("(%s) %s vs packet", s.App, ylabel)))
		b.WriteByte('\n')
	}
	return b.String()
}

// ----------------------------------------------------------------------
// Figure 6: instruction pattern of a single packet

// Pattern is the instruction access pattern of one packet.
type Pattern struct {
	App     string
	Indices []int // unique-instruction index per executed instruction
	Unique  int
}

// Figure6 extracts the instruction pattern of a representative packet
// (the pktIndex-th MRA packet).
func (e *Env) Figure6(pktIndex int) ([]Pattern, error) {
	var out []Pattern
	for _, name := range []string{"IPv4-radix", "Flow Classification"} {
		b, err := core.New(e.app(name), core.Options{Detail: true})
		if err != nil {
			return nil, err
		}
		pkts := e.Trace("MRA", pktIndex+1)
		if _, err := b.RunPackets(pkts, nil); err != nil {
			return nil, err
		}
		pattern := analysis.InstructionPattern(b.Collector().InstrTrace)
		out = append(out, Pattern{
			App:     name,
			Indices: pattern,
			Unique:  analysis.UniqueCount(b.Collector().InstrTrace),
		})
	}
	return out, nil
}

// FormatFigure6 renders the instruction pattern plots.
func FormatFigure6(patterns []Pattern) string {
	var b strings.Builder
	b.WriteString("Figure 6: Detailed packet processing (unique instruction index vs executed instruction)\n")
	for _, p := range patterns {
		xs := make([]float64, len(p.Indices))
		ys := make([]float64, len(p.Indices))
		for i, idx := range p.Indices {
			xs[i] = float64(i)
			ys[i] = float64(idx)
		}
		b.WriteString(textplot.Scatter(xs, ys, 72, 16,
			fmt.Sprintf("(%s) %d instructions, %d unique", p.App, len(p.Indices), p.Unique)))
		b.WriteByte('\n')
	}
	return b.String()
}

// ----------------------------------------------------------------------
// Figures 7 and 8: basic block statistics

// BlockStats carries one application's block-level statistics.
type BlockStats struct {
	App           string
	Probabilities []float64
	Curve         []analysis.CoveragePoint
	// Blocks90 is the paper's "sweet spot": blocks needed for 90% packet
	// coverage.
	Blocks90 int
}

// BlockStatistics computes Figures 7 and 8 over the first FigurePackets
// packets of MRA.
func (e *Env) BlockStatistics() ([]BlockStats, error) {
	var out []BlockStats
	for _, name := range []string{"IPv4-radix", "Flow Classification"} {
		b, recs, err := e.Run(name, "MRA", e.cfg.FigurePackets, core.Options{})
		if err != nil {
			return nil, err
		}
		n := b.BlockMap().NumBlocks()
		sets := stats.BlockSets(recs)
		curve := analysis.CoverageCurve(sets, n)
		out = append(out, BlockStats{
			App:           name,
			Probabilities: analysis.BlockProbabilities(sets, n),
			Curve:         curve,
			Blocks90:      analysis.MinBlocksForCoverage(curve, 0.9),
		})
	}
	return out, nil
}

// FormatFigure7 renders block execution probabilities.
func FormatFigure7(bs []BlockStats) string {
	var b strings.Builder
	b.WriteString("Figure 7: Basic block execution probability\n")
	for _, s := range bs {
		xs := make([]float64, len(s.Probabilities))
		for i := range xs {
			xs[i] = float64(i)
		}
		b.WriteString(textplot.Scatter(xs, s.Probabilities, 72, 12,
			fmt.Sprintf("(%s) execution probability vs basic block", s.App)))
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatFigure8 renders the coverage curves.
func FormatFigure8(bs []BlockStats) string {
	var b strings.Builder
	b.WriteString("Figure 8: Packet coverage vs number of basic blocks\n")
	for _, s := range bs {
		xs := make([]float64, len(s.Curve))
		ys := make([]float64, len(s.Curve))
		for i, p := range s.Curve {
			xs[i] = float64(p.Blocks)
			ys[i] = p.Coverage
		}
		b.WriteString(textplot.Steps(xs, ys, 72, 12,
			fmt.Sprintf("(%s) coverage vs blocks; 90%% at %d blocks of %d",
				s.App, s.Blocks90, len(s.Curve))))
		b.WriteByte('\n')
	}
	return b.String()
}

// ----------------------------------------------------------------------
// Figure 9: memory access sequence of a single packet

// MemSeq is the data memory access sequence of one packet.
type MemSeq struct {
	App    string
	Instr  []int  // instruction ordinal of each access
	Packet []bool // true = packet memory, false = non-packet
}

// Figure9 extracts the memory access sequence of the pktIndex-th MRA
// packet.
func (e *Env) Figure9(pktIndex int) ([]MemSeq, error) {
	var out []MemSeq
	for _, name := range []string{"IPv4-radix", "Flow Classification"} {
		b, err := core.New(e.app(name), core.Options{Detail: true})
		if err != nil {
			return nil, err
		}
		if _, err := b.RunPackets(e.Trace("MRA", pktIndex+1), nil); err != nil {
			return nil, err
		}
		seq := MemSeq{App: name}
		for _, ev := range b.Collector().MemTrace {
			seq.Instr = append(seq.Instr, int(ev.InstrNum))
			seq.Packet = append(seq.Packet, ev.Region == vm.RegionPacket)
		}
		out = append(out, seq)
	}
	return out, nil
}

// FormatFigure9 renders the access sequences.
func FormatFigure9(seqs []MemSeq) string {
	var b strings.Builder
	b.WriteString("Figure 9: Data memory access pattern over one packet\n")
	for _, s := range seqs {
		b.WriteString(textplot.Sequence(s.Instr, s.Packet, 72,
			"packet", "non-packet", fmt.Sprintf("(%s)", s.App)))
		b.WriteByte('\n')
	}
	return b.String()
}

// ----------------------------------------------------------------------
// Beyond the paper: per-application microarchitectural profile

// MicroarchRow is one application's microarchitectural summary.
type MicroarchRow struct {
	App            string
	ALUFrac        float64
	LoadFrac       float64
	StoreFrac      float64
	BranchFrac     float64
	TakenRate      float64
	BimodalAcc     float64
	ICacheMissRate float64
	DCacheMissRate float64
	CPI            float64
}

// Microarch profiles every application over MRA with 4 KiB / 8 KiB
// two-way caches — the "traditional microarchitectural statistics" the
// paper says PacketBench can also produce.
func (e *Env) Microarch(packets int) ([]MicroarchRow, error) {
	if packets == 0 {
		packets = e.cfg.TablePackets
	}
	var rows []MicroarchRow
	for _, name := range AppNames {
		b, err := core.New(e.app(name), core.Options{})
		if err != nil {
			return nil, err
		}
		ic, err := microarch.NewCache(4096, 16, 2)
		if err != nil {
			return nil, err
		}
		dc, err := microarch.NewCache(8192, 16, 2)
		if err != nil {
			return nil, err
		}
		prof := microarch.NewProfiler(ic, dc)
		b.AddTracer(prof)
		if _, err := b.RunPackets(e.Trace("MRA", packets), nil); err != nil {
			return nil, err
		}
		prof.Flush()
		rows = append(rows, MicroarchRow{
			App:            name,
			ALUFrac:        prof.Mix.Frac(microarch.ClassALU),
			LoadFrac:       prof.Mix.Frac(microarch.ClassLoad),
			StoreFrac:      prof.Mix.Frac(microarch.ClassStore),
			BranchFrac:     prof.Mix.Frac(microarch.ClassBranch),
			TakenRate:      prof.Branches.TakenRate(),
			BimodalAcc:     prof.Branches.BimodalAccuracy(),
			ICacheMissRate: ic.MissRate(),
			DCacheMissRate: dc.MissRate(),
			CPI:            prof.CPI(),
		})
	}
	return rows, nil
}

// FormatMicroarch renders the microarchitectural profile table.
func FormatMicroarch(rows []MicroarchRow, packets int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Microarchitectural profile (beyond the paper; %d MRA packets, 4K/8K 2-way caches)\n", packets)
	fmt.Fprintf(&b, "%-22s %6s %6s %6s %7s %7s %8s %7s %7s %6s\n",
		"Application", "alu%", "load%", "store%", "branch%", "taken%", "bimodal%", "icmiss%", "dcmiss%", "CPI")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %6.1f %6.1f %6.1f %7.1f %7.1f %8.1f %7.2f %7.2f %6.2f\n",
			r.App, 100*r.ALUFrac, 100*r.LoadFrac, 100*r.StoreFrac, 100*r.BranchFrac,
			100*r.TakenRate, 100*r.BimodalAcc, 100*r.ICacheMissRate, 100*r.DCacheMissRate, r.CPI)
	}
	return b.String()
}
