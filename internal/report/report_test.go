package report

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

// testConfig is a scaled-down configuration keeping tests fast while
// exercising every experiment path.
var testConfig = Config{
	TablePackets:       150,
	CoveragePackets:    100,
	VariationPackets:   300,
	FigurePackets:      120,
	RoutePrefixes:      2000,
	SmallRoutePrefixes: 200,
}

// sharedEnv is built once; building traces and tables dominates test time.
var sharedEnv = NewEnv(testConfig)

func TestTable1MatchesPaperInventory(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("Table I has %d rows", len(rows))
	}
	want := []Table1Row{
		{"MRA", "OC-12c (PoS)", 4643333},
		{"COS", "OC-3c (ATM)", 2183310},
		{"ODU", "OC-3c (ATM)", 784278},
		{"LAN", "100Mbps (Ethernet)", 100000},
	}
	for i, w := range want {
		if rows[i] != w {
			t.Errorf("row %d = %+v, want %+v", i, rows[i], w)
		}
	}
	text := FormatTable1(rows)
	for _, frag := range []string{"MRA", "OC-12c", "4643333"} {
		if !strings.Contains(text, frag) {
			t.Errorf("formatted Table I missing %q", frag)
		}
	}
}

func TestMatrixShapeMatchesPaper(t *testing.T) {
	m, err := sharedEnv.RunMatrix(testConfig.TablePackets)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range TraceNames {
		c := m.Cells[tr]
		// Table II shape: radix >> trie, radix > TSA > trie > flow.
		if !(c["IPv4-radix"].MeanInstructions > c["TSA"].MeanInstructions) {
			t.Errorf("%s: radix (%.0f) not above TSA (%.0f)", tr,
				c["IPv4-radix"].MeanInstructions, c["TSA"].MeanInstructions)
		}
		if !(c["TSA"].MeanInstructions > c["IPv4-trie"].MeanInstructions) {
			t.Errorf("%s: TSA not above trie", tr)
		}
		if !(c["IPv4-trie"].MeanInstructions > c["Flow Classification"].MeanInstructions) {
			t.Errorf("%s: trie not above flow", tr)
		}
		// Table III shape: packet accesses are few and similar for all
		// apps; non-packet dominates for radix.
		for _, app := range AppNames {
			if c[app].MeanPacketAcc < 5 || c[app].MeanPacketAcc > 80 {
				t.Errorf("%s/%s: packet accesses %.1f out of expected band",
					tr, app, c[app].MeanPacketAcc)
			}
		}
		if c["IPv4-radix"].MeanNonPacketAcc < 3*c["IPv4-trie"].MeanNonPacketAcc {
			t.Errorf("%s: radix non-packet (%.0f) not >> trie (%.0f)", tr,
				c["IPv4-radix"].MeanNonPacketAcc, c["IPv4-trie"].MeanNonPacketAcc)
		}
	}
	t2 := FormatTable2(m)
	t3 := FormatTable3(m)
	for _, frag := range []string{"Table II", "Average", "IPv4-radix"} {
		if !strings.Contains(t2, frag) {
			t.Errorf("Table II output missing %q", frag)
		}
	}
	if !strings.Contains(t3, "Table III") || !strings.Contains(t3, "/") {
		t.Error("Table III output malformed")
	}
}

func TestTable4Shape(t *testing.T) {
	rows, err := sharedEnv.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("Table IV has %d rows", len(rows))
	}
	byApp := map[string]Table4Row{}
	for _, r := range rows {
		byApp[r.App] = r
		if r.InstrMemSize <= 0 || r.DataMemSize <= 0 {
			t.Errorf("%s has empty footprint: %+v", r.App, r)
		}
	}
	// Paper shape: radix has the largest instruction footprint; the
	// data footprints of radix and flow dwarf the trie's (small table)
	// and TSA's.
	if byApp["IPv4-radix"].InstrMemSize <= byApp["IPv4-trie"].InstrMemSize {
		t.Errorf("radix instr footprint (%d) not above trie (%d)",
			byApp["IPv4-radix"].InstrMemSize, byApp["IPv4-trie"].InstrMemSize)
	}
	if byApp["IPv4-radix"].DataMemSize <= byApp["IPv4-trie"].DataMemSize {
		t.Errorf("radix data footprint (%d) not above trie (%d)",
			byApp["IPv4-radix"].DataMemSize, byApp["IPv4-trie"].DataMemSize)
	}
	text := FormatTable4(rows, testConfig.CoveragePackets)
	if !strings.Contains(text, "Table IV") {
		t.Error("Table IV output malformed")
	}
}

func TestVariationTables(t *testing.T) {
	for _, unique := range []bool{false, true} {
		rows, err := sharedEnv.Variation(unique)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 4 {
			t.Fatalf("variation table has %d rows", len(rows))
		}
		byApp := map[string]VariationRow{}
		for _, r := range rows {
			byApp[r.App] = r
			if r.Table.Total != testConfig.VariationPackets {
				t.Errorf("%s: total %d", r.App, r.Table.Total)
			}
			if r.Table.Min.Value > r.Table.Max.Value {
				t.Errorf("%s: min %d > max %d", r.App, r.Table.Min.Value, r.Table.Max.Value)
			}
		}
		// The linear applications concentrate: their top-3 occurrences
		// cover nearly all packets (the paper's ~90% observation); radix
		// spreads much more.
		for _, app := range []string{"Flow Classification", "TSA"} {
			if byApp[app].Table.TopPct() < 80 {
				t.Errorf("unique=%v %s: top-3 cover only %.1f%%", unique, app, byApp[app].Table.TopPct())
			}
		}
		if byApp["IPv4-radix"].Table.TopPct() > byApp["TSA"].Table.TopPct() {
			t.Errorf("unique=%v: radix concentrates more than TSA", unique)
		}
		text := FormatVariation(rows, unique, testConfig.VariationPackets)
		if !strings.Contains(text, "Table V") {
			t.Error("variation output malformed")
		}
	}
	// Table VI specific: unique counts vary less than totals for radix.
	totals, _ := sharedEnv.Variation(false)
	uniques, _ := sharedEnv.Variation(true)
	var radixTotal, radixUnique uint64
	for _, r := range totals {
		if r.App == "IPv4-radix" {
			radixTotal = r.Table.Max.Value - r.Table.Min.Value
		}
	}
	for _, r := range uniques {
		if r.App == "IPv4-radix" {
			radixUnique = r.Table.Max.Value - r.Table.Min.Value
		}
	}
	if radixUnique > radixTotal {
		t.Errorf("radix unique-instruction spread (%d) exceeds total spread (%d)",
			radixUnique, radixTotal)
	}
}

func TestFigureSeries(t *testing.T) {
	for _, tc := range []struct {
		name   string
		metric func(*stats.PacketRecord) float64
	}{
		{"fig3 instructions", MetricInstructions},
		{"fig4 packet accesses", MetricPacketAccesses},
		{"fig5 non-packet accesses", MetricNonPacketAccesses},
	} {
		series, err := sharedEnv.FigureSeries(tc.metric)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(series) != 2 {
			t.Fatalf("%s: %d series", tc.name, len(series))
		}
		for _, s := range series {
			if len(s.Values) != testConfig.FigurePackets {
				t.Errorf("%s/%s: %d values", tc.name, s.App, len(s.Values))
			}
		}
		text := FormatSeries(tc.name, "y", series)
		if !strings.Contains(text, "IPv4-radix") || !strings.Contains(text, "*") {
			t.Errorf("%s: plot output malformed", tc.name)
		}
	}
}

func TestFigure3ShapeRadixVariesFlowDoesNot(t *testing.T) {
	series, err := sharedEnv.FigureSeries(MetricInstructions)
	if err != nil {
		t.Fatal(err)
	}
	spread := func(v []float64) float64 {
		lo, hi := v[0], v[0]
		for _, x := range v {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return hi - lo
	}
	if spread(series[0].Values) < 4*spread(series[1].Values) {
		t.Errorf("radix spread (%.0f) not much larger than flow spread (%.0f)",
			spread(series[0].Values), spread(series[1].Values))
	}
}

func TestFigure6Patterns(t *testing.T) {
	patterns, err := sharedEnv.Figure6(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(patterns) != 2 {
		t.Fatalf("%d patterns", len(patterns))
	}
	for _, p := range patterns {
		if len(p.Indices) == 0 || p.Unique == 0 {
			t.Fatalf("%s: empty pattern", p.App)
		}
		if p.Unique > len(p.Indices) {
			t.Errorf("%s: unique %d > total %d", p.App, p.Unique, len(p.Indices))
		}
		// The max index equals unique-1 by construction.
		maxIdx := 0
		for _, i := range p.Indices {
			if i > maxIdx {
				maxIdx = i
			}
		}
		if maxIdx != p.Unique-1 {
			t.Errorf("%s: max index %d, unique %d", p.App, maxIdx, p.Unique)
		}
	}
	// Radix loops (repetition), flow is nearly linear (the paper's
	// Figure 6 observation).
	radix, flw := patterns[0], patterns[1]
	radixRep := float64(len(radix.Indices)) / float64(radix.Unique)
	flowRep := float64(len(flw.Indices)) / float64(flw.Unique)
	if radixRep < flowRep {
		t.Errorf("radix repetition (%.2f) below flow (%.2f)", radixRep, flowRep)
	}
	if flowRep > 1.6 {
		t.Errorf("flow repetition %.2f; expected near-linear execution", flowRep)
	}
	if !strings.Contains(FormatFigure6(patterns), "Figure 6") {
		t.Error("figure 6 output malformed")
	}
}

func TestBlockStatistics(t *testing.T) {
	bs, err := sharedEnv.BlockStatistics()
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 2 {
		t.Fatalf("%d block stats", len(bs))
	}
	for _, s := range bs {
		if len(s.Probabilities) == 0 {
			t.Fatalf("%s: no blocks", s.App)
		}
		// Figure 7 shape: at least one always-executed block; probabilities
		// within [0, 1].
		sawOne := false
		for b, p := range s.Probabilities {
			if p < 0 || p > 1 {
				t.Errorf("%s block %d: probability %v", s.App, b, p)
			}
			if p == 1 {
				sawOne = true
			}
		}
		if !sawOne {
			t.Errorf("%s: no block executed by every packet", s.App)
		}
		// Figure 8 shape: monotone curve reaching 1.0; the 90%% knee is
		// well below the total block count (fast-path insight).
		last := s.Curve[len(s.Curve)-1]
		if last.Coverage < 0.999 {
			t.Errorf("%s: full store covers only %.3f", s.App, last.Coverage)
		}
		if s.Blocks90 <= 0 || s.Blocks90 > len(s.Curve) {
			t.Errorf("%s: Blocks90 = %d", s.App, s.Blocks90)
		}
	}
	if !strings.Contains(FormatFigure7(bs), "Figure 7") {
		t.Error("figure 7 output malformed")
	}
	if !strings.Contains(FormatFigure8(bs), "Figure 8") {
		t.Error("figure 8 output malformed")
	}
}

func TestFigure9Sequences(t *testing.T) {
	seqs, err := sharedEnv.Figure9(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 {
		t.Fatalf("%d sequences", len(seqs))
	}
	for _, s := range seqs {
		if len(s.Instr) == 0 {
			t.Fatalf("%s: empty sequence", s.App)
		}
		pkt, non := 0, 0
		for _, p := range s.Packet {
			if p {
				pkt++
			} else {
				non++
			}
		}
		if pkt == 0 || non == 0 {
			t.Errorf("%s: degenerate access mix pkt=%d non=%d", s.App, pkt, non)
		}
	}
	// The paper's Figure 9 observation: radix touches packet memory
	// early (header parse and verification) and then operates on
	// non-packet data (the tree walk). The only late packet accesses are
	// the handful of TTL/checksum rewrite bytes, so the bulk of packet
	// accesses must fall in the first third of the execution.
	radix := seqs[0]
	maxInstr := 0
	for _, n := range radix.Instr {
		if n > maxInstr {
			maxInstr = n
		}
	}
	early, total := 0, 0
	for i, isPkt := range radix.Packet {
		if !isPkt {
			continue
		}
		total++
		if radix.Instr[i] <= maxInstr/3 {
			early++
		}
	}
	if total == 0 || float64(early)/float64(total) < 0.7 {
		t.Errorf("radix: only %d of %d packet-memory accesses in the first third; expected front-loaded",
			early, total)
	}
	if !strings.Contains(FormatFigure9(seqs), "Figure 9") {
		t.Error("figure 9 output malformed")
	}
}

func TestEnvDeterminism(t *testing.T) {
	e2 := NewEnv(testConfig)
	m1, err := sharedEnv.RunMatrix(50)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := e2.RunMatrix(50)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range TraceNames {
		for _, app := range AppNames {
			if m1.Cells[tr][app] != m2.Cells[tr][app] {
				t.Errorf("%s/%s differs across identical environments", tr, app)
			}
		}
	}
}

func TestMicroarchRows(t *testing.T) {
	rows, err := sharedEnv.Microarch(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		sum := r.ALUFrac + r.LoadFrac + r.StoreFrac + r.BranchFrac
		if sum <= 0.5 || sum > 1.0001 {
			t.Errorf("%s: class fractions sum to %v", r.App, sum)
		}
		if r.CPI < 1 || r.CPI > 10 {
			t.Errorf("%s: CPI %v out of band", r.App, r.CPI)
		}
		// The paper's memory-hierarchy claim: tiny instruction working
		// sets mean near-zero icache misses for every application.
		if r.ICacheMissRate > 0.02 {
			t.Errorf("%s: icache miss rate %v", r.App, r.ICacheMissRate)
		}
	}
	text := FormatMicroarch(rows, 100)
	if !strings.Contains(text, "CPI") || !strings.Contains(text, "IPv4-radix") {
		t.Error("microarch table malformed")
	}
}
