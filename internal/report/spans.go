package report

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/ptrace"
	"repro/internal/vm"
)

// StageRow is one pipeline stage's aggregate latency over a traced run.
type StageRow struct {
	Stage  ptrace.Stage
	Count  uint64
	MeanNS float64
	MaxNS  uint64
	// Share is the stage's fraction of all recorded stage time.
	Share float64
}

// TailJourney is one of the slowest packets of a traced run with its
// journey broken down by stage and attributed to the guest functions
// whose blocks its final attempt executed.
type TailJourney struct {
	Index     int64
	LatencyNS int64
	Instrs    uint64
	Verdict   uint32
	// Fault names the quarantining fault, "" for measured packets.
	Fault string
	// StageNS sums the journey's time per stage (exec includes every
	// attempt).
	StageNS [ptrace.NumStages]int64
	// Funcs are the guest functions owning the journey's executed
	// blocks, in first-execution order.
	Funcs []string
}

// SpanReport is the pbreport -spans view: where packets spend their
// time, stage by stage, and which guest code the slowest ones ran.
type SpanReport struct {
	App     string
	Trace   string
	Packets int
	Stages  []StageRow
	Tail    []TailJourney
	Sampled int
	Dropped uint64
}

// Spans runs appName single-core over the first n packets of the named
// trace with the packet-journey tracer armed and returns the stage
// breakdown plus the k slowest journeys, attributed to guest functions
// via the run's instruction profile. A non-nil clock makes the
// measurement deterministic for golden tests.
func (e *Env) Spans(appName, traceName string, n, k int, clock func() int64) (*SpanReport, error) {
	app := e.app(appName)
	tr := ptrace.New(ptrace.Config{
		Lanes:       1,
		SampleEvery: 64,
		TailK:       k,
		Clock:       clock,
	})
	b, err := core.New(app, core.Options{Trace: tr})
	if err != nil {
		return nil, err
	}
	b.Collector().CountPCs = true
	if _, err := b.RunPackets(e.Trace(traceName, n), nil); err != nil {
		return nil, err
	}
	var entries []string
	if app.Entry != "" {
		entries = []string{app.Entry}
	}
	p, err := profile.Build(b.Program(), b.Collector().PCCounts,
		profile.Options{Entries: entries, AppName: appName})
	if err != nil {
		return nil, err
	}
	// Block id -> owning function, for tail attribution.
	owner := make(map[int32]string)
	for _, f := range p.Funcs {
		for _, blk := range f.Blocks {
			owner[int32(blk)] = f.Name
		}
	}

	sum := tr.Summary(k)
	r := &SpanReport{
		App: appName, Trace: traceName, Packets: n,
		Sampled: sum.Sampled, Dropped: sum.Dropped,
	}
	var totalNS uint64
	for _, st := range sum.Stages {
		totalNS += st.SumNS
	}
	for _, st := range sum.Stages {
		if st.Count == 0 {
			continue
		}
		row := StageRow{Stage: st.Stage, Count: st.Count, MeanNS: st.MeanNS(), MaxNS: st.MaxNS}
		if totalNS > 0 {
			row.Share = float64(st.SumNS) / float64(totalNS)
		}
		r.Stages = append(r.Stages, row)
	}
	for i := range sum.Tail {
		j := &sum.Tail[i]
		tj := TailJourney{
			Index: j.Index, LatencyNS: j.Latency,
			Instrs: j.Instrs, Verdict: j.Verdict,
		}
		if j.Fault > 0 {
			tj.Fault = vm.FaultKind(j.Fault - 1).String()
		}
		for _, ev := range j.Events() {
			if !ev.Mark {
				tj.StageNS[ev.Stage] += ev.Dur
			}
		}
		seen := make(map[string]bool)
		for _, blk := range j.Blocks() {
			name, ok := owner[blk]
			if !ok {
				name = fmt.Sprintf("block_%d", blk)
			}
			if !seen[name] {
				seen[name] = true
				tj.Funcs = append(tj.Funcs, name)
			}
		}
		r.Tail = append(r.Tail, tj)
	}
	return r, nil
}

// FormatSpans renders one application's span report: the per-stage
// latency table followed by the slowest journeys with their stage
// split and guest-function attribution.
func FormatSpans(r *SpanReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Packet journeys: %s on %s (first %d packets, %d sampled",
		r.App, r.Trace, r.Packets, r.Sampled)
	if r.Dropped > 0 {
		fmt.Fprintf(&b, ", %d dropped", r.Dropped)
	}
	b.WriteString(")\n")
	fmt.Fprintf(&b, "  %-12s %10s %12s %12s %7s\n", "stage", "count", "mean", "max", "share")
	for _, st := range r.Stages {
		fmt.Fprintf(&b, "  %-12s %10d %12s %12s %6.1f%%\n",
			st.Stage, st.Count, fmtNS(st.MeanNS), fmtNS(float64(st.MaxNS)), 100*st.Share)
	}
	if len(r.Tail) > 0 {
		fmt.Fprintf(&b, "  slowest journeys:\n")
	}
	for i := range r.Tail {
		tj := &r.Tail[i]
		fmt.Fprintf(&b, "  %3d. packet %-8d %10s %8d instrs", i+1, tj.Index,
			fmtNS(float64(tj.LatencyNS)), tj.Instrs)
		if tj.Fault != "" {
			fmt.Fprintf(&b, "  fault=%s", tj.Fault)
		}
		b.WriteString("\n")
		var parts []string
		for st := 0; st < ptrace.NumStages; st++ {
			if d := tj.StageNS[st]; d > 0 {
				parts = append(parts, fmt.Sprintf("%s %s", ptrace.Stage(st), fmtNS(float64(d))))
			}
		}
		if len(parts) > 0 {
			fmt.Fprintf(&b, "       stages: %s\n", strings.Join(parts, ", "))
		}
		if len(tj.Funcs) > 0 {
			fmt.Fprintf(&b, "       funcs:  %s\n", strings.Join(tj.Funcs, " -> "))
		}
	}
	return b.String()
}

// fmtNS renders a nanosecond duration with a human unit.
func fmtNS(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
