package report

import (
	"strings"
	"testing"

	"repro/internal/ptrace"
)

// spanClock is a deterministic clock for golden-stable span reports:
// every read advances time by a fixed step, so latencies depend only
// on how many timestamps a run takes, which the seeded environment
// makes reproducible.
func spanClock() func() int64 {
	var now int64
	return func() int64 {
		now += 1000
		return now
	}
}

func TestSpansDeterministic(t *testing.T) {
	a, err := sharedEnv.Spans("IPv4-radix", "MRA", 200, 3, spanClock())
	if err != nil {
		t.Fatal(err)
	}
	b, err := sharedEnv.Spans("IPv4-radix", "MRA", 200, 3, spanClock())
	if err != nil {
		t.Fatal(err)
	}
	if FormatSpans(a) != FormatSpans(b) {
		t.Fatal("span report not deterministic under an injected clock")
	}
}

func TestSpansStageBreakdown(t *testing.T) {
	r, err := sharedEnv.Spans("IPv4-radix", "MRA", 200, 3, spanClock())
	if err != nil {
		t.Fatal(err)
	}
	var exec *StageRow
	for i := range r.Stages {
		if r.Stages[i].Stage == ptrace.StageExec {
			exec = &r.Stages[i]
		}
	}
	if exec == nil || exec.Count != 200 {
		t.Fatalf("exec stage = %+v, want one span per packet (200)", exec)
	}
	if len(r.Tail) != 3 {
		t.Fatalf("tail = %d journeys, want 3", len(r.Tail))
	}
	for _, tj := range r.Tail {
		if len(tj.Funcs) == 0 {
			t.Fatalf("packet %d has no function attribution", tj.Index)
		}
		if tj.StageNS[ptrace.StageExec] == 0 {
			t.Fatalf("packet %d has no exec time", tj.Index)
		}
	}
}

func TestGoldenSpans(t *testing.T) {
	for _, tc := range []struct {
		name string
		app  string
	}{
		{"spans_radix", "IPv4-radix"},
		{"spans_tsa", "TSA"},
	} {
		r, err := sharedEnv.Spans(tc.app, "MRA", 200, 3, spanClock())
		if err != nil {
			t.Fatal(err)
		}
		text := FormatSpans(r)
		if !strings.Contains(text, "slowest journeys") {
			t.Fatalf("report missing tail section:\n%s", text)
		}
		checkGolden(t, tc.name, text)
	}
}
