package route

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// LCTrie is a level- and path-compressed trie after Nilsson and Karlsson
// ("IP-address lookup using LC-tries", IEEE JSAC 1999), the structure the
// paper's IPv4-trie application uses. Internal nodes consume `branch` bits
// at once (level compression) and skip runs of common bits (path
// compression); leaves reference a base vector of disjoint prefixes, each
// chained to its longest proper prefix for correct longest-prefix match.
//
// Compared to the bit-at-a-time radix tree, lookups touch only a handful
// of nodes, which is exactly the storage/complexity advantage the paper
// reports for IPv4-trie over IPv4-radix.
type LCTrie struct {
	// nodes is the packed node vector. nodes[0] is the root (when
	// non-empty). Each word packs branch (5 bits), skip (5 bits) and adr
	// (22 bits): for internal nodes adr is the index of the first of the
	// 2^branch contiguous children; for leaves (branch == 0) adr indexes
	// the entries vector.
	nodes []uint32
	// entries holds all table entries sorted by (prefix, len): both trie
	// leaves (disjoint prefixes) and internal prefixes reachable only via
	// chain links.
	entries []lcEntry
}

type lcEntry struct {
	prefix uint32
	len    int32
	hop    uint32
	chain  int32 // index of the longest proper prefix entry, or -1
}

const (
	lcBranchShift = 27
	lcSkipShift   = 22
	lcAdrMask     = 1<<22 - 1
	lcMaxBranch   = 16
)

func packNode(branch, skip, adr uint32) uint32 {
	return branch<<lcBranchShift | skip<<lcSkipShift | adr&lcAdrMask
}

func unpackNode(w uint32) (branch, skip, adr uint32) {
	return w >> lcBranchShift, w >> lcSkipShift & 0x1F, w & lcAdrMask
}

// extractBits returns `count` bits of addr starting at bit position pos
// (0 = most significant).
func extractBits(addr uint32, pos, count uint32) uint32 {
	if count == 0 {
		return 0
	}
	return addr << pos >> (32 - count)
}

// NewLCTrie builds an LC-trie from a table.
func NewLCTrie(t *Table) (*LCTrie, error) {
	// Sort and dedup into the entries vector.
	src := append([]Entry(nil), t.Entries...)
	for i := range src {
		src[i].Prefix &= Mask(src[i].Len)
	}
	sort.Slice(src, func(i, j int) bool {
		if src[i].Prefix != src[j].Prefix {
			return src[i].Prefix < src[j].Prefix
		}
		return src[i].Len < src[j].Len
	})
	dedup := src[:0]
	for _, e := range src {
		if n := len(dedup); n > 0 && dedup[n-1].Prefix == e.Prefix && dedup[n-1].Len == e.Len {
			dedup[n-1] = e
			continue
		}
		dedup = append(dedup, e)
	}
	src = dedup

	lc := &LCTrie{}
	lc.entries = make([]lcEntry, len(src))
	internal := make([]bool, len(src))
	for i, e := range src {
		lc.entries[i] = lcEntry{prefix: e.Prefix, len: int32(e.Len), hop: e.NextHop, chain: -1}
		// In (prefix, len) order every extension of entry i follows it
		// immediately, so the internal test needs only the successor.
		if i+1 < len(src) {
			next := src[i+1]
			if next.Len > e.Len && next.Prefix&Mask(e.Len) == e.Prefix {
				internal[i] = true
			}
		}
	}
	// Chain every entry to its longest proper prefix using an ancestor
	// stack over the sorted order.
	var stack []int
	for i := range src {
		for len(stack) > 0 {
			top := src[stack[len(stack)-1]]
			if top.Len < src[i].Len && src[i].Prefix&Mask(top.Len) == top.Prefix {
				break
			}
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			lc.entries[i].chain = int32(stack[len(stack)-1])
		}
		if internal[i] {
			stack = append(stack, i)
		}
	}
	// Collect the leaves (disjoint, prefix-free, strictly increasing).
	var leaves []int
	for i := range src {
		if !internal[i] {
			leaves = append(leaves, i)
		}
	}
	if len(leaves) == 0 {
		return lc, nil // empty table
	}
	b := &lcBuilder{lc: lc, src: src, leaves: leaves}
	b.nodes = append(b.nodes, 0) // reserve the root slot
	if err := b.fill(0, 0, len(leaves), 0); err != nil {
		return nil, err
	}
	lc.nodes = b.nodes
	return lc, nil
}

type lcBuilder struct {
	lc     *LCTrie
	src    []Entry
	leaves []int // indices into lc.entries, sorted
	nodes  []uint32
}

func (b *lcBuilder) leafEntry(i int) lcEntry { return b.lc.entries[b.leaves[i]] }

// fill computes the node at nodeIdx covering leaves [lo, hi), all of which
// share their first `pre` bits.
func (b *lcBuilder) fill(nodeIdx, lo, hi int, pre uint32) error {
	if hi-lo == 1 {
		b.nodes[nodeIdx] = packNode(0, 0, uint32(b.leaves[lo]))
		return nil
	}
	first, last := b.leafEntry(lo), b.leafEntry(hi-1)
	minLen := uint32(first.len)
	for i := lo; i < hi; i++ {
		if l := uint32(b.leafEntry(i).len); l < minLen {
			minLen = l
		}
	}
	// Path compression: common prefix of the whole (sorted) interval is
	// the common prefix of its first and last elements.
	common := commonPrefixLen(first.prefix, last.prefix)
	if common > minLen {
		common = minLen
	}
	if common <= pre {
		common = pre
	}
	skip := common - pre
	if skip > 31 {
		return fmt.Errorf("route: lc-trie skip %d exceeds field width", skip)
	}
	// Level compression: the widest branch such that no child bucket is
	// empty and no leaf is shorter than the consumed bits.
	branch := uint32(1)
	for branch+1 <= lcMaxBranch && common+branch+1 <= minLen && b.allBucketsNonEmpty(lo, hi, common, branch+1) {
		branch++
	}
	childBase := len(b.nodes)
	if uint32(childBase)+1<<branch > lcAdrMask {
		return fmt.Errorf("route: lc-trie node vector overflows 22-bit addressing")
	}
	for i := 0; i < 1<<branch; i++ {
		b.nodes = append(b.nodes, 0)
	}
	b.nodes[nodeIdx] = packNode(branch, skip, uint32(childBase))
	// Partition the interval among the buckets and recurse.
	start := lo
	for k := uint32(0); k < 1<<branch; k++ {
		end := start
		for end < hi && extractBits(b.leafEntry(end).prefix, common, branch) == k {
			end++
		}
		if end == start {
			return fmt.Errorf("route: internal error: empty lc-trie bucket %d", k)
		}
		if err := b.fill(childBase+int(k), start, end, common+branch); err != nil {
			return err
		}
		start = end
	}
	if start != hi {
		return fmt.Errorf("route: internal error: lc-trie partition mismatch")
	}
	return nil
}

// allBucketsNonEmpty reports whether splitting leaves [lo,hi) on `branch`
// bits at position pos fills every one of the 2^branch buckets.
func (b *lcBuilder) allBucketsNonEmpty(lo, hi int, pos, branch uint32) bool {
	if hi-lo < 1<<branch {
		return false
	}
	want := uint32(0)
	for i := lo; i < hi; i++ {
		k := extractBits(b.leafEntry(i).prefix, pos, branch)
		if k == want {
			want++
		} else if k > want {
			return false // bucket want is empty
		}
	}
	return want == 1<<branch
}

func commonPrefixLen(a, b uint32) uint32 {
	x := a ^ b
	var n uint32
	for n = 0; n < 32; n++ {
		if x&(1<<(31-n)) != 0 {
			break
		}
	}
	return n
}

// Nodes returns the size of the node vector.
func (lc *LCTrie) Nodes() int { return len(lc.nodes) }

// Entries returns the size of the base/prefix vector.
func (lc *LCTrie) Entries() int { return len(lc.entries) }

// Depth returns the maximum node-path length from root to leaf, a measure
// of lookup cost.
func (lc *LCTrie) Depth() int {
	if len(lc.nodes) == 0 {
		return 0
	}
	var walk func(idx uint32) int
	walk = func(idx uint32) int {
		branch, _, adr := unpackNode(lc.nodes[idx])
		if branch == 0 {
			return 1
		}
		max := 0
		for k := uint32(0); k < 1<<branch; k++ {
			if d := walk(adr + k); d > max {
				max = d
			}
		}
		return max + 1
	}
	return walk(0)
}

// Lookup performs longest-prefix match.
func (lc *LCTrie) Lookup(addr uint32) (uint32, bool) {
	if len(lc.nodes) == 0 {
		return 0, false
	}
	node := lc.nodes[0]
	pos := uint32(0)
	for {
		branch, skip, adr := unpackNode(node)
		if branch == 0 {
			// Leaf: check the entry, then its chain of shorter prefixes.
			for i := int32(adr); i >= 0; i = lc.entries[i].chain {
				e := lc.entries[i]
				if (addr^e.prefix)&Mask(int(e.len)) == 0 {
					return e.hop, true
				}
			}
			return 0, false
		}
		pos += skip
		k := extractBits(addr, pos, branch)
		pos += branch
		node = lc.nodes[adr+k]
	}
}

// LCEntrySize is the serialized size of one base-vector entry.
const LCEntrySize = 16

// Serialize lays the LC-trie out in simulated memory for the PB32
// IPv4-trie application. Two images are produced:
//
// The node vector at nodesBase: one little-endian uint32 per node, packed
// exactly as in memory here (branch<<27 | skip<<22 | adr). For internal
// nodes adr is a node *index* (address nodesBase + 4*adr); for leaves it
// is an entry *index* (address entriesBase + 16*adr).
//
// The entry vector at entriesBase: LCEntrySize bytes per entry:
//
//	+0  prefix (left aligned)
//	+4  netmask (precomputed from the length, so the application need not
//	    materialize it)
//	+8  next hop
//	+12 chain: absolute address of the longest-proper-prefix entry, or 0
func (lc *LCTrie) Serialize(nodesBase, entriesBase uint32) (nodesImage, entriesImage []byte) {
	nodesImage = make([]byte, len(lc.nodes)*4)
	for i, w := range lc.nodes {
		binary.LittleEndian.PutUint32(nodesImage[i*4:], w)
	}
	entriesImage = make([]byte, len(lc.entries)*LCEntrySize)
	for i, e := range lc.entries {
		off := i * LCEntrySize
		binary.LittleEndian.PutUint32(entriesImage[off:], e.prefix)
		binary.LittleEndian.PutUint32(entriesImage[off+4:], Mask(int(e.len)))
		binary.LittleEndian.PutUint32(entriesImage[off+8:], e.hop)
		if e.chain >= 0 {
			binary.LittleEndian.PutUint32(entriesImage[off+12:], entriesBase+uint32(e.chain)*LCEntrySize)
		}
	}
	return nodesImage, entriesImage
}
