package route

import "encoding/binary"

// RadixTree is a binary radix trie in the style of the BSD routing table
// used by the paper's IPv4-radix application: one bit is consumed per
// level, nodes carry an optional next hop where a prefix terminates, and
// lookup walks from the most significant bit tracking the longest match
// seen. It is deliberately the straightforward, unoptimized structure —
// the paper attributes IPv4-radix's high instruction counts to exactly
// this overhead of "maintaining and traversing the radix tree".
type RadixTree struct {
	root  *radixNode
	nodes int
}

type radixNode struct {
	left, right *radixNode
	// hop is 0 when no prefix terminates at this node, otherwise the next
	// hop value (which is >= 1 by the package convention).
	hop uint32
	// key and depth identify the node's position: the path from the root
	// spells the top `depth` bits of key (remaining bits zero). They are
	// serialized so the simulated application can perform the BSD-style
	// key/mask verification during its backtracking phase.
	key   uint32
	depth uint8
}

// NewRadixTree builds a radix tree from a table.
func NewRadixTree(t *Table) *RadixTree {
	r := &RadixTree{root: &radixNode{}, nodes: 1}
	for _, e := range t.Entries {
		r.insert(e)
	}
	return r
}

func (r *RadixTree) insert(e Entry) {
	n := r.root
	for i := 0; i < e.Len; i++ {
		bit := e.Prefix >> (31 - uint(i)) & 1
		var next **radixNode
		if bit == 0 {
			next = &n.left
		} else {
			next = &n.right
		}
		if *next == nil {
			*next = &radixNode{
				key:   e.Prefix & Mask(i+1),
				depth: uint8(i + 1),
			}
			r.nodes++
		}
		n = *next
	}
	n.hop = e.NextHop
}

// Nodes returns the number of allocated tree nodes.
func (r *RadixTree) Nodes() int { return r.nodes }

// Lookup performs longest-prefix match.
func (r *RadixTree) Lookup(addr uint32) (uint32, bool) {
	var best uint32
	n := r.root
	for i := 0; n != nil; i++ {
		if n.hop != 0 {
			best = n.hop
		}
		if i == 32 {
			break
		}
		if addr>>(31-uint(i))&1 == 0 {
			n = n.left
		} else {
			n = n.right
		}
	}
	return best, best != 0
}

// RadixNodeSize is the serialized size of one radix node in simulated
// memory.
const RadixNodeSize = 24

// Serialize lays the tree out in simulated memory for the PB32 IPv4-radix
// application. Nodes are RadixNodeSize bytes, little endian:
//
//	+0  left child address (absolute; 0 = none)
//	+4  right child address
//	+8  next hop (0 = no prefix terminates here)
//	+12 key: the prefix bits spelled by the path to this node
//	+16 mask: netmask of the node's depth
//	+20 bit index to test at this node (the node's depth; BSD's rn_off)
//
// The root node is placed first, at base. The returned image starts at
// base; the root address equals base.
func (r *RadixTree) Serialize(base uint32) (image []byte, rootAddr uint32) {
	// Assign addresses in breadth-first order with the root first.
	order := make([]*radixNode, 0, r.nodes)
	addrOf := make(map[*radixNode]uint32, r.nodes)
	queue := []*radixNode{r.root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		addrOf[n] = base + uint32(len(order))*RadixNodeSize
		order = append(order, n)
		if n.left != nil {
			queue = append(queue, n.left)
		}
		if n.right != nil {
			queue = append(queue, n.right)
		}
	}
	image = make([]byte, len(order)*RadixNodeSize)
	for i, n := range order {
		off := i * RadixNodeSize
		if n.left != nil {
			binary.LittleEndian.PutUint32(image[off:], addrOf[n.left])
		}
		if n.right != nil {
			binary.LittleEndian.PutUint32(image[off+4:], addrOf[n.right])
		}
		binary.LittleEndian.PutUint32(image[off+8:], n.hop)
		binary.LittleEndian.PutUint32(image[off+12:], n.key)
		binary.LittleEndian.PutUint32(image[off+16:], Mask(int(n.depth)))
		binary.LittleEndian.PutUint32(image[off+20:], uint32(n.depth))
	}
	return image, base
}
