// Package route implements the routing-table substrate for the IPv4
// forwarding applications: a BSD-style binary radix tree (used by
// IPv4-radix) and a level/path-compressed LC-trie after Nilsson and
// Karlsson (used by IPv4-trie), together with a synthetic prefix-table
// generator patterned on the MAE-WEST snapshot the paper uses.
//
// Each structure exists in two coupled forms:
//
//   - a native Go form with Lookup methods, used as the correctness oracle
//     and as the baseline in differential tests; and
//   - a serialized form (Serialize) that lays the exact same structure out
//     in simulated memory for the PB32 assembly applications to traverse.
//     The byte layouts are part of the contract with internal/apps and are
//     documented on the Serialize methods.
//
// Lookups implement longest-prefix match. Next hops are small positive
// integers (output port numbers); 0 is reserved for "no route".
package route

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"net/netip"
	"sort"
	"strconv"
	"strings"
)

// Entry is one routing-table entry. Prefix is left-aligned: the top Len
// bits are significant and the rest must be zero.
type Entry struct {
	Prefix  uint32
	Len     int
	NextHop uint32
}

// Mask returns the netmask implied by the entry's length.
func Mask(length int) uint32 {
	if length <= 0 {
		return 0
	}
	if length >= 32 {
		return ^uint32(0)
	}
	return ^uint32(0) << (32 - uint(length))
}

// Matches reports whether addr falls inside the entry's prefix.
func (e Entry) Matches(addr uint32) bool {
	return (addr^e.Prefix)&Mask(e.Len) == 0
}

// String renders the entry in "a.b.c.d/len -> hop" form.
func (e Entry) String() string {
	return fmt.Sprintf("%d.%d.%d.%d/%d -> %d",
		e.Prefix>>24, e.Prefix>>16&0xFF, e.Prefix>>8&0xFF, e.Prefix&0xFF, e.Len, e.NextHop)
}

// Table is a plain prefix list, the neutral source form both lookup
// structures are built from.
type Table struct {
	Entries []Entry
}

// LookupLinear performs longest-prefix match by exhaustive scan. It is the
// oracle the tree structures are differentially tested against.
func (t *Table) LookupLinear(addr uint32) (uint32, bool) {
	best := -1
	var hop uint32
	for _, e := range t.Entries {
		if e.Matches(addr) && e.Len > best {
			best = e.Len
			hop = e.NextHop
		}
	}
	return hop, best >= 0
}

// Add appends an entry after normalizing the prefix (masking off bits
// beyond the length).
func (t *Table) Add(prefix uint32, length int, nexthop uint32) error {
	if length < 0 || length > 32 {
		return fmt.Errorf("route: invalid prefix length %d", length)
	}
	if nexthop == 0 {
		return fmt.Errorf("route: next hop 0 is reserved")
	}
	t.Entries = append(t.Entries, Entry{Prefix: prefix & Mask(length), Len: length, NextHop: nexthop})
	return nil
}

// Dedup removes duplicate (prefix, len) pairs, keeping the last
// occurrence, and sorts the table.
func (t *Table) Dedup() {
	sort.SliceStable(t.Entries, func(i, j int) bool {
		a, b := t.Entries[i], t.Entries[j]
		if a.Prefix != b.Prefix {
			return a.Prefix < b.Prefix
		}
		return a.Len < b.Len
	})
	out := t.Entries[:0]
	for _, e := range t.Entries {
		if n := len(out); n > 0 && out[n-1].Prefix == e.Prefix && out[n-1].Len == e.Len {
			out[n-1] = e
			continue
		}
		out = append(out, e)
	}
	t.Entries = out
}

// GenOptions parameterizes synthetic table generation.
type GenOptions struct {
	// Prefixes is the number of entries to generate.
	Prefixes int
	// NextHops is the number of distinct output ports (next hops are drawn
	// from 1..NextHops).
	NextHops int
	// Seed makes generation deterministic.
	Seed int64
	// IncludeDefault adds a 0.0.0.0/0 entry so every lookup succeeds.
	IncludeDefault bool
}

// lengthDist is the prefix-length mix of a MAE-WEST-style backbone table:
// dominated by /24s, with meaningful /16 and /19-/23 populations.
var lengthDist = []struct {
	length int
	weight int
}{
	{8, 2}, {13, 1}, {14, 2}, {15, 2}, {16, 18},
	{17, 3}, {18, 4}, {19, 7}, {20, 6}, {21, 6},
	{22, 7}, {23, 8}, {24, 60}, {25, 1}, {26, 1},
	{27, 1}, {28, 1}, {30, 1}, {32, 1},
}

// GenerateTable builds a deterministic synthetic routing table with a
// realistic prefix-length distribution.
func GenerateTable(opts GenOptions) *Table {
	if opts.Prefixes <= 0 {
		opts.Prefixes = 1000
	}
	if opts.NextHops <= 0 {
		opts.NextHops = 16
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	total := 0
	for _, d := range lengthDist {
		total += d.weight
	}
	t := &Table{}
	seen := make(map[uint64]bool, opts.Prefixes)
	if opts.IncludeDefault {
		t.Entries = append(t.Entries, Entry{Prefix: 0, Len: 0, NextHop: uint32(opts.NextHops)})
	}
	for len(t.Entries) < opts.Prefixes {
		// Draw a length from the distribution.
		r := rng.Intn(total)
		length := 24
		for _, d := range lengthDist {
			if r < d.weight {
				length = d.length
				break
			}
			r -= d.weight
		}
		// Draw a prefix in unicast space (16.0.0.0 - 223.255.255.255).
		addr := uint32(16+rng.Intn(208))<<24 | uint32(rng.Int63())&0x00FFFFFF
		prefix := addr & Mask(length)
		key := uint64(prefix)<<6 | uint64(length)
		if seen[key] {
			continue
		}
		seen[key] = true
		t.Entries = append(t.Entries, Entry{
			Prefix: prefix, Len: length,
			NextHop: uint32(1 + rng.Intn(opts.NextHops)),
		})
	}
	t.Dedup()
	return t
}

// TableFromTraffic derives a routing table from observed destination
// addresses, the way a provider's table covers the destinations its
// customers actually reach. Each sampled destination contributes a
// prefix whose length is drawn from the backbone length distribution, so
// lookups on the same traffic find deep longest matches — the "uniform
// coverage of the routing table" the paper's address scrambling is there
// to produce. Generation is deterministic for a given seed.
func TableFromTraffic(dsts []uint32, maxPrefixes int, nextHops int, seed int64) *Table {
	if nextHops <= 0 {
		nextHops = 16
	}
	rng := rand.New(rand.NewSource(seed))
	total := 0
	for _, d := range lengthDist {
		total += d.weight
	}
	t := &Table{}
	seen := make(map[uint64]bool)
	for _, dst := range dsts {
		if maxPrefixes > 0 && len(t.Entries) >= maxPrefixes {
			break
		}
		r := rng.Intn(total)
		length := 24
		for _, d := range lengthDist {
			if r < d.weight {
				length = d.length
				break
			}
			r -= d.weight
		}
		prefix := dst & Mask(length)
		key := uint64(prefix)<<6 | uint64(length)
		if seen[key] {
			continue
		}
		seen[key] = true
		t.Entries = append(t.Entries, Entry{
			Prefix: prefix, Len: length,
			NextHop: uint32(1 + rng.Intn(nextHops)),
		})
	}
	t.Dedup()
	return t
}

// ParseTable reads a routing table in the simple text form
//
//	# comment
//	a.b.c.d/len nexthop
//
// one entry per line, so real table snapshots (e.g. MAE-WEST dumps
// converted to this form) can be dropped into the tools.
func ParseTable(r io.Reader) (*Table, error) {
	t := &Table{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("route: line %d: want \"prefix/len nexthop\", got %q", lineNo, line)
		}
		slash := strings.IndexByte(fields[0], '/')
		if slash < 0 {
			return nil, fmt.Errorf("route: line %d: missing /len in %q", lineNo, fields[0])
		}
		addr, err := netip.ParseAddr(fields[0][:slash])
		if err != nil || !addr.Is4() {
			return nil, fmt.Errorf("route: line %d: bad IPv4 address %q", lineNo, fields[0][:slash])
		}
		length, err := strconv.Atoi(fields[0][slash+1:])
		if err != nil {
			return nil, fmt.Errorf("route: line %d: bad prefix length %q", lineNo, fields[0][slash+1:])
		}
		hop, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("route: line %d: bad next hop %q", lineNo, fields[1])
		}
		a4 := addr.As4()
		prefix := uint32(a4[0])<<24 | uint32(a4[1])<<16 | uint32(a4[2])<<8 | uint32(a4[3])
		if err := t.Add(prefix, length, uint32(hop)); err != nil {
			return nil, fmt.Errorf("route: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	t.Dedup()
	return t, nil
}

// WriteTable renders the table in the format ParseTable reads.
func (t *Table) WriteTable(w io.Writer) error {
	for _, e := range t.Entries {
		if _, err := fmt.Fprintf(w, "%d.%d.%d.%d/%d %d\n",
			e.Prefix>>24, e.Prefix>>16&0xFF, e.Prefix>>8&0xFF, e.Prefix&0xFF,
			e.Len, e.NextHop); err != nil {
			return err
		}
	}
	return nil
}
