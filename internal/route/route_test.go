package route

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
)

func smallTable(t *testing.T) *Table {
	t.Helper()
	tbl := &Table{}
	add := func(a, b, c, d byte, l int, hop uint32) {
		t.Helper()
		p := uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
		if err := tbl.Add(p, l, hop); err != nil {
			t.Fatal(err)
		}
	}
	add(10, 0, 0, 0, 8, 1)
	add(10, 1, 0, 0, 16, 2)
	add(10, 1, 2, 0, 24, 3)
	add(192, 168, 0, 0, 16, 4)
	add(192, 168, 5, 0, 24, 5)
	add(172, 16, 0, 0, 12, 6)
	add(0, 0, 0, 0, 0, 7) // default route
	return tbl
}

func addr(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}

var lookupCases = []struct {
	addr uint32
	hop  uint32
}{
	{addr(10, 1, 2, 3), 3},    // longest match /24
	{addr(10, 1, 3, 3), 2},    // /16
	{addr(10, 2, 0, 1), 1},    // /8
	{addr(192, 168, 5, 9), 5}, // /24
	{addr(192, 168, 9, 9), 4}, // /16
	{addr(172, 16, 99, 1), 6}, // /12
	{addr(172, 32, 0, 1), 7},  // outside /12 -> default
	{addr(8, 8, 8, 8), 7},     // default
	{addr(255, 255, 255, 255), 7},
}

func TestMask(t *testing.T) {
	cases := map[int]uint32{
		0: 0, 1: 0x80000000, 8: 0xFF000000, 12: 0xFFF00000,
		16: 0xFFFF0000, 24: 0xFFFFFF00, 31: 0xFFFFFFFE, 32: 0xFFFFFFFF,
	}
	for l, want := range cases {
		if got := Mask(l); got != want {
			t.Errorf("Mask(%d) = %#x, want %#x", l, got, want)
		}
	}
}

func TestLinearLookup(t *testing.T) {
	tbl := smallTable(t)
	for _, c := range lookupCases {
		hop, ok := tbl.LookupLinear(c.addr)
		if !ok || hop != c.hop {
			t.Errorf("LookupLinear(%#x) = %d, %v; want %d", c.addr, hop, ok, c.hop)
		}
	}
}

func TestLinearLookupNoDefault(t *testing.T) {
	tbl := &Table{}
	_ = tbl.Add(addr(10, 0, 0, 0), 8, 1)
	if _, ok := tbl.LookupLinear(addr(11, 0, 0, 0)); ok {
		t.Error("lookup of unrouted address succeeded")
	}
}

func TestTableAddValidation(t *testing.T) {
	tbl := &Table{}
	if err := tbl.Add(0, 33, 1); err == nil {
		t.Error("length 33 accepted")
	}
	if err := tbl.Add(0, -1, 1); err == nil {
		t.Error("negative length accepted")
	}
	if err := tbl.Add(0, 8, 0); err == nil {
		t.Error("next hop 0 accepted")
	}
	// Prefix normalization.
	if err := tbl.Add(addr(10, 1, 2, 3), 8, 5); err != nil {
		t.Fatal(err)
	}
	if tbl.Entries[0].Prefix != addr(10, 0, 0, 0) {
		t.Errorf("prefix not normalized: %v", tbl.Entries[0])
	}
}

func TestDedup(t *testing.T) {
	tbl := &Table{}
	_ = tbl.Add(addr(10, 0, 0, 0), 8, 1)
	_ = tbl.Add(addr(10, 0, 0, 0), 8, 9) // duplicate, later wins
	_ = tbl.Add(addr(9, 0, 0, 0), 8, 2)
	tbl.Dedup()
	if len(tbl.Entries) != 2 {
		t.Fatalf("Dedup left %d entries", len(tbl.Entries))
	}
	if hop, _ := tbl.LookupLinear(addr(10, 1, 1, 1)); hop != 9 {
		t.Errorf("duplicate resolution kept hop %d, want 9", hop)
	}
}

func TestRadixMatchesLinear(t *testing.T) {
	tbl := smallTable(t)
	r := NewRadixTree(tbl)
	for _, c := range lookupCases {
		hop, ok := r.Lookup(c.addr)
		if !ok || hop != c.hop {
			t.Errorf("radix Lookup(%#x) = %d, %v; want %d", c.addr, hop, ok, c.hop)
		}
	}
}

func TestLCTrieMatchesLinear(t *testing.T) {
	tbl := smallTable(t)
	lc, err := NewLCTrie(tbl)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range lookupCases {
		hop, ok := lc.Lookup(c.addr)
		if !ok || hop != c.hop {
			t.Errorf("lctrie Lookup(%#x) = %d, %v; want %d", c.addr, hop, ok, c.hop)
		}
	}
}

// TestDifferentialLookup is the core substrate property: on randomly
// generated tables, radix tree and LC-trie agree with the exhaustive
// linear oracle for both routed and unrouted addresses.
func TestDifferentialLookup(t *testing.T) {
	for _, withDefault := range []bool{false, true} {
		for seed := int64(0); seed < 4; seed++ {
			tbl := GenerateTable(GenOptions{Prefixes: 400, NextHops: 8, Seed: seed, IncludeDefault: withDefault})
			r := NewRadixTree(tbl)
			lc, err := NewLCTrie(tbl)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed + 100))
			for i := 0; i < 3000; i++ {
				var a uint32
				if i%2 == 0 {
					// Half the probes target known prefixes (guaranteeing
					// deep matches), half are uniform.
					e := tbl.Entries[rng.Intn(len(tbl.Entries))]
					a = e.Prefix | rng.Uint32()&^Mask(e.Len)
				} else {
					a = rng.Uint32()
				}
				wantHop, wantOK := tbl.LookupLinear(a)
				if hop, ok := r.Lookup(a); hop != wantHop || ok != wantOK {
					t.Fatalf("seed %d: radix(%#x) = %d,%v; oracle %d,%v", seed, a, hop, ok, wantHop, wantOK)
				}
				if hop, ok := lc.Lookup(a); hop != wantHop || ok != wantOK {
					t.Fatalf("seed %d: lctrie(%#x) = %d,%v; oracle %d,%v", seed, a, hop, ok, wantHop, wantOK)
				}
			}
		}
	}
}

func TestLCTrieCompression(t *testing.T) {
	// The whole point of the LC-trie: far fewer node visits than the
	// radix tree's bit-at-a-time descent.
	tbl := GenerateTable(GenOptions{Prefixes: 2000, NextHops: 16, Seed: 42})
	lc, err := NewLCTrie(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if d := lc.Depth(); d > 10 {
		t.Errorf("LC-trie depth %d; expected strong level compression (<= 10)", d)
	}
	r := NewRadixTree(tbl)
	if lc.Nodes() >= r.Nodes() {
		t.Errorf("LC-trie nodes (%d) not smaller than radix nodes (%d)", lc.Nodes(), r.Nodes())
	}
}

func TestEmptyTables(t *testing.T) {
	tbl := &Table{}
	r := NewRadixTree(tbl)
	if _, ok := r.Lookup(123); ok {
		t.Error("empty radix lookup succeeded")
	}
	lc, err := NewLCTrie(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := lc.Lookup(123); ok {
		t.Error("empty lctrie lookup succeeded")
	}
	if lc.Depth() != 0 || lc.Nodes() != 0 {
		t.Error("empty lctrie has nodes")
	}
}

func TestSingleEntryTables(t *testing.T) {
	tbl := &Table{}
	_ = tbl.Add(addr(10, 0, 0, 0), 8, 3)
	r := NewRadixTree(tbl)
	lc, _ := NewLCTrie(tbl)
	if hop, ok := r.Lookup(addr(10, 9, 9, 9)); !ok || hop != 3 {
		t.Errorf("radix single = %d, %v", hop, ok)
	}
	if hop, ok := lc.Lookup(addr(10, 9, 9, 9)); !ok || hop != 3 {
		t.Errorf("lctrie single = %d, %v", hop, ok)
	}
	if _, ok := lc.Lookup(addr(11, 0, 0, 0)); ok {
		t.Error("lctrie matched outside prefix")
	}
}

func TestDefaultRouteOnly(t *testing.T) {
	tbl := &Table{}
	_ = tbl.Add(0, 0, 9)
	lc, _ := NewLCTrie(tbl)
	if hop, ok := lc.Lookup(rand.Uint32()); !ok || hop != 9 {
		t.Errorf("default-only lctrie = %d, %v", hop, ok)
	}
}

func TestGenerateTableProperties(t *testing.T) {
	tbl := GenerateTable(GenOptions{Prefixes: 1000, NextHops: 16, Seed: 1})
	if len(tbl.Entries) != 1000 {
		t.Fatalf("generated %d entries", len(tbl.Entries))
	}
	lens := make(map[int]int)
	for _, e := range tbl.Entries {
		if e.Prefix&^Mask(e.Len) != 0 {
			t.Fatalf("entry %v has bits beyond its length", e)
		}
		if e.NextHop == 0 || e.NextHop > 16 {
			t.Fatalf("entry %v has bad next hop", e)
		}
		lens[e.Len]++
	}
	// /24s must dominate (MAE-WEST shape).
	if lens[24] < 400 {
		t.Errorf("only %d /24 prefixes in 1000", lens[24])
	}
	// Determinism.
	again := GenerateTable(GenOptions{Prefixes: 1000, NextHops: 16, Seed: 1})
	for i := range tbl.Entries {
		if tbl.Entries[i] != again.Entries[i] {
			t.Fatal("table generation not deterministic")
		}
	}
	// Different seeds differ.
	other := GenerateTable(GenOptions{Prefixes: 1000, NextHops: 16, Seed: 2})
	same := 0
	for i := range tbl.Entries {
		if tbl.Entries[i] == other.Entries[i] {
			same++
		}
	}
	if same == len(tbl.Entries) {
		t.Error("different seeds produced identical tables")
	}
}

func TestRadixSerializeLayout(t *testing.T) {
	tbl := smallTable(t)
	r := NewRadixTree(tbl)
	const base = 0x10000000
	img, root := r.Serialize(base)
	if root != base {
		t.Errorf("root = %#x, want %#x", root, base)
	}
	if len(img) != r.Nodes()*RadixNodeSize {
		t.Fatalf("image %d bytes for %d nodes", len(img), r.Nodes())
	}
	// Walk the serialized image like the assembly app would and check it
	// against the native lookup for the standard cases.
	lookup := func(a uint32) (uint32, bool) {
		var best uint32
		node := root
		for i := 0; node != 0; i++ {
			off := node - base
			hop := binary.LittleEndian.Uint32(img[off+8:])
			if hop != 0 {
				best = hop
			}
			if i == 32 {
				break
			}
			if a>>(31-uint(i))&1 == 0 {
				node = binary.LittleEndian.Uint32(img[off:])
			} else {
				node = binary.LittleEndian.Uint32(img[off+4:])
			}
		}
		return best, best != 0
	}
	for _, c := range lookupCases {
		hop, ok := lookup(c.addr)
		if !ok || hop != c.hop {
			t.Errorf("serialized radix walk(%#x) = %d, %v; want %d", c.addr, hop, ok, c.hop)
		}
	}
}

func TestLCTrieSerializeLayout(t *testing.T) {
	tbl := GenerateTable(GenOptions{Prefixes: 300, NextHops: 8, Seed: 5, IncludeDefault: true})
	lc, err := NewLCTrie(tbl)
	if err != nil {
		t.Fatal(err)
	}
	const nodesBase, entriesBase = 0x10000000, 0x10100000
	nodesImg, entriesImg := lc.Serialize(nodesBase, entriesBase)
	if len(nodesImg) != lc.Nodes()*4 || len(entriesImg) != lc.Entries()*LCEntrySize {
		t.Fatalf("image sizes %d/%d for %d nodes, %d entries",
			len(nodesImg), len(entriesImg), lc.Nodes(), lc.Entries())
	}
	// Walk the serialized images exactly as the assembly app does.
	lookup := func(a uint32) (uint32, bool) {
		node := binary.LittleEndian.Uint32(nodesImg)
		pos := uint32(0)
		for {
			branch := node >> lcBranchShift
			skip := node >> lcSkipShift & 0x1F
			adr := node & lcAdrMask
			if branch == 0 {
				entry := entriesBase + adr*LCEntrySize
				for entry != 0 {
					off := entry - entriesBase
					prefix := binary.LittleEndian.Uint32(entriesImg[off:])
					mask := binary.LittleEndian.Uint32(entriesImg[off+4:])
					if (a^prefix)&mask == 0 {
						return binary.LittleEndian.Uint32(entriesImg[off+8:]), true
					}
					entry = binary.LittleEndian.Uint32(entriesImg[off+12:])
				}
				return 0, false
			}
			pos += skip
			k := extractBits(a, pos, branch)
			pos += branch
			node = binary.LittleEndian.Uint32(nodesImg[(adr+k)*4:])
		}
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		a := rng.Uint32()
		wantHop, wantOK := lc.Lookup(a)
		hop, ok := lookup(a)
		if hop != wantHop || ok != wantOK {
			t.Fatalf("serialized lctrie walk(%#x) = %d,%v; native %d,%v", a, hop, ok, wantHop, wantOK)
		}
	}
}

func TestEntryString(t *testing.T) {
	e := Entry{Prefix: addr(10, 1, 2, 0), Len: 24, NextHop: 5}
	if got := e.String(); got != "10.1.2.0/24 -> 5" {
		t.Errorf("String() = %q", got)
	}
}

func TestExtractBits(t *testing.T) {
	cases := []struct {
		addr       uint32
		pos, count uint32
		want       uint32
	}{
		{0x80000000, 0, 1, 1},
		{0x80000000, 1, 1, 0},
		{0xFF000000, 0, 8, 0xFF},
		{0x12345678, 4, 8, 0x23},
		{0x12345678, 28, 4, 0x8},
		{0xFFFFFFFF, 0, 0, 0},
	}
	for _, c := range cases {
		if got := extractBits(c.addr, c.pos, c.count); got != c.want {
			t.Errorf("extractBits(%#x, %d, %d) = %#x, want %#x", c.addr, c.pos, c.count, got, c.want)
		}
	}
}

func TestPackUnpackNode(t *testing.T) {
	for _, c := range []struct{ branch, skip, adr uint32 }{
		{0, 0, 0}, {1, 0, 5}, {16, 31, lcAdrMask}, {4, 7, 123456},
	} {
		b, s, a := unpackNode(packNode(c.branch, c.skip, c.adr))
		if b != c.branch || s != c.skip || a != c.adr {
			t.Errorf("pack/unpack(%v) = %d,%d,%d", c, b, s, a)
		}
	}
}

func TestParseWriteTableRoundTrip(t *testing.T) {
	orig := GenerateTable(GenOptions{Prefixes: 200, NextHops: 8, Seed: 6})
	var buf bytes.Buffer
	if err := orig.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Entries) != len(orig.Entries) {
		t.Fatalf("parsed %d entries, wrote %d", len(parsed.Entries), len(orig.Entries))
	}
	for i := range orig.Entries {
		if parsed.Entries[i] != orig.Entries[i] {
			t.Fatalf("entry %d: %v != %v", i, parsed.Entries[i], orig.Entries[i])
		}
	}
}

func TestParseTableSyntax(t *testing.T) {
	good := "# MAE-WEST style dump\n10.0.0.0/8 3\n\n192.168.0.0/16 1\n"
	tbl, err := ParseTable(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Entries) != 2 {
		t.Fatalf("%d entries", len(tbl.Entries))
	}
	if hop, ok := tbl.LookupLinear(addr(10, 1, 1, 1)); !ok || hop != 3 {
		t.Errorf("lookup = %d, %v", hop, ok)
	}
	bads := []string{
		"10.0.0.0 3",         // no /len
		"10.0.0.0/8",         // no hop
		"10.0.0.0/8 3 extra", // junk
		"300.0.0.0/8 3",      // bad address
		"::1/8 3",            // not IPv4
		"10.0.0.0/99 3",      // bad length
		"10.0.0.0/8 zero",    // bad hop
		"10.0.0.0/8 0",       // reserved hop
	}
	for _, b := range bads {
		if _, err := ParseTable(strings.NewReader(b)); err == nil {
			t.Errorf("ParseTable(%q) accepted", b)
		}
	}
}

// TestNestedPrefixChains stresses the LC-trie's chain links with a
// maximal nesting tower: prefixes /1 through /32 along one path, probed
// at every depth.
func TestNestedPrefixChains(t *testing.T) {
	tbl := &Table{}
	base := addr(10, 20, 30, 40)
	for l := 1; l <= 32; l++ {
		if err := tbl.Add(base, l, uint32(l)); err != nil {
			t.Fatal(err)
		}
	}
	// A sibling subtree so the trie has real branching too.
	_ = tbl.Add(addr(200, 0, 0, 0), 8, 99)
	lc, err := NewLCTrie(tbl)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRadixTree(tbl)
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 5000; i++ {
		// Probe addresses sharing k leading bits with the tower.
		k := rng.Intn(33)
		var a uint32
		if k == 32 {
			a = base
		} else {
			a = base&Mask(k) | ^base&(1<<(31-uint(k))) | rng.Uint32()&(1<<(31-uint(k))-1)
		}
		wantHop, wantOK := tbl.LookupLinear(a)
		if hop, ok := lc.Lookup(a); hop != wantHop || ok != wantOK {
			t.Fatalf("lctrie(%#x, k=%d) = %d,%v; oracle %d,%v", a, k, hop, ok, wantHop, wantOK)
		}
		if hop, ok := r.Lookup(a); hop != wantHop || ok != wantOK {
			t.Fatalf("radix(%#x, k=%d) = %d,%v; oracle %d,%v", a, k, hop, ok, wantHop, wantOK)
		}
	}
}
