package staticcheck

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/asm"
	"repro/internal/diag"
	"repro/internal/isa"
)

// CFG is the static control-flow graph of an assembled program: basic
// blocks from analysis.BlockMap connected by successor/predecessor
// edges, the call graph implied by the assembler's JAL/JALR call-return
// discipline, and the set of blocks reachable from the entry points.
type CFG struct {
	Prog   *asm.Program
	Blocks *analysis.BlockMap
	// Succs and Preds are the static control-flow edges per block,
	// including both the target and the return point of linking jumps.
	Succs [][]int
	Preds [][]int
	// Entries holds the block ids execution enters from the framework.
	Entries []int
	// Reachable[b] reports whether block b is reachable from Entries.
	Reachable []bool
	// FuncEntries holds the block ids that start a function: the program
	// entries plus every call (linking JAL) target.
	FuncEntries []int
	// Calls lists the call sites (linking JALs with an in-text target).
	Calls []Call

	funcEntry []bool // indexed by block id
}

// Call is one static call site.
type Call struct {
	Block  int // calling block
	Index  int // instruction index of the JAL
	Target int // callee entry block
}

// BuildCFG constructs the control-flow graph of prog. Diagnostics are
// produced only for unresolvable entry symbols; the graph itself is
// built for any program.
func BuildCFG(prog *asm.Program, opts Options) (*CFG, diag.List) {
	blocks := analysis.NewBlockMap(prog.Text, prog.TextBase)
	c := &CFG{
		Prog:   prog,
		Blocks: blocks,
		Succs:  analysis.Successors(prog.Text, blocks),
	}
	c.Preds = analysis.Predecessors(c.Succs)

	entryAddrs, ds := resolveEntries(prog, opts)
	seenEntry := make(map[int]bool)
	for _, addr := range entryAddrs {
		if b := blocks.BlockOf(addr); b >= 0 && !seenEntry[b] {
			seenEntry[b] = true
			c.Entries = append(c.Entries, b)
		}
	}

	// Function entries: program entries plus call targets.
	c.funcEntry = make([]bool, blocks.NumBlocks())
	for _, e := range c.Entries {
		c.funcEntry[e] = true
	}
	for b := 0; b < blocks.NumBlocks(); b++ {
		last := blocks.TerminatorIndex(b)
		in := prog.Text[last]
		if in.Op == isa.JAL && in.Rd != isa.Zero {
			t := last + 1 + int(in.Imm)
			if t >= 0 && t < len(prog.Text) {
				tb := blocks.BlockOfIndex(t)
				c.Calls = append(c.Calls, Call{Block: b, Index: last, Target: tb})
				c.funcEntry[tb] = true
			}
		}
	}
	for b, is := range c.funcEntry {
		if is {
			c.FuncEntries = append(c.FuncEntries, b)
		}
	}

	// Reachability over the full edge set (call targets included).
	c.Reachable = make([]bool, blocks.NumBlocks())
	work := append([]int(nil), c.Entries...)
	for _, b := range work {
		c.Reachable[b] = true
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range c.Succs[b] {
			if !c.Reachable[s] {
				c.Reachable[s] = true
				work = append(work, s)
			}
		}
	}
	return c, ds
}

// resolveEntries determines the program's entry addresses: explicit
// addresses, named symbols, or (by default) the text-segment globals,
// falling back to the base of the text segment.
func resolveEntries(prog *asm.Program, opts Options) ([]uint32, diag.List) {
	if len(opts.EntryAddrs) > 0 {
		return opts.EntryAddrs, nil
	}
	var ds diag.List
	if len(opts.Entries) > 0 {
		var addrs []uint32
		for _, name := range opts.Entries {
			addr, ok := prog.Symbols[name]
			if !ok {
				ds = append(ds, diag.Diagnostic{Severity: diag.Error, Check: "entry",
					Msg: fmt.Sprintf("entry symbol %q is not defined", name)})
				continue
			}
			if addr < prog.TextBase || addr >= prog.TextEnd() {
				ds = append(ds, diag.Diagnostic{Severity: diag.Error, Check: "entry",
					Line: prog.LabelLines[name],
					Msg:  fmt.Sprintf("entry symbol %q at %#x is outside the text segment", name, addr)})
				continue
			}
			addrs = append(addrs, addr)
		}
		return addrs, ds
	}
	var addrs []uint32
	for _, g := range prog.Globals {
		if addr, ok := prog.Symbols[g]; ok && addr >= prog.TextBase && addr < prog.TextEnd() {
			addrs = append(addrs, addr)
		}
	}
	if len(addrs) == 0 && len(prog.Text) > 0 {
		addrs = append(addrs, prog.TextBase)
	}
	return addrs, ds
}

// lineAt returns the source line of instruction index i.
func (c *CFG) lineAt(i int) int {
	if i >= 0 && i < len(c.Prog.SourceLines) {
		return c.Prog.SourceLines[i]
	}
	return 0
}

// pcAt returns the text address of instruction index i.
func (c *CFG) pcAt(i int) uint32 {
	return c.Prog.TextBase + uint32(i)*isa.WordSize
}

// structural checks the graph's shape: control transfers that leave the
// text segment, paths that run off the end of the program, and
// unreachable code. Only reachable blocks are held to the error-severity
// checks — dead code cannot fault.
func (c *CFG) structural() diag.List {
	var ds diag.List
	text := c.Prog.Text
	n := len(text)
	for b := 0; b < c.Blocks.NumBlocks(); b++ {
		if !c.Reachable[b] {
			continue
		}
		last := c.Blocks.TerminatorIndex(b)
		in := text[last]
		line, pc := c.lineAt(last), c.pcAt(last)
		target := last + 1 + int(in.Imm)
		switch {
		case in.Op.IsBranch():
			if target < 0 || target >= n {
				ds = append(ds, diag.Diagnostic{Severity: diag.Error, Check: "bad-target", Line: line, PC: pc,
					Msg: fmt.Sprintf("branch target %#x is outside the text segment [%#x, %#x)",
						pc+4+uint32(in.Imm)*isa.WordSize, c.Prog.TextBase, c.Prog.TextEnd())})
			}
			if last == n-1 {
				ds = append(ds, fallOff(line, pc))
			}
		case in.Op == isa.JAL:
			if target < 0 || target >= n {
				ds = append(ds, diag.Diagnostic{Severity: diag.Error, Check: "bad-target", Line: line, PC: pc,
					Msg: fmt.Sprintf("jump target %#x is outside the text segment [%#x, %#x)",
						pc+4+uint32(in.Imm)*isa.WordSize, c.Prog.TextBase, c.Prog.TextEnd())})
			}
			if in.Rd != isa.Zero && last == n-1 {
				// A call in the last slot returns to an address past the
				// end of the program.
				ds = append(ds, fallOff(line, pc))
			}
		case in.Op == isa.JALR, in.Op == isa.HALT:
			// Return, indirect jump, or stop: never falls through.
		default:
			if last == n-1 {
				ds = append(ds, fallOff(line, pc))
			}
		}
	}

	// Unreachable code, reported once per maximal run of dead blocks.
	for b := 0; b < c.Blocks.NumBlocks(); {
		if c.Reachable[b] {
			b++
			continue
		}
		start := b
		instrs := 0
		for b < c.Blocks.NumBlocks() && !c.Reachable[b] {
			instrs += c.Blocks.Size(b)
			b++
		}
		lead := c.Blocks.LeaderIndex(start)
		ds = append(ds, diag.Diagnostic{Severity: diag.Warning, Check: "unreachable",
			Line: c.lineAt(lead), PC: c.pcAt(lead),
			Msg: fmt.Sprintf("unreachable code: %d instructions starting at block %d are never executed from the entry point", instrs, start)})
	}
	return ds
}

func fallOff(line int, pc uint32) diag.Diagnostic {
	return diag.Diagnostic{Severity: diag.Error, Check: "fall-off-end", Line: line, PC: pc,
		Msg: "control can run past the end of the text segment (missing halt or ret)"}
}

// nonTermination warns about loops no exit can escape: reachable blocks
// from which no path leads to a HALT, a function return, or any other
// way out of the program. The warning fires once per loop entry.
func (c *CFG) nonTermination() diag.List {
	text := c.Prog.Text
	n := c.Blocks.NumBlocks()
	canExit := make([]bool, n)
	var work []int
	for b := 0; b < n; b++ {
		last := c.Blocks.TerminatorIndex(b)
		in := text[last]
		exits := in.Op == isa.HALT || in.Op == isa.JALR
		fallsThrough := !in.Op.IsControl() || in.Op.IsBranch() ||
			(in.Op == isa.JAL && in.Rd != isa.Zero)
		if fallsThrough && last == len(text)-1 {
			// Running off the end leaves the program (reported as
			// fall-off-end).
			exits = true
		}
		if !exits && (in.Op.IsBranch() || in.Op == isa.JAL) {
			// A control transfer that leaves the text segment is an exit
			// for termination purposes (it is reported as bad-target).
			if t := last + 1 + int(in.Imm); t < 0 || t >= len(text) {
				exits = true
			}
		}
		if exits {
			canExit[b] = true
			work = append(work, b)
		}
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, p := range c.Preds[b] {
			if !canExit[p] {
				canExit[p] = true
				work = append(work, p)
			}
		}
	}

	trapped := make(map[int]bool)
	for b := 0; b < n; b++ {
		if c.Reachable[b] && !canExit[b] {
			trapped[b] = true
		}
	}
	if len(trapped) == 0 {
		return nil
	}
	// Loop entries: trapped blocks entered from outside the trapped set
	// (or program entries that are themselves trapped).
	entries := make(map[int]bool)
	for b := range trapped {
		for _, p := range c.Preds[b] {
			if !trapped[p] && c.Reachable[p] {
				entries[b] = true
			}
		}
	}
	for _, e := range c.Entries {
		if trapped[e] {
			entries[e] = true
		}
	}
	if len(entries) == 0 {
		// A trap with no entry edge: fall back to its smallest block.
		min := -1
		for b := range trapped {
			if min < 0 || b < min {
				min = b
			}
		}
		entries[min] = true
	}
	var ds diag.List
	var order []int
	for b := range entries {
		order = append(order, b)
	}
	sort.Ints(order)
	for _, b := range order {
		lead := c.Blocks.LeaderIndex(b)
		ds = append(ds, diag.Diagnostic{Severity: diag.Warning, Check: "non-termination",
			Line: c.lineAt(lead), PC: c.pcAt(lead),
			Msg: fmt.Sprintf("possible non-termination: no path from block %d reaches halt or return", b)})
	}
	return ds
}

// Dot renders the control-flow graph in Graphviz format: one node per
// basic block labeled with its address range and source lines,
// fall-through/branch edges solid, call edges dashed, and unreachable
// blocks grayed out.
func (c *CFG) Dot() string {
	var b strings.Builder
	b.WriteString("digraph cfg {\n  node [shape=box, fontname=\"monospace\"];\n")
	isCallTarget := func(from, to int) bool {
		for _, call := range c.Calls {
			if call.Block == from && call.Target == to {
				return true
			}
		}
		return false
	}
	for blk := 0; blk < c.Blocks.NumBlocks(); blk++ {
		lead := c.Blocks.LeaderIndex(blk)
		last := c.Blocks.TerminatorIndex(blk)
		label := fmt.Sprintf("b%d\\n%#x..%#x\\nlines %d..%d",
			blk, c.pcAt(lead), c.pcAt(last), c.lineAt(lead), c.lineAt(last))
		attrs := ""
		if !c.Reachable[blk] {
			attrs = ", style=dashed, color=gray"
		}
		if c.funcEntry[blk] {
			attrs += ", peripheries=2"
		}
		fmt.Fprintf(&b, "  b%d [label=\"%s\"%s];\n", blk, label, attrs)
		for _, s := range c.Succs[blk] {
			style := ""
			if isCallTarget(blk, s) {
				style = " [style=dashed, label=\"call\"]"
			}
			fmt.Fprintf(&b, "  b%d -> b%d%s;\n", blk, s, style)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
