package staticcheck

import (
	"fmt"
	"sort"

	"repro/internal/diag"
	"repro/internal/isa"
	"repro/internal/vm"
)

// The dataflow analysis runs a forward abstract interpretation over each
// function of the program (the entry functions plus every call target),
// tracking per-register abstract values:
//
//   - uninit: never written on some path (the bottom element)
//   - const:  a single known 32-bit value, folded with the simulator's
//     exact ALU semantics
//   - sprel:  a known signed offset from the function's incoming sp
//   - unknown: defined, value untracked (the top of the value lattice)
//
// The fixpoint answers may-questions: a register is flagged only if some
// path reaches the use without a write. Constants feed the static
// memory checks (region and alignment of load/store addresses) and the
// computed-jump check on JALR; sp tracking drives the stack-discipline
// checks (balanced frames at return, sp clobber detection).
//
// Functions are analyzed separately: a call terminator propagates the
// caller's state across the call site with the caller-saved registers
// (a0–a3, t0–t4, ra) clobbered to unknown and the callee-saved registers
// (s0–s3, sp) preserved, which is the discipline the bundled
// applications and the assembler's call/ret pseudo-instructions follow.

type valKind uint8

const (
	vUninit valKind = iota // may be read before written
	vUnknown
	vConst
	vSPRel // value = incoming sp + int32(v)
)

type absVal struct {
	kind valKind
	v    uint32
}

func (a absVal) defined() bool { return a.kind != vUninit }

type regState [isa.NumRegs]absVal

// meet combines the states of two paths in place; it returns true if a
// changed. The lattice order is vUninit < vUnknown < {vConst, vSPRel}.
func (a *regState) meet(b *regState) bool {
	changed := false
	for r := range a {
		av, bv := a[r], b[r]
		if av == bv {
			continue
		}
		var m absVal
		switch {
		case av.kind == vUninit || bv.kind == vUninit:
			m = absVal{kind: vUninit}
		default:
			m = absVal{kind: vUnknown}
		}
		if m != av {
			a[r] = m
			changed = true
		}
	}
	return changed
}

type dfa struct {
	cfg       *CFG
	opts      Options
	hasLayout bool
	ds        diag.List
}

func newDataflow(cfg *CFG, opts Options) *dfa {
	return &dfa{cfg: cfg, opts: opts, hasLayout: opts.Layout != (vm.Layout{})}
}

func (d *dfa) run() diag.List {
	isEntry := make(map[int]bool, len(d.cfg.Entries))
	for _, e := range d.cfg.Entries {
		isEntry[e] = true
	}
	for _, e := range d.cfg.FuncEntries {
		d.analyzeFunction(e, isEntry[e])
	}
	return d.ds
}

// entryState builds the abstract register state at a function's entry.
// Program entries get the framework's ABI contract: a0 = packet address,
// a1 = length, sp = top of stack, ra = the magic return address, all
// other registers unwritten. Helper entries assume the caller defined
// everything (the call-clobber transfer keeps this honest) with sp at an
// unknown but trackable base.
func (d *dfa) entryState(programEntry bool) regState {
	var st regState
	st[isa.Zero] = absVal{kind: vConst, v: 0}
	if !programEntry {
		for r := range st {
			if st[r].kind == vUninit {
				st[r] = absVal{kind: vUnknown}
			}
		}
		st[isa.SP] = absVal{kind: vSPRel, v: 0}
		return st
	}
	st[isa.A0] = absVal{kind: vUnknown}
	st[isa.A1] = absVal{kind: vUnknown}
	st[isa.SP] = absVal{kind: vSPRel, v: 0}
	st[isa.RA] = absVal{kind: vConst, v: vm.ReturnAddress}
	if d.hasLayout {
		st[isa.A0] = absVal{kind: vConst, v: d.opts.Layout.PacketBase}
		st[isa.SP] = absVal{kind: vConst, v: d.opts.Layout.StackEnd}
	}
	return st
}

// intraSuccs returns block b's successors within the function rooted at
// entry: call targets and edges into other functions' entries (tail
// calls, fall-ins) are cut, since those blocks are analyzed under their
// own entry state.
func (d *dfa) intraSuccs(b, entry int) []int {
	text := d.cfg.Prog.Text
	last := d.cfg.Blocks.TerminatorIndex(b)
	in := text[last]
	var idxs []int
	switch {
	case in.Op == isa.HALT, in.Op == isa.JALR:
	case in.Op.IsBranch():
		idxs = append(idxs, last+1+int(in.Imm), last+1)
	case in.Op == isa.JAL:
		if in.Rd == isa.Zero {
			idxs = append(idxs, last+1+int(in.Imm))
		} else {
			idxs = append(idxs, last+1) // control returns after the call
		}
	default:
		idxs = append(idxs, last+1)
	}
	var succs []int
	for _, idx := range idxs {
		if idx < 0 || idx >= len(text) {
			continue
		}
		s := d.cfg.Blocks.BlockOfIndex(idx)
		if s != entry && d.cfg.funcEntry[s] {
			continue
		}
		dup := false
		for _, t := range succs {
			dup = dup || t == s
		}
		if !dup {
			succs = append(succs, s)
		}
	}
	return succs
}

// analyzeFunction runs the fixpoint over one function's blocks, then a
// deterministic reporting pass over the stable block-entry states.
func (d *dfa) analyzeFunction(entry int, programEntry bool) {
	in := map[int]*regState{}
	est := d.entryState(programEntry)
	in[entry] = &est
	work := []int{entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		st := *in[b] // copy
		d.stepBlock(b, &st, false)
		for _, s := range d.intraSuccs(b, entry) {
			if prev, ok := in[s]; !ok {
				cp := st
				in[s] = &cp
				work = append(work, s)
			} else if prev.meet(&st) {
				work = append(work, s)
			}
		}
	}

	blocks := make([]int, 0, len(in))
	for b := range in {
		blocks = append(blocks, b)
	}
	sort.Ints(blocks)
	for _, b := range blocks {
		st := *in[b]
		d.stepBlock(b, &st, true)
	}
}

// stepBlock interprets every instruction of block b, mutating st. With
// emit set it appends diagnostics; the fixpoint pass runs with emit
// unset but must make identical state transitions.
func (d *dfa) stepBlock(b int, st *regState, emit bool) {
	lead := d.cfg.Blocks.LeaderIndex(b)
	last := d.cfg.Blocks.TerminatorIndex(b)
	for i := lead; i <= last; i++ {
		d.step(i, st, emit)
	}
	in := d.cfg.Prog.Text[last]
	if in.Op == isa.JAL && in.Rd != isa.Zero {
		clobberCallerSaved(st)
	}
}

// callerSaved are the registers a callee may freely overwrite under the
// framework's calling convention.
var callerSaved = []isa.Reg{isa.A0, isa.A1, isa.A2, isa.A3,
	isa.T0, isa.T1, isa.T2, isa.T3, isa.T4, isa.RA}

func clobberCallerSaved(st *regState) {
	for _, r := range callerSaved {
		st[r] = absVal{kind: vUnknown}
	}
}

// step interprets one instruction.
func (d *dfa) step(i int, st *regState, emit bool) {
	in := d.cfg.Prog.Text[i]
	line, pc := d.cfg.lineAt(i), d.cfg.pcAt(i)

	// Uses before definition. After reporting, the register is treated as
	// defined so one bad register yields one warning per use site, not a
	// cascade through every later read.
	regs, n := in.RegUses()
	for _, r := range regs[:n] {
		if r != isa.Zero && !st[r].defined() {
			if emit {
				d.report(diag.Warning, "uninit-reg", line, pc,
					fmt.Sprintf("register %s may be used before it is set", r))
			}
			st[r] = absVal{kind: vUnknown}
		}
	}

	if in.Op.IsLoad() || in.Op.IsStore() {
		d.checkAccess(in, st[in.Rs1], line, pc)
	}
	if in.Op == isa.JALR {
		d.checkJALR(in, st, line, pc)
	}
	if in.Op == isa.HALT {
		// Nothing: halt hands control back regardless of stack state.
	}

	if rd, ok := in.RegDef(); ok && rd != isa.Zero {
		v := evalInstr(in, st, pc)
		// Writing sp from anything other than sp itself abandons the
		// stack discipline. Adjustments of an untracked sp (for example
		// loop-variant pushes) are legitimate and stay silent.
		if rd == isa.SP && v.kind == vUnknown && emit {
			fromSP := false
			regs, n := in.RegUses()
			for _, r := range regs[:n] {
				fromSP = fromSP || r == isa.SP
			}
			if !fromSP {
				d.report(diag.Warning, "sp-clobber", line, pc,
					"sp is overwritten with a value unrelated to the stack pointer; stack checks stop here")
			}
		}
		st[rd] = v
	}
}

// checkAccess statically validates a load/store whose base register
// holds a known constant: region classification against the memory map
// and natural alignment — the same rules the simulator enforces
// dynamically. Stack-relative accesses with an unknown base are skipped;
// they are covered by the sp-balance checks instead.
func (d *dfa) checkAccess(in isa.Instruction, base absVal, line int, pc uint32) {
	if base.kind != vConst {
		return
	}
	addr := base.v + uint32(in.Imm)
	size := uint32(in.Op.MemSize())
	verb := "load from"
	if in.Op.IsStore() {
		verb = "store to"
	}
	if addr%size != 0 {
		d.report(diag.Error, "misaligned", line, pc,
			fmt.Sprintf("misaligned %d-byte %s address %#x", size, verbNoun(in), addr))
		return
	}
	if !d.hasLayout {
		// Without a memory map only the text segment is known.
		if addr >= d.cfg.Prog.TextBase && addr < d.cfg.Prog.TextEnd() {
			d.report(diag.Error, "bad-access", line, pc,
				fmt.Sprintf("%s text-segment address %#x", verb, addr))
		}
		return
	}
	switch d.opts.Layout.Classify(addr) {
	case vm.RegionNone:
		d.report(diag.Error, "bad-access", line, pc,
			fmt.Sprintf("%s unmapped address %#x", verb, addr))
	case vm.RegionText:
		d.report(diag.Error, "bad-access", line, pc,
			fmt.Sprintf("%s text-segment address %#x", verb, addr))
	}
}

func verbNoun(in isa.Instruction) string {
	if in.Op.IsStore() {
		return "store"
	}
	return "load"
}

// checkJALR validates indirect jumps and enforces stack discipline at
// function returns.
func (d *dfa) checkJALR(in isa.Instruction, st *regState, line int, pc uint32) {
	base := st[in.Rs1]
	isReturn := false
	if base.kind == vConst {
		tgt := (base.v + uint32(in.Imm)) &^ 3
		switch {
		case tgt == vm.ReturnAddress:
			isReturn = true
		case tgt < d.cfg.Prog.TextBase || tgt >= d.cfg.Prog.TextEnd():
			d.report(diag.Error, "bad-target", line, pc,
				fmt.Sprintf("computed jump target %#x is outside the text segment", tgt))
		}
	} else if in.Rs1 == isa.RA && in.Imm == 0 {
		// The assembler's "ret": returning to an untracked ra.
		isReturn = true
	}
	if !isReturn || in.Rd != isa.Zero {
		return
	}
	// At a return the stack pointer must be back where the function
	// started: every push must have a matching pop.
	sp := st[isa.SP]
	var off int32
	switch {
	case sp.kind == vSPRel:
		off = int32(sp.v)
	case sp.kind == vConst && d.hasLayout:
		off = int32(sp.v - d.opts.Layout.StackEnd)
	default:
		return // sp untracked (loop-variant or clobbered); nothing to prove
	}
	if off != 0 {
		d.report(diag.Warning, "stack-imbalance", line, pc,
			fmt.Sprintf("function returns with sp displaced by %d bytes from its entry value", off))
	}
}

// report appends a diagnostic. Duplicate diagnostics (the same finding
// reached through several functions sharing a block) collapse in
// List.Sort.
func (d *dfa) report(sev diag.Severity, check string, line int, pc uint32, msg string) {
	d.ds = append(d.ds, diag.Diagnostic{Severity: sev, Check: check, Line: line, PC: pc, Msg: msg})
}

// evalInstr computes the abstract value an instruction writes to its
// destination register, folding constants with exactly the simulator's
// ALU semantics so the derived addresses match runtime behavior.
func evalInstr(in isa.Instruction, st *regState, pc uint32) absVal {
	unknown := absVal{kind: vUnknown}
	imm := uint32(in.Imm)
	a, b := st[in.Rs1], st[in.Rs2]
	switch in.Op {
	case isa.ADD:
		if a.kind == vConst && b.kind == vConst {
			return absVal{kind: vConst, v: a.v + b.v}
		}
		if a.kind == vSPRel && b.kind == vConst {
			return absVal{kind: vSPRel, v: a.v + b.v}
		}
		if a.kind == vConst && b.kind == vSPRel {
			return absVal{kind: vSPRel, v: a.v + b.v}
		}
	case isa.SUB:
		if a.kind == vConst && b.kind == vConst {
			return absVal{kind: vConst, v: a.v - b.v}
		}
		if a.kind == vSPRel && b.kind == vConst {
			return absVal{kind: vSPRel, v: a.v - b.v}
		}
	case isa.AND, isa.OR, isa.XOR, isa.SLL, isa.SRL, isa.SRA, isa.SLT, isa.SLTU, isa.MUL:
		if a.kind == vConst && b.kind == vConst {
			return absVal{kind: vConst, v: foldR(in.Op, a.v, b.v)}
		}
	case isa.ADDI:
		if a.kind == vConst {
			return absVal{kind: vConst, v: a.v + imm}
		}
		if a.kind == vSPRel {
			return absVal{kind: vSPRel, v: a.v + imm}
		}
	case isa.ANDI, isa.ORI, isa.XORI, isa.SLLI, isa.SRLI, isa.SRAI, isa.SLTI, isa.SLTIU:
		if a.kind == vConst {
			return absVal{kind: vConst, v: foldI(in.Op, a.v, in.Imm)}
		}
	case isa.LUI:
		return absVal{kind: vConst, v: imm << 12}
	case isa.JAL, isa.JALR:
		return absVal{kind: vConst, v: pc + isa.WordSize}
	}
	return unknown
}

func foldR(op isa.Opcode, rs1, rs2 uint32) uint32 {
	switch op {
	case isa.AND:
		return rs1 & rs2
	case isa.OR:
		return rs1 | rs2
	case isa.XOR:
		return rs1 ^ rs2
	case isa.SLL:
		return rs1 << (rs2 & 31)
	case isa.SRL:
		return rs1 >> (rs2 & 31)
	case isa.SRA:
		return uint32(int32(rs1) >> (rs2 & 31))
	case isa.SLT:
		if int32(rs1) < int32(rs2) {
			return 1
		}
		return 0
	case isa.SLTU:
		if rs1 < rs2 {
			return 1
		}
		return 0
	case isa.MUL:
		return rs1 * rs2
	}
	return 0
}

func foldI(op isa.Opcode, rs1 uint32, immS int32) uint32 {
	imm := uint32(immS)
	switch op {
	case isa.ANDI:
		return rs1 & imm
	case isa.ORI:
		return rs1 | imm
	case isa.XORI:
		return rs1 ^ imm
	case isa.SLLI:
		return rs1 << (imm & 31)
	case isa.SRLI:
		return rs1 >> (imm & 31)
	case isa.SRAI:
		return uint32(int32(rs1) >> (imm & 31))
	case isa.SLTI:
		if int32(rs1) < immS {
			return 1
		}
		return 0
	case isa.SLTIU:
		if rs1 < imm {
			return 1
		}
		return 0
	}
	return 0
}
