package staticcheck

import (
	"fmt"
	"io"
	"math/bits"
	"sort"

	"repro/internal/diag"
	"repro/internal/isa"
	"repro/internal/vm"
)

// The facts pipeline extends the verifier from diagnostics into proofs:
// a context-sensitive abstract interpretation over unsigned intervals
// and known bits that exports per-instruction Facts — provably
// in-bounds memory operands, always/never-taken branches, provably
// redundant masks, unreachable instructions — which the block-threaded
// translator (vm.TranslateWithFacts) consumes to elide runtime checks
// and fold dead control flow.
//
// Soundness contract. Every exported fact must hold on every execution
// that enters the program at one of the declared entry points with the
// framework's dispatch ABI: all registers zeroed, then a0 = packet
// base, a1 = packet length (at most the packet buffer size), sp = top
// of stack, ra = the magic return address (core.Bench sets exactly this
// state before every packet). The analysis therefore refuses to claim
// anything — Facts.Tame is false and every fact is empty — whenever it
// cannot follow the program completely: an indirect jump through a
// non-constant register, a call deeper than the context cap, an entry
// or jump into the middle of a basic block, or a state-space blowup.
// Unlike the diagnostic analyses, which over-approximate in whichever
// direction keeps their warnings useful, facts only ever
// under-approximate: "no proof" is always safe because the translator
// falls back to the fully-checked micro-op.
//
// Calls are not summarized but virtually inlined: a linking JAL pushes
// the call site onto an abstract call string and the analysis continues
// into the callee, so each call site's arguments stay precise (the
// bundled apps pass distinct packet offsets to the same helper). A
// JALR must resolve to a single constant target: the magic return
// address (program exit), the return address of the innermost frame
// (return — the call string pops), or an in-text block leader (intra-
// procedural indirect jump). Saved registers restored through the
// stack stay constant across calls because word-sized stack and data
// slots at constant addresses are tracked as part of the abstract
// state, and a store can only invalidate slots it may alias (a store
// proven into the packet region never kills a stack slot).
//
// Termination: intervals widen to a small ladder of landmark bounds
// after a few fixpoint visits of the same block, known-bits and slot
// maps only ever shrink, and the context depth and state count are
// capped (overflow flips the program to untame rather than looping).

// fval is the abstract value of one register: an unsigned interval
// [lo, hi] (inclusive) plus known bits (bit i of m set means bit i of
// the value is v's bit i on every execution). The invariant v&^m == 0
// holds after norm.
type fval struct {
	lo, hi uint32
	m, v   uint32
}

func ftop() fval           { return fval{0, ^uint32(0), 0, 0} }
func fconst(c uint32) fval { return fval{c, c, ^uint32(0), c} }
func fbound(lo, hi uint32) fval {
	return norm(fval{lo, hi, 0, 0})
}

func (f fval) isConst() bool { return f.lo == f.hi }

// norm reconciles the interval and known-bits views: known bits bound
// the interval (all-unknown-bits-zero below, all-ones above), and the
// common binary prefix of lo and hi is known to every value in between.
func norm(f fval) fval {
	if f.v > f.lo {
		f.lo = f.v
	}
	if max := f.v | ^f.m; max < f.hi {
		f.hi = max
	}
	x := f.lo ^ f.hi
	pm := ^uint32(0) << (32 - uint32(bits.LeadingZeros32(x)))
	if x == 0 {
		pm = ^uint32(0)
	}
	f.m |= pm
	f.v = (f.v | (f.lo & pm)) & f.m
	return f
}

// join is the lattice union of two path states.
func join(a, b fval) fval {
	m := a.m & b.m &^ (a.v ^ b.v)
	return norm(fval{min(a.lo, b.lo), max(a.hi, b.hi), m, a.v & m})
}

// intersect refines a by b (both must hold); ok is false when the
// combination is infeasible.
func intersect(a, b fval) (fval, bool) {
	if (a.m&b.m)&(a.v^b.v) != 0 {
		return fval{}, false
	}
	lo, hi := max(a.lo, b.lo), min(a.hi, b.hi)
	if lo > hi {
		return fval{}, false
	}
	m := a.m | b.m
	f := norm(fval{lo, hi, m, (a.v | b.v) & m})
	if f.lo > f.hi {
		return fval{}, false
	}
	return f, true
}

// Interval landmarks for widening: unstable upper bounds are rounded up
// to the next landmark so loop counters settle in a few iterations
// instead of climbing one step per fixpoint visit.
var widenLandmarks = [...]uint32{0x3F, 0xFF, 0xFFFF, 0xFFFFF, 0x00FFFFFF, 0x7FFFFFFF, ^uint32(0)}

// widen accelerates old ∪ new at a loop head.
func widen(old, nw fval) fval {
	j := join(old, nw)
	if j.lo < old.lo {
		j.lo = 0
	}
	if j.hi > old.hi {
		for _, l := range widenLandmarks {
			if j.hi <= l {
				j.hi = l
				break
			}
		}
	}
	return norm(j)
}

// ---- transfer functions -------------------------------------------------

func fadd(a, b fval) fval {
	f := ftop()
	lo64 := uint64(a.lo) + uint64(b.lo)
	hi64 := uint64(a.hi) + uint64(b.hi)
	const wrap = uint64(1) << 32
	switch {
	case hi64 < wrap:
		f.lo, f.hi = uint32(lo64), uint32(hi64)
	case lo64 >= wrap:
		// Both ends wrap exactly once (hi64 < 2^33): the sum is still an
		// interval modulo 2^32. This is how a constant negative offset
		// (addi sp, sp, -4) stays precise.
		f.lo, f.hi = uint32(lo64-wrap), uint32(hi64-wrap)
	}
	// The low k bits of a+b depend only on the low k bits of the
	// operands, so the common run of trailing known bits is exact.
	k := min(bits.TrailingZeros32(^a.m), bits.TrailingZeros32(^b.m))
	if k > 0 {
		mask := ^uint32(0)
		if k < 32 {
			mask = 1<<uint(k) - 1
		}
		f.m |= mask
		f.v = (a.v + b.v) & mask
	}
	return norm(f)
}

func fsub(a, b fval) fval {
	f := ftop()
	if a.lo >= b.hi {
		f.lo, f.hi = a.lo-b.hi, a.hi-b.lo
	}
	k := min(bits.TrailingZeros32(^a.m), bits.TrailingZeros32(^b.m))
	if k > 0 {
		mask := ^uint32(0)
		if k < 32 {
			mask = 1<<uint(k) - 1
		}
		f.m |= mask
		f.v = (a.v - b.v) & mask
	}
	return norm(f)
}

func fand(a, b fval) fval {
	ones := a.m & a.v & b.m & b.v
	zeros := (a.m &^ a.v) | (b.m &^ b.v)
	m := ones | zeros
	return norm(fval{ones, min(a.hi, b.hi), m, ones})
}

func forr(a, b fval) fval {
	ones := (a.m & a.v) | (b.m & b.v)
	zeros := (a.m &^ a.v) & (b.m &^ b.v)
	m := ones | zeros
	return norm(fval{max(max(a.lo, b.lo), ones), ones | ^m, m, ones})
}

func fxor(a, b fval) fval {
	m := a.m & b.m
	v := (a.v ^ b.v) & m
	return norm(fval{v, v | ^m, m, v})
}

func fshl(a fval, s uint32) fval {
	s &= 31
	f := ftop()
	if a.hi <= ^uint32(0)>>s {
		f.lo, f.hi = a.lo<<s, a.hi<<s
	}
	f.m = a.m << s
	if s > 0 {
		f.m |= ^(^uint32(0) << s) // low s bits known zero
	}
	f.v = a.v << s
	return norm(f)
}

func fshr(a fval, s uint32) fval {
	s &= 31
	m := a.m >> s
	if s > 0 {
		m |= ^uint32(0) << (32 - s) // high s bits known zero
	}
	return norm(fval{a.lo >> s, a.hi >> s, m, a.v >> s})
}

// fflag builds the abstract value of a comparison result.
func fflag(always, never bool) fval {
	switch {
	case always:
		return fconst(1)
	case never:
		return fconst(0)
	default:
		return fval{0, 1, ^uint32(1), 0}
	}
}

// toBiased maps a value into the domain where signed comparison becomes
// unsigned (x ^ 0x8000_0000 order-isomorphism). An interval straddling
// the sign boundary maps to top.
func toBiased(a fval) fval {
	const bias = uint32(0x80000000)
	if (a.lo >= bias) != (a.hi >= bias) {
		nv := a.v
		if a.m&bias != 0 {
			nv ^= bias
		}
		return norm(fval{0, ^uint32(0), a.m &^ bias, nv &^ bias})
	}
	nv := a.v
	if a.m&bias != 0 {
		nv ^= bias
	}
	return fval{a.lo ^ bias, a.hi ^ bias, a.m, nv}
}

// cmpFacts decides whether the branch condition is provably constant.
func cmpFacts(op isa.Opcode, a, b fval) (always, never bool) {
	eqNever := a.hi < b.lo || b.hi < a.lo || (a.m&b.m)&(a.v^b.v) != 0
	eqAlways := a.isConst() && b.isConst() && a.lo == b.lo
	switch op {
	case isa.BEQ:
		return eqAlways, eqNever
	case isa.BNE:
		return eqNever, eqAlways
	case isa.BLTU:
		return a.hi < b.lo, a.lo >= b.hi
	case isa.BGEU:
		return a.lo >= b.hi, a.hi < b.lo
	case isa.BLT:
		ba, bb := toBiased(a), toBiased(b)
		return ba.hi < bb.lo, ba.lo >= bb.hi
	case isa.BGE:
		ba, bb := toBiased(a), toBiased(b)
		return ba.lo >= bb.hi, ba.hi < bb.lo
	}
	return false, false
}

// refineLTU refines (a, b) under the constraint a < b (unsigned);
// ok is false when the constraint is infeasible.
func refineLTU(a, b fval) (fval, fval, bool) {
	if b.hi == 0 || a.lo == ^uint32(0) {
		return a, b, false
	}
	ra := norm(fval{a.lo, min(a.hi, b.hi-1), a.m, a.v})
	rb := norm(fval{max(b.lo, a.lo+1), b.hi, b.m, b.v})
	if ra.lo > ra.hi || rb.lo > rb.hi {
		return a, b, false
	}
	return ra, rb, true
}

// refineGEU refines (a, b) under a >= b (unsigned).
func refineGEU(a, b fval) (fval, fval, bool) {
	ra := norm(fval{max(a.lo, b.lo), a.hi, a.m, a.v})
	rb := norm(fval{b.lo, min(b.hi, a.hi), b.m, b.v})
	if ra.lo > ra.hi || rb.lo > rb.hi {
		return a, b, false
	}
	return ra, rb, true
}

// unbias maps a refined biased-domain value back, falling back to the
// unrefined original when the result is not representable.
func unbias(refined, orig fval) fval {
	const bias = uint32(0x80000000)
	if (refined.lo >= bias) != (refined.hi >= bias) {
		return orig
	}
	nv := refined.v
	if refined.m&bias != 0 {
		nv ^= bias
	}
	f := fval{refined.lo ^ bias, refined.hi ^ bias, refined.m, nv}
	if g, ok := intersect(f, orig); ok {
		return g
	}
	return orig
}

// excludeConst trims a constant endpoint from an interval (for the
// not-equal edge of BEQ/BNE).
func excludeConst(a fval, c uint32) (fval, bool) {
	if a.isConst() {
		if a.lo == c {
			return a, false
		}
		return a, true
	}
	if a.lo == c {
		return norm(fval{c + 1, a.hi, a.m, a.v}), true
	}
	if a.hi == c {
		return norm(fval{a.lo, c - 1, a.m, a.v}), true
	}
	return a, true
}

// refineBranch computes the refined operand values on one edge of a
// conditional branch. taken selects which edge; ok=false means the edge
// is infeasible.
func refineBranch(op isa.Opcode, a, b fval, taken bool) (fval, fval, bool) {
	// Normalize to "a < b" / "a >= b" style constraints.
	switch op {
	case isa.BEQ, isa.BNE:
		eq := (op == isa.BEQ) == taken
		if eq {
			c, ok := intersect(a, b)
			if !ok {
				return a, b, false
			}
			return c, c, true
		}
		// Not equal: only a constant endpoint can be trimmed.
		if b.isConst() {
			ra, ok := excludeConst(a, b.lo)
			return ra, b, ok
		}
		if a.isConst() {
			rb, ok := excludeConst(b, a.lo)
			return a, rb, ok
		}
		return a, b, true
	case isa.BLTU:
		if taken {
			return refineLTU(a, b)
		}
		return refineGEU(a, b)
	case isa.BGEU:
		if taken {
			return refineGEU(a, b)
		}
		return refineLTU(a, b)
	case isa.BLT, isa.BGE:
		lt := (op == isa.BLT) == taken
		ba, bb := toBiased(a), toBiased(b)
		var ra, rb fval
		var ok bool
		if lt {
			ra, rb, ok = refineLTU(ba, bb)
		} else {
			ra, rb, ok = refineGEU(ba, bb)
		}
		if !ok {
			return a, b, false
		}
		return unbias(ra, a), unbias(rb, b), true
	}
	return a, b, true
}

// ---- abstract machine state ---------------------------------------------

// slotVal is the tracked value of one word-aligned memory word at a
// constant address (saved registers on the stack, app globals).
type slotVal struct {
	val    fval
	region vm.Region
}

const maxSlots = 64

type fstate struct {
	regs  [isa.NumRegs]fval
	slots map[uint32]slotVal
}

func (s *fstate) clone() *fstate {
	c := &fstate{regs: s.regs}
	if len(s.slots) > 0 {
		c.slots = make(map[uint32]slotVal, len(s.slots))
		for k, v := range s.slots {
			c.slots[k] = v
		}
	}
	return c
}

// merge joins other into s, returning whether s changed. wide selects
// widening for the interval parts.
func (s *fstate) merge(other *fstate, wide bool) bool {
	changed := false
	for r := range s.regs {
		var j fval
		if wide {
			j = widen(s.regs[r], other.regs[r])
		} else {
			j = join(s.regs[r], other.regs[r])
		}
		if j != s.regs[r] {
			s.regs[r] = j
			changed = true
		}
	}
	for k, sv := range s.slots {
		ov, ok := other.slots[k]
		if !ok || ov.region != sv.region {
			delete(s.slots, k)
			changed = true
			continue
		}
		j := join(sv.val, ov.val)
		if j != sv.val {
			s.slots[k] = slotVal{val: j, region: sv.region}
			changed = true
		}
	}
	return changed
}

// ---- the analysis -------------------------------------------------------

// Facts is the exported result of the abstract interpretation: what the
// verifier can prove about every instruction of a program under the
// framework's entry contract. A zero/empty Facts (or Tame == false)
// claims nothing.
type Facts struct {
	// Tame reports that the analysis followed the program completely.
	// When false, every per-instruction array is empty and no fact may
	// be used.
	Tame bool
	// Mem[i] is the proven region of instruction i's memory operand
	// (loads and stores), vm.RegionNone when unproven. A proven operand
	// is also proven naturally aligned.
	Mem []vm.Region
	// MemLo/MemHi bound the operand address interval for instructions
	// with Mem[i] != RegionNone.
	MemLo, MemHi []uint32
	// Branch[i] is the proven direction of a conditional branch.
	Branch []vm.BranchFact
	// Redundant[i] marks AND/ANDI instructions whose mask provably
	// keeps every possibly-set bit of the source.
	Redundant []bool
	// Unreachable[i] marks instructions no abstract execution reaches.
	Unreachable []bool
	// ChainEligible[b] marks basic block b (in the shared BlockMap
	// numbering) as fully followed: the analysis reached every one of
	// its instructions, so the compiled tier may root or extend a
	// closure chain through it. Blocks the analysis only partially
	// covered stay on the checked tiers.
	ChainEligible []bool

	cfg *CFG
}

// Translation bridges the facts to the translator's input format. The
// block numbering is shared: both sides build their BlockMap with
// analysis.NewBlockMap over the same text. Returns nil when the program
// is untame (the translator then only fuses proof-free pairs).
func (f *Facts) Translation() *vm.TranslationFacts {
	if f == nil || !f.Tame || f.cfg == nil {
		return nil
	}
	tf := &vm.TranslationFacts{
		Mem:       f.Mem,
		Redundant: f.Redundant,
	}
	tf.Branch = make([]vm.BranchFact, len(f.Branch))
	copy(tf.Branch, f.Branch)
	nb := f.cfg.Blocks.NumBlocks()
	tf.Dead = make([]bool, nb)
	for b := 0; b < nb; b++ {
		dead := true
		for i := f.cfg.Blocks.LeaderIndex(b); i <= f.cfg.Blocks.TerminatorIndex(b); i++ {
			if !f.Unreachable[i] {
				dead = false
				break
			}
		}
		tf.Dead[b] = dead
	}
	if f.ChainEligible != nil {
		tf.Chain = make([]bool, nb)
		copy(tf.Chain, f.ChainEligible)
	}
	return tf
}

// Analysis caps: exceeding any flips the program to untame.
const (
	maxCallDepth  = 16
	maxFactStates = 8192
	widenAfter    = 6
)

type stateKey struct {
	ctx   string // call string: 4 bytes (big-endian call-site index) per frame
	block int
}

type factsRun struct {
	cfg       *CFG
	layout    vm.Layout
	hasLayout bool
	text      []isa.Instruction

	states map[stateKey]*fstate
	visits map[stateKey]int
	tame   bool

	// accumulators, valid during the replay pass
	f      *Facts
	seen   []bool // instruction visited
	memSet []bool
	brSet  []bool
	redSet []bool
}

// computeFacts runs the abstract interpretation and returns the proven
// facts. It never emits diagnostics; surfaceFactsDiags derives the
// warn-severity findings from the result.
func computeFacts(cfg *CFG, opts Options) *Facts {
	n := len(cfg.Prog.Text)
	f := &Facts{cfg: cfg}
	a := &factsRun{
		cfg:       cfg,
		layout:    opts.Layout,
		hasLayout: opts.Layout != (vm.Layout{}),
		text:      cfg.Prog.Text,
		states:    make(map[stateKey]*fstate),
		visits:    make(map[stateKey]int),
		tame:      true,
		f:         f,
	}
	f.Mem = make([]vm.Region, n)
	f.MemLo = make([]uint32, n)
	f.MemHi = make([]uint32, n)
	f.Branch = make([]vm.BranchFact, n)
	f.Redundant = make([]bool, n)
	f.Unreachable = make([]bool, n)
	a.seen = make([]bool, n)
	a.memSet = make([]bool, n)
	a.brSet = make([]bool, n)
	a.redSet = make([]bool, n)

	// Entries must land exactly on block leaders: the per-block state
	// keying cannot represent execution entering mid-block.
	entryAddrs, entryDiags := resolveEntries(cfg.Prog, opts)
	if len(entryDiags) > 0 {
		a.tame = false
	}
	for _, addr := range entryAddrs {
		b := cfg.Blocks.BlockOf(addr)
		if b < 0 || cfg.pcAt(cfg.Blocks.LeaderIndex(b)) != addr {
			a.tame = false
		}
	}

	if a.tame {
		work := make([]stateKey, 0, 64)
		for _, e := range cfg.Entries {
			k := stateKey{ctx: "", block: e}
			st := a.entryState()
			if prev, ok := a.states[k]; ok {
				prev.merge(st, false)
			} else {
				a.states[k] = st
			}
			work = append(work, k)
		}
		for len(work) > 0 && a.tame {
			k := work[len(work)-1]
			work = work[:len(work)-1]
			st := a.states[k].clone()
			for _, succ := range a.stepBlock(k, st, false) {
				prev, ok := a.states[succ.key]
				if !ok {
					if len(a.states) >= maxFactStates {
						a.tame = false
						break
					}
					a.states[succ.key] = succ.st
					work = append(work, succ.key)
					continue
				}
				a.visits[succ.key]++
				if prev.merge(succ.st, a.visits[succ.key] > widenAfter) {
					work = append(work, succ.key)
				}
			}
		}
	}

	if !a.tame {
		return &Facts{cfg: cfg, Tame: false}
	}

	// Replay over the stable states in deterministic order, recording
	// the per-instruction facts as the join over every visiting context.
	keys := make([]stateKey, 0, len(a.states))
	for k := range a.states {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].block != keys[j].block {
			return keys[i].block < keys[j].block
		}
		return keys[i].ctx < keys[j].ctx
	})
	for _, k := range keys {
		a.stepBlock(k, a.states[k].clone(), true)
		if !a.tame {
			return &Facts{cfg: cfg, Tame: false}
		}
	}
	for i := 0; i < n; i++ {
		f.Unreachable[i] = !a.seen[i]
	}
	nb := cfg.Blocks.NumBlocks()
	f.ChainEligible = make([]bool, nb)
	for b := 0; b < nb; b++ {
		eligible := true
		for i := cfg.Blocks.LeaderIndex(b); i <= cfg.Blocks.TerminatorIndex(b); i++ {
			if !a.seen[i] {
				eligible = false
				break
			}
		}
		f.ChainEligible[b] = eligible
	}
	f.Tame = true
	return f
}

// entryState is the framework's dispatch ABI: every register zeroed,
// then the four argument registers set.
func (a *factsRun) entryState() *fstate {
	st := &fstate{}
	for r := range st.regs {
		st.regs[r] = fconst(0)
	}
	if a.hasLayout {
		st.regs[isa.A0] = fconst(a.layout.PacketBase)
		st.regs[isa.A1] = fbound(0, a.layout.PacketEnd-a.layout.PacketBase)
		st.regs[isa.SP] = fconst(a.layout.StackEnd)
	} else {
		st.regs[isa.A0] = ftop()
		st.regs[isa.A1] = ftop()
		st.regs[isa.SP] = ftop()
	}
	st.regs[isa.RA] = fconst(vm.ReturnAddress)
	return st
}

type factSucc struct {
	key stateKey
	st  *fstate
}

func (a *factsRun) getReg(st *fstate, r isa.Reg) fval {
	if r == isa.Zero {
		return fconst(0)
	}
	return st.regs[r]
}

func (a *factsRun) setReg(st *fstate, r isa.Reg, v fval) {
	if r != isa.Zero {
		st.regs[r] = v
	}
}

// stepBlock interprets one basic block under one context, returning the
// successor states. With record set it folds what it can prove into the
// accumulated per-instruction facts; the transfer function is identical
// in both modes.
func (a *factsRun) stepBlock(k stateKey, st *fstate, record bool) []factSucc {
	lead := a.cfg.Blocks.LeaderIndex(k.block)
	last := a.cfg.Blocks.TerminatorIndex(k.block)
	for i := lead; i <= last; i++ {
		if record {
			a.seen[i] = true
		}
		in := a.text[i]
		if i == last && in.Op.IsControl() {
			return a.stepTerminator(k, i, in, st, record)
		}
		a.stepInstr(i, in, st, record)
	}
	// Block split by a following leader: fall through, same context.
	if next := last + 1; next < len(a.text) {
		return []factSucc{{key: stateKey{ctx: k.ctx, block: a.cfg.Blocks.BlockOfIndex(next)}, st: st}}
	}
	return nil // runs off the end: path exits (fault reported elsewhere)
}

// stepInstr applies one non-control instruction's transfer function.
func (a *factsRun) stepInstr(i int, in isa.Instruction, st *fstate, record bool) {
	imm := uint32(in.Imm)
	rs1 := a.getReg(st, in.Rs1)
	rs2 := a.getReg(st, in.Rs2)

	switch {
	case in.Op.IsLoad():
		addr := fadd(rs1, fconst(imm))
		size := uint32(in.Op.MemSize())
		region, proven := a.proveAccess(addr, size)
		if record {
			a.recordMem(i, addr, size, region, proven)
		}
		var val fval
		switch in.Op {
		case isa.LB, isa.LH, isa.LW:
			val = ftop()
		case isa.LBU:
			val = fbound(0, 0xFF)
		case isa.LHU:
			val = fbound(0, 0xFFFF)
		}
		if in.Op == isa.LW && addr.isConst() && addr.lo&3 == 0 {
			if sv, ok := st.slots[addr.lo]; ok {
				val = sv.val
			}
		}
		a.setReg(st, in.Rd, val)

	case in.Op.IsStore():
		addr := fadd(rs1, fconst(imm))
		size := uint32(in.Op.MemSize())
		region, proven := a.proveAccess(addr, size)
		if record {
			a.recordMem(i, addr, size, region, proven)
		}
		a.storeToSlots(st, addr, size, region, proven, a.getReg(st, in.Rd))

	default:
		var res fval
		ok := true
		switch in.Op {
		case isa.ADD:
			res = fadd(rs1, rs2)
		case isa.SUB:
			res = fsub(rs1, rs2)
		case isa.AND:
			res = fand(rs1, rs2)
		case isa.OR:
			res = forr(rs1, rs2)
		case isa.XOR:
			res = fxor(rs1, rs2)
		case isa.SLL:
			if rs2.isConst() {
				res = fshl(rs1, rs2.lo)
			} else {
				res = ftop()
			}
		case isa.SRL:
			if rs2.isConst() {
				res = fshr(rs1, rs2.lo)
			} else {
				res = ftop()
			}
		case isa.SRA:
			if rs2.isConst() && rs1.isConst() {
				res = fconst(uint32(int32(rs1.lo) >> (rs2.lo & 31)))
			} else {
				res = ftop()
			}
		case isa.SLT:
			always, never := cmpFacts(isa.BLT, rs1, rs2)
			res = fflag(always, never)
		case isa.SLTU:
			always, never := cmpFacts(isa.BLTU, rs1, rs2)
			res = fflag(always, never)
		case isa.MUL:
			if rs1.isConst() && rs2.isConst() {
				res = fconst(rs1.lo * rs2.lo)
			} else {
				res = ftop()
			}
		case isa.ADDI:
			res = fadd(rs1, fconst(imm))
		case isa.ANDI:
			res = fand(rs1, fconst(imm))
			if record {
				a.recordMask(i, rs1, fconst(imm))
			}
		case isa.ORI:
			res = forr(rs1, fconst(imm))
		case isa.XORI:
			res = fxor(rs1, fconst(imm))
		case isa.SLLI:
			res = fshl(rs1, imm)
		case isa.SRLI:
			res = fshr(rs1, imm)
		case isa.SRAI:
			if rs1.isConst() {
				res = fconst(uint32(int32(rs1.lo) >> (imm & 31)))
			} else {
				res = ftop()
			}
		case isa.SLTI:
			always, never := cmpFacts(isa.BLT, rs1, fconst(imm))
			res = fflag(always, never)
		case isa.SLTIU:
			always, never := cmpFacts(isa.BLTU, rs1, fconst(imm))
			res = fflag(always, never)
		case isa.LUI:
			res = fconst(imm << 12)
		default:
			ok = false
		}
		if in.Op == isa.AND && record {
			a.recordMask(i, rs1, rs2)
		}
		if !ok {
			res = ftop()
		}
		if rd, has := in.RegDef(); has {
			a.setReg(st, rd, res)
		}
	}
}

// stepTerminator handles the block's control-transfer instruction and
// builds successor states.
func (a *factsRun) stepTerminator(k stateKey, i int, in isa.Instruction, st *fstate, record bool) []factSucc {
	switch {
	case in.Op.IsBranch():
		rs1 := a.getReg(st, in.Rs1)
		rs2 := a.getReg(st, in.Rs2)
		always, never := cmpFacts(in.Op, rs1, rs2)
		if record {
			a.recordBranch(i, always, never)
		}
		var succs []factSucc
		target := i + 1 + int(in.Imm)
		sameReg := in.Rs1 == in.Rs2
		if !never && target >= 0 && target < len(a.text) {
			ts := st.clone()
			feasible := true
			if !sameReg {
				r1, r2, ok := refineBranch(in.Op, rs1, rs2, true)
				if !ok {
					feasible = false
				} else {
					a.setReg(ts, in.Rs1, r1)
					a.setReg(ts, in.Rs2, r2)
				}
			}
			if feasible {
				succs = append(succs, factSucc{
					key: stateKey{ctx: k.ctx, block: a.cfg.Blocks.BlockOfIndex(target)}, st: ts})
			}
		}
		if !always && i+1 < len(a.text) {
			fs := st
			feasible := true
			if !sameReg {
				r1, r2, ok := refineBranch(in.Op, rs1, rs2, false)
				if !ok {
					feasible = false
				} else {
					fs = st.clone()
					a.setReg(fs, in.Rs1, r1)
					a.setReg(fs, in.Rs2, r2)
				}
			}
			if feasible {
				succs = append(succs, factSucc{
					key: stateKey{ctx: k.ctx, block: a.cfg.Blocks.BlockOfIndex(i + 1)}, st: fs})
			}
		}
		return succs

	case in.Op == isa.JAL:
		target := i + 1 + int(in.Imm)
		if in.Rd != isa.Zero {
			a.setReg(st, in.Rd, fconst(a.cfg.pcAt(i)+isa.WordSize))
		}
		if target < 0 || target >= len(a.text) {
			return nil // jump leaves the text segment: path exits
		}
		ctx := k.ctx
		if in.Rd != isa.Zero {
			if len(ctx)/4 >= maxCallDepth {
				a.tame = false
				return nil
			}
			ctx = pushCtx(ctx, i)
		}
		tb := a.cfg.Blocks.BlockOfIndex(target)
		if a.cfg.Blocks.LeaderIndex(tb) != target {
			a.tame = false // jump into the middle of a block
			return nil
		}
		return []factSucc{{key: stateKey{ctx: ctx, block: tb}, st: st}}

	case in.Op == isa.JALR:
		base := a.getReg(st, in.Rs1)
		if in.Rd != isa.Zero {
			a.setReg(st, in.Rd, fconst(a.cfg.pcAt(i)+isa.WordSize))
		}
		if !base.isConst() {
			a.tame = false // untracked indirect jump: give up on all facts
			return nil
		}
		target := (base.lo + uint32(in.Imm)) &^ 3
		if target == vm.ReturnAddress {
			return nil // program exit
		}
		off := target - a.cfg.Prog.TextBase
		if off%isa.WordSize != 0 || off/isa.WordSize >= uint32(len(a.text)) {
			return nil // faults at runtime: path exits
		}
		ti := int(off / isa.WordSize)
		tb := a.cfg.Blocks.BlockOfIndex(ti)
		if a.cfg.Blocks.LeaderIndex(tb) != ti {
			a.tame = false
			return nil
		}
		ctx := k.ctx
		if site, ok := topCtx(ctx); ok && ti == site+1 {
			ctx = ctx[:len(ctx)-4] // return to the innermost caller
		}
		return []factSucc{{key: stateKey{ctx: ctx, block: tb}, st: st}}

	case in.Op == isa.HALT:
		return nil
	}
	// Non-PC-changing terminator cannot happen (IsControl gated).
	return nil
}

func pushCtx(ctx string, site int) string {
	return ctx + string([]byte{byte(site >> 24), byte(site >> 16), byte(site >> 8), byte(site)})
}

func topCtx(ctx string) (int, bool) {
	if len(ctx) < 4 {
		return 0, false
	}
	b := []byte(ctx[len(ctx)-4:])
	return int(b[0])<<24 | int(b[1])<<16 | int(b[2])<<8 | int(b[3]), true
}

// proveAccess decides whether an access of size bytes at the abstract
// address is provably aligned and inside a single mapped writable
// region.
func (a *factsRun) proveAccess(addr fval, size uint32) (vm.Region, bool) {
	if !a.hasLayout {
		return vm.RegionNone, false
	}
	if size > 1 {
		mask := size - 1
		if addr.m&mask != mask || addr.v&mask != 0 {
			return vm.RegionNone, false // alignment unproven
		}
	}
	last := addr.hi + size - 1
	if last < addr.hi {
		return vm.RegionNone, false // wraps the address space
	}
	l := a.layout
	switch {
	case addr.lo >= l.PacketBase && last < l.PacketEnd:
		return vm.RegionPacket, true
	case addr.lo >= l.DataBase && last < l.DataEnd:
		return vm.RegionData, true
	case addr.lo >= l.StackBase && last < l.StackEnd:
		return vm.RegionStack, true
	}
	return vm.RegionNone, false
}

// storeToSlots updates the tracked constant-address memory slots for a
// store: a word store to a known address records the value; anything
// else invalidates exactly the slots it may alias.
func (a *factsRun) storeToSlots(st *fstate, addr fval, size uint32, region vm.Region, proven bool, val fval) {
	if proven && addr.isConst() {
		base := addr.lo &^ 3
		if size == 4 {
			if _, tracked := st.slots[base]; tracked || len(st.slots) < maxSlots {
				if st.slots == nil {
					st.slots = make(map[uint32]slotVal)
				}
				st.slots[base] = slotVal{val: val, region: region}
			}
			return
		}
		// Sub-word store: drop the containing word(s).
		delete(st.slots, base)
		delete(st.slots, (addr.lo+size-1)&^3)
		return
	}
	if proven {
		// Bounded store: it can only alias slots of the same region that
		// overlap the address interval.
		last := addr.hi + size - 1
		for s := range st.slots {
			sv := st.slots[s]
			if sv.region == region && s+3 >= addr.lo && s <= last {
				delete(st.slots, s)
			}
		}
		return
	}
	// Untracked store: anything could be overwritten.
	for s := range st.slots {
		delete(st.slots, s)
	}
}

// ---- fact accumulation (replay pass) ------------------------------------

// recordMem joins one visit's memory-operand proof into the facts: the
// final fact holds only if every visiting context proves the same
// region.
func (a *factsRun) recordMem(i int, addr fval, size uint32, region vm.Region, proven bool) {
	f := a.f
	if !a.memSet[i] {
		a.memSet[i] = true
		if proven {
			f.Mem[i] = region
			f.MemLo[i], f.MemHi[i] = addr.lo, addr.hi
		} else {
			f.Mem[i] = vm.RegionNone
		}
		return
	}
	if !proven || f.Mem[i] != region {
		f.Mem[i] = vm.RegionNone
		return
	}
	f.MemLo[i] = min(f.MemLo[i], addr.lo)
	f.MemHi[i] = max(f.MemHi[i], addr.hi)
}

func (a *factsRun) recordBranch(i int, always, never bool) {
	f := a.f
	var this vm.BranchFact
	switch {
	case always:
		this = vm.BranchAlways
	case never:
		this = vm.BranchNever
	default:
		this = vm.BranchUnknown
	}
	if !a.brSet[i] {
		a.brSet[i] = true
		f.Branch[i] = this
		return
	}
	if f.Branch[i] != this {
		f.Branch[i] = vm.BranchUnknown
	}
}

// recordMask joins one visit's redundant-mask proof for an AND/ANDI:
// every bit the source may have set must be known-one in the mask.
func (a *factsRun) recordMask(i int, src, mask fval) {
	redundant := (src.v|^src.m)&^(mask.m&mask.v) == 0
	if !a.redSet[i] {
		a.redSet[i] = true
		a.f.Redundant[i] = redundant
		return
	}
	a.f.Redundant[i] = a.f.Redundant[i] && redundant
}

// ---- diagnostics + dump -------------------------------------------------

// surfaceFactsDiags derives warn-severity findings from the facts:
// branches with a provably constant direction, provably redundant
// masks, and instructions proven unreachable under the precise analysis
// (a strict superset of the CFG-reachability "unreachable" warning, so
// only instructions in CFG-reachable blocks are reported here).
func surfaceFactsDiags(cfg *CFG, f *Facts) diag.List {
	if f == nil || !f.Tame {
		return nil
	}
	var ds diag.List
	for i, bf := range f.Branch {
		if bf == vm.BranchUnknown {
			continue
		}
		dir := "always"
		if bf == vm.BranchNever {
			dir = "never"
		}
		ds = append(ds, diag.Diagnostic{Severity: diag.Warning, Check: "const-branch",
			Line: cfg.lineAt(i), PC: cfg.pcAt(i),
			Msg: fmt.Sprintf("branch condition is %s true: the branch can be folded", dir)})
	}
	for i, r := range f.Redundant {
		if r {
			ds = append(ds, diag.Diagnostic{Severity: diag.Warning, Check: "redundant-mask",
				Line: cfg.lineAt(i), PC: cfg.pcAt(i),
				Msg: "mask provably keeps every bit of the source value (the AND is a move)"})
		}
	}
	for b := 0; b < cfg.Blocks.NumBlocks(); b++ {
		if !cfg.Reachable[b] {
			continue // already reported by the structural unreachable check
		}
		lead := cfg.Blocks.LeaderIndex(b)
		dead := true
		n := 0
		for i := lead; i <= cfg.Blocks.TerminatorIndex(b); i++ {
			dead = dead && f.Unreachable[i]
			n++
		}
		if dead {
			ds = append(ds, diag.Diagnostic{Severity: diag.Warning, Check: "facts-dead-code",
				Line: cfg.lineAt(lead), PC: cfg.pcAt(lead),
				Msg: fmt.Sprintf("value analysis proves block %d (%d instructions) unreachable on every input", b, n)})
		}
	}
	return ds
}

// Dump writes a human-readable listing of the facts, one line per
// instruction that has any, for pbvet -facts.
func (f *Facts) Dump(w io.Writer) {
	if f == nil || f.cfg == nil {
		fmt.Fprintln(w, "facts: none")
		return
	}
	if !f.Tame {
		fmt.Fprintln(w, "facts: program is untame (indirect control flow not resolved); no facts")
		return
	}
	cfg := f.cfg
	var unchecked, folded, masks, dead int
	for i := range f.Mem {
		if f.Mem[i] != vm.RegionNone {
			unchecked++
		}
		if f.Branch[i] != vm.BranchUnknown {
			folded++
		}
		if f.Redundant[i] {
			masks++
		}
		if f.Unreachable[i] {
			dead++
		}
	}
	fmt.Fprintf(w, "facts: %d instructions: %d proven memory ops, %d constant branches, %d redundant masks, %d unreachable\n",
		len(f.Mem), unchecked, folded, masks, dead)
	for i := range f.Mem {
		var notes []string
		if f.Mem[i] != vm.RegionNone {
			notes = append(notes, fmt.Sprintf("mem=%s addr=[%#x,%#x]", f.Mem[i], f.MemLo[i], f.MemHi[i]))
		}
		switch f.Branch[i] {
		case vm.BranchAlways:
			notes = append(notes, "branch=always")
		case vm.BranchNever:
			notes = append(notes, "branch=never")
		}
		if f.Redundant[i] {
			notes = append(notes, "mask=redundant")
		}
		if f.Unreachable[i] {
			notes = append(notes, "unreachable")
		}
		if len(notes) == 0 {
			continue
		}
		fmt.Fprintf(w, "%#08x line %d %s:", cfg.pcAt(i), cfg.lineAt(i), cfg.Prog.Text[i].Op)
		for _, n := range notes {
			fmt.Fprintf(w, " %s", n)
		}
		fmt.Fprintln(w)
	}
}
