package staticcheck_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/staticcheck"
	"repro/internal/vm"
)

// factsFor assembles src and runs the verifier's facts pipeline under
// the framework memory map, returning the translation-facts stats the
// threaded engine would act on.
func factsFor(t *testing.T, src string) vm.TranslateStats {
	t.Helper()
	prog, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	layout := core.LayoutFor(prog, 1<<20)
	_, facts := staticcheck.VerifyWithFacts(prog, staticcheck.Options{Layout: layout})
	p := vm.TranslateWithFacts(prog.Text, prog.TextBase,
		analysis.NewBlockMap(prog.Text, prog.TextBase), facts.Translation())
	return p.Stats()
}

// TestFactsProvePacketAndStackAccess pins the two bread-and-butter
// elisions: packet-header loads through the ABI packet pointer and
// stack spills through a locally adjusted sp.
func TestFactsProvePacketAndStackAccess(t *testing.T) {
	st := factsFor(t, `
.global process_packet
process_packet:
	addi sp, sp, -8
	sw ra, 4(sp)
	lbu t0, 0(a0)
	lbu t1, 9(a0)
	lw ra, 4(sp)
	addi sp, sp, 8
	ret
`)
	if st.UncheckedLoads < 3 { // two packet lbu + the stack reload
		t.Errorf("UncheckedLoads = %d, want >= 3", st.UncheckedLoads)
	}
	if st.UncheckedStores < 1 { // the stack spill
		t.Errorf("UncheckedStores = %d, want >= 1", st.UncheckedStores)
	}
}

// TestFactsFoldConstantBranch pins interval-based branch folding: a
// comparison of constants has one provable direction.
func TestFactsFoldConstantBranch(t *testing.T) {
	st := factsFor(t, `
.global process_packet
process_packet:
	li t0, 5
	blt zero, t0, ok
	sb t0, 0(zero)
ok:
	ret
`)
	if st.FoldedBranches < 1 {
		t.Errorf("FoldedBranches = %d, want >= 1", st.FoldedBranches)
	}
}

// TestFactsElideRedundantMask pins known-bits masking: after a byte
// load the value fits in 8 bits, so andi 0xFF is an identity.
func TestFactsElideRedundantMask(t *testing.T) {
	st := factsFor(t, `
.global process_packet
process_packet:
	lbu t0, 0(a0)
	andi t1, t0, 0xFF
	ret
`)
	if st.ElidedMasks < 1 {
		t.Errorf("ElidedMasks = %d, want >= 1", st.ElidedMasks)
	}
}

// TestFactsLoaderSlotStaysChecked is the soundness scoping test: a
// pointer loaded from a data slot has an unknown value (the loader, not
// the program, initializes it), so a load through it must stay fully
// checked even though the slot load itself is provable.
func TestFactsLoaderSlotStaysChecked(t *testing.T) {
	st := factsFor(t, `
.data
slot: .word 0
.text
.global process_packet
process_packet:
	la t0, slot
	lw t1, 0(t0)
	lbu a0, 0(t1)
	ret
`)
	if st.UncheckedLoads != 1 {
		t.Errorf("UncheckedLoads = %d, want exactly 1 (the slot load; the indirect load must stay checked)", st.UncheckedLoads)
	}
}

// TestFactsDiagsSurface checks that Options.FactsDiags surfaces the
// pipeline's findings as warn-severity diagnostics and that the default
// leaves them out.
func TestFactsDiagsSurface(t *testing.T) {
	src := `
.global process_packet
process_packet:
	li t0, 5
	blt zero, t0, ok
	sb t0, 0(zero)
ok:
	lbu t1, 0(a0)
	andi t1, t1, 0xFF
	ret
`
	prog, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := staticcheck.Options{Layout: core.LayoutFor(prog, 1<<20)}
	factsChecks := func(ds []staticcheck.Diagnostic) (n int) {
		for _, d := range ds {
			switch d.Check {
			case "const-branch", "redundant-mask", "facts-dead-code":
				n++
				if d.Severity.String() == "error" {
					t.Errorf("facts diagnostic has error severity: %s", d)
				}
			}
		}
		return n
	}
	if n := factsChecks(staticcheck.Verify(prog, opts)); n != 0 {
		t.Fatalf("facts diagnostics surfaced without FactsDiags: %d", n)
	}
	opts.FactsDiags = true
	if n := factsChecks(staticcheck.Verify(prog, opts)); n == 0 {
		t.Fatal("FactsDiags surfaced no facts diagnostics")
	}
}

// TestFactsDump smoke-tests the -facts listing: it must mention the
// proven regions and branch directions of a program that has both.
func TestFactsDump(t *testing.T) {
	prog, err := asm.Assemble(`
.global process_packet
process_packet:
	li t0, 5
	blt zero, t0, ok
	sb t0, 0(zero)
ok:
	lbu t1, 0(a0)
	ret
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, facts := staticcheck.VerifyWithFacts(prog, staticcheck.Options{Layout: core.LayoutFor(prog, 1<<20)})
	var sb strings.Builder
	facts.Dump(&sb)
	out := sb.String()
	if !strings.Contains(out, "packet") {
		t.Errorf("dump mentions no packet-region proof:\n%s", out)
	}
	if !strings.Contains(out, "always") {
		t.Errorf("dump mentions no always-taken branch:\n%s", out)
	}
}

// FuzzFactsEngineDiff is the facts pipeline's differential fuzzer: for
// any assemblable source, running the fully-checked reference
// interpreter and the proof-guided threaded translation (facts applied:
// elision, folding, fusion) from the verifier's entry under the
// framework ABI must be bit-identical in every observable. This is the
// soundness contract end-to-end — a wrong fact shows up here as an
// engine divergence. CI runs this as a short -fuzz smoke.
func FuzzFactsEngineDiff(f *testing.F) {
	for _, s := range asm.FuzzSeeds {
		f.Add(s)
	}
	f.Add("process_packet:\n\tlbu t0, 0(a0)\n\tandi t0, t0, 0xFF\n\tsw t0, -4(sp)\n\tret")
	f.Add("p:\n\tli t0, 3\nx:\n\tsrli t1, t2, 31\n\tslli t2, t2, 1\n\tandi t3, t4, 0xFF\n\tor t3, t3, t5\n\tadd t3, t3, a0\n\tlbu t3, 0(t3)\n\taddi t5, t5, 1\n\tblt t5, t0, x\n\tret")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := asm.Assemble(src, asm.Options{})
		if err != nil || len(prog.Text) == 0 || len(prog.Text) > 4096 {
			t.Skip()
		}
		layout := core.LayoutFor(prog, 1<<20)
		_, facts := staticcheck.VerifyWithFacts(prog, staticcheck.Options{Layout: layout})
		tp := vm.TranslateWithFacts(prog.Text, prog.TextBase,
			analysis.NewBlockMap(prog.Text, prog.TextBase), facts.Translation())

		run := func(threaded bool) (*vm.CPU, uint64, vm.StopReason, *vm.Fault) {
			mem := vm.NewMemory()
			mem.WriteBytes(prog.DataBase, prog.Data)
			cpu := vm.New(prog.Text, prog.TextBase, mem)
			cpu.Layout = layout
			cpu.SetReg(isa.A0, layout.PacketBase)
			cpu.SetReg(isa.A1, 64)
			cpu.SetReg(isa.SP, layout.StackEnd)
			cpu.SetReg(isa.RA, vm.ReturnAddress)
			cpu.PC = entryAddr(prog)
			var (
				steps  uint64
				reason vm.StopReason
				rerr   error
			)
			if threaded {
				steps, reason, rerr = cpu.RunProgram(tp, 100_000)
			} else {
				steps, reason, rerr = cpu.Run(100_000)
			}
			var fault *vm.Fault
			if rerr != nil && !errors.As(rerr, &fault) {
				t.Fatalf("non-Fault error: %v", rerr)
			}
			return cpu, steps, reason, fault
		}

		ic, isteps, ireason, ifault := run(false)
		tc, tsteps, treason, tfault := run(true)
		if ic.Regs != tc.Regs {
			t.Fatalf("registers diverge:\ninterp  %v\nthreaded %v", ic.Regs, tc.Regs)
		}
		if ic.PC != tc.PC || isteps != tsteps || ireason != treason {
			t.Fatalf("pc/steps/reason diverge: interp (%#x,%d,%v) threaded (%#x,%d,%v)",
				ic.PC, isteps, ireason, tc.PC, tsteps, treason)
		}
		if (ifault == nil) != (tfault == nil) {
			t.Fatalf("fault presence diverges: interp %v threaded %v", ifault, tfault)
		}
		if ifault != nil && (ifault.Kind != tfault.Kind || ifault.PC != tfault.PC || ifault.Addr != tfault.Addr) {
			t.Fatalf("faults diverge: interp %+v threaded %+v", ifault, tfault)
		}
		if ic.PacketWriteHigh() != tc.PacketWriteHigh() {
			t.Fatalf("packet watermark diverges: %d vs %d", ic.PacketWriteHigh(), tc.PacketWriteHigh())
		}
		if !ic.Mem.Equal(tc.Mem) {
			t.Fatal("memory images diverge")
		}
	})
}

// FuzzCompiledEngineDiff is the compiled tier's end-to-end differential:
// any program the assembler accepts, compiled through the full pipeline
// (assemble → verifier facts → proof-guided translation → closure
// compilation with every block seeded hot) must be bit-identical to the
// reference interpreter in every observable, including the materialized
// fault state at side exits. CI runs this as a short -fuzz smoke next to
// FuzzFactsEngineDiff.
func FuzzCompiledEngineDiff(f *testing.F) {
	for _, s := range asm.FuzzSeeds {
		f.Add(s)
	}
	f.Add("process_packet:\n\tlbu t0, 0(a0)\n\tandi t0, t0, 0xFF\n\tsw t0, -4(sp)\n\tret")
	f.Add("p:\n\tli t0, 64\n\tli t1, 0\nx:\n\tlw t2, 0(a0)\n\tadd t1, t1, t2\n\txor t1, t1, t0\n\tsw t1, -8(sp)\n\taddi t0, t0, -1\n\tbne t0, zero, x\n\tret")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := asm.Assemble(src, asm.Options{})
		if err != nil || len(prog.Text) == 0 || len(prog.Text) > 4096 {
			t.Skip()
		}
		layout := core.LayoutFor(prog, 1<<20)
		_, facts := staticcheck.VerifyWithFacts(prog, staticcheck.Options{Layout: layout})
		blocks := analysis.NewBlockMap(prog.Text, prog.TextBase)
		tp := vm.TranslateWithFacts(prog.Text, prog.TextBase, blocks, facts.Translation())
		hot := make([]int32, 0, blocks.NumBlocks())
		for b := 0; b < blocks.NumBlocks(); b++ {
			hot = append(hot, int32(blocks.LeaderIndex(b)))
		}
		cp := vm.Compile(tp, facts.Translation(), vm.CompileConfig{Hot: hot, PromoteAfter: 1})

		run := func(compiled bool) (*vm.CPU, uint64, vm.StopReason, *vm.Fault) {
			mem := vm.NewMemory()
			mem.WriteBytes(prog.DataBase, prog.Data)
			cpu := vm.New(prog.Text, prog.TextBase, mem)
			cpu.Layout = layout
			cpu.SetReg(isa.A0, layout.PacketBase)
			cpu.SetReg(isa.A1, 64)
			cpu.SetReg(isa.SP, layout.StackEnd)
			cpu.SetReg(isa.RA, vm.ReturnAddress)
			cpu.PC = entryAddr(prog)
			var (
				steps  uint64
				reason vm.StopReason
				rerr   error
			)
			if compiled {
				steps, reason, rerr = cpu.RunCompiled(cp, 100_000)
			} else {
				steps, reason, rerr = cpu.Run(100_000)
			}
			var fault *vm.Fault
			if rerr != nil && !errors.As(rerr, &fault) {
				t.Fatalf("non-Fault error: %v", rerr)
			}
			return cpu, steps, reason, fault
		}

		ic, isteps, ireason, ifault := run(false)
		cc, csteps, creason, cfault := run(true)
		if ic.Regs != cc.Regs {
			t.Fatalf("registers diverge:\ninterp   %v\ncompiled %v", ic.Regs, cc.Regs)
		}
		if ic.PC != cc.PC || isteps != csteps || ireason != creason {
			t.Fatalf("pc/steps/reason diverge: interp (%#x,%d,%v) compiled (%#x,%d,%v)",
				ic.PC, isteps, ireason, cc.PC, csteps, creason)
		}
		if (ifault == nil) != (cfault == nil) {
			t.Fatalf("fault presence diverges: interp %v compiled %v", ifault, cfault)
		}
		if ifault != nil && (ifault.Kind != cfault.Kind || ifault.PC != cfault.PC || ifault.Addr != cfault.Addr) {
			t.Fatalf("faults diverge: interp %+v compiled %+v", ifault, cfault)
		}
		if ic.PacketWriteHigh() != cc.PacketWriteHigh() {
			t.Fatalf("packet watermark diverges: %d vs %d", ic.PacketWriteHigh(), cc.PacketWriteHigh())
		}
		if !ic.Mem.Equal(cc.Mem) {
			t.Fatal("memory images diverge")
		}
	})
}
