package staticcheck_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/staticcheck"
	"repro/internal/vm"
)

// TestVerifierSoundOnCorpus is the verifier's soundness contract: a
// program the simulator executes to completion (halt or return) without
// any fault must never receive an error-severity diagnostic. Warnings
// are fine — they flag suspicious-but-runnable code by design. The
// corpus is the assembler's fuzz seed set, which the fuzzer also grows.
func TestVerifierSoundOnCorpus(t *testing.T) {
	for i, src := range asm.FuzzSeeds {
		prog, err := asm.Assemble(src, asm.Options{})
		if err != nil {
			continue // not this test's concern
		}
		layout := core.LayoutFor(prog, 1<<20)
		if runsClean(prog, layout) {
			ds := staticcheck.Verify(prog, staticcheck.Options{Layout: layout})
			if ds.HasErrors() {
				t.Errorf("seed %d %q: runs clean but verifier rejects it:\n%s",
					i, src, ds.Errors())
			}
		}
	}
}

// runsClean executes prog under the framework ABI (registers zeroed,
// a0/a1/sp/ra seeded, pc at the first entry) and reports whether it
// halts or returns without faulting.
func runsClean(prog *asm.Program, layout vm.Layout) bool {
	if len(prog.Text) == 0 {
		return false
	}
	mem := vm.NewMemory()
	mem.WriteBytes(prog.DataBase, prog.Data)
	cpu := vm.New(prog.Text, prog.TextBase, mem)
	cpu.Layout = layout
	cpu.SetReg(isa.A0, layout.PacketBase)
	cpu.SetReg(isa.A1, 64)
	cpu.SetReg(isa.SP, layout.StackEnd)
	cpu.SetReg(isa.RA, vm.ReturnAddress)
	cpu.PC = entryAddr(prog)
	_, _, err := cpu.Run(100_000)
	return err == nil
}

// entryAddr mirrors the verifier's default entry resolution: the first
// text-segment global, else the base of the text segment.
func entryAddr(prog *asm.Program) uint32 {
	for _, g := range prog.Globals {
		if addr, ok := prog.Symbols[g]; ok && addr >= prog.TextBase && addr < prog.TextEnd() {
			return addr
		}
	}
	return prog.TextBase
}
