// Package staticcheck verifies assembled PB32 programs before they run,
// in the spirit of the eBPF verifier: it builds a control-flow graph
// over the program's basic blocks and runs a suite of static analyses
// that produce typed, source-located diagnostics.
//
// The checks, by severity:
//
// Errors (the program can fault or escape at runtime; run engines
// refuse to load it unless verification is disabled):
//
//   - bad-target: a branch, jump, or constant-address JALR whose target
//     lies outside the text segment
//   - fall-off-end: a reachable path that runs past the last instruction
//     without a halt or ret
//   - bad-access: a load or store of a constant address that is unmapped
//     or inside the text segment
//   - misaligned: a constant-address access that violates natural
//     alignment
//   - empty-text: a program with no instructions at all
//   - entry: an entry symbol that is missing or outside the text segment
//
// Warnings (suspicious but cannot fault — the framework zeroes all
// registers before dispatch, loops may be bounded by data the verifier
// cannot see, and so on):
//
//   - uninit-reg: a register read on some path before any write
//   - unreachable: basic blocks no entry point can reach
//   - non-termination: reachable loops from which no halt or return is
//     reachable
//   - stack-imbalance: a function returning with sp displaced from its
//     entry value
//   - sp-clobber: sp overwritten with an untrackable value
//   - unused-label, shadowed-name: assembler lint findings, produced at
//     assembly time and folded into the verifier's report
//
// Verification is necessarily approximate in the safe direction for
// errors: error-severity findings are only reported where the static
// over-approximation proves the defect reachable, so a program that runs
// cleanly on the simulator is never rejected. Warnings over-approximate
// (conditional branches are assumed to go both ways), so a warning is a
// hint, not a conviction.
package staticcheck

import (
	"repro/internal/asm"
	"repro/internal/diag"
	"repro/internal/vm"
)

// Diagnostics are shared with the assembler's lint pass via the leaf
// package internal/diag; the aliases make this package's API
// self-contained for callers.
type (
	// Diagnostic is one verifier finding.
	Diagnostic = diag.Diagnostic
	// Severity classifies a finding.
	Severity = diag.Severity
	// List is an ordered collection of findings.
	List = diag.List
)

// Re-exported severity levels.
const (
	Info    = diag.Info
	Warning = diag.Warning
	Error   = diag.Error
)

// Options configures a verification run.
type Options struct {
	// Layout is the memory map the program will run under. When zero,
	// the address-space checks degrade gracefully: only the text segment
	// (known from the program itself) is checked, and the ABI constants
	// (packet base, stack top) are not assumed.
	Layout vm.Layout
	// Entries names the symbols execution can enter at. When empty, the
	// program's text-segment .global symbols are used, falling back to
	// the base of the text segment.
	Entries []string
	// EntryAddrs overrides Entries with explicit addresses.
	EntryAddrs []uint32
	// FactsDiags additionally surfaces the facts pipeline's findings as
	// warn-severity diagnostics (const-branch, redundant-mask,
	// facts-dead-code). Off by default: these describe optimization
	// opportunities the translator exploits automatically, so only
	// explicit lint runs (pbvet) ask for them.
	FactsDiags bool
}

// Verify runs every analysis over an assembled program and returns the
// combined findings, sorted by source line and deduplicated. The
// assembler's own lint findings (prog.Lint) are folded in, so callers
// get one report. Use List.HasErrors to gate loading.
func Verify(prog *asm.Program, opts Options) List {
	ds, _ := VerifyWithFacts(prog, opts)
	return ds
}

// VerifyWithFacts runs Verify and additionally returns the proofs of
// the abstract-interpretation facts pipeline (see facts.go), which the
// threaded translator consumes via Facts.Translation. The returned
// Facts is never nil; an unverifiable (untame) program yields one with
// Tame == false, claiming nothing.
func VerifyWithFacts(prog *asm.Program, opts Options) (List, *Facts) {
	var ds diag.List
	ds = append(ds, prog.Lint...)
	if len(prog.Text) == 0 {
		ds = append(ds, Diagnostic{Severity: Error, Check: "empty-text",
			Msg: "program has no instructions in the text segment"})
		return ds.Sort(), &Facts{}
	}
	cfg, entryDiags := BuildCFG(prog, opts)
	ds = append(ds, entryDiags...)
	ds = append(ds, cfg.structural()...)
	ds = append(ds, cfg.nonTermination()...)
	ds = append(ds, newDataflow(cfg, opts).run()...)
	facts := computeFacts(cfg, opts)
	if opts.FactsDiags {
		ds = append(ds, surfaceFactsDiags(cfg, facts)...)
	}
	return ds.Sort(), facts
}
