package staticcheck

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/diag"
	"repro/internal/vm"
)

// testLayout mirrors the memory map core.New builds: packet buffer at
// 0x20000000, data + heap after the program's data base, 64 KiB stack
// below 0x80000000.
func testLayout(prog *asm.Program) vm.Layout {
	return vm.Layout{
		TextBase:   prog.TextBase,
		TextEnd:    prog.TextEnd(),
		PacketBase: 0x20000000,
		PacketEnd:  0x20000000 + 64*1024,
		DataBase:   prog.DataBase,
		DataEnd:    prog.DataBase + 1<<20,
		StackBase:  0x80000000 - 64*1024,
		StackEnd:   0x80000000,
	}
}

func mustAssemble(t *testing.T, src string) *asm.Program {
	t.Helper()
	prog, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return prog
}

func verifySrc(t *testing.T, src string, opts Options) (*asm.Program, List) {
	t.Helper()
	prog := mustAssemble(t, src)
	if opts.Layout == (vm.Layout{}) {
		opts.Layout = testLayout(prog)
	}
	return prog, Verify(prog, opts)
}

func checksOf(ds List) map[string]diag.Severity {
	m := make(map[string]diag.Severity)
	for _, d := range ds {
		if cur, ok := m[d.Check]; !ok || d.Severity > cur {
			m[d.Check] = d.Severity
		}
	}
	return m
}

// TestAnalyses drives each analysis with a minimal program that triggers
// it, and a clean program through all of them.
func TestAnalyses(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want map[string]diag.Severity // check -> minimum severity expected
		none []string                 // checks that must NOT fire
	}{
		{
			name: "clean",
			src: `        .global process_packet
process_packet:
        lw   t0, 0(a0)
        addi a0, zero, 1
        halt`,
			none: []string{"bad-target", "fall-off-end", "uninit-reg", "unreachable",
				"non-termination", "bad-access", "misaligned", "stack-imbalance",
				"sp-clobber", "unused-label", "shadowed-name"},
		},
		{
			name: "branch target outside text",
			src: `        .global e
e:      beq  a0, a1, 0x10100
        halt`,
			want: map[string]diag.Severity{"bad-target": diag.Error},
		},
		{
			name: "fall off the end",
			src: `        .global e
e:      addi a0, zero, 1`,
			want: map[string]diag.Severity{"fall-off-end": diag.Error},
		},
		{
			name: "uninitialized register read",
			src: `        .global e
e:      add  a0, t3, zero
        halt`,
			want: map[string]diag.Severity{"uninit-reg": diag.Warning},
			none: []string{"bad-target", "fall-off-end"},
		},
		{
			name: "unreachable block",
			src: `        .global e
e:      halt
        addi a0, zero, 1
        halt`,
			want: map[string]diag.Severity{"unreachable": diag.Warning},
		},
		{
			name: "load from unmapped address",
			src: `        .global e
e:      li   t0, 0x500
        lw   a0, 0(t0)
        halt`,
			want: map[string]diag.Severity{"bad-access": diag.Error},
		},
		{
			name: "misaligned packet load",
			src: `        .global e
e:      li   t0, 0x20000001
        lw   a0, 0(t0)
        halt`,
			want: map[string]diag.Severity{"misaligned": diag.Error},
		},
		{
			name: "store into text segment",
			src: `        .global e
e:      li   t0, 0x10000
        sw   a0, 0(t0)
        halt`,
			want: map[string]diag.Severity{"bad-access": diag.Error},
		},
		{
			name: "stack imbalance at return",
			src: `        .global e
e:      addi sp, sp, -8
        ret`,
			want: map[string]diag.Severity{"stack-imbalance": diag.Warning},
		},
		{
			name: "sp clobber",
			src: `        .global e
e:      add  sp, t0, t1
        halt`,
			want: map[string]diag.Severity{"sp-clobber": diag.Warning, "uninit-reg": diag.Warning},
		},
		{
			name: "non-terminating loop",
			src: `        .global e
e:      j    e`,
			want: map[string]diag.Severity{"non-termination": diag.Warning},
			none: []string{"fall-off-end"},
		},
		{
			name: "computed jump outside text",
			src: `        .global e
e:      li   t0, 0x99999998
        jr   t0`,
			want: map[string]diag.Severity{"bad-target": diag.Error},
		},
		{
			name: "balanced call and return is clean",
			src: `        .global e
e:      addi sp, sp, -4
        sw   ra, 0(sp)
        call f
        lw   ra, 0(sp)
        addi sp, sp, 4
        ret
f:      addi a0, zero, 7
        ret`,
			none: []string{"stack-imbalance", "sp-clobber", "uninit-reg",
				"unused-label", "non-termination", "fall-off-end"},
		},
		{
			name: "unused label",
			src: `        .global e
e:      halt
dead:   halt`,
			want: map[string]diag.Severity{"unused-label": diag.Warning},
		},
		{
			name: "label shadows mnemonic",
			src: `        .global e
e:      j    add
add:    halt`,
			want: map[string]diag.Severity{"shadowed-name": diag.Warning},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, ds := verifySrc(t, tc.src, Options{})
			got := checksOf(ds)
			for check, sev := range tc.want {
				if got[check] < sev {
					t.Errorf("want %s at severity >= %s, got %v\ndiagnostics:\n%s",
						check, sev, got[check], ds)
				}
			}
			for _, check := range tc.none {
				if _, ok := got[check]; ok {
					t.Errorf("check %s must not fire\ndiagnostics:\n%s", check, ds)
				}
			}
			if tc.name == "clean" && len(ds) != 0 {
				t.Errorf("clean program produced diagnostics:\n%s", ds)
			}
		})
	}
}

// TestAcceptance is the issue's acceptance scenario: a program with a
// jump past TextEnd, a read of an uninitialized register, and an
// unreachable block reports exactly those three diagnostics, each on the
// correct source line.
func TestAcceptance(t *testing.T) {
	src := `        .global process_packet
process_packet:
        add  a2, t2, zero
        j    0x100000
        halt`
	_, ds := verifySrc(t, src, Options{})
	if len(ds) != 3 {
		t.Fatalf("want exactly 3 diagnostics, got %d:\n%s", len(ds), ds)
	}
	wants := []struct {
		check string
		sev   diag.Severity
		line  int
	}{
		{"uninit-reg", diag.Warning, 3},
		{"bad-target", diag.Error, 4},
		{"unreachable", diag.Warning, 5},
	}
	for _, w := range wants {
		found := false
		for _, d := range ds {
			if d.Check == w.check && d.Severity == w.sev && d.Line == w.line {
				found = true
			}
		}
		if !found {
			t.Errorf("missing %s (%s) at line %d; got:\n%s", w.check, w.sev, w.line, ds)
		}
	}
	if !ds.HasErrors() {
		t.Error("list must report HasErrors")
	}
	if n := len(ds.Errors()); n != 1 {
		t.Errorf("want 1 error-severity finding, got %d", n)
	}
}

// TestEmptyText rejects programs with no instructions.
func TestEmptyText(t *testing.T) {
	_, ds := verifySrc(t, `.data
v: .word 1`, Options{})
	if got := checksOf(ds); got["empty-text"] != diag.Error {
		t.Fatalf("want empty-text error, got:\n%s", ds)
	}
}

// TestEntryResolution covers explicit entry symbols, missing ones, and
// the default fallback.
func TestEntryResolution(t *testing.T) {
	prog := mustAssemble(t, "e: halt")
	ds := Verify(prog, Options{Entries: []string{"nope"}, Layout: testLayout(prog)})
	if got := checksOf(ds); got["entry"] != diag.Error {
		t.Fatalf("missing entry symbol must be an error, got:\n%s", ds)
	}
	// Default entry: no globals, falls back to TextBase; the single
	// block is reachable, so no unreachable warning.
	ds = Verify(prog, Options{Layout: testLayout(prog)})
	if got := checksOf(ds); got["unreachable"] != 0 {
		t.Fatalf("fallback entry must make code reachable, got:\n%s", ds)
	}
}

// TestUninitNotCascading: one bad register produces one warning per
// use site, not a warning for every downstream use of derived values.
func TestUninitNotCascading(t *testing.T) {
	src := `        .global e
e:      add  a0, t3, zero
        add  a1, t3, zero
        add  a2, a0, a1
        halt`
	_, ds := verifySrc(t, src, Options{})
	n := 0
	for _, d := range ds {
		if d.Check == "uninit-reg" {
			n++
		}
	}
	// t3 is reported at its first use only; a0/a1 are defined by their
	// writes, so line 4 is silent.
	if n != 1 {
		t.Fatalf("want exactly 1 uninit-reg warning, got %d:\n%s", n, ds)
	}
}

// TestHelperUsesCallerState: a helper reading caller-set s-registers is
// not flagged — callee entry assumes the caller defined everything.
func TestHelperUsesCallerState(t *testing.T) {
	src := `        .global e
e:      addi s0, zero, 5
        call f
        halt
f:      add  a0, s0, zero
        ret`
	_, ds := verifySrc(t, src, Options{})
	if got := checksOf(ds); got["uninit-reg"] != 0 {
		t.Fatalf("helper use of caller state flagged:\n%s", ds)
	}
}

// TestDot sanity-checks the CFG renderer.
func TestDot(t *testing.T) {
	prog := mustAssemble(t, `        .global e
e:      beqz a0, out
        addi a0, zero, 2
out:    halt`)
	cfg, ds := BuildCFG(prog, Options{Layout: testLayout(prog)})
	if len(ds) != 0 {
		t.Fatalf("unexpected entry diagnostics: %s", ds)
	}
	dot := cfg.Dot()
	for _, want := range []string{"digraph cfg", "b0 -> b1", "b0 -> b2", "lines"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q:\n%s", want, dot)
		}
	}
}

// TestCallGraph: linking jumps populate the call list and mark function
// entries.
func TestCallGraph(t *testing.T) {
	prog := mustAssemble(t, `        .global e
e:      call f
        halt
f:      ret`)
	cfg, _ := BuildCFG(prog, Options{Layout: testLayout(prog)})
	if len(cfg.Calls) != 1 {
		t.Fatalf("want 1 call site, got %d", len(cfg.Calls))
	}
	if len(cfg.FuncEntries) != 2 {
		t.Fatalf("want 2 function entries (e, f), got %v", cfg.FuncEntries)
	}
}

// TestNoLayoutDegradesGracefully: without a memory map the absolute
// address checks are skipped but text-segment stores are still caught.
func TestNoLayoutDegradesGracefully(t *testing.T) {
	prog := mustAssemble(t, `        .global e
e:      li   t0, 0x10000
        sw   a0, 0(t0)
        li   t1, 0x500
        lw   a1, 0(t1)
        halt`)
	ds := Verify(prog, Options{})
	got := checksOf(ds)
	if got["bad-access"] != diag.Error {
		t.Errorf("text store must be caught without a layout:\n%s", ds)
	}
	for _, d := range ds {
		if d.Check == "bad-access" && strings.Contains(d.Msg, "unmapped") {
			t.Errorf("unmapped check needs a layout and must not fire: %s", d)
		}
	}
}
