// Package stats implements PacketBench's selective-accounting statistics
// engine: a vm.Tracer that turns the simulator's per-instruction event
// stream into the per-packet workload records the paper's evaluation is
// built from.
//
// Because the tracer is attached only while application code runs (the
// framework itself executes natively, outside the simulator), every
// number collected here reflects application processing alone — the
// paper's "statistics as if the application had run by itself on the
// processor".
//
// The collector has two cost tiers:
//
//   - summary counting (always on): per-packet instruction counts, unique
//     instruction counts, region-split memory access counts, and executed
//     basic-block sets, using epoch-stamped arrays so per-packet reset is
//     O(1);
//   - optional detail traces (Detail) and whole-run memory coverage maps
//     (Coverage), which the individual-packet figures (6, 9) and Table IV
//     need but are too expensive to keep for bulk runs.
package stats

import (
	"math/bits"
	"time"

	"repro/internal/analysis"
	"repro/internal/isa"
	"repro/internal/vm"
)

// PacketRecord is the workload profile of one packet.
type PacketRecord struct {
	// Index is the packet's ordinal within the run.
	Index int
	// Instructions is the number of instructions executed.
	Instructions uint64
	// Unique is the number of distinct instruction addresses executed.
	Unique int
	// Region-split data memory access counts. Stack accesses count as
	// non-packet accesses: they are application state, like table data.
	PacketReads, PacketWrites       uint64
	NonPacketReads, NonPacketWrites uint64
	// Blocks is the sorted set of basic blocks executed.
	Blocks []int
	// Fault marks a quarantined packet: processing failed with this kind
	// under a skip policy. A faulted record keeps its Index slot so the
	// run's packet numbering is stable, but carries no workload counts
	// and is excluded from aggregate means.
	Fault vm.FaultKind
}

// Faulted reports whether the record is a quarantine marker rather than a
// measured packet.
func (r *PacketRecord) Faulted() bool { return r.Fault != vm.FaultNone }

// PacketAccesses returns total packet-memory accesses.
func (r *PacketRecord) PacketAccesses() uint64 { return r.PacketReads + r.PacketWrites }

// NonPacketAccesses returns total non-packet data memory accesses.
func (r *PacketRecord) NonPacketAccesses() uint64 { return r.NonPacketReads + r.NonPacketWrites }

// MemEvent is one data memory access in a detail trace.
type MemEvent struct {
	// InstrNum is the 0-based index of the access's instruction within
	// the packet's execution.
	InstrNum uint64
	Addr     uint32
	Size     uint8
	Write    bool
	Region   vm.Region
}

// Collector accumulates workload statistics. It implements vm.Tracer.
type Collector struct {
	// Detail enables per-packet instruction and memory event traces
	// (InstrTrace, MemTrace, BlockSeq), reset at BeginPacket.
	Detail bool
	// Coverage enables whole-run unique-address tracking (Table IV).
	Coverage bool
	// KeepRecords retains every packet's record in Records.
	KeepRecords bool
	// CountPCs enables per-instruction execution counters (PCCounts),
	// the input for gprof-style annotated listings.
	CountPCs bool
	// BlocksFromEngine declares that the execution engine reports block
	// entries itself through EnterBlock (the block-threaded engine knows
	// the block structure already), so Instr skips the per-instruction
	// BlockOfIndex lookup. The core run engine sets it to match the
	// engine a bench was built with.
	BlocksFromEngine bool

	blocks   *analysis.BlockMap
	textBase uint32
	numText  int
	layout   vm.Layout

	// Epoch-stamped uniqueness tracking: seenInstr[i] == epoch means
	// instruction i already executed for the current packet.
	epoch     uint32
	seenInstr []uint32
	seenBlock []uint32

	cur     PacketRecord
	packets int

	// Detail traces for the current packet.
	InstrTrace []uint32
	MemTrace   []MemEvent
	// BlockSeq is the dynamic block entry sequence of the current packet.
	BlockSeq []int

	// Records holds one record per packet when KeepRecords is set.
	Records []PacketRecord

	// PCCounts[i] is how many times instruction i executed across the
	// whole run (enabled by CountPCs).
	PCCounts []uint64

	// Whole-run coverage sets (enabled by Coverage). Data/stack/packet
	// coverage is tracked at word granularity with one bit per 32-bit
	// word, keyed off the layout — Table IV only needs counts, and the
	// bitset update is a shift and an OR where the old per-byte map
	// insert dominated -coverage runs. Allocated at the first
	// BeginPacket after Coverage is set.
	instrTouched []bool // per text instruction
	dataTouched  wordBitset
	stackTouched wordBitset
	pktTouched   wordBitset
}

// wordBitset tracks the touched 32-bit words of one contiguous address
// region, one bit per word.
type wordBitset struct {
	base uint32
	bits []uint64
}

func newWordBitset(base, end uint32) wordBitset {
	words := (end - base + 3) / 4
	return wordBitset{base: base, bits: make([]uint64, (words+63)/64)}
}

// set marks the word containing addr, which must lie inside the region.
func (s *wordBitset) set(addr uint32) {
	w := (addr - s.base) / 4
	s.bits[w>>6] |= 1 << (w & 63)
}

// count returns the number of marked words.
func (s *wordBitset) count() int {
	n := 0
	for _, b := range s.bits {
		n += bits.OnesCount64(b)
	}
	return n
}

// NewCollector creates a collector for a program's text segment. The
// layout supplies the region bounds the coverage bitsets are keyed off;
// it must be the layout the CPU classifies accesses with.
func NewCollector(text []isa.Instruction, textBase uint32, blocks *analysis.BlockMap, layout vm.Layout) *Collector {
	return &Collector{
		blocks:       blocks,
		textBase:     textBase,
		numText:      len(text),
		layout:       layout,
		seenInstr:    make([]uint32, len(text)),
		seenBlock:    make([]uint32, blocks.NumBlocks()),
		instrTouched: make([]bool, len(text)),
		// PCCounts is eagerly allocated (one counter per text
		// instruction is a few KiB at most) so the per-instruction hot
		// path never has to test for a nil slice.
		PCCounts: make([]uint64, len(text)),
	}
}

// Blocks returns the block map the collector was built with.
func (c *Collector) Blocks() *analysis.BlockMap { return c.blocks }

// Packets returns the number of completed packets.
func (c *Collector) Packets() int { return c.packets }

// BeginPacket starts accounting for the next packet.
func (c *Collector) BeginPacket() {
	c.epoch++
	c.cur = PacketRecord{Index: c.packets}
	if c.Detail {
		c.InstrTrace = c.InstrTrace[:0]
		c.MemTrace = c.MemTrace[:0]
		c.BlockSeq = c.BlockSeq[:0]
	}
	if c.Coverage && c.dataTouched.bits == nil {
		c.dataTouched = newWordBitset(c.layout.DataBase, c.layout.DataEnd)
		c.stackTouched = newWordBitset(c.layout.StackBase, c.layout.StackEnd)
		c.pktTouched = newWordBitset(c.layout.PacketBase, c.layout.PacketEnd)
	}
}

// EndPacket finalizes the current packet and returns its record.
func (c *Collector) EndPacket() PacketRecord {
	// Gather the executed block set from the epoch stamps (ascending ids,
	// hence sorted).
	for b, e := range c.seenBlock {
		if e == c.epoch {
			c.cur.Blocks = append(c.cur.Blocks, b)
		}
	}
	rec := c.cur
	c.packets++
	if c.KeepRecords {
		c.Records = append(c.Records, rec)
	}
	return rec
}

// AbortPacket finalizes the current packet as quarantined: the returned
// record occupies the packet's Index slot but holds only the fault kind —
// partial counts from the failed execution are discarded, since they
// describe an execution that never completed. Any partial detail traces
// are reset by the next BeginPacket as usual.
func (c *Collector) AbortPacket(kind vm.FaultKind) PacketRecord {
	rec := PacketRecord{Index: c.cur.Index, Fault: kind}
	c.packets++
	if c.KeepRecords {
		c.Records = append(c.Records, rec)
	}
	return rec
}

// Instr implements vm.Tracer.
func (c *Collector) Instr(pc uint32, in isa.Instruction) {
	c.cur.Instructions++
	idx := int(pc-c.textBase) / isa.WordSize
	if idx >= 0 && idx < c.numText {
		if c.seenInstr[idx] != c.epoch {
			c.seenInstr[idx] = c.epoch
			c.cur.Unique++
		}
		if !c.BlocksFromEngine {
			b := c.blocks.BlockOfIndex(idx)
			if c.seenBlock[b] != c.epoch {
				c.seenBlock[b] = c.epoch
			}
			if c.Detail && c.blocks.LeaderIndex(b) == idx {
				// A block is entered whenever its leader executes (all
				// control-transfer targets are leaders), so self-loops
				// count as re-entries.
				c.BlockSeq = append(c.BlockSeq, b)
			}
		}
		if c.Coverage {
			c.instrTouched[idx] = true
		}
		if c.CountPCs {
			c.PCCounts[idx]++
		}
		if c.Detail {
			c.InstrTrace = append(c.InstrTrace, pc)
		}
	}
}

// EnterBlock implements vm.BlockTracer: the block-threaded engine
// reports each dynamic block entry directly, replacing the
// per-instruction block derivation in Instr. It is a no-op unless
// BlocksFromEngine is set, so a collector attached to the interpreter
// never double-counts.
func (c *Collector) EnterBlock(b int, leader bool) {
	if !c.BlocksFromEngine {
		return
	}
	if c.seenBlock[b] != c.epoch {
		c.seenBlock[b] = c.epoch
	}
	if c.Detail && leader {
		c.BlockSeq = append(c.BlockSeq, b)
	}
}

// Mem implements vm.Tracer.
func (c *Collector) Mem(pc, addr uint32, size uint8, write bool, region vm.Region) {
	if region == vm.RegionPacket {
		if write {
			c.cur.PacketWrites++
		} else {
			c.cur.PacketReads++
		}
	} else {
		if write {
			c.cur.NonPacketWrites++
		} else {
			c.cur.NonPacketReads++
		}
	}
	if c.Coverage {
		// Aligned accesses never span a word, so marking the word of
		// addr covers the whole access.
		switch region {
		case vm.RegionPacket:
			c.pktTouched.set(addr)
		case vm.RegionStack:
			c.stackTouched.set(addr)
		default:
			c.dataTouched.set(addr)
		}
	}
	if c.Detail {
		c.MemTrace = append(c.MemTrace, MemEvent{
			InstrNum: c.cur.Instructions - 1,
			Addr:     addr, Size: size, Write: write, Region: region,
		})
	}
}

// InstrMemSize returns the touched instruction-memory footprint in bytes
// (Table IV). Requires Coverage.
func (c *Collector) InstrMemSize() int {
	n := 0
	for _, t := range c.instrTouched {
		if t {
			n++
		}
	}
	return n * isa.WordSize
}

// DataMemSize returns the touched data-memory footprint in bytes at
// word granularity, counting non-packet data only (routing tables, flow
// state, stack), which is the application-owned memory Table IV
// reports. Requires Coverage.
func (c *Collector) DataMemSize() int {
	return (c.dataTouched.count() + c.stackTouched.count()) * isa.WordSize
}

// PacketMemSize returns the touched packet-buffer footprint in bytes at
// word granularity. Requires Coverage.
func (c *Collector) PacketMemSize() int { return c.pktTouched.count() * isa.WordSize }

// Summary aggregates a run's records. Quarantined (faulted) records are
// counted in Packets and broken out per fault kind, but contribute
// nothing to the means and totals — those describe measured packets only,
// so a run that skips a few corrupt packets reports the same per-packet
// workload figures as a clean run over the surviving packets.
type Summary struct {
	Packets           int // all records, including faulted
	Faulted           int // quarantined records
	MeanInstructions  float64
	MeanUnique        float64
	MeanPacketAcc     float64
	MeanNonPacketAcc  float64
	TotalInstructions uint64
	// FaultCounts maps fault kind to quarantined-record count; nil when
	// the run had no faults.
	FaultCounts map[vm.FaultKind]int
	// Shed counts packets dropped unprocessed by an overload shed policy.
	// Shed packets keep their index slots in the streaming contract but
	// were never attempted, so — unlike quarantined records — they are not
	// counted in Packets and contribute to no other figure.
	Shed int
}

// Measured returns the number of non-quarantined records the means are
// computed over.
func (s *Summary) Measured() int { return s.Packets - s.Faulted }

// Summarize computes run-level averages from a record slice.
func Summarize(records []PacketRecord) Summary {
	s := Summary{Packets: len(records)}
	var unique, pkt, nonpkt uint64
	for i := range records {
		r := &records[i]
		if r.Faulted() {
			s.Faulted++
			if s.FaultCounts == nil {
				s.FaultCounts = make(map[vm.FaultKind]int)
			}
			s.FaultCounts[r.Fault]++
			continue
		}
		s.TotalInstructions += r.Instructions
		unique += uint64(r.Unique)
		pkt += r.PacketAccesses()
		nonpkt += r.NonPacketAccesses()
	}
	if n := float64(s.Measured()); n > 0 {
		s.MeanInstructions = float64(s.TotalInstructions) / n
		s.MeanUnique = float64(unique) / n
		s.MeanPacketAcc = float64(pkt) / n
		s.MeanNonPacketAcc = float64(nonpkt) / n
	}
	return s
}

// Running incrementally aggregates packet records into the same
// run-level figures Summarize computes, for streaming runs (Pool.RunTrace)
// that never materialize a full []PacketRecord. Add is not safe for
// concurrent use; streaming schedulers deliver records to it from a
// single aggregation goroutine.
type Running struct {
	// KeepInstructionCounts retains each packet's instruction count
	// (8 bytes per packet) so occurrence tables can still be built from a
	// streamed run.
	KeepInstructionCounts bool

	packets           int
	totalInstructions uint64
	unique            uint64
	pktAcc            uint64
	nonPktAcc         uint64
	counts            []uint64
	faultCounts       map[vm.FaultKind]int
	verdicts          map[uint32]int
	faulted           int
	shed              int
}

// RunningState is the portable snapshot of a Running aggregate — the
// piece of per-run state a checkpoint serializes. Fields mirror
// Running's accumulators; FaultCounts integer keys marshal as JSON
// string keys per encoding/json's integer-keyed-map rule.
type RunningState struct {
	Packets           int                  `json:"packets"`
	Faulted           int                  `json:"faulted"`
	Shed              int                  `json:"shed,omitempty"`
	TotalInstructions uint64               `json:"total_instructions"`
	Unique            uint64               `json:"unique"`
	PacketAcc         uint64               `json:"packet_acc"`
	NonPacketAcc      uint64               `json:"non_packet_acc"`
	FaultCounts       map[vm.FaultKind]int `json:"fault_counts,omitempty"`
	Verdicts          map[uint32]int       `json:"verdicts,omitempty"`
	Counts            []uint64             `json:"counts,omitempty"`
}

// State snapshots the aggregate for a checkpoint. The snapshot owns its
// memory (maps and slices are copied), so it stays stable across further
// Adds. Call from the goroutine that Adds.
func (a *Running) State() RunningState {
	st := RunningState{
		Packets:           a.packets,
		Faulted:           a.faulted,
		Shed:              a.shed,
		TotalInstructions: a.totalInstructions,
		Unique:            a.unique,
		PacketAcc:         a.pktAcc,
		NonPacketAcc:      a.nonPktAcc,
		FaultCounts:       a.FaultCounts(),
		Verdicts:          a.Verdicts(),
	}
	if a.KeepInstructionCounts && len(a.counts) > 0 {
		st.Counts = append([]uint64(nil), a.counts...)
	}
	return st
}

// SetState replaces the aggregate's contents with a snapshot — the
// resume half of checkpointing. After SetState, further Adds continue
// the restored run exactly where the snapshot left it.
func (a *Running) SetState(st RunningState) {
	a.packets = st.Packets
	a.faulted = st.Faulted
	a.shed = st.Shed
	a.totalInstructions = st.TotalInstructions
	a.unique = st.Unique
	a.pktAcc = st.PacketAcc
	a.nonPktAcc = st.NonPacketAcc
	a.faultCounts = nil
	if len(st.FaultCounts) > 0 {
		a.faultCounts = make(map[vm.FaultKind]int, len(st.FaultCounts))
		for k, n := range st.FaultCounts {
			a.faultCounts[k] = n
		}
	}
	a.verdicts = nil
	if len(st.Verdicts) > 0 {
		a.verdicts = make(map[uint32]int, len(st.Verdicts))
		for v, n := range st.Verdicts {
			a.verdicts[v] = n
		}
	}
	a.counts = nil
	if len(st.Counts) > 0 {
		a.counts = append([]uint64(nil), st.Counts...)
	}
}

// AddVerdict tallies one measured packet's application verdict. Kept in
// the aggregate (rather than by the caller) so verdict counts survive a
// checkpoint/resume cycle like every other run figure.
func (a *Running) AddVerdict(v uint32) {
	if a.verdicts == nil {
		a.verdicts = make(map[uint32]int)
	}
	a.verdicts[v]++
}

// Verdicts returns the per-verdict packet tally as a copy safe to retain
// across further Adds; nil when no verdict was recorded.
func (a *Running) Verdicts() map[uint32]int {
	if len(a.verdicts) == 0 {
		return nil
	}
	out := make(map[uint32]int, len(a.verdicts))
	for v, n := range a.verdicts {
		out[v] = n
	}
	return out
}

// AddShed counts n packets dropped unprocessed by an overload shed
// policy. Shed packets appear only in Summary.Shed; see that field for
// why they are kept out of every other figure.
func (a *Running) AddShed(n int) { a.shed += n }

// Shed returns how many packets were shed so far.
func (a *Running) Shed() int { return a.shed }

// Add folds one packet record into the aggregate. Quarantined records
// only advance the fault counters.
func (a *Running) Add(r *PacketRecord) {
	a.packets++
	if r.Faulted() {
		a.faulted++
		if a.faultCounts == nil {
			a.faultCounts = make(map[vm.FaultKind]int)
		}
		a.faultCounts[r.Fault]++
		return
	}
	a.totalInstructions += r.Instructions
	a.unique += uint64(r.Unique)
	a.pktAcc += r.PacketAccesses()
	a.nonPktAcc += r.NonPacketAccesses()
	if a.KeepInstructionCounts {
		a.counts = append(a.counts, r.Instructions)
	}
}

// Packets returns the number of records added.
func (a *Running) Packets() int { return a.packets }

// Faulted returns how many added records were quarantined.
func (a *Running) Faulted() int { return a.faulted }

// FaultCounts returns the per-kind quarantine tally so far, as a copy
// safe to retain across further Adds. It is how a progress display
// reports fault composition mid-run, before Summary is built. The map
// is nil when no record has faulted.
func (a *Running) FaultCounts() map[vm.FaultKind]int {
	if len(a.faultCounts) == 0 {
		return nil
	}
	out := make(map[vm.FaultKind]int, len(a.faultCounts))
	for k, n := range a.faultCounts {
		out[k] = n
	}
	return out
}

// TotalInstructions returns the instructions retired by measured
// packets so far.
func (a *Running) TotalInstructions() uint64 { return a.totalInstructions }

// Window is a point-in-time mark of a Running aggregate, from which
// per-interval throughput can be computed while the run is in flight.
type Window struct {
	At           time.Time
	Packets      int
	Faulted      int
	Instructions uint64
}

// Mark captures the aggregate's current totals with a timestamp. Mark
// must be called from the goroutine that Adds (Running is not
// synchronized); the returned Window is a value and may cross
// goroutines freely.
func (a *Running) Mark(at time.Time) Window {
	return Window{At: at, Packets: a.packets, Faulted: a.faulted, Instructions: a.totalInstructions}
}

// Throughput returns the packet and instruction rates per second over
// the interval between prev and w. Rates are zero when the interval is
// not positive (identical or out-of-order marks).
func (w Window) Throughput(prev Window) (packetsPerSec, instrsPerSec float64) {
	dt := w.At.Sub(prev.At).Seconds()
	if dt <= 0 {
		return 0, 0
	}
	return float64(w.Packets-prev.Packets) / dt, float64(w.Instructions-prev.Instructions) / dt
}

// Summary returns the aggregate, identical to Summarize over the same
// records.
func (a *Running) Summary() Summary {
	s := Summary{Packets: a.packets, Faulted: a.faulted, TotalInstructions: a.totalInstructions, Shed: a.shed}
	if a.faulted > 0 {
		s.FaultCounts = make(map[vm.FaultKind]int, len(a.faultCounts))
		for k, n := range a.faultCounts {
			s.FaultCounts[k] = n
		}
	}
	if n := float64(s.Measured()); n > 0 {
		s.MeanInstructions = float64(a.totalInstructions) / n
		s.MeanUnique = float64(a.unique) / n
		s.MeanPacketAcc = float64(a.pktAcc) / n
		s.MeanNonPacketAcc = float64(a.nonPktAcc) / n
	}
	return s
}

// InstructionCounts returns the retained per-packet instruction counts
// (nil unless KeepInstructionCounts was set before the run).
func (a *Running) InstructionCounts() []uint64 { return a.counts }

// InstructionCounts extracts the per-packet instruction counts from
// records (input to analysis.Occurrences for Table V). Quarantined
// records carry no counts and are excluded, matching Summarize's means.
func InstructionCounts(records []PacketRecord) []uint64 {
	out := make([]uint64, 0, len(records))
	for i := range records {
		if records[i].Faulted() {
			continue
		}
		out = append(out, records[i].Instructions)
	}
	return out
}

// UniqueCounts extracts per-packet unique-instruction counts (Table VI),
// excluding quarantined records.
func UniqueCounts(records []PacketRecord) []uint64 {
	out := make([]uint64, 0, len(records))
	for i := range records {
		if records[i].Faulted() {
			continue
		}
		out = append(out, uint64(records[i].Unique))
	}
	return out
}

// BlockSets extracts per-packet executed block sets (Figures 7 and 8),
// excluding quarantined records.
func BlockSets(records []PacketRecord) [][]int {
	out := make([][]int, 0, len(records))
	for i := range records {
		if records[i].Faulted() {
			continue
		}
		out = append(out, records[i].Blocks)
	}
	return out
}
