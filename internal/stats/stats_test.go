package stats

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/vm"
)

// harness assembles src and wires a CPU to a collector with the given
// options pre-set by the caller.
type harness struct {
	prog *asm.Program
	cpu  *vm.CPU
	col  *Collector
}

func newHarness(t *testing.T, src string) *harness {
	t.Helper()
	p, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mem := vm.NewMemory()
	mem.WriteBytes(p.DataBase, p.Data)
	cpu := vm.New(p.Text, p.TextBase, mem)
	cpu.Layout.PacketBase = 0x20000000
	cpu.Layout.PacketEnd = 0x20001000
	cpu.Layout.DataBase = p.DataBase
	cpu.Layout.DataEnd = p.DataBase + 1<<20
	cpu.Layout.StackBase = 0x7FFF0000
	cpu.Layout.StackEnd = 0x80000000
	blocks := analysis.NewBlockMap(p.Text, p.TextBase)
	col := NewCollector(p.Text, p.TextBase, blocks, cpu.Layout)
	cpu.Tracer = col
	return &harness{prog: p, cpu: cpu, col: col}
}

// runPacket simulates one framework dispatch.
func (h *harness) runPacket(t *testing.T) PacketRecord {
	t.Helper()
	for r := range h.cpu.Regs {
		h.cpu.Regs[r] = 0
	}
	h.cpu.SetReg(isa.A0, h.cpu.Layout.PacketBase)
	h.cpu.SetReg(isa.SP, h.cpu.Layout.StackEnd)
	h.cpu.SetReg(isa.RA, vm.ReturnAddress)
	h.cpu.PC = h.prog.TextBase
	h.col.BeginPacket()
	if _, _, err := h.cpu.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	return h.col.EndPacket()
}

const countingSrc = `
	.data
state:	.word 0
	.text
entry:
	lw   t0, 0(a0)        ; packet read
	sw   t0, 4(a0)        ; packet write
	la   t1, state
	lw   t2, 0(t1)        ; data read
	add  t2, t2, t0
	sw   t2, 0(t1)        ; data write
	addi sp, sp, -4
	sw   t2, 0(sp)        ; stack write (counts as non-packet)
	lw   t2, 0(sp)        ; stack read
	addi sp, sp, 4
	ret
`

func TestCollectorCounts(t *testing.T) {
	h := newHarness(t, countingSrc)
	rec := h.runPacket(t)
	if rec.Instructions != 12 {
		t.Errorf("Instructions = %d, want 12", rec.Instructions)
	}
	if rec.Unique != 12 {
		t.Errorf("Unique = %d, want 12 (straight-line code)", rec.Unique)
	}
	if rec.PacketReads != 1 || rec.PacketWrites != 1 {
		t.Errorf("packet accesses = %d/%d, want 1/1", rec.PacketReads, rec.PacketWrites)
	}
	if rec.NonPacketReads != 2 || rec.NonPacketWrites != 2 {
		t.Errorf("non-packet accesses = %d/%d, want 2/2", rec.NonPacketReads, rec.NonPacketWrites)
	}
	if rec.PacketAccesses() != 2 || rec.NonPacketAccesses() != 4 {
		t.Errorf("access sums wrong: %d/%d", rec.PacketAccesses(), rec.NonPacketAccesses())
	}
	if len(rec.Blocks) != 1 || rec.Blocks[0] != 0 {
		t.Errorf("Blocks = %v", rec.Blocks)
	}
	if rec.Index != 0 {
		t.Errorf("Index = %d", rec.Index)
	}
}

func TestCollectorPerPacketReset(t *testing.T) {
	h := newHarness(t, countingSrc)
	first := h.runPacket(t)
	second := h.runPacket(t)
	if second.Index != 1 {
		t.Errorf("second Index = %d", second.Index)
	}
	if first.Instructions != second.Instructions || first.Unique != second.Unique {
		t.Errorf("records differ across identical packets: %+v vs %+v", first, second)
	}
	if h.col.Packets() != 2 {
		t.Errorf("Packets() = %d", h.col.Packets())
	}
}

const loopSrc = `
	lw   t1, 0(a0)        ; loop count from the packet
	mv   t2, zero
loop:
	addi t2, t2, 1
	blt  t2, t1, loop
	ret
`

func TestCollectorUniqueVsTotal(t *testing.T) {
	h := newHarness(t, loopSrc)
	h.cpu.Mem.Write32(h.cpu.Layout.PacketBase, 10)
	rec := h.runPacket(t)
	// Total: 2 prologue + 10 iterations * 2 + ret = 23. Unique: 5.
	if rec.Instructions != 23 {
		t.Errorf("Instructions = %d, want 23", rec.Instructions)
	}
	if rec.Unique != 5 {
		t.Errorf("Unique = %d, want 5", rec.Unique)
	}
	// Unique never exceeds total; repetition factor 4.6 here.
	if analysis.RepetitionFactor(rec.Instructions, rec.Unique) != 4.6 {
		t.Errorf("repetition factor = %v", analysis.RepetitionFactor(rec.Instructions, rec.Unique))
	}
}

func TestCollectorDetailTraces(t *testing.T) {
	h := newHarness(t, countingSrc)
	h.col.Detail = true
	rec := h.runPacket(t)
	if uint64(len(h.col.InstrTrace)) != rec.Instructions {
		t.Errorf("InstrTrace has %d entries, want %d", len(h.col.InstrTrace), rec.Instructions)
	}
	if len(h.col.MemTrace) != 6 {
		t.Fatalf("MemTrace has %d events, want 6", len(h.col.MemTrace))
	}
	// Event regions in program order.
	wantRegions := []vm.Region{vm.RegionPacket, vm.RegionPacket,
		vm.RegionData, vm.RegionData, vm.RegionStack, vm.RegionStack}
	wantWrites := []bool{false, true, false, true, true, false}
	for i, ev := range h.col.MemTrace {
		if ev.Region != wantRegions[i] || ev.Write != wantWrites[i] {
			t.Errorf("event %d = %+v, want region %v write %v", i, ev, wantRegions[i], wantWrites[i])
		}
		if ev.InstrNum >= rec.Instructions {
			t.Errorf("event %d InstrNum %d out of range", i, ev.InstrNum)
		}
	}
	// BlockSeq for straight-line code is a single block.
	if len(h.col.BlockSeq) != 1 {
		t.Errorf("BlockSeq = %v", h.col.BlockSeq)
	}
	// Detail buffers reset per packet.
	h.runPacket(t)
	if uint64(len(h.col.InstrTrace)) != rec.Instructions {
		t.Errorf("detail trace grew across packets: %d", len(h.col.InstrTrace))
	}
}

func TestCollectorBlockSeqLoops(t *testing.T) {
	h := newHarness(t, loopSrc)
	h.col.Detail = true
	h.cpu.Mem.Write32(h.cpu.Layout.PacketBase, 3)
	h.runPacket(t)
	// Blocks: b0 = prologue, b1 = loop body, b2 = ret. Sequence should
	// enter b1 three times: b0 b1 b1 b1 b2.
	want := []int{0, 1, 1, 1, 2}
	if len(h.col.BlockSeq) != len(want) {
		t.Fatalf("BlockSeq = %v, want %v", h.col.BlockSeq, want)
	}
	for i := range want {
		if h.col.BlockSeq[i] != want[i] {
			t.Fatalf("BlockSeq = %v, want %v", h.col.BlockSeq, want)
		}
	}
}

func TestCollectorCoverage(t *testing.T) {
	h := newHarness(t, countingSrc)
	h.col.Coverage = true
	h.runPacket(t)
	h.runPacket(t)
	// 12 instructions * 4 bytes.
	if got := h.col.InstrMemSize(); got != 12*4 {
		t.Errorf("InstrMemSize = %d, want 48", got)
	}
	// Non-packet data: state word (4) + stack slot (4).
	if got := h.col.DataMemSize(); got != 8 {
		t.Errorf("DataMemSize = %d, want 8", got)
	}
	// Packet: two words.
	if got := h.col.PacketMemSize(); got != 8 {
		t.Errorf("PacketMemSize = %d, want 8", got)
	}
}

func TestCollectorKeepRecords(t *testing.T) {
	h := newHarness(t, countingSrc)
	h.col.KeepRecords = true
	h.runPacket(t)
	h.runPacket(t)
	h.runPacket(t)
	if len(h.col.Records) != 3 {
		t.Fatalf("Records = %d", len(h.col.Records))
	}
	for i, r := range h.col.Records {
		if r.Index != i {
			t.Errorf("record %d has index %d", i, r.Index)
		}
	}
}

func TestSummarize(t *testing.T) {
	recs := []PacketRecord{
		{Instructions: 100, Unique: 50, PacketReads: 10, NonPacketWrites: 20},
		{Instructions: 200, Unique: 70, PacketWrites: 6, NonPacketReads: 4},
	}
	s := Summarize(recs)
	if s.Packets != 2 || s.TotalInstructions != 300 {
		t.Errorf("summary = %+v", s)
	}
	if s.MeanInstructions != 150 || s.MeanUnique != 60 {
		t.Errorf("means = %v/%v", s.MeanInstructions, s.MeanUnique)
	}
	if s.MeanPacketAcc != 8 || s.MeanNonPacketAcc != 12 {
		t.Errorf("mem means = %v/%v", s.MeanPacketAcc, s.MeanNonPacketAcc)
	}
	empty := Summarize(nil)
	if empty.Packets != 0 || empty.MeanInstructions != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestExtractors(t *testing.T) {
	recs := []PacketRecord{
		{Instructions: 10, Unique: 5, Blocks: []int{0, 1}},
		{Instructions: 20, Unique: 7, Blocks: []int{0}},
	}
	ic := InstructionCounts(recs)
	if len(ic) != 2 || ic[0] != 10 || ic[1] != 20 {
		t.Errorf("InstructionCounts = %v", ic)
	}
	uc := UniqueCounts(recs)
	if uc[0] != 5 || uc[1] != 7 {
		t.Errorf("UniqueCounts = %v", uc)
	}
	bs := BlockSets(recs)
	if len(bs) != 2 || len(bs[0]) != 2 || len(bs[1]) != 1 {
		t.Errorf("BlockSets = %v", bs)
	}
}

func TestPCCounts(t *testing.T) {
	h := newHarness(t, loopSrc)
	h.col.CountPCs = true
	h.cpu.Mem.Write32(h.cpu.Layout.PacketBase, 5)
	h.runPacket(t)
	h.runPacket(t)
	if h.col.PCCounts == nil {
		t.Fatal("PCCounts not allocated")
	}
	// Instruction 0 (lw) executes once per packet; the loop body (index
	// 2, 3) executes 5 times per packet.
	if h.col.PCCounts[0] != 2 {
		t.Errorf("PCCounts[0] = %d, want 2", h.col.PCCounts[0])
	}
	if h.col.PCCounts[2] != 10 {
		t.Errorf("PCCounts[2] = %d, want 10", h.col.PCCounts[2])
	}
	var total uint64
	for _, c := range h.col.PCCounts {
		total += c
	}
	// Per packet: 2 prologue + 5 iterations * 2 + ret = 13.
	if total != 2*13 {
		t.Errorf("PCCounts sum to %d, want 26", total)
	}
}

func TestRunningMatchesSummarize(t *testing.T) {
	records := []PacketRecord{
		{Index: 0, Instructions: 100, Unique: 40, PacketReads: 5, PacketWrites: 1, NonPacketReads: 20, NonPacketWrites: 3},
		{Index: 1, Instructions: 250, Unique: 60, PacketReads: 8, NonPacketReads: 31},
		{Index: 2, Instructions: 100, Unique: 40, PacketWrites: 2, NonPacketWrites: 7},
	}
	agg := &Running{KeepInstructionCounts: true}
	for i := range records {
		agg.Add(&records[i])
	}
	if got, want := agg.Summary(), Summarize(records); !reflect.DeepEqual(got, want) {
		t.Errorf("Running.Summary() = %+v, want %+v", got, want)
	}
	if agg.Packets() != 3 {
		t.Errorf("Packets() = %d", agg.Packets())
	}
	counts := agg.InstructionCounts()
	want := InstructionCounts(records)
	if len(counts) != len(want) {
		t.Fatalf("kept %d counts", len(counts))
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("count %d = %d, want %d", i, counts[i], want[i])
		}
	}
}

// TestRunningStateRoundTrip: serializing an aggregate through its
// checkpoint snapshot (including a JSON cycle, as a real checkpoint
// does) and restoring into a fresh Running preserves every figure.
func TestRunningStateRoundTrip(t *testing.T) {
	agg := &Running{KeepInstructionCounts: true}
	records := []PacketRecord{
		{Index: 0, Instructions: 100, Unique: 40, PacketReads: 5, NonPacketReads: 20},
		{Index: 1, Fault: vm.FaultUnmapped},
		{Index: 2, Instructions: 250, Unique: 60, PacketWrites: 8, NonPacketWrites: 31},
	}
	for i := range records {
		agg.Add(&records[i])
		if !records[i].Faulted() {
			agg.AddVerdict(uint32(9 - i))
		}
	}
	agg.AddShed(2)

	raw, err := json.Marshal(agg.State())
	if err != nil {
		t.Fatal(err)
	}
	var st RunningState
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	restored := &Running{KeepInstructionCounts: true}
	restored.SetState(st)
	if got, want := restored.Summary(), agg.Summary(); !reflect.DeepEqual(got, want) {
		t.Errorf("restored Summary = %+v, want %+v", got, want)
	}
	if got, want := restored.Verdicts(), agg.Verdicts(); !reflect.DeepEqual(got, want) {
		t.Errorf("restored Verdicts = %v, want %v", got, want)
	}
	if !reflect.DeepEqual(restored.InstructionCounts(), agg.InstructionCounts()) {
		t.Errorf("restored counts = %v, want %v", restored.InstructionCounts(), agg.InstructionCounts())
	}
	// Restored aggregates must keep accumulating, not just report.
	restored.Add(&records[0])
	restored.AddVerdict(9)
	if restored.Packets() != 4 || restored.Verdicts()[9] != 2 {
		t.Errorf("restored aggregate does not continue: %d packets, verdicts %v",
			restored.Packets(), restored.Verdicts())
	}
}

func TestRunningEmpty(t *testing.T) {
	var agg Running
	if got := agg.Summary(); !reflect.DeepEqual(got, Summary{}) {
		t.Errorf("empty Running summary = %+v", got)
	}
	if agg.InstructionCounts() != nil {
		t.Error("counts kept without KeepInstructionCounts")
	}
}

func TestFaultedRecordsExcludedFromMeans(t *testing.T) {
	clean := []PacketRecord{
		{Index: 0, Instructions: 100, Unique: 40, PacketReads: 5, NonPacketReads: 20},
		{Index: 2, Instructions: 300, Unique: 50, PacketWrites: 3, NonPacketWrites: 9},
	}
	mixed := []PacketRecord{
		clean[0],
		{Index: 1, Fault: vm.FaultUnmapped},
		clean[1],
		{Index: 3, Fault: vm.FaultUnmapped},
		{Index: 4, Fault: vm.FaultStepLimit},
	}
	got := Summarize(mixed)
	if got.Packets != 5 || got.Faulted != 3 || got.Measured() != 2 {
		t.Fatalf("Packets/Faulted/Measured = %d/%d/%d, want 5/3/2", got.Packets, got.Faulted, got.Measured())
	}
	if got.FaultCounts[vm.FaultUnmapped] != 2 || got.FaultCounts[vm.FaultStepLimit] != 1 {
		t.Errorf("FaultCounts = %v", got.FaultCounts)
	}
	ref := Summarize(clean)
	if got.MeanInstructions != ref.MeanInstructions || got.MeanUnique != ref.MeanUnique ||
		got.MeanPacketAcc != ref.MeanPacketAcc || got.MeanNonPacketAcc != ref.MeanNonPacketAcc ||
		got.TotalInstructions != ref.TotalInstructions {
		t.Errorf("means over mixed records = %+v, want the clean-run values %+v", got, ref)
	}

	// Running agrees, and faulted records do not pollute kept counts.
	agg := &Running{KeepInstructionCounts: true}
	for i := range mixed {
		agg.Add(&mixed[i])
	}
	if !reflect.DeepEqual(agg.Summary(), got) {
		t.Errorf("Running.Summary() = %+v, want %+v", agg.Summary(), got)
	}
	if agg.Faulted() != 3 {
		t.Errorf("Faulted() = %d, want 3", agg.Faulted())
	}
	if counts := agg.InstructionCounts(); len(counts) != 2 {
		t.Errorf("kept %d instruction counts, want 2 (measured only)", len(counts))
	}

	// The distribution extractors agree: quarantined records would show
	// up as spurious zero-count packets in the occurrence tables.
	if c := InstructionCounts(mixed); !reflect.DeepEqual(c, InstructionCounts(clean)) {
		t.Errorf("InstructionCounts over mixed records = %v", c)
	}
	if u := UniqueCounts(mixed); !reflect.DeepEqual(u, UniqueCounts(clean)) {
		t.Errorf("UniqueCounts over mixed records = %v", u)
	}
	if b := BlockSets(mixed); len(b) != 2 {
		t.Errorf("BlockSets kept %d sets, want 2", len(b))
	}
}

func TestAbortPacket(t *testing.T) {
	h := newHarness(t, countingSrc)
	h.col.KeepRecords = true
	h.runPacket(t)
	h.col.BeginPacket()
	rec := h.col.AbortPacket(vm.FaultUnmapped)
	if rec.Index != 1 || rec.Fault != vm.FaultUnmapped || !rec.Faulted() {
		t.Errorf("abort record = %+v", rec)
	}
	if rec.Instructions != 0 || rec.Unique != 0 || len(rec.Blocks) != 0 {
		t.Errorf("abort record carries partial counts: %+v", rec)
	}
	if h.col.Packets() != 2 {
		t.Errorf("Packets() = %d, want 2 (quarantine keeps the slot)", h.col.Packets())
	}
	h.runPacket(t)
	if len(h.col.Records) != 3 || h.col.Records[2].Index != 2 {
		t.Fatalf("records after abort: %+v", h.col.Records)
	}
	if h.col.Records[2].Faulted() {
		t.Error("packet after an abort inherited the fault mark")
	}
}

func TestRunningFaultCounts(t *testing.T) {
	var agg Running
	agg.Add(&PacketRecord{Instructions: 100})
	agg.Add(&PacketRecord{Fault: vm.FaultUnmapped})
	agg.Add(&PacketRecord{Fault: vm.FaultUnmapped})
	agg.Add(&PacketRecord{Fault: vm.FaultStepLimit})

	fc := agg.FaultCounts()
	if fc[vm.FaultUnmapped] != 2 || fc[vm.FaultStepLimit] != 1 || len(fc) != 2 {
		t.Fatalf("FaultCounts = %v", fc)
	}
	// The returned map is a copy: mutating it must not corrupt the
	// aggregate, and later Adds must not show through it.
	fc[vm.FaultUnmapped] = 99
	agg.Add(&PacketRecord{Fault: vm.FaultBadFetch})
	if got := agg.FaultCounts(); got[vm.FaultUnmapped] != 2 || got[vm.FaultBadFetch] != 1 {
		t.Errorf("FaultCounts after mutation/Add = %v", got)
	}
	if s := agg.Summary(); s.FaultCounts[vm.FaultUnmapped] != 2 {
		t.Errorf("Summary fault counts corrupted: %v", s.FaultCounts)
	}

	var clean Running
	clean.Add(&PacketRecord{Instructions: 1})
	if clean.FaultCounts() != nil {
		t.Errorf("FaultCounts with no faults = %v, want nil", clean.FaultCounts())
	}
}

func TestRunningThroughputWindow(t *testing.T) {
	var agg Running
	base := time.Unix(1000, 0)
	prev := agg.Mark(base)
	for i := 0; i < 30; i++ {
		agg.Add(&PacketRecord{Instructions: 10})
	}
	agg.Add(&PacketRecord{Fault: vm.FaultUnmapped})
	cur := agg.Mark(base.Add(2 * time.Second))

	pps, ips := cur.Throughput(prev)
	if pps != 15.5 { // 31 records over 2s, faulted included in packet rate
		t.Errorf("packets/sec = %v, want 15.5", pps)
	}
	if ips != 150 { // 300 instructions over 2s
		t.Errorf("instrs/sec = %v, want 150", ips)
	}
	if cur.Faulted-prev.Faulted != 1 {
		t.Errorf("window fault delta = %d", cur.Faulted-prev.Faulted)
	}

	// Degenerate intervals rate zero instead of dividing by zero.
	if pps, ips := cur.Throughput(cur); pps != 0 || ips != 0 {
		t.Errorf("zero-interval throughput = %v, %v", pps, ips)
	}
	if pps, _ := prev.Throughput(cur); pps != 0 {
		t.Errorf("out-of-order throughput = %v", pps)
	}
}
