package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// DebugServer is the opt-in observability endpoint of a PacketBench
// process: /metrics in Prometheus text format from a run's Registry,
// /debug/vars (expvar, including the registry bridged as a JSON var),
// and the standard /debug/pprof profiles of the host process. It binds
// eagerly so ":0" users can read the resolved address, and serves until
// closed.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
	// Addr is the resolved listen address (host:port), useful when the
	// requested address was ":0".
	Addr string
}

// expvarOnce guards the process-global expvar name; expvar.Publish
// panics on duplicates, and tests start several servers per process.
var expvarOnce sync.Once

// currentExpvarRegistry is the registry the expvar bridge reads; the
// most recent ServeDebug call wins.
var (
	expvarMu              sync.Mutex
	currentExpvarRegistry *Registry
)

// ServeDebug starts the debug endpoint on addr serving reg and returns
// once the listener is bound. Pass ":0" to pick a free port; the
// resolved address is in DebugServer.Addr. The server runs until Close.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: binding debug endpoint %s: %w", addr, err)
	}

	expvarMu.Lock()
	currentExpvarRegistry = reg
	expvarMu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("packetbench", expvar.Func(func() any {
			expvarMu.Lock()
			r := currentExpvarRegistry
			expvarMu.Unlock()
			s := r.Snapshot()
			return map[string]any{
				"counters":   s.Counters,
				"gauges":     s.Gauges,
				"histograms": s.Histograms,
			}
		}))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	// net/http/pprof registers on http.DefaultServeMux; with a private
	// mux the handlers are wired explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "packetbench debug endpoint\n\n/metrics\n/debug/vars\n/debug/pprof/\n")
	})

	d := &DebugServer{
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		Addr: ln.Addr().String(),
	}
	go func() { _ = d.srv.Serve(ln) }()
	return d, nil
}

// Close shuts the endpoint down.
func (d *DebugServer) Close() error { return d.srv.Close() }
