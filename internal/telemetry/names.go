package telemetry

// Canonical metric names of the PacketBench run engine. Everything that
// reads or writes run metrics — internal/core, the CLIs' progress
// renderers, the CI smoke test scraping /metrics — goes through these
// constants so a rename can never silently split a series.
const (
	// MetricPacketsProcessed counts successfully measured packets.
	MetricPacketsProcessed = "packets_processed_total"
	// MetricPacketsFaulted counts quarantined packets, labeled by
	// kind=<vm.FaultKind.String()>.
	MetricPacketsFaulted = "packets_faulted_total"
	// MetricPacketAttempts counts processing attempts, including
	// failed ones under a retry policy (attempts - processed - faulted
	// = retries that later succeeded or aborted).
	MetricPacketAttempts = "packet_attempts_total"
	// MetricInstrsExecuted counts simulated guest instructions of
	// measured packets.
	MetricInstrsExecuted = "instrs_executed_total"
	// MetricMemRefs counts guest data-memory references, labeled by
	// region=packet|nonpacket and op=read|write.
	MetricMemRefs = "mem_refs_total"
	// MetricPacketLatency is the host-side wall-clock histogram of one
	// packet's simulation, in nanoseconds.
	MetricPacketLatency = "packet_latency_ns"
	// MetricPoolWorkersBusy gauges how many pool cores are simulating
	// a packet right now.
	MetricPoolWorkersBusy = "pool_workers_busy"
	// MetricPoolCores gauges the pool size of the current run.
	MetricPoolCores = "pool_cores"
	// MetricPacketsShed counts packets dropped unprocessed by the
	// overload shed policy, labeled by policy=drop-newest|drop-oldest.
	MetricPacketsShed = "packets_shed_total"
	// MetricWatchdogStalls counts pool runs cancelled by the progress
	// watchdog after a worker exceeded the stall timeout.
	MetricWatchdogStalls = "watchdog_stalls_total"
	// MetricCheckpointsWritten counts run checkpoints committed to disk.
	MetricCheckpointsWritten = "checkpoints_written_total"
	// MetricBlocksCompiled counts basic blocks lowered into compiled
	// closures by the compiled tier (load-time plus online promotion).
	MetricBlocksCompiled = "blocks_compiled_total"
	// MetricCompiledExits counts compiled-chain side exits, labeled by
	// reason=<vm.CompiledExitReason.String()>.
	MetricCompiledExits = "compiled_exits_total"
)
