package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders every series in Prometheus text exposition
// format version 0.0.4: # HELP and # TYPE headers per metric name,
// counter/gauge sample lines, and the cumulative _bucket/_sum/_count
// expansion for histograms. Series are ordered by metric name then
// series key, so output is deterministic and diffable. A nil registry
// writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	// Group series keys by metric name so each name gets one header.
	byName := make(map[string][]string)
	for _, key := range r.order {
		name := metricName(key)
		byName[name] = append(byName[name], key)
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)

	for _, name := range names {
		if help := r.names[name]; help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, r.types[name]); err != nil {
			return err
		}
		keys := byName[name]
		sort.Strings(keys)
		for _, key := range keys {
			if c, ok := r.counters[key]; ok {
				if _, err := fmt.Fprintf(w, "%s %d\n", key, c.Value()); err != nil {
					return err
				}
			}
			if g, ok := r.gauges[key]; ok {
				if _, err := fmt.Fprintf(w, "%s %d\n", key, g.Value()); err != nil {
					return err
				}
			}
			if h, ok := r.histograms[key]; ok {
				if err := writeHistogram(w, key, h); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// writeHistogram expands one histogram series into the cumulative
// _bucket lines Prometheus expects, plus _sum and _count.
func writeHistogram(w io.Writer, key string, h *Histogram) error {
	name, labels := splitSeriesKey(key)
	withLabels := func(suffix, extra string) string {
		ls := labels
		if extra != "" {
			if ls != "" {
				ls += ","
			}
			ls += extra
		}
		if ls == "" {
			return name + suffix
		}
		return name + suffix + "{" + ls + "}"
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = fmt.Sprint(h.bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", withLabels("_bucket", fmt.Sprintf("le=%q", le)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", withLabels("_sum", ""), h.sum.Load()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", withLabels("_count", ""), h.count.Load())
	return err
}

// metricName strips the label block from a series key.
func metricName(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// splitSeriesKey splits name{a="b"} into the name and inner label list
// a="b" (no braces), or name and "" when the series is unlabeled.
func splitSeriesKey(key string) (name, labels string) {
	i := strings.IndexByte(key, '{')
	if i < 0 {
		return key, ""
	}
	return key[:i], key[i+1 : len(key)-1]
}

// escapeHelp escapes backslashes and newlines per the exposition spec.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
