// Package telemetry is PacketBench's run-scoped metrics layer: a
// dependency-light registry of atomic counters, gauges and fixed-bucket
// histograms that the run engine (internal/core), the pool scheduler and
// the CLIs update while a run is in flight, plus the snapshot/rate API
// that turns those raw totals into live progress (packets/sec,
// instrs/sec) and the Prometheus text exposition a debug endpoint
// serves.
//
// Design constraints, in order:
//
//   - Zero cost when disabled. The run engine holds possibly-nil metric
//     handles; every mutating method is a no-op on a nil receiver, so a
//     bench built without a registry pays one nil check per packet and
//     allocates nothing on the hot path.
//   - Cheap when enabled. Counters and gauges are single atomic adds.
//     Histograms have a fixed bucket layout chosen at registration, so
//     an observation is a linear scan over a handful of bounds and one
//     atomic add — no locks, no allocation, safe from every pool worker
//     concurrently.
//   - Run-scoped, not process-global. A Registry is an ordinary value
//     handed to the things it instruments; tests and pools create as
//     many as they want. Nothing here touches process globals except
//     the optional expvar bridge in debug.go.
//
// Series identity follows the Prometheus data model: a name plus an
// ordered label set ({kind="step limit exceeded"}). Get-or-create
// lookups (Counter, Gauge, Histogram) are guarded by a mutex and meant
// for setup time; the returned handles are the hot-path API.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name=value pair qualifying a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// seriesKey renders the canonical identity of name plus labels, which
// doubles as the exposition form: name{k1="v1",k2="v2"}. Labels are
// sorted by key so registration order never splits a series.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing series. The zero value is
// usable; a nil *Counter is a no-op.
type Counter struct {
	key  string
	name string
	v    atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current total (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a series that can go up and down (workers busy, queue
// depth). A nil *Gauge is a no-op.
type Gauge struct {
	key  string
	name string
	v    atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution of integer-valued
// observations (latencies in nanoseconds, sizes in bytes). Buckets are
// cumulative-upper-bound style, chosen once at registration and never
// resized: a fixed layout keeps Observe lock-free (one scan, one atomic
// add) and keeps two snapshots of the same histogram directly
// subtractable. Observations are uint64 because everything PacketBench
// measures is a count or a duration; the exposition layer renders the
// float forms Prometheus expects. A nil *Histogram is a no-op.
type Histogram struct {
	key    string
	name   string
	bounds []uint64 // sorted upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64
	// exemplars holds one slowest-seen exemplar per bucket (ObserveEx);
	// nil until the first ObserveEx arms the slice at registration.
	exemplars []exemplarCell
	sum       atomic.Uint64
	count     atomic.Uint64
}

// exemplarCell is one bucket's exemplar: the largest value observed in
// the bucket and the span id (packet index) that produced it. The two
// words are updated without a lock, so a reader can pair a value with a
// neighboring observation's span — a documented, benign race: exemplars
// are debugging breadcrumbs, not accounting.
type exemplarCell struct {
	val  atomic.Uint64
	span atomic.Uint64 // span id + 1; 0 means the cell was never set
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveEx records one value and links the bucket to a span id (a
// packet's trace index) when the value is the largest the bucket has
// seen — the exemplar a journey tracer uses to chase a histogram tail
// bucket back to the concrete packet behind it.
func (h *Histogram) ObserveEx(v, span uint64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	c := &h.exemplars[i]
	if v >= c.val.Load() {
		c.val.Store(v)
		c.span.Store(span + 1)
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running total of observed values (0 on nil).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// LatencyBuckets is the default packet-latency layout: exponential
// nanosecond bounds from 250ns to ~4ms, wide enough for both the
// block-threaded fast path (~1-2µs per small packet) and pathological
// step-limit packets, in 14 buckets.
func LatencyBuckets() []uint64 {
	bounds := make([]uint64, 14)
	v := uint64(250)
	for i := range bounds {
		bounds[i] = v
		v *= 2
	}
	return bounds
}

// Registry is one run's metric namespace. The zero value is not usable;
// call NewRegistry. All methods are safe for concurrent use; a nil
// *Registry returns nil handles from every lookup, which are themselves
// no-ops, so "telemetry off" needs no branches at the call sites that
// only touch handles.
type Registry struct {
	mu    sync.Mutex
	names map[string]string // metric name -> help
	types map[string]string // metric name -> "counter"|"gauge"|"histogram"
	order []string          // series keys in registration order

	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram

	start time.Time
}

// NewRegistry returns an empty registry. The creation time anchors
// uptime reporting in snapshots.
func NewRegistry() *Registry {
	return &Registry{
		names:      make(map[string]string),
		types:      make(map[string]string),
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		start:      time.Now(),
	}
}

// Start returns the registry's creation time.
func (r *Registry) Start() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.start
}

// register records name/type/help metadata, enforcing that one metric
// name keeps one type across all its label series.
func (r *Registry) register(name, typ, help string) {
	if prev, ok := r.types[name]; ok && prev != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as both %s and %s", name, prev, typ))
	}
	r.types[name] = typ
	if help != "" || r.names[name] == "" {
		r.names[name] = help
	}
}

// Counter returns the counter series name{labels...}, creating it on
// first use. Nil registries return a nil (no-op) counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[key]; ok {
		return c
	}
	r.register(name, "counter", help)
	c := &Counter{key: key, name: name}
	r.counters[key] = c
	r.order = append(r.order, key)
	return c
}

// Gauge returns the gauge series name{labels...}, creating it on first
// use. Nil registries return a nil (no-op) gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[key]; ok {
		return g
	}
	r.register(name, "gauge", help)
	g := &Gauge{key: key, name: name}
	r.gauges[key] = g
	r.order = append(r.order, key)
	return g
}

// Histogram returns the histogram series name{labels...} with the given
// bucket upper bounds (sorted ascending; an implicit +Inf bucket is
// appended), creating it on first use. The bounds of an existing series
// win; passing different bounds later does not resize it. Nil
// registries return a nil (no-op) histogram.
func (r *Registry) Histogram(name, help string, bounds []uint64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[key]; ok {
		return h
	}
	r.register(name, "histogram", help)
	bs := append([]uint64(nil), bounds...)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	h := &Histogram{key: key, name: name, bounds: bs,
		counts: make([]atomic.Uint64, len(bs)+1), exemplars: make([]exemplarCell, len(bs)+1)}
	r.histograms[key] = h
	r.order = append(r.order, key)
	return h
}

// Exemplar is a snapshot of one bucket's exemplar cell: the largest
// value the bucket observed via ObserveEx and the span id that produced
// it.
type Exemplar struct {
	// Bucket indexes Counts (len(Bounds) is the +Inf bucket).
	Bucket int
	// Value is the observed value (nanoseconds for latency series).
	Value uint64
	// Span is the span id — the packet's trace index.
	Span uint64
}

// HistogramSnapshot is the frozen state of one histogram series.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra final
	// entry for the +Inf bucket. Counts are per bucket, not cumulative.
	Bounds []uint64
	Counts []uint64
	Sum    uint64
	Count  uint64
	// Exemplars holds the set exemplar cells, in bucket order. Empty
	// unless the series was fed through ObserveEx.
	Exemplars []Exemplar
}

// Snapshot is a point-in-time copy of every series in a registry,
// consistent enough for progress display: each series is read
// atomically, though the set is not a single atomic cut across series.
type Snapshot struct {
	// At is when the snapshot was taken.
	At time.Time
	// Counters, Gauges and Histograms are keyed by the canonical series
	// key (name{labels}).
	Counters   map[string]uint64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot freezes the registry's current values. A nil registry yields
// an empty snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		At:         time.Now(),
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range r.histograms {
		hs := HistogramSnapshot{
			Bounds: h.bounds,
			Counts: make([]uint64, len(h.counts)),
			Sum:    h.sum.Load(),
			Count:  h.count.Load(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		for i := range h.exemplars {
			if span := h.exemplars[i].span.Load(); span != 0 {
				hs.Exemplars = append(hs.Exemplars, Exemplar{
					Bucket: i, Value: h.exemplars[i].val.Load(), Span: span - 1,
				})
			}
		}
		s.Histograms[k] = hs
	}
	return s
}

// CounterTotal sums every counter series of the given metric name
// (all label combinations), so callers can read
// packets_faulted_total without enumerating fault kinds.
func (s *Snapshot) CounterTotal(name string) uint64 {
	var total uint64
	for k, v := range s.Counters {
		if k == name || strings.HasPrefix(k, name+"{") {
			total += v
		}
	}
	return total
}

// Rate returns the per-second increase of the named counter (summed
// across label series) between two snapshots, prev taken before s.
// It returns 0 when the interval is degenerate.
func (s *Snapshot) Rate(prev *Snapshot, name string) float64 {
	if prev == nil {
		return 0
	}
	dt := s.At.Sub(prev.At).Seconds()
	if dt <= 0 {
		return 0
	}
	cur, old := s.CounterTotal(name), prev.CounterTotal(name)
	if cur < old { // counter reset; don't report a bogus negative rate
		return 0
	}
	return float64(cur-old) / dt
}

// Quantile estimates the q-quantile (0 < q < 1) of a histogram
// snapshot by linear interpolation inside the containing bucket, the
// standard Prometheus histogram_quantile estimate. Returns NaN when the
// histogram is empty.
func (h *HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return math.NaN()
	}
	target := q * float64(h.Count)
	var cum uint64
	for i, c := range h.Counts {
		if float64(cum+c) >= target {
			var lo, hi float64
			if i > 0 {
				lo = float64(h.Bounds[i-1])
			}
			if i < len(h.Bounds) {
				hi = float64(h.Bounds[i])
			} else {
				// +Inf bucket: report its lower bound; there is no upper
				// edge to interpolate toward.
				return lo
			}
			if c == 0 {
				return hi
			}
			return lo + (hi-lo)*(target-float64(cum))/float64(c)
		}
		cum += c
	}
	return float64(h.Bounds[len(h.Bounds)-1])
}

// P50, P99 and P999 are the standard latency summary points, estimated
// like Quantile (NaN when empty).
func (h *HistogramSnapshot) P50() float64 { return h.Quantile(0.50) }

// P99 estimates the 99th percentile.
func (h *HistogramSnapshot) P99() float64 { return h.Quantile(0.99) }

// P999 estimates the 99.9th percentile.
func (h *HistogramSnapshot) P999() float64 { return h.Quantile(0.999) }

// HistogramFor returns the snapshot of the named histogram metric: the
// unlabeled series if present, otherwise the first labeled series of
// that name (map iteration order — fine for single-series metrics like
// packet_latency_ns). ok is false when no series matches.
func (s *Snapshot) HistogramFor(name string) (HistogramSnapshot, bool) {
	if h, ok := s.Histograms[name]; ok {
		return h, true
	}
	for k, h := range s.Histograms {
		if strings.HasPrefix(k, name+"{") {
			return h, true
		}
	}
	return HistogramSnapshot{}, false
}
