package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("packets_total", "packets")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("packets_total", ""); again != c {
		t.Fatalf("get-or-create returned a different counter")
	}

	g := r.Gauge("busy", "busy workers")
	g.Set(3)
	g.Inc()
	g.Dec()
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %d, want 2", got)
	}
}

func TestLabeledSeriesAreDistinctAndOrderInsensitive(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("faults_total", "", L("kind", "step"), L("core", "0"))
	b := r.Counter("faults_total", "", L("core", "0"), L("kind", "step"))
	if a != b {
		t.Fatalf("label order split the series")
	}
	c := r.Counter("faults_total", "", L("kind", "unmapped"), L("core", "0"))
	if a == c {
		t.Fatalf("different label values shared a series")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", LatencyBuckets())
	c.Inc()
	c.Add(7)
	g.Set(3)
	g.Inc()
	h.Observe(100)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("nil metrics must read zero")
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 {
		t.Fatalf("nil snapshot not empty")
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []uint64{10, 100, 1000})
	for _, v := range []uint64{1, 5, 10, 11, 50, 200, 5000} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if h.Sum() != 1+5+10+11+50+200+5000 {
		t.Fatalf("sum = %d", h.Sum())
	}
	s := r.Snapshot().Histograms["lat"]
	want := []uint64{3, 2, 1, 1} // <=10, <=100, <=1000, +Inf
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if q := s.Quantile(0.5); q < 1 || q > 100 {
		t.Fatalf("p50 = %v out of plausible range", q)
	}
	empty := HistogramSnapshot{Bounds: []uint64{1}, Counts: []uint64{0, 0}}
	if !math.IsNaN(empty.Quantile(0.9)) {
		t.Fatalf("empty quantile should be NaN")
	}
}

func TestSnapshotRates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(MetricPacketsProcessed, "")
	k := r.Counter(MetricPacketsFaulted, "", L("kind", "step limit exceeded"))
	c.Add(100)
	k.Add(2)
	prev := r.Snapshot()
	prev.At = prev.At.Add(-time.Second) // pretend a second passed
	c.Add(50)
	k.Add(1)
	cur := r.Snapshot()
	cur.At = prev.At.Add(time.Second)
	if got := cur.CounterTotal(MetricPacketsFaulted); got != 3 {
		t.Fatalf("CounterTotal = %d, want 3", got)
	}
	rate := cur.Rate(prev, MetricPacketsProcessed)
	if rate < 49 || rate > 51 {
		t.Fatalf("rate = %v, want ~50/s", rate)
	}
	if cur.Rate(nil, MetricPacketsProcessed) != 0 {
		t.Fatalf("nil prev should rate 0")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("packets_processed_total", "Measured packets.").Add(42)
	r.Counter("packets_faulted_total", "Quarantined packets.", L("kind", "unmapped")).Add(3)
	r.Gauge("pool_workers_busy", "Busy cores.").Set(2)
	h := r.Histogram("packet_latency_ns", "Per-packet latency.", []uint64{1000, 2000})
	h.Observe(500)
	h.Observe(1500)
	h.Observe(9999)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE packets_processed_total counter",
		"packets_processed_total 42",
		"# HELP packets_processed_total Measured packets.",
		`packets_faulted_total{kind="unmapped"} 3`,
		"# TYPE pool_workers_busy gauge",
		"pool_workers_busy 2",
		"# TYPE packet_latency_ns histogram",
		`packet_latency_ns_bucket{le="1000"} 1`,
		`packet_latency_ns_bucket{le="2000"} 2`,
		`packet_latency_ns_bucket{le="+Inf"} 3`,
		"packet_latency_ns_sum 11999",
		"packet_latency_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Labeled histograms merge le into the existing label set.
	r2 := NewRegistry()
	r2.Histogram("h", "", []uint64{5}, L("app", "radix")).Observe(1)
	b.Reset()
	if err := r2.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `h_bucket{app="radix",le="5"} 1`) {
		t.Errorf("labeled histogram bucket wrong:\n%s", b.String())
	}
	if !strings.Contains(b.String(), `h_count{app="radix"} 1`) {
		t.Errorf("labeled histogram count wrong:\n%s", b.String())
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	h := r.Histogram("h", "", LatencyBuckets())
	g := r.Gauge("g", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Inc()
				h.Observe(uint64(i*1000 + j))
				// Concurrent get-or-create of the same and new series.
				r.Counter("c", "").Add(0)
				r.Counter(fmt.Sprintf("c%d", i), "")
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestDebugServer(t *testing.T) {
	r := NewRegistry()
	r.Counter(MetricPacketsProcessed, "Measured packets.").Add(7)
	d, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + d.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/metrics"); !strings.Contains(body, MetricPacketsProcessed+" 7") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "packetbench") {
		t.Errorf("/debug/vars missing packetbench var:\n%s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "profile") {
		t.Errorf("/debug/pprof/ index looks wrong:\n%s", body)
	}

	// A second server (fresh registry) must not panic on the expvar
	// re-publish and must serve the latest registry.
	r2 := NewRegistry()
	r2.Counter(MetricPacketsProcessed, "").Add(99)
	d2, err := ServeDebug("127.0.0.1:0", r2)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	resp, err := http.Get("http://" + d2.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), MetricPacketsProcessed+" 99") {
		t.Errorf("second server /metrics wrong:\n%s", body)
	}
}
